// Package alloc implements the simulated physical memory substrate:
// a per-NUMA-node frame allocator, a flat page table mapping a virtual
// address space onto (node, frame) pairs, and AddressSpace, the object
// workloads allocate their data structures from.
//
// Placement obeys numa.Policy, so `numactl --membind` and the memkind
// heap both reduce to page-granular placement decisions here, exactly
// as they do on the real machine.
package alloc

import (
	"errors"
	"fmt"

	"repro/internal/numa"
	"repro/internal/units"
)

// ErrOutOfMemory is returned when a policy's node set has no free
// frames left (numactl --membind aborts the process in this case; we
// surface the error to the caller instead).
var ErrOutOfMemory = errors.New("alloc: out of memory on bound nodes")

// FrameAllocator hands out fixed-size physical frames of one node.
// Allocation state is a bitset so that multi-GiB allocations (millions
// of frames) stay cheap.
type FrameAllocator struct {
	node   numa.NodeID
	total  int64
	next   int64   // bump pointer while the free list is empty
	free   []int64 // frames returned by Free
	inUse  []uint64
	frames int64 // currently allocated
}

// NewFrameAllocator creates an allocator for a node of the given
// capacity (rounded down to whole pages).
func NewFrameAllocator(node numa.NodeID, capacity units.Bytes) *FrameAllocator {
	total := int64(capacity / units.Page)
	return &FrameAllocator{
		node:  node,
		total: total,
		inUse: make([]uint64, (total+63)/64),
	}
}

func (f *FrameAllocator) isUsed(frame int64) bool {
	return f.inUse[frame/64]&(1<<(uint(frame)%64)) != 0
}

func (f *FrameAllocator) setUsed(frame int64, used bool) {
	if used {
		f.inUse[frame/64] |= 1 << (uint(frame) % 64)
	} else {
		f.inUse[frame/64] &^= 1 << (uint(frame) % 64)
	}
}

// Node returns the node this allocator serves.
func (f *FrameAllocator) Node() numa.NodeID { return f.node }

// TotalFrames returns the node's frame capacity.
func (f *FrameAllocator) TotalFrames() int64 { return f.total }

// FreeFrames returns the number of unallocated frames.
func (f *FrameAllocator) FreeFrames() int64 { return f.total - f.frames }

// Alloc returns a free frame number or ErrOutOfMemory.
func (f *FrameAllocator) Alloc() (int64, error) {
	if n := len(f.free); n > 0 {
		fr := f.free[n-1]
		f.free = f.free[:n-1]
		f.setUsed(fr, true)
		f.frames++
		return fr, nil
	}
	if f.next >= f.total {
		return 0, ErrOutOfMemory
	}
	fr := f.next
	f.next++
	f.setUsed(fr, true)
	f.frames++
	return fr, nil
}

// Free returns a frame to the allocator. Freeing an unallocated frame
// is an error (it would indicate allocator corruption).
func (f *FrameAllocator) Free(frame int64) error {
	if frame < 0 || frame >= f.total || !f.isUsed(frame) {
		return fmt.Errorf("alloc: double free or wild frame %d on node %d", frame, f.node)
	}
	f.setUsed(frame, false)
	f.free = append(f.free, frame)
	f.frames--
	return nil
}

// PageMapping records where one virtual page lives.
type PageMapping struct {
	Node  numa.NodeID
	Frame int64
}

// pageChunkSize is the number of mappings per page-table chunk; a
// two-level structure keeps million-page regions cheap, mirroring how
// real page tables are radix trees rather than flat maps.
const pageChunkSize = 512

type pageChunk struct {
	present [pageChunkSize / 64]uint64
	slots   [pageChunkSize]PageMapping
	live    int
}

// PageTable maps virtual page numbers to physical placements.
type PageTable struct {
	chunks map[int64]*pageChunk
	mapped int
}

// NewPageTable returns an empty page table.
func NewPageTable() *PageTable {
	return &PageTable{chunks: make(map[int64]*pageChunk)}
}

func chunkIndex(vpn int64) (int64, int) { return vpn / pageChunkSize, int(vpn % pageChunkSize) }

func (c *pageChunk) isPresent(slot int) bool {
	return c.present[slot/64]&(1<<(uint(slot)%64)) != 0
}

func (c *pageChunk) setPresent(slot int, p bool) {
	if p {
		c.present[slot/64] |= 1 << (uint(slot) % 64)
	} else {
		c.present[slot/64] &^= 1 << (uint(slot) % 64)
	}
}

// Map installs a mapping; remapping a live page is an error.
func (pt *PageTable) Map(vpn int64, m PageMapping) error {
	ci, slot := chunkIndex(vpn)
	c := pt.chunks[ci]
	if c == nil {
		c = &pageChunk{}
		pt.chunks[ci] = c
	}
	if c.isPresent(slot) {
		return fmt.Errorf("alloc: vpn %d already mapped", vpn)
	}
	c.slots[slot] = m
	c.setPresent(slot, true)
	c.live++
	pt.mapped++
	return nil
}

// Unmap removes a mapping and returns it.
func (pt *PageTable) Unmap(vpn int64) (PageMapping, error) {
	ci, slot := chunkIndex(vpn)
	c := pt.chunks[ci]
	if c == nil || !c.isPresent(slot) {
		return PageMapping{}, fmt.Errorf("alloc: vpn %d not mapped", vpn)
	}
	m := c.slots[slot]
	c.setPresent(slot, false)
	c.live--
	pt.mapped--
	if c.live == 0 {
		delete(pt.chunks, ci)
	}
	return m, nil
}

// Lookup translates a virtual page number.
func (pt *PageTable) Lookup(vpn int64) (PageMapping, bool) {
	ci, slot := chunkIndex(vpn)
	c := pt.chunks[ci]
	if c == nil || !c.isPresent(slot) {
		return PageMapping{}, false
	}
	return c.slots[slot], true
}

// Mapped returns the number of live mappings.
func (pt *PageTable) Mapped() int { return pt.mapped }

// Region is one allocated virtual range. Regions are page-aligned and
// contiguous, so the backing pages are exactly the vpns from
// Base/PageSize for Size.Pages() pages.
type Region struct {
	Base  uint64
	Size  units.Bytes
	Label string
}

func (r *Region) baseVPN() int64 { return int64(r.Base / uint64(units.Page)) }

// End returns the first address past the region.
func (r *Region) End() uint64 { return r.Base + uint64(r.Size) }

// NodeOf returns the NUMA node backing the page containing offset.
func (r *Region) NodeOf(space *AddressSpace, offset units.Bytes) (numa.NodeID, error) {
	if offset < 0 || offset >= r.Size {
		return 0, fmt.Errorf("alloc: offset %d outside region %q of %v", offset, r.Label, r.Size)
	}
	vpn := int64((r.Base + uint64(offset)) / uint64(units.Page))
	m, ok := space.table.Lookup(vpn)
	if !ok {
		return 0, fmt.Errorf("alloc: page of offset %d not mapped", offset)
	}
	return m.Node, nil
}

// AddressSpace is a process view: a bump virtual allocator, a page
// table, and per-node frame allocators built from a topology.
type AddressSpace struct {
	topo    *numa.Topology
	table   *PageTable
	nodes   map[numa.NodeID]*FrameAllocator
	nextVA  uint64
	regions map[uint64]*Region
}

// NewAddressSpace builds an address space over a topology.
func NewAddressSpace(topo *numa.Topology) *AddressSpace {
	s := &AddressSpace{
		topo:    topo,
		table:   NewPageTable(),
		nodes:   make(map[numa.NodeID]*FrameAllocator),
		nextVA:  uint64(units.Page), // keep 0 as a null page
		regions: make(map[uint64]*Region),
	}
	for _, n := range topo.Nodes {
		s.nodes[n.ID] = NewFrameAllocator(n.ID, n.Capacity)
	}
	return s
}

// Topology returns the topology the space was built from.
func (s *AddressSpace) Topology() *numa.Topology { return s.topo }

// FreeBytes reports the unallocated capacity of a node.
func (s *AddressSpace) FreeBytes(node numa.NodeID) units.Bytes {
	fa, ok := s.nodes[node]
	if !ok {
		return 0
	}
	return units.Bytes(fa.FreeFrames()) * units.Page
}

// UsedBytes reports the allocated capacity of a node.
func (s *AddressSpace) UsedBytes(node numa.NodeID) units.Bytes {
	fa, ok := s.nodes[node]
	if !ok {
		return 0
	}
	return units.Bytes(fa.TotalFrames()-fa.FreeFrames()) * units.Page
}

// Alloc carves a region of size bytes, placing each page according to
// policy. On failure every page already placed is rolled back and
// ErrOutOfMemory (wrapped) is returned.
func (s *AddressSpace) Alloc(size units.Bytes, policy numa.Policy, label string) (*Region, error) {
	if size <= 0 {
		return nil, fmt.Errorf("alloc: non-positive size %v", size)
	}
	if err := policy.Validate(s.topo); err != nil {
		return nil, err
	}
	npages := size.Pages()
	r := &Region{Base: s.nextVA, Size: size, Label: label}
	for p := int64(0); p < npages; p++ {
		vpn := r.baseVPN() + p
		placed := false
		for _, nid := range policy.PlacementSequence(s.topo, p) {
			fa := s.nodes[nid]
			if fa == nil {
				continue
			}
			if frame, err := fa.Alloc(); err == nil {
				if err := s.table.Map(vpn, PageMapping{Node: nid, Frame: frame}); err != nil {
					return nil, err // internal invariant breach
				}
				placed = true
				break
			}
		}
		if !placed {
			// Roll back everything placed so far.
			for q := int64(0); q < p; q++ {
				m, _ := s.table.Unmap(r.baseVPN() + q)
				_ = s.nodes[m.Node].Free(m.Frame)
			}
			return nil, fmt.Errorf("alloc: %q needs %v under %v: %w", label, size, policy, ErrOutOfMemory)
		}
	}
	s.nextVA = r.Base + uint64(npages)*uint64(units.Page)
	s.regions[r.Base] = r
	return r, nil
}

// Free releases a region.
func (s *AddressSpace) Free(r *Region) error {
	if _, ok := s.regions[r.Base]; !ok {
		return fmt.Errorf("alloc: region %q at %#x not live", r.Label, r.Base)
	}
	for p := int64(0); p < r.Size.Pages(); p++ {
		m, err := s.table.Unmap(r.baseVPN() + p)
		if err != nil {
			return err
		}
		if err := s.nodes[m.Node].Free(m.Frame); err != nil {
			return err
		}
	}
	delete(s.regions, r.Base)
	return nil
}

// NodeBytes returns how many bytes of the region live on each node.
func (s *AddressSpace) NodeBytes(r *Region) map[numa.NodeID]units.Bytes {
	out := make(map[numa.NodeID]units.Bytes)
	for p := int64(0); p < r.Size.Pages(); p++ {
		if m, ok := s.table.Lookup(r.baseVPN() + p); ok {
			out[m.Node] += units.Page
		}
	}
	return out
}

// Regions returns the number of live regions.
func (s *AddressSpace) Regions() int { return len(s.regions) }
