package alloc

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/knl"
	"repro/internal/numa"
	"repro/internal/units"
)

func space(t *testing.T) *AddressSpace {
	t.Helper()
	c := knl.KNL7210()
	topo, err := numa.NewTopology(c.DDR, c.MCDRAM, numa.FlatMode, 0)
	if err != nil {
		t.Fatal(err)
	}
	return NewAddressSpace(topo)
}

func TestFrameAllocatorBasics(t *testing.T) {
	fa := NewFrameAllocator(0, 3*units.Page)
	if fa.TotalFrames() != 3 || fa.FreeFrames() != 3 {
		t.Fatalf("frames %d/%d", fa.TotalFrames(), fa.FreeFrames())
	}
	a, err := fa.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	b, err := fa.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("duplicate frame handed out")
	}
	if _, err := fa.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := fa.Alloc(); err != ErrOutOfMemory {
		t.Fatalf("expected OOM, got %v", err)
	}
	if err := fa.Free(b); err != nil {
		t.Fatal(err)
	}
	if err := fa.Free(b); err == nil {
		t.Fatal("double free accepted")
	}
	c, err := fa.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if c != b {
		t.Fatalf("free list not reused: got %d want %d", c, b)
	}
}

func TestFrameAllocatorNeverDoubleAllocatesProperty(t *testing.T) {
	f := func(ops []bool) bool {
		fa := NewFrameAllocator(0, 64*units.Page)
		live := map[int64]bool{}
		var order []int64
		for _, isAlloc := range ops {
			if isAlloc {
				fr, err := fa.Alloc()
				if err != nil {
					if len(live) != 64 {
						return false // OOM before full
					}
					continue
				}
				if live[fr] {
					return false // double allocation
				}
				live[fr] = true
				order = append(order, fr)
			} else if len(order) > 0 {
				fr := order[len(order)-1]
				order = order[:len(order)-1]
				if err := fa.Free(fr); err != nil {
					return false
				}
				delete(live, fr)
			}
		}
		return fa.FreeFrames() == 64-int64(len(live))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPageTableRoundTripProperty(t *testing.T) {
	f := func(vpns []uint16) bool {
		pt := NewPageTable()
		seen := map[int64]bool{}
		for i, raw := range vpns {
			vpn := int64(raw)
			err := pt.Map(vpn, PageMapping{Node: 0, Frame: int64(i)})
			if seen[vpn] {
				if err == nil {
					return false // duplicate map must fail
				}
				continue
			}
			if err != nil {
				return false
			}
			seen[vpn] = true
		}
		for vpn := range seen {
			if _, ok := pt.Lookup(vpn); !ok {
				return false
			}
			if _, err := pt.Unmap(vpn); err != nil {
				return false
			}
			if _, ok := pt.Lookup(vpn); ok {
				return false
			}
		}
		return pt.Mapped() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllocMembind(t *testing.T) {
	s := space(t)
	r, err := s.Alloc(units.GB(1), numa.Bind(1), "hbm-array")
	if err != nil {
		t.Fatal(err)
	}
	nb := s.NodeBytes(r)
	if nb[1] < units.GB(1) || nb[0] != 0 {
		t.Fatalf("membind=1 placed %v", nb)
	}
	if node, err := r.NodeOf(s, 12345); err != nil || node != 1 {
		t.Fatalf("NodeOf = %v, %v", node, err)
	}
	if err := s.Free(r); err != nil {
		t.Fatal(err)
	}
	if s.UsedBytes(1) != 0 {
		t.Fatalf("leak after free: %v", s.UsedBytes(1))
	}
}

func TestMembindOOMNoFallback(t *testing.T) {
	s := space(t)
	// MCDRAM node has 16 GiB; 17 GiB membind must fail entirely.
	_, err := s.Alloc(17*units.GiB, numa.Bind(1), "too-big")
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected OOM, got %v", err)
	}
	// Rollback: nothing left allocated.
	if s.UsedBytes(1) != 0 {
		t.Fatalf("failed alloc leaked %v on node 1", s.UsedBytes(1))
	}
	if s.Regions() != 0 {
		t.Fatal("region table not rolled back")
	}
}

func TestPreferredFallsBack(t *testing.T) {
	s := space(t)
	r, err := s.Alloc(20*units.GiB, numa.Prefer(1), "spill")
	if err != nil {
		t.Fatal(err)
	}
	nb := s.NodeBytes(r)
	if nb[1] != 16*units.GiB {
		t.Fatalf("preferred should fill node 1 first: %v", nb)
	}
	if nb[0] != 4*units.GiB {
		t.Fatalf("spill to node 0 = %v, want 4 GiB", nb[0])
	}
}

func TestInterleaveSplitsEvenly(t *testing.T) {
	s := space(t)
	r, err := s.Alloc(1*units.GiB, numa.InterleaveAll(0, 1), "inter")
	if err != nil {
		t.Fatal(err)
	}
	nb := s.NodeBytes(r)
	if nb[0] != nb[1] {
		t.Fatalf("interleave not even: %v", nb)
	}
}

func TestAllocRejectsBadArgs(t *testing.T) {
	s := space(t)
	if _, err := s.Alloc(0, numa.Bind(0), "zero"); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := s.Alloc(units.Page, numa.Bind(9), "badnode"); err == nil {
		t.Error("bad node accepted")
	}
}

func TestRegionsDoNotOverlap(t *testing.T) {
	s := space(t)
	a, err := s.Alloc(units.Page*3, numa.Bind(0), "a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Alloc(units.Page*3, numa.Bind(0), "b")
	if err != nil {
		t.Fatal(err)
	}
	if a.End() > b.Base {
		t.Fatalf("regions overlap: a=[%#x,%#x) b starts %#x", a.Base, a.End(), b.Base)
	}
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(a); err == nil {
		t.Error("double region free accepted")
	}
}

func TestNodeOfOutOfRange(t *testing.T) {
	s := space(t)
	r, err := s.Alloc(units.Page, numa.Bind(0), "one")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.NodeOf(s, units.Page); err == nil {
		t.Error("offset past end accepted")
	}
	if _, err := r.NodeOf(s, -1); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestFreeBytesAccounting(t *testing.T) {
	s := space(t)
	before := s.FreeBytes(0)
	r, err := s.Alloc(units.GB(2), numa.Bind(0), "acct")
	if err != nil {
		t.Fatal(err)
	}
	if got := before - s.FreeBytes(0); got != units.GB(2) {
		t.Fatalf("accounting drift: %v", got)
	}
	if s.UsedBytes(0) != units.GB(2) {
		t.Fatalf("UsedBytes = %v", s.UsedBytes(0))
	}
	if err := s.Free(r); err != nil {
		t.Fatal(err)
	}
	if s.FreeBytes(0) != before {
		t.Fatal("free did not restore capacity")
	}
	// Unknown node reports zero.
	if s.FreeBytes(42) != 0 || s.UsedBytes(42) != 0 {
		t.Fatal("unknown node should report zero")
	}
}
