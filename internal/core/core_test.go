package core

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/units"
	"repro/internal/workload"
)

func sys(t *testing.T) *System {
	t.Helper()
	s, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSystemRegistersEverything(t *testing.T) {
	s := sys(t)
	for _, name := range []string{"STREAM", "TinyMemBench", "DGEMM", "MiniFE", "GUPS", "Graph500", "XSBench"} {
		if _, err := s.Workload(name); err != nil {
			t.Errorf("workload %q missing: %v", name, err)
		}
	}
	if len(s.Workloads()) != 7 {
		t.Fatalf("registered %d workloads, want 7", len(s.Workloads()))
	}
	if _, err := s.Workload("NOPE"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	s := sys(t)
	if err := s.Register(s.Workloads()[0]); err == nil {
		t.Error("duplicate registration accepted")
	}
}

func TestTableIRows(t *testing.T) {
	rows := sys(t).TableIRows()
	if len(rows) != 5 {
		t.Fatalf("Table I has %d rows, want 5", len(rows))
	}
	// The exact Table I content.
	want := map[string]struct {
		class, pattern string
		scale          units.Bytes
	}{
		"DGEMM":    {workload.ClassScientific, workload.PatternSequential, units.GB(24)},
		"MiniFE":   {workload.ClassScientific, workload.PatternSequential, units.GB(30)},
		"GUPS":     {workload.ClassDataAnalytics, workload.PatternRandom, units.GB(32)},
		"Graph500": {workload.ClassDataAnalytics, workload.PatternRandom, units.GB(35)},
		"XSBench":  {workload.ClassScientific, workload.PatternRandom, units.GB(90)},
	}
	for _, r := range rows {
		w, ok := want[r.Name]
		if !ok {
			t.Errorf("unexpected Table I row %q", r.Name)
			continue
		}
		if r.Class != w.class || r.Pattern != w.pattern || r.MaxScale != w.scale {
			t.Errorf("row %q = %+v, want %+v", r.Name, r, w)
		}
	}
}

func TestPredictThroughFacade(t *testing.T) {
	s := sys(t)
	v, err := s.Predict("STREAM", engine.HBM, units.GB(8), 64)
	if err != nil {
		t.Fatal(err)
	}
	if v < 300 || v > 350 {
		t.Errorf("STREAM HBM = %v, want ~330", v)
	}
	if _, err := s.Predict("NOPE", engine.DRAM, units.GB(1), 64); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestNewAddressSpaceAndHeap(t *testing.T) {
	s := sys(t)
	heap, err := s.NewHeap(engine.HBM)
	if err != nil {
		t.Fatal(err)
	}
	if !heap.HBWAvailable() {
		t.Error("flat-mode heap should expose HBW")
	}
	cacheHeap, err := s.NewHeap(engine.Cache)
	if err != nil {
		t.Fatal(err)
	}
	if cacheHeap.HBWAvailable() {
		t.Error("cache-mode heap must not expose HBW")
	}
	space, err := s.NewAddressSpace(engine.DRAM)
	if err != nil {
		t.Fatal(err)
	}
	if space.FreeBytes(0) != 96*units.GiB {
		t.Errorf("node 0 capacity = %v", space.FreeBytes(0))
	}
}

func TestPlacementPolicy(t *testing.T) {
	if PlacementPolicy(engine.HBM).String() != "membind=1" {
		t.Error("HBM policy wrong")
	}
	if PlacementPolicy(engine.DRAM).String() != "membind=0" {
		t.Error("DRAM policy wrong")
	}
	if PlacementPolicy(engine.Cache).String() != "membind=0" {
		t.Error("cache policy wrong (paper uses membind=0 for consistency)")
	}
	if PlacementPolicy(engine.MemoryConfig{Kind: engine.InterleaveFlat}).String() != "interleave=0,1" {
		t.Error("interleave policy wrong")
	}
}

// --- advisor: the paper's guidelines must come back out ------------

func TestAdviseSequentialFitsHBM(t *testing.T) {
	s := sys(t)
	rec, err := s.Advise(AppProfile{
		Name: "cfd", Pattern: SequentialPattern,
		WorkingSet: units.GB(8), Threads: 64, CanUseHT: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Config.Kind != engine.BindHBM {
		t.Fatalf("want HBM, got %v", rec.Config)
	}
	if rec.Threads != 192 {
		t.Errorf("want 3 HT/core (192), got %d", rec.Threads)
	}
	if rec.ExpectedSpeedup < 2.5 {
		t.Errorf("expected speedup %v, want >=2.5x", rec.ExpectedSpeedup)
	}
}

func TestAdviseSequentialNearCapacity(t *testing.T) {
	s := sys(t)
	rec, err := s.Advise(AppProfile{Pattern: SequentialPattern, WorkingSet: units.GB(24), Threads: 64})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Config.Kind != engine.CacheMode {
		t.Fatalf("want cache mode for 1.5x-capacity stream, got %v", rec.Config)
	}
}

func TestAdviseSequentialHuge(t *testing.T) {
	s := sys(t)
	rec, err := s.Advise(AppProfile{Pattern: SequentialPattern, WorkingSet: units.GB(60), Threads: 64})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Config.Kind != engine.BindDRAM {
		t.Fatalf("want DRAM for 60 GB stream, got %v", rec.Config)
	}
}

func TestAdviseRandomSingleThreadPerCore(t *testing.T) {
	s := sys(t)
	rec, err := s.Advise(AppProfile{Pattern: RandomPattern, WorkingSet: units.GB(8), Threads: 64})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Config.Kind != engine.BindDRAM {
		t.Fatalf("want DRAM for latency-bound app, got %v", rec.Config)
	}
	if rec.ExpectedSpeedup < 0.99 {
		t.Errorf("DRAM vs DRAM speedup = %v", rec.ExpectedSpeedup)
	}
}

func TestAdviseRandomWithHT(t *testing.T) {
	s := sys(t)
	rec, err := s.Advise(AppProfile{
		Pattern: RandomPattern, WorkingSet: units.GB(8),
		Threads: 64, CanUseHT: true, LatencyHide: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Config.Kind != engine.BindHBM {
		t.Fatalf("want HBM for XSBench-like app with HT, got %v", rec.Config)
	}
	if rec.Threads != 256 {
		t.Errorf("want 256 threads, got %d", rec.Threads)
	}
}

func TestAdviseCapacityAugmentation(t *testing.T) {
	s := sys(t)
	rec, err := s.Advise(AppProfile{Pattern: SequentialPattern, WorkingSet: units.GB(100), Threads: 64})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Config.Kind != engine.InterleaveFlat {
		t.Fatalf("want interleave for >DRAM working set, got %v", rec.Config)
	}
}

func TestAdviseRejectsImpossible(t *testing.T) {
	s := sys(t)
	if _, err := s.Advise(AppProfile{Pattern: SequentialPattern, WorkingSet: units.GB(200)}); err == nil {
		t.Error("200 GB on a 112 GB node accepted")
	}
	if _, err := s.Advise(AppProfile{}); err == nil {
		t.Error("zero working set accepted")
	}
}

func TestRecommendationString(t *testing.T) {
	s := sys(t)
	rec, _ := s.Advise(AppProfile{Pattern: SequentialPattern, WorkingSet: units.GB(8), Threads: 64})
	str := rec.String()
	if !strings.Contains(str, "HBM") || !strings.Contains(str, "recommended") {
		t.Errorf("recommendation rendering: %q", str)
	}
	if AccessPattern(0).String() != "sequential" || RandomPattern.String() != "random" {
		t.Error("pattern names")
	}
}

func TestAdviseDefaultThreads(t *testing.T) {
	s := sys(t)
	rec, err := s.Advise(AppProfile{Pattern: RandomPattern, WorkingSet: units.GB(30)})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Threads < 64 {
		t.Errorf("default threads = %d, want >= 64", rec.Threads)
	}
}
