package core

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/units"
)

// AccessPattern classifies an application the way the paper's Table I
// does.
type AccessPattern int

const (
	// SequentialPattern marks regular, prefetch-friendly access.
	SequentialPattern AccessPattern = iota
	// RandomPattern marks data-dependent, poor-locality access.
	RandomPattern
)

// String names the pattern.
func (p AccessPattern) String() string {
	if p == RandomPattern {
		return "random"
	}
	return "sequential"
}

// AppProfile is what a programmer knows about an application before
// choosing a memory configuration: the three factors the paper
// identifies (access pattern, problem size, threading).
type AppProfile struct {
	Name        string
	Pattern     AccessPattern
	WorkingSet  units.Bytes
	Threads     int
	CanUseHT    bool // can the code scale past one thread per core?
	LatencyHide bool // does it expose independent accesses HT can pipeline?
}

// Recommendation is the advisor's output: the configuration to use,
// the expected speedup over DRAM-only, and the reasoning, each mapped
// to the paper section that justifies it.
type Recommendation struct {
	Config          engine.MemoryConfig
	Threads         int
	ExpectedSpeedup float64 // vs DRAM-only at the same thread count
	Reasons         []string
}

// String renders the recommendation for terminal output.
func (r Recommendation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "recommended configuration: %v with %d threads (expected %.2fx vs DRAM)\n",
		r.Config, r.Threads, r.ExpectedSpeedup)
	for _, reason := range r.Reasons {
		fmt.Fprintf(&b, "  - %s\n", reason)
	}
	return b.String()
}

// Advise operationalizes the paper's conclusions (§IV, §VI):
//
//   - sequential + fits in HBM        -> flat HBM (up to ~3-4x)
//   - sequential + close to capacity  -> cache mode (degrading with size)
//   - sequential + >> capacity        -> DRAM (cache mode can be slower)
//   - random + 1 thread/core          -> DRAM (HBM latency penalty)
//   - random + hyper-threading        -> HBM if it fits (latency hidden)
//   - anything larger than DRAM       -> interleave (capacity augmentation)
func (s *System) Advise(p AppProfile) (Recommendation, error) {
	if p.WorkingSet <= 0 {
		return Recommendation{}, fmt.Errorf("core: working set must be positive")
	}
	threads := p.Threads
	if threads <= 0 {
		threads = s.Machine.Chip.Cores
	}
	chip := s.Machine.Chip
	hbmCap := chip.MCDRAM.Capacity
	dramCap := chip.DDR.Capacity

	var rec Recommendation
	rec.Threads = threads

	switch {
	case p.WorkingSet > dramCap+hbmCap:
		return Recommendation{}, fmt.Errorf("core: %v exceeds the node's %v total memory; decompose across nodes (§IV-C)",
			p.WorkingSet, dramCap+hbmCap)

	case p.WorkingSet > dramCap:
		rec.Config = engine.MemoryConfig{Kind: engine.InterleaveFlat}
		rec.Reasons = append(rec.Reasons,
			"working set exceeds DRAM: use HBM to augment capacity via interleaved flat mode (§IV-C)")

	case p.Pattern == SequentialPattern && p.WorkingSet <= hbmCap:
		rec.Config = engine.HBM
		rec.Reasons = append(rec.Reasons,
			"regular access is bandwidth-bound and the problem fits HBM: bind to HBM (§IV-B, Fig. 4a-b)")
		if p.CanUseHT {
			rec.Threads = chip.Cores * 3
			rec.Reasons = append(rec.Reasons,
				"use 3 hardware threads/core: one thread cannot reach HBM peak bandwidth (§IV-D, Fig. 5)")
		}

	case p.Pattern == SequentialPattern && p.WorkingSet <= 2*hbmCap:
		rec.Config = engine.Cache
		rec.Reasons = append(rec.Reasons,
			"problem exceeds HBM but is comparable to its capacity: cache mode still beats DRAM (§IV-C, Fig. 2)",
			"expect the benefit to shrink toward ~1x as the size approaches twice the HBM capacity")

	case p.Pattern == SequentialPattern:
		rec.Config = engine.DRAM
		rec.Reasons = append(rec.Reasons,
			"working set far exceeds HBM: direct-mapped cache conflicts can push cache mode below DRAM (§IV-A, Fig. 2)")

	case p.LatencyHide && p.CanUseHT && p.WorkingSet <= hbmCap:
		rec.Config = engine.HBM
		rec.Threads = chip.MaxThreads()
		rec.Reasons = append(rec.Reasons,
			"random access with abundant hardware threads: hyper-threading hides HBM latency and its bandwidth wins (§IV-D, Fig. 6d)")

	default:
		rec.Config = engine.DRAM
		rec.Reasons = append(rec.Reasons,
			"random access is latency-bound and DRAM has ~18% lower latency than HBM (§IV-A, Fig. 3)")
		if p.CanUseHT {
			rec.Threads = chip.Cores * 2
			rec.Reasons = append(rec.Reasons,
				"hardware threads still help on DRAM (~1.5x for Graph500-like codes, Fig. 6c)")
		}
	}

	// Quantify with the engine using a representative synthetic phase.
	speedup, err := s.expectedSpeedup(p, rec.Config, rec.Threads)
	if err == nil {
		rec.ExpectedSpeedup = speedup
	} else {
		rec.ExpectedSpeedup = 1
		rec.Reasons = append(rec.Reasons, fmt.Sprintf("(no quantitative estimate: %v)", err))
	}
	return rec, nil
}

// expectedSpeedup compares a representative synthetic phase under the
// recommended configuration against DRAM at the same thread count.
func (s *System) expectedSpeedup(p AppProfile, cfg engine.MemoryConfig, threads int) (float64, error) {
	ph := engine.Phase{Name: "advisor-probe"}
	if p.Pattern == SequentialPattern {
		ph.SeqBytes = 100e9
		ph.SeqFootprint = p.WorkingSet
	} else {
		ph.RandomAccesses = 1e9
		ph.RandomFootprint = p.WorkingSet
	}
	rec, err := s.Machine.SolvePhase(cfg, threads, ph)
	if err != nil {
		return 0, err
	}
	base, err := s.Machine.SolvePhase(engine.DRAM, threads, ph)
	if err != nil {
		return 0, err
	}
	return float64(base.Time) / float64(rec.Time), nil
}
