package core_test

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/units"
)

// The basic workflow: build the system, predict a workload's metric
// under each memory configuration.
func ExampleSystem_Predict() {
	sys, err := core.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	for _, cfg := range engine.PaperConfigs() {
		bw, err := sys.Predict("STREAM", cfg, units.GB(8), 64)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10v %.0f GB/s\n", cfg, bw)
	}
	// Output:
	// DRAM       77 GB/s
	// HBM        330 GB/s
	// Cache Mode 261 GB/s
}

// The advisor turns the paper's guidelines into a recommendation.
func ExampleSystem_Advise() {
	sys, err := core.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	rec, err := sys.Advise(core.AppProfile{
		Pattern:    core.RandomPattern,
		WorkingSet: units.GB(30),
		Threads:    64,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rec.Config)
	// Output:
	// DRAM
}

// Capacity errors mirror the paper's missing HBM bars.
func ExampleErrDoesNotFit() {
	sys, err := core.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	_, err = sys.Predict("MiniFE", engine.HBM, units.GB(28.8), 64)
	var nofit engine.ErrDoesNotFit
	if errors.As(err, &nofit) {
		// The 28.8 GB matrix plus the CG vectors exceed MCDRAM.
		fmt.Printf("need %.1f GB, have %.0f GB\n", nofit.Need.GiBf(), nofit.Have.GiBf())
	}
	// Output:
	// need 32.3 GB, have 16 GB
}
