// Package core is the top-level API of the hybrid-memory-system
// reproduction: it assembles the simulated KNL machine, registers the
// paper's workloads, exposes prediction and functional-simulation
// entry points, and implements the paper's §VI guidelines as an
// executable Advisor.
//
// Typical use:
//
//	sys, _ := core.NewSystem()
//	gflops, _ := sys.Predict("DGEMM", engine.HBM, units.GB(6), 64)
//	rec, _ := sys.Advise(core.AppProfile{...})
package core

import (
	"fmt"
	"sort"

	"repro/internal/alloc"
	"repro/internal/engine"
	"repro/internal/memkind"
	"repro/internal/numa"
	"repro/internal/units"
	"repro/internal/workload"
	"repro/internal/workloads/dgemm"
	"repro/internal/workloads/graph500"
	"repro/internal/workloads/gups"
	"repro/internal/workloads/latbench"
	"repro/internal/workloads/minife"
	"repro/internal/workloads/stream"
	"repro/internal/workloads/xsbench"
)

// System bundles the machine model with the workload registry.
type System struct {
	Machine *engine.Machine
	models  map[string]workload.Model
	order   []string
}

// NewSystem builds the default KNL 7210 system with every paper
// workload registered.
func NewSystem() (*System, error) {
	m := engine.Default()
	s := &System{Machine: m, models: make(map[string]workload.Model)}
	for _, mdl := range []workload.Model{
		stream.Model{},
		latbench.Model{},
		dgemm.Model{},
		minife.Model{},
		gups.Model{},
		graph500.Model{},
		xsbench.Model{},
	} {
		if err := s.Register(mdl); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Register adds a workload model; duplicate names are rejected.
func (s *System) Register(mdl workload.Model) error {
	name := mdl.Info().Name
	if _, dup := s.models[name]; dup {
		return fmt.Errorf("core: workload %q already registered", name)
	}
	s.models[name] = mdl
	s.order = append(s.order, name)
	return nil
}

// Workload returns a registered model by name.
func (s *System) Workload(name string) (workload.Model, error) {
	mdl, ok := s.models[name]
	if !ok {
		names := append([]string(nil), s.order...)
		sort.Strings(names)
		return nil, fmt.Errorf("core: unknown workload %q (have %v)", name, names)
	}
	return mdl, nil
}

// Workloads returns the registered models in registration order.
func (s *System) Workloads() []workload.Model {
	out := make([]workload.Model, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.models[n])
	}
	return out
}

// TableIRows returns the registered application rows of Table I (the
// five evaluated applications, excluding the two micro-benchmarks).
func (s *System) TableIRows() []workload.Info {
	var rows []workload.Info
	for _, n := range s.order {
		info := s.models[n].Info()
		if info.Name == "STREAM" || info.Name == "TinyMemBench" {
			continue
		}
		rows = append(rows, info)
	}
	return rows
}

// Predict runs a workload's performance model.
func (s *System) Predict(name string, cfg engine.MemoryConfig, size units.Bytes, threads int) (float64, error) {
	mdl, err := s.Workload(name)
	if err != nil {
		return 0, err
	}
	return mdl.Predict(s.Machine, cfg, size, threads)
}

// NewAddressSpace builds a functional simulated address space for a
// memory configuration (used by the placement examples and the
// functional workload runners).
func (s *System) NewAddressSpace(cfg engine.MemoryConfig) (*alloc.AddressSpace, error) {
	topo, err := s.Machine.NUMATopology(cfg)
	if err != nil {
		return nil, err
	}
	return alloc.NewAddressSpace(topo), nil
}

// NewHeap builds a memkind heap over a fresh address space for a
// memory configuration.
func (s *System) NewHeap(cfg engine.MemoryConfig) (*memkind.Heap, error) {
	space, err := s.NewAddressSpace(cfg)
	if err != nil {
		return nil, err
	}
	return memkind.NewHeap(space), nil
}

// PlacementPolicy returns the numactl policy the paper uses for a
// configuration (§III-C: --membind=0 for DRAM and cache mode,
// --membind=1 for HBM).
func PlacementPolicy(cfg engine.MemoryConfig) numa.Policy {
	switch cfg.Kind {
	case engine.BindHBM:
		return numa.Bind(1)
	case engine.InterleaveFlat:
		return numa.InterleaveAll(0, 1)
	default:
		return numa.Bind(0)
	}
}
