package campaign

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/units"
)

func mustConfig(t *testing.T, s string) engine.MemoryConfig {
	t.Helper()
	cfg, err := engine.ParseConfig(s)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestAdviseFidelityCollapsesConfigAxis(t *testing.T) {
	spec := Spec{
		Fidelity:  FidelityAdvise,
		Workloads: []string{"GUPS"},
		Configs:   []string{"dram", "hbm", "cache"}, // redundant for advise
		Sizes:     []string{"2GB", "8GB"},
		Threads:   []int{64},
	}
	points, raw, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if raw != 6 {
		t.Errorf("raw cross product = %d, want 6", raw)
	}
	// The config axis collapses: one point per (workload, size, threads).
	if len(points) != 2 {
		t.Fatalf("advise points = %d, want 2: %v", len(points), points)
	}
	for _, p := range points {
		if p.Fidelity != FidelityAdvise {
			t.Errorf("point fidelity = %q", p.Fidelity)
		}
	}
}

func TestAdviseFidelityNeedsNoConfigs(t *testing.T) {
	spec := Spec{
		Fidelity:  FidelityAdvise,
		Workloads: []string{"STREAM"},
		Sizes:     []string{"4GB"},
		Threads:   []int{64, 128},
	}
	points, _, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 { // thread axis survives for advise
		t.Fatalf("points = %d, want 2", len(points))
	}
	// The same spec at model fidelity must still demand configs.
	spec.Fidelity = FidelityModel
	if _, _, err := spec.Expand(); err == nil {
		t.Error("model-fidelity spec without configs accepted")
	}
}

func TestAdviseSpelledDifferentlySharesKeys(t *testing.T) {
	a := Spec{Fidelity: FidelityAdvise, Workloads: []string{"GUPS"}, Sizes: []string{"8GB"}, Threads: []int{64}}
	b := Spec{Fidelity: FidelityAdvise, Workloads: []string{"GUPS"}, Sizes: []string{"8192MB"}, Threads: []int{64}}
	ka, err := a.CampaignKey()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.CampaignKey()
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Errorf("8GB and 8192MB advise campaigns hash differently: %s vs %s", ka, kb)
	}
}

func adviseOutcome(workload string, size units.Bytes, threads int, best string) Outcome {
	return Outcome{
		Point: Point{Workload: workload, Size: size, Threads: threads, SKU: DefaultSKU, Fidelity: FidelityAdvise},
		Advice: &AdviceSummary{
			Best:           best,
			TotalFootprint: size.String(),
			Options: []AdviceOption{
				{Mode: "flat", Config: "HBM", FlatFraction: 1, TimeNS: 1e6, SpeedupVsDRAM: 2.5, SpeedupVsCache: 1.3},
				{Mode: "cache", Config: "Cache Mode", TimeNS: 1.3e6, SpeedupVsDRAM: 1.9, SpeedupVsCache: 1},
				{Mode: "hybrid", Config: "Hybrid(50% flat)", FlatFraction: 0.5, TimeNS: 1.4e6, SpeedupVsDRAM: 1.8, SpeedupVsCache: 0.9},
				{Mode: "ddr", Config: "DRAM", TimeNS: 2.5e6, SpeedupVsDRAM: 1, SpeedupVsCache: 0.5},
			},
		},
	}
}

func TestAdviseTables(t *testing.T) {
	outcomes := []Outcome{
		adviseOutcome("GUPS", units.GB(2), 64, "flat"),
		adviseOutcome("GUPS", units.GB(32), 64, "cache"),
	}
	tables := Tables(outcomes)
	if len(tables) != 1 {
		t.Fatalf("got %d tables, want 1", len(tables))
	}
	tbl := tables[0]
	for _, want := range []string{"GUPS, 64 threads", "speedup vs all-DDR", "recommended", "ddr", "cache", "hybrid:0.50", "flat"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("advise table missing %q:\n%s", want, tbl)
		}
	}
	// Canonical column order: ddr before cache before hybrid before flat.
	header := strings.SplitN(tbl, "\n", 3)[1]
	if !(strings.Index(header, "ddr") < strings.Index(header, "cache") &&
		strings.Index(header, "cache") < strings.Index(header, "hybrid:0.50") &&
		strings.Index(header, "hybrid:0.50") < strings.Index(header, "flat")) {
		t.Errorf("columns out of canonical order:\n%s", header)
	}
	// Both row recommendations appear.
	if !strings.Contains(tbl, "flat") || !strings.Contains(tbl, "cache") {
		t.Errorf("recommendations missing:\n%s", tbl)
	}
}

func TestMixedTablesSplitByFidelity(t *testing.T) {
	outcomes := []Outcome{
		{Point: Point{Workload: "STREAM", Size: units.GB(2), Threads: 64, Config: mustConfig(t, "hbm")}, Metric: "GB/s", Value: 400},
		adviseOutcome("STREAM", units.GB(2), 64, "flat"),
	}
	tables := Tables(outcomes)
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want 2 (plain + advise)", len(tables))
	}
	if !strings.Contains(tables[0], "GB/s") {
		t.Errorf("first table should be the plain grid:\n%s", tables[0])
	}
	if !strings.Contains(tables[1], "recommended") {
		t.Errorf("second table should be the advise grid:\n%s", tables[1])
	}
}
