package campaign

import (
	"fmt"
	"sort"
	"strings"
)

// TraceStats carries the functional-replay detail of a
// FidelityTrace point: what the cache hierarchy actually did.
type TraceStats struct {
	Accesses     int64   `json:"accesses"`
	L1HitRate    float64 `json:"l1_hit_rate"`
	L2HitRate    float64 `json:"l2_hit_rate"`
	MCHitRate    float64 `json:"memcache_hit_rate"`
	MemReads     int64   `json:"mem_reads"`
	MemWrites    int64   `json:"mem_writes"`
	AvgLatencyNS float64 `json:"avg_latency_ns"`
}

// Outcome is one executed point: the workload's reported metric, or
// the reason the paper would print no bar (does not fit, not
// measurable). Cached marks results served from the content-addressed
// cache rather than recomputed. Trace is set for FidelityTrace
// points; Advice for FidelityAdvise points.
type Outcome struct {
	Point       Point
	Metric      string
	Value       float64
	Unavailable string
	Cached      bool
	Trace       *TraceStats
	Advice      *AdviceSummary
	Cluster     *ClusterStats
}

// Format renders the outcome's value cell the way the paper's figures
// do: "-" where no measurement exists.
func (o Outcome) Format() string {
	if o.Unavailable != "" {
		return "-"
	}
	return fmt.Sprintf("%.4g", o.Value)
}

// Tables aggregates outcomes into one text table per (workload,
// threads) pair: rows are problem sizes, columns are memory
// configurations, with a trailing "best" column naming the winning
// configuration per row. Tables are emitted in first-seen order so a
// campaign renders deterministically. Advise-fidelity outcomes render
// through the mode-recommendation table instead (columns are memory
// modes, cells are speedups vs all-DDR), and cluster-fidelity
// outcomes through the node-count scaling table (rows are node
// counts, with the minimum HBM-fitting decomposition called out).
func Tables(outcomes []Outcome) []string {
	var plain, advised, clustered, replayed []Outcome
	for _, o := range outcomes {
		switch o.Point.Fidelity {
		case FidelityAdvise:
			advised = append(advised, o)
		case FidelityCluster:
			clustered = append(clustered, o)
		case FidelityReplay:
			replayed = append(replayed, o)
		default:
			plain = append(plain, o)
		}
	}
	tables := plainTables(plain)
	tables = append(tables, adviseTables(advised)...)
	tables = append(tables, clusterTables(clustered)...)
	return append(tables, replayTables(replayed)...)
}

// replayTables renders replay-fidelity outcomes: one table per stored
// trace, rows are the swept memory configurations with the replay's
// hierarchy behaviour, and a closing line names the fastest
// configuration — the placement question asked of a real reference
// stream.
func replayTables(outcomes []Outcome) []string {
	var order []string
	groups := make(map[string][]Outcome)
	for _, o := range outcomes {
		id := o.Point.TraceID
		if _, ok := groups[id]; !ok {
			order = append(order, id)
		}
		groups[id] = append(groups[id], o)
	}
	var tables []string
	for _, id := range order {
		tables = append(tables, renderReplayGroup(id, groups[id]))
	}
	return tables
}

func renderReplayGroup(id string, outcomes []Outcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "replay of trace %s", ShortTraceID(id))
	if t := outcomes[0].Trace; t != nil {
		fmt.Fprintf(&b, " (%d accesses)", t.Accesses)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-14s%14s%10s%10s%10s%12s%12s\n",
		"config", "ns/access", "L1 hit", "L2 hit", "MC hit", "mem reads", "mem writes")
	best := "-"
	var bestVal float64
	haveBest := false
	for _, o := range outcomes {
		cfg := o.Point.Config.String()
		if o.Unavailable != "" || o.Trace == nil {
			fmt.Fprintf(&b, "%-14s%14s\n", cfg, "-")
			continue
		}
		t := o.Trace
		fmt.Fprintf(&b, "%-14s%14.2f%10.3f%10.3f%10.3f%12d%12d\n",
			cfg, t.AvgLatencyNS, t.L1HitRate, t.L2HitRate, t.MCHitRate, t.MemReads, t.MemWrites)
		if !haveBest || o.Value < bestVal {
			best, bestVal, haveBest = cfg, o.Value, true
		}
	}
	if haveBest {
		fmt.Fprintf(&b, "best: %s (%.2f ns/access)\n", best, bestVal)
	}
	return b.String()
}

// plainTables renders the model/trace outcome grid.
func plainTables(outcomes []Outcome) []string {
	type groupKey struct {
		workload string
		threads  int
	}
	var order []groupKey
	groups := make(map[groupKey][]Outcome)
	for _, o := range outcomes {
		k := groupKey{o.Point.Workload, o.Point.Threads}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], o)
	}

	var tables []string
	for _, k := range order {
		tables = append(tables, renderGroup(k.workload, k.threads, groups[k]))
	}
	return tables
}

// renderGroup renders one workload x threads grid.
func renderGroup(workload string, threads int, outcomes []Outcome) string {
	metric := ""
	var cfgOrder []string
	cfgSeen := make(map[string]bool)
	type cell struct {
		text string
		val  float64
		ok   bool
	}
	rows := make(map[int64]map[string]cell) // size -> config -> cell
	var sizes []int64
	for _, o := range outcomes {
		if metric == "" && o.Metric != "" {
			metric = o.Metric
		}
		cfg := o.Point.Config.String()
		if !cfgSeen[cfg] {
			cfgSeen[cfg] = true
			cfgOrder = append(cfgOrder, cfg)
		}
		sz := int64(o.Point.Size)
		if _, ok := rows[sz]; !ok {
			rows[sz] = make(map[string]cell)
			sizes = append(sizes, sz)
		}
		rows[sz][cfg] = cell{text: o.Format(), val: o.Value, ok: o.Unavailable == ""}
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })

	var b strings.Builder
	if threads == 0 {
		// Trace-fidelity points: a single replay stream, no thread axis.
		fmt.Fprintf(&b, "%s, single stream", workload)
	} else {
		fmt.Fprintf(&b, "%s, %d threads", workload, threads)
	}
	if metric != "" {
		fmt.Fprintf(&b, " (%s)", metric)
	}
	b.WriteString("\n")
	const width = 14
	fmt.Fprintf(&b, "%-14s", "Size (GB)")
	for _, cfg := range cfgOrder {
		fmt.Fprintf(&b, "%*s", width, cfg)
	}
	fmt.Fprintf(&b, "%*s\n", width, "best")
	// Latency-style metrics ("ns", "ns/access", "ms", ...) rank
	// ascending; throughput metrics descending.
	lowerIsBetter := metric == "ns" || metric == "ms" || strings.Contains(metric, "ns/")
	for _, sz := range sizes {
		fmt.Fprintf(&b, "%-14.2f", float64(sz)/float64(1<<30))
		best := "-"
		haveBest := false
		var bestVal float64
		for _, cfg := range cfgOrder {
			c, ok := rows[sz][cfg]
			if !ok {
				fmt.Fprintf(&b, "%*s", width, "?")
				continue
			}
			fmt.Fprintf(&b, "%*s", width, c.text)
			if !c.ok {
				continue
			}
			if !haveBest || (lowerIsBetter && c.val < bestVal) || (!lowerIsBetter && c.val > bestVal) {
				best, bestVal, haveBest = cfg, c.val, true
			}
		}
		fmt.Fprintf(&b, "%*s\n", width, best)
	}
	return b.String()
}
