package campaign

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/units"
)

func TestExpandGridOrderAndCount(t *testing.T) {
	spec := Spec{
		Workloads: []string{"STREAM", "GUPS"},
		Configs:   []string{"dram", "hbm", "cache"},
		Sizes:     []string{"2GB", "4GB"},
		Threads:   []int{64, 128},
	}
	points, raw, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 3 * 2 * 2; raw != want || len(points) != want {
		t.Fatalf("raw=%d points=%d, want %d", raw, len(points), want)
	}
	// Deterministic grid order: workload outermost, threads innermost.
	if points[0].Workload != "STREAM" || points[0].Threads != 64 {
		t.Fatalf("unexpected first point %+v", points[0])
	}
	if points[1].Threads != 128 {
		t.Fatalf("threads should vary innermost, got %+v", points[1])
	}
	for _, p := range points {
		if p.SKU != DefaultSKU {
			t.Fatalf("SKU default not applied: %+v", p)
		}
	}
}

func TestExpandDeduplicatesEquivalentSpellings(t *testing.T) {
	spec := Spec{
		Workloads: []string{"STREAM"},
		Configs:   []string{"hbm", "MCDRAM", "flat"}, // one config, three spellings
		Sizes:     []string{"8GB", "8192MB", "8GiB"}, // one size, three spellings
	}
	points, raw, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if raw != 9 {
		t.Fatalf("raw cross product = %d, want 9", raw)
	}
	if len(points) != 1 {
		t.Fatalf("deduplicated points = %d, want 1", len(points))
	}
	if points[0].Config != engine.HBM || points[0].Size != units.GB(8) {
		t.Fatalf("canonical point wrong: %+v", points[0])
	}
}

func TestPointKeyStability(t *testing.T) {
	a := Point{Workload: "DGEMM", Config: engine.HBM, Size: units.GB(6), Threads: 64, SKU: "7210"}
	b := Point{Workload: "DGEMM", Config: engine.HBM, Size: units.GB(6), Threads: 64, SKU: "7210"}
	if a.Key() != b.Key() {
		t.Fatal("equal points must hash equal")
	}
	c := a
	c.Threads = 128
	if a.Key() == c.Key() {
		t.Fatal("different threads must hash differently")
	}
	e := a
	e.Fidelity = FidelityTrace
	if a.Key() == e.Key() {
		t.Fatal("different fidelity must hash differently")
	}
	// The zero fidelity is canonicalized to model.
	f := a
	f.Fidelity = FidelityModel
	if a.Key() != f.Key() {
		t.Fatal("empty fidelity must hash as model")
	}
	d := a
	d.Config = engine.MemoryConfig{Kind: engine.Hybrid, HybridFlatFraction: 0.5}
	if a.Key() == d.Key() {
		t.Fatal("different config must hash differently")
	}
}

func TestSizeGridGeometric(t *testing.T) {
	spec := Spec{
		Workloads: []string{"STREAM"},
		Configs:   []string{"dram"},
		SizeGrid:  &Grid{From: "1GB", To: "16GB", Points: 5},
	}
	points, _, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("grid points = %d, want 5", len(points))
	}
	if points[0].Size != units.GB(1) {
		t.Fatalf("grid start %v, want 1 GiB", points[0].Size)
	}
	last := points[4].Size
	if last < units.GB(15.99) || last > units.GB(16.01) {
		t.Fatalf("grid end %v, want ~16 GiB", last)
	}
	// Geometric spacing: each step doubles for a 1..16 5-point grid.
	for i := 1; i < 5; i++ {
		ratio := float64(points[i].Size) / float64(points[i-1].Size)
		if ratio < 1.99 || ratio > 2.01 {
			t.Fatalf("step %d ratio %.3f, want ~2", i, ratio)
		}
	}
}

func TestExpandErrors(t *testing.T) {
	cases := []Spec{
		{},
		{Workloads: []string{"STREAM"}},
		{Workloads: []string{"STREAM"}, Configs: []string{"dram"}},
		{Workloads: []string{"STREAM"}, Configs: []string{"nope"}, Sizes: []string{"1GB"}},
		{Workloads: []string{"STREAM"}, Configs: []string{"dram"}, Sizes: []string{"bogus"}},
		{Workloads: []string{"STREAM"}, Configs: []string{"dram"}, Sizes: []string{"1GB"}, Threads: []int{0}},
		{Workloads: []string{""}, Configs: []string{"dram"}, Sizes: []string{"1GB"}},
		{Workloads: []string{"STREAM"}, Configs: []string{"dram"}, SizeGrid: &Grid{From: "4GB", To: "1GB", Points: 3}},
		{Workloads: []string{"STREAM"}, Configs: []string{"dram"}, SizeGrid: &Grid{From: "1GB", To: "4GB", Points: 1}},
		{Workloads: []string{"STREAM"}, Configs: []string{"dram"}, Sizes: []string{"1GB"}, Fidelity: "quantum"},
	}
	for i, spec := range cases {
		if _, _, err := spec.Expand(); err == nil {
			t.Errorf("case %d: Expand() accepted invalid spec %+v", i, spec)
		}
	}
}

func TestTraceFidelityCollapsesThreadAxis(t *testing.T) {
	spec := Spec{
		Fidelity:  FidelityTrace,
		Workloads: []string{"STREAM"},
		Configs:   []string{"dram", "hbm"},
		Sizes:     []string{"2GB"},
		Threads:   []int{64, 128, 256},
	}
	points, raw, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if raw != 6 {
		t.Fatalf("raw = %d, want 6", raw)
	}
	// The single-stream replay is thread-independent: the grid must
	// dedup to one point per (workload, config, size), threads 0.
	if len(points) != 2 {
		t.Fatalf("trace points = %d, want 2 (thread axis collapsed)", len(points))
	}
	for _, p := range points {
		if p.Threads != 0 || p.Fidelity != FidelityTrace {
			t.Fatalf("trace point not canonicalized: %+v", p)
		}
	}
}

func TestLatencyMetricBestIsMinimum(t *testing.T) {
	// TinyMemBench reports "ns": the best configuration is the
	// LOWEST-latency one, not the highest value.
	mk := func(cfg engine.MemoryConfig, v float64) Outcome {
		return Outcome{
			Point:  Point{Workload: "TinyMemBench", Config: cfg, Size: units.GB(8), Threads: 1, SKU: DefaultSKU},
			Metric: "ns",
			Value:  v,
		}
	}
	tables := Tables([]Outcome{mk(engine.DRAM, 130.4), mk(engine.HBM, 154.0)})
	if len(tables) != 1 {
		t.Fatalf("tables = %d", len(tables))
	}
	lines := strings.Split(strings.TrimSpace(tables[0]), "\n")
	last := strings.TrimSpace(lines[len(lines)-1])
	if !strings.HasSuffix(last, "DRAM") {
		t.Errorf("ns metric must rank ascending; row: %q", last)
	}
}

func TestExperimentOnlySpec(t *testing.T) {
	spec := Spec{Experiments: []string{"fig2", "table1"}}
	points, raw, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 0 || raw != 0 {
		t.Fatalf("experiment-only spec expanded to %d points", len(points))
	}
	if _, err := spec.CampaignKey(); err != nil {
		t.Fatal(err)
	}
}

func TestCampaignKeyCanonical(t *testing.T) {
	a := Spec{Workloads: []string{"STREAM", "GUPS"}, Configs: []string{"dram", "hbm"}, Sizes: []string{"2GB"}}
	b := Spec{Workloads: []string{"GUPS", "STREAM"}, Configs: []string{"HBM", "DDR"}, Sizes: []string{"2048MB"}}
	ka, err := a.CampaignKey()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.CampaignKey()
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatal("order- and spelling-equivalent specs must share a campaign key")
	}
	c := a
	c.Experiments = []string{"fig2"}
	kc, err := c.CampaignKey()
	if err != nil {
		t.Fatal(err)
	}
	if kc == ka {
		t.Fatal("adding experiments must change the campaign key")
	}
}

func TestTablesRendering(t *testing.T) {
	mk := func(cfg engine.MemoryConfig, size units.Bytes, v float64, unavailable string) Outcome {
		return Outcome{
			Point:       Point{Workload: "STREAM", Config: cfg, Size: size, Threads: 64, SKU: DefaultSKU},
			Metric:      "GB/s",
			Value:       v,
			Unavailable: unavailable,
		}
	}
	outs := []Outcome{
		mk(engine.DRAM, units.GB(2), 77, ""),
		mk(engine.HBM, units.GB(2), 330, ""),
		mk(engine.DRAM, units.GB(32), 77, ""),
		mk(engine.HBM, units.GB(32), 0, "does not fit"),
	}
	tables := Tables(outs)
	if len(tables) != 1 {
		t.Fatalf("got %d tables, want 1", len(tables))
	}
	tab := tables[0]
	for _, want := range []string{"STREAM, 64 threads (GB/s)", "DRAM", "HBM", "best", "330", "-"} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
	lines := strings.Split(strings.TrimSpace(tab), "\n")
	// Row for 32 GB: HBM does not fit, so DRAM must win "best".
	last := lines[len(lines)-1]
	if !strings.HasSuffix(strings.TrimSpace(last), "DRAM") {
		t.Errorf("32 GB row should pick DRAM as best: %q", last)
	}
}

func TestReplayFidelityExpansion(t *testing.T) {
	spec := Spec{
		Fidelity: FidelityReplay,
		Traces:   []string{"aaa111", "bbb222", "aaa111"}, // duplicate dedups
		Configs:  []string{"dram", "cache", "DDR"},       // "DDR" == "dram"
	}
	points, raw, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if raw != 9 {
		t.Fatalf("raw cross product %d, want 9", raw)
	}
	if len(points) != 4 { // 2 traces x 2 distinct configs
		t.Fatalf("expanded to %d points, want 4: %+v", len(points), points)
	}
	for _, p := range points {
		if p.TraceID == "" || p.Workload != "" || p.Size != 0 || p.Threads != 0 || p.Nodes != 0 {
			t.Fatalf("replay point carries a foreign axis: %+v", p)
		}
		if p.Fidelity != FidelityReplay {
			t.Fatalf("point fidelity %q", p.Fidelity)
		}
	}
	// Same trace under different configs must be distinct points.
	if points[0].Key() == points[1].Key() {
		t.Fatal("distinct configs share a key")
	}
	// And the key must separate replay points from trace points.
	tracePoint := Point{Workload: "STREAM", Fidelity: FidelityTrace, SKU: DefaultSKU}
	replayPoint := Point{TraceID: "aaa111", Fidelity: FidelityReplay, SKU: DefaultSKU}
	if tracePoint.Key() == replayPoint.Key() {
		t.Fatal("replay and trace points share a key")
	}
}

func TestReplaySpecErrors(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"no-traces", Spec{Fidelity: FidelityReplay, Configs: []string{"dram"}}, "names no traces"},
		{"no-configs", Spec{Fidelity: FidelityReplay, Traces: []string{"a"}}, "no memory configurations"},
		{"workloads", Spec{Fidelity: FidelityReplay, Traces: []string{"a"}, Configs: []string{"dram"}, Workloads: []string{"STREAM"}}, "drop the workloads axis"},
		{"sizes", Spec{Fidelity: FidelityReplay, Traces: []string{"a"}, Configs: []string{"dram"}, Sizes: []string{"8GB"}}, "drop the sizes axis"},
		{"threads", Spec{Fidelity: FidelityReplay, Traces: []string{"a"}, Configs: []string{"dram"}, Threads: []int{64}}, "drop the threads axis"},
		{"nodes", Spec{Fidelity: FidelityReplay, Traces: []string{"a"}, Configs: []string{"dram"}, Nodes: []int{2}}, "nodes axis"},
		{"empty-id", Spec{Fidelity: FidelityReplay, Traces: []string{" "}, Configs: []string{"dram"}}, "empty trace id"},
		{"traces-without-replay", Spec{Fidelity: FidelityModel, Traces: []string{"a"}, Workloads: []string{"STREAM"}, Configs: []string{"dram"}, Sizes: []string{"8GB"}}, "traces axis requires fidelity"},
	}
	for _, c := range cases {
		if _, _, err := c.spec.Expand(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestReplayTablesRendering(t *testing.T) {
	mk := func(cfg string, ns float64) Outcome {
		c, err := engine.ParseConfig(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return Outcome{
			Point:  Point{TraceID: "deadbeefcafe0123", Config: c, Fidelity: FidelityReplay, SKU: DefaultSKU},
			Metric: "ns/access",
			Value:  ns,
			Trace:  &TraceStats{Accesses: 1000, L1HitRate: 0.9, AvgLatencyNS: ns},
		}
	}
	tables := Tables([]Outcome{mk("dram", 30), mk("cache", 12)})
	if len(tables) != 1 {
		t.Fatalf("got %d tables, want 1", len(tables))
	}
	tbl := tables[0]
	for _, want := range []string{"replay of trace deadbeefcafe", "1000 accesses", "best: Cache"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}
