// Package campaign turns declarative sweep specifications — workload x
// memory configuration x problem-size grid x thread grid — into
// deduplicated sets of fully-resolved simulation points, and renders
// the collected outcomes as the aggregate tables a what-if study
// reads.
//
// A campaign is the paper's recurring workload shape: "what does
// workload W at size S under configuration C and T threads cost, and
// which mode should I pick?" asked over a whole grid at once. The
// package is transport-agnostic; internal/service executes campaigns
// behind its HTTP API and cmd/simctl submits them.
package campaign

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/keys"
	"repro/internal/units"
)

// DefaultSKU is the machine preset used when a spec names none: the
// paper's testbed chip.
const DefaultSKU = "7210"

// Fidelity levels: how a point is executed.
const (
	// FidelityModel evaluates the analytic performance model
	// (sub-microsecond; the paper's figures).
	FidelityModel = "model"
	// FidelityTrace replays a pattern-shaped synthetic trace through
	// the functional cache hierarchy (milliseconds per point; the
	// expensive queries the result cache amortizes). The replay is a
	// single access stream, so trace points are thread-independent:
	// Expand canonicalizes their Threads to 0 and a thread grid
	// collapses to one point per (workload, config, size).
	FidelityTrace = "trace"
	// FidelityReplay replays a stored trace (internal/tracestore, by
	// content address) through the functional cache hierarchy under
	// each memory configuration. Replay points carry no workload,
	// size, thread or node axis — the stored stream is the workload
	// and defines its own footprint.
	FidelityReplay = "replay"
)

// normalizeFidelity maps the empty string to FidelityModel and
// rejects unknown levels.
func normalizeFidelity(f string) (string, error) {
	switch f {
	case "", FidelityModel:
		return FidelityModel, nil
	case FidelityTrace:
		return FidelityTrace, nil
	case FidelityReplay:
		return FidelityReplay, nil
	case FidelityAdvise:
		return FidelityAdvise, nil
	case FidelityCluster:
		return FidelityCluster, nil
	}
	return "", fmt.Errorf("campaign: unknown fidelity %q (model|trace|replay|advise|cluster)", f)
}

// Grid is a geometric problem-size axis: Points sizes spaced evenly in
// log-space from From to To inclusive. It is the declarative
// alternative to listing Sizes explicitly.
type Grid struct {
	From   string `json:"from"`
	To     string `json:"to"`
	Points int    `json:"points"`
}

// Spec is a declarative sweep: the cross product of every axis. Sizes
// and SizeGrid may be combined; both feed the same axis. Experiments
// optionally names paper experiments (harness IDs, or "all") to run
// alongside the grid, so the full reproduction is servable as a
// campaign.
type Spec struct {
	Name      string   `json:"name,omitempty"`
	SKU       string   `json:"sku,omitempty"`
	Fidelity  string   `json:"fidelity,omitempty"` // model (default) | trace | replay | advise | cluster
	Workloads []string `json:"workloads,omitempty"`
	// Traces is the stored-trace axis of replay-fidelity sweeps: each
	// entry is a tracestore content address, replayed under every
	// configuration in Configs. Only valid with Fidelity "replay".
	Traces   []string `json:"traces,omitempty"`
	Configs  []string `json:"configs,omitempty"`
	Sizes    []string `json:"sizes,omitempty"`
	SizeGrid *Grid    `json:"size_grid,omitempty"`
	Threads  []int    `json:"threads,omitempty"`
	// Nodes is the node-count axis of cluster-fidelity sweeps: each
	// point decomposes the (global) problem size over that many KNL
	// nodes. Only valid with Fidelity "cluster"; empty defaults to
	// DefaultNodeCounts.
	Nodes       []int    `json:"nodes,omitempty"`
	Experiments []string `json:"experiments,omitempty"`
}

// Point is one fully-resolved simulation request: the unit of
// execution, caching and deduplication. Two textually different
// requests ("8GB" vs "8192MB", "hbm" vs "MCDRAM") resolve to the same
// Point and therefore the same Key.
type Point struct {
	Workload string
	Config   engine.MemoryConfig
	Size     units.Bytes
	Threads  int
	SKU      string
	Fidelity string // FidelityModel, FidelityTrace, FidelityAdvise or FidelityCluster
	// Nodes is the cluster node count for FidelityCluster points (Size
	// is then the global problem decomposed across them); 0 for every
	// single-node fidelity.
	Nodes int
	// TraceID is the stored trace's content address for FidelityReplay
	// points; empty for every other fidelity (Workload and Size are
	// then empty/zero — the stored stream defines both).
	TraceID string
}

// Key returns the content address of the point: a SHA-256 over its
// canonical resolved form (a keys.Builder preimage — length-prefixed
// strings, bit-pattern floats). Equal points — however they were
// spelled — hash equal, which is what makes repeated sweep points
// free; distinct points can never collide, because the encoding is
// injective.
func (p Point) Key() string {
	fid := p.Fidelity
	if fid == "" {
		fid = FidelityModel
	}
	return keys.New("point").
		Str("w", p.Workload).
		Int("k", int64(p.Config.Kind)).
		Float("f", p.Config.HybridFlatFraction).
		Int("b", int64(p.Size)).
		Int("t", int64(p.Threads)).
		Str("sku", p.SKU).
		Str("fid", fid).
		Int("n", int64(p.Nodes)).
		Str("tr", p.TraceID).
		Sum()
}

// String renders the point for logs and progress lines. Cluster
// points omit the config segment: their config axis is collapsed (the
// model picks the best per-node configuration itself), so printing
// the zero config's "DRAM" label would misreport what runs.
func (p Point) String() string {
	if p.TraceID != "" {
		return fmt.Sprintf("trace %s/%v", ShortTraceID(p.TraceID), p.Config)
	}
	if p.Nodes > 0 {
		return fmt.Sprintf("%s/%v/t%d/n%d", p.Workload, p.Size, p.Threads, p.Nodes)
	}
	return fmt.Sprintf("%s/%v/%v/t%d", p.Workload, p.Config, p.Size, p.Threads)
}

// ShortTraceID abbreviates a trace content address for labels.
func ShortTraceID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}

// expandGrid resolves the geometric size axis.
func (g Grid) expand() ([]units.Bytes, error) {
	if g.Points < 2 {
		return nil, fmt.Errorf("campaign: size grid needs >= 2 points, have %d", g.Points)
	}
	from, err := units.ParseBytes(g.From)
	if err != nil {
		return nil, fmt.Errorf("campaign: size grid from: %w", err)
	}
	to, err := units.ParseBytes(g.To)
	if err != nil {
		return nil, fmt.Errorf("campaign: size grid to: %w", err)
	}
	if from <= 0 || to <= 0 || to < from {
		return nil, fmt.Errorf("campaign: size grid [%v, %v] must be positive and ascending", from, to)
	}
	ratio := float64(to) / float64(from)
	out := make([]units.Bytes, g.Points)
	for i := 0; i < g.Points; i++ {
		out[i] = units.Bytes(float64(from) * math.Pow(ratio, float64(i)/float64(g.Points-1)))
	}
	return out, nil
}

// Expand validates the spec and resolves it into the deduplicated
// point set, in deterministic (workload, config, size, threads) grid
// order. The second return is the raw cross-product count before
// deduplication, so callers can report how much the content addressing
// saved.
func (s Spec) Expand() (points []Point, raw int, err error) {
	sku := s.SKU
	if sku == "" {
		sku = DefaultSKU
	}
	fidelity, err := normalizeFidelity(s.Fidelity)
	if err != nil {
		return nil, 0, err
	}
	if fidelity == FidelityReplay {
		return s.expandReplay(sku)
	}
	if len(s.Traces) != 0 {
		return nil, 0, fmt.Errorf("campaign: the traces axis requires fidelity %q (have %q)", FidelityReplay, fidelity)
	}
	if len(s.Workloads) == 0 && len(s.Experiments) == 0 {
		return nil, 0, fmt.Errorf("campaign: spec names no workloads and no experiments")
	}
	if len(s.Workloads) == 0 {
		return nil, 0, nil // experiment-only campaign
	}
	if len(s.Configs) == 0 && fidelity != FidelityAdvise && fidelity != FidelityCluster {
		return nil, 0, fmt.Errorf("campaign: spec names workloads but no memory configurations")
	}
	var sizes []units.Bytes
	for _, sz := range s.Sizes {
		b, err := units.ParseBytes(sz)
		if err != nil {
			return nil, 0, fmt.Errorf("campaign: %w", err)
		}
		if b <= 0 {
			return nil, 0, fmt.Errorf("campaign: size %q must be positive", sz)
		}
		sizes = append(sizes, b)
	}
	if s.SizeGrid != nil {
		grid, err := s.SizeGrid.expand()
		if err != nil {
			return nil, 0, err
		}
		sizes = append(sizes, grid...)
	}
	if len(sizes) == 0 {
		return nil, 0, fmt.Errorf("campaign: spec has no problem sizes (set sizes or size_grid)")
	}
	threads := s.Threads
	if len(threads) == 0 {
		threads = []int{64}
	}
	for _, t := range threads {
		if t <= 0 {
			return nil, 0, fmt.Errorf("campaign: thread count %d must be positive", t)
		}
	}
	nodes := s.Nodes
	if fidelity != FidelityCluster {
		if len(nodes) != 0 {
			return nil, 0, fmt.Errorf("campaign: the nodes axis requires fidelity %q (have %q)", FidelityCluster, fidelity)
		}
		nodes = []int{0} // single-node fidelities carry no node axis
	} else {
		if len(nodes) == 0 {
			nodes = DefaultNodeCounts()
		}
		for _, n := range nodes {
			if n < 1 {
				return nil, 0, fmt.Errorf("campaign: node count %d must be >= 1", n)
			}
		}
	}
	var cfgs []engine.MemoryConfig
	for _, raw := range s.Configs {
		cfg, err := engine.ParseConfig(raw)
		if err != nil {
			return nil, 0, fmt.Errorf("campaign: %w", err)
		}
		cfgs = append(cfgs, cfg)
	}
	if (fidelity == FidelityAdvise || fidelity == FidelityCluster) && len(cfgs) == 0 {
		// The advisor sweeps every memory mode itself, and a cluster
		// point picks the best per-node configuration automatically;
		// the config axis is implicit for both.
		cfgs = []engine.MemoryConfig{{}}
	}

	seen := make(map[string]bool)
	for _, w := range s.Workloads {
		w = strings.TrimSpace(w)
		if w == "" {
			return nil, 0, fmt.Errorf("campaign: empty workload name")
		}
		for _, cfg := range cfgs {
			for _, size := range sizes {
				for _, th := range threads {
					for _, n := range nodes {
						raw++
						if fidelity == FidelityTrace {
							// Trace replay is a single stream; the thread
							// axis collapses (dedup below removes the
							// redundant grid points).
							th = 0
						}
						if fidelity == FidelityAdvise || fidelity == FidelityCluster {
							// The advisor evaluates every memory mode,
							// and a cluster point picks the best per-node
							// configuration itself; the config axis
							// collapses the same way.
							cfg = engine.MemoryConfig{}
						}
						p := Point{Workload: w, Config: cfg, Size: size, Threads: th, SKU: sku, Fidelity: fidelity, Nodes: n}
						k := p.Key()
						if seen[k] {
							continue
						}
						seen[k] = true
						points = append(points, p)
					}
				}
			}
		}
	}
	return points, raw, nil
}

// expandReplay resolves a replay-fidelity spec: the cross product of
// stored traces x memory configurations. The workload, size, thread
// and node axes do not apply — the stored stream is the workload and
// defines its own footprint — so naming them is a spec error rather
// than a silently ignored field.
func (s Spec) expandReplay(sku string) (points []Point, raw int, err error) {
	if len(s.Traces) == 0 {
		return nil, 0, fmt.Errorf("campaign: replay spec names no traces")
	}
	if len(s.Workloads) != 0 {
		return nil, 0, fmt.Errorf("campaign: replay fidelity replays stored traces; drop the workloads axis")
	}
	if len(s.Sizes) != 0 || s.SizeGrid != nil {
		return nil, 0, fmt.Errorf("campaign: replay points take their footprint from the stored trace; drop the sizes axis")
	}
	if len(s.Nodes) != 0 {
		return nil, 0, fmt.Errorf("campaign: the nodes axis requires fidelity %q (have %q)", FidelityCluster, FidelityReplay)
	}
	if len(s.Threads) != 0 {
		return nil, 0, fmt.Errorf("campaign: replay is a single access stream; drop the threads axis")
	}
	if len(s.Configs) == 0 {
		return nil, 0, fmt.Errorf("campaign: replay spec names no memory configurations")
	}
	var cfgs []engine.MemoryConfig
	for _, rawCfg := range s.Configs {
		cfg, err := engine.ParseConfig(rawCfg)
		if err != nil {
			return nil, 0, fmt.Errorf("campaign: %w", err)
		}
		cfgs = append(cfgs, cfg)
	}
	seen := make(map[string]bool)
	for _, id := range s.Traces {
		id = strings.TrimSpace(id)
		if id == "" {
			return nil, 0, fmt.Errorf("campaign: empty trace id")
		}
		for _, cfg := range cfgs {
			raw++
			p := Point{TraceID: id, Config: cfg, SKU: sku, Fidelity: FidelityReplay}
			k := p.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			points = append(points, p)
		}
	}
	return points, raw, nil
}

// CampaignKey content-addresses a whole campaign: the sorted point
// keys plus the experiment list and SKU. Two specs that expand to the
// same work hash equal, so a repeated submission is served from the
// campaign-level cache without touching a single point.
func (s Spec) CampaignKey() (string, error) {
	points, _, err := s.Expand()
	if err != nil {
		return "", err
	}
	pointKeys := make([]string, 0, len(points))
	for _, p := range points {
		pointKeys = append(pointKeys, p.Key())
	}
	sort.Strings(pointKeys)
	exps := append([]string(nil), s.Experiments...)
	sort.Strings(exps)
	sku := s.SKU
	if sku == "" {
		sku = DefaultSKU
	}
	b := keys.New("campaign")
	for _, k := range pointKeys {
		b.Str("p", k)
	}
	for _, e := range exps {
		b.Str("exp", e)
	}
	b.Str("sku", sku)
	return b.Sum(), nil
}
