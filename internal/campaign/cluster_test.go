package campaign

import (
	"strings"
	"testing"

	"repro/internal/units"
)

func TestClusterFidelityExpandsNodeAxis(t *testing.T) {
	spec := Spec{
		Fidelity:  FidelityCluster,
		Workloads: []string{"MiniFE"},
		Sizes:     []string{"120GB"},
		Threads:   []int{64},
		Nodes:     []int{2, 4, 8, 12},
	}
	points, raw, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if raw != 4 || len(points) != 4 {
		t.Fatalf("raw=%d points=%d, want 4", raw, len(points))
	}
	for i, want := range []int{2, 4, 8, 12} {
		p := points[i]
		if p.Nodes != want || p.Fidelity != FidelityCluster || p.Threads != 64 {
			t.Fatalf("point %d not canonical: %+v", i, p)
		}
		if p.Config.String() != "DRAM" || p.Config.HybridFlatFraction != 0 {
			// The config axis collapses to the zero config for cluster
			// points (the model picks the best per-node configuration).
			t.Fatalf("point %d carries a config: %+v", i, p)
		}
	}
}

func TestClusterFidelityCollapsesConfigAxisAndDedupsNodes(t *testing.T) {
	spec := Spec{
		Fidelity:  FidelityCluster,
		Workloads: []string{"MiniFE"},
		Configs:   []string{"dram", "hbm", "cache"}, // collapses
		Sizes:     []string{"120GB", "122880MB"},    // one size, two spellings
		Nodes:     []int{4, 4, 8},                   // duplicate node count
	}
	points, raw, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if raw != 3*2*3 {
		t.Fatalf("raw = %d, want 18", raw)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2 (config axis and spellings collapsed)", len(points))
	}
}

func TestClusterFidelityDefaultsNodeSweep(t *testing.T) {
	spec := Spec{
		Fidelity:  FidelityCluster,
		Workloads: []string{"MiniFE"},
		Sizes:     []string{"120GB"},
	}
	points, _, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultNodeCounts()
	if len(points) != len(def) {
		t.Fatalf("points = %d, want the default sweep of %d", len(points), len(def))
	}
	for i, p := range points {
		if p.Nodes != def[i] {
			t.Fatalf("point %d nodes = %d, want %d", i, p.Nodes, def[i])
		}
	}
}

func TestClusterFidelityErrors(t *testing.T) {
	cases := []Spec{
		// Node count below one.
		{Fidelity: FidelityCluster, Workloads: []string{"MiniFE"}, Sizes: []string{"120GB"}, Nodes: []int{0}},
		{Fidelity: FidelityCluster, Workloads: []string{"MiniFE"}, Sizes: []string{"120GB"}, Nodes: []int{-3}},
		// The nodes axis is meaningless for single-node fidelities.
		{Workloads: []string{"MiniFE"}, Configs: []string{"dram"}, Sizes: []string{"120GB"}, Nodes: []int{2}},
		{Fidelity: FidelityTrace, Workloads: []string{"MiniFE"}, Configs: []string{"dram"}, Sizes: []string{"120GB"}, Nodes: []int{2}},
		{Fidelity: FidelityAdvise, Workloads: []string{"MiniFE"}, Sizes: []string{"120GB"}, Nodes: []int{2}},
	}
	for i, spec := range cases {
		if _, _, err := spec.Expand(); err == nil {
			t.Errorf("case %d: Expand() accepted invalid spec %+v", i, spec)
		}
	}
}

func TestPointKeySeparatesNodeCounts(t *testing.T) {
	a := Point{Workload: "MiniFE", Size: units.GB(120), Threads: 64, SKU: DefaultSKU, Fidelity: FidelityCluster, Nodes: 8}
	b := a
	b.Nodes = 12
	if a.Key() == b.Key() {
		t.Fatal("different node counts must hash differently")
	}
	c := a
	if a.Key() != c.Key() {
		t.Fatal("equal cluster points must hash equal")
	}
}

func TestClusterTablesRendering(t *testing.T) {
	mk := func(nodes int, stats *ClusterStats, unavailable string) Outcome {
		return Outcome{
			Point: Point{
				Workload: "MiniFE", Size: units.GB(120), Threads: 64,
				SKU: DefaultSKU, Fidelity: FidelityCluster, Nodes: nodes,
			},
			Metric:      "iteration ns",
			Unavailable: unavailable,
			Cluster:     stats,
		}
	}
	outs := []Outcome{
		mk(2, nil, "no configuration can run 60 GiB per node"),
		mk(8, &ClusterStats{PerNodeSize: "15.0 GiB", Config: "Cache Mode",
			ComputeNS: 9e6, HaloNS: 0.8e6, ReduceNS: 0.2e6, TotalNS: 10e6, Efficiency: 0.91}, ""),
		mk(12, &ClusterStats{PerNodeSize: "10.0 GiB", Config: "HBM",
			ComputeNS: 4e6, HaloNS: 0.8e6, ReduceNS: 0.2e6, TotalNS: 5e6, Efficiency: 0.88, FitsHBM: true}, ""),
	}
	tables := Tables(outs)
	if len(tables) != 1 {
		t.Fatalf("tables = %d, want 1", len(tables))
	}
	tab := tables[0]
	for _, want := range []string{
		"MiniFE, 120.0 GiB global, 64 threads",
		"nodes", "per-node", "config", "iter ms", "halo%", "reduce%", "eff",
		"Cache Mode", "HBM", "<- fits HBM",
		"sub-problem first fits HBM at 12 nodes",
	} {
		if !strings.Contains(tab, want) {
			t.Errorf("cluster table missing %q:\n%s", want, tab)
		}
	}
	// The over-capacity 2-node decomposition renders as a dash row.
	for _, line := range strings.Split(tab, "\n") {
		if strings.HasPrefix(line, "2 ") {
			if !strings.Contains(line, "-") {
				t.Errorf("over-capacity row not dashed: %q", line)
			}
		}
	}
	if MinHBMNodes(outs) != 12 {
		t.Errorf("MinHBMNodes = %d, want 12", MinHBMNodes(outs))
	}
	// A sweep that never fits HBM says so.
	none := Tables(outs[:2])
	if !strings.Contains(none[0], "no swept node count") {
		t.Errorf("missing no-fit summary:\n%s", none[0])
	}
}
