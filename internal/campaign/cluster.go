package campaign

import (
	"fmt"
	"sort"
	"strings"
)

// FidelityCluster executes a point through the multi-node cluster
// model (internal/cluster) instead of a single-node prediction: the
// point's Size is the *global* problem, decomposed over Point.Nodes
// KNL nodes connected by an Aries-like interconnect, and the outcome
// records the per-iteration cost under the best per-node memory
// configuration. Cluster points have no memory-config axis — the
// model picks the fastest configuration per decomposition — so Expand
// collapses the Configs axis to one canonical point per (workload,
// size, threads, nodes).
const FidelityCluster = "cluster"

// DefaultNodeCounts is the node-count sweep used when a cluster spec
// names none: the paper's 12-node Aries testbed bracketed by smaller
// and larger decompositions, so the table shows the crossover into
// the §IV-C HBM sweet spot.
func DefaultNodeCounts() []int { return []int{1, 2, 4, 8, 12, 16} }

// ClusterStats carries the multi-node detail of a FidelityCluster
// point: the decomposition, the winning per-node configuration, and
// the cost split between compute and network.
type ClusterStats struct {
	// PerNodeSize is the sub-problem each node is assigned, in
	// canonical form ("10.0 GiB").
	PerNodeSize string `json:"per_node_size"`
	// Config is the best per-node memory configuration ("HBM",
	// "Cache Mode", ...); empty when the decomposition fits nowhere.
	Config string `json:"config,omitempty"`
	// ComputeNS, HaloNS and ReduceNS split the per-iteration time into
	// the model evaluation, the halo exchange and the allreduce.
	ComputeNS float64 `json:"compute_ns"`
	HaloNS    float64 `json:"halo_ns"`
	ReduceNS  float64 `json:"reduce_ns"`
	// TotalNS is the predicted per-iteration time (= the outcome's
	// Value).
	TotalNS float64 `json:"total_ns"`
	// Efficiency is the parallel efficiency vs a single node running
	// the global problem under its own best configuration.
	Efficiency float64 `json:"efficiency"`
	// FitsHBM reports whether the winning configuration binds the
	// sub-problem to HBM — the §IV-C decomposition target.
	FitsHBM bool `json:"fits_hbm"`
}

// CommFraction is the fraction of the iteration spent on the network
// (halo exchange + allreduce).
func (s ClusterStats) CommFraction() float64 {
	if s.TotalNS <= 0 {
		return 0
	}
	return (s.HaloNS + s.ReduceNS) / s.TotalNS
}

// MinHBMNodes is the decomposition advisor's answer for one swept
// workload: the smallest node count whose best per-node configuration
// binds to HBM (0 when no swept decomposition fits) — §IV-C's "with
// enough nodes, assign each node a sub-problem close to the HBM
// capacity".
func MinHBMNodes(outcomes []Outcome) int {
	min := 0
	for _, o := range outcomes {
		if o.Cluster == nil || !o.Cluster.FitsHBM {
			continue
		}
		if min == 0 || o.Point.Nodes < min {
			min = o.Point.Nodes
		}
	}
	return min
}

// formatEfficiency renders a parallel-efficiency cell. Zero means the
// reference is undefined — the global problem fits no single-node
// configuration — and renders as a dash, not a misleading 0.00.
func formatEfficiency(eff float64) string {
	if eff <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", eff)
}

// ClusterTableHeader is the scaling table's column header, shared by
// campaign tables and the service's /v1/cluster rendering so the two
// surfaces cannot drift.
func ClusterTableHeader() string {
	return fmt.Sprintf("%-7s %-12s %-14s %12s %8s %8s %8s\n",
		"nodes", "per-node", "config", "iter ms", "halo%", "reduce%", "eff")
}

// RenderClusterRow renders one node count of a scaling table. Nil
// stats is the "no bar" dash row (the decomposition fits no per-node
// configuration).
func RenderClusterRow(nodes int, s *ClusterStats) string {
	if s == nil {
		return fmt.Sprintf("%-7d %-12s %-14s %12s %8s %8s %8s\n",
			nodes, "-", "-", "-", "-", "-", "-")
	}
	marker := ""
	if s.FitsHBM {
		marker = "  <- fits HBM"
	}
	return fmt.Sprintf("%-7d %-12s %-14s %12.3f %8.2f %8.2f %8s%s\n",
		nodes, s.PerNodeSize, s.Config, s.TotalNS/1e6,
		100*s.HaloNS/s.TotalNS, 100*s.ReduceNS/s.TotalNS, formatEfficiency(s.Efficiency), marker)
}

// RenderClusterSummary renders the decomposition advisor's trailing
// line: the minimum HBM-fitting node count, or the no-fit verdict.
func RenderClusterSummary(minHBMNodes int) string {
	if minHBMNodes > 0 {
		return fmt.Sprintf("sub-problem first fits HBM at %d nodes (the §IV-C decomposition rule)\n", minHBMNodes)
	}
	return "no swept node count decomposes into HBM-resident sub-problems\n"
}

// clusterTables renders cluster-fidelity outcomes: one scaling table
// per (workload, size, threads) group, rows are node counts, columns
// are the decomposition (per-node working set), the winning per-node
// configuration, the iteration time and its halo/allreduce overhead
// split, and the parallel efficiency. A trailing line reports the
// minimum HBM-fitting node count — the §IV-C answer. Node counts that
// cannot run anywhere (over-capacity per-node working sets) render as
// dash rows.
func clusterTables(outcomes []Outcome) []string {
	type groupKey struct {
		workload string
		size     int64
		threads  int
	}
	var order []groupKey
	groups := make(map[groupKey][]Outcome)
	for _, o := range outcomes {
		k := groupKey{o.Point.Workload, int64(o.Point.Size), o.Point.Threads}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], o)
	}
	var tables []string
	for _, k := range order {
		tables = append(tables, renderClusterGroup(groups[k]))
	}
	return tables
}

// renderClusterGroup renders one workload x global size x threads
// scaling table.
func renderClusterGroup(outcomes []Outcome) string {
	sorted := append([]Outcome(nil), outcomes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Point.Nodes < sorted[j].Point.Nodes })
	p := sorted[0].Point

	var b strings.Builder
	fmt.Fprintf(&b, "%s, %v global, %d threads (per-iteration cost, best per-node configuration)\n",
		p.Workload, p.Size, p.Threads)
	b.WriteString(ClusterTableHeader())
	for _, o := range sorted {
		// A nil Cluster is an over-capacity (or otherwise unrunnable)
		// decomposition: the paper prints no bar.
		b.WriteString(RenderClusterRow(o.Point.Nodes, o.Cluster))
	}
	b.WriteString(RenderClusterSummary(MinHBMNodes(sorted)))
	return b.String()
}
