package campaign

import (
	"fmt"
	"sort"
	"strings"
)

// FidelityAdvise executes a point through the placement advisor
// instead of a single-configuration prediction: the advisor evaluates
// every memory mode (all-DDR, cache, flat optimal placement, hybrid
// partitions) for the workload's derived structure set and the point
// records the ranked result. Advise points have no memory-config axis
// — the advisor sweeps all of them — so Expand collapses the Configs
// axis to one canonical point per (workload, size, threads).
const FidelityAdvise = "advise"

// AdviceOption is one evaluated memory mode in wire form, ranked
// within an AdviceSummary. Times are nanoseconds; speedups are ratios
// (>1 means this mode is faster than the reference).
type AdviceOption struct {
	// Mode is ddr, cache, flat, or hybrid.
	Mode string `json:"mode"`
	// Config is the rendered engine configuration ("DRAM", "Cache
	// Mode", "HBM", "Hybrid(50% flat)").
	Config string `json:"config"`
	// FlatFraction is the MCDRAM fraction exposed flat (1 for flat
	// mode, 0 for ddr and cache).
	FlatFraction float64 `json:"flat_fraction,omitempty"`
	// TimeNS is the predicted phase time.
	TimeNS float64 `json:"time_ns"`
	// SpeedupVsDRAM compares against the all-DDR option.
	SpeedupVsDRAM float64 `json:"speedup_vs_dram"`
	// SpeedupVsCache compares against the cache-mode option.
	SpeedupVsCache float64 `json:"speedup_vs_cache"`
	// HBMUsed is the flat-placed HBM footprint in canonical form
	// ("6GiB").
	HBMUsed string `json:"hbm_used,omitempty"`
	// HBMHeadroom is the unplaced flat capacity remaining.
	HBMHeadroom string `json:"hbm_headroom,omitempty"`
	// Assignments maps structure names to "hbm" or "ddr" for flat and
	// hybrid options.
	Assignments map[string]string `json:"assignments,omitempty"`
}

// Label renders the option's mode with its hybrid fraction
// ("hybrid:0.50"), the form tables and CLIs print.
func (o AdviceOption) Label() string {
	if o.Mode == "hybrid" {
		return fmt.Sprintf("hybrid:%.2f", o.FlatFraction)
	}
	return o.Mode
}

// AdviceSummary is the ranked mode recommendation of one advise
// point: Options fastest-first, Best naming the winner's mode label.
type AdviceSummary struct {
	// Best is the winning option's label ("flat", "hybrid:0.50", ...).
	Best string `json:"best"`
	// TotalFootprint is the summed structure footprint in canonical
	// form.
	TotalFootprint string `json:"total_footprint"`
	// Options holds every evaluated mode, fastest first.
	Options []AdviceOption `json:"options"`
}

// adviseModeRank orders advice columns canonically (reference modes
// first, then increasing flat exposure) so sweep tables render the
// same columns in the same order for every row.
func adviseModeRank(o AdviceOption) float64 {
	switch o.Mode {
	case "ddr":
		return 0
	case "cache":
		return 1
	case "hybrid":
		return 1 + o.FlatFraction // 1.25, 1.5, 1.75
	case "flat":
		return 3
	}
	return 4
}

// adviseTables renders advise-fidelity outcomes: one table per
// (workload, threads) group, rows are problem sizes, columns are the
// evaluated memory modes (cells hold the mode's speedup vs all-DDR),
// and the trailing column names the recommended mode. Unavailable
// points (footprint beyond the node) render as dash rows.
func adviseTables(outcomes []Outcome) []string {
	type groupKey struct {
		workload string
		threads  int
	}
	var order []groupKey
	groups := make(map[groupKey][]Outcome)
	for _, o := range outcomes {
		k := groupKey{o.Point.Workload, o.Point.Threads}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], o)
	}
	var tables []string
	for _, k := range order {
		tables = append(tables, renderAdviseGroup(k.workload, k.threads, groups[k]))
	}
	return tables
}

// renderAdviseGroup renders one workload x threads advise grid.
func renderAdviseGroup(workload string, threads int, outcomes []Outcome) string {
	// Collect the mode columns in canonical order.
	type col struct {
		label string
		rank  float64
	}
	var cols []col
	seen := make(map[string]bool)
	for _, o := range outcomes {
		if o.Advice == nil {
			continue
		}
		for _, op := range o.Advice.Options {
			label := op.Label()
			if !seen[label] {
				seen[label] = true
				cols = append(cols, col{label, adviseModeRank(op)})
			}
		}
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i].rank < cols[j].rank })

	rows := make(map[int64]map[string]float64) // size -> mode label -> speedup vs DDR
	best := make(map[int64]string)
	var sizes []int64
	for _, o := range outcomes {
		sz := int64(o.Point.Size)
		if _, ok := rows[sz]; !ok {
			rows[sz] = make(map[string]float64)
			sizes = append(sizes, sz)
		}
		if o.Advice == nil {
			best[sz] = "-" // unavailable: the paper prints no bar
			continue
		}
		for _, op := range o.Advice.Options {
			rows[sz][op.Label()] = op.SpeedupVsDRAM
		}
		best[sz] = o.Advice.Best
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })

	var b strings.Builder
	fmt.Fprintf(&b, "%s, %d threads (speedup vs all-DDR)\n", workload, threads)
	const width = 14
	fmt.Fprintf(&b, "%-14s", "Size (GB)")
	for _, c := range cols {
		fmt.Fprintf(&b, "%*s", width, c.label)
	}
	fmt.Fprintf(&b, "%*s\n", width, "recommended")
	for _, sz := range sizes {
		fmt.Fprintf(&b, "%-14.2f", float64(sz)/float64(1<<30))
		for _, c := range cols {
			if v, ok := rows[sz][c.label]; ok {
				fmt.Fprintf(&b, "%*.2f", width, v)
			} else {
				fmt.Fprintf(&b, "%*s", width, "-")
			}
		}
		fmt.Fprintf(&b, "%*s\n", width, best[sz])
	}
	return b.String()
}
