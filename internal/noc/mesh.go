// Package noc models the KNL on-chip mesh interconnect: a 2D grid of
// tile positions, dimension-ordered (Y-then-X on KNL) routing, the
// distributed tag directory that maintains L2 coherence (MESIF), and
// the cluster modes (all-to-all, quadrant, SNC-4) that control how
// addresses map to directory homes and memory controllers.
//
// The mesh contributes the tile-to-tile and tile-to-memory-controller
// hop latencies that sit between the L2 miss and the memory device in
// the latency model of Fig. 3.
package noc

import (
	"fmt"
)

// ClusterMode selects how physical addresses are striped across tag
// directories and memory controllers.
type ClusterMode int

const (
	// AllToAll: an address may be homed on any directory and served by
	// any memory controller (worst-case traversal).
	AllToAll ClusterMode = iota
	// Quadrant: directory and memory controller for an address are in
	// the same quadrant of the die; the requesting tile may be
	// anywhere. This is the paper's testbed configuration (§III-A).
	Quadrant
	// SNC4: sub-NUMA clustering; requestor, directory, and controller
	// are all within one quadrant exposed as a NUMA domain.
	SNC4
)

// String names the cluster mode as Intel documentation does.
func (m ClusterMode) String() string {
	switch m {
	case AllToAll:
		return "all-to-all"
	case Quadrant:
		return "quadrant"
	case SNC4:
		return "SNC-4"
	}
	return fmt.Sprintf("ClusterMode(%d)", int(m))
}

// Coord is a tile position on the mesh grid.
type Coord struct{ X, Y int }

// Mesh is the on-die interconnect.
type Mesh struct {
	Cols, Rows int
	Mode       ClusterMode

	// HopLatencyNS is the per-hop traversal cost; KNL's mesh runs at
	// ~1.7 GHz with ~1-cycle-per-stop forwarding plus
	// injection/ejection overheads folded into the constant.
	HopLatencyNS float64
	// DirectoryLookupNS is the tag-directory access cost at the home
	// tile (the CHA lookup).
	DirectoryLookupNS float64

	tiles []Coord // active tile coordinates, row-major allocation
}

// NewMesh builds a mesh with activeTiles tile stops laid out row-major
// on a cols x rows grid. KNL dies reserve grid positions for memory
// controllers and IO; those simply do not appear in the tile list.
func NewMesh(cols, rows, activeTiles int, mode ClusterMode) (*Mesh, error) {
	if cols <= 0 || rows <= 0 {
		return nil, fmt.Errorf("noc: bad mesh geometry %dx%d", cols, rows)
	}
	if activeTiles <= 0 || activeTiles > cols*rows {
		return nil, fmt.Errorf("noc: %d active tiles do not fit %dx%d mesh", activeTiles, cols, rows)
	}
	m := &Mesh{
		Cols: cols, Rows: rows, Mode: mode,
		HopLatencyNS:      1.6,
		DirectoryLookupNS: 6.0,
	}
	for i := 0; i < activeTiles; i++ {
		m.tiles = append(m.tiles, Coord{X: i % cols, Y: i / cols})
	}
	return m, nil
}

// Tiles returns the number of active tiles.
func (m *Mesh) Tiles() int { return len(m.tiles) }

// TileCoord returns the grid coordinate of tile id.
func (m *Mesh) TileCoord(id int) (Coord, error) {
	if id < 0 || id >= len(m.tiles) {
		return Coord{}, fmt.Errorf("noc: tile %d out of range [0,%d)", id, len(m.tiles))
	}
	return m.tiles[id], nil
}

// Hops returns the dimension-ordered (Y-then-X) hop count between two
// coordinates.
func Hops(a, b Coord) int {
	dx := a.X - b.X
	if dx < 0 {
		dx = -dx
	}
	dy := a.Y - b.Y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// DirectoryHome returns the tile that homes the tag directory entry
// for a cache-line address, under the configured cluster mode.
//
// In quadrant and SNC-4 modes the home is constrained to the quadrant
// owning the address; in all-to-all it hashes across every tile.
func (m *Mesh) DirectoryHome(lineAddr uint64) int {
	n := uint64(len(m.tiles))
	h := mix(lineAddr)
	switch m.Mode {
	case AllToAll:
		return int(h % n)
	default:
		// Quadrant-constrained: pick the quadrant from the address,
		// then a tile within that quadrant.
		q := lineAddr >> 6 & 3 // quadrant of this address
		per := n / 4
		if per == 0 {
			return int(h % n)
		}
		return int(q*per + h%per)
	}
}

// quadrantOf returns which quadrant of the grid a coordinate is in.
func (m *Mesh) quadrantOf(c Coord) int {
	q := 0
	if c.X >= m.Cols/2 {
		q++
	}
	if c.Y >= m.Rows/2 {
		q += 2
	}
	return q
}

// MissPathLatencyNS estimates the uncontended mesh cost of an L2 miss
// issued by tile `from`: traversal to the directory home, the
// directory lookup, and traversal from the home to a memory
// controller at the die edge. It excludes the memory device time.
func (m *Mesh) MissPathLatencyNS(from int, lineAddr uint64) (float64, error) {
	src, err := m.TileCoord(from)
	if err != nil {
		return 0, err
	}
	home := m.DirectoryHome(lineAddr)
	dst, err := m.TileCoord(home)
	if err != nil {
		return 0, err
	}
	h := Hops(src, dst)
	// Memory controller sits at the die edge of the home's quadrant:
	// approximate with distance from home to its quadrant edge column.
	edgeX := 0
	if dst.X >= m.Cols/2 {
		edgeX = m.Cols - 1
	}
	h += Hops(dst, Coord{X: edgeX, Y: dst.Y})
	return float64(h)*m.HopLatencyNS + m.DirectoryLookupNS, nil
}

// AvgMissPathLatencyNS averages MissPathLatencyNS over all tiles and an
// address sample, giving the mesh constant used by the analytic model.
func (m *Mesh) AvgMissPathLatencyNS() float64 {
	const samples = 256
	total := 0.0
	n := 0
	for t := 0; t < len(m.tiles); t++ {
		for s := 0; s < samples/len(m.tiles)+1; s++ {
			addr := mix(uint64(t)*2654435761 + uint64(s)*40503)
			l, err := m.MissPathLatencyNS(t, addr)
			if err != nil {
				continue
			}
			total += l
			n++
		}
	}
	if n == 0 {
		return m.DirectoryLookupNS
	}
	return total / float64(n)
}

// mix is a 64-bit finalizer (splitmix64-style) used to hash addresses
// onto directory homes.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
