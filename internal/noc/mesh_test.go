package noc

import (
	"testing"
	"testing/quick"
)

func TestNewMeshValidation(t *testing.T) {
	if _, err := NewMesh(0, 6, 1, Quadrant); err == nil {
		t.Error("zero cols accepted")
	}
	if _, err := NewMesh(6, 6, 37, Quadrant); err == nil {
		t.Error("too many tiles accepted")
	}
	if _, err := NewMesh(6, 6, 0, Quadrant); err == nil {
		t.Error("zero tiles accepted")
	}
	m, err := NewMesh(6, 6, 32, Quadrant)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tiles() != 32 {
		t.Fatalf("Tiles = %d, want 32", m.Tiles())
	}
}

func TestClusterModeString(t *testing.T) {
	if AllToAll.String() != "all-to-all" || Quadrant.String() != "quadrant" || SNC4.String() != "SNC-4" {
		t.Fatal("cluster mode names wrong")
	}
	if ClusterMode(7).String() != "ClusterMode(7)" {
		t.Fatal("unknown mode formatting")
	}
}

func TestTileCoord(t *testing.T) {
	m, _ := NewMesh(6, 6, 32, Quadrant)
	c, err := m.TileCoord(0)
	if err != nil || c != (Coord{0, 0}) {
		t.Fatalf("tile 0 at %v, %v", c, err)
	}
	c, err = m.TileCoord(7)
	if err != nil || c != (Coord{1, 1}) {
		t.Fatalf("tile 7 at %v (row-major on 6 cols), err %v", c, err)
	}
	if _, err := m.TileCoord(32); err == nil {
		t.Error("out-of-range tile accepted")
	}
	if _, err := m.TileCoord(-1); err == nil {
		t.Error("negative tile accepted")
	}
}

func TestHops(t *testing.T) {
	if Hops(Coord{0, 0}, Coord{0, 0}) != 0 {
		t.Error("self distance nonzero")
	}
	if Hops(Coord{0, 0}, Coord{3, 2}) != 5 {
		t.Error("manhattan distance wrong")
	}
	if Hops(Coord{3, 2}, Coord{0, 0}) != 5 {
		t.Error("distance not symmetric")
	}
}

func TestDirectoryHomeInRangeProperty(t *testing.T) {
	for _, mode := range []ClusterMode{AllToAll, Quadrant, SNC4} {
		m, _ := NewMesh(6, 6, 32, mode)
		f := func(addr uint64) bool {
			h := m.DirectoryHome(addr)
			return h >= 0 && h < m.Tiles()
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v: %v", mode, err)
		}
	}
}

func TestDirectoryHomeDeterministic(t *testing.T) {
	m, _ := NewMesh(6, 6, 32, Quadrant)
	for _, a := range []uint64{0, 1, 1 << 40, 0xdeadbeef} {
		if m.DirectoryHome(a) != m.DirectoryHome(a) {
			t.Fatalf("home of %#x not deterministic", a)
		}
	}
}

func TestDirectoryHomeSpreads(t *testing.T) {
	m, _ := NewMesh(6, 6, 32, AllToAll)
	seen := map[int]int{}
	for a := uint64(0); a < 4096; a++ {
		seen[m.DirectoryHome(a*64)]++
	}
	if len(seen) < m.Tiles()/2 {
		t.Fatalf("directory homes poorly spread: only %d of %d tiles used", len(seen), m.Tiles())
	}
}

func TestQuadrantConstrainsHome(t *testing.T) {
	m, _ := NewMesh(6, 6, 32, Quadrant)
	// In quadrant mode, addresses with the same quadrant bits map into
	// one contiguous quarter of the tile list.
	per := m.Tiles() / 4
	for a := uint64(0); a < 1024; a++ {
		addr := a << 8 // keep quadrant bits (6..7) zero
		h := m.DirectoryHome(addr)
		if h >= per {
			t.Fatalf("address %#x with quadrant 0 homed at tile %d >= %d", addr, h, per)
		}
	}
}

func TestMissPathLatency(t *testing.T) {
	m, _ := NewMesh(6, 6, 32, Quadrant)
	l, err := m.MissPathLatencyNS(0, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if l < m.DirectoryLookupNS {
		t.Fatalf("latency %v below directory cost %v", l, m.DirectoryLookupNS)
	}
	maxHops := float64((m.Cols-1)+(m.Rows-1)+m.Cols-1) * m.HopLatencyNS
	if l > maxHops+m.DirectoryLookupNS {
		t.Fatalf("latency %v exceeds worst-case path %v", l, maxHops+m.DirectoryLookupNS)
	}
	if _, err := m.MissPathLatencyNS(99, 0); err == nil {
		t.Error("invalid tile accepted")
	}
}

func TestAvgMissPathLatencyReasonable(t *testing.T) {
	m, _ := NewMesh(6, 6, 32, Quadrant)
	avg := m.AvgMissPathLatencyNS()
	// Should land between the directory cost alone and the worst case.
	if avg < m.DirectoryLookupNS || avg > 40 {
		t.Fatalf("avg mesh miss path = %v ns, want ~10-25 ns", avg)
	}
	// Quadrant mode should not be slower than all-to-all on average:
	// its memory-controller leg is quadrant-local.
	a2a, _ := NewMesh(6, 6, 32, AllToAll)
	if avg > a2a.AvgMissPathLatencyNS()*1.25 {
		t.Fatalf("quadrant (%v) much slower than all-to-all (%v)", avg, a2a.AvgMissPathLatencyNS())
	}
}
