package service

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cache"
	"repro/internal/campaign"
	"repro/internal/engine"
	"repro/internal/tracesim"
	"repro/internal/units"
	"repro/internal/workload"
)

// Trace fidelity: instead of evaluating the analytic model, replay a
// synthetic access stream shaped by the workload's Table I pattern
// through the functional cache hierarchy (internal/tracesim — the
// repo's optimised hot path). This is the expensive query class the
// content-addressed cache exists for: a point costs milliseconds to
// compute and nothing to re-serve.
//
// Footprints are scaled 1:1024 (a full-size MCDRAM would need
// gigabyte traces — see tracesim.DefaultConfig) and bounded so one
// point stays in the low-millisecond range. Seeds derive from the
// point, so a trace outcome is deterministic and cache-coherent.

// traceScaleShift is the footprint scale: 1/1024.
const traceScaleShift = 10

// Footprint clamp for a single trace point.
const (
	traceMinFootprint = units.Bytes(1 << 20)  // 1 MiB
	traceMaxFootprint = units.Bytes(32 << 20) // 32 MiB
)

// tracePasses is how many times the stream sweeps its footprint (the
// second pass measures warm-cache behaviour).
const tracePasses = 2

// traceSeed derives a deterministic generator seed from the point.
func traceSeed(p campaign.Point) int64 {
	k := p.Key()
	var buf [8]byte
	copy(buf[:], k)
	return int64(binary.LittleEndian.Uint64(buf[:]) >> 1)
}

// traceConfig maps a point's memory configuration onto the scaled
// hierarchy (see replayHierarchy).
func (e *Executor) traceConfig(p campaign.Point) (tracesim.Config, error) {
	return e.replayHierarchy(p.SKU, p.Config)
}

// replayHierarchy maps a memory configuration onto a scaled-down
// functional hierarchy for the given SKU: cache mode gets the scaled
// MCDRAM as memory-side cache, the flat modes get the corresponding
// backing latency, hybrid gets the non-flat MCDRAM fraction as cache.
// Both the trace fidelity (synthetic streams) and the replay path
// (stored traces) run through this one mapping, so their results are
// directly comparable.
func (e *Executor) replayHierarchy(sku string, mc engine.MemoryConfig) (tracesim.Config, error) {
	sys, err := e.System(sku)
	if err != nil {
		return tracesim.Config{}, err
	}
	chip := sys.Machine.Chip
	scaledMC := chip.MCDRAM.Capacity >> traceScaleShift

	cfg := tracesim.DefaultConfig(0)
	// Re-anchor the hierarchy on the actual chip (DefaultConfig is
	// always the 7210).
	cfg.L1Size, cfg.L1Ways = chip.L1DPerCore, chip.L1Assoc
	cfg.L2Size, cfg.L2Ways = chip.L2PerTile, chip.L2Assoc
	cfg.L2Lat = float64(chip.Cal.L2HitLatency)
	cfg.MemCacheLat = float64(chip.MCDRAM.IdleLatency)

	dram := float64(chip.DDR.IdleLatency)
	hbm := float64(chip.MCDRAM.IdleLatency)
	switch mc.Kind {
	case engine.BindDRAM:
		cfg.MemLat = dram
	case engine.BindHBM:
		cfg.MemLat = hbm
	case engine.InterleaveFlat:
		// Pages alternate devices; the average line cost follows.
		cfg.MemLat = (dram + hbm) / 2
	case engine.CacheMode:
		cfg.MemCache = scaledMC
		cfg.MemLat = dram
	case engine.Hybrid:
		// The non-flat fraction of MCDRAM stays a memory-side cache.
		cfg.MemCache = units.Bytes(float64(scaledMC) * (1 - mc.HybridFlatFraction))
		cfg.MemLat = dram
	default:
		return tracesim.Config{}, fmt.Errorf("service: no trace mapping for config %v", mc)
	}
	return cfg, nil
}

// runTracePoint executes one FidelityTrace point.
func (e *Executor) runTracePoint(p campaign.Point) (campaign.Outcome, error) {
	sys, err := e.System(p.SKU)
	if err != nil {
		return campaign.Outcome{}, err
	}
	mdl, err := sys.Workload(p.Workload)
	if err != nil {
		return campaign.Outcome{}, err
	}
	info := mdl.Info()

	foot := p.Size >> traceScaleShift
	if foot < traceMinFootprint {
		foot = traceMinFootprint
	}
	if foot > traceMaxFootprint {
		foot = traceMaxFootprint
	}

	cfg, err := e.traceConfig(p)
	if err != nil {
		return campaign.Outcome{}, err
	}
	sim, err := tracesim.New(cfg)
	if err != nil {
		return campaign.Outcome{}, err
	}

	var gen tracesim.Generator
	lines := int64(foot / units.CacheLine)
	if info.Pattern == workload.PatternRandom {
		gen, err = tracesim.NewUniformRandom(0, uint64(foot), lines, cache.Read, traceSeed(p))
	} else {
		gen, err = tracesim.NewSequential(0, uint64(foot), uint64(units.CacheLine), cache.Read)
	}
	if err != nil {
		return campaign.Outcome{}, err
	}
	res, err := sim.RunPasses(gen, tracePasses)
	if err != nil {
		return campaign.Outcome{}, err
	}

	out := campaign.Outcome{
		Point:  p,
		Metric: "ns/access",
		Value:  res.AvgLatencyNS(),
		Trace: &campaign.TraceStats{
			Accesses:     res.Accesses,
			L1HitRate:    res.L1.HitRatio(),
			L2HitRate:    res.L2.HitRatio(),
			MCHitRate:    res.MemCache.HitRatio(),
			MemReads:     res.MemReads,
			MemWrites:    res.MemWrites,
			AvgLatencyNS: res.AvgLatencyNS(),
		},
	}
	return out, nil
}
