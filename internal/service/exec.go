package service

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/knl"
	"repro/internal/workload"
)

// Executor owns the simulated machines: one core.System per KNL SKU,
// built lazily and shared by every worker (the machine model is
// read-only after construction, which is what lets the harness pool
// and this service fan out over it).
type Executor struct {
	mu      sync.Mutex
	systems map[string]*core.System
}

// NewExecutor builds an empty executor.
func NewExecutor() *Executor {
	return &Executor{systems: make(map[string]*core.System)}
}

// System returns the shared system for a SKU, building it on first
// use.
func (e *Executor) System(sku string) (*core.System, error) {
	if sku == "" {
		sku = campaign.DefaultSKU
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if sys, ok := e.systems[sku]; ok {
		return sys, nil
	}
	sys, err := core.NewSystem()
	if err != nil {
		return nil, err
	}
	if sku != campaign.DefaultSKU {
		chip, err := knl.ChipForSKU(sku)
		if err != nil {
			return nil, err
		}
		mach, err := engine.NewMachine(chip)
		if err != nil {
			return nil, err
		}
		sys.Machine = mach
	}
	e.systems[sku] = sys
	return sys, nil
}

// RunPoint executes one resolved point at its fidelity. A point whose
// configuration cannot run (does not fit, not measured) is a valid
// outcome — the paper prints no bar — and is cacheable; only
// request-shaped problems (unknown workload, unknown SKU, unknown
// fidelity) are errors. Cancellation is checked before the simulation
// starts: points are the unit of work, so a cancelled campaign stops
// at the next point boundary rather than mid-model.
func (e *Executor) RunPoint(ctx context.Context, p campaign.Point) (campaign.Outcome, error) {
	if err := ctx.Err(); err != nil {
		return campaign.Outcome{}, err
	}
	switch p.Fidelity {
	case "", campaign.FidelityModel:
	case campaign.FidelityTrace:
		return e.runTracePoint(p)
	case campaign.FidelityAdvise:
		return e.runAdvisePoint(p)
	case campaign.FidelityCluster:
		return e.runClusterPoint(p)
	case campaign.FidelityReplay:
		// Replay points need the trace store, which the server owns;
		// Server.runPoint intercepts them before reaching here.
		return campaign.Outcome{}, fmt.Errorf("service: replay points are served by the server's trace store, not the bare executor")
	default:
		return campaign.Outcome{}, fmt.Errorf("service: unknown fidelity %q (model|trace|replay|advise|cluster)", p.Fidelity)
	}
	sys, err := e.System(p.SKU)
	if err != nil {
		return campaign.Outcome{}, err
	}
	mdl, err := sys.Workload(p.Workload)
	if err != nil {
		return campaign.Outcome{}, err
	}
	out := campaign.Outcome{Point: p, Metric: mdl.Info().Metric}
	v, err := mdl.Predict(sys.Machine, p.Config, p.Size, p.Threads)
	if err != nil {
		var nofit engine.ErrDoesNotFit
		if errors.As(err, &nofit) || errors.Is(err, workload.ErrNotMeasured) {
			out.Unavailable = err.Error()
			return out, nil
		}
		return campaign.Outcome{}, fmt.Errorf("service: %s: %w", p, err)
	}
	out.Value = v
	return out, nil
}
