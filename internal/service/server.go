// Package service is the simulation service: the paper's what-if
// queries ("workload W at size S under configuration C with T
// threads") served over an HTTP JSON API with a bounded job queue, a
// content-addressed result cache, declarative campaign sweeps,
// /metrics + /healthz endpoints and graceful shutdown. cmd/simd hosts
// it; cmd/simctl and the service.Client speak to it.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/harness"
	"repro/internal/tracestore"
)

// Options configures a server.
type Options struct {
	// Workers is the job-queue width and the per-campaign fan-out
	// (<=0: GOMAXPROCS).
	Workers int
	// QueueDepth bounds pending jobs (<=0: 256). Submissions beyond
	// it get 503.
	QueueDepth int
	// CacheSize bounds each content-addressed cache (<=0: 64k
	// entries).
	CacheSize int
	// TraceDir roots the durable trace store (empty: "simd-traces"
	// under the OS temp directory). The directory is created lazily
	// on the first trace operation.
	TraceDir string
	// MaxBodyBytes caps JSON request bodies; oversized requests get
	// 413 (<=0: 1 MiB).
	MaxBodyBytes int64
	// MaxTraceBytes caps trace uploads, which stream and are far
	// larger than control-plane bodies (<=0: 256 MiB).
	MaxTraceBytes int64
}

// Server wires the executor, queue, caches and metrics behind an
// http.Handler.
type Server struct {
	exec        *Executor
	queue       *Queue
	points      *Cache[campaign.Outcome]
	campaigns   *Cache[*CampaignResult]
	experiments *Cache[ExperimentResult]
	advices     *Cache[AdviseResponse]
	clusters    *Cache[ClusterResponse]
	replays     *Cache[ReplayResponse]
	metrics     *Metrics
	mux         *http.ServeMux

	maxBody  int64
	maxTrace int64

	traceDir string
	storeMu  sync.Mutex
	store    *tracestore.Store
	storeErr error

	mu      sync.Mutex
	results map[string]*CampaignResult // finished campaign results by job ID
}

// NewServer builds a ready-to-serve service.
func NewServer(opt Options) *Server {
	s := &Server{
		exec:        NewExecutor(),
		queue:       NewQueue(opt.Workers, opt.QueueDepth, 0),
		points:      NewCache[campaign.Outcome](opt.CacheSize),
		campaigns:   NewCache[*CampaignResult](opt.CacheSize),
		experiments: NewCache[ExperimentResult](opt.CacheSize),
		advices:     NewCache[AdviseResponse](opt.CacheSize),
		clusters:    NewCache[ClusterResponse](opt.CacheSize),
		replays:     NewCache[ReplayResponse](opt.CacheSize),
		metrics:     NewMetrics(),
		mux:         http.NewServeMux(),
		maxBody:     opt.MaxBodyBytes,
		maxTrace:    opt.MaxTraceBytes,
		traceDir:    opt.TraceDir,
		results:     make(map[string]*CampaignResult),
	}
	if s.maxBody <= 0 {
		s.maxBody = 1 << 20
	}
	if s.maxTrace <= 0 {
		s.maxTrace = 256 << 20
	}
	if s.traceDir == "" {
		s.traceDir = filepath.Join(os.TempDir(), "simd-traces")
	}
	s.route("GET /healthz", s.handleHealthz)
	s.route("GET /metrics", s.handleMetrics)
	s.route("GET /v1/workloads", s.handleWorkloads)
	s.route("GET /v1/experiments", s.handleExperiments)
	s.route("POST /v1/run", s.handleRun)
	s.route("POST /v1/advise", s.handleAdvise)
	s.route("POST /v1/cluster", s.handleCluster)
	s.route("POST /v1/replay", s.handleReplay)
	s.route("POST /v1/traces", s.handleTraceUpload)
	s.route("GET /v1/traces", s.handleTraceList)
	s.route("GET /v1/traces/{id}", s.handleTraceGet)
	s.route("DELETE /v1/traces/{id}", s.handleTraceDelete)
	s.route("POST /v1/campaigns", s.handleSubmitCampaign)
	s.route("GET /v1/jobs/{id}", s.handleJob)
	s.route("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.route("GET /v1/jobs/{id}/stream", s.handleJobStream)
	return s
}

// traceStore opens the durable trace store on first use. The open is
// lazy so a server that never touches traces never creates the
// directory, and an open failure (unwritable path) surfaces on the
// trace endpoints instead of killing construction. A failed open is
// retried on the next call (the operator may fix the path live).
func (s *Server) traceStore() (*tracestore.Store, error) {
	s.storeMu.Lock()
	defer s.storeMu.Unlock()
	if s.store == nil {
		s.store, s.storeErr = tracestore.Open(s.traceDir)
	}
	return s.store, s.storeErr
}

// traceStoreIfOpen returns the store only if a trace request already
// opened it — read-only paths (metrics scrapes) must not create the
// directory as a side effect.
func (s *Server) traceStoreIfOpen() *tracestore.Store {
	s.storeMu.Lock()
	defer s.storeMu.Unlock()
	return s.store
}

// decodeBody decodes a JSON request body bounded by the service's
// body cap. It writes the HTTP error itself — 413 when the cap is
// exceeded, 400 for malformed JSON — and reports whether decoding
// succeeded.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, what string, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("service: %s exceeds the %d-byte body limit", what, mbe.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad %s: %w", what, err))
		return false
	}
	return true
}

// route registers a handler with request counting.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		s.metrics.CountRequest(pattern)
		h(w, r)
	})
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the job queue; call it after http.Server.Shutdown so
// in-flight campaigns finish before the process exits.
func (s *Server) Close(ctx context.Context) error { return s.queue.Close(ctx) }

// writeJSON writes a compact JSON response (campaign results run to
// hundreds of points; clients pretty-print if they want to).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps service errors to HTTP statuses.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WriteTo(w, s)
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	sys, err := s.exec.System(r.URL.Query().Get("sku"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var out []WorkloadInfo
	for _, m := range sys.Workloads() {
		i := m.Info()
		out = append(out, WorkloadInfo{
			Name: i.Name, Class: i.Class, Pattern: i.Pattern,
			MaxScale: i.MaxScale.String(), Metric: i.Metric,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	var out []ExperimentInfo
	for _, e := range harness.All() {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title})
	}
	writeJSON(w, http.StatusOK, out)
}

// runPoint executes one point through the content-addressed cache.
// Replay-fidelity points run on the server (they need the trace
// store); everything else delegates to the executor.
func (s *Server) runPoint(p campaign.Point) (campaign.Outcome, bool, error) {
	return s.points.GetOrCompute(p.Key(), func() (campaign.Outcome, error) {
		if p.Fidelity == campaign.FidelityReplay {
			return s.runReplayPoint(p)
		}
		return s.exec.RunPoint(p)
	})
}

// handleRun is the synchronous single-point fast path.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if !s.decodeBody(w, r, "run request", &req) {
		return
	}
	p, err := req.Point()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	out, cached, err := s.runPoint(p)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, runResponse(out, cached, float64(time.Since(start).Microseconds())/1000))
}

// handleAdvise is the synchronous mode-recommendation path: resolve
// the request to its canonical form, answer from the content-addressed
// advice cache, compute through the placement engine on a miss.
func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	var req AdviseRequest
	if !s.decodeBody(w, r, "advise request", &req) {
		return
	}
	q, err := req.Resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	resp, cached, err := s.advices.GetOrCompute(q.Key(), func() (AdviseResponse, error) {
		return s.exec.Advise(q)
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp.Cached = cached
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// handleCluster is the synchronous multi-node scaling path: resolve
// the request to its canonical form, answer from the content-addressed
// cluster cache, compute through the cluster model on a miss.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	var req ClusterRequest
	if !s.decodeBody(w, r, "cluster request", &req) {
		return
	}
	q, err := req.Resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	resp, cached, err := s.clusters.GetOrCompute(q.Key(), func() (ClusterResponse, error) {
		return s.exec.ClusterSweep(q)
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp.Cached = cached
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// runExperiment executes one paper experiment through its cache.
func (s *Server) runExperiment(id, sku string) ExperimentResult {
	key := fmt.Sprintf("exp|%s|%s", id, sku)
	res, _, err := s.experiments.GetOrCompute(key, func() (ExperimentResult, error) {
		exp, err := harness.ByID(id)
		if err != nil {
			return ExperimentResult{}, err
		}
		sys, err := s.exec.System(sku)
		if err != nil {
			return ExperimentResult{}, err
		}
		tbl, err := exp.Run(sys)
		if err != nil {
			return ExperimentResult{}, fmt.Errorf("service: experiment %s: %w", id, err)
		}
		return ExperimentResult{ID: exp.ID, Title: exp.Title, Rendered: tbl.Render(), CSV: tbl.RenderCSV()}, nil
	})
	if err != nil {
		return ExperimentResult{ID: id, Error: err.Error()}
	}
	return res
}

// expandExperiments resolves the experiment axis ("all" is the whole
// paper).
func expandExperiments(ids []string) []string {
	var out []string
	for _, id := range ids {
		if id == "all" {
			for _, e := range harness.All() {
				out = append(out, e.ID)
			}
			continue
		}
		out = append(out, id)
	}
	return out
}

// runCampaign executes a campaign: points fan out over a bounded pool
// (each point through the shared cache), experiments run alongside,
// and the whole result is content-addressed so an identical
// resubmission never recomputes anything.
func (s *Server) runCampaign(ctx context.Context, spec campaign.Spec, progress func(done, total int)) (*CampaignResult, bool, error) {
	key, err := spec.CampaignKey()
	if err != nil {
		return nil, false, err
	}
	// Replay campaigns check trace existence BEFORE the cache lookup,
	// mirroring handleReplay: a deleted trace must fail even when the
	// identical campaign is cached (re-uploading the same content
	// revalidates the entry).
	if spec.Fidelity == campaign.FidelityReplay {
		st, err := s.traceStore()
		if err != nil {
			return nil, false, err
		}
		for _, id := range spec.Traces {
			if _, ok := st.Get(strings.TrimSpace(id)); !ok {
				return nil, false, fmt.Errorf("%w %q", tracestore.ErrNotFound, strings.TrimSpace(id))
			}
		}
	}
	res, cached, err := s.campaigns.GetOrCompute(key, func() (*CampaignResult, error) {
		return s.computeCampaign(ctx, key, spec, progress)
	})
	if err != nil {
		return nil, false, err
	}
	if cached {
		// Serve a copy so the Cached flag never mutates the stored
		// result.
		cp := *res
		cp.Cached = true
		res = &cp
	}
	return res, cached, nil
}

func (s *Server) computeCampaign(ctx context.Context, key string, spec campaign.Spec, progress func(done, total int)) (*CampaignResult, error) {
	start := time.Now()
	points, raw, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	exps := expandExperiments(spec.Experiments)
	total := len(points) + len(exps)
	progress(0, total)

	sku := spec.SKU
	if sku == "" {
		sku = campaign.DefaultSKU
	}
	// Validate the SKU, workload names and trace ids up front so a bad
	// spec fails as one request error instead of N point errors.
	sys, err := s.exec.System(sku)
	if err != nil {
		return nil, err
	}
	for _, p := range points {
		if p.Fidelity == campaign.FidelityReplay {
			st, err := s.traceStore()
			if err != nil {
				return nil, err
			}
			if _, ok := st.Get(p.TraceID); !ok {
				return nil, fmt.Errorf("%w %q", tracestore.ErrNotFound, p.TraceID)
			}
			continue
		}
		if _, err := sys.Workload(p.Workload); err != nil {
			return nil, err
		}
	}

	outcomes := make([]campaign.Outcome, len(points))
	cachedFlags := make([]bool, len(points))
	errs := make([]error, len(points))
	var done int
	var mu sync.Mutex
	bump := func() {
		mu.Lock()
		done++
		d := done
		mu.Unlock()
		progress(d, total)
	}

	workers := s.queue.Workers()
	if workers > len(points) {
		workers = len(points)
	}
	var next int
	var idxMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				idxMu.Lock()
				i := next
				next++
				idxMu.Unlock()
				if i >= len(points) {
					return
				}
				outcomes[i], cachedFlags[i], errs[i] = s.runPoint(points[i])
				bump()
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &CampaignResult{Key: key, Name: spec.Name, Expanded: raw, Points: len(points)}
	for i, o := range outcomes {
		if cachedFlags[i] {
			res.CacheHits++
		}
		res.Results = append(res.Results, runResponse(o, cachedFlags[i], 0))
	}
	res.Tables = campaign.Tables(outcomes)
	for _, id := range exps {
		res.Experiments = append(res.Experiments, s.runExperiment(id, sku))
		bump()
	}
	res.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	return res, nil
}

// handleSubmitCampaign accepts a campaign spec, runs it as a queued
// job, and returns the job record — plus the result when ?wait=1 is
// set or the campaign cache already has it.
func (s *Server) handleSubmitCampaign(w http.ResponseWriter, r *http.Request) {
	var spec campaign.Spec
	if !s.decodeBody(w, r, "campaign spec", &spec) {
		return
	}
	// Reject malformed specs before queueing so the client gets a 400,
	// not a failed job.
	if _, err := spec.CampaignKey(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	// The job needs its own ID to file the result; Submit only mints
	// it on return, so hand it over through a buffered channel the
	// closure blocks on (for at most the submit round trip).
	ready := make(chan string, 1)
	info, err := s.queue.Submit("campaign", func(ctx context.Context, progress func(done, total int)) error {
		id := <-ready
		res, _, err := s.runCampaign(ctx, spec, progress)
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.results[id] = res
		s.mu.Unlock()
		return nil
	})
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	ready <- info.ID

	if r.URL.Query().Get("wait") == "1" {
		final, err := s.queue.Wait(r.Context(), info.ID)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, CampaignResponse{Job: final, Result: s.resultFor(info.ID)})
		return
	}
	writeJSON(w, http.StatusAccepted, CampaignResponse{Job: info})
}

// resultFor returns a finished campaign result by job ID.
func (s *Server) resultFor(jobID string) *CampaignResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.results[jobID]
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	info, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, CampaignResponse{Job: info, Result: s.resultFor(info.ID)})
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	info, err := s.queue.Wait(r.Context(), id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if info.State == JobFailed {
		writeJSON(w, http.StatusOK, CampaignResponse{Job: info})
		return
	}
	writeJSON(w, http.StatusOK, CampaignResponse{Job: info, Result: s.resultFor(id)})
}

// handleJobStream streams newline-delimited JobInfo snapshots until
// the job finishes — the campaign progress feed simctl renders.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.queue.Get(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown job %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ticker := time.NewTicker(25 * time.Millisecond)
	defer ticker.Stop()
	var last JobInfo
	emit := func(info JobInfo) {
		if info.State == last.State && info.Done == last.Done && info.Total == last.Total {
			return
		}
		last = info
		_ = enc.Encode(info)
		if flusher != nil {
			flusher.Flush()
		}
	}
	for {
		info, ok := s.queue.Get(id)
		if !ok {
			return
		}
		emit(info)
		if info.State == JobDone || info.State == JobFailed {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}
