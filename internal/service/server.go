// Package service is the simulation service: the paper's what-if
// queries ("workload W at size S under configuration C with T
// threads") served over an HTTP JSON API with a bounded job queue, a
// content-addressed result cache, declarative campaign sweeps,
// /metrics + /healthz endpoints and graceful shutdown. cmd/simd hosts
// it; cmd/simctl and the service.Client speak to it.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/events"
	"repro/internal/faultfs"
	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/tracestore"
)

// Options configures a server.
type Options struct {
	// Workers is the job-queue width and the per-campaign fan-out
	// (<=0: GOMAXPROCS).
	Workers int
	// QueueDepth bounds pending jobs (<=0: 256). Submissions beyond
	// it get 429 with a Retry-After estimate.
	QueueDepth int
	// CacheSize bounds each content-addressed cache (<=0: 64k
	// entries).
	CacheSize int
	// TraceDir roots the durable trace store (empty: "simd-traces"
	// under the OS temp directory). The directory is created lazily
	// on the first trace operation.
	TraceDir string
	// MaxBodyBytes caps JSON request bodies; oversized requests get
	// 413 (<=0: 1 MiB).
	MaxBodyBytes int64
	// MaxTraceBytes caps trace uploads, which stream and are far
	// larger than control-plane bodies (<=0: 256 MiB).
	MaxTraceBytes int64
	// DataDir roots the crash-safety state (job journal + durable
	// result store). It is only used by NewDurableServer; a plain
	// NewServer is ephemeral.
	DataDir string
	// JobTimeout bounds each job's run time once a worker picks it
	// up; requests may override it per-job with the X-Simd-Timeout
	// header. <= 0 means no default deadline.
	JobTimeout time.Duration
	// DataFS overrides the filesystem under DataDir (fault-injection
	// tests substitute a faultfs.Fault). Nil means the real OS.
	DataFS faultfs.FS
	// Logger receives the structured access log and server events.
	// Nil means no logging (library embedders and tests pay nothing).
	Logger *slog.Logger
	// SlowRequest promotes requests slower than this to WARN in the
	// access log (<=0: 1s). The same threshold drives tail-based trace
	// sampling: traces at or past it are pinned.
	SlowRequest time.Duration
	// TraceBuffer bounds the execution-trace rings: up to this many
	// recent traces plus up to this many pinned (error/slow) traces
	// stay queryable at /debug/traces (<=0: 256).
	TraceBuffer int
	// KeepAlive is the idle heartbeat period of the streaming endpoints
	// (SSE comments on /events, blank lines on /stream) so idle proxies
	// don't sever long-running watches (<=0: 15s).
	KeepAlive time.Duration
}

// timeoutHeader carries a per-request job deadline override, as a Go
// duration ("90s", "5m").
const timeoutHeader = "X-Simd-Timeout"

// Server wires the executor, queue, caches and metrics behind an
// http.Handler.
type Server struct {
	exec        *Executor
	queue       *Queue
	points      *Cache[campaign.Outcome]
	campaigns   *Cache[*CampaignResult]
	experiments *Cache[ExperimentResult]
	advices     *Cache[AdviseResponse]
	clusters    *Cache[ClusterResponse]
	replays     *Cache[ReplayResponse]
	metrics     *Metrics
	mux         *http.ServeMux
	logger      *slog.Logger
	slowReq     time.Duration
	tracer      *obs.Tracer
	events      *events.Bus
	keepAlive   time.Duration

	maxBody    int64
	maxTrace   int64
	jobTimeout time.Duration

	traceDir string
	storeMu  sync.Mutex
	store    *tracestore.Store // lazily opened; guarded by storeMu
	storeErr error             // guarded by storeMu

	// Crash-safety state, nil on an ephemeral server (NewServer):
	// every accepted job is journaled before its 202, every terminal
	// result is persisted, and NewDurableServer replays both at boot.
	journal      *journal.Journal
	resultsStore *journal.Results

	panics      atomic.Int64 // recovered handler panics
	persistErrs atomic.Int64 // failed result persists (non-fatal)
	journalErrs atomic.Int64 // failed terminal-state appends (non-fatal)
	recRequeued atomic.Int64 // boot replay: jobs re-enqueued
	recRestored atomic.Int64 // boot replay: finished jobs restored
	closing     atomic.Bool  // shutdown in progress (cancel = interrupted, not failed)

	mu      sync.Mutex
	results map[string]*CampaignResult // finished campaign results by job ID; guarded by mu
}

// NewServer builds a ready-to-serve service.
func NewServer(opt Options) *Server {
	s := &Server{
		exec:        NewExecutor(),
		queue:       NewQueue(opt.Workers, opt.QueueDepth, 0),
		points:      NewCache[campaign.Outcome](opt.CacheSize),
		campaigns:   NewCache[*CampaignResult](opt.CacheSize),
		experiments: NewCache[ExperimentResult](opt.CacheSize),
		advices:     NewCache[AdviseResponse](opt.CacheSize),
		clusters:    NewCache[ClusterResponse](opt.CacheSize),
		replays:     NewCache[ReplayResponse](opt.CacheSize),
		metrics:     NewMetrics(),
		mux:         http.NewServeMux(),
		logger:      opt.Logger,
		slowReq:     opt.SlowRequest,
		events:      events.NewBus(),
		keepAlive:   opt.KeepAlive,
		maxBody:     opt.MaxBodyBytes,
		maxTrace:    opt.MaxTraceBytes,
		jobTimeout:  opt.JobTimeout,
		traceDir:    opt.TraceDir,
		results:     make(map[string]*CampaignResult),
	}
	if s.logger == nil {
		s.logger = obs.NopLogger()
	}
	if s.slowReq <= 0 {
		s.slowReq = time.Second
	}
	if s.keepAlive <= 0 {
		s.keepAlive = 15 * time.Second
	}
	s.tracer = obs.NewTracer(opt.TraceBuffer, s.slowReq)
	if s.maxBody <= 0 {
		s.maxBody = 1 << 20
	}
	if s.maxTrace <= 0 {
		s.maxTrace = 256 << 20
	}
	if s.traceDir == "" {
		s.traceDir = filepath.Join(os.TempDir(), "simd-traces")
	}
	// Completed job stages (queue_wait, execute, persist) feed the
	// stage-latency histogram; installed before any route can submit.
	s.queue.OnStage(func(stage string, d time.Duration) {
		s.metrics.ObserveStage(stage, d.Seconds())
	})
	// Job state transitions fan out to the live event bus so any number
	// of /events watchers follow a job without polling it.
	s.queue.OnTransition(func(info JobInfo) {
		s.events.Publish(stateEvent(info))
	})
	s.route("GET /healthz", s.handleHealthz)
	s.route("GET /metrics", s.handleMetrics)
	s.route("GET /v1/workloads", s.handleWorkloads)
	s.route("GET /v1/experiments", s.handleExperiments)
	s.route("POST /v1/run", s.handleRun)
	s.route("POST /v1/advise", s.handleAdvise)
	s.route("POST /v1/cluster", s.handleCluster)
	s.route("POST /v1/replay", s.handleReplay)
	s.route("POST /v1/traces", s.handleTraceUpload)
	s.route("GET /v1/traces", s.handleTraceList)
	s.route("GET /v1/traces/{id}", s.handleTraceGet)
	s.route("DELETE /v1/traces/{id}", s.handleTraceDelete)
	s.route("POST /v1/campaigns", s.handleSubmitCampaign)
	s.route("GET /v1/jobs/{id}", s.handleJob)
	s.route("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.route("GET /v1/jobs/{id}/stream", s.handleJobStream)
	s.route("GET /v1/jobs/{id}/events", s.handleJobEvents)
	// Execution traces: the span trees tail sampling retained.
	s.route("GET /debug/traces", s.handleDebugTraces)
	s.route("GET /debug/traces/{id}", s.handleDebugTrace)
	// Runtime profiling, served through the same stack so profile
	// scrapes appear in the access log and latency histogram.
	s.route("GET /debug/pprof/", pprof.Index)
	s.route("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.route("GET /debug/pprof/profile", pprof.Profile)
	s.route("GET /debug/pprof/symbol", pprof.Symbol)
	s.route("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// traceStore opens the durable trace store on first use. The open is
// lazy so a server that never touches traces never creates the
// directory, and an open failure (unwritable path) surfaces on the
// trace endpoints instead of killing construction. A failed open is
// retried on the next call (the operator may fix the path live).
func (s *Server) traceStore() (*tracestore.Store, error) {
	s.storeMu.Lock()
	defer s.storeMu.Unlock()
	if s.store == nil {
		s.store, s.storeErr = tracestore.Open(s.traceDir)
	}
	return s.store, s.storeErr
}

// traceStoreIfOpen returns the store only if a trace request already
// opened it — read-only paths (metrics scrapes) must not create the
// directory as a side effect.
func (s *Server) traceStoreIfOpen() *tracestore.Store {
	s.storeMu.Lock()
	defer s.storeMu.Unlock()
	return s.store
}

// decodeBody decodes a JSON request body bounded by the service's
// body cap. It writes the HTTP error itself — 413 when the cap is
// exceeded, 400 for malformed JSON — and reports whether decoding
// succeeded.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, what string, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("service: %s exceeds the %d-byte body limit", what, mbe.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad %s: %w", what, err))
		return false
	}
	return true
}

// route registers a handler that tags the request context with its
// matched pattern — the label the access log, request counter and
// latency histogram all key on. Requests no pattern matches (404/405)
// never reach a tag and land under the single "unmatched" label, so a
// URL scanner cannot mint unbounded label values.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		obs.SetRoute(r.Context(), pattern)
		h(w, r)
	})
}

// Handler returns the HTTP handler: the mux behind the composable
// middleware stack. Outermost first: request-ID assignment (so every
// later layer and the error envelope see the ID), execution tracing
// (the trace ID is the request ID, so it must sit just inside), the
// structured access log, request latency/counting, and panic recovery
// (one bad request becomes a 500 plus a metric instead of a dead
// connection).
func (s *Server) Handler() http.Handler {
	return obs.Chain(s.mux,
		obs.RequestIDs(),
		obs.Tracing(s.tracer),
		obs.Logging(s.logger, s.slowReq),
		obs.Timing(func(r *http.Request, route string, status int, _ int64, elapsed time.Duration) {
			s.metrics.CountRequest(route)
			// The request ID doubles as the trace ID, so the histogram
			// bucket's exemplar links straight to the span tree.
			s.metrics.ObserveHTTP(route, strconv.Itoa(status), elapsed.Seconds(), obs.RequestID(r.Context()))
		}),
		obs.Recover(func(w http.ResponseWriter, r *http.Request, v any) {
			s.panics.Add(1)
			s.logger.LogAttrs(r.Context(), slog.LevelError, "handler panic",
				slog.Any("panic", v),
				slog.String("path", r.URL.Path),
				slog.String("request_id", obs.RequestID(r.Context())))
			writeError(w, http.StatusInternalServerError, fmt.Errorf("service: internal error: %v", v))
		}),
	)
}

// Close drains the job queue (bounded by ctx); call it after
// http.Server.Shutdown so in-flight campaigns finish before the
// process exits. Jobs the deadline forces it to abandon stay recorded
// in the journal with no terminal state (their running goroutines
// additionally journal StateInterrupted as they observe the cancel),
// so the next boot re-enqueues exactly what was lost; Unfinished
// reports them for shutdown logging.
func (s *Server) Close(ctx context.Context) error {
	s.closing.Store(true)
	err := s.queue.Close(ctx)
	if s.journal != nil {
		for _, info := range s.queue.Unfinished() {
			s.journalAppend(journal.Entry{State: journal.StateInterrupted, Job: info.ID, Kind: info.Kind})
		}
		s.journal.Close()
	}
	return err
}

// Unfinished lists jobs still queued or running — what a forced
// shutdown abandons. cmd/simd logs them on exit.
func (s *Server) Unfinished() []JobInfo { return s.queue.Unfinished() }

// JobInfo returns the current snapshot of one job. cmd/simd uses it
// after the drain to report which jobs finished and which were cut
// short.
func (s *Server) JobInfo(id string) (JobInfo, bool) { return s.queue.Get(id) }

// writeJSON writes a compact JSON response (campaign results run to
// hundreds of points; clients pretty-print if they want to).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps service errors to HTTP statuses. The request ID the
// middleware already stamped on the response headers rides along in
// the envelope, so a client error report carries its correlation key.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error(), RequestID: w.Header().Get(obs.RequestIDHeader)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WriteTo(w, s)
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	sys, err := s.exec.System(r.URL.Query().Get("sku"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var out []WorkloadInfo
	for _, m := range sys.Workloads() {
		i := m.Info()
		out = append(out, WorkloadInfo{
			Name: i.Name, Class: i.Class, Pattern: i.Pattern,
			MaxScale: i.MaxScale.String(), Metric: i.Metric,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	var out []ExperimentInfo
	for _, e := range harness.All() {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title})
	}
	writeJSON(w, http.StatusOK, out)
}

// runPoint executes one point through the content-addressed cache.
// Replay-fidelity points run on the server (they need the trace
// store); everything else delegates to the executor. Fresh outcomes
// are persisted to the durable result store so a restart serves them
// from a warm cache instead of recomputing.
func (s *Server) runPoint(ctx context.Context, p campaign.Point) (campaign.Outcome, bool, error) {
	ctx, lookupSpan := obs.StartSpan(ctx, "cache.point")
	lookupSpan.SetAttr("key", p.Key())
	lookup := time.Now()
	out, cached, err := s.points.GetOrCompute(p.Key(), func() (campaign.Outcome, error) {
		var (
			out campaign.Outcome
			err error
		)
		computeCtx, computeSpan := obs.StartSpan(ctx, "compute")
		computeSpan.SetAttr("workload", p.Workload)
		compute := time.Now()
		if p.Fidelity == campaign.FidelityReplay {
			out, err = s.runReplayPoint(computeCtx, p)
		} else {
			out, err = s.exec.RunPoint(computeCtx, p)
		}
		computeSpan.SetError(err != nil)
		computeSpan.End()
		if err == nil {
			fidelity := p.Fidelity
			if fidelity == "" {
				fidelity = campaign.FidelityModel
			}
			s.metrics.ObservePoint(fidelity, time.Since(compute).Seconds())
			_, persistSpan := obs.StartSpan(computeCtx, "persist")
			s.persistResult("point", p.Key(), out)
			persistSpan.End()
		}
		return out, err
	})
	if err == nil && cached {
		s.metrics.ObserveLookup("point", time.Since(lookup).Seconds())
	}
	lookupSpan.SetAttr("hit", strconv.FormatBool(cached))
	lookupSpan.SetError(err != nil)
	lookupSpan.End()
	return out, cached, err
}

// persistResult durably stores one computed result. Persistence
// faults must not fail the computation — the service still holds the
// value — so they are counted for /metrics instead of propagated.
func (s *Server) persistResult(kind, key string, v any) {
	if s.resultsStore == nil {
		return
	}
	if err := s.resultsStore.Put(kind, key, v); err != nil {
		s.persistErrs.Add(1)
	}
}

// journalAppend records a job-state transition when durability is on.
// Append failures on terminal transitions are counted, not fatal: the
// in-memory state is already correct, and the worst outcome of a lost
// terminal record is a redundant (content-addressed, cached) re-run
// after a restart.
func (s *Server) journalAppend(e journal.Entry) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(e); err != nil {
		s.journalErrs.Add(1)
	}
}

// handleRun is the synchronous single-point fast path.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if !s.decodeBody(w, r, "run request", &req) {
		return
	}
	p, err := req.Point()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	out, cached, err := s.runPoint(r.Context(), p)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, runResponse(out, cached, float64(time.Since(start).Microseconds())/1000))
}

// handleAdvise is the synchronous mode-recommendation path: resolve
// the request to its canonical form, answer from the content-addressed
// advice cache, compute through the placement engine on a miss.
func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	var req AdviseRequest
	if !s.decodeBody(w, r, "advise request", &req) {
		return
	}
	q, err := req.Resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	resp, cached, err := s.advices.GetOrCompute(q.Key(), func() (AdviseResponse, error) {
		resp, err := s.exec.Advise(q)
		if err == nil {
			s.persistResult("advise", q.Key(), resp)
		}
		return resp, err
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if cached {
		s.metrics.ObserveLookup("advice", time.Since(start).Seconds())
	}
	resp.Cached = cached
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// handleCluster is the synchronous multi-node scaling path: resolve
// the request to its canonical form, answer from the content-addressed
// cluster cache, compute through the cluster model on a miss.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	var req ClusterRequest
	if !s.decodeBody(w, r, "cluster request", &req) {
		return
	}
	q, err := req.Resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	resp, cached, err := s.clusters.GetOrCompute(q.Key(), func() (ClusterResponse, error) {
		resp, err := s.exec.ClusterSweep(q)
		if err == nil {
			s.persistResult("cluster", q.Key(), resp)
		}
		return resp, err
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if cached {
		s.metrics.ObserveLookup("cluster", time.Since(start).Seconds())
	}
	resp.Cached = cached
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// runExperiment executes one paper experiment through its cache.
func (s *Server) runExperiment(id, sku string) ExperimentResult {
	key := fmt.Sprintf("exp|%s|%s", id, sku)
	res, _, err := s.experiments.GetOrCompute(key, func() (ExperimentResult, error) {
		exp, err := harness.ByID(id)
		if err != nil {
			return ExperimentResult{}, err
		}
		sys, err := s.exec.System(sku)
		if err != nil {
			return ExperimentResult{}, err
		}
		tbl, err := exp.Run(sys)
		if err != nil {
			return ExperimentResult{}, fmt.Errorf("service: experiment %s: %w", id, err)
		}
		res := ExperimentResult{ID: exp.ID, Title: exp.Title, Rendered: tbl.Render(), CSV: tbl.RenderCSV()}
		s.persistResult("experiment", key, res)
		return res, nil
	})
	if err != nil {
		return ExperimentResult{ID: id, Error: err.Error()}
	}
	return res
}

// expandExperiments resolves the experiment axis ("all" is the whole
// paper).
func expandExperiments(ids []string) []string {
	var out []string
	for _, id := range ids {
		if id == "all" {
			for _, e := range harness.All() {
				out = append(out, e.ID)
			}
			continue
		}
		out = append(out, id)
	}
	return out
}

// runCampaign executes a campaign: points fan out over a bounded pool
// (each point through the shared cache), experiments run alongside,
// and the whole result is content-addressed so an identical
// resubmission never recomputes anything.
func (s *Server) runCampaign(ctx context.Context, jobID string, spec campaign.Spec, progress func(done, total int)) (*CampaignResult, bool, error) {
	key, err := spec.CampaignKey()
	if err != nil {
		return nil, false, err
	}
	// Replay campaigns check trace existence BEFORE the cache lookup,
	// mirroring handleReplay: a deleted trace must fail even when the
	// identical campaign is cached (re-uploading the same content
	// revalidates the entry).
	if spec.Fidelity == campaign.FidelityReplay {
		st, err := s.traceStore()
		if err != nil {
			return nil, false, err
		}
		for _, id := range spec.Traces {
			if _, ok := st.Get(strings.TrimSpace(id)); !ok {
				return nil, false, fmt.Errorf("%w %q", tracestore.ErrNotFound, strings.TrimSpace(id))
			}
		}
	}
	lookup := time.Now()
	lookupCtx, lookupSpan := obs.StartSpan(ctx, "cache.campaign")
	res, cached, err := s.campaigns.GetOrCompute(key, func() (*CampaignResult, error) {
		return s.computeCampaign(lookupCtx, jobID, key, spec, progress)
	})
	lookupSpan.SetAttr("hit", strconv.FormatBool(cached))
	lookupSpan.SetError(err != nil)
	lookupSpan.End()
	if err != nil {
		return nil, false, err
	}
	if cached {
		s.metrics.ObserveLookup("campaign", time.Since(lookup).Seconds())
		// Serve a copy so the Cached flag never mutates the stored
		// result.
		cp := *res
		cp.Cached = true
		res = &cp
	}
	return res, cached, nil
}

func (s *Server) computeCampaign(ctx context.Context, jobID, key string, spec campaign.Spec, progress func(done, total int)) (*CampaignResult, error) {
	start := time.Now()
	points, raw, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	exps := expandExperiments(spec.Experiments)
	total := len(points) + len(exps)
	progress(0, total)

	sku := spec.SKU
	if sku == "" {
		sku = campaign.DefaultSKU
	}
	// Validate the SKU, workload names and trace ids up front so a bad
	// spec fails as one request error instead of N point errors.
	sys, err := s.exec.System(sku)
	if err != nil {
		return nil, err
	}
	for _, p := range points {
		if p.Fidelity == campaign.FidelityReplay {
			st, err := s.traceStore()
			if err != nil {
				return nil, err
			}
			if _, ok := st.Get(p.TraceID); !ok {
				return nil, fmt.Errorf("%w %q", tracestore.ErrNotFound, p.TraceID)
			}
			continue
		}
		if _, err := sys.Workload(p.Workload); err != nil {
			return nil, err
		}
	}

	outcomes := make([]campaign.Outcome, len(points))
	cachedFlags := make([]bool, len(points))
	errs := make([]error, len(points))
	var done int
	var mu sync.Mutex
	bump := func() {
		mu.Lock()
		done++
		d := done
		mu.Unlock()
		progress(d, total)
		if jobID != "" {
			s.events.Publish(events.Event{Job: jobID, Type: events.TypeProgress, Done: d, Total: total})
		}
	}

	workers := s.queue.Workers()
	if workers > len(points) {
		workers = len(points)
	}
	var next int
	var idxMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				idxMu.Lock()
				i := next
				next++
				idxMu.Unlock()
				if i >= len(points) {
					return
				}
				outcomes[i], cachedFlags[i], errs[i] = s.runPoint(ctx, points[i])
				if jobID != "" {
					ev := events.Event{Job: jobID, Type: events.TypePoint,
						Point: points[i].Key(), Workload: points[i].Workload, Cached: cachedFlags[i]}
					if errs[i] != nil {
						ev.Error = errs[i].Error()
					}
					s.events.Publish(ev)
				}
				bump()
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &CampaignResult{Key: key, Name: spec.Name, Expanded: raw, Points: len(points)}
	for i, o := range outcomes {
		if cachedFlags[i] {
			res.CacheHits++
		}
		res.Results = append(res.Results, runResponse(o, cachedFlags[i], 0))
	}
	res.Tables = campaign.Tables(outcomes)
	for _, id := range exps {
		res.Experiments = append(res.Experiments, s.runExperiment(id, sku))
		bump()
	}
	res.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	s.persistResult("campaign", key, res)
	return res, nil
}

// campaignJob is the queue work for one accepted campaign: run it,
// file the result under the job ID, journal the terminal state. A
// cancellation observed while the server is shutting down journals
// StateInterrupted (re-run next boot) instead of StateFailed.
func (s *Server) campaignJob(id, key, rid string, spec campaign.Spec) JobFunc {
	return func(ctx context.Context, progress func(done, total int)) error {
		res, _, err := s.runCampaign(ctx, id, spec, progress)
		if err != nil {
			state := journal.StateFailed
			if errors.Is(err, context.Canceled) && s.closing.Load() {
				state = journal.StateInterrupted
			}
			persist := time.Now()
			s.journalAppend(journal.Entry{State: state, Job: id, Kind: "campaign", Key: key, Req: rid, Error: err.Error()})
			s.queue.AddStage(id, "persist", persist, time.Since(persist))
			if tr := obs.TraceFrom(ctx); tr != nil {
				tr.AddSpan(obs.SpanIDFrom(ctx), "persist", persist, time.Since(persist))
			}
			return err
		}
		s.mu.Lock()
		s.results[id] = res
		s.mu.Unlock()
		total := res.Points + len(res.Experiments)
		// The terminal journal append is the job's durability cost;
		// surface it as the persist span on the timeline — and mirror it
		// onto the request's span tree with identical bounds.
		persist := time.Now()
		s.journalAppend(journal.Entry{State: journal.StateDone, Job: id, Kind: "campaign", Key: key, Req: rid, Done: total, Total: total})
		d := time.Since(persist)
		s.queue.AddStage(id, "persist", persist, d)
		if tr := obs.TraceFrom(ctx); tr != nil {
			tr.AddSpan(obs.SpanIDFrom(ctx), "persist", persist, d)
		}
		return nil
	}
}

// handleSubmitCampaign accepts a campaign spec, runs it as a queued
// job, and returns the job record — plus the result when ?wait=1 is
// set or the campaign cache already has it. On a durable server the
// accepted record hits the journal BEFORE anything is enqueued or
// acknowledged: a crash after the append owes the client an
// execution; a crash before it owes nothing, because no 202 was
// written. A full queue answers 429 with a Retry-After computed from
// observed job service times.
func (s *Server) handleSubmitCampaign(w http.ResponseWriter, r *http.Request) {
	var spec campaign.Spec
	if !s.decodeBody(w, r, "campaign spec", &spec) {
		return
	}
	// Reject malformed specs before queueing so the client gets a 400,
	// not a failed job.
	key, err := spec.CampaignKey()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	timeout := s.jobTimeout
	if h := r.Header.Get(timeoutHeader); h != "" {
		d, err := time.ParseDuration(h)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("service: bad %s %q: want a positive Go duration like \"90s\"", timeoutHeader, h))
			return
		}
		timeout = d
	}
	wait := r.URL.Query().Get("wait") == "1"
	var base context.Context
	if wait {
		// Tie the job to the request: a client that disconnects while
		// waiting cancels the simulation instead of leaking the worker.
		base = r.Context()
	}

	id := s.queue.NextID()
	rid := obs.RequestID(r.Context())
	if s.journal != nil {
		raw, _ := json.Marshal(spec)
		if err := s.journal.Append(journal.Entry{State: journal.StateAccepted, Job: id, Kind: "campaign", Key: key, Req: rid, Spec: raw}); err != nil {
			// Refuse work the journal cannot record: accepting it would
			// break the "202 implies durable" contract.
			writeError(w, http.StatusInternalServerError, fmt.Errorf("service: journal write failed, not accepting work: %w", err))
			return
		}
	}
	info, err := s.queue.SubmitJob("campaign",
		JobOptions{ID: id, Base: base, Timeout: timeout, RequestID: rid, Trace: obs.TraceFrom(r.Context())},
		s.campaignJob(id, key, rid, spec))
	if err != nil {
		// The accepted record is already durable; close it out so a
		// restart does not resurrect a job the client was told to retry.
		s.journalAppend(journal.Entry{State: journal.StateFailed, Job: id, Kind: "campaign", Key: key, Req: rid, Error: err.Error()})
		if errors.Is(err, ErrQueueFull) {
			retry := s.queue.EstimateWait()
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retry.Seconds()))))
			writeError(w, http.StatusTooManyRequests, fmt.Errorf("%w; retry in %s", err, retry.Round(time.Second)))
			return
		}
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}

	if wait {
		final, err := s.queue.Wait(r.Context(), info.ID)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, CampaignResponse{Job: final, Result: s.resultFor(info.ID)})
		return
	}
	writeJSON(w, http.StatusAccepted, CampaignResponse{Job: info})
}

// resultFor returns a finished campaign result by job ID.
func (s *Server) resultFor(jobID string) *CampaignResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.results[jobID]
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	info, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, CampaignResponse{Job: info, Result: s.resultFor(info.ID)})
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	info, err := s.queue.Wait(r.Context(), id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if info.State == JobFailed {
		writeJSON(w, http.StatusOK, CampaignResponse{Job: info})
		return
	}
	writeJSON(w, http.StatusOK, CampaignResponse{Job: info, Result: s.resultFor(id)})
}

// handleJobStream streams newline-delimited JobInfo snapshots until
// the job finishes — the campaign progress feed simctl renders.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.queue.Get(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown job %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ticker := time.NewTicker(25 * time.Millisecond)
	defer ticker.Stop()
	var last JobInfo
	lastWrite := time.Now()
	emit := func(info JobInfo) {
		if info.State == last.State && info.Done == last.Done && info.Total == last.Total {
			return
		}
		last = info
		lastWrite = time.Now()
		_ = enc.Encode(info)
		if flusher != nil {
			flusher.Flush()
		}
	}
	for {
		info, ok := s.queue.Get(id)
		if !ok {
			return
		}
		emit(info)
		if info.State == JobDone || info.State == JobFailed {
			return
		}
		// A long-running stage emits nothing; heartbeat with a blank
		// line (clients skip empty NDJSON lines) so idle proxies keep
		// the connection open.
		if time.Since(lastWrite) >= s.keepAlive {
			lastWrite = time.Now()
			_, _ = io.WriteString(w, "\n")
			if flusher != nil {
				flusher.Flush()
			}
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}
