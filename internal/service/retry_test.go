package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/campaign"
)

// flakyHandler rejects the first n requests with the given status
// (and optional Retry-After), then delegates to ok.
func flakyHandler(t *testing.T, n int, status int, retryAfter string, ok http.HandlerFunc) (http.HandlerFunc, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	return func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(n) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			writeError(w, status, errors.New("service: job queue full"))
			return
		}
		ok(w, r)
	}, &calls
}

// TestClientRetriesQueueFull pins the graceful-degradation loop: a
// server that answers 429 twice before accepting must cost the client
// exactly three attempts and two observed backoffs, and the final
// submission must succeed.
func TestClientRetriesQueueFull(t *testing.T) {
	h, calls := flakyHandler(t, 2, http.StatusTooManyRequests, "", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusAccepted, CampaignResponse{Job: JobInfo{ID: "j000001", State: JobQueued}})
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	var retries []time.Duration
	c := NewClient(srv.URL)
	c.RetryBase = time.Millisecond
	c.OnRetry = func(attempt int, wait time.Duration, err error) {
		retries = append(retries, wait)
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
			t.Errorf("retry %d observed %v, want a 429 APIError", attempt, err)
		}
	}
	resp, err := c.SubmitCampaign(context.Background(), campaign.Spec{Workloads: []string{"GUPS"}}, false)
	if err != nil {
		t.Fatalf("submit through flaky server: %v", err)
	}
	if resp.Job.ID != "j000001" {
		t.Fatalf("job = %+v", resp.Job)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	if len(retries) != 2 {
		t.Fatalf("observed %d backoffs, want 2", len(retries))
	}
}

// TestClientHonorsRetryAfter: the server's hint must override a
// shorter computed backoff and surface on the APIError.
func TestClientHonorsRetryAfter(t *testing.T) {
	h, _ := flakyHandler(t, 1, http.StatusTooManyRequests, "1", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusAccepted, CampaignResponse{Job: JobInfo{ID: "j000001"}})
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	var waited time.Duration
	c := NewClient(srv.URL)
	c.RetryBase = time.Millisecond // computed backoff ~1ms; hint says 1s
	c.OnRetry = func(_ int, wait time.Duration, _ error) { waited = wait }
	start := time.Now()
	if _, err := c.SubmitCampaign(context.Background(), campaign.Spec{Workloads: []string{"GUPS"}}, false); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if waited != time.Second {
		t.Fatalf("backoff %v, want the server's 1s Retry-After", waited)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("client only waited %v; the Retry-After was not honored", elapsed)
	}
}

// TestClientDoesNotRetryBadRequests: request-shaped errors are final —
// one attempt, the historical error string intact.
func TestClientDoesNotRetryBadRequests(t *testing.T) {
	h, calls := flakyHandler(t, 1<<30, http.StatusBadRequest, "", nil)
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := NewClient(srv.URL)
	c.RetryBase = time.Millisecond
	_, err := c.SubmitCampaign(context.Background(), campaign.Spec{}, false)
	if err == nil {
		t.Fatal("bad request did not error")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts for a 400, want 1", got)
	}
	want := "service: POST /v1/campaigns: service: job queue full (HTTP 400)"
	if err.Error() != want {
		t.Fatalf("error = %q, want %q", err, want)
	}
}

// TestClientRetriesAcrossRestart pins the crash-tolerance story end
// to end at the transport level: the first attempt dies on a closed
// port (connection refused), the retry lands on a live server.
func TestClientRetriesAcrossRestart(t *testing.T) {
	srv := httptest.NewUnstartedServer(nil)
	var started atomic.Bool
	srv.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	// Point the client at a port with no listener first.
	dead := httptest.NewServer(http.NotFoundHandler())
	addr := dead.URL
	dead.Close()

	c := NewClient(addr)
	c.RetryBase = 5 * time.Millisecond
	c.MaxRetries = 6
	c.HTTPClient = &http.Client{Transport: &redirectingTransport{live: srv, started: &started}}
	srv.Start()
	defer srv.Close()
	started.Store(true)

	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("healthz through restart: %v", err)
	}
}

// redirectingTransport refuses connections until the live server is
// up, then forwards to it — a restart seen from the client's side.
type redirectingTransport struct {
	live    *httptest.Server
	started *atomic.Bool
}

func (rt *redirectingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if !rt.started.Load() {
		return nil, errors.New("dial tcp: connection refused")
	}
	req2 := req.Clone(req.Context())
	req2.URL.Scheme = "http"
	req2.URL.Host = strings.TrimPrefix(rt.live.URL, "http://")
	return http.DefaultTransport.RoundTrip(req2)
}

// TestAPIErrorShape pins the wire decoding: message and Retry-After
// both land on the typed error.
func TestAPIErrorShape(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(apiError{Error: "service: job queue full"})
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.MaxRetries = -1 // single attempt: we inspect the raw error
	err := c.Healthz(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %T is not an *APIError: %v", err, err)
	}
	if apiErr.Status != http.StatusTooManyRequests || apiErr.RetryAfter != 7*time.Second {
		t.Fatalf("APIError = %+v", apiErr)
	}
	if !apiErr.Temporary() {
		t.Fatal("429 must report Temporary")
	}
}
