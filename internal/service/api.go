package service

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/units"
)

// This file is the wire format of the simulation service: every JSON
// body the HTTP API accepts or returns, shared by the server, the Go
// client and cmd/simctl.

// RunRequest asks for one workload prediction, in the same vocabulary
// as the knlsim CLI flags ("hbm", "8GB", ...).
type RunRequest struct {
	Workload string `json:"workload"`
	Config   string `json:"config"`
	Size     string `json:"size"`
	Threads  int    `json:"threads"`
	SKU      string `json:"sku,omitempty"`
	// Fidelity selects the execution path: "model" (analytic, the
	// default) or "trace" (functional cache-hierarchy replay).
	Fidelity string `json:"fidelity,omitempty"`
}

// Point resolves the request into its canonical executable form.
func (r RunRequest) Point() (campaign.Point, error) {
	if r.Workload == "" {
		return campaign.Point{}, fmt.Errorf("service: request names no workload")
	}
	if r.Fidelity == campaign.FidelityCluster {
		// A cluster point needs a node count; the sweep endpoint owns
		// that axis.
		return campaign.Point{}, fmt.Errorf("service: cluster fidelity is served by POST /v1/cluster (or a cluster-fidelity campaign)")
	}
	if r.Fidelity == campaign.FidelityReplay {
		// A replay point needs a stored trace id; the replay endpoint
		// owns that vocabulary.
		return campaign.Point{}, fmt.Errorf("service: replay fidelity is served by POST /v1/replay (or a replay-fidelity campaign)")
	}
	var cfg engine.MemoryConfig
	if !(r.Fidelity == campaign.FidelityAdvise && r.Config == "") {
		var err error
		cfg, err = engine.ParseConfig(r.Config)
		if err != nil {
			return campaign.Point{}, err
		}
	}
	size, err := units.ParseBytes(r.Size)
	if err != nil {
		return campaign.Point{}, err
	}
	if size <= 0 {
		return campaign.Point{}, fmt.Errorf("service: size %q must be positive", r.Size)
	}
	threads := r.Threads
	if threads <= 0 {
		threads = 64
	}
	sku := r.SKU
	if sku == "" {
		sku = campaign.DefaultSKU
	}
	fidelity := r.Fidelity
	if fidelity == "" {
		fidelity = campaign.FidelityModel
	}
	if fidelity == campaign.FidelityTrace {
		// Trace replay is thread-independent; canonicalize so
		// requests differing only in threads share a cache entry.
		threads = 0
	}
	if fidelity == campaign.FidelityAdvise {
		// The advisor evaluates every memory mode itself; collapse the
		// config axis so spellings share an entry (mirrors Spec.Expand).
		cfg = engine.MemoryConfig{}
	}
	return campaign.Point{Workload: r.Workload, Config: cfg, Size: size, Threads: threads, SKU: sku, Fidelity: fidelity}, nil
}

// RunResponse is one executed point. Config and Size are echoed in
// canonical form, Key is the content address under which the result
// is cached, and Unavailable carries the paper's "no bar" reason when
// the configuration cannot run.
type RunResponse struct {
	Workload    string                  `json:"workload"`
	Config      string                  `json:"config"`
	Size        string                  `json:"size"`
	Threads     int                     `json:"threads"`
	SKU         string                  `json:"sku"`
	Fidelity    string                  `json:"fidelity"`
	Key         string                  `json:"key"`
	Metric      string                  `json:"metric"`
	Value       float64                 `json:"value"`
	Unavailable string                  `json:"unavailable,omitempty"`
	Trace       *campaign.TraceStats    `json:"trace,omitempty"`
	Advice      *campaign.AdviceSummary `json:"advice,omitempty"`
	Cluster     *campaign.ClusterStats  `json:"cluster,omitempty"`
	Nodes       int                     `json:"nodes,omitempty"`
	TraceID     string                  `json:"trace_id,omitempty"`
	Cached      bool                    `json:"cached"`
	ElapsedMS   float64                 `json:"elapsed_ms"`
}

// runResponse converts an executed outcome to the wire form.
func runResponse(o campaign.Outcome, cached bool, elapsedMS float64) RunResponse {
	fidelity := o.Point.Fidelity
	if fidelity == "" {
		fidelity = campaign.FidelityModel
	}
	return RunResponse{
		Workload:    o.Point.Workload,
		Config:      o.Point.Config.String(),
		Size:        o.Point.Size.String(),
		Threads:     o.Point.Threads,
		SKU:         o.Point.SKU,
		Fidelity:    fidelity,
		Key:         o.Point.Key(),
		Metric:      o.Metric,
		Value:       o.Value,
		Unavailable: o.Unavailable,
		Trace:       o.Trace,
		Advice:      o.Advice,
		Cluster:     o.Cluster,
		Nodes:       o.Point.Nodes,
		TraceID:     o.Point.TraceID,
		Cached:      cached,
		ElapsedMS:   elapsedMS,
	}
}

// ExperimentResult is one paper experiment run as part of a campaign.
type ExperimentResult struct {
	ID       string `json:"id"`
	Title    string `json:"title"`
	Rendered string `json:"rendered,omitempty"`
	CSV      string `json:"csv,omitempty"`
	Error    string `json:"error,omitempty"`
}

// CampaignResult is a completed campaign: every point outcome, the
// aggregate tables, and cache accounting.
type CampaignResult struct {
	Key         string             `json:"key"`
	Name        string             `json:"name,omitempty"`
	Expanded    int                `json:"expanded"` // raw cross-product size
	Points      int                `json:"points"`   // after deduplication
	CacheHits   int                `json:"cache_hits"`
	Cached      bool               `json:"cached"` // whole campaign served from cache
	Results     []RunResponse      `json:"results,omitempty"`
	Experiments []ExperimentResult `json:"experiments,omitempty"`
	Tables      []string           `json:"tables,omitempty"`
	ElapsedMS   float64            `json:"elapsed_ms"`
}

// CampaignResponse is the submit/poll envelope: the job record plus
// the result once it exists.
type CampaignResponse struct {
	Job    JobInfo         `json:"job"`
	Result *CampaignResult `json:"result,omitempty"`
}

// WorkloadInfo is one row of GET /v1/workloads.
type WorkloadInfo struct {
	Name     string `json:"name"`
	Class    string `json:"class"`
	Pattern  string `json:"pattern"`
	MaxScale string `json:"max_scale"`
	Metric   string `json:"metric"`
}

// ExperimentInfo is one row of GET /v1/experiments.
type ExperimentInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

// apiError is the uniform error envelope. RequestID carries the
// request's correlation key so a client can quote it when reporting a
// failure; it is empty only when the handler ran outside the
// middleware stack (direct unit-test invocation).
type apiError struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// RenderTimings renders a job's stage timeline the way simctl prints
// it with -timings: one row per completed span plus the derived
// queue/run split.
func RenderTimings(info JobInfo) string {
	var b strings.Builder
	fmt.Fprintf(&b, "job %s (%s) state=%s", info.ID, info.Kind, info.State)
	if info.RequestID != "" {
		fmt.Fprintf(&b, " request_id=%s", info.RequestID)
	}
	b.WriteString("\n")
	if len(info.Timeline) == 0 {
		b.WriteString("no completed stages yet\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-12s %-27s %12s\n", "stage", "start", "ms")
	for _, span := range info.Timeline {
		fmt.Fprintf(&b, "%-12s %-27s %12.3f\n", span.Stage, span.Start.Format(time.RFC3339Nano), span.MS)
	}
	if info.QueueMS > 0 || info.RunMS > 0 {
		fmt.Fprintf(&b, "queued %.3f ms, ran %.3f ms\n", info.QueueMS, info.RunMS)
	}
	return b.String()
}

// RenderSpanTree renders an execution trace's span tree the way
// simctl prints it: one row per span, indented by depth, children
// under their parents in start order.
func RenderSpanTree(t obs.TraceData) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s", t.ID)
	if t.Name != "" {
		fmt.Fprintf(&b, " (%s)", t.Name)
	}
	if t.MS > 0 {
		fmt.Fprintf(&b, " %.3f ms", t.MS)
	}
	if t.Dropped > 0 {
		fmt.Fprintf(&b, " [%d spans dropped]", t.Dropped)
	}
	b.WriteString("\n")
	children := make(map[int][]obs.SpanData)
	byID := make(map[int]bool, len(t.Spans))
	for _, sp := range t.Spans {
		byID[sp.ID] = true
	}
	var roots []obs.SpanData
	for _, sp := range t.Spans {
		if sp.Parent != 0 && byID[sp.Parent] {
			children[sp.Parent] = append(children[sp.Parent], sp)
		} else {
			// Orphans (parent dropped past the span cap) print at the
			// top level rather than vanishing.
			roots = append(roots, sp)
		}
	}
	order := func(s []obs.SpanData) {
		sort.Slice(s, func(i, j int) bool {
			if !s[i].Start.Equal(s[j].Start) {
				return s[i].Start.Before(s[j].Start)
			}
			return s[i].ID < s[j].ID
		})
	}
	var walk func(sp obs.SpanData, depth int)
	walk = func(sp obs.SpanData, depth int) {
		fmt.Fprintf(&b, "%s%-*s %12.3f ms", strings.Repeat("  ", depth), 24-2*depth, sp.Name, sp.MS)
		for _, a := range sp.Attrs {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
		}
		if sp.Error {
			b.WriteString(" ERROR")
		}
		b.WriteString("\n")
		kids := children[sp.ID]
		order(kids)
		for _, kid := range kids {
			walk(kid, depth+1)
		}
	}
	order(roots)
	for _, sp := range roots {
		walk(sp, 0)
	}
	return b.String()
}
