package service

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/events"
	"repro/internal/obs"
)

// TestSpanTreeEndToEnd is the tentpole acceptance check: a cold wait=1
// campaign produces a queryable span tree at /debug/traces/{request_id}
// whose queue wait / execute / persist spans agree with the job's stage
// timeline, and the request latency histogram carries an exemplar
// referencing the same trace ID.
func TestSpanTreeEndToEnd(t *testing.T) {
	const rid = "span-e2e-1"
	_, c := newTestServer(t)
	ctx := context.Background()
	c.RequestID = rid

	spec := campaign.Spec{Workloads: []string{"STREAM"}, Configs: []string{"dram"}, Sizes: []string{"1GB"}}
	resp, err := c.SubmitCampaign(ctx, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Job.State != JobDone {
		t.Fatalf("job %+v, want done", resp.Job)
	}
	// Unpin the request ID: a later request reusing it would begin a
	// fresh trace that shadows the campaign's in the tracer's lookup.
	c.RequestID = ""

	tr, err := c.DebugTrace(ctx, rid)
	if err != nil {
		t.Fatalf("no trace for request %s: %v", rid, err)
	}
	if tr.ID != rid {
		t.Fatalf("trace id = %q, want %q", tr.ID, rid)
	}
	if tr.Name != "POST /v1/campaigns" {
		t.Errorf("trace name = %q, want the matched route", tr.Name)
	}

	byName := map[string][]obs.SpanData{}
	byID := map[int]obs.SpanData{}
	for _, sp := range tr.Spans {
		byName[sp.Name] = append(byName[sp.Name], sp)
		byID[sp.ID] = sp
	}
	for _, want := range []string{"queue_wait", "execute", "persist", "cache.campaign", "cache.point", "compute"} {
		if len(byName[want]) == 0 {
			t.Fatalf("trace has no %q span; spans: %s", want, RenderSpanTree(tr))
		}
	}

	execute := byName["execute"][0]
	if execute.Parent != obs.RootSpanID {
		t.Errorf("execute span parent = %d, want root", execute.Parent)
	}
	if byName["queue_wait"][0].Parent != obs.RootSpanID {
		t.Errorf("queue_wait span parent = %d, want root", byName["queue_wait"][0].Parent)
	}
	if byName["cache.campaign"][0].Parent != execute.ID {
		t.Errorf("cache.campaign parent = %d, want execute %d", byName["cache.campaign"][0].Parent, execute.ID)
	}

	// The span tree and the PR-7 stage timeline are two views of the
	// same measurement; the queue mirrors the identical timestamps, so
	// the durations must agree to within float rounding.
	stages := map[string]StageSpan{}
	for _, st := range resp.Job.Timeline {
		stages[st.Stage] = st
	}
	match := func(name string, sp obs.SpanData) {
		st, ok := stages[name]
		if !ok {
			t.Errorf("timeline has no %q stage", name)
			return
		}
		if diff := sp.MS - st.MS; diff < -0.01 || diff > 0.01 {
			t.Errorf("%s: span %.3f ms vs timeline %.3f ms, want agreement", name, sp.MS, st.MS)
		}
		if !sp.Start.Equal(st.Start) {
			t.Errorf("%s: span start %v vs timeline start %v", name, sp.Start, st.Start)
		}
	}
	match("queue_wait", byName["queue_wait"][0])
	match("execute", execute)
	// Two spans may carry the persist name (the campaign result and the
	// per-point result); the timeline's is the campaign-level one under
	// the execute span.
	var campaignPersist *obs.SpanData
	for i, sp := range byName["persist"] {
		if sp.Parent == execute.ID {
			campaignPersist = &byName["persist"][i]
		}
	}
	if campaignPersist == nil {
		t.Fatalf("no persist span under execute:\n%s", RenderSpanTree(tr))
	}
	match("persist", *campaignPersist)

	// The trace is listed, and the rendered tree carries every stage.
	sums, err := c.DebugTraces(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range sums {
		if s.ID == rid {
			found = true
		}
	}
	if !found {
		t.Errorf("trace %s missing from /debug/traces listing", rid)
	}
	rendered := RenderSpanTree(tr)
	for _, want := range []string{rid, "queue_wait", "execute", "compute", "persist"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("RenderSpanTree missing %q:\n%s", want, rendered)
		}
	}

	// The latency histogram's bucket rows carry an OpenMetrics exemplar
	// pointing back at this trace.
	body := scrapeMetrics2(t, c)
	exemplar := false
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, `simd_http_request_seconds_bucket{route="POST /v1/campaigns"`) &&
			strings.Contains(line, `# {trace_id="`+rid+`"}`) {
			exemplar = true
		}
	}
	if !exemplar {
		t.Errorf("no histogram exemplar references trace %s:\n%s", rid, grepLines(body, "simd_http_request_seconds_bucket"))
	}
}

// TestEventFeedTwoSubscribersExactlyOnce: two concurrent SSE watchers
// of one campaign each receive every point-completed event exactly
// once, and watching does not re-execute anything (the campaign still
// computes each point once, pinned by the cache-hit counter).
func TestEventFeedTwoSubscribersExactlyOnce(t *testing.T) {
	srv := NewServer(Options{Workers: 1, QueueDepth: 32})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Close(context.Background())
	})
	c := NewClient(ts.URL)
	ctx := context.Background()

	// Park the single worker so the campaign stays queued while both
	// watchers attach — otherwise a fast campaign could finish before
	// the feeds open and the test would race.
	release := make(chan struct{})
	if _, err := srv.queue.Submit("block", func(ctx context.Context, progress func(int, int)) error {
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}); err != nil {
		t.Fatal(err)
	}

	spec := campaign.Spec{
		Workloads: []string{"STREAM"},
		Configs:   []string{"dram", "hbm"},
		Sizes:     []string{"1GB", "2GB"},
	}
	resp, err := c.SubmitCampaign(ctx, spec, false)
	if err != nil {
		t.Fatal(err)
	}
	jobID := resp.Job.ID

	type feed struct {
		mu     sync.Mutex
		points map[string]int
		states []string
		err    error
	}
	feeds := [2]*feed{{points: map[string]int{}}, {points: map[string]int{}}}
	var wg sync.WaitGroup
	for _, f := range feeds {
		wg.Add(1)
		go func(f *feed) {
			defer wg.Done()
			f.err = c.WatchJob(ctx, jobID, func(ev events.Event) {
				f.mu.Lock()
				defer f.mu.Unlock()
				switch ev.Type {
				case events.TypePoint:
					f.points[ev.Point]++
				case events.TypeState:
					f.states = append(f.states, ev.State)
				}
			})
		}(f)
	}

	// Both feeds subscribed on the bus, then let the campaign run.
	deadline := time.Now().Add(5 * time.Second)
	for srv.events.SubscriberCount(jobID) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("watchers never subscribed: %d", srv.events.SubscriberCount(jobID))
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	final, err := c.WaitResult(ctx, jobID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Job.State != JobDone {
		t.Fatalf("job %+v, want done", final.Job)
	}
	if final.Result.Points != 4 {
		t.Fatalf("campaign computed %d points, want 4", final.Result.Points)
	}
	// No re-execution on behalf of the watchers: every point was
	// computed exactly once, none served from cache mid-campaign.
	if final.Result.CacheHits != 0 {
		t.Errorf("cache hits = %d, want 0 on a cold campaign", final.Result.CacheHits)
	}
	body := scrapeMetrics2(t, c)
	if !strings.Contains(body, `simd_point_compute_seconds_count{fidelity="model"} 4`) {
		t.Errorf("compute count is not 4 — points re-executed?\n%s", grepLines(body, "simd_point_compute_seconds_count"))
	}

	for i, f := range feeds {
		if f.err != nil {
			t.Fatalf("watcher %d: %v", i, f.err)
		}
		if len(f.points) != 4 {
			t.Errorf("watcher %d saw %d distinct points, want 4: %v", i, len(f.points), f.points)
		}
		for key, n := range f.points {
			if n != 1 {
				t.Errorf("watcher %d saw point %s %d times, want exactly once", i, key, n)
			}
		}
		if len(f.states) == 0 || f.states[len(f.states)-1] != string(JobDone) {
			t.Errorf("watcher %d states = %v, want a terminal done", i, f.states)
		}
	}
}

// TestJobEventsUnknownJob: the SSE feed 404s before committing to the
// stream when the job does not exist.
func TestJobEventsUnknownJob(t *testing.T) {
	_, c := newTestServer(t)
	err := c.WatchJob(context.Background(), "j999999", func(events.Event) {})
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("err = %v, want HTTP 404", err)
	}
}

// TestJobEventsTerminalSnapshot: watching an already finished job
// delivers exactly one final state event and returns.
func TestJobEventsTerminalSnapshot(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	spec := campaign.Spec{Workloads: []string{"STREAM"}, Configs: []string{"dram"}, Sizes: []string{"1GB"}}
	resp, err := c.SubmitCampaign(ctx, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	var got []events.Event
	if err := c.WatchJob(ctx, resp.Job.ID, func(ev events.Event) {
		got = append(got, ev)
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].Final || got[0].State != string(JobDone) {
		t.Fatalf("events = %+v, want exactly one final done snapshot", got)
	}
}
