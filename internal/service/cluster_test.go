package service

import (
	"context"
	"io"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/units"
)

// TestClusterMatchesDirectIterate is the acceptance pin: the HTTP
// /v1/cluster answer must be identical — every row, every float — to
// an in-process cluster.New(...).Iterate run over the same node
// counts.
func TestClusterMatchesDirectIterate(t *testing.T) {
	_, c := newTestServer(t)
	nodes := []int{2, 4, 8, 12, 16}
	resp, err := c.Cluster(context.Background(), ClusterRequest{
		Workload: "MiniFE", Size: "120GB", Threads: 64, Nodes: nodes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("first sweep reported cached")
	}
	if len(resp.Rows) != len(nodes) {
		t.Fatalf("rows = %d, want %d", len(resp.Rows), len(nodes))
	}

	sys, err := core.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	mdl, err := sys.Workload("MiniFE")
	if err != nil {
		t.Fatal(err)
	}
	global := units.GB(120)
	wantMin := 0
	for i, n := range nodes {
		cl, err := cluster.New(sys.Machine, n, cluster.Aries())
		if err != nil {
			t.Fatal(err)
		}
		row := resp.Rows[i]
		if row.Nodes != n || row.PerNodeSize != (global/units.Bytes(n)).String() {
			t.Fatalf("row %d echo wrong: %+v", i, row)
		}
		want, err := cl.Iterate(mdl, global, 64)
		if err != nil {
			if row.Unavailable == "" {
				t.Errorf("%d nodes: direct Iterate fails (%v) but service returned a result", n, err)
			}
			continue
		}
		if row.Unavailable != "" {
			t.Errorf("%d nodes: service unavailable (%s) but direct Iterate succeeds", n, row.Unavailable)
			continue
		}
		// Byte-identical: every float must match the direct run exactly.
		if row.ComputeNS != want.ComputeNS || row.HaloNS != want.HaloNS ||
			row.ReduceNS != want.ReduceNS || row.TotalNS != want.TotalNS ||
			row.Efficiency != want.Efficiency || row.Config != want.Config.String() {
			t.Errorf("%d nodes: service row %+v != direct %+v", n, row, want)
		}
		if fits := want.Config.Kind == engine.BindHBM; row.FitsHBM != fits {
			t.Errorf("%d nodes: FitsHBM = %v, direct config %v", n, row.FitsHBM, want.Config)
		}
		if row.FitsHBM && (wantMin == 0 || n < wantMin) {
			wantMin = n
		}
	}
	// The decomposition advisor: minimum HBM-fitting node count.
	if resp.MinHBMNodes != wantMin {
		t.Errorf("MinHBMNodes = %d, direct runs give %d", resp.MinHBMNodes, wantMin)
	}
	if wantMin == 0 {
		t.Error("sweep never reached the HBM sweet spot — test grid too small")
	}
	one, err := cluster.New(sys.Machine, 1, cluster.Aries())
	if err != nil {
		t.Fatal(err)
	}
	capacity, err := one.SweetSpot(global, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resp.CapacityNodes != capacity {
		t.Errorf("CapacityNodes = %d, direct SweetSpot %d", resp.CapacityNodes, capacity)
	}
}

// TestClusterCampaignMatchesDirectIterate pins the campaign path the
// same way: cluster-fidelity campaign points must carry exactly the
// values of direct cluster runs.
func TestClusterCampaignMatchesDirectIterate(t *testing.T) {
	_, c := newTestServer(t)
	spec := campaign.Spec{
		Fidelity:  campaign.FidelityCluster,
		Workloads: []string{"MiniFE"},
		Sizes:     []string{"120GB"},
		Threads:   []int{64},
		Nodes:     []int{2, 4, 8, 12},
	}
	resp, err := c.SubmitCampaign(context.Background(), spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Job.State != JobDone {
		t.Fatalf("job state %s (%s)", resp.Job.State, resp.Job.Error)
	}
	res := resp.Result
	if res == nil || res.Points != 4 {
		t.Fatalf("result %+v, want 4 points", res)
	}

	sys, err := core.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	mdl, err := sys.Workload("MiniFE")
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range []int{2, 4, 8, 12} {
		got := res.Results[i]
		if got.Nodes != n || got.Fidelity != campaign.FidelityCluster {
			t.Fatalf("result %d echo wrong: %+v", i, got)
		}
		cl, err := cluster.New(sys.Machine, n, cluster.Aries())
		if err != nil {
			t.Fatal(err)
		}
		want, err := cl.Iterate(mdl, units.GB(120), 64)
		if err != nil {
			if got.Unavailable == "" {
				t.Errorf("%d nodes: direct fails (%v), service returned %v", n, err, got.Value)
			}
			continue
		}
		if got.Value != want.TotalNS || got.Cluster == nil || got.Cluster.TotalNS != want.TotalNS ||
			got.Cluster.Efficiency != want.Efficiency || got.Cluster.Config != want.Config.String() {
			t.Errorf("%d nodes: service %+v != direct %+v", n, got.Cluster, want)
		}
	}
	if len(res.Tables) != 1 {
		t.Fatalf("tables = %d, want 1 scaling table", len(res.Tables))
	}
	for _, want := range []string{"nodes", "per-node", "iter ms", "eff", "fits HBM"} {
		if !strings.Contains(res.Tables[0], want) {
			t.Errorf("scaling table missing %q:\n%s", want, res.Tables[0])
		}
	}
}

// TestClusterOverCapacityRendersDashRows: a decomposition whose
// per-node working set fits no configuration is a "no bar" row, not
// an error — the rest of the sweep still renders.
func TestClusterOverCapacityRendersDashRows(t *testing.T) {
	_, c := newTestServer(t)
	// 300 GB over 2 nodes = 150 GB per node: beyond even DDR. Over 8
	// nodes it fits DRAM.
	resp, err := c.Cluster(context.Background(), ClusterRequest{
		Workload: "MiniFE", Size: "300GB", Nodes: []int{2, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rows[0].Unavailable == "" {
		t.Errorf("150 GB/node should be over capacity, got %+v", resp.Rows[0])
	}
	if resp.Rows[1].Unavailable != "" {
		t.Errorf("37.5 GB/node should run, got unavailable %q", resp.Rows[1].Unavailable)
	}
	rendered := RenderCluster(resp)
	var dashRow bool
	for _, line := range strings.Split(rendered, "\n") {
		if strings.HasPrefix(line, "2 ") && strings.Contains(line, "-") {
			dashRow = true
		}
	}
	if !dashRow {
		t.Errorf("over-capacity node count not rendered as dash row:\n%s", rendered)
	}
}

// TestClusterCacheHitsAcrossSpellings: the cluster cache is
// content-addressed over the resolved request, so "120GB" and
// "122880MB" (and reordered, duplicated node lists) share one entry.
func TestClusterCacheHitsAcrossSpellings(t *testing.T) {
	srv, c := newTestServer(t)
	ctx := context.Background()
	first, err := c.Cluster(ctx, ClusterRequest{
		Workload: "MiniFE", Size: "120GB", Nodes: []int{2, 12, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	again, err := c.Cluster(ctx, ClusterRequest{
		Workload: "MiniFE", Size: "122880MB", Nodes: []int{8, 2, 12, 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Key != first.Key {
		t.Fatalf("respelled sweep: cached=%v key match=%v", again.Cached, again.Key == first.Key)
	}
	if h, _ := srv.clusters.Stats(); h != 1 {
		t.Fatalf("cluster cache hits = %d, want 1", h)
	}
	// A different interconnect is a different question.
	other, err := c.Cluster(ctx, ClusterRequest{
		Workload: "MiniFE", Size: "120GB", Nodes: []int{2, 8, 12},
		Interconnect: &InterconnectSpec{Name: "slow", LatencyNS: 5000, BandwidthGBs: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if other.Cached || other.Key == first.Key {
		t.Fatal("custom interconnect must not share the Aries cache entry")
	}
	if other.Network != "slow" {
		t.Fatalf("network echo = %q", other.Network)
	}
}

func TestClusterBadRequests(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	for name, req := range map[string]ClusterRequest{
		"no workload":      {Size: "120GB"},
		"no size":          {Workload: "MiniFE"},
		"bad size":         {Workload: "MiniFE", Size: "wat"},
		"negative size":    {Workload: "MiniFE", Size: "-1GB"},
		"zero nodes":       {Workload: "MiniFE", Size: "120GB", Nodes: []int{0}},
		"negative nodes":   {Workload: "MiniFE", Size: "120GB", Nodes: []int{4, -1}},
		"unknown workload": {Workload: "NoSuch", Size: "120GB"},
		"unknown sku":      {Workload: "MiniFE", Size: "120GB", SKU: "9999"},
		"bad factor":       {Workload: "MiniFE", Size: "120GB", WorkingSetFactor: 0.5},
		"bad interconnect": {Workload: "MiniFE", Size: "120GB", Interconnect: &InterconnectSpec{LatencyNS: -1, BandwidthGBs: 10}},
	} {
		if _, err := c.Cluster(ctx, req); err == nil || !strings.Contains(err.Error(), "400") {
			t.Errorf("%s: err = %v, want HTTP 400", name, err)
		}
	}
	// /v1/run must point cluster fidelity at the sweep endpoint.
	if _, err := c.Run(ctx, RunRequest{Workload: "MiniFE", Size: "120GB", Fidelity: campaign.FidelityCluster}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("run with cluster fidelity: err = %v, want HTTP 400", err)
	}
}

// TestClusterMetricsRows: the cluster cache is visible on /metrics.
func TestClusterMetricsRows(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	req := ClusterRequest{Workload: "MiniFE", Size: "120GB", Nodes: []int{2, 8}}
	if _, err := c.Cluster(ctx, req); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cluster(ctx, req); err != nil {
		t.Fatal(err)
	}
	resp, err := c.httpClient().Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`simd_cache_hits_total{cache="cluster"} 1`,
		`simd_cache_misses_total{cache="cluster"} 1`,
		`simd_cache_entries{cache="cluster"} 1`,
		`simd_http_requests_total{route="POST /v1/cluster"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestRenderClusterSummaries: the rendered sweep names both halves of
// the decomposition advisor's answer.
func TestRenderClusterSummaries(t *testing.T) {
	_, c := newTestServer(t)
	resp, err := c.Cluster(context.Background(), ClusterRequest{
		Workload: "MiniFE", Size: "120GB", Nodes: []int{2, 4, 8, 12, 16}, WorkingSetFactor: 1.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderCluster(resp)
	for _, want := range []string{
		"cluster scaling for MiniFE, 120.0 GiB global",
		"Cray Aries",
		"<- fits HBM",
		"sub-problem first fits HBM at",
		"capacity rule",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered sweep missing %q:\n%s", want, out)
		}
	}
}
