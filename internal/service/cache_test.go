package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheGetOrCompute(t *testing.T) {
	c := NewCache[int](0)
	var calls atomic.Int64
	fn := func() (int, error) { calls.Add(1); return 42, nil }

	v, cached, err := c.GetOrCompute("k", fn)
	if err != nil || v != 42 || cached {
		t.Fatalf("first call: v=%d cached=%v err=%v", v, cached, err)
	}
	v, cached, err = c.GetOrCompute("k", fn)
	if err != nil || v != 42 || !cached {
		t.Fatalf("second call: v=%d cached=%v err=%v", v, cached, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", calls.Load())
	}
	if h, m := c.Stats(); h != 1 || m != 1 {
		t.Fatalf("stats hits=%d misses=%d, want 1/1", h, m)
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache[int](0)
	var calls atomic.Int64
	release := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.GetOrCompute("k", func() (int, error) {
				calls.Add(1)
				<-release
				return 7, nil
			})
			if err != nil || v != 7 {
				t.Errorf("v=%d err=%v", v, err)
			}
		}()
	}
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("concurrent identical lookups computed %d times, want 1", calls.Load())
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache[int](0)
	boom := errors.New("boom")
	var calls atomic.Int64
	fail := func() (int, error) { calls.Add(1); return 0, boom }
	if _, _, err := c.GetOrCompute("k", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// The key must stay retryable and then cache the success.
	v, cached, err := c.GetOrCompute("k", func() (int, error) { return 5, nil })
	if err != nil || v != 5 || cached {
		t.Fatalf("retry: v=%d cached=%v err=%v", v, cached, err)
	}
	if v, cached, _ := c.GetOrCompute("k", fail); v != 5 || !cached {
		t.Fatalf("after retry: v=%d cached=%v", v, cached)
	}
	if calls.Load() != 1 {
		t.Fatalf("failing fn ran %d times, want 1", calls.Load())
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache[int](4)
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		if _, _, err := c.GetOrCompute(k, func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n > 4 {
		t.Fatalf("cache holds %d entries, bound is 4", n)
	}
	// Newest entry must have survived.
	v, cached, _ := c.GetOrCompute("k9", func() (int, error) { return -1, nil })
	if !cached || v != 9 {
		t.Fatalf("newest entry evicted: v=%d cached=%v", v, cached)
	}
}
