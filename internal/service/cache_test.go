package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheGetOrCompute(t *testing.T) {
	c := NewCache[int](0)
	var calls atomic.Int64
	fn := func() (int, error) { calls.Add(1); return 42, nil }

	v, cached, err := c.GetOrCompute("k", fn)
	if err != nil || v != 42 || cached {
		t.Fatalf("first call: v=%d cached=%v err=%v", v, cached, err)
	}
	v, cached, err = c.GetOrCompute("k", fn)
	if err != nil || v != 42 || !cached {
		t.Fatalf("second call: v=%d cached=%v err=%v", v, cached, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", calls.Load())
	}
	if h, m := c.Stats(); h != 1 || m != 1 {
		t.Fatalf("stats hits=%d misses=%d, want 1/1", h, m)
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache[int](0)
	var calls atomic.Int64
	release := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.GetOrCompute("k", func() (int, error) {
				calls.Add(1)
				<-release
				return 7, nil
			})
			if err != nil || v != 7 {
				t.Errorf("v=%d err=%v", v, err)
			}
		}()
	}
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("concurrent identical lookups computed %d times, want 1", calls.Load())
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache[int](0)
	boom := errors.New("boom")
	var calls atomic.Int64
	fail := func() (int, error) { calls.Add(1); return 0, boom }
	if _, _, err := c.GetOrCompute("k", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// The key must stay retryable and then cache the success.
	v, cached, err := c.GetOrCompute("k", func() (int, error) { return 5, nil })
	if err != nil || v != 5 || cached {
		t.Fatalf("retry: v=%d cached=%v err=%v", v, cached, err)
	}
	if v, cached, _ := c.GetOrCompute("k", fail); v != 5 || !cached {
		t.Fatalf("after retry: v=%d cached=%v", v, cached)
	}
	if calls.Load() != 1 {
		t.Fatalf("failing fn ran %d times, want 1", calls.Load())
	}
}

// TestCacheFailedKeyDoesNotLeakFIFO hammers a key whose computation
// keeps failing: every failure must purge its fifo slot, so repeated
// retries cannot grow the eviction queue or plant duplicate entries.
func TestCacheFailedKeyDoesNotLeakFIFO(t *testing.T) {
	c := NewCache[int](8)
	boom := errors.New("boom")
	for i := 0; i < 100; i++ {
		if _, _, err := c.GetOrCompute("flaky", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
			t.Fatalf("iteration %d: err = %v", i, err)
		}
		if n := c.fifoLen(); n != 0 {
			t.Fatalf("iteration %d: fifo holds %d entries after failure, want 0", i, n)
		}
	}
	// Interleave successes so the queue is busy, then keep failing: the
	// fifo must track the entry count exactly (no duplicates, no leak).
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k%d", i%4)
		if _, _, err := c.GetOrCompute(k, func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
		_, _, _ = c.GetOrCompute("flaky", func() (int, error) { return 0, boom })
		if fifo, entries := c.fifoLen(), c.Len(); fifo != entries {
			t.Fatalf("iteration %d: fifo=%d entries=%d — queue out of sync", i, fifo, entries)
		}
	}
	if n := c.fifoLen(); n > 8 {
		t.Fatalf("fifo grew to %d under repeated failures, bound is 8", n)
	}
	// The flaky key must still be retryable and then cache the success.
	v, cached, err := c.GetOrCompute("flaky", func() (int, error) { return 77, nil })
	if err != nil || v != 77 || cached {
		t.Fatalf("recovery: v=%d cached=%v err=%v", v, cached, err)
	}
}

// TestCacheEvictionProceedsPastInFlight pins the eviction scan: one
// long-running computation at the head of the queue must not stall
// eviction of the completed entries behind it.
func TestCacheEvictionProceedsPastInFlight(t *testing.T) {
	c := NewCache[int](2)
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _ = c.GetOrCompute("inflight", func() (int, error) {
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started

	// Every insert beyond the bound must evict a completed entry even
	// though the oldest entry ("inflight") cannot be evicted yet.
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		if _, _, err := c.GetOrCompute(k, func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
		if n := c.Len(); n > 2 {
			t.Fatalf("insert %d: cache holds %d entries, bound is 2 — eviction stalled on in-flight head", i, n)
		}
	}
	close(release)
	wg.Wait()
	// The in-flight entry survived the whole sweep and now serves hits.
	v, cached, err := c.GetOrCompute("inflight", func() (int, error) { return -1, nil })
	if err != nil || !cached || v != 1 {
		t.Fatalf("in-flight entry lost: v=%d cached=%v err=%v", v, cached, err)
	}
}

// TestCacheAllInFlightDoesNotSpin fills the cache beyond its bound
// with computations that never finish: evictLocked must give up after
// one rotation instead of spinning forever.
func TestCacheAllInFlightDoesNotSpin(t *testing.T) {
	c := NewCache[int](1)
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		started := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, _ = c.GetOrCompute(fmt.Sprintf("k%d", i), func() (int, error) {
				close(started)
				<-release
				return 0, nil
			})
		}()
		<-started // the insert (and its eviction scan) has happened
	}
	close(release)
	wg.Wait()
	// Entries completed after the scans; the next insert trims to max.
	if _, _, err := c.GetOrCompute("kn", func() (int, error) { return 0, nil }); err != nil {
		t.Fatal(err)
	}
	if n := c.Len(); n > 1 {
		t.Fatalf("cache holds %d entries after completions, bound is 1", n)
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache[int](4)
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		if _, _, err := c.GetOrCompute(k, func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n > 4 {
		t.Fatalf("cache holds %d entries, bound is 4", n)
	}
	// Newest entry must have survived.
	v, cached, _ := c.GetOrCompute("k9", func() (int, error) { return -1, nil })
	if !cached || v != 9 {
		t.Fatalf("newest entry evicted: v=%d cached=%v", v, cached)
	}
}
