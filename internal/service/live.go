package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/events"
)

// This file is the live side of the observability surface: the SSE
// event feed any number of clients use to watch one job (GET
// /v1/jobs/{id}/events) and the execution-trace debug endpoints (GET
// /debug/traces, GET /debug/traces/{id}).

// stateEvent converts a job snapshot into its bus event. Terminal
// states carry Final so feeds know to hang up.
func stateEvent(info JobInfo) events.Event {
	ev := events.Event{
		Job: info.ID, Type: events.TypeState, State: string(info.State),
		Done: info.Done, Total: info.Total, Error: info.Error,
	}
	if info.State == JobDone || info.State == JobFailed {
		ev.Final = true
	}
	return ev
}

// handleJobEvents serves one job's live feed as Server-Sent Events:
// an opening state snapshot, then every published transition, point
// completion and progress tick, with comment keepalives while idle.
// The stream ends after the terminal (final) event. Subscription
// happens before the snapshot so no event published in between is
// lost; a state event may therefore be delivered twice around the
// boundary, which watchers absorb (renders are idempotent).
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.queue.Get(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown job %q", id))
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	sub := s.events.Subscribe(id, 0)
	defer sub.Close()

	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	writeEvent := func(ev events.Event) {
		payload, err := json.Marshal(ev)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, payload)
	}

	// Opening snapshot: where the job stands right now. If it is
	// already terminal this is also the final event.
	info, ok := s.queue.Get(id)
	if !ok {
		return
	}
	first := stateEvent(info)
	first.Time = time.Now()
	writeEvent(first)
	flush()
	if first.Final {
		return
	}

	keepalive := time.NewTicker(s.keepAlive)
	defer keepalive.Stop()
	for {
		for {
			ev, ok := sub.Next()
			if !ok {
				break
			}
			writeEvent(ev)
			if ev.Final {
				flush()
				return
			}
		}
		flush()
		select {
		case <-r.Context().Done():
			return
		case <-sub.Ready():
		case <-keepalive.C:
			// SSE comment line: ignored by parsers, keeps idle proxies
			// from severing the watch.
			fmt.Fprint(w, ": keepalive\n\n")
			flush()
		}
	}
}

// handleDebugTraces lists the retained execution traces, newest first.
func (s *Server) handleDebugTraces(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.tracer.List())
}

// handleDebugTrace serves one trace's span tree by trace ID (= the
// request ID of the request that produced it).
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	data, ok := s.tracer.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no trace %q (evicted, or never sampled)", id))
		return
	}
	writeJSON(w, http.StatusOK, data)
}
