package service

import (
	"bytes"
	"compress/gzip"
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/campaign"
	"repro/internal/engine"
	"repro/internal/tracesim"
)

// newReplayServer builds a server with an isolated trace store.
func newReplayServer(t *testing.T, opt Options) (*Server, *Client) {
	t.Helper()
	if opt.Workers == 0 {
		opt.Workers = 2
	}
	if opt.QueueDepth == 0 {
		opt.QueueDepth = 16
	}
	if opt.TraceDir == "" {
		opt.TraceDir = t.TempDir()
	}
	srv := NewServer(opt)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Close(context.Background())
	})
	return srv, NewClient(ts.URL)
}

// replayAccesses is a deterministic mixed-locality stream that misses
// in L1/L2 often enough to exercise the memory-side cache.
func replayAccesses(n int) []tracesim.Access {
	rng := rand.New(rand.NewSource(99))
	out := make([]tracesim.Access, n)
	addr := uint64(0)
	for i := range out {
		if rng.Intn(3) == 0 {
			addr = uint64(rng.Intn(8 << 20))
		} else {
			addr += 64
		}
		kind := cache.Read
		if rng.Intn(5) == 0 {
			kind = cache.Write
		}
		out[i] = tracesim.Access{Addr: addr, Kind: kind}
	}
	return out
}

func ndjsonBody(accs []tracesim.Access) []byte {
	var b bytes.Buffer
	for _, a := range accs {
		kind := "R"
		if a.Kind == cache.Write {
			kind = "W"
		}
		fmt.Fprintf(&b, "{\"addr\": %d, \"kind\": %q}\n", a.Addr, kind)
	}
	return b.Bytes()
}

// sliceGen replays a fixed access slice (scalar-only generator).
type sliceGen struct {
	accs []tracesim.Access
	pos  int
}

func (g *sliceGen) Next() (tracesim.Access, bool) {
	if g.pos >= len(g.accs) {
		return tracesim.Access{}, false
	}
	a := g.accs[g.pos]
	g.pos++
	return a, true
}

func (g *sliceGen) Reset() { g.pos = 0 }

func TestTraceUploadReplayLifecycle(t *testing.T) {
	_, c := newReplayServer(t, Options{})
	ctx := context.Background()
	accs := replayAccesses(60000)
	body := ndjsonBody(accs)

	up, err := c.UploadTrace(ctx, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if up.Existed || up.ID == "" || up.Accesses != int64(len(accs)) {
		t.Fatalf("upload %+v", up)
	}
	if up.Reads+up.Writes != up.Accesses || up.Writes == 0 {
		t.Fatalf("read/write mix %d+%d != %d", up.Reads, up.Writes, up.Accesses)
	}
	if up.FootprintBytes <= 0 || up.Footprint == "" {
		t.Fatalf("no footprint in %+v", up)
	}

	// The same trace gzipped dedupes to the same content address.
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(body); err != nil {
		t.Fatal(err)
	}
	zw.Close()
	again, err := c.UploadTrace(ctx, &gz)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Existed || again.ID != up.ID {
		t.Fatalf("gzip re-upload: existed=%v id=%s, want dedupe to %s", again.Existed, again.ID, up.ID)
	}

	list, err := c.Traces(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != up.ID {
		t.Fatalf("trace list %+v", list)
	}
	meta, err := c.Trace(ctx, up.ID)
	if err != nil {
		t.Fatal(err)
	}
	if meta.ID != up.ID || meta.Accesses != up.Accesses {
		t.Fatalf("meta %+v", meta)
	}

	// Cold replay, then a warm one served from the replay cache.
	req := ReplayRequest{Trace: up.ID, Config: "cache"}
	cold, err := c.Replay(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached || cold.Metric != "ns/access" || cold.Value <= 0 {
		t.Fatalf("cold replay %+v", cold)
	}
	if cold.Stats.Accesses != int64(len(accs)) {
		t.Fatalf("replayed %d accesses, want %d", cold.Stats.Accesses, len(accs))
	}
	warm, err := c.Replay(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached || warm.Value != cold.Value || warm.Stats != cold.Stats {
		t.Fatalf("warm replay not served from cache:\n%+v\n%+v", warm, cold)
	}

	// Delete, then everything 404s.
	if err := c.DeleteTrace(ctx, up.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Trace(ctx, up.ID); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("metadata after delete: %v", err)
	}
	// A new replay variant (different passes => different key) must
	// now 404 instead of serving stale data.
	if _, err := c.Replay(ctx, ReplayRequest{Trace: up.ID, Config: "cache", Passes: 2}); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("replay after delete: %v", err)
	}
	if err := c.DeleteTrace(ctx, up.ID); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("second delete: %v", err)
	}
}

// TestReplayPinnedToScalarSimulator is the acceptance pin: POST
// /v1/replay must yield byte-identical results to an in-process
// scalar tracesim.Simulator run over the same accesses.
func TestReplayPinnedToScalarSimulator(t *testing.T) {
	srv, c := newReplayServer(t, Options{})
	ctx := context.Background()
	accs := replayAccesses(80000)
	up, err := c.UploadTrace(ctx, bytes.NewReader(ndjsonBody(accs)))
	if err != nil {
		t.Fatal(err)
	}

	for _, cfgName := range []string{"dram", "hbm", "cache", "hybrid:0.5"} {
		resp, err := c.Replay(ctx, ReplayRequest{Trace: up.ID, Config: cfgName})
		if err != nil {
			t.Fatalf("%s: %v", cfgName, err)
		}

		mc, err := engine.ParseConfig(cfgName)
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := srv.exec.replayHierarchy(campaign.DefaultSKU, mc)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := tracesim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sim.RunPasses(&sliceGen{accs: accs}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Stats != replayStats(want) {
			t.Fatalf("%s: service stats diverge from scalar simulator:\n got %+v\nwant %+v",
				cfgName, resp.Stats, replayStats(want))
		}
		if resp.Value != want.AvgLatencyNS() {
			t.Fatalf("%s: value %v != %v", cfgName, resp.Value, want.AvgLatencyNS())
		}
	}
}

// TestReplayShardedMatchesScalar pins sharded == scalar on stored
// traces: identical event counts, time equal up to summation order.
func TestReplayShardedMatchesScalar(t *testing.T) {
	_, c := newReplayServer(t, Options{})
	ctx := context.Background()
	up, err := c.UploadTrace(ctx, bytes.NewReader(ndjsonBody(replayAccesses(80000))))
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := c.Replay(ctx, ReplayRequest{Trace: up.ID, Config: "cache", Passes: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The shard count is excluded from the cache key (results are
	// equivalent), so the sharded run needs a second server with a
	// cold cache holding the same trace.
	_, c2 := newReplayServer(t, Options{})
	up2, err := c2.UploadTrace(ctx, bytes.NewReader(ndjsonBody(replayAccesses(80000))))
	if err != nil {
		t.Fatal(err)
	}
	if up2.ID != up.ID {
		t.Fatalf("content address differs across stores: %s vs %s", up2.ID, up.ID)
	}
	sharded, err := c2.Replay(ctx, ReplayRequest{Trace: up.ID, Config: "cache", Passes: 2, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Cached || sharded.Shards != 4 {
		t.Fatalf("sharded replay %+v", sharded)
	}
	// Replay time accumulates in integer picoseconds, so the sharded
	// result — counts AND time — must be exactly the scalar one.
	if scalar.Stats != sharded.Stats {
		t.Fatalf("sharded result diverges from scalar:\n got %+v\nwant %+v", sharded.Stats, scalar.Stats)
	}
}

func TestReplayRequestErrors(t *testing.T) {
	_, c := newReplayServer(t, Options{})
	ctx := context.Background()
	up, err := c.UploadTrace(ctx, bytes.NewReader(ndjsonBody(replayAccesses(1000))))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		req  ReplayRequest
		want string
	}{
		{"unknown-trace", ReplayRequest{Trace: "deadbeef", Config: "dram"}, "404"},
		{"no-trace", ReplayRequest{Config: "dram"}, "names no trace"},
		{"bad-config", ReplayRequest{Trace: up.ID, Config: "quantum"}, "400"},
		{"bad-passes", ReplayRequest{Trace: up.ID, Config: "dram", Passes: 99}, "out of range"},
		{"negative-passes", ReplayRequest{Trace: up.ID, Config: "dram", Passes: -1}, "out of range"},
		{"bad-shards", ReplayRequest{Trace: up.ID, Config: "dram", Shards: 3}, "power of two"},
		{"unknown-sku", ReplayRequest{Trace: up.ID, Config: "dram", SKU: "9999"}, "400"},
	}
	for _, tc := range cases {
		if _, err := c.Replay(ctx, tc.req); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v, want substring %q", tc.name, err, tc.want)
		}
	}
	// Malformed upload bodies are 400s.
	if _, err := c.UploadTrace(ctx, strings.NewReader("not,a\nvalid trace")); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("malformed upload: %v", err)
	}
	if _, err := c.UploadTrace(ctx, strings.NewReader("")); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("empty upload: %v", err)
	}
	// /v1/run cannot serve replay fidelity.
	if _, err := c.Run(ctx, RunRequest{Workload: "STREAM", Config: "dram", Size: "1GB", Fidelity: "replay"}); err == nil ||
		!strings.Contains(err.Error(), "/v1/replay") {
		t.Errorf("run with replay fidelity: %v", err)
	}
}

// TestBodyLimits is the MaxBytesReader satellite: every JSON handler
// rejects oversized bodies with 413, and trace uploads have their
// own, larger, configurable cap.
func TestBodyLimits(t *testing.T) {
	_, c := newReplayServer(t, Options{MaxBodyBytes: 128, MaxTraceBytes: 512})
	ctx := context.Background()

	huge := strings.Repeat("x", 4096)
	jsonPosts := []struct {
		name string
		call func() error
	}{
		{"run", func() error {
			_, err := c.Run(ctx, RunRequest{Workload: huge, Config: "dram", Size: "1GB"})
			return err
		}},
		{"advise", func() error { _, err := c.Advise(ctx, AdviseRequest{Workload: huge, Size: "1GB"}); return err }},
		{"cluster", func() error { _, err := c.Cluster(ctx, ClusterRequest{Workload: huge, Size: "1GB"}); return err }},
		{"campaign", func() error {
			_, err := c.SubmitCampaign(ctx, campaign.Spec{Workloads: []string{huge}, Configs: []string{"dram"}, Sizes: []string{"1GB"}}, false)
			return err
		}},
		{"replay", func() error { _, err := c.Replay(ctx, ReplayRequest{Trace: huge, Config: "dram"}); return err }},
	}
	for _, p := range jsonPosts {
		err := p.call()
		if err == nil || !strings.Contains(err.Error(), "413") {
			t.Errorf("%s: err %v, want HTTP 413", p.name, err)
		}
		if err != nil && !strings.Contains(err.Error(), "body limit") {
			t.Errorf("%s: 413 without a clear message: %v", p.name, err)
		}
	}
	// Within the JSON cap, requests still work.
	if _, err := c.Run(ctx, RunRequest{Workload: "STREAM", Config: "dram", Size: "1GB"}); err != nil {
		t.Errorf("small run rejected: %v", err)
	}
	// The trace cap is separate (larger here than the JSON cap).
	if _, err := c.UploadTrace(ctx, bytes.NewReader(ndjsonBody(replayAccesses(5000)))); err == nil ||
		!strings.Contains(err.Error(), "413") {
		t.Errorf("oversized trace upload: %v", err)
	}
	small := []tracesim.Access{{Addr: 0}, {Addr: 64}, {Addr: 128}}
	if _, err := c.UploadTrace(ctx, bytes.NewReader(ndjsonBody(small))); err != nil {
		t.Errorf("small trace upload rejected: %v", err)
	}
	// A gzip bomb — compressed well under the cap, decoded far over it
	// — must still 413: the cap is enforced on the decoded stream.
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(bytes.Repeat([]byte("0,R\n"), 4096)); err != nil {
		t.Fatal(err)
	}
	zw.Close()
	if int64(gz.Len()) >= 512 {
		t.Fatalf("bomb did not compress under the cap: %d bytes", gz.Len())
	}
	if _, err := c.UploadTrace(ctx, &gz); err == nil || !strings.Contains(err.Error(), "413") {
		t.Errorf("gzip bomb upload: %v, want HTTP 413", err)
	}
}

func TestReplayCampaign(t *testing.T) {
	_, c := newReplayServer(t, Options{})
	ctx := context.Background()
	up, err := c.UploadTrace(ctx, bytes.NewReader(ndjsonBody(replayAccesses(40000))))
	if err != nil {
		t.Fatal(err)
	}

	spec := campaign.Spec{
		Fidelity: campaign.FidelityReplay,
		Traces:   []string{up.ID},
		Configs:  []string{"dram", "hbm", "cache"},
	}
	resp, err := c.SubmitCampaign(ctx, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Job.State != JobDone {
		t.Fatalf("job %+v", resp.Job)
	}
	res := resp.Result
	if res.Points != 3 {
		t.Fatalf("points = %d, want 3", res.Points)
	}
	for _, r := range res.Results {
		if r.Fidelity != campaign.FidelityReplay || r.TraceID != up.ID || r.Trace == nil || r.Value <= 0 {
			t.Fatalf("replay campaign result %+v", r)
		}
	}
	if len(res.Tables) != 1 || !strings.Contains(res.Tables[0], "replay of trace") {
		t.Fatalf("replay tables %q", res.Tables)
	}
	// A direct /v1/replay of a swept point shares the replay cache.
	direct, err := c.Replay(ctx, ReplayRequest{Trace: up.ID, Config: "cache"})
	if err != nil {
		t.Fatal(err)
	}
	if !direct.Cached {
		t.Fatal("direct replay after campaign not served from the shared replay cache")
	}
	// Identical resubmission is a campaign-cache hit.
	again, err := c.SubmitCampaign(ctx, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Result.Cached {
		t.Fatal("replay campaign resubmission not served from the campaign cache")
	}
	// A campaign naming an unknown trace fails as one request error.
	bad, err := c.SubmitCampaign(ctx, campaign.Spec{
		Fidelity: campaign.FidelityReplay,
		Traces:   []string{"0000000000"},
		Configs:  []string{"dram"},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if bad.Job.State != JobFailed || !strings.Contains(bad.Job.Error, "unknown trace") {
		t.Fatalf("unknown-trace campaign job %+v", bad.Job)
	}
	// Deleting the trace must fail even the CACHED campaign — the
	// existence check runs before the campaign-cache lookup.
	if err := c.DeleteTrace(ctx, up.ID); err != nil {
		t.Fatal(err)
	}
	gone, err := c.SubmitCampaign(ctx, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if gone.Job.State != JobFailed || !strings.Contains(gone.Job.Error, "unknown trace") {
		t.Fatalf("cached campaign served for a deleted trace: %+v", gone.Job)
	}
}

func TestReplayMetricsRows(t *testing.T) {
	srv, c := newReplayServer(t, Options{})
	ctx := context.Background()
	up, err := c.UploadTrace(ctx, bytes.NewReader(ndjsonBody(replayAccesses(2000))))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Replay(ctx, ReplayRequest{Trace: up.ID, Config: "dram"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Replay(ctx, ReplayRequest{Trace: up.ID, Config: "dram"}); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.handleMetrics(rec, nil)
	body := rec.Body.String()
	for _, want := range []string{
		`simd_cache_hits_total{cache="replay"} 1`,
		`simd_cache_misses_total{cache="replay"} 1`,
		`simd_cache_entries{cache="replay"} 1`,
		"simd_traces_stored 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
