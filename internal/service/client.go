package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/events"
	"repro/internal/obs"
)

// APIError is a non-2xx response from the service: the status, the
// server's error message, and — on 429/503 — the server's Retry-After
// hint. Its Error string keeps the historical "service: METHOD PATH:
// message (HTTP status)" shape.
type APIError struct {
	Method     string
	Path       string
	Status     int
	Message    string
	RetryAfter time.Duration // zero when the server sent no hint
}

func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("service: %s %s: %s (HTTP %d)", e.Method, e.Path, e.Message, e.Status)
	}
	return fmt.Sprintf("service: %s %s: HTTP %d", e.Method, e.Path, e.Status)
}

// Temporary reports whether the failure is worth retrying: the server
// said "busy, come back" (429) or "unavailable" (503).
func (e *APIError) Temporary() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// Client is the Go client of the simulation service, used by
// cmd/simctl and the examples. The zero HTTP client is fine for
// in-process (httptest) servers and for localhost.
//
// JSON requests retry automatically on transport errors and on
// 429/503 responses with capped exponential backoff plus jitter,
// honoring the server's Retry-After. Every request the client retries
// is idempotent by construction — results are content-addressed, so a
// duplicate submission lands on the same cache entry. Streaming paths
// (trace upload, job streams) never retry: their bodies are not
// replayable.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8077".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts after the first try (<0
	// disables retrying; 0 means the default of 4).
	MaxRetries int
	// RetryBase is the first backoff step, doubled each retry up to
	// RetryMax (defaults 250ms and 15s). The server's Retry-After
	// overrides the computed backoff when it is longer.
	RetryBase time.Duration
	RetryMax  time.Duration
	// OnRetry, when set, observes every backoff decision (simctl
	// prints "server busy, retrying in Ns").
	OnRetry func(attempt int, wait time.Duration, err error)
	// RequestID, when set, is sent as X-Request-Id on every request so
	// client-chosen correlation keys appear in the server's access log,
	// job records and journal (simctl -request-id).
	RequestID string
}

// setRequestID stamps the client's correlation key on one request.
func (c *Client) setRequestID(req *http.Request) {
	if c.RequestID != "" {
		req.Header.Set("X-Request-Id", c.RequestID)
	}
}

// NewClient builds a client for a server base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) retryBudget() (tries int, base, max time.Duration) {
	tries = c.MaxRetries
	switch {
	case tries < 0:
		tries = 0
	case tries == 0:
		tries = 4
	}
	if base = c.RetryBase; base <= 0 {
		base = 250 * time.Millisecond
	}
	if max = c.RetryMax; max <= 0 {
		max = 15 * time.Second
	}
	return tries, base, max
}

// do issues a request and decodes the JSON response into out,
// unwrapping the service's error envelope on non-2xx statuses and
// retrying temporary failures. The marshaled body is replayed from
// memory on every attempt.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var buf []byte
	if body != nil {
		var err error
		if buf, err = json.Marshal(body); err != nil {
			return err
		}
	}
	tries, base, maxDelay := c.retryBudget()
	var lastErr error
	for attempt := 0; ; attempt++ {
		err := c.once(ctx, method, path, buf, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if attempt >= tries || !retryable(err) || ctx.Err() != nil {
			return lastErr
		}
		// Exponential backoff with jitter in [wait/2, wait); a server
		// Retry-After longer than that wins — it knows its backlog.
		wait := base << attempt
		if wait > maxDelay {
			wait = maxDelay
		}
		wait = wait/2 + time.Duration(rand.Int63n(int64(wait/2)+1))
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.RetryAfter > wait {
			wait = apiErr.RetryAfter
			if wait > maxDelay {
				wait = maxDelay
			}
		}
		if c.OnRetry != nil {
			c.OnRetry(attempt+1, wait, err)
		}
		select {
		case <-ctx.Done():
			return lastErr
		case <-time.After(wait):
		}
	}
}

// retryable reports whether one attempt's failure is worth another:
// transport errors (connection refused, reset — the server may be
// restarting) and explicit server backpressure. Context cancellation
// and request-shaped errors (4xx other than 429) are final.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Temporary()
	}
	return true // transport-level failure
}

// once is a single request attempt.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	c.setRequestID(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{Method: method, Path: path, Status: resp.StatusCode}
		var envelope apiError
		if json.NewDecoder(resp.Body).Decode(&envelope) == nil {
			apiErr.Message = envelope.Error
		}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Healthz checks the health endpoint.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Workloads lists the registered workloads.
func (c *Client) Workloads(ctx context.Context) ([]WorkloadInfo, error) {
	var out []WorkloadInfo
	err := c.do(ctx, http.MethodGet, "/v1/workloads", nil, &out)
	return out, err
}

// Experiments lists the paper experiments the service can run.
func (c *Client) Experiments(ctx context.Context) ([]ExperimentInfo, error) {
	var out []ExperimentInfo
	err := c.do(ctx, http.MethodGet, "/v1/experiments", nil, &out)
	return out, err
}

// Run executes one point synchronously.
func (c *Client) Run(ctx context.Context, req RunRequest) (RunResponse, error) {
	var out RunResponse
	err := c.do(ctx, http.MethodPost, "/v1/run", req, &out)
	return out, err
}

// Advise asks for a ranked memory-mode recommendation.
func (c *Client) Advise(ctx context.Context, req AdviseRequest) (AdviseResponse, error) {
	var out AdviseResponse
	err := c.do(ctx, http.MethodPost, "/v1/advise", req, &out)
	return out, err
}

// Cluster asks for a multi-node scaling sweep: how the workload's
// global problem decomposes across node counts, and the minimum node
// count whose sub-problems fit HBM.
func (c *Client) Cluster(ctx context.Context, req ClusterRequest) (ClusterResponse, error) {
	var out ClusterResponse
	err := c.do(ctx, http.MethodPost, "/v1/cluster", req, &out)
	return out, err
}

// UploadTrace streams a trace body (NDJSON, CSV, gzip of either, or
// the binary trace format — the server sniffs) into the durable
// store and returns its content address. Re-uploading an identical
// stream dedupes: Existed is true and no second copy is written.
func (c *Client) UploadTrace(ctx context.Context, body io.Reader) (TraceUploadResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/traces", body)
	if err != nil {
		return TraceUploadResponse{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	c.setRequestID(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return TraceUploadResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var apiErr apiError
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			return TraceUploadResponse{}, fmt.Errorf("service: POST /v1/traces: %s (HTTP %d)", apiErr.Error, resp.StatusCode)
		}
		return TraceUploadResponse{}, fmt.Errorf("service: POST /v1/traces: HTTP %d", resp.StatusCode)
	}
	var out TraceUploadResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return TraceUploadResponse{}, err
	}
	return out, nil
}

// Traces lists the stored traces.
func (c *Client) Traces(ctx context.Context) ([]TraceInfo, error) {
	var out []TraceInfo
	err := c.do(ctx, http.MethodGet, "/v1/traces", nil, &out)
	return out, err
}

// Trace fetches one stored trace's metadata.
func (c *Client) Trace(ctx context.Context, id string) (TraceInfo, error) {
	var out TraceInfo
	err := c.do(ctx, http.MethodGet, "/v1/traces/"+url.PathEscape(id), nil, &out)
	return out, err
}

// DeleteTrace removes a stored trace.
func (c *Client) DeleteTrace(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/traces/"+url.PathEscape(id), nil, nil)
}

// Replay feeds a stored trace through the scaled cache hierarchy
// under one memory configuration.
func (c *Client) Replay(ctx context.Context, req ReplayRequest) (ReplayResponse, error) {
	var out ReplayResponse
	err := c.do(ctx, http.MethodPost, "/v1/replay", req, &out)
	return out, err
}

// SubmitCampaign submits a campaign. With wait set the call blocks
// until the result is ready.
func (c *Client) SubmitCampaign(ctx context.Context, spec campaign.Spec, wait bool) (CampaignResponse, error) {
	path := "/v1/campaigns"
	if wait {
		path += "?wait=1"
	}
	var out CampaignResponse
	err := c.do(ctx, http.MethodPost, path, spec, &out)
	return out, err
}

// Job polls one job.
func (c *Client) Job(ctx context.Context, id string) (CampaignResponse, error) {
	var out CampaignResponse
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &out)
	return out, err
}

// WaitResult blocks server-side until the job completes and returns
// its result envelope.
func (c *Client) WaitResult(ctx context.Context, id string) (CampaignResponse, error) {
	var out CampaignResponse
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/result", nil, &out)
	return out, err
}

// StreamJob follows the NDJSON progress feed of a job, invoking
// onUpdate for every snapshot, and returns when the job reaches a
// terminal state or ctx is cancelled.
func (c *Client) StreamJob(ctx context.Context, id string, onUpdate func(JobInfo)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/jobs/"+url.PathEscape(id)+"/stream", nil)
	if err != nil {
		return err
	}
	c.setRequestID(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("service: stream %s: HTTP %d", id, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var info JobInfo
		if err := json.Unmarshal(line, &info); err != nil {
			return fmt.Errorf("service: bad stream line %q: %w", line, err)
		}
		if onUpdate != nil {
			onUpdate(info)
		}
	}
	return sc.Err()
}

// WatchJob follows the live SSE event feed of a job (GET
// /v1/jobs/{id}/events), invoking onEvent for every event, and
// returns once the feed's final event arrives or ctx is cancelled.
// Keepalive comments and SSE framing are consumed here; onEvent sees
// only decoded events.
func (c *Client) WatchJob(ctx context.Context, id string, onEvent func(events.Event)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return err
	}
	c.setRequestID(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("service: watch %s: HTTP %d", id, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		// Only data: lines carry payload; id:/event: framing and
		// ": keepalive" comments are consumed silently.
		payload, ok := bytes.CutPrefix(line, []byte("data: "))
		if !ok {
			continue
		}
		var ev events.Event
		if err := json.Unmarshal(payload, &ev); err != nil {
			return fmt.Errorf("service: bad event %q: %w", payload, err)
		}
		if onEvent != nil {
			onEvent(ev)
		}
		if ev.Final {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("service: watch %s: feed ended before the final event", id)
}

// DebugTraces lists the execution traces the server has retained.
func (c *Client) DebugTraces(ctx context.Context) ([]obs.TraceSummary, error) {
	var out []obs.TraceSummary
	err := c.do(ctx, http.MethodGet, "/debug/traces", nil, &out)
	return out, err
}

// DebugTrace fetches the span tree of one execution trace by trace ID
// (the request ID of the request that produced it).
func (c *Client) DebugTrace(ctx context.Context, id string) (obs.TraceData, error) {
	var out obs.TraceData
	err := c.do(ctx, http.MethodGet, "/debug/traces/"+url.PathEscape(id), nil, &out)
	return out, err
}
