package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/faultfs"
)

// newDurableTestServer boots a durable server over dataDir and wires
// it behind httptest. It does NOT register a graceful Close — the
// crash tests abandon servers on purpose.
func newDurableTestServer(t *testing.T, dataDir string, opt Options) (*Server, *Client, *httptest.Server, RecoveryStats) {
	t.Helper()
	opt.DataDir = dataDir
	if opt.Workers == 0 {
		opt.Workers = 2
	}
	if opt.QueueDepth == 0 {
		opt.QueueDepth = 8
	}
	srv, rec, err := NewDurableServer(opt)
	if err != nil {
		t.Fatalf("durable boot: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, NewClient(ts.URL), ts, rec
}

func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

var quickSpec = campaign.Spec{
	Name:      "crash-test",
	Workloads: []string{"STREAM"},
	Configs:   []string{"dram", "hbm"},
	Sizes:     []string{"2GB", "8GB"},
	Threads:   []int{64},
}

// TestCrashRecoveryWarmsCaches is the headline crash invariant: kill
// a durable server after a campaign finished (no graceful shutdown),
// boot a fresh server over the same data directory, and the identical
// campaign must be served from the warmed cache — zero recomputation
// — while the old job ID still answers with its result.
func TestCrashRecoveryWarmsCaches(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	_, c1, ts1, _ := newDurableTestServer(t, dir, Options{})
	first, err := c1.SubmitCampaign(ctx, quickSpec, true)
	if err != nil {
		t.Fatal(err)
	}
	if first.Job.State != JobDone || first.Result == nil {
		t.Fatalf("first campaign: %+v", first.Job)
	}
	// Crash: drop the HTTP listener, never call Close. The journal
	// holds the accepted+done records; the result store holds the
	// outcomes.
	ts1.Close()

	srv2, c2, ts2, rec := newDurableTestServer(t, dir, Options{})
	t.Cleanup(func() { srv2.Close(context.Background()) })
	if rec.Results == 0 {
		t.Fatalf("recovery loaded no results: %+v", rec)
	}
	if rec.Restored != 1 {
		t.Fatalf("restored %d finished jobs, want 1: %+v", rec.Restored, rec)
	}

	// The finished job survives the restart with its result attached.
	old, err := c2.Job(ctx, first.Job.ID)
	if err != nil {
		t.Fatalf("job %s after restart: %v", first.Job.ID, err)
	}
	if old.Job.State != JobDone || old.Result == nil {
		t.Fatalf("restored job %s: state=%s result=%v", first.Job.ID, old.Job.State, old.Result != nil)
	}

	// The identical campaign is a pure cache hit.
	hits0, misses0 := srv2.campaigns.Stats()
	again, err := c2.SubmitCampaign(ctx, quickSpec, true)
	if err != nil {
		t.Fatal(err)
	}
	if again.Result == nil || !again.Result.Cached {
		t.Fatal("resubmitted campaign recomputed after restart; the warmed cache did not serve it")
	}
	hits1, misses1 := srv2.campaigns.Stats()
	if hits1 != hits0+1 || misses1 != misses0 {
		t.Fatalf("campaign cache hits %d->%d misses %d->%d, want one pure hit", hits0, hits1, misses0, misses1)
	}
	if m := scrapeMetrics(t, ts2); !strings.Contains(m, `simd_jobs_recovered_total{state="restored"} 1`) {
		t.Fatalf("metrics missing restored-jobs row:\n%s", grepMetrics(m, "recovered"))
	}
}

// TestCrashRecoveryRequeuesAcceptedJob: a job the server 202-accepted
// but never ran (crash while it sat queued) must be re-enqueued at
// boot under its original ID and run to completion.
func TestCrashRecoveryRequeuesAcceptedJob(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	srv1, c1, ts1, _ := newDurableTestServer(t, dir, Options{Workers: 1})
	// Pin the only worker on un-journaled work so the accepted
	// campaign never starts.
	block := make(chan struct{})
	if _, err := srv1.queue.Submit("run", func(ctx context.Context, _ func(int, int)) error {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := c1.SubmitCampaign(ctx, quickSpec, false)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Job.State != JobQueued {
		t.Fatalf("job state %s, want queued", resp.Job.State)
	}
	// Crash with the job still queued. The blocker stays parked so the
	// abandoned server can never run the campaign behind our back.
	ts1.Close()
	_ = block

	srv2, c2, ts2, rec := newDurableTestServer(t, dir, Options{})
	t.Cleanup(func() { srv2.Close(context.Background()) })
	if rec.Requeued != 1 {
		t.Fatalf("requeued %d jobs, want 1: %+v", rec.Requeued, rec)
	}
	final, err := c2.WaitResult(ctx, resp.Job.ID)
	if err != nil {
		t.Fatalf("wait for requeued job %s: %v", resp.Job.ID, err)
	}
	if final.Job.State != JobDone || final.Result == nil {
		t.Fatalf("requeued job finished %s (%s), result=%v", final.Job.State, final.Job.Error, final.Result != nil)
	}
	if m := scrapeMetrics(t, ts2); !strings.Contains(m, `simd_jobs_recovered_total{state="requeued"} 1`) {
		t.Fatalf("metrics missing requeued-jobs row:\n%s", grepMetrics(m, "recovered"))
	}
}

// TestCrashRecoveryIdempotent: re-running an interrupted job must not
// double-execute work that already persisted — its points land on the
// warmed point cache.
func TestCrashRecoveryIdempotent(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	// Run the identical point set once so every point result is on
	// disk, then crash with a campaign of those points still queued.
	srv1, c1, ts1, _ := newDurableTestServer(t, dir, Options{Workers: 1})
	if _, err := c1.SubmitCampaign(ctx, quickSpec, true); err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	srv1.queue.Submit("run", func(ctx context.Context, _ func(int, int)) error {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil
	})
	// A wider campaign: its 4 original points are on disk, the 2 new
	// 24GB points are not. (The campaign key is content-addressed over
	// the point set, so the extra size makes this a distinct campaign.)
	wider := quickSpec
	wider.Sizes = append(append([]string{}, quickSpec.Sizes...), "24GB")
	resp, err := c1.SubmitCampaign(ctx, wider, false)
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	_ = block

	srv2, c2, _, rec := newDurableTestServer(t, dir, Options{})
	t.Cleanup(func() { srv2.Close(context.Background()) })
	if rec.Requeued != 1 {
		t.Fatalf("requeued %d, want 1", rec.Requeued)
	}
	final, err := c2.WaitResult(ctx, resp.Job.ID)
	if err != nil || final.Job.State != JobDone {
		t.Fatalf("requeued job: %v %+v", err, final.Job)
	}
	// Only the two never-run 24GB points cost a computation; the four
	// persisted ones came off the warmed cache.
	if _, misses := srv2.points.Stats(); misses != 2 {
		t.Fatalf("re-run recomputed %d points, want 2; recovery must be idempotent over persisted results", misses)
	}
	if final.Result.Points != 6 || final.Result.CacheHits != 4 {
		t.Fatalf("re-run reports %d/%d cache hits, want 4/6", final.Result.CacheHits, final.Result.Points)
	}
}

// TestJournalFaultRefusesWork: when the journal cannot record an
// accepted job, the server must answer 500 and enqueue NOTHING — a
// 202 it cannot make durable is a lie.
func TestJournalFaultRefusesWork(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	fault := faultfs.New(nil)
	srv, c, _, _ := newDurableTestServer(t, dir, Options{DataFS: fault})

	fault.FailAfterWrites(0, false) // every write now fails, like a dead disk
	_, err := c.SubmitCampaign(ctx, quickSpec, false)
	if err == nil {
		t.Fatal("submit with a dead journal succeeded")
	}
	if !strings.Contains(err.Error(), "HTTP 500") || !strings.Contains(err.Error(), "journal") {
		t.Fatalf("error = %v, want a journal 500", err)
	}
	if got := len(srv.queue.Unfinished()); got != 0 {
		t.Fatalf("%d jobs enqueued despite the failed journal append", got)
	}
	queued, running, completed, _ := srv.queue.Counts()
	if queued != 0 || running != 0 || completed != 0 {
		t.Fatalf("queue counts %d/%d/%d after refused work, want 0/0/0", queued, running, completed)
	}

	// The disk comes back: the service accepts work again.
	fault.Reset()
	resp, err := c.SubmitCampaign(ctx, quickSpec, true)
	if err != nil {
		t.Fatalf("submit after disk recovery: %v", err)
	}
	if resp.Job.State != JobDone {
		t.Fatalf("job %+v", resp.Job)
	}
}

// TestQueueFullAnswers429 pins graceful degradation server-side: a
// full queue answers 429 with a positive integer Retry-After.
func TestQueueFullAnswers429(t *testing.T) {
	srv := NewServer(Options{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close(context.Background())
	})

	// Fill the worker, wait for it to start, then fill the single
	// queue slot (submitting back-to-back races the worker's pickup).
	block := make(chan struct{})
	defer close(block)
	blocker := func(ctx context.Context, _ func(int, int)) error {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil
	}
	if _, err := srv.queue.Submit("run", blocker); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, running, _, _ := srv.queue.Counts(); running == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the blocking job")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := srv.queue.Submit("run", blocker); err != nil {
		t.Fatal(err)
	}

	c := NewClient(ts.URL)
	c.MaxRetries = -1 // inspect the raw 429
	_, err := c.SubmitCampaign(context.Background(), quickSpec, false)
	apiErr, ok := errAsAPI(err)
	if !ok || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("full queue answered %v, want HTTP 429", err)
	}
	if apiErr.RetryAfter < time.Second {
		t.Fatalf("Retry-After %v, want >= 1s", apiErr.RetryAfter)
	}
	if !strings.Contains(apiErr.Message, "queue full") {
		t.Fatalf("message %q does not explain the rejection", apiErr.Message)
	}
}

// TestWaitDisconnectFreesWorker: a client that disconnects from
// /v1/campaigns?wait=1 must cancel the running campaign and hand the
// worker back — no leaked slots, queue depth back to zero.
func TestWaitDisconnectFreesWorker(t *testing.T) {
	srv := NewServer(Options{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close(context.Background())
	})
	c := NewClient(ts.URL)
	c.MaxRetries = -1

	// A trace-fidelity sweep: ~30 points x tens of ms each, so the
	// cancel lands mid-campaign and takes effect at a point boundary.
	slow := campaign.Spec{
		Name:      "slow",
		Fidelity:  campaign.FidelityTrace,
		Workloads: []string{"GUPS", "STREAM"},
		Configs:   []string{"dram", "hbm", "cache"},
		Sizes:     []string{"4GB", "8GB", "12GB", "16GB", "24GB"},
		Threads:   []int{64},
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.SubmitCampaign(ctx, slow, true)
		errc <- err
	}()

	// Wait for the campaign to start running, then disconnect.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, running, _, _ := srv.queue.Counts(); running == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled wait returned no error")
	}

	// The worker must come back without the campaign finishing all 30
	// points: the job ends failed (context canceled), not done.
	for {
		queued, running, _, failed := srv.queue.Counts()
		if running == 0 && queued == 0 {
			if failed != 1 {
				t.Fatalf("disconnected campaign: %d failed jobs, want 1 (job should be cancelled, not completed)", failed)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker still busy %v after disconnect (queued=%d running=%d)", 10*time.Second, queued, running)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// And the freed worker accepts new work.
	quick, err := c.SubmitCampaign(context.Background(), quickSpec, true)
	if err != nil || quick.Job.State != JobDone {
		t.Fatalf("worker did not recover: %v %+v", err, quick.Job)
	}
}

// TestPanicMiddleware: a handler panic must become a 500 with the
// error envelope and a simd_panics_total increment — and the server
// must keep serving.
func TestPanicMiddleware(t *testing.T) {
	srv := NewServer(Options{Workers: 1, QueueDepth: 4})
	srv.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close(context.Background())
	})

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic answered %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(string(body), "kaboom") {
		t.Fatalf("panic body %q does not carry the cause", body)
	}
	if err := NewClient(ts.URL).Healthz(context.Background()); err != nil {
		t.Fatalf("server dead after a recovered panic: %v", err)
	}
	if m := scrapeMetrics(t, ts); !strings.Contains(m, "simd_panics_total 1") {
		t.Fatalf("metrics missing panic count:\n%s", grepMetrics(m, "panic"))
	}
}

// TestJobTimeoutHeader: an unparseable or negative X-Simd-Timeout is
// a 400; a tiny one cancels the job with a deadline error.
func TestJobTimeoutHeader(t *testing.T) {
	srv := NewServer(Options{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close(context.Background())
	})
	body := strings.NewReader(`{"workloads":["STREAM"],"configs":["dram"],"sizes":["2GB"]}`)

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/campaigns", body)
	req.Header.Set(timeoutHeader, "not-a-duration")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad timeout header answered %d, want 400", resp.StatusCode)
	}

	// A 1ns deadline cannot finish any campaign: the job must fail
	// with a deadline error, not hang.
	slow := campaign.Spec{
		Fidelity:  campaign.FidelityTrace,
		Workloads: []string{"GUPS"},
		Configs:   []string{"dram"},
		Sizes:     []string{"16GB"},
		Threads:   []int{64},
	}
	buf, _ := json.Marshal(slow)
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/campaigns?wait=1", strings.NewReader(string(buf)))
	req.Header.Set(timeoutHeader, "1ns")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out CampaignResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out.Job.State != JobFailed || !strings.Contains(out.Job.Error, "deadline") {
		t.Fatalf("1ns-deadline job: %+v", out.Job)
	}
}

// --- small helpers ---------------------------------------------------

func errAsAPI(err error) (*APIError, bool) {
	var apiErr *APIError
	ok := err != nil && errors.As(err, &apiErr)
	return apiErr, ok
}

func grepMetrics(m, needle string) string {
	var out []string
	for _, line := range strings.Split(m, "\n") {
		if strings.Contains(line, needle) {
			out = append(out, line)
		}
	}
	if len(out) == 0 {
		return fmt.Sprintf("(no lines matching %q)", needle)
	}
	return strings.Join(out, "\n")
}
