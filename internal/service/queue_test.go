package service

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestQueueRunsJobs(t *testing.T) {
	q := NewQueue(2, 8, 0)
	defer q.Close(context.Background())

	var ran atomic.Int64
	info, err := q.Submit("run", func(context.Context, func(int, int)) error {
		ran.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := q.Wait(context.Background(), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobDone || ran.Load() != 1 {
		t.Fatalf("state=%s ran=%d", final.State, ran.Load())
	}
	if final.Done != 1 || final.Total != 1 {
		t.Fatalf("default progress = %d/%d, want 1/1", final.Done, final.Total)
	}
	if final.Started == nil || final.Finished == nil {
		t.Fatal("finished job missing timestamps")
	}
	if final.Started.Before(final.Submitted) || final.Finished.Before(*final.Started) {
		t.Fatal("timestamps out of order")
	}
}

// TestQueuedJobOmitsZeroTimestamps pins the wire format: a job that
// has not started must not serialize "started"/"finished" at all —
// time.Time is a struct, so the value form of omitempty never fires
// and queued jobs used to leak "0001-01-01T00:00:00Z".
func TestQueuedJobOmitsZeroTimestamps(t *testing.T) {
	q := NewQueue(1, 8, 0)
	defer q.Close(context.Background())

	block := make(chan struct{})
	defer close(block)
	busy, err := q.Submit("run", func(context.Context, func(int, int)) error {
		<-block
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker picked the blocker up, so the next job is
	// guaranteed to snapshot in the queued state.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if info, _ := q.Get(busy.ID); info.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}
	queued, err := q.Submit("run", func(context.Context, func(int, int)) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(queued)
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{`"started"`, `"finished"`, "0001-01-01"} {
		if strings.Contains(string(buf), banned) {
			t.Errorf("queued job JSON contains %s: %s", banned, buf)
		}
	}
	if !strings.Contains(string(buf), `"submitted"`) {
		t.Errorf("queued job JSON missing submitted: %s", buf)
	}
}

func TestQueueFailureState(t *testing.T) {
	q := NewQueue(1, 8, 0)
	defer q.Close(context.Background())

	info, err := q.Submit("run", func(context.Context, func(int, int)) error {
		return errors.New("deliberate")
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := q.Wait(context.Background(), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobFailed || final.Error != "deliberate" {
		t.Fatalf("state=%s err=%q", final.State, final.Error)
	}
	_, _, _, failed := q.Counts()
	if failed != 1 {
		t.Fatalf("failed count = %d", failed)
	}
}

func TestQueueBoundedRejects(t *testing.T) {
	q := NewQueue(1, 1, 0)
	defer q.Close(context.Background())

	block := make(chan struct{})
	// One running + one pending fills the queue of depth 1.
	first, err := q.Submit("run", func(context.Context, func(int, int)) error {
		<-block
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the first job is actually running so the next Submit
	// occupies the single pending slot.
	deadline := time.Now().Add(2 * time.Second)
	for {
		info, _ := q.Get(first.ID)
		if info.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := q.Submit("run", func(context.Context, func(int, int)) error { <-block; return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit("run", func(context.Context, func(int, int)) error { return nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull submit err = %v, want ErrQueueFull", err)
	}
	close(block)
}

func TestQueueProgressAndGet(t *testing.T) {
	q := NewQueue(1, 8, 0)
	defer q.Close(context.Background())

	step := make(chan struct{})
	info, err := q.Submit("campaign", func(_ context.Context, progress func(int, int)) error {
		progress(3, 10)
		step <- struct{}{}
		<-step
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-step
	snap, ok := q.Get(info.ID)
	if !ok || snap.Done != 3 || snap.Total != 10 || snap.State != JobRunning {
		t.Fatalf("snapshot %+v", snap)
	}
	step <- struct{}{}
	if _, err := q.Wait(context.Background(), info.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Get("nope"); ok {
		t.Fatal("Get on unknown id succeeded")
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := NewQueue(2, 16, 0)
	var ran atomic.Int64
	for i := 0; i < 8; i++ {
		if _, err := q.Submit("run", func(context.Context, func(int, int)) error {
			time.Sleep(time.Millisecond)
			ran.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 8 {
		t.Fatalf("drained %d jobs, want 8", ran.Load())
	}
	if _, err := q.Submit("run", func(context.Context, func(int, int)) error { return nil }); !errors.Is(err, ErrShutdown) {
		t.Fatalf("submit after close err = %v", err)
	}
}

// TestQueuePruneRetentionMixedStates pins the retention pruning
// invariant: when the oldest retained entry is still running, pruning
// stops (nothing newer is dropped either), and `order` and `jobs`
// stay exactly consistent throughout — every id in jobs appears in
// order and vice versa.
func TestQueuePruneRetentionMixedStates(t *testing.T) {
	q := NewQueue(1, 16, 3) // retain at most 3 finished jobs
	defer q.Close(context.Background())

	checkConsistent := func(when string) {
		t.Helper()
		q.mu.Lock()
		defer q.mu.Unlock()
		if len(q.order) != len(q.jobs) {
			t.Fatalf("%s: order has %d ids, jobs map %d", when, len(q.order), len(q.jobs))
		}
		seen := make(map[string]bool, len(q.order))
		for _, id := range q.order {
			if seen[id] {
				t.Fatalf("%s: id %s appears twice in order", when, id)
			}
			seen[id] = true
			if _, ok := q.jobs[id]; !ok {
				t.Fatalf("%s: order holds %s but jobs map does not", when, id)
			}
		}
	}

	// Oldest job: runs until released (single worker, so everything
	// submitted after it queues behind it and stays unfinished too).
	release := make(chan struct{})
	started := make(chan struct{})
	blocker, err := q.Submit("campaign", func(context.Context, func(int, int)) error {
		close(started)
		<-release
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// Pile up submissions well past the retention cap. The oldest
	// entry (the running blocker) must pin the whole history: nothing
	// may be pruned while it lives.
	var ids []string
	for i := 0; i < 8; i++ {
		info, err := q.Submit("run", func(context.Context, func(int, int)) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
		checkConsistent("while blocked")
	}
	if _, ok := q.Get(blocker.ID); !ok {
		t.Fatal("running blocker was pruned")
	}
	for _, id := range ids {
		if _, ok := q.Get(id); !ok {
			t.Fatalf("job %s pruned while the oldest entry was still running", id)
		}
	}

	// Let everything finish, then trigger pruning with one more
	// submission: retention must now drop the oldest finished jobs.
	close(release)
	for _, id := range append([]string{blocker.ID}, ids...) {
		if _, err := q.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	last, err := q.Submit("run", func(context.Context, func(int, int)) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Wait(context.Background(), last.ID); err != nil {
		t.Fatal(err)
	}
	checkConsistent("after release")
	q.mu.Lock()
	retained := len(q.jobs)
	q.mu.Unlock()
	if retained > 3+1 { // cap, +1 for the submission that triggered pruning
		t.Fatalf("retained %d jobs, want <= 4", retained)
	}
	// The oldest (blocker) must be gone, the newest present.
	if _, ok := q.Get(blocker.ID); ok {
		t.Fatal("finished blocker survived pruning past the cap")
	}
	if _, ok := q.Get(last.ID); !ok {
		t.Fatal("newest job was pruned")
	}
	checkConsistent("final")
}
