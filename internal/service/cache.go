package service

import (
	"sync"
	"sync/atomic"
)

// Cache is a bounded content-addressed result cache with singleflight
// semantics: concurrent lookups of the same key compute the value
// once and share it. Values are stored forever up to the bound, then
// evicted in insertion order (the access pattern is sweep-shaped, so
// FIFO ~= LRU at a fraction of the bookkeeping). Errors are never
// cached — a failed computation is retried by the next caller.
type Cache[V any] struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry[V] // guarded by mu
	fifo    []string                  // insertion order for eviction; guarded by mu
	max     int

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry[V any] struct {
	done chan struct{} // closed when value/err are set
	val  V
	err  error
}

// NewCache builds a cache bounded to max entries (<=0 means a default
// of 64k, plenty for any single-node study).
func NewCache[V any](max int) *Cache[V] {
	if max <= 0 {
		max = 1 << 16
	}
	return &Cache[V]{entries: make(map[string]*cacheEntry[V]), max: max}
}

// GetOrCompute returns the cached value for key, computing it with fn
// on a miss. The second return reports whether the value was served
// from cache (true also for callers that joined an in-flight
// computation — they did not pay for it).
func (c *Cache[V]) GetOrCompute(key string, fn func() (V, error)) (V, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.done
		if e.err != nil {
			// The computing caller failed; retry independently rather
			// than serving a cached error.
			var zero V
			v, err := fn()
			if err != nil {
				return zero, false, err
			}
			return v, false, nil
		}
		c.hits.Add(1)
		return e.val, true, nil
	}
	e := &cacheEntry[V]{done: make(chan struct{})}
	c.entries[key] = e
	c.fifo = append(c.fifo, key)
	c.evictLocked()
	c.mu.Unlock()

	c.misses.Add(1)
	e.val, e.err = fn()
	close(e.done)
	if e.err != nil {
		c.mu.Lock()
		// Drop the failed entry — map AND fifo — so the key stays
		// retryable without growing the eviction queue: a retry appends
		// the key again, so leaving the stale slot behind would let
		// repeated failures grow fifo without bound.
		if cur, ok := c.entries[key]; ok && cur == e {
			delete(c.entries, key)
			c.dropFIFOLocked(key)
		}
		c.mu.Unlock()
		var zero V
		return zero, false, e.err
	}
	return e.val, false, nil
}

// Peek returns the cached value for key if a finished computation
// holds one, without computing anything or counting a hit.
func (c *Cache[V]) Peek(key string) (V, bool) {
	var zero V
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	if !ok {
		return zero, false
	}
	select {
	case <-e.done:
		if e.err != nil {
			return zero, false
		}
		return e.val, true
	default:
		return zero, false
	}
}

// Seed inserts an already-computed value — journal recovery warming
// the caches at boot. It counts as neither hit nor miss and never
// replaces an existing entry (a live computation wins over a stale
// disk copy).
func (c *Cache[V]) Seed(key string, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	e := &cacheEntry[V]{done: make(chan struct{}), val: v}
	close(e.done)
	c.entries[key] = e
	c.fifo = append(c.fifo, key)
	c.evictLocked()
}

// dropFIFOLocked removes one occurrence of key from the eviction
// queue. Keys appear at most once (inserts are guarded by the entries
// map). The scan runs back-to-front because the only caller is the
// failure path purging the key it just appended — only keys inserted
// while fn ran can sit behind it, so the scan is O(concurrent
// inserts), not O(cache size).
func (c *Cache[V]) dropFIFOLocked(key string) {
	for i := len(c.fifo) - 1; i >= 0; i-- {
		if c.fifo[i] == key {
			c.fifo = append(c.fifo[:i], c.fifo[i+1:]...)
			return
		}
	}
}

// evictLocked enforces the bound. Entries still being computed are
// pushed to the back and the scan continues with the next candidate —
// one long-running computation must not stall eviction for everyone
// else. The scan is bounded to one full rotation of the queue so a
// cache whose entries are all in flight cannot spin.
func (c *Cache[V]) evictLocked() {
	for scanned, limit := 0, len(c.fifo); len(c.entries) > c.max && scanned < limit; scanned++ {
		victim := c.fifo[0]
		c.fifo = c.fifo[1:]
		e, ok := c.entries[victim]
		if !ok {
			continue // stale key; nothing to evict
		}
		select {
		case <-e.done:
			delete(c.entries, victim)
		default:
			// In flight; push it to the back and try the next one.
			c.fifo = append(c.fifo, victim)
		}
	}
}

// fifoLen returns the eviction-queue length (test hook: it must track
// len(entries) exactly, even under repeated failures).
func (c *Cache[V]) fifoLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.fifo)
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns cumulative hit and miss counts.
func (c *Cache[V]) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
