package service

import (
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/units"
)

// newTestServer spins an in-process service over httptest.
func newTestServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv := NewServer(Options{Workers: 4, QueueDepth: 32})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Close(context.Background())
	})
	return srv, NewClient(ts.URL)
}

func TestHealthzAndWorkloads(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	if err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	wls, err := c.Workloads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(wls) != 7 {
		t.Fatalf("workloads = %d, want the paper's 7", len(wls))
	}
	exps, err := c.Experiments(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 15 {
		t.Fatalf("experiments = %d, want 15", len(exps))
	}
}

func TestRunMatchesDirectPredict(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()

	sys, err := core.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.Predict("STREAM", engine.HBM, units.GB(8), 64)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Run(ctx, RunRequest{Workload: "STREAM", Config: "hbm", Size: "8GB", Threads: 64})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Value != want {
		t.Fatalf("served %v, direct Predict %v — must be identical", resp.Value, want)
	}
	if resp.Cached {
		t.Fatal("first run reported cached")
	}
	// Same point, different spelling: cache hit, same value.
	again, err := c.Run(ctx, RunRequest{Workload: "STREAM", Config: "MCDRAM", Size: "8192MB", Threads: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Value != want || again.Key != resp.Key {
		t.Fatalf("respelled point: cached=%v value=%v key match=%v", again.Cached, again.Value, again.Key == resp.Key)
	}
}

func TestRunUnavailableIsAResult(t *testing.T) {
	_, c := newTestServer(t)
	// 64 GB cannot fit HBM's 16 GB: the paper prints no bar, the
	// service returns an unavailable outcome, not an error.
	resp, err := c.Run(context.Background(), RunRequest{Workload: "STREAM", Config: "hbm", Size: "64GB", Threads: 64})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Unavailable == "" {
		t.Fatalf("expected unavailable outcome, got value %v", resp.Value)
	}
}

func TestRunBadRequests(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	for _, req := range []RunRequest{
		{Workload: "NoSuchWorkload", Config: "dram", Size: "1GB"},
		{Workload: "STREAM", Config: "bogus", Size: "1GB"},
		{Workload: "STREAM", Config: "dram", Size: "wat"},
		{Workload: "STREAM", Config: "dram", Size: "1GB", SKU: "9999"},
	} {
		if _, err := c.Run(ctx, req); err == nil || !strings.Contains(err.Error(), "400") {
			t.Errorf("request %+v: err = %v, want HTTP 400", req, err)
		}
	}
}

// TestCampaignMatchesSerialRuns is the acceptance check: a campaign
// sweeping 2 workloads x 3 memory configs x a size grid must produce
// exactly the values the equivalent serial knlsim-style Predict calls
// produce.
func TestCampaignMatchesSerialRuns(t *testing.T) {
	_, c := newTestServer(t)
	spec := campaign.Spec{
		Name:      "acceptance",
		Workloads: []string{"STREAM", "GUPS"},
		Configs:   []string{"dram", "hbm", "cache"},
		Sizes:     []string{"2GB", "8GB", "24GB"},
		Threads:   []int{64, 128},
	}
	resp, err := c.SubmitCampaign(context.Background(), spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Job.State != JobDone {
		t.Fatalf("job state %s (%s)", resp.Job.State, resp.Job.Error)
	}
	res := resp.Result
	if res == nil {
		t.Fatal("wait=1 returned no result")
	}
	if want := 2 * 3 * 3 * 2; res.Points != want || len(res.Results) != want {
		t.Fatalf("points=%d results=%d, want %d", res.Points, len(res.Results), want)
	}
	if len(res.Tables) != 4 { // 2 workloads x 2 thread counts
		t.Fatalf("tables = %d, want 4", len(res.Tables))
	}

	sys, err := core.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	points, _, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		got := res.Results[i]
		want, err := sys.Predict(p.Workload, p.Config, p.Size, p.Threads)
		if err != nil {
			if got.Unavailable == "" {
				t.Errorf("%v: serial run not measurable (%v) but service returned %v", p, err, got.Value)
			}
			continue
		}
		if got.Unavailable != "" {
			t.Errorf("%v: service unavailable (%s) but serial run gives %v", p, got.Unavailable, want)
			continue
		}
		if got.Value != want {
			t.Errorf("%v: service %v != serial %v", p, got.Value, want)
		}
	}
}

func TestCampaignCacheHitOnResubmit(t *testing.T) {
	srv, c := newTestServer(t)
	spec := campaign.Spec{
		Workloads: []string{"STREAM"},
		Configs:   []string{"dram", "hbm"},
		SizeGrid:  &campaign.Grid{From: "1GB", To: "8GB", Points: 4},
	}
	ctx := context.Background()
	first, err := c.SubmitCampaign(ctx, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if first.Result.Cached {
		t.Fatal("first submission claims cached")
	}
	// Resubmit with reordered, respelled axes: the campaign key must
	// match and the whole result come from the campaign cache.
	respelled := campaign.Spec{
		Workloads: []string{"STREAM"},
		Configs:   []string{"MCDRAM", "ddr"},
		SizeGrid:  &campaign.Grid{From: "1024MB", To: "8GiB", Points: 4},
	}
	second, err := c.SubmitCampaign(ctx, respelled, true)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Result.Cached {
		t.Fatal("resubmission not served from campaign cache")
	}
	if second.Result.Key != first.Result.Key {
		t.Fatal("equivalent specs got different campaign keys")
	}
	if len(second.Result.Results) != len(first.Result.Results) {
		t.Fatal("cached result differs in size")
	}
	for i := range second.Result.Results {
		if second.Result.Results[i].Value != first.Result.Results[i].Value {
			t.Fatalf("cached value %d differs", i)
		}
	}
	hits, _ := srv.campaigns.Stats()
	if hits != 1 {
		t.Fatalf("campaign cache hits = %d, want 1", hits)
	}
}

func TestCampaignAsyncJobAndStream(t *testing.T) {
	_, c := newTestServer(t)
	spec := campaign.Spec{
		Workloads: []string{"XSBench"},
		Configs:   []string{"dram", "hbm", "cache"},
		Sizes:     []string{"1GB", "2GB", "4GB", "8GB"},
		Threads:   []int{64, 128, 192, 256},
	}
	ctx := context.Background()
	resp, err := c.SubmitCampaign(ctx, spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Job.ID == "" {
		t.Fatal("no job id")
	}
	var last JobInfo
	if err := c.StreamJob(ctx, resp.Job.ID, func(info JobInfo) { last = info }); err != nil {
		t.Fatal(err)
	}
	if last.State != JobDone {
		t.Fatalf("stream ended in state %s (%s)", last.State, last.Error)
	}
	if last.Total != 48 || last.Done != last.Total {
		t.Fatalf("final progress %d/%d, want 48/48", last.Done, last.Total)
	}
	final, err := c.WaitResult(ctx, resp.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Result == nil || final.Result.Points != 48 {
		t.Fatal("missing or wrong job result")
	}
}

func TestCampaignWithExperiments(t *testing.T) {
	_, c := newTestServer(t)
	spec := campaign.Spec{Experiments: []string{"table1", "fig2"}}
	resp, err := c.SubmitCampaign(context.Background(), spec, true)
	if err != nil {
		t.Fatal(err)
	}
	res := resp.Result
	if res == nil || len(res.Experiments) != 2 {
		t.Fatalf("experiments in result: %+v", res)
	}
	for _, e := range res.Experiments {
		if e.Error != "" || e.Rendered == "" || e.CSV == "" {
			t.Fatalf("experiment %s: err=%q rendered=%d bytes", e.ID, e.Error, len(e.Rendered))
		}
	}
	if !strings.Contains(res.Experiments[1].Rendered, "STREAM") {
		t.Fatal("fig2 rendering looks wrong")
	}
}

func TestCampaignBadSpecRejected(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	for _, spec := range []campaign.Spec{
		{},
		{Workloads: []string{"STREAM"}, Configs: []string{"bogus"}, Sizes: []string{"1GB"}},
	} {
		if _, err := c.SubmitCampaign(ctx, spec, true); err == nil || !strings.Contains(err.Error(), "400") {
			t.Errorf("spec %+v: err = %v, want HTTP 400", spec, err)
		}
	}
	// Unknown workload passes spec validation (names are resolved by
	// the executor) but must fail the job, not wedge it.
	resp, err := c.SubmitCampaign(ctx, campaign.Spec{
		Workloads: []string{"NoSuch"}, Configs: []string{"dram"}, Sizes: []string{"1GB"},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Job.State != JobFailed || !strings.Contains(resp.Job.Error, "NoSuch") {
		t.Fatalf("job %+v, want failed with unknown-workload error", resp.Job)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	if _, err := c.Run(ctx, RunRequest{Workload: "STREAM", Config: "dram", Size: "1GB", Threads: 64}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(ctx, RunRequest{Workload: "STREAM", Config: "dram", Size: "1GB", Threads: 64}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.httpClient().Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"simd_uptime_seconds",
		`simd_http_requests_total{route="POST /v1/run"} 2`,
		`simd_cache_hits_total{cache="point"} 1`,
		`simd_cache_misses_total{cache="point"} 1`,
		"simd_jobs_pending",
		"simd_jobs_finished_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestGracefulClose(t *testing.T) {
	srv := NewServer(Options{Workers: 2, QueueDepth: 8})
	ts := httptest.NewServer(srv.Handler())
	c := NewClient(ts.URL)
	spec := campaign.Spec{Workloads: []string{"STREAM"}, Configs: []string{"dram"}, Sizes: []string{"1GB"}}
	resp, err := c.SubmitCampaign(context.Background(), spec, false)
	if err != nil {
		t.Fatal(err)
	}
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// The submitted job must have drained to a terminal state.
	info, ok := srv.queue.Get(resp.Job.ID)
	if !ok || (info.State != JobDone && info.State != JobFailed) {
		t.Fatalf("job after Close: %+v", info)
	}
}
