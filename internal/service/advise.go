package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/campaign"
	"repro/internal/keys"
	"repro/internal/placement"
	"repro/internal/units"
)

// This file is the advisory endpoint: POST /v1/advise asks "which
// memory mode should this application use?" and is answered by the
// placement mode-exploration engine (internal/placement.Advise) behind
// the same content-addressed singleflight cache as every other query.
// A request either names a workload + footprint (the structure set is
// derived from the workload's Table I access pattern) or spells out
// the application's data structures explicitly.

// StructureSpec is one application data structure in wire vocabulary:
// a footprint in the size grammar ("8GB", "512MiB") plus the traffic
// the modelled phase drives through it.
type StructureSpec struct {
	// Name identifies the structure in assignments.
	Name string `json:"name"`
	// Footprint is the structure's resident size ("4GB").
	Footprint string `json:"footprint"`
	// SeqBytes is streamed traffic per phase execution, in bytes.
	SeqBytes float64 `json:"seq_bytes,omitempty"`
	// RandomAccesses is independent random line accesses per phase.
	RandomAccesses float64 `json:"random_accesses,omitempty"`
	// ChaseOps is dependent pointer-chase chains per phase.
	ChaseOps float64 `json:"chase_ops,omitempty"`
	// ChaseLength is the accesses per chase chain.
	ChaseLength float64 `json:"chase_length,omitempty"`
}

// AdviseRequest asks for a ranked memory-mode recommendation. Exactly
// one of (Workload, Size) or Structures must describe the application.
type AdviseRequest struct {
	// Workload names a registered workload whose Table I pattern
	// shapes the derived structure set. Requires Size.
	Workload string `json:"workload,omitempty"`
	// Size is the application footprint for the workload form.
	Size string `json:"size,omitempty"`
	// Structures spells the application out explicitly instead.
	Structures []StructureSpec `json:"structures,omitempty"`
	// Threads is the evaluation thread count (default 64).
	Threads int `json:"threads,omitempty"`
	// SKU selects the machine preset (default 7210).
	SKU string `json:"sku,omitempty"`
}

// AdviseResponse is the ranked recommendation: the canonical echo of
// the resolved request, the advice report, and cache accounting.
type AdviseResponse struct {
	Workload string `json:"workload,omitempty"`
	// Size is the canonical footprint of the workload form.
	Size    string `json:"size,omitempty"`
	Threads int    `json:"threads"`
	SKU     string `json:"sku"`
	// Key is the content address the advice is cached under.
	Key string `json:"key"`
	// Structures echoes the resolved structure set in canonical form
	// (footprints normalized, sorted for explicit requests).
	Structures []StructureSpec `json:"structures"`
	// Advice is the ranked mode report.
	Advice campaign.AdviceSummary `json:"advice"`
	// Cached marks responses served from the content-addressed cache.
	Cached    bool    `json:"cached"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// LoadStructures reads an explicit structure set from a JSON file
// ([{"name":...,"footprint":...,"seq_bytes":...}, ...]), the format
// simctl advise -structs and advisor -structs share.
func LoadStructures(path string) ([]StructureSpec, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var structs []StructureSpec
	if err := json.Unmarshal(buf, &structs); err != nil {
		return nil, fmt.Errorf("structs %s: %w", path, err)
	}
	return structs, nil
}

// adviseQuery is the canonical resolved form of an AdviseRequest: the
// unit of execution and caching.
type adviseQuery struct {
	workload string
	size     units.Bytes // workload form only
	structs  []placement.Structure
	threads  int
	sku      string
}

// Resolve canonicalizes the request: sizes parse to bytes (so "8GB"
// and "8192MB" advise identically), explicit structures sort by name,
// defaults fill in. Validation errors here map to HTTP 400.
func (r AdviseRequest) Resolve() (adviseQuery, error) {
	q := adviseQuery{workload: r.Workload, threads: r.Threads, sku: r.SKU}
	if q.threads <= 0 {
		q.threads = 64
	}
	if q.sku == "" {
		q.sku = campaign.DefaultSKU
	}
	switch {
	case r.Workload != "" && len(r.Structures) > 0:
		return adviseQuery{}, fmt.Errorf("service: advise request must name a workload or spell structures, not both")
	case r.Workload != "":
		if r.Size == "" {
			return adviseQuery{}, fmt.Errorf("service: advise request for workload %q needs a size", r.Workload)
		}
		size, err := units.ParseBytes(r.Size)
		if err != nil {
			return adviseQuery{}, err
		}
		if size <= 0 {
			return adviseQuery{}, fmt.Errorf("service: size %q must be positive", r.Size)
		}
		q.size = size
	case len(r.Structures) > 0:
		for _, s := range r.Structures {
			fp, err := units.ParseBytes(s.Footprint)
			if err != nil {
				return adviseQuery{}, fmt.Errorf("service: structure %q: %w", s.Name, err)
			}
			q.structs = append(q.structs, placement.Structure{
				Name:           s.Name,
				Footprint:      fp,
				SeqBytes:       s.SeqBytes,
				RandomAccesses: s.RandomAccesses,
				ChaseOps:       s.ChaseOps,
				ChaseLength:    s.ChaseLength,
			})
		}
		sort.Slice(q.structs, func(i, j int) bool { return q.structs[i].Name < q.structs[j].Name })
	default:
		return adviseQuery{}, fmt.Errorf("service: advise request names no workload and no structures")
	}
	return q, nil
}

// Key content-addresses the canonical query, mirroring
// campaign.Point.Key: equal resolved requests — however their sizes
// were spelled — hash equal.
func (q adviseQuery) Key() string {
	b := keys.New("advise").
		Str("w", q.workload).
		Int("b", int64(q.size)).
		Int("t", int64(q.threads)).
		Str("sku", q.sku)
	for _, s := range q.structs {
		// The builder length-prefixes the user-supplied name (injective
		// even when names contain delimiters) and serializes traffic by
		// bit pattern (injective for every distinct float64).
		b.Str("s", s.Name).
			Int("fp", int64(s.Footprint)).
			Float("seq", s.SeqBytes).
			Float("rand", s.RandomAccesses).
			Float("chase", s.ChaseOps).
			Float("chaselen", s.ChaseLength)
	}
	return b.Sum()
}

// structures resolves the query's structure set, deriving it from the
// workload's access pattern for the workload form.
func (e *Executor) structures(q adviseQuery) ([]placement.Structure, error) {
	if len(q.structs) > 0 {
		return q.structs, nil
	}
	sys, err := e.System(q.sku)
	if err != nil {
		return nil, err
	}
	mdl, err := sys.Workload(q.workload)
	if err != nil {
		return nil, err
	}
	return placement.WorkloadStructures(mdl.Info().Pattern, q.size)
}

// Advise runs the mode-exploration engine for a resolved query. This
// is the uncached execution path; the server wraps it in the
// content-addressed cache.
func (e *Executor) Advise(q adviseQuery) (AdviseResponse, error) {
	structs, err := e.structures(q)
	if err != nil {
		return AdviseResponse{}, err
	}
	sys, err := e.System(q.sku)
	if err != nil {
		return AdviseResponse{}, err
	}
	opt := &placement.Optimizer{Machine: sys.Machine, Threads: q.threads}
	advice, err := opt.Advise(structs)
	if err != nil {
		return AdviseResponse{}, err
	}
	resp := AdviseResponse{
		Workload: q.workload,
		Threads:  q.threads,
		SKU:      q.sku,
		Key:      q.Key(),
		Advice:   summarizeAdvice(advice),
	}
	if q.size > 0 {
		resp.Size = q.size.String()
	}
	for _, s := range structs {
		resp.Structures = append(resp.Structures, StructureSpec{
			Name:           s.Name,
			Footprint:      s.Footprint.String(),
			SeqBytes:       s.SeqBytes,
			RandomAccesses: s.RandomAccesses,
			ChaseOps:       s.ChaseOps,
			ChaseLength:    s.ChaseLength,
		})
	}
	return resp, nil
}

// summarizeAdvice converts the placement report to wire form.
func summarizeAdvice(a placement.Advice) campaign.AdviceSummary {
	sum := campaign.AdviceSummary{
		Best:           a.Best().Label(),
		TotalFootprint: a.TotalFootprint.String(),
	}
	for _, o := range a.Options {
		wire := campaign.AdviceOption{
			Mode:           o.Mode,
			Config:         o.Config.String(),
			FlatFraction:   o.FlatFraction,
			TimeNS:         float64(o.Time),
			SpeedupVsDRAM:  o.SpeedupVsDRAM,
			SpeedupVsCache: o.SpeedupVsCache,
		}
		if o.Mode == placement.ModeFlat || o.Mode == placement.ModeHybrid {
			wire.HBMUsed = o.HBMUsed.String()
			wire.HBMHeadroom = o.HBMHeadroom.String()
			if len(o.Assignment) > 0 {
				wire.Assignments = make(map[string]string, len(o.Assignment))
				for name, hbm := range o.Assignment {
					if hbm {
						wire.Assignments[name] = "hbm"
					} else {
						wire.Assignments[name] = "ddr"
					}
				}
			}
		}
		sum.Options = append(sum.Options, wire)
	}
	return sum
}

// runAdvisePoint executes one FidelityAdvise campaign point: the same
// advisory engine, recorded as an outcome whose Value is the best
// mode's speedup over all-DDR. A footprint beyond the node is a valid
// "no bar" outcome — the sweep's other sizes still render — matching
// RunPoint's contract for unrunnable configurations.
func (e *Executor) runAdvisePoint(p campaign.Point) (campaign.Outcome, error) {
	q := adviseQuery{workload: p.Workload, size: p.Size, threads: p.Threads, sku: p.SKU}
	resp, err := e.Advise(q)
	if errors.Is(err, placement.ErrOverCapacity) {
		return campaign.Outcome{Point: p, Metric: "best-mode speedup vs DDR", Unavailable: err.Error()}, nil
	}
	if err != nil {
		return campaign.Outcome{}, fmt.Errorf("service: %s: %w", p, err)
	}
	best := resp.Advice.Options[0]
	return campaign.Outcome{
		Point:  p,
		Metric: "best-mode speedup vs DDR",
		Value:  best.SpeedupVsDRAM,
		Advice: &resp.Advice,
	}, nil
}

// RenderAdvice renders the recommendation the way simctl and advisor
// print it: the ranked mode table, then the winning option's
// per-structure assignment when it has one.
func RenderAdvice(resp AdviseResponse) string {
	if len(resp.Advice.Options) == 0 {
		return "advice: empty report (no options returned)\n"
	}
	var b strings.Builder
	what := "structure set"
	if resp.Workload != "" {
		what = fmt.Sprintf("%s at %s", resp.Workload, resp.Size)
	}
	from := ""
	if resp.Cached {
		from = ", served from cache"
	}
	fmt.Fprintf(&b, "advice for %s (%s total, %d threads, KNL %s%s):\n",
		what, resp.Advice.TotalFootprint, resp.Threads, resp.SKU, from)
	fmt.Fprintf(&b, "  %-4s %-14s %-18s %9s %9s %12s %12s\n",
		"rank", "mode", "config", "vs DDR", "vs cache", "HBM used", "headroom")
	for i, o := range resp.Advice.Options {
		used, head := o.HBMUsed, o.HBMHeadroom
		if used == "" {
			used = "-"
		}
		if head == "" {
			head = "-"
		}
		fmt.Fprintf(&b, "  %-4d %-14s %-18s %8.2fx %8.2fx %12s %12s\n",
			i+1, o.Label(), o.Config, o.SpeedupVsDRAM, o.SpeedupVsCache, used, head)
	}
	best := resp.Advice.Options[0]
	if len(best.Assignments) > 0 {
		fmt.Fprintf(&b, "placement under %q:\n", resp.Advice.Best)
		names := make([]string, 0, len(best.Assignments))
		for n := range best.Assignments {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			kind := "MEMKIND_DEFAULT (DDR)"
			if best.Assignments[n] == "hbm" {
				kind = "MEMKIND_HBW     (HBM)"
			}
			fmt.Fprintf(&b, "  %-20s -> %s\n", n, kind)
		}
	}
	return b.String()
}
