package service

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestTraceUploadErrorTable pins the upload handler's error contract:
// malformed streams are 400s whose message names the dialect and the
// offending line; size violations — raw or after gzip expansion — are
// 413s; and a stream exactly at the cap still ingests.
func TestTraceUploadErrorTable(t *testing.T) {
	const maxTrace = 4096
	srv := NewServer(Options{Workers: 1, QueueDepth: 4, TraceDir: t.TempDir(), MaxTraceBytes: maxTrace})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		_ = srv.Close(context.Background())
	}()

	gzipOf := func(raw []byte) []byte {
		var b bytes.Buffer
		zw := gzip.NewWriter(&b)
		if _, err := zw.Write(raw); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}

	// A valid CSV body of exactly maxTrace bytes ("N,R\n" rows padded
	// with comment lines).
	atLimit := func() []byte {
		var b bytes.Buffer
		b.WriteString("4096,R\n")
		for b.Len() < maxTrace-20 {
			b.WriteString("# padding comment\n")
		}
		for b.Len() < maxTrace {
			b.WriteByte('#')
		}
		return b.Bytes()
	}()
	if len(atLimit) != maxTrace {
		t.Fatalf("test bug: at-limit body is %d bytes", len(atLimit))
	}

	cases := []struct {
		name       string
		body       []byte
		wantStatus int
		wantSubstr []string
	}{
		{"ndjson-bad-json", []byte("{\"addr\": 1}\n{\"addr\": }\n"), http.StatusBadRequest, []string{"ndjson", "line 2"}},
		{"ndjson-bad-kind", []byte("{\"addr\": 1, \"kind\": \"X\"}\n"), http.StatusBadRequest, []string{"ndjson", "line 1", "kind"}},
		{"ndjson-missing-addr", []byte("{\"kind\": \"R\"}\n"), http.StatusBadRequest, []string{"ndjson", "line 1", "missing addr"}},
		{"ndjson-bad-addr-line-3", []byte("{\"addr\": 1}\n\n{\"addr\": \"zap\"}\n"), http.StatusBadRequest, []string{"ndjson", "line 3", "address"}},
		{"csv-bad-addr", []byte("addr,kind\n12,R\nnope,R\n"), http.StatusBadRequest, []string{"csv", "line 3", "address"}},
		{"csv-bad-kind", []byte("64,Z\n"), http.StatusBadRequest, []string{"csv", "line 1", "kind"}},
		{"empty", nil, http.StatusBadRequest, []string{"empty trace"}},
		{"comments-only", []byte("# nothing here\n"), http.StatusBadRequest, []string{"empty trace"}},
		{"bad-gzip", append([]byte{0x1f, 0x8b}, "garbage"...), http.StatusBadRequest, []string{"gzip"}},
		{"oversized-raw", bytes.Repeat([]byte("4096,R\n"), maxTrace/7+2), http.StatusRequestEntityTooLarge, []string{"limit"}},
		{"oversized-after-gzip", gzipOf(bytes.Repeat([]byte("4096,R\n"), maxTrace/7+2)), http.StatusRequestEntityTooLarge, []string{"decoded"}},
		{"at-limit-ok", atLimit, http.StatusCreated, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, raw)
			}
			if tc.wantStatus == http.StatusCreated {
				return
			}
			var apiErr struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(raw, &apiErr); err != nil {
				t.Fatalf("error body is not JSON: %v (%s)", err, raw)
			}
			for _, want := range tc.wantSubstr {
				if !strings.Contains(apiErr.Error, want) {
					t.Errorf("error %q does not mention %q", apiErr.Error, want)
				}
			}
		})
	}
}
