package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// JobState is the lifecycle of a submitted job.
type JobState string

// Job lifecycle states.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// ErrQueueFull is returned by Submit when the bounded queue cannot
// accept more work; HTTP maps it to 429 with a Retry-After computed
// from EstimateWait so clients back off by the right amount.
var ErrQueueFull = errors.New("service: job queue full")

// ErrShutdown is returned by Submit after Close.
var ErrShutdown = errors.New("service: queue shut down")

// JobFunc is the work a job performs. progress reports (done, total)
// steps for streamed campaign progress; single runs never call it.
type JobFunc func(ctx context.Context, progress func(done, total int)) error

// JobInfo is the externally visible snapshot of a job. Whether a
// campaign was served from the result cache is reported on its
// CampaignResult, not here.
//
// Started and Finished are pointers because time.Time is a struct, so
// `omitempty` never fires on the value form and queued jobs would
// serialize the zero time ("0001-01-01T00:00:00Z") instead of omitting
// the field. They are set exactly once (under the job mutex) and never
// mutated afterwards, so sharing the pointers across snapshots is
// safe.
type JobInfo struct {
	ID        string     `json:"id"`
	Kind      string     `json:"kind"` // "run" or "campaign"
	State     JobState   `json:"state"`
	Done      int        `json:"done"`
	Total     int        `json:"total"`
	Error     string     `json:"error,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	// RequestID is the X-Request-Id of the HTTP request that submitted
	// the job, so one correlation key links the access log, the job
	// record, the journal and the metrics a request produced.
	RequestID string `json:"request_id,omitempty"`
	// QueueMS and RunMS are derived stage durations: time spent waiting
	// for a worker and time spent executing. They appear once the
	// corresponding stage completes.
	QueueMS float64 `json:"queue_ms,omitempty"`
	RunMS   float64 `json:"run_ms,omitempty"`
	// Timeline is the job's span record: one entry per completed stage
	// (queue_wait, persist, execute), each with its start time and
	// duration. Spans are appended as they complete.
	Timeline []StageSpan `json:"timeline,omitempty"`
}

// StageSpan is one completed stage of a job's lifecycle.
type StageSpan struct {
	Stage string    `json:"stage"`
	Start time.Time `json:"start"`
	MS    float64   `json:"ms"`
}

// JobOptions tunes one submission beyond the defaults.
type JobOptions struct {
	// Base, when non-nil, cancels the job when it is cancelled — the
	// submitting request's context for wait=1 requests, so a client
	// disconnect stops the simulation instead of leaking the worker.
	Base context.Context
	// Timeout bounds the job's run time once a worker picks it up.
	// <= 0 means no per-job deadline.
	Timeout time.Duration
	// ID forces the job ID (journal replay re-enqueues interrupted
	// jobs under their original IDs). Empty allocates the next
	// sequence number.
	ID string
	// RequestID is the correlation key of the submitting HTTP request,
	// carried on every snapshot of the job.
	RequestID string
	// Trace, when non-nil, is the submitting request's execution trace:
	// the queue records queue-wait and execute spans on it and installs
	// it in the job's run context so the work's own spans (cache
	// probes, point computes, persists) join the same tree even after
	// the HTTP response has gone out.
	Trace *obs.Trace
}

// job is the internal record: a snapshot guarded by mu plus the work.
type job struct {
	mu sync.Mutex
	// info is the live job record. guarded by mu.
	info     JobInfo
	fn       JobFunc
	base     context.Context // optional extra cancel signal
	timeout  time.Duration
	trace    *obs.Trace    // submitting request's trace, or nil
	finished chan struct{} // closed on done/failed
}

func (j *job) snapshot() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := j.info
	// The timeline keeps growing while the job runs; copy it so a
	// handed-out snapshot never aliases the live slice.
	if len(j.info.Timeline) > 0 {
		info.Timeline = append([]StageSpan(nil), j.info.Timeline...)
	}
	return info
}

// addStageLocked appends a completed stage span. Callers hold j.mu.
func (j *job) addStageLocked(stage string, start time.Time, d time.Duration) {
	j.info.Timeline = append(j.info.Timeline, StageSpan{
		Stage: stage, Start: start, MS: float64(d.Microseconds()) / 1000,
	})
}

// Queue is a bounded job queue drained by a fixed worker pool — the
// PR-1 harness pool pattern lifted to long-lived service form.
// Completed jobs are retained (up to a cap) for result polling.
type Queue struct {
	pending chan *job
	workers int

	mu       sync.Mutex
	jobs     map[string]*job // guarded by mu
	order    []string        // submission order, for retention pruning; guarded by mu
	closed   bool            // guarded by mu
	retained int

	seq       atomic.Int64
	running   atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64

	// serviceEWMA tracks an exponentially weighted moving average of
	// job service time (seconds), feeding Retry-After estimates.
	ewmaMu      sync.Mutex
	serviceEWMA float64 // guarded by ewmaMu

	// onStage, when set (before traffic, by the server), observes every
	// completed stage span — the feed of the per-stage latency
	// histogram.
	onStage func(stage string, d time.Duration)

	// onTransition, when set (before traffic, by the server), observes
	// every job state transition with a fresh snapshot — the feed of
	// the live event bus.
	onTransition func(info JobInfo)

	wg     sync.WaitGroup
	cancel context.CancelFunc
}

// NewQueue starts a queue with the given worker count (<=0:
// GOMAXPROCS) and pending-queue depth (<=0: 256). retain bounds how
// many finished jobs stay queryable (<=0: 4096).
//
//simd:ctxroot — the worker pool outlives any request; its context is the process's, cancelled only by Close.
func NewQueue(workers, depth, retain int) *Queue {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth <= 0 {
		depth = 256
	}
	if retain <= 0 {
		retain = 4096
	}
	ctx, cancel := context.WithCancel(context.Background())
	q := &Queue{
		pending:  make(chan *job, depth),
		workers:  workers,
		jobs:     make(map[string]*job),
		retained: retain,
		cancel:   cancel,
	}
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go q.worker(ctx)
	}
	return q
}

// Workers returns the pool width (campaigns reuse it for their
// internal fan-out).
func (q *Queue) Workers() int { return q.workers }

// OnStage installs the stage-span observer. Call it once, before any
// submissions — it is not synchronized against running jobs.
func (q *Queue) OnStage(fn func(stage string, d time.Duration)) { q.onStage = fn }

// OnTransition installs the state-transition observer. Call it once,
// before any submissions — it is not synchronized against running
// jobs.
func (q *Queue) OnTransition(fn func(info JobInfo)) { q.onTransition = fn }

// notifyTransition reports one job state change to the observer.
func (q *Queue) notifyTransition(info JobInfo) {
	if q.onTransition != nil {
		q.onTransition(info)
	}
}

// observeStage reports one completed span to the observer.
func (q *Queue) observeStage(stage string, d time.Duration) {
	if q.onStage != nil {
		q.onStage(stage, d)
	}
}

// AddStage records a completed stage span on a job's timeline — job
// bodies use it for stages the queue cannot see (the terminal persist
// of a campaign result, say).
func (q *Queue) AddStage(id, stage string, start time.Time, d time.Duration) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	q.mu.Unlock()
	if !ok {
		return
	}
	j.mu.Lock()
	j.addStageLocked(stage, start, d)
	j.mu.Unlock()
	q.observeStage(stage, d)
}

// Submit enqueues work and returns its job snapshot. It fails fast
// with ErrQueueFull instead of blocking the HTTP handler. The job is
// only registered once the (non-blocking) enqueue succeeds, so
// rejected submissions leave no trace behind.
func (q *Queue) Submit(kind string, fn JobFunc) (JobInfo, error) {
	return q.SubmitJob(kind, JobOptions{}, fn)
}

// SubmitJob is Submit with per-job options (cancellation base,
// deadline, forced ID).
func (q *Queue) SubmitJob(kind string, opt JobOptions, fn JobFunc) (JobInfo, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return JobInfo{}, ErrShutdown
	}
	id := opt.ID
	if id == "" {
		id = fmt.Sprintf("j%06d", q.seq.Add(1))
	} else {
		q.bumpSeq(id)
		if _, dup := q.jobs[id]; dup {
			return JobInfo{}, fmt.Errorf("service: duplicate job id %q", id)
		}
	}
	j := &job{
		info:     JobInfo{ID: id, Kind: kind, State: JobQueued, Submitted: time.Now(), RequestID: opt.RequestID},
		fn:       fn,
		base:     opt.Base,
		timeout:  opt.Timeout,
		trace:    opt.Trace,
		finished: make(chan struct{}),
	}
	select {
	case q.pending <- j:
	default:
		return JobInfo{}, ErrQueueFull
	}
	q.jobs[id] = j
	q.order = append(q.order, id)
	q.pruneLocked()
	info := j.snapshot()
	q.notifyTransition(info)
	return info, nil
}

// NextID reserves the next job ID without enqueuing anything — the
// journal records a job before the queue learns of it, so a crash
// between the two leaves an ID that never collides.
func (q *Queue) NextID() string { return fmt.Sprintf("j%06d", q.seq.Add(1)) }

// bumpSeq advances the ID sequence past a restored job's number so
// fresh submissions never collide with replayed IDs.
func (q *Queue) bumpSeq(id string) {
	var n int64
	if _, err := fmt.Sscanf(id, "j%d", &n); err != nil {
		return
	}
	for {
		cur := q.seq.Load()
		if cur >= n || q.seq.CompareAndSwap(cur, n) {
			return
		}
	}
}

// RestoreFinished registers a terminal job snapshot replayed from the
// journal, so GET /v1/jobs/{id} keeps answering for jobs that
// finished before a restart. The sequence is advanced past the
// restored ID.
func (q *Queue) RestoreFinished(info JobInfo) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	if _, dup := q.jobs[info.ID]; dup {
		return
	}
	q.bumpSeq(info.ID)
	j := &job{info: info, finished: make(chan struct{})}
	close(j.finished)
	q.jobs[info.ID] = j
	q.order = append(q.order, info.ID)
	q.pruneLocked()
}

// pruneLocked drops the oldest finished jobs beyond the retention cap.
func (q *Queue) pruneLocked() {
	for len(q.jobs) > q.retained && len(q.order) > 0 {
		oldest := q.order[0]
		j, ok := q.jobs[oldest]
		if ok {
			select {
			case <-j.finished:
			default:
				return // oldest still live; keep everything
			}
			delete(q.jobs, oldest)
		}
		q.order = q.order[1:]
	}
}

// Get returns a job snapshot by ID.
func (q *Queue) Get(id string) (JobInfo, bool) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	q.mu.Unlock()
	if !ok {
		return JobInfo{}, false
	}
	return j.snapshot(), true
}

// Wait blocks until the job finishes (or ctx is done) and returns the
// final snapshot.
func (q *Queue) Wait(ctx context.Context, id string) (JobInfo, error) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	q.mu.Unlock()
	if !ok {
		return JobInfo{}, fmt.Errorf("service: unknown job %q", id)
	}
	select {
	case <-j.finished:
		return j.snapshot(), nil
	case <-ctx.Done():
		return JobInfo{}, ctx.Err()
	}
}

// worker drains the pending channel until shutdown.
func (q *Queue) worker(ctx context.Context) {
	defer q.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case j, ok := <-q.pending:
			if !ok {
				return
			}
			q.runJob(ctx, j)
		}
	}
}

func (q *Queue) runJob(ctx context.Context, j *job) {
	started := time.Now()
	j.mu.Lock()
	j.info.State = JobRunning
	j.info.Started = &started
	submitted := j.info.Submitted
	queueWait := started.Sub(submitted)
	j.info.QueueMS = float64(queueWait.Microseconds()) / 1000
	j.addStageLocked("queue_wait", submitted, queueWait)
	j.mu.Unlock()
	q.observeStage("queue_wait", queueWait)
	q.running.Add(1)
	q.notifyTransition(j.snapshot())

	// Mirror the timeline onto the submitting request's span tree: the
	// wait is recorded retrospectively, the execute span opens now and
	// becomes the parent of everything the job body does.
	var execSpan *obs.Span
	if j.trace != nil {
		j.trace.AddSpan(obs.RootSpanID, "queue_wait", submitted, queueWait)
		execSpan = j.trace.NewSpan("execute", obs.RootSpanID, started)
	}

	progress := func(done, total int) {
		j.mu.Lock()
		j.info.Done, j.info.Total = done, total
		j.mu.Unlock()
	}

	// The job runs under the worker context (shutdown), narrowed by
	// the per-job deadline and, for wait=1 submissions, tied to the
	// requesting client's context so a disconnect cancels the work.
	runCtx := ctx
	var cancel context.CancelFunc
	if j.timeout > 0 {
		runCtx, cancel = context.WithTimeout(runCtx, j.timeout)
	} else {
		runCtx, cancel = context.WithCancel(runCtx)
	}
	if j.base != nil {
		stop := context.AfterFunc(j.base, cancel)
		defer stop()
	}
	if execSpan != nil {
		runCtx = obs.ContextWithSpan(runCtx, j.trace, execSpan.ID())
	}
	err := j.fn(runCtx, progress)
	cancel()

	q.running.Add(-1)
	finished := time.Now()
	q.observeService(finished.Sub(started))
	runDur := finished.Sub(started)
	q.observeStage("execute", runDur)
	if execSpan != nil {
		execSpan.SetError(err != nil)
		execSpan.EndAt(finished)
	}
	j.mu.Lock()
	j.info.Finished = &finished
	j.info.RunMS = float64(runDur.Microseconds()) / 1000
	j.addStageLocked("execute", started, runDur)
	if err != nil {
		j.info.State = JobFailed
		j.info.Error = err.Error()
		q.failed.Add(1)
	} else {
		j.info.State = JobDone
		if j.info.Total == 0 {
			j.info.Done, j.info.Total = 1, 1
		}
		q.completed.Add(1)
	}
	j.mu.Unlock()
	close(j.finished)
	q.notifyTransition(j.snapshot())
}

// observeService folds one job's service time into the EWMA.
func (q *Queue) observeService(d time.Duration) {
	const alpha = 0.3
	q.ewmaMu.Lock()
	if q.serviceEWMA == 0 {
		q.serviceEWMA = d.Seconds()
	} else {
		q.serviceEWMA = alpha*d.Seconds() + (1-alpha)*q.serviceEWMA
	}
	q.ewmaMu.Unlock()
}

// EstimateWait predicts how long a rejected submission should wait
// before retrying: the queued backlog divided across the worker pool,
// paced by the observed mean service time. With no samples yet it
// falls back to one second per backlog slot. The estimate is clamped
// to [1s, 5m] so Retry-After is always sane.
func (q *Queue) EstimateWait() time.Duration {
	q.ewmaMu.Lock()
	avg := q.serviceEWMA
	q.ewmaMu.Unlock()
	if avg <= 0 {
		avg = 1
	}
	backlog := float64(len(q.pending)+1) + float64(q.running.Load())
	est := time.Duration(avg * backlog / float64(q.workers) * float64(time.Second))
	if est < time.Second {
		est = time.Second
	}
	if est > 5*time.Minute {
		est = 5 * time.Minute
	}
	return est
}

// Unfinished snapshots every job that is still queued or running —
// what a shutdown must journal as interrupted.
func (q *Queue) Unfinished() []JobInfo {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []JobInfo
	for _, id := range q.order {
		j, ok := q.jobs[id]
		if !ok {
			continue
		}
		select {
		case <-j.finished:
		default:
			out = append(out, j.snapshot())
		}
	}
	return out
}

// Counts returns (queued, running, completed, failed) for /metrics.
func (q *Queue) Counts() (queued int, running, completed, failed int64) {
	return len(q.pending), q.running.Load(), q.completed.Load(), q.failed.Load()
}

// Depth is the number of jobs waiting in the pending queue right now.
func (q *Queue) Depth() int { return len(q.pending) }

// Capacity is the pending queue's bound — with Depth, the headroom a
// scraper needs to see saturation coming.
func (q *Queue) Capacity() int { return cap(q.pending) }

// Close stops accepting submissions, waits for queued and running
// jobs to drain (bounded by ctx), then stops the workers. It is the
// graceful-shutdown half the HTTP server calls after draining
// connections.
func (q *Queue) Close(ctx context.Context) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	q.mu.Unlock()
	close(q.pending)

	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		q.cancel()
		return nil
	case <-ctx.Done():
		q.cancel() // abandon stragglers
		return ctx.Err()
	}
}
