package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// JobState is the lifecycle of a submitted job.
type JobState string

// Job lifecycle states.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// ErrQueueFull is returned by Submit when the bounded queue cannot
// accept more work; HTTP maps it to 503 so clients back off.
var ErrQueueFull = errors.New("service: job queue full")

// ErrShutdown is returned by Submit after Close.
var ErrShutdown = errors.New("service: queue shut down")

// JobFunc is the work a job performs. progress reports (done, total)
// steps for streamed campaign progress; single runs never call it.
type JobFunc func(ctx context.Context, progress func(done, total int)) error

// JobInfo is the externally visible snapshot of a job. Whether a
// campaign was served from the result cache is reported on its
// CampaignResult, not here.
//
// Started and Finished are pointers because time.Time is a struct, so
// `omitempty` never fires on the value form and queued jobs would
// serialize the zero time ("0001-01-01T00:00:00Z") instead of omitting
// the field. They are set exactly once (under the job mutex) and never
// mutated afterwards, so sharing the pointers across snapshots is
// safe.
type JobInfo struct {
	ID        string     `json:"id"`
	Kind      string     `json:"kind"` // "run" or "campaign"
	State     JobState   `json:"state"`
	Done      int        `json:"done"`
	Total     int        `json:"total"`
	Error     string     `json:"error,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
}

// job is the internal record: a snapshot guarded by mu plus the work.
type job struct {
	mu       sync.Mutex
	info     JobInfo
	fn       JobFunc
	finished chan struct{} // closed on done/failed
}

func (j *job) snapshot() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.info
}

// Queue is a bounded job queue drained by a fixed worker pool — the
// PR-1 harness pool pattern lifted to long-lived service form.
// Completed jobs are retained (up to a cap) for result polling.
type Queue struct {
	pending chan *job
	workers int

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for retention pruning
	closed   bool
	retained int

	seq       atomic.Int64
	running   atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64

	wg     sync.WaitGroup
	cancel context.CancelFunc
}

// NewQueue starts a queue with the given worker count (<=0:
// GOMAXPROCS) and pending-queue depth (<=0: 256). retain bounds how
// many finished jobs stay queryable (<=0: 4096).
func NewQueue(workers, depth, retain int) *Queue {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth <= 0 {
		depth = 256
	}
	if retain <= 0 {
		retain = 4096
	}
	ctx, cancel := context.WithCancel(context.Background())
	q := &Queue{
		pending:  make(chan *job, depth),
		workers:  workers,
		jobs:     make(map[string]*job),
		retained: retain,
		cancel:   cancel,
	}
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go q.worker(ctx)
	}
	return q
}

// Workers returns the pool width (campaigns reuse it for their
// internal fan-out).
func (q *Queue) Workers() int { return q.workers }

// Submit enqueues work and returns its job snapshot. It fails fast
// with ErrQueueFull instead of blocking the HTTP handler. The job is
// only registered once the (non-blocking) enqueue succeeds, so
// rejected submissions leave no trace behind.
func (q *Queue) Submit(kind string, fn JobFunc) (JobInfo, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return JobInfo{}, ErrShutdown
	}
	id := fmt.Sprintf("j%06d", q.seq.Add(1))
	j := &job{
		info:     JobInfo{ID: id, Kind: kind, State: JobQueued, Submitted: time.Now()},
		fn:       fn,
		finished: make(chan struct{}),
	}
	select {
	case q.pending <- j:
	default:
		return JobInfo{}, ErrQueueFull
	}
	q.jobs[id] = j
	q.order = append(q.order, id)
	q.pruneLocked()
	return j.snapshot(), nil
}

// pruneLocked drops the oldest finished jobs beyond the retention cap.
func (q *Queue) pruneLocked() {
	for len(q.jobs) > q.retained && len(q.order) > 0 {
		oldest := q.order[0]
		j, ok := q.jobs[oldest]
		if ok {
			select {
			case <-j.finished:
			default:
				return // oldest still live; keep everything
			}
			delete(q.jobs, oldest)
		}
		q.order = q.order[1:]
	}
}

// Get returns a job snapshot by ID.
func (q *Queue) Get(id string) (JobInfo, bool) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	q.mu.Unlock()
	if !ok {
		return JobInfo{}, false
	}
	return j.snapshot(), true
}

// Wait blocks until the job finishes (or ctx is done) and returns the
// final snapshot.
func (q *Queue) Wait(ctx context.Context, id string) (JobInfo, error) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	q.mu.Unlock()
	if !ok {
		return JobInfo{}, fmt.Errorf("service: unknown job %q", id)
	}
	select {
	case <-j.finished:
		return j.snapshot(), nil
	case <-ctx.Done():
		return JobInfo{}, ctx.Err()
	}
}

// worker drains the pending channel until shutdown.
func (q *Queue) worker(ctx context.Context) {
	defer q.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case j, ok := <-q.pending:
			if !ok {
				return
			}
			q.runJob(ctx, j)
		}
	}
}

func (q *Queue) runJob(ctx context.Context, j *job) {
	started := time.Now()
	j.mu.Lock()
	j.info.State = JobRunning
	j.info.Started = &started
	j.mu.Unlock()
	q.running.Add(1)

	progress := func(done, total int) {
		j.mu.Lock()
		j.info.Done, j.info.Total = done, total
		j.mu.Unlock()
	}
	err := j.fn(ctx, progress)

	q.running.Add(-1)
	finished := time.Now()
	j.mu.Lock()
	j.info.Finished = &finished
	if err != nil {
		j.info.State = JobFailed
		j.info.Error = err.Error()
		q.failed.Add(1)
	} else {
		j.info.State = JobDone
		if j.info.Total == 0 {
			j.info.Done, j.info.Total = 1, 1
		}
		q.completed.Add(1)
	}
	j.mu.Unlock()
	close(j.finished)
}

// Counts returns (queued, running, completed, failed) for /metrics.
func (q *Queue) Counts() (queued int, running, completed, failed int64) {
	return len(q.pending), q.running.Load(), q.completed.Load(), q.failed.Load()
}

// Close stops accepting submissions, waits for queued and running
// jobs to drain (bounded by ctx), then stops the workers. It is the
// graceful-shutdown half the HTTP server calls after draining
// connections.
func (q *Queue) Close(ctx context.Context) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	q.mu.Unlock()
	close(q.pending)

	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		q.cancel()
		return nil
	case <-ctx.Done():
		q.cancel() // abandon stragglers
		return ctx.Err()
	}
}
