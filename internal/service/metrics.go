package service

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Metrics collects service counters and latency histograms and renders
// them in Prometheus text exposition format at /metrics. Only state
// the service owns lives here; cache and queue figures are read from
// their sources at scrape time so they can never drift.
type Metrics struct {
	start    time.Time
	revision string

	mu       sync.Mutex
	requests map[string]int64 // by route pattern (or "unmatched"); guarded by mu

	// httpSeconds is end-to-end request latency by route and status.
	httpSeconds *obs.HistogramVec
	// stageSeconds is per-job stage latency: queue_wait, execute,
	// persist.
	stageSeconds *obs.HistogramVec
	// pointSeconds is single-point compute latency by fidelity, timed
	// around the actual computation (cache misses only).
	pointSeconds *obs.HistogramVec
	// lookupSeconds is content-addressed cache hit latency by cache.
	lookupSeconds *obs.HistogramVec
}

// NewMetrics builds an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		start:    time.Now(),
		revision: buildRevision(),
		requests: make(map[string]int64),
		httpSeconds: obs.NewHistogramVec("simd_http_request_seconds",
			"HTTP request latency by route and status code.",
			[]string{"route", "code"}, nil),
		stageSeconds: obs.NewHistogramVec("simd_job_stage_seconds",
			"Job stage latency: queue_wait, execute, persist.",
			[]string{"stage"}, nil),
		pointSeconds: obs.NewHistogramVec("simd_point_compute_seconds",
			"Single-point compute latency by fidelity (cache misses only).",
			[]string{"fidelity"}, nil),
		lookupSeconds: obs.NewHistogramVec("simd_cache_lookup_seconds",
			"Content-addressed cache hit latency by cache.",
			[]string{"cache"}, nil),
	}
}

// buildRevision digs the VCS revision out of the build info, so one
// scrape identifies the running binary.
func buildRevision() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return "unknown"
}

// CountRequest records one HTTP request for a route.
func (m *Metrics) CountRequest(route string) {
	m.mu.Lock()
	m.requests[route]++
	m.mu.Unlock()
}

// ObserveHTTP records one request's end-to-end latency, annotated
// with the trace ID as the bucket's exemplar (empty disables).
func (m *Metrics) ObserveHTTP(route, code string, seconds float64, traceID string) {
	m.httpSeconds.ObserveExemplar(seconds, traceID, route, code)
}

// ObserveStage records one completed job stage.
func (m *Metrics) ObserveStage(stage string, seconds float64) {
	m.stageSeconds.Observe(seconds, stage)
}

// ObservePoint records one freshly computed point by fidelity.
func (m *Metrics) ObservePoint(fidelity string, seconds float64) {
	m.pointSeconds.Observe(seconds, fidelity)
}

// ObserveLookup records one cache hit's lookup latency.
func (m *Metrics) ObserveLookup(cache string, seconds float64) {
	m.lookupSeconds.Observe(seconds, cache)
}

// WriteTo renders the exposition text. The server passes its live
// cache and queue so gauges are sampled at scrape time.
func (m *Metrics) WriteTo(w io.Writer, s *Server) {
	fmt.Fprintf(w, "# HELP simd_build_info Build metadata; the value is always 1.\n")
	fmt.Fprintf(w, "# TYPE simd_build_info gauge\n")
	fmt.Fprintf(w, "simd_build_info{go_version=%q,revision=%q} 1\n", runtime.Version(), m.revision)

	fmt.Fprintf(w, "# HELP simd_uptime_seconds Time since the service started.\n")
	fmt.Fprintf(w, "# TYPE simd_uptime_seconds gauge\n")
	fmt.Fprintf(w, "simd_uptime_seconds %.3f\n", time.Since(m.start).Seconds())

	m.mu.Lock()
	routes := make([]string, 0, len(m.requests))
	for r := range m.requests {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	fmt.Fprintf(w, "# HELP simd_http_requests_total HTTP requests by route.\n")
	fmt.Fprintf(w, "# TYPE simd_http_requests_total counter\n")
	for _, r := range routes {
		fmt.Fprintf(w, "simd_http_requests_total{route=%q} %d\n", r, m.requests[r])
	}
	m.mu.Unlock()

	m.httpSeconds.Render(w)
	m.stageSeconds.Render(w)
	m.pointSeconds.Render(w)
	m.lookupSeconds.Render(w)

	ph, pm := s.points.Stats()
	ch, cm := s.campaigns.Stats()
	ah, am := s.advices.Stats()
	clh, clm := s.clusters.Stats()
	rh, rm := s.replays.Stats()
	fmt.Fprintf(w, "# HELP simd_cache_hits_total Content-addressed cache hits.\n")
	fmt.Fprintf(w, "# TYPE simd_cache_hits_total counter\n")
	fmt.Fprintf(w, "simd_cache_hits_total{cache=\"point\"} %d\n", ph)
	fmt.Fprintf(w, "simd_cache_hits_total{cache=\"campaign\"} %d\n", ch)
	fmt.Fprintf(w, "simd_cache_hits_total{cache=\"advice\"} %d\n", ah)
	fmt.Fprintf(w, "simd_cache_hits_total{cache=\"cluster\"} %d\n", clh)
	fmt.Fprintf(w, "simd_cache_hits_total{cache=\"replay\"} %d\n", rh)
	fmt.Fprintf(w, "# HELP simd_cache_misses_total Content-addressed cache misses.\n")
	fmt.Fprintf(w, "# TYPE simd_cache_misses_total counter\n")
	fmt.Fprintf(w, "simd_cache_misses_total{cache=\"point\"} %d\n", pm)
	fmt.Fprintf(w, "simd_cache_misses_total{cache=\"campaign\"} %d\n", cm)
	fmt.Fprintf(w, "simd_cache_misses_total{cache=\"advice\"} %d\n", am)
	fmt.Fprintf(w, "simd_cache_misses_total{cache=\"cluster\"} %d\n", clm)
	fmt.Fprintf(w, "simd_cache_misses_total{cache=\"replay\"} %d\n", rm)
	fmt.Fprintf(w, "# HELP simd_cache_entries Cached entries resident.\n")
	fmt.Fprintf(w, "# TYPE simd_cache_entries gauge\n")
	fmt.Fprintf(w, "simd_cache_entries{cache=\"point\"} %d\n", s.points.Len())
	fmt.Fprintf(w, "simd_cache_entries{cache=\"campaign\"} %d\n", s.campaigns.Len())
	fmt.Fprintf(w, "simd_cache_entries{cache=\"advice\"} %d\n", s.advices.Len())
	fmt.Fprintf(w, "simd_cache_entries{cache=\"cluster\"} %d\n", s.clusters.Len())
	fmt.Fprintf(w, "simd_cache_entries{cache=\"replay\"} %d\n", s.replays.Len())

	// Only report trace gauges once a trace request has opened the
	// store — a scrape must not create the directory as a side effect.
	if st := s.traceStoreIfOpen(); st != nil {
		count, bytes := st.Totals()
		fmt.Fprintf(w, "# HELP simd_traces_stored Traces resident in the durable store.\n")
		fmt.Fprintf(w, "# TYPE simd_traces_stored gauge\n")
		fmt.Fprintf(w, "simd_traces_stored %d\n", count)
		fmt.Fprintf(w, "# HELP simd_trace_store_bytes Encoded bytes in the trace store.\n")
		fmt.Fprintf(w, "# TYPE simd_trace_store_bytes gauge\n")
		fmt.Fprintf(w, "simd_trace_store_bytes %d\n", bytes)
	}

	queued, running, completed, failed := s.queue.Counts()
	fmt.Fprintf(w, "# HELP simd_queue_depth Jobs waiting in the bounded queue right now.\n")
	fmt.Fprintf(w, "# TYPE simd_queue_depth gauge\n")
	fmt.Fprintf(w, "simd_queue_depth %d\n", s.queue.Depth())
	fmt.Fprintf(w, "# HELP simd_queue_capacity Bound of the pending-job queue.\n")
	fmt.Fprintf(w, "# TYPE simd_queue_capacity gauge\n")
	fmt.Fprintf(w, "simd_queue_capacity %d\n", s.queue.Capacity())
	fmt.Fprintf(w, "# HELP simd_jobs_pending Jobs waiting in the bounded queue.\n")
	fmt.Fprintf(w, "# TYPE simd_jobs_pending gauge\n")
	fmt.Fprintf(w, "simd_jobs_pending %d\n", queued)
	fmt.Fprintf(w, "# HELP simd_jobs_running Jobs currently executing.\n")
	fmt.Fprintf(w, "# TYPE simd_jobs_running gauge\n")
	fmt.Fprintf(w, "simd_jobs_running %d\n", running)
	fmt.Fprintf(w, "# HELP simd_jobs_finished_total Jobs finished by outcome.\n")
	fmt.Fprintf(w, "# TYPE simd_jobs_finished_total counter\n")
	fmt.Fprintf(w, "simd_jobs_finished_total{state=\"done\"} %d\n", completed)
	fmt.Fprintf(w, "simd_jobs_finished_total{state=\"failed\"} %d\n", failed)

	fmt.Fprintf(w, "# HELP simd_panics_total Handler panics recovered by the middleware.\n")
	fmt.Fprintf(w, "# TYPE simd_panics_total counter\n")
	fmt.Fprintf(w, "simd_panics_total %d\n", s.panics.Load())

	retained, pinnedTraces := s.tracer.Stats()
	fmt.Fprintf(w, "# HELP simd_exec_traces Execution traces retained for /debug/traces.\n")
	fmt.Fprintf(w, "# TYPE simd_exec_traces gauge\n")
	fmt.Fprintf(w, "simd_exec_traces %d\n", retained)
	fmt.Fprintf(w, "# HELP simd_exec_traces_pinned Traces pinned by tail sampling (errors and slow requests).\n")
	fmt.Fprintf(w, "# TYPE simd_exec_traces_pinned gauge\n")
	fmt.Fprintf(w, "simd_exec_traces_pinned %d\n", pinnedTraces)

	published, dropped, subscribers := s.events.Stats()
	fmt.Fprintf(w, "# HELP simd_events_published_total Events published on the live job feed.\n")
	fmt.Fprintf(w, "# TYPE simd_events_published_total counter\n")
	fmt.Fprintf(w, "simd_events_published_total %d\n", published)
	fmt.Fprintf(w, "# HELP simd_events_dropped_total Events coalesced or dropped by the slow-subscriber policy.\n")
	fmt.Fprintf(w, "# TYPE simd_events_dropped_total counter\n")
	fmt.Fprintf(w, "simd_events_dropped_total %d\n", dropped)
	fmt.Fprintf(w, "# HELP simd_event_subscribers Live event-feed subscriptions.\n")
	fmt.Fprintf(w, "# TYPE simd_event_subscribers gauge\n")
	fmt.Fprintf(w, "simd_event_subscribers %d\n", subscribers)

	// Runtime self-telemetry, sampled at scrape time.
	rt := obs.SampleRuntime()
	fmt.Fprintf(w, "# HELP simd_go_heap_bytes Live heap object bytes (runtime/metrics).\n")
	fmt.Fprintf(w, "# TYPE simd_go_heap_bytes gauge\n")
	fmt.Fprintf(w, "simd_go_heap_bytes %d\n", rt.HeapBytes)
	fmt.Fprintf(w, "# HELP simd_go_goroutines Live goroutines.\n")
	fmt.Fprintf(w, "# TYPE simd_go_goroutines gauge\n")
	fmt.Fprintf(w, "simd_go_goroutines %d\n", rt.Goroutines)
	fmt.Fprintf(w, "# HELP simd_go_gc_cycles_total Completed GC cycles.\n")
	fmt.Fprintf(w, "# TYPE simd_go_gc_cycles_total counter\n")
	fmt.Fprintf(w, "simd_go_gc_cycles_total %d\n", rt.GCCycles)
	fmt.Fprintf(w, "# HELP simd_go_gc_pause_seconds GC stop-the-world pause latency quantiles since process start.\n")
	fmt.Fprintf(w, "# TYPE simd_go_gc_pause_seconds gauge\n")
	fmt.Fprintf(w, "simd_go_gc_pause_seconds{quantile=\"0.5\"} %g\n", rt.GCPause.P50)
	fmt.Fprintf(w, "simd_go_gc_pause_seconds{quantile=\"0.99\"} %g\n", rt.GCPause.P99)
	fmt.Fprintf(w, "simd_go_gc_pause_seconds{quantile=\"max\"} %g\n", rt.GCPause.Max)
	fmt.Fprintf(w, "# HELP simd_go_sched_latency_seconds Goroutine scheduling latency quantiles since process start.\n")
	fmt.Fprintf(w, "# TYPE simd_go_sched_latency_seconds gauge\n")
	fmt.Fprintf(w, "simd_go_sched_latency_seconds{quantile=\"0.5\"} %g\n", rt.SchedLatency.P50)
	fmt.Fprintf(w, "simd_go_sched_latency_seconds{quantile=\"0.99\"} %g\n", rt.SchedLatency.P99)
	fmt.Fprintf(w, "simd_go_sched_latency_seconds{quantile=\"max\"} %g\n", rt.SchedLatency.Max)

	// Crash-safety rows appear only on a durable server.
	if s.journal != nil {
		entries, torn := s.journal.Stats()
		fmt.Fprintf(w, "# HELP simd_journal_entries Live entries in the job journal.\n")
		fmt.Fprintf(w, "# TYPE simd_journal_entries gauge\n")
		fmt.Fprintf(w, "simd_journal_entries %d\n", entries)
		fmt.Fprintf(w, "# HELP simd_journal_quarantined_bytes Torn-tail bytes quarantined at boot.\n")
		fmt.Fprintf(w, "# TYPE simd_journal_quarantined_bytes gauge\n")
		fmt.Fprintf(w, "simd_journal_quarantined_bytes %d\n", torn)
		fmt.Fprintf(w, "# HELP simd_journal_errors_total Journal appends that failed (non-fatal).\n")
		fmt.Fprintf(w, "# TYPE simd_journal_errors_total counter\n")
		fmt.Fprintf(w, "simd_journal_errors_total %d\n", s.journalErrs.Load())
		fmt.Fprintf(w, "# HELP simd_jobs_recovered_total Jobs recovered by boot replay.\n")
		fmt.Fprintf(w, "# TYPE simd_jobs_recovered_total counter\n")
		fmt.Fprintf(w, "simd_jobs_recovered_total{state=\"requeued\"} %d\n", s.recRequeued.Load())
		fmt.Fprintf(w, "simd_jobs_recovered_total{state=\"restored\"} %d\n", s.recRestored.Load())
	}
	if s.resultsStore != nil {
		count, quarantined := s.resultsStore.Stats()
		fmt.Fprintf(w, "# HELP simd_results_stored Durable results resident on disk.\n")
		fmt.Fprintf(w, "# TYPE simd_results_stored gauge\n")
		fmt.Fprintf(w, "simd_results_stored %d\n", count)
		fmt.Fprintf(w, "# HELP simd_results_quarantined Corrupt result files moved aside at boot.\n")
		fmt.Fprintf(w, "# TYPE simd_results_quarantined gauge\n")
		fmt.Fprintf(w, "simd_results_quarantined %d\n", quarantined)
		fmt.Fprintf(w, "# HELP simd_result_persist_errors_total Result persists that failed (non-fatal).\n")
		fmt.Fprintf(w, "# TYPE simd_result_persist_errors_total counter\n")
		fmt.Fprintf(w, "simd_result_persist_errors_total %d\n", s.persistErrs.Load())
	}
}
