package service

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/units"
)

// miniFESpecs is the MiniFE-like decomposition in wire form.
func miniFESpecs() []StructureSpec {
	return []StructureSpec{
		{Name: "csr-matrix", Footprint: "10GB", SeqBytes: 100e9},
		{Name: "cg-vectors", Footprint: "2GB", SeqBytes: 40e9},
		{Name: "mesh-metadata", Footprint: "8GB", SeqBytes: 1e9},
		{Name: "io-buffers", Footprint: "20GB", SeqBytes: 0.5e9},
	}
}

// TestAdviseMatchesInProcessOptimizer pins the acceptance criterion:
// the HTTP answer must match a direct placement.Optimizer.Advise run
// exactly — same ranking, same times, same assignments.
func TestAdviseMatchesInProcessOptimizer(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()

	resp, err := c.Advise(ctx, AdviseRequest{Structures: miniFESpecs(), Threads: 64})
	if err != nil {
		t.Fatal(err)
	}

	sys, err := core.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	opt := &placement.Optimizer{Machine: sys.Machine, Threads: 64}
	structs := []placement.Structure{
		{Name: "cg-vectors", Footprint: units.GB(2), SeqBytes: 40e9},
		{Name: "csr-matrix", Footprint: units.GB(10), SeqBytes: 100e9},
		{Name: "io-buffers", Footprint: units.GB(20), SeqBytes: 0.5e9},
		{Name: "mesh-metadata", Footprint: units.GB(8), SeqBytes: 1e9},
	}
	want, err := opt.Advise(structs)
	if err != nil {
		t.Fatal(err)
	}

	if got := resp.Advice.Best; got != want.Best().Label() {
		t.Fatalf("service best = %q, optimizer best = %q", got, want.Best().Label())
	}
	if len(resp.Advice.Options) != len(want.Options) {
		t.Fatalf("option count %d != %d", len(resp.Advice.Options), len(want.Options))
	}
	for i, wire := range resp.Advice.Options {
		direct := want.Options[i]
		if wire.Mode != direct.Mode || wire.Config != direct.Config.String() {
			t.Errorf("rank %d: wire (%s, %s) != direct (%s, %v)", i, wire.Mode, wire.Config, direct.Mode, direct.Config)
		}
		if wire.TimeNS != float64(direct.Time) {
			t.Errorf("rank %d: time %v != %v", i, wire.TimeNS, direct.Time)
		}
		if math.Abs(wire.SpeedupVsDRAM-direct.SpeedupVsDRAM) > 1e-12 {
			t.Errorf("rank %d: speedup %v != %v", i, wire.SpeedupVsDRAM, direct.SpeedupVsDRAM)
		}
		for name, hbm := range direct.Assignment {
			wantBind := "ddr"
			if hbm {
				wantBind = "hbm"
			}
			if wire.Assignments[name] != wantBind {
				t.Errorf("rank %d: %s bound to %q, want %q", i, name, wire.Assignments[name], wantBind)
			}
		}
	}
}

func TestAdviseCacheHitForSpelledDifferentlyFootprints(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()

	first, err := c.Advise(ctx, AdviseRequest{Workload: "GUPS", Size: "8GB", Threads: 64})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first advise marked cached")
	}
	// 8192MB == 8GB: must share the content-addressed entry.
	second, err := c.Advise(ctx, AdviseRequest{Workload: "GUPS", Size: "8192MB", Threads: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("spelled-differently advise not served from cache")
	}
	if first.Key != second.Key {
		t.Fatalf("keys differ: %s vs %s", first.Key, second.Key)
	}
	if second.Advice.Best != first.Advice.Best {
		t.Fatalf("cached advice differs: %q vs %q", second.Advice.Best, first.Advice.Best)
	}

	// Same spelling trick for explicit structure sets.
	a, err := c.Advise(ctx, AdviseRequest{Structures: []StructureSpec{
		{Name: "x", Footprint: "4GB", SeqBytes: 1e9},
	}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Advise(ctx, AdviseRequest{Structures: []StructureSpec{
		{Name: "x", Footprint: "4096MB", SeqBytes: 1e9},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Cached || a.Key != b.Key {
		t.Fatalf("structure-form spellings not shared: cached=%v keys %s vs %s", b.Cached, a.Key, b.Key)
	}
}

func TestAdviseErrorPaths(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()

	cases := []struct {
		name string
		req  AdviseRequest
		want string // substring of the error
	}{
		{"empty request", AdviseRequest{}, "no workload and no structures"},
		{"unknown workload", AdviseRequest{Workload: "HPCG", Size: "8GB"}, "unknown workload"},
		{"unknown sku", AdviseRequest{Workload: "GUPS", Size: "8GB", SKU: "9999"}, "unknown SKU"},
		{"workload without size", AdviseRequest{Workload: "GUPS"}, "needs a size"},
		{"bad size", AdviseRequest{Workload: "GUPS", Size: "wat"}, ""},
		{"both forms", AdviseRequest{Workload: "GUPS", Size: "8GB", Structures: miniFESpecs()}, "not both"},
		{"empty structure list via size-less request", AdviseRequest{Structures: []StructureSpec{}}, "no workload and no structures"},
		{"over-capacity structures", AdviseRequest{Structures: []StructureSpec{
			{Name: "huge", Footprint: "200GB", SeqBytes: 1e9},
		}}, "decompose"},
		{"unnamed structure", AdviseRequest{Structures: []StructureSpec{
			{Name: "", Footprint: "1GB", SeqBytes: 1e9},
		}}, "needs a name"},
		{"bad structure footprint", AdviseRequest{Structures: []StructureSpec{
			{Name: "x", Footprint: "-3GB"},
		}}, ""},
		{"zero-traffic structures", AdviseRequest{Structures: []StructureSpec{
			{Name: "idle", Footprint: "1GB"},
		}}, "no traffic"},
	}
	for _, tc := range cases {
		_, err := c.Advise(ctx, tc.req)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), "HTTP 400") {
			t.Errorf("%s: want HTTP 400, got %v", tc.name, err)
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v missing %q", tc.name, err, tc.want)
		}
	}

	// Errors are never cached: a failing request followed by a valid
	// one with the same key prefix must still compute.
	if _, err := c.Advise(ctx, AdviseRequest{Workload: "GUPS", Size: "4GB"}); err != nil {
		t.Fatalf("valid advise after failures: %v", err)
	}
}

func TestAdviseCampaignSweep(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()

	spec := campaign.Spec{
		Name:      "mode map",
		Fidelity:  campaign.FidelityAdvise,
		Workloads: []string{"STREAM", "GUPS"},
		Sizes:     []string{"2GB", "8GB", "32GB"},
		Threads:   []int{64},
	}
	resp, err := c.SubmitCampaign(ctx, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	res := resp.Result
	if res == nil || res.Points != 6 {
		t.Fatalf("advise campaign result: %+v", res)
	}
	found := 0
	for _, tbl := range res.Tables {
		if strings.Contains(tbl, "recommended") {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("want 2 advise tables, got %d:\n%s", found, strings.Join(res.Tables, "\n"))
	}
	// Every advise point must carry its summary on the wire.
	for _, r := range res.Results {
		if r.Fidelity != campaign.FidelityAdvise {
			t.Errorf("point fidelity %q", r.Fidelity)
		}
		if r.Advice == nil || len(r.Advice.Options) == 0 {
			t.Errorf("point %s has no advice payload", r.Key)
		}
	}

	// Resubmission is a campaign-cache hit.
	again, err := c.SubmitCampaign(ctx, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Result.Cached {
		t.Error("advise campaign resubmission not served from cache")
	}
}

func TestRunAdviseFidelityCollapsesConfig(t *testing.T) {
	// /v1/run with fidelity=advise must canonicalize the config away,
	// exactly like Spec.Expand: differing (or absent) config spellings
	// share one point-cache entry.
	_, c := newTestServer(t)
	ctx := context.Background()

	first, err := c.Run(ctx, RunRequest{Workload: "GUPS", Size: "8GB", Threads: 64, Fidelity: campaign.FidelityAdvise, Config: "hbm"})
	if err != nil {
		t.Fatal(err)
	}
	if first.Advice == nil {
		t.Fatal("advise run carries no advice payload")
	}
	second, err := c.Run(ctx, RunRequest{Workload: "GUPS", Size: "8192MB", Threads: 64, Fidelity: campaign.FidelityAdvise, Config: "dram"})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || first.Key != second.Key {
		t.Fatalf("advise runs with different configs did not share a cache entry: cached=%v keys %s vs %s",
			second.Cached, first.Key, second.Key)
	}
	// Config is optional for advise fidelity.
	third, err := c.Run(ctx, RunRequest{Workload: "GUPS", Size: "8GB", Threads: 64, Fidelity: campaign.FidelityAdvise})
	if err != nil {
		t.Fatal(err)
	}
	if !third.Cached || third.Key != first.Key {
		t.Fatalf("config-less advise run missed the cache: %+v", third)
	}
}

func TestAdviseCampaignOverCapacitySizeIsUnavailable(t *testing.T) {
	// One size beyond the node must not fail the sweep: it renders as
	// a dash row, exactly like model fidelity's "no bar" points.
	_, c := newTestServer(t)
	resp, err := c.SubmitCampaign(context.Background(), campaign.Spec{
		Fidelity:  campaign.FidelityAdvise,
		Workloads: []string{"GUPS"},
		Sizes:     []string{"8GB", "200GB"},
		Threads:   []int{64},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Job.State != JobDone || resp.Result == nil {
		t.Fatalf("sweep with one over-capacity size failed: %+v", resp.Job)
	}
	var unavailable int
	for _, r := range resp.Result.Results {
		if r.Unavailable != "" {
			unavailable++
		}
	}
	if unavailable != 1 {
		t.Fatalf("want exactly 1 unavailable point, got %d: %+v", unavailable, resp.Result.Results)
	}
	if len(resp.Result.Tables) != 1 || !strings.Contains(resp.Result.Tables[0], "200.00") {
		t.Fatalf("over-capacity row missing from table:\n%v", resp.Result.Tables)
	}
}

func TestAdviseKeyDistinguishesCloseTraffic(t *testing.T) {
	// Traffic values that agree to 6 significant digits are still
	// different requests; the key serializes float bit patterns.
	a := AdviseRequest{Structures: []StructureSpec{{Name: "x", Footprint: "1GB", SeqBytes: 100000001}}}
	b := AdviseRequest{Structures: []StructureSpec{{Name: "x", Footprint: "1GB", SeqBytes: 100000002}}}
	qa, err := a.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	qb, err := b.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if qa.Key() == qb.Key() {
		t.Fatal("near-equal traffic values collide to one cache key")
	}
}

func TestAdviseKeyInjectiveAgainstDelimiterNames(t *testing.T) {
	// A structure name containing the key delimiters must not collide
	// with a differently-shaped structure set.
	twoStructs := AdviseRequest{Structures: []StructureSpec{
		{Name: "x", Footprint: "1GB"},
		{Name: "y", Footprint: "1GB"},
	}}
	injected := AdviseRequest{Structures: []StructureSpec{
		{Name: "x:1073741824:0:0:0:0|s=y", Footprint: "1GB"},
	}}
	qa, err := twoStructs.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	qb, err := injected.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if qa.Key() == qb.Key() {
		t.Fatal("delimiter-injected structure name collides with a different structure set")
	}
}

func TestAdviseWorkloadFormMatchesDerivedStructures(t *testing.T) {
	// The workload form must be exactly the derived-structure run: the
	// service resolves GUPS at 8GB to WorkloadStructures("Random", 8GB).
	_, c := newTestServer(t)
	ctx := context.Background()
	viaWorkload, err := c.Advise(ctx, AdviseRequest{Workload: "GUPS", Size: "8GB", Threads: 64})
	if err != nil {
		t.Fatal(err)
	}
	structs, err := placement.WorkloadStructures("Random", units.GB(8))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	want, err := (&placement.Optimizer{Machine: sys.Machine, Threads: 64}).Advise(structs)
	if err != nil {
		t.Fatal(err)
	}
	if viaWorkload.Advice.Best != want.Best().Label() {
		t.Errorf("workload-form best %q != derived %q", viaWorkload.Advice.Best, want.Best().Label())
	}
	if len(viaWorkload.Structures) != len(structs) {
		t.Errorf("echoed %d structures, want %d", len(viaWorkload.Structures), len(structs))
	}
}

func TestRenderAdvice(t *testing.T) {
	_, c := newTestServer(t)
	resp, err := c.Advise(context.Background(), AdviseRequest{Structures: miniFESpecs()})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderAdvice(resp)
	for _, want := range []string{"rank", "vs DDR", "vs cache", "headroom", "MEMKIND"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}
