package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"

	"repro/internal/campaign"
	"repro/internal/faultfs"
	"repro/internal/journal"
)

// This file is the crash-safety boot path. A durable server keeps two
// stores under its data directory:
//
//	<data>/journal.log   — CRC-framed job journal (accepted/terminal)
//	<data>/results/      — one content-addressed file per result
//
// NewDurableServer replays both: persisted results warm the caches
// (so a restarted service answers repeat queries without recomputing)
// and journal entries with no terminal record are re-enqueued under
// their original job IDs. Re-execution is idempotent — every job is
// content-addressed, so a re-run of work that actually finished just
// hits the warmed cache.

// RecoveryStats summarizes what boot replay restored; cmd/simd logs
// it and /metrics exposes the counts.
type RecoveryStats struct {
	// Results is how many persisted results warmed the caches;
	// ResultsQuarantined how many corrupt result files were moved
	// aside, never served.
	Results            int
	ResultsQuarantined int64
	// JournalEntries is the live entry count after compaction;
	// TornBytes how many torn-tail bytes Open quarantined.
	JournalEntries int64
	TornBytes      int64
	// Restored counts finished jobs answerable again via
	// /v1/jobs/{id}; Requeued counts interrupted jobs re-enqueued;
	// RequeueFailed counts jobs that did not fit the queue (they stay
	// journaled and are retried next boot).
	Restored      int
	Requeued      int
	RequeueFailed int
}

// NewDurableServer builds a server whose job journal and result store
// live under opt.DataDir, replaying both before it serves traffic.
// TraceDir defaults to <DataDir>/traces so one directory carries the
// full service state.
func NewDurableServer(opt Options) (*Server, RecoveryStats, error) {
	var rec RecoveryStats
	if opt.DataDir == "" {
		return nil, rec, errors.New("service: durable server needs a data directory")
	}
	if opt.TraceDir == "" {
		opt.TraceDir = filepath.Join(opt.DataDir, "traces")
	}
	fsys := opt.DataFS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	s := NewServer(opt)

	results, err := journal.OpenResultsFS(fsys, filepath.Join(opt.DataDir, "results"))
	if err != nil {
		return nil, rec, err
	}
	jnl, entries, err := journal.OpenFS(fsys, opt.DataDir)
	if err != nil {
		return nil, rec, err
	}

	rec.Results, err = results.Load(func(kind, key string, value json.RawMessage) {
		s.seedResult(kind, key, value)
	})
	if err != nil {
		jnl.Close()
		return nil, rec, err
	}

	// Fold the journal into one final state per job. Entries are
	// mostly in append order, but a terminal record CAN precede its
	// accepted record (the job raced to completion while the handler
	// was still journaling), so terminal always wins regardless of
	// position.
	type jobRecord struct {
		accepted *journal.Entry
		terminal *journal.Entry
	}
	byJob := make(map[string]*jobRecord)
	var order []string
	for i := range entries {
		e := &entries[i]
		jr, ok := byJob[e.Job]
		if !ok {
			jr = &jobRecord{}
			byJob[e.Job] = jr
			order = append(order, e.Job)
		}
		switch e.State {
		case journal.StateAccepted:
			if jr.accepted == nil {
				jr.accepted = e
			}
		case journal.StateDone, journal.StateFailed:
			jr.terminal = e
		case journal.StateInterrupted:
			// Informational: the accepted record carries the spec the
			// re-enqueue needs.
		}
	}

	// Compact before re-enqueueing anything: the journal shrinks to
	// one terminal record per finished job plus the accepted records
	// still owed an execution, bounding growth across restarts.
	var keep []journal.Entry
	for _, id := range order {
		jr := byJob[id]
		switch {
		case jr.terminal != nil:
			keep = append(keep, *jr.terminal)
		case jr.accepted != nil:
			keep = append(keep, *jr.accepted)
		}
	}
	if err := jnl.Compact(keep); err != nil {
		jnl.Close()
		return nil, rec, err
	}
	s.journal = jnl
	s.resultsStore = results

	for _, id := range order {
		jr := byJob[id]
		if jr.terminal != nil {
			s.restoreFinished(jr.terminal)
			rec.Restored++
			continue
		}
		if jr.accepted == nil {
			continue // interrupted-only record; nothing replayable
		}
		var spec campaign.Spec
		if err := json.Unmarshal(jr.accepted.Spec, &spec); err != nil {
			// A spec that no longer decodes cannot be re-run; close it
			// out so it stops haunting every boot.
			s.journalAppend(journal.Entry{
				State: journal.StateFailed, Job: id, Kind: jr.accepted.Kind, Key: jr.accepted.Key,
				Error: fmt.Sprintf("unreplayable journaled spec: %v", err),
			})
			continue
		}
		_, err := s.queue.SubmitJob(jr.accepted.Kind,
			JobOptions{ID: id, Timeout: s.jobTimeout, RequestID: jr.accepted.Req},
			s.campaignJob(id, jr.accepted.Key, jr.accepted.Req, spec))
		if err != nil {
			// A backlog wider than the queue: leave the accepted record
			// in place — the next boot retries the remainder.
			rec.RequeueFailed++
			continue
		}
		rec.Requeued++
	}
	s.recRequeued.Store(int64(rec.Requeued))
	s.recRestored.Store(int64(rec.Restored))
	rec.JournalEntries, rec.TornBytes = jnl.Stats()
	_, rec.ResultsQuarantined = results.Stats()
	return s, rec, nil
}

// restoreFinished registers one terminal journal record with the
// queue so GET /v1/jobs/{id} keeps answering across restarts, and
// reattaches the campaign result when the warmed cache holds it.
func (s *Server) restoreFinished(e *journal.Entry) {
	info := JobInfo{ID: e.Job, Kind: e.Kind, Done: e.Done, Total: e.Total, Submitted: e.Time, RequestID: e.Req}
	t := e.Time
	info.Started, info.Finished = &t, &t
	if e.State == journal.StateDone {
		info.State = JobDone
	} else {
		info.State = JobFailed
		info.Error = e.Error
	}
	s.queue.RestoreFinished(info)
	if e.State == journal.StateDone && e.Kind == "campaign" && e.Key != "" {
		if res, ok := s.campaigns.Peek(e.Key); ok {
			s.mu.Lock()
			s.results[e.Job] = res
			s.mu.Unlock()
		}
	}
}

// seedResult warms one cache from a persisted result. A value that no
// longer unmarshals (a schema drifted across versions) is skipped —
// the cache recomputes on demand, which is always safe.
func (s *Server) seedResult(kind, key string, value json.RawMessage) {
	switch kind {
	case "point":
		var v campaign.Outcome
		if json.Unmarshal(value, &v) == nil {
			s.points.Seed(key, v)
		}
	case "campaign":
		var v CampaignResult
		if json.Unmarshal(value, &v) == nil {
			s.campaigns.Seed(key, &v)
		}
	case "experiment":
		var v ExperimentResult
		if json.Unmarshal(value, &v) == nil {
			s.experiments.Seed(key, v)
		}
	case "advise":
		var v AdviseResponse
		if json.Unmarshal(value, &v) == nil {
			s.advices.Seed(key, v)
		}
	case "cluster":
		var v ClusterResponse
		if json.Unmarshal(value, &v) == nil {
			s.clusters.Seed(key, v)
		}
	case "replay":
		var v ReplayResponse
		if json.Unmarshal(value, &v) == nil {
			s.replays.Seed(key, v)
		}
	}
}
