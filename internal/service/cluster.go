package service

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/keys"
	"repro/internal/units"
)

// This file is the multi-node endpoint: POST /v1/cluster asks "how
// does this workload scale when its global problem is decomposed over
// N KNL nodes, and at which node count do the sub-problems first fit
// HBM?" — the paper's §IV-C argument served as a query. The model is
// internal/cluster (bulk-synchronous iterations over an Aries-like
// interconnect); answers are cached behind the same content-addressed
// singleflight cache as every other query, and the same engine backs
// cluster-fidelity campaign points.

// InterconnectSpec overrides the network between nodes in wire
// vocabulary. The zero spec (or an absent one) means the testbed's
// Cray Aries.
type InterconnectSpec struct {
	// Name labels the network in responses ("Cray Aries").
	Name string `json:"name,omitempty"`
	// LatencyNS is the one-way small-message latency.
	LatencyNS float64 `json:"latency_ns,omitempty"`
	// BandwidthGBs is the per-node injection bandwidth.
	BandwidthGBs float64 `json:"bandwidth_gbs,omitempty"`
}

// ClusterRequest asks for a node-count scaling sweep of one workload.
type ClusterRequest struct {
	// Workload names a registered workload.
	Workload string `json:"workload"`
	// Size is the GLOBAL problem, decomposed across the nodes.
	Size string `json:"size"`
	// Threads is the per-node thread count (default 64).
	Threads int `json:"threads,omitempty"`
	// SKU selects the per-node machine preset (default 7210).
	SKU string `json:"sku,omitempty"`
	// Nodes lists the node counts to sweep (default 1,2,4,8,12,16).
	Nodes []int `json:"nodes,omitempty"`
	// WorkingSetFactor inflates the per-node footprint for the
	// capacity sweet-spot rule (default 1; MiniFE-like workloads carry
	// auxiliary state beyond the raw decomposition).
	WorkingSetFactor float64 `json:"working_set_factor,omitempty"`
	// Interconnect overrides the network (default Cray Aries).
	Interconnect *InterconnectSpec `json:"interconnect,omitempty"`
}

// ClusterRow is one node count of the scaling sweep: the shared
// campaign.ClusterStats cost split (flattened into the row's JSON) —
// or the reason the decomposition cannot run (Unavailable, the
// paper's "no bar"). The cost fields carry no omitempty: a 1-node
// sweep has a legitimately zero reduce_ns (no allreduce partners) and
// available rows always serialize their full compute/halo/reduce
// split.
type ClusterRow struct {
	Nodes int `json:"nodes"`
	campaign.ClusterStats
	Unavailable string `json:"unavailable,omitempty"`
}

// ClusterResponse is the scaling answer: the canonical echo of the
// resolved request, one row per node count, and the decomposition
// advisor's verdicts.
type ClusterResponse struct {
	Workload string `json:"workload"`
	// Size is the canonical global problem size.
	Size    string `json:"size"`
	Threads int    `json:"threads"`
	SKU     string `json:"sku"`
	// Network names the interconnect the sweep assumed.
	Network string `json:"network"`
	// WorkingSetFactor echoes the capacity-rule inflation factor.
	WorkingSetFactor float64 `json:"working_set_factor"`
	// Key is the content address the answer is cached under.
	Key string `json:"key"`
	// Rows holds one entry per swept node count, ascending.
	Rows []ClusterRow `json:"rows"`
	// MinHBMNodes is the smallest swept node count whose best per-node
	// configuration binds to HBM (0 when none does) — the empirical
	// §IV-C answer.
	MinHBMNodes int `json:"min_hbm_nodes"`
	// CapacityNodes is the analytic capacity rule: the smallest node
	// count at which size*factor/nodes fits the HBM capacity.
	CapacityNodes int `json:"capacity_nodes"`
	// Cached marks responses served from the content-addressed cache.
	Cached    bool    `json:"cached"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// clusterQuery is the canonical resolved form of a ClusterRequest:
// the unit of execution and caching.
type clusterQuery struct {
	workload string
	size     units.Bytes
	threads  int
	sku      string
	nodes    []int // ascending, deduplicated
	factor   float64
	network  cluster.Interconnect
}

// Resolve canonicalizes the request: the size parses to bytes (so
// "120GB" and "122880MB" sweep identically), node counts sort and
// deduplicate, defaults fill in. Validation errors here map to HTTP
// 400.
func (r ClusterRequest) Resolve() (clusterQuery, error) {
	q := clusterQuery{workload: r.Workload, threads: r.Threads, sku: r.SKU, factor: r.WorkingSetFactor}
	if q.workload == "" {
		return clusterQuery{}, fmt.Errorf("service: cluster request names no workload")
	}
	if r.Size == "" {
		return clusterQuery{}, fmt.Errorf("service: cluster request for workload %q needs a global size", r.Workload)
	}
	size, err := units.ParseBytes(r.Size)
	if err != nil {
		return clusterQuery{}, err
	}
	if size <= 0 {
		return clusterQuery{}, fmt.Errorf("service: size %q must be positive", r.Size)
	}
	q.size = size
	if q.threads <= 0 {
		q.threads = 64
	}
	if q.sku == "" {
		q.sku = campaign.DefaultSKU
	}
	if q.factor == 0 {
		q.factor = 1
	}
	if q.factor < 1 {
		return clusterQuery{}, fmt.Errorf("service: working set factor %v must be >= 1", q.factor)
	}
	nodes := r.Nodes
	if len(nodes) == 0 {
		nodes = campaign.DefaultNodeCounts()
	}
	seen := make(map[int]bool)
	for _, n := range nodes {
		if n < 1 {
			return clusterQuery{}, fmt.Errorf("service: node count %d must be >= 1", n)
		}
		if !seen[n] {
			seen[n] = true
			q.nodes = append(q.nodes, n)
		}
	}
	sort.Ints(q.nodes)
	q.network = cluster.Aries()
	if r.Interconnect != nil {
		q.network = cluster.Interconnect{
			Name:         r.Interconnect.Name,
			LatencyNS:    r.Interconnect.LatencyNS,
			BandwidthGBs: r.Interconnect.BandwidthGBs,
		}
		if q.network.Name == "" {
			q.network.Name = "custom"
		}
		if err := q.network.Validate(); err != nil {
			return clusterQuery{}, err
		}
	}
	return q, nil
}

// Key content-addresses the canonical query, mirroring
// campaign.Point.Key: equal resolved requests — however their sizes
// were spelled — hash equal.
func (q clusterQuery) Key() string {
	b := keys.New("cluster").
		Str("w", q.workload).
		Int("b", int64(q.size)).
		Int("t", int64(q.threads)).
		Str("sku", q.sku).
		Float("wsf", q.factor).
		Str("net", q.network.Name).
		Float("lat", q.network.LatencyNS).
		Float("bw", q.network.BandwidthGBs)
	for _, n := range q.nodes {
		b.Int("n", int64(n))
	}
	return b.Sum()
}

// clusterStats converts one Iterate result to the shared wire stats —
// the single place the cost split is copied, used by the sweep rows,
// the campaign points and (via embedding) the rendering.
func clusterStats(perNode units.Bytes, r cluster.IterationResult) campaign.ClusterStats {
	return campaign.ClusterStats{
		PerNodeSize: perNode.String(),
		Config:      r.Config.String(),
		ComputeNS:   r.ComputeNS,
		HaloNS:      r.HaloNS,
		ReduceNS:    r.ReduceNS,
		TotalNS:     r.TotalNS,
		Efficiency:  r.Efficiency,
		FitsHBM:     r.Config.Kind == engine.BindHBM,
	}
}

// ClusterSweep runs the scaling sweep for a resolved query. This is
// the uncached execution path; the server wraps it in the
// content-addressed cache.
func (e *Executor) ClusterSweep(q clusterQuery) (ClusterResponse, error) {
	sys, err := e.System(q.sku)
	if err != nil {
		return ClusterResponse{}, err
	}
	mdl, err := sys.Workload(q.workload)
	if err != nil {
		return ClusterResponse{}, err
	}
	resp := ClusterResponse{
		Workload:         q.workload,
		Size:             q.size.String(),
		Threads:          q.threads,
		SKU:              q.sku,
		Network:          q.network.Name,
		WorkingSetFactor: q.factor,
		Key:              q.Key(),
	}
	for _, n := range q.nodes {
		c, err := cluster.New(sys.Machine, n, q.network)
		if err != nil {
			return ClusterResponse{}, err
		}
		perNode := q.size / units.Bytes(n)
		row := ClusterRow{Nodes: n, ClusterStats: campaign.ClusterStats{PerNodeSize: perNode.String()}}
		r, err := c.Iterate(mdl, q.size, q.threads)
		if err != nil {
			// Over-capacity decomposition: the paper prints no bar; the
			// sweep's other node counts still render.
			row.Unavailable = err.Error()
		} else {
			row.ClusterStats = clusterStats(perNode, r)
			if row.FitsHBM && (resp.MinHBMNodes == 0 || n < resp.MinHBMNodes) {
				resp.MinHBMNodes = n
			}
		}
		resp.Rows = append(resp.Rows, row)
	}
	// The analytic capacity rule (ceil(size*factor / HBM)) — the node
	// count the §IV-C argument asks for, whether or not it was swept.
	one, err := cluster.New(sys.Machine, 1, q.network)
	if err != nil {
		return ClusterResponse{}, err
	}
	resp.CapacityNodes, err = one.SweetSpot(q.size, q.factor)
	if err != nil {
		return ClusterResponse{}, err
	}
	return resp, nil
}

// runClusterPoint executes one FidelityCluster campaign point: the
// same multi-node engine under canonical sweep conditions (Aries
// interconnect), recorded as an outcome whose Value is the
// per-iteration time. A decomposition that cannot run anywhere is a
// valid "no bar" outcome, matching RunPoint's contract.
func (e *Executor) runClusterPoint(p campaign.Point) (campaign.Outcome, error) {
	sys, err := e.System(p.SKU)
	if err != nil {
		return campaign.Outcome{}, err
	}
	mdl, err := sys.Workload(p.Workload)
	if err != nil {
		return campaign.Outcome{}, err
	}
	c, err := cluster.New(sys.Machine, p.Nodes, cluster.Aries())
	if err != nil {
		return campaign.Outcome{}, fmt.Errorf("service: %s: %w", p, err)
	}
	out := campaign.Outcome{Point: p, Metric: "iteration ns"}
	r, err := c.Iterate(mdl, p.Size, p.Threads)
	if err != nil {
		out.Unavailable = err.Error()
		return out, nil
	}
	out.Value = r.TotalNS
	stats := clusterStats(p.Size/units.Bytes(p.Nodes), r)
	out.Cluster = &stats
	return out, nil
}

// RenderCluster renders the scaling sweep the way simctl prints it:
// the node-count table (the same row renderer campaign tables use),
// then the decomposition advisor's summary.
func RenderCluster(resp ClusterResponse) string {
	var b strings.Builder
	from := ""
	if resp.Cached {
		from = ", served from cache"
	}
	fmt.Fprintf(&b, "cluster scaling for %s, %s global, %d threads/node (KNL %s over %s%s):\n",
		resp.Workload, resp.Size, resp.Threads, resp.SKU, resp.Network, from)
	b.WriteString(campaign.ClusterTableHeader())
	for _, r := range resp.Rows {
		var stats *campaign.ClusterStats
		if r.Unavailable == "" {
			s := r.ClusterStats
			stats = &s
		}
		b.WriteString(campaign.RenderClusterRow(r.Nodes, stats))
	}
	b.WriteString(campaign.RenderClusterSummary(resp.MinHBMNodes))
	fmt.Fprintf(&b, "capacity rule: %s x %.2g working-set factor needs %d nodes to fit HBM\n",
		resp.Size, resp.WorkingSetFactor, resp.CapacityNodes)
	return b.String()
}
