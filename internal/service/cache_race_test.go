package service

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestCacheChurnRace is the guardedby audit's regression pin: it
// hammers the exact paths the analyzer walks — miss-fill, eviction,
// failed-entry drop (the one place entries and fifo are edited from a
// re-acquired lock) and Peek — from many goroutines at once, then
// checks the entries/fifo bookkeeping stayed exact. Run under
// -race -count=2 it also pins the absence of data races on the
// `guarded by mu` fields.
func TestCacheChurnRace(t *testing.T) {
	c := NewCache[int](8) // tiny bound so eviction churns constantly

	var wg sync.WaitGroup
	errBoom := errors.New("boom")
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				key := fmt.Sprintf("k%03d", i%32)
				fail := (i+g)%5 == 0
				v, _, err := c.GetOrCompute(key, func() (int, error) {
					if fail {
						return 0, errBoom
					}
					return i, nil
				})
				if err == nil && v < 0 {
					t.Errorf("impossible value %d", v)
				}
				c.Peek(key)
			}
		}(g)
	}
	wg.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) != len(c.fifo) {
		t.Fatalf("entries/fifo diverged after churn: %d entries, %d fifo slots", len(c.entries), len(c.fifo))
	}
	if len(c.entries) > c.max {
		t.Fatalf("cache over bound: %d entries, max %d", len(c.entries), c.max)
	}
	for _, key := range c.fifo {
		if _, ok := c.entries[key]; !ok {
			t.Fatalf("fifo holds evicted/dropped key %q", key)
		}
	}
}
