package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/engine"
	"repro/internal/keys"
	"repro/internal/obs"
	"repro/internal/tracesim"
	"repro/internal/tracestore"
	"repro/internal/units"
)

// This file is the stored-trace request path: POST /v1/traces ingests
// a real memory trace into the durable content-addressed store
// (internal/tracestore), GET/DELETE /v1/traces* manage it, and POST
// /v1/replay feeds a stored trace through the scaled functional cache
// hierarchy — the same hierarchy mapping as the synthetic trace
// fidelity, behind its own content-addressed singleflight cache
// (key = trace id + SKU + config + passes + prefetch).
//
// Replay defaults to the scalar simulator so responses are
// byte-identical to an in-process tracesim.Simulator run; requests
// may opt into sharded replay (shards > 1), whose aggregate counts
// AND integer-picosecond replay time are exactly equal (the
// tracestore and tracesim equivalence tests pin this). The shard
// count is an execution hint and is excluded from the cache key.

// errStorage marks server-side trace-storage faults (a corrupted
// block, a vanished file); the HTTP layer maps it to 500, unlike
// request-shaped problems (400) and unknown ids (404).
var errStorage = errors.New("service: trace storage failure")

// maxReplayPasses bounds the replay multi-pass knob.
const maxReplayPasses = 8

// TraceInfo is the wire form of one stored trace's metadata.
type TraceInfo struct {
	// ID is the content address: hex SHA-256 of the canonical access
	// stream, independent of upload format and compression.
	ID string `json:"id"`
	// Accesses, Reads, Writes describe the reference mix.
	Accesses int64 `json:"accesses"`
	Reads    int64 `json:"reads"`
	Writes   int64 `json:"writes"`
	// Footprint is the unique bytes touched (64 B line granularity),
	// in canonical size spelling; FootprintBytes is the raw count.
	Footprint      string `json:"footprint"`
	FootprintBytes int64  `json:"footprint_bytes"`
	// MinAddr and MaxAddr bound the address range.
	MinAddr uint64 `json:"min_addr"`
	MaxAddr uint64 `json:"max_addr"`
	// FileBytes is the encoded size on disk.
	FileBytes int64 `json:"file_bytes"`
}

func traceInfo(m tracestore.Meta) TraceInfo {
	return TraceInfo{
		ID:             m.ID,
		Accesses:       m.Accesses,
		Reads:          m.Reads,
		Writes:         m.Writes,
		Footprint:      m.Footprint().String(),
		FootprintBytes: m.FootprintBytes,
		MinAddr:        m.MinAddr,
		MaxAddr:        m.MaxAddr,
		FileBytes:      m.FileBytes,
	}
}

// TraceUploadResponse is the POST /v1/traces envelope: the stored
// trace plus whether this upload deduplicated against an existing one
// (same content address, no second copy written).
type TraceUploadResponse struct {
	TraceInfo
	Existed   bool    `json:"existed"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// ReplayRequest asks to replay a stored trace through the scaled
// cache hierarchy under one memory configuration.
type ReplayRequest struct {
	// Trace is the stored trace's content address (from upload or
	// GET /v1/traces).
	Trace string `json:"trace"`
	// Config is the memory configuration ("dram", "cache", ...).
	Config string `json:"config"`
	// SKU selects the machine preset (default 7210).
	SKU string `json:"sku,omitempty"`
	// Passes replays the stream N times, measuring the last pass
	// (warm caches); default 1 — a cold replay.
	Passes int `json:"passes,omitempty"`
	// Prefetch enables the stream prefetcher (default true).
	Prefetch *bool `json:"prefetch,omitempty"`
	// Shards is an execution hint: >1 replays through the sharded
	// simulator (power of two). Results are exactly equivalent, so
	// the shard count is not part of the cache key.
	Shards int `json:"shards,omitempty"`
}

// replayQuery is the canonical resolved form of a ReplayRequest: the
// unit of execution and caching.
type replayQuery struct {
	trace    string
	config   engine.MemoryConfig
	sku      string
	passes   int
	prefetch bool
	shards   int // execution only; never part of the key
}

// Resolve canonicalizes the request. Validation errors map to 400.
func (r ReplayRequest) Resolve() (replayQuery, error) {
	q := replayQuery{trace: strings.TrimSpace(r.Trace), sku: r.SKU, passes: r.Passes, prefetch: true, shards: r.Shards}
	if q.trace == "" {
		return replayQuery{}, fmt.Errorf("service: replay request names no trace")
	}
	cfg, err := engine.ParseConfig(r.Config)
	if err != nil {
		return replayQuery{}, err
	}
	q.config = cfg
	if q.sku == "" {
		q.sku = campaign.DefaultSKU
	}
	if q.passes == 0 {
		q.passes = 1
	}
	if q.passes < 1 || q.passes > maxReplayPasses {
		return replayQuery{}, fmt.Errorf("service: passes %d out of range [1, %d]", r.Passes, maxReplayPasses)
	}
	if r.Prefetch != nil {
		q.prefetch = *r.Prefetch
	}
	if q.shards < 0 || (q.shards > 1 && q.shards&(q.shards-1) != 0) {
		return replayQuery{}, fmt.Errorf("service: shards %d must be a power of two", r.Shards)
	}
	if q.shards == 0 {
		q.shards = 1
	}
	return q, nil
}

// Key is the content address of the replay result. Shards are
// excluded: sharded and scalar replay of a stored trace are exactly
// equivalent, so they must share a cache entry.
func (q replayQuery) Key() string {
	return keys.New("replay").
		Str("tr", q.trace).
		Int("k", int64(q.config.Kind)).
		Float("f", q.config.HybridFlatFraction).
		Str("sku", q.sku).
		Int("p", int64(q.passes)).
		Bool("pf", q.prefetch).
		Sum()
}

// ReplayStats is the full counter set of a replay — every field the
// functional simulator reports, so service results are byte-for-byte
// comparable with in-process tracesim runs.
type ReplayStats struct {
	Accesses    int64   `json:"accesses"`
	L1Hits      int64   `json:"l1_hits"`
	L1Misses    int64   `json:"l1_misses"`
	L2Hits      int64   `json:"l2_hits"`
	L2Misses    int64   `json:"l2_misses"`
	MCHits      int64   `json:"memcache_hits"`
	MCMisses    int64   `json:"memcache_misses"`
	MemReads    int64   `json:"mem_reads"`
	MemWrites   int64   `json:"mem_writes"`
	Prefetches  int64   `json:"prefetches"`
	TotalTimeNS float64 `json:"total_time_ns"`
}

func replayStats(r tracesim.Result) ReplayStats {
	return ReplayStats{
		Accesses:    r.Accesses,
		L1Hits:      r.L1.Hits,
		L1Misses:    r.L1.Misses,
		L2Hits:      r.L2.Hits,
		L2Misses:    r.L2.Misses,
		MCHits:      r.MemCache.Hits,
		MCMisses:    r.MemCache.Misses,
		MemReads:    r.MemReads,
		MemWrites:   r.MemWrites,
		Prefetches:  r.Prefetches,
		TotalTimeNS: r.TotalTimeNS,
	}
}

// ReplayResponse is one replay of a stored trace.
type ReplayResponse struct {
	Trace  TraceInfo `json:"trace"`
	Config string    `json:"config"`
	SKU    string    `json:"sku"`
	Passes int       `json:"passes"`
	// Prefetch and Shards echo how the result was computed (a cached
	// response reports the shard count of the computing run).
	Prefetch bool `json:"prefetch"`
	Shards   int  `json:"shards"`
	// Key is the content address the result is cached under.
	Key string `json:"key"`
	// Metric/Value is the headline number: mean ns per access.
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
	// Stats is the full hierarchy behaviour.
	Stats     ReplayStats `json:"stats"`
	Cached    bool        `json:"cached"`
	ElapsedMS float64     `json:"elapsed_ms"`
}

// computeReplay opens the stored trace and drives it through the
// functional hierarchy. Cancellation is checked before the replay
// starts; a begun replay runs to completion so a cancelled result is
// never cached half-done.
func (s *Server) computeReplay(ctx context.Context, q replayQuery) (resp ReplayResponse, err error) {
	if err := ctx.Err(); err != nil {
		return ReplayResponse{}, err
	}
	_, span := obs.StartSpan(ctx, "replay")
	span.SetAttr("trace", q.trace)
	defer func() {
		span.SetError(err != nil)
		span.End()
	}()
	st, err := s.traceStore()
	if err != nil {
		return ReplayResponse{}, err
	}
	prov, err := st.Open(q.trace)
	if err != nil {
		return ReplayResponse{}, err
	}
	defer prov.Close()

	cfg, err := s.exec.replayHierarchy(q.sku, q.config)
	if err != nil {
		return ReplayResponse{}, err
	}
	cfg.Prefetcher = q.prefetch

	// Both gears consume the stored trace block-fed: decoded
	// varint-delta blocks are walked in place (tracestore.BlockReader),
	// with no per-access Provider pull and no staging copy. Replay time
	// is integer-picosecond, so block-fed, per-access, scalar and
	// sharded replay all produce byte-identical results — the
	// equivalence suites in tracestore and tracesim pin this.
	var res tracesim.Result
	blocks := prov.Blocks()
	if q.shards > 1 {
		sim, err := tracesim.NewSharded(cfg, q.shards)
		if err != nil {
			return ReplayResponse{}, err
		}
		if res, err = sim.RunBlockPasses(blocks, q.passes); err != nil {
			return ReplayResponse{}, err
		}
	} else {
		sim, err := tracesim.New(cfg)
		if err != nil {
			return ReplayResponse{}, err
		}
		if res, err = sim.RunBlockPasses(blocks, q.passes); err != nil {
			return ReplayResponse{}, err
		}
	}
	if perr := prov.Err(); perr != nil {
		// The stream ended early: the result would silently describe a
		// truncated trace, so fail loudly instead.
		return ReplayResponse{}, fmt.Errorf("%w: %v", errStorage, perr)
	}
	out := ReplayResponse{
		Trace:    traceInfo(prov.Meta()),
		Config:   q.config.String(),
		SKU:      q.sku,
		Passes:   q.passes,
		Prefetch: q.prefetch,
		Shards:   q.shards,
		Key:      q.Key(),
		Metric:   "ns/access",
		Value:    res.AvgLatencyNS(),
		Stats:    replayStats(res),
	}
	s.persistResult("replay", q.Key(), out)
	return out, nil
}

// runReplayPoint executes one FidelityReplay campaign point through
// the replay cache, so campaign sweeps and direct /v1/replay calls of
// the same (trace, config, SKU) share one computation.
func (s *Server) runReplayPoint(ctx context.Context, p campaign.Point) (campaign.Outcome, error) {
	q := replayQuery{trace: p.TraceID, config: p.Config, sku: p.SKU, passes: 1, prefetch: true, shards: 1}
	resp, cached, err := s.replays.GetOrCompute(q.Key(), func() (ReplayResponse, error) {
		return s.computeReplay(ctx, q)
	})
	if err != nil {
		return campaign.Outcome{}, fmt.Errorf("service: %s: %w", p, err)
	}
	return campaign.Outcome{
		Point:  p,
		Metric: resp.Metric,
		Value:  resp.Value,
		Cached: cached,
		Trace: &campaign.TraceStats{
			Accesses:     resp.Stats.Accesses,
			L1HitRate:    hitRatio(resp.Stats.L1Hits, resp.Stats.L1Misses),
			L2HitRate:    hitRatio(resp.Stats.L2Hits, resp.Stats.L2Misses),
			MCHitRate:    hitRatio(resp.Stats.MCHits, resp.Stats.MCMisses),
			MemReads:     resp.Stats.MemReads,
			MemWrites:    resp.Stats.MemWrites,
			AvgLatencyNS: resp.Value,
		},
	}, nil
}

func hitRatio(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// --- HTTP handlers ---------------------------------------------------

// handleTraceUpload is POST /v1/traces: a streaming (chunked-friendly)
// ingest of NDJSON, CSV, gzip of either, or the binary trace format.
// 201 on a new trace, 200 when the content address deduplicated, 413
// beyond the trace body cap, 400 for malformed streams.
func (s *Server) handleTraceUpload(w http.ResponseWriter, r *http.Request) {
	st, err := s.traceStore()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	start := time.Now()
	// The cap is enforced twice: MaxBytesReader bounds the wire bytes,
	// and Ingest bounds the DECODED stream (so a gzip bomb cannot
	// expand past -max-trace server-side).
	body := &countingReader{r: http.MaxBytesReader(w, r.Body, s.maxTrace)}
	meta, existed, err := st.Ingest(body, s.maxTrace)
	if err != nil {
		// A capped body can surface as the MaxBytesError, as
		// ErrTooLarge from the decoded-stream bound, or as a parse
		// error on the truncated tail; all mean the upload exceeded
		// the cap.
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) || errors.Is(err, tracestore.ErrTooLarge) || body.n >= s.maxTrace {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("service: trace upload exceeds the %s body limit (decoded); raise -max-trace on the server", units.Bytes(s.maxTrace)))
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	status := http.StatusCreated
	if existed {
		status = http.StatusOK
	}
	writeJSON(w, status, TraceUploadResponse{
		TraceInfo: traceInfo(meta),
		Existed:   existed,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	})
}

// countingReader tracks how many bytes the ingest consumed, so the
// upload handler can tell "parse error because the cap truncated the
// stream" from a genuinely malformed trace.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// handleTraceList is GET /v1/traces.
func (s *Server) handleTraceList(w http.ResponseWriter, _ *http.Request) {
	st, err := s.traceStore()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	out := []TraceInfo{}
	for _, m := range st.List() {
		out = append(out, traceInfo(m))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTraceGet is GET /v1/traces/{id}.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.traceStore()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	id := r.PathValue("id")
	m, ok := st.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w %q", tracestore.ErrNotFound, id))
		return
	}
	writeJSON(w, http.StatusOK, traceInfo(m))
}

// handleTraceDelete is DELETE /v1/traces/{id}.
func (s *Server) handleTraceDelete(w http.ResponseWriter, r *http.Request) {
	st, err := s.traceStore()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	id := r.PathValue("id")
	if err := st.Delete(id); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, tracestore.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// handleReplay is POST /v1/replay: the synchronous stored-trace
// replay path, behind the content-addressed replay cache.
func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	var req ReplayRequest
	if !s.decodeBody(w, r, "replay request", &req) {
		return
	}
	q, err := req.Resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// A deleted trace must 404 even when earlier replays are still
	// cached; content addressing makes those entries valid again the
	// moment the identical trace is re-uploaded.
	st, err := s.traceStore()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if _, ok := st.Get(q.trace); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w %q", tracestore.ErrNotFound, q.trace))
		return
	}
	start := time.Now()
	resp, cached, err := s.replays.GetOrCompute(q.Key(), func() (ReplayResponse, error) {
		return s.computeReplay(r.Context(), q)
	})
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, tracestore.ErrNotFound):
			status = http.StatusNotFound
		case errors.Is(err, errStorage):
			status = http.StatusInternalServerError
		}
		writeError(w, status, err)
		return
	}
	if cached {
		s.metrics.ObserveLookup("replay", time.Since(start).Seconds())
	}
	resp.Cached = cached
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// RenderTraces renders the trace listing the way simctl prints it.
func RenderTraces(traces []TraceInfo) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %10s %10s %12s %10s\n", "id", "accesses", "reads", "writes", "footprint", "on disk")
	for _, t := range traces {
		fmt.Fprintf(&b, "%-16s %12d %10d %10d %12s %10s\n",
			campaign.ShortTraceID(t.ID), t.Accesses, t.Reads, t.Writes, t.Footprint, units.Bytes(t.FileBytes))
	}
	return b.String()
}

// RenderReplay renders a replay result the way simctl prints it.
func RenderReplay(r ReplayResponse) string {
	var b strings.Builder
	from := "computed"
	if r.Cached {
		from = "served from cache"
	}
	fmt.Fprintf(&b, "replay of trace %s under %s on %s (passes=%d prefetch=%t shards=%d), %s\n",
		campaign.ShortTraceID(r.Trace.ID), r.Config, r.SKU, r.Passes, r.Prefetch, r.Shards, from)
	fmt.Fprintf(&b, "accesses:      %d (%d reads, %d writes, footprint %s)\n",
		r.Trace.Accesses, r.Trace.Reads, r.Trace.Writes, r.Trace.Footprint)
	fmt.Fprintf(&b, "L1  hit ratio: %.3f (%d/%d)\n", hitRatio(r.Stats.L1Hits, r.Stats.L1Misses), r.Stats.L1Hits, r.Stats.L1Hits+r.Stats.L1Misses)
	fmt.Fprintf(&b, "L2  hit ratio: %.3f (%d/%d)\n", hitRatio(r.Stats.L2Hits, r.Stats.L2Misses), r.Stats.L2Hits, r.Stats.L2Hits+r.Stats.L2Misses)
	if r.Stats.MCHits+r.Stats.MCMisses > 0 {
		fmt.Fprintf(&b, "MSC hit ratio: %.3f (%d/%d)\n", hitRatio(r.Stats.MCHits, r.Stats.MCMisses), r.Stats.MCHits, r.Stats.MCHits+r.Stats.MCMisses)
	}
	fmt.Fprintf(&b, "memory reads:  %d lines\n", r.Stats.MemReads)
	fmt.Fprintf(&b, "memory writes: %d lines\n", r.Stats.MemWrites)
	fmt.Fprintf(&b, "prefetches:    %d\n", r.Stats.Prefetches)
	fmt.Fprintf(&b, "avg latency:   %.2f %s\n", r.Value, r.Metric)
	return b.String()
}
