package service

import (
	"context"
	"testing"

	"repro/internal/campaign"
	"repro/internal/engine"
	"repro/internal/units"
)

func tracePoint(cfg engine.MemoryConfig, wl string, size units.Bytes) campaign.Point {
	return campaign.Point{
		Workload: wl, Config: cfg, Size: size, Threads: 64,
		SKU: campaign.DefaultSKU, Fidelity: campaign.FidelityTrace,
	}
}

func TestTracePointDeterministic(t *testing.T) {
	// Two independent executors must produce bit-identical trace
	// outcomes — the property that makes trace results cacheable.
	a, err := NewExecutor().RunPoint(context.Background(), tracePoint(engine.Cache, "GUPS", units.GB(8)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewExecutor().RunPoint(context.Background(), tracePoint(engine.Cache, "GUPS", units.GB(8)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value || *a.Trace != *b.Trace {
		t.Fatalf("trace replay not deterministic:\n%+v\n%+v", a.Trace, b.Trace)
	}
	if a.Metric != "ns/access" || a.Value <= 0 {
		t.Fatalf("outcome %+v", a)
	}
	if a.Trace.Accesses == 0 {
		t.Fatal("no accesses replayed")
	}
}

func TestTraceLatencyOrdering(t *testing.T) {
	// For a random workload whose scaled footprint exceeds L2 but fits
	// the scaled MCDRAM, flat HBM must be slower than... no: per
	// access, HBM backing has higher idle latency than DRAM (§IV-A),
	// so DRAM-bound random access must beat HBM-bound. Cache mode
	// inserts the MCDRAM cache and, once the footprint fits it, most
	// accesses stop at MCDRAM latency.
	exec := NewExecutor()
	dram, err := exec.RunPoint(context.Background(), tracePoint(engine.DRAM, "GUPS", units.GB(8)))
	if err != nil {
		t.Fatal(err)
	}
	hbm, err := exec.RunPoint(context.Background(), tracePoint(engine.HBM, "GUPS", units.GB(8)))
	if err != nil {
		t.Fatal(err)
	}
	if dram.Value >= hbm.Value {
		t.Errorf("random access: DRAM %v ns/access should beat HBM %v (18%% idle-latency gap)",
			dram.Value, hbm.Value)
	}
}

func TestTraceSequentialBeatsRandom(t *testing.T) {
	exec := NewExecutor()
	seq, err := exec.RunPoint(context.Background(), tracePoint(engine.DRAM, "STREAM", units.GB(8)))
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := exec.RunPoint(context.Background(), tracePoint(engine.DRAM, "GUPS", units.GB(8)))
	if err != nil {
		t.Fatal(err)
	}
	// The line-stride stream never re-touches a line, so its win comes
	// from the stream prefetcher hiding fill latency, not from L1 hits.
	if seq.Value >= rnd.Value {
		t.Errorf("sequential %v ns/access should beat random %v (prefetcher + locality)", seq.Value, rnd.Value)
	}
}

func TestTraceFidelityOverHTTP(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	req := RunRequest{Workload: "GUPS", Config: "cache", Size: "4GB", Threads: 64, Fidelity: "trace"}
	first, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Fidelity != campaign.FidelityTrace || first.Trace == nil || first.Metric != "ns/access" {
		t.Fatalf("trace response %+v", first)
	}
	// The same request at model fidelity is a different point.
	model, err := c.Run(ctx, RunRequest{Workload: "GUPS", Config: "cache", Size: "4GB", Threads: 64})
	if err != nil {
		t.Fatal(err)
	}
	if model.Key == first.Key {
		t.Fatal("model and trace fidelities share a cache key")
	}
	if model.Cached {
		t.Fatal("model point incorrectly cached by the trace run")
	}
	// Repeat trace request: cache hit, identical payload.
	again, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Value != first.Value || *again.Trace != *first.Trace {
		t.Fatalf("trace repeat not served from cache: %+v vs %+v", again, first)
	}
	// Unknown fidelity is a request error.
	if _, err := c.Run(ctx, RunRequest{Workload: "GUPS", Config: "dram", Size: "1GB", Fidelity: "quantum"}); err == nil {
		t.Fatal("unknown fidelity accepted")
	}
}

func TestTraceCampaign(t *testing.T) {
	_, c := newTestServer(t)
	spec := campaign.Spec{
		Fidelity:  "trace",
		Workloads: []string{"STREAM", "GUPS"},
		Configs:   []string{"dram", "hbm", "cache"},
		Sizes:     []string{"2GB", "8GB"},
	}
	resp, err := c.SubmitCampaign(context.Background(), spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Job.State != JobDone {
		t.Fatalf("job %+v", resp.Job)
	}
	res := resp.Result
	if res.Points != 12 {
		t.Fatalf("points = %d, want 12", res.Points)
	}
	for _, r := range res.Results {
		if r.Fidelity != campaign.FidelityTrace || r.Trace == nil || r.Value <= 0 {
			t.Fatalf("trace campaign result %+v", r)
		}
	}
}

func TestTraceHybridAndInterleave(t *testing.T) {
	exec := NewExecutor()
	for _, cfg := range []engine.MemoryConfig{
		{Kind: engine.InterleaveFlat},
		{Kind: engine.Hybrid, HybridFlatFraction: 0.5},
	} {
		out, err := exec.RunPoint(context.Background(), tracePoint(cfg, "GUPS", units.GB(4)))
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		if out.Value <= 0 {
			t.Fatalf("%v: non-positive latency", cfg)
		}
	}
}
