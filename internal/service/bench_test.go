package service

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"

	"repro/internal/cache"
	"repro/internal/campaign"
	"repro/internal/tracesim"
)

// benchTraceSpec is the headline sweep for BENCH_SERVE.json: trace
// fidelity (functional cache-hierarchy replay, milliseconds per
// point), 2 workloads x 3 paper configs x a 4-point geometric size
// grid = 24 points. This is the expensive recurring query class the
// content-addressed cache amortizes.
func benchTraceSpec() campaign.Spec {
	return campaign.Spec{
		Name:      "bench-trace",
		Fidelity:  campaign.FidelityTrace,
		Workloads: []string{"STREAM", "GUPS"},
		Configs:   []string{"dram", "hbm", "cache"},
		SizeGrid:  &campaign.Grid{From: "2GB", To: "16GB", Points: 4},
		Threads:   []int{64},
	}
}

// benchModelSpec is the analytic-model sweep: 192 sub-microsecond
// points, where serving cost is dominated by transport rather than
// compute.
func benchModelSpec() campaign.Spec {
	return campaign.Spec{
		Name:      "bench-model",
		Workloads: []string{"STREAM", "GUPS", "XSBench", "MiniFE"},
		Configs:   []string{"dram", "hbm", "cache"},
		SizeGrid:  &campaign.Grid{From: "1GB", To: "24GB", Points: 8},
		Threads:   []int{64, 128},
	}
}

func submitOnce(b *testing.B, c *Client, spec campaign.Spec) *CampaignResult {
	b.Helper()
	resp, err := c.SubmitCampaign(context.Background(), spec, true)
	if err != nil {
		b.Fatal(err)
	}
	if resp.Job.State != JobDone || resp.Result == nil {
		b.Fatalf("campaign did not complete: %+v", resp.Job)
	}
	return resp.Result
}

// benchCampaign measures end-to-end campaign service time over real
// HTTP: submit, execute (or hit the content-addressed cache),
// aggregate, respond.
//
//   - cold: every iteration runs against a fresh server, so every
//     point is computed.
//   - warm: iterations resubmit the same sweep to one server, so the
//     whole campaign is served from the campaign-level cache.
func benchCampaign(b *testing.B, spec campaign.Spec) {
	b.Run("ColdCache", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			srv := NewServer(Options{Workers: 4, QueueDepth: 32})
			ts := httptest.NewServer(srv.Handler())
			c := NewClient(ts.URL)
			b.StartTimer()

			res := submitOnce(b, c, spec)
			if res.Cached {
				b.Fatal("cold iteration served from cache")
			}

			b.StopTimer()
			ts.Close()
			_ = srv.Close(context.Background())
			b.StartTimer()
		}
	})

	b.Run("WarmCache", func(b *testing.B) {
		srv := NewServer(Options{Workers: 4, QueueDepth: 32})
		ts := httptest.NewServer(srv.Handler())
		defer func() {
			ts.Close()
			_ = srv.Close(context.Background())
		}()
		c := NewClient(ts.URL)
		submitOnce(b, c, spec) // warm the campaign cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := submitOnce(b, c, spec)
			if !res.Cached {
				b.Fatal("warm iteration not served from cache")
			}
		}
	})
}

// BenchmarkServeCampaign is the acceptance benchmark: a repeated
// trace-fidelity campaign must be served >= 10x faster from the
// result cache. The recorded baseline lives in BENCH_SERVE.json.
func BenchmarkServeCampaign(b *testing.B) {
	benchCampaign(b, benchTraceSpec())
}

// BenchmarkServeCampaignModel is the same harness over analytic
// points; it bounds the transport floor of a campaign round trip.
func BenchmarkServeCampaignModel(b *testing.B) {
	benchCampaign(b, benchModelSpec())
}

// BenchmarkServeRun measures the single-point fast path, cold vs
// cached, at both fidelities.
func BenchmarkServeRun(b *testing.B) {
	for _, fid := range []string{campaign.FidelityModel, campaign.FidelityTrace} {
		req := RunRequest{Workload: "GUPS", Config: "cache", Size: "8GB", Threads: 64, Fidelity: fid}

		b.Run(fid+"/ColdCache", func(b *testing.B) {
			srv := NewServer(Options{Workers: 2, QueueDepth: 16})
			ts := httptest.NewServer(srv.Handler())
			defer func() {
				ts.Close()
				_ = srv.Close(context.Background())
			}()
			c := NewClient(ts.URL)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Vary the size so every request is a distinct point
				// (threads won't do: trace fidelity canonicalizes the
				// thread axis away).
				r := req
				r.Size = fmt.Sprintf("%dMB", 4096+i)
				if _, err := c.Run(context.Background(), r); err != nil {
					b.Fatal(err)
				}
			}
		})

		b.Run(fid+"/WarmCache", func(b *testing.B) {
			srv := NewServer(Options{Workers: 2, QueueDepth: 16})
			ts := httptest.NewServer(srv.Handler())
			defer func() {
				ts.Close()
				_ = srv.Close(context.Background())
			}()
			c := NewClient(ts.URL)
			if _, err := c.Run(context.Background(), req); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := c.Run(context.Background(), req)
				if err != nil {
					b.Fatal(err)
				}
				if !resp.Cached {
					b.Fatal("warm run not cached")
				}
			}
		})
	}
}

// BenchmarkReplayStored measures the stored-trace path end to end
// over real HTTP: ingest throughput (NDJSON upload into the durable
// store), a cold replay through the scaled cache hierarchy, and the
// warm replay served from the content-addressed replay cache. The
// recorded baseline lives in BENCH_REPLAY.json.
func BenchmarkReplayStored(b *testing.B) {
	accs := benchReplayAccesses(200000)
	body := ndjsonBody(accs)

	b.Run("Ingest", func(b *testing.B) {
		srv := NewServer(Options{Workers: 2, QueueDepth: 16, TraceDir: b.TempDir()})
		ts := httptest.NewServer(srv.Handler())
		defer func() {
			ts.Close()
			_ = srv.Close(context.Background())
		}()
		c := NewClient(ts.URL)
		b.SetBytes(int64(len(body)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Each iteration ingests a distinct stream (the previous
			// upload would otherwise dedupe into a no-op).
			b.StopTimer()
			variant := append([]byte(nil), body...)
			variant = append(variant, []byte(fmt.Sprintf("{\"addr\": %d}\n", 1<<30+i*64))...)
			b.StartTimer()
			if _, err := c.UploadTrace(context.Background(), bytes.NewReader(variant)); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("ColdReplay", func(b *testing.B) {
		// Fresh server (empty replay cache) per iteration; upload and
		// teardown stay outside the timer.
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			srv := NewServer(Options{Workers: 2, QueueDepth: 16, TraceDir: b.TempDir()})
			ts := httptest.NewServer(srv.Handler())
			c := NewClient(ts.URL)
			up, err := c.UploadTrace(context.Background(), bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()

			resp, err := c.Replay(context.Background(), ReplayRequest{Trace: up.ID, Config: "cache"})
			if err != nil {
				b.Fatal(err)
			}
			if resp.Cached {
				b.Fatal("cold replay served from cache")
			}

			b.StopTimer()
			ts.Close()
			_ = srv.Close(context.Background())
			b.StartTimer()
		}
	})

	b.Run("WarmReplay", func(b *testing.B) {
		srv := NewServer(Options{Workers: 2, QueueDepth: 16, TraceDir: b.TempDir()})
		ts := httptest.NewServer(srv.Handler())
		defer func() {
			ts.Close()
			_ = srv.Close(context.Background())
		}()
		c := NewClient(ts.URL)
		up, err := c.UploadTrace(context.Background(), bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		req := ReplayRequest{Trace: up.ID, Config: "cache"}
		if _, err := c.Replay(context.Background(), req); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := c.Replay(context.Background(), req)
			if err != nil {
				b.Fatal(err)
			}
			if !resp.Cached {
				b.Fatal("warm replay not cached")
			}
		}
	})
}

// benchReplayAccesses mirrors the test stream shape at benchmark size.
func benchReplayAccesses(n int) []tracesim.Access {
	rng := rand.New(rand.NewSource(5))
	out := make([]tracesim.Access, n)
	addr := uint64(0)
	for i := range out {
		if rng.Intn(3) == 0 {
			addr = uint64(rng.Intn(16 << 20))
		} else {
			addr += 64
		}
		out[i] = tracesim.Access{Addr: addr, Kind: cache.Read}
	}
	return out
}
