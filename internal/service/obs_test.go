package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/campaign"
	"repro/internal/obs"
)

// syncBuffer is a race-safe log sink: the server's handler goroutines
// write access-log lines while the test reads them back.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var labelRe = regexp.MustCompile(`(\w+)="([^"]*)"`)

// parseSample splits `name{a="x",b="y"} 42` into the metric name, its
// label map and the sample value. An OpenMetrics exemplar suffix
// (` # {trace_id="..."} v ts`) is stripped before parsing.
func parseSample(t *testing.T, line string) (name string, labels map[string]string, value float64) {
	t.Helper()
	if i := strings.Index(line, " # {"); i >= 0 {
		line = line[:i]
	}
	labels = map[string]string{}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		j := strings.LastIndexByte(line, '}')
		if j < i {
			t.Fatalf("unbalanced braces in %q", line)
		}
		for _, m := range labelRe.FindAllStringSubmatch(line[i+1:j], -1) {
			labels[m[1]] = m[2]
		}
		rest = strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		t.Fatalf("bad value in %q: %v", line, err)
	}
	return name, labels, v
}

// histogramFamily strips the _bucket/_sum/_count suffix when the base
// name is a registered histogram family.
func histogramFamily(name string, types map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

// TestMetricsPrometheusFormat drives real traffic through the service
// and then validates the whole /metrics payload as Prometheus text:
// every sample's family declares HELP and TYPE before the first
// sample, and every histogram's buckets are cumulative, ordered by le,
// terminated by +Inf, with _count equal to the +Inf bucket.
func TestMetricsPrometheusFormat(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	// A miss then a hit (point + lookup histograms), a waited campaign
	// (stage histograms), and an unmatched path (the 404 label).
	for i := 0; i < 2; i++ {
		if _, err := c.Run(ctx, RunRequest{Workload: "STREAM", Config: "dram", Size: "1GB", Threads: 64}); err != nil {
			t.Fatal(err)
		}
	}
	spec := campaign.Spec{Workloads: []string{"STREAM"}, Configs: []string{"hbm"}, Sizes: []string{"2GB"}}
	if _, err := c.SubmitCampaign(ctx, spec, true); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(c.BaseURL + "/no/such/path")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	types := map[string]string{} // family -> declared type
	help := map[string]bool{}    // family -> HELP seen
	sampled := map[string]bool{} // family -> first sample seen
	type histSeries struct {
		les    []string
		counts []float64
		sum    bool
		count  float64
		hasCnt bool
	}
	hists := map[string]*histSeries{} // family + label set (minus le)

	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Bucket rows may carry an OpenMetrics exemplar; its trace_id
		// label must not split the series grouping below.
		if i := strings.Index(line, " # {"); i >= 0 {
			line = line[:i]
		}
		if strings.HasPrefix(line, "# HELP ") {
			fam := strings.Fields(line)[2]
			if sampled[fam] {
				t.Errorf("HELP for %s appears after its first sample", fam)
			}
			help[fam] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			fam := fields[2]
			if sampled[fam] {
				t.Errorf("TYPE for %s appears after its first sample", fam)
			}
			types[fam] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, value := parseSample(t, line)
		fam := histogramFamily(name, types)
		sampled[fam] = true
		if !help[fam] {
			t.Errorf("sample %s has no preceding HELP for family %s", name, fam)
		}
		if types[fam] == "" {
			t.Errorf("sample %s has no preceding TYPE for family %s", name, fam)
		}
		if types[fam] != "histogram" {
			continue
		}
		// Key histogram series by family plus labels without le.
		le := labels["le"]
		delete(labels, "le")
		var kb strings.Builder
		kb.WriteString(fam)
		for _, m := range labelRe.FindAllStringSubmatch(line, -1) {
			if m[1] != "le" {
				kb.WriteString("|" + m[1] + "=" + m[2])
			}
		}
		h := hists[kb.String()]
		if h == nil {
			h = &histSeries{}
			hists[kb.String()] = h
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			h.les = append(h.les, le)
			h.counts = append(h.counts, value)
		case strings.HasSuffix(name, "_sum"):
			h.sum = true
		case strings.HasSuffix(name, "_count"):
			h.count, h.hasCnt = value, true
		}
	}

	// The traffic above must have produced at least these series.
	for _, fam := range []string{
		"simd_http_request_seconds", "simd_job_stage_seconds",
		"simd_point_compute_seconds", "simd_cache_lookup_seconds",
	} {
		if types[fam] != "histogram" {
			t.Errorf("family %s not declared as a histogram (type %q)", fam, types[fam])
		}
	}
	if len(hists) == 0 {
		t.Fatal("no histogram series rendered")
	}
	for key, h := range hists {
		if len(h.les) == 0 {
			t.Errorf("%s: no buckets", key)
			continue
		}
		if h.les[len(h.les)-1] != "+Inf" {
			t.Errorf("%s: last bucket le=%q, want +Inf", key, h.les[len(h.les)-1])
		}
		prevLe := -1.0
		for i, le := range h.les[:len(h.les)-1] {
			b, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Errorf("%s: unparsable le %q", key, le)
				continue
			}
			if b <= prevLe {
				t.Errorf("%s: le %q not ascending", key, le)
			}
			prevLe = b
			if i > 0 && h.counts[i] < h.counts[i-1] {
				t.Errorf("%s: bucket counts not cumulative at le=%q", key, le)
			}
		}
		if !h.sum {
			t.Errorf("%s: missing _sum", key)
		}
		if !h.hasCnt {
			t.Errorf("%s: missing _count", key)
		} else if inf := h.counts[len(h.counts)-1]; h.count != inf {
			t.Errorf("%s: _count %v != +Inf bucket %v", key, h.count, inf)
		}
	}
}

// TestRequestTracingEndToEnd is the acceptance test: one cold
// POST /v1/campaigns?wait=1 must be fully reconstructable from
// observability output alone — the access log carries the request ID
// and route, the job record carries the same ID plus a stage timeline
// with derived queue/run durations, the journal records link back via
// the same ID, and the histograms saw the request, its stages and its
// point computations.
func TestRequestTracingEndToEnd(t *testing.T) {
	const rid = "obs-e2e-1"
	dir := t.TempDir()
	var logBuf syncBuffer
	logger, err := obs.NewLogger(&logBuf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	srv, c, ts, _ := newDurableTestServer(t, dir, Options{Logger: logger})
	defer srv.Close(context.Background())
	c.RequestID = rid

	spec := campaign.Spec{Workloads: []string{"STREAM"}, Configs: []string{"dram"}, Sizes: []string{"1GB"}}
	resp, err := c.SubmitCampaign(context.Background(), spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Job.State != JobDone {
		t.Fatalf("job %+v, want done", resp.Job)
	}

	// 1. The job record carries the request ID, derived durations and
	// the full stage timeline.
	if resp.Job.RequestID != rid {
		t.Errorf("job request_id = %q, want %q", resp.Job.RequestID, rid)
	}
	if resp.Job.RunMS <= 0 {
		t.Errorf("job run_ms = %v, want > 0", resp.Job.RunMS)
	}
	if resp.Job.QueueMS < 0 {
		t.Errorf("job queue_ms = %v, want >= 0", resp.Job.QueueMS)
	}
	stages := map[string]bool{}
	for _, span := range resp.Job.Timeline {
		stages[span.Stage] = true
		if span.Start.IsZero() {
			t.Errorf("stage %s has a zero start time", span.Stage)
		}
	}
	for _, want := range []string{"queue_wait", "execute", "persist"} {
		if !stages[want] {
			t.Errorf("timeline missing stage %q: %+v", want, resp.Job.Timeline)
		}
	}

	// 2. The journal links every record of the job to the request.
	jraw, err := os.ReadFile(filepath.Join(dir, "journal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(jraw), fmt.Sprintf("%q:%q", "req", rid)) {
		t.Errorf("journal has no req=%s record", rid)
	}

	// 3. The access log has the request under the same ID with the
	// matched route.
	var logged map[string]any
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var entry map[string]any
		if json.Unmarshal([]byte(line), &entry) != nil {
			t.Fatalf("access log line not JSON: %q", line)
		}
		if entry["request_id"] == rid && entry["route"] == "POST /v1/campaigns" {
			logged = entry
		}
	}
	if logged == nil {
		t.Fatalf("no access-log line for request %s:\n%s", rid, logBuf.String())
	}
	if logged["status"] != float64(http.StatusOK) {
		t.Errorf("access log status = %v, want 200", logged["status"])
	}
	if dur, ok := logged["dur_ms"].(float64); !ok || dur <= 0 {
		t.Errorf("access log dur_ms = %v, want > 0", logged["dur_ms"])
	}

	// 4. The histograms saw the request, its stages and the point
	// computation.
	body := scrapeMetrics(t, ts)
	for _, want := range []string{
		`simd_http_request_seconds_count{route="POST /v1/campaigns",code="200"} 1`,
		`simd_job_stage_seconds_count{stage="queue_wait"} 1`,
		`simd_job_stage_seconds_count{stage="execute"} 1`,
		`simd_job_stage_seconds_count{stage="persist"} 1`,
		`simd_point_compute_seconds_count{fidelity="model"} 1`,
		"simd_build_info{go_version=",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestErrorEnvelopeRequestID: error responses carry the correlation
// key so a client can quote it when reporting the failure.
func TestErrorEnvelopeRequestID(t *testing.T) {
	_, c := newTestServer(t)
	req, err := http.NewRequest(http.MethodPost, c.BaseURL+"/v1/run", strings.NewReader(`{"workload":""}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "err-probe-9")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "err-probe-9" {
		t.Errorf("echoed id = %q", got)
	}
	var envelope apiError
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.RequestID != "err-probe-9" {
		t.Errorf("envelope request_id = %q, want err-probe-9", envelope.RequestID)
	}
	if envelope.Error == "" {
		t.Error("envelope has no error message")
	}
}

// TestUnmatchedRouteLabel: 404s and 405s share one "unmatched" label
// so path scanners cannot mint unbounded label values.
func TestUnmatchedRouteLabel(t *testing.T) {
	_, c := newTestServer(t)
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v1/whatever"},
		{http.MethodDelete, "/v1/run"}, // method mismatch: 405
	} {
		req, _ := http.NewRequest(probe.method, c.BaseURL+probe.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	body := scrapeMetrics2(t, c)
	if !strings.Contains(body, `simd_http_requests_total{route="unmatched"} 2`) {
		t.Errorf("unmatched requests not pooled under one label:\n%s", grepLines(body, "requests_total"))
	}
	if !strings.Contains(body, `simd_http_request_seconds_count{route="unmatched",code="404"} 1`) {
		t.Errorf("404 latency not recorded under unmatched:\n%s", grepLines(body, "unmatched"))
	}
	if !strings.Contains(body, `simd_http_request_seconds_count{route="unmatched",code="405"} 1`) {
		t.Errorf("405 latency not recorded under unmatched:\n%s", grepLines(body, "unmatched"))
	}
}

// TestJobEndpointServesTimeline: GET /v1/jobs/{id} exposes the span
// timeline and derived fields over the wire.
func TestJobEndpointServesTimeline(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	spec := campaign.Spec{Workloads: []string{"STREAM"}, Configs: []string{"dram"}, Sizes: []string{"1GB"}}
	sub, err := c.SubmitCampaign(ctx, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	polled, err := c.Job(ctx, sub.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(polled.Job.Timeline) < 2 {
		t.Fatalf("polled job timeline %+v, want at least queue_wait and execute", polled.Job.Timeline)
	}
	rendered := RenderTimings(polled.Job)
	for _, want := range []string{"queue_wait", "execute", polled.Job.ID} {
		if !strings.Contains(rendered, want) {
			t.Errorf("RenderTimings missing %q:\n%s", want, rendered)
		}
	}
}

func scrapeMetrics2(t *testing.T, c *Client) string {
	t.Helper()
	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func grepLines(body, substr string) string {
	var b strings.Builder
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, substr) {
			b.WriteString(line + "\n")
		}
	}
	return b.String()
}

// TestPprofExposed: the profiling endpoints serve through the stack.
func TestPprofExposed(t *testing.T) {
	_, c := newTestServer(t)
	resp, err := http.Get(c.BaseURL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline status = %d", resp.StatusCode)
	}
}
