package tracestore

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"sync"

	"repro/internal/tracesim"
)

// streamEncoder is what Ingest needs from an encoder: serial Encoder
// and parallelEncoder both satisfy it and produce byte-identical
// output (pinned by the golden round-trip tests).
type streamEncoder interface {
	Append(tracesim.Access)
	Finish() (Summary, string, error)
	Abort()
}

// Abort releases encoder resources after a failed ingest. The serial
// encoder holds none.
func (e *Encoder) Abort() {}

// parallelEncoder is the Encoder's pipelined twin: the Append caller
// scans accesses into blocks, full blocks are encoded by worker
// goroutines, and a single writer goroutine consumes the encoded
// blocks in dispatch order. Everything order-sensitive stays serial
// in the writer — the file bytes, the SHA-256 over the canonical
// records, and the saturating footprint-set inserts — so the output
// file, content address, and Summary are byte-for-byte identical to
// the serial Encoder's. Block encoding itself (varint deltas, kind
// runs, CRC, canonical records) is order-free given the carried
// delta base, which the dispatcher threads through at dispatch time.
type parallelEncoder struct {
	bw  *bufio.Writer
	sum Summary

	sha   hash.Hash
	lines *lineSet
	prev  uint64 // last dispatched address: next block's delta base

	cur   *blockBuf
	jobs  chan *blockBuf // to encode workers, unordered
	order chan *blockBuf // dispatch order, consumed by the writer
	free  chan *blockBuf // recycled buffers (backpressure)
	wg    sync.WaitGroup
	wdone chan struct{}
	werr  error // writer-side error; read only after wdone
	ended bool
}

// newParallelEncoder builds a pipelined encoder with the given worker
// count (callers pass runtime.GOMAXPROCS(0); tests pin it). Workers
// below 2 still work but buy nothing over NewEncoder.
func newParallelEncoder(w io.Writer, workers int) *parallelEncoder {
	if workers < 1 {
		workers = 1
	}
	inflight := workers + 2
	e := &parallelEncoder{
		bw:    bufio.NewWriterSize(w, 256<<10),
		sha:   sha256.New(),
		lines: newLineSet(),
		sum:   Summary{MinAddr: ^uint64(0)},
		jobs:  make(chan *blockBuf, inflight),
		order: make(chan *blockBuf, inflight),
		// inflight+1 buffers circulate (the pool plus the encoder's
		// current block); free must hold all of them or the writer
		// deadlocks returning the last one at shutdown.
		free:  make(chan *blockBuf, inflight+1),
		wdone: make(chan struct{}),
	}
	e.cur = newBlockBuf()
	for i := 0; i < inflight; i++ {
		e.free <- newBlockBuf()
	}
	for i := 0; i < workers; i++ {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			for b := range e.jobs {
				b.encode()
				b.done <- struct{}{}
			}
		}()
	}
	go e.writer()
	return e
}

// writer consumes encoded blocks in dispatch order. It is the only
// goroutine touching the file, the hash, and the footprint set, so
// their serial semantics survive the parallel encode.
func (e *parallelEncoder) writer() {
	defer close(e.wdone)
	for b := range e.order {
		<-b.done
		if e.werr == nil {
			if _, err := e.bw.Write(b.wire); err != nil {
				e.werr = err
			} else {
				e.sha.Write(b.shaBuf)
				e.lines.AddBatch(b.lineBuf, maxTrackedLines)
			}
		}
		b.accs = b.accs[:0]
		e.free <- b
	}
}

// Append adds one access to the stream.
func (e *parallelEncoder) Append(a tracesim.Access) {
	e.sum.Accesses++
	if a.Kind == writeKind {
		e.sum.Writes++
	} else {
		e.sum.Reads++
	}
	if a.Addr < e.sum.MinAddr {
		e.sum.MinAddr = a.Addr
	}
	if a.Addr > e.sum.MaxAddr {
		e.sum.MaxAddr = a.Addr
	}
	e.cur.accs = append(e.cur.accs, a)
	if len(e.cur.accs) == blockAccesses {
		e.dispatch()
		e.cur = <-e.free
	}
}

// dispatch hands the current block to the workers. The delta base
// chain is maintained here, in stream order, so encodes can complete
// out of order.
func (e *parallelEncoder) dispatch() {
	b := e.cur
	if len(b.accs) == 0 {
		return
	}
	b.base = e.prev
	e.prev = b.last()
	e.order <- b
	e.jobs <- b
	e.cur = nil
}

// shutdown flushes the tail block (when finishing) and quiesces the
// pipeline. Idempotent.
func (e *parallelEncoder) shutdown(finish bool) {
	if e.ended {
		return
	}
	e.ended = true
	if finish {
		e.dispatch()
	}
	close(e.jobs)
	e.wg.Wait()
	close(e.order)
	<-e.wdone
}

// Abort tears the pipeline down after a failed ingest.
func (e *parallelEncoder) Abort() { e.shutdown(false) }

// Finish drains the pipeline and returns the Summary plus the
// trace's content address, exactly as the serial Encoder would.
func (e *parallelEncoder) Finish() (Summary, string, error) {
	e.shutdown(true)
	err := e.werr
	if err == nil {
		err = e.bw.Flush()
	}
	if err != nil {
		return Summary{}, "", err
	}
	if e.sum.Accesses == 0 {
		return Summary{}, "", fmt.Errorf("tracestore: empty trace (no accesses)")
	}
	e.sum.Lines = int64(e.lines.Len())
	return e.sum, hex.EncodeToString(e.sha.Sum(nil)), nil
}
