// Package tracestore is the durable trace subsystem: a
// content-addressed, on-disk store for memory-access traces and the
// streaming codec that moves traces in and out of it.
//
// The paper's methodology rests on traces collected from instrumented
// applications; this package is what lets a real reference stream
// enter the reproduction. Traces arrive as NDJSON, CSV (either
// optionally gzipped) or the store's own binary format, are
// re-encoded block by block — nothing buffers a whole trace in memory
// — and land in a compact binary file: a versioned fixed-size header
// carrying the stream summary, followed by CRC-checked blocks of
// varint-delta-encoded addresses and run-length-encoded access kinds.
//
// Every trace is addressed by the SHA-256 of its canonical access
// stream (8-byte little-endian address + 1 kind byte per access), so
// the id is independent of upload format and compression: re-uploading
// the same trace — or the same trace gzipped — dedupes to the same
// content address without writing a second copy.
//
// Provider (provider.go) serves a stored trace back as a
// tracesim.Generator/BatchGenerator, which is what keeps scalar and
// sharded replay of stored traces exactly equivalent to the synthetic
// generators' replay paths.
package tracestore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"crypto/sha256"
	"encoding/hex"

	"repro/internal/tracesim"
	"repro/internal/units"
)

const (
	// magic identifies a tracestore file; the trailing digit is the
	// major format generation.
	magic = "TRCSTOR1"
	// formatVersion is bumped on any incompatible layout change.
	formatVersion = 1
	// headerSize is the fixed on-disk header length in bytes.
	headerSize = 64
	// blockAccesses is the encoder's block granularity: large enough
	// to amortise the per-block CRC and length prefix, small enough
	// that decode buffers stay cache-resident.
	blockAccesses = 8192
	// maxBlockAccesses bounds what the decoder will allocate for one
	// block, so a corrupted length field cannot demand gigabytes.
	maxBlockAccesses = 1 << 20
	// maxTrackedLines bounds the distinct-line (footprint) set the
	// encoder keeps in memory: 2M lines = a 128 MiB footprint counted
	// exactly, ~100 MB of transient map at worst. Past it the counter
	// saturates — Summary.Lines becomes a floor — instead of letting
	// one sparse upload grow the set without bound.
	maxTrackedLines = 1 << 21
)

// Summary is the stream-level metadata the header carries: computed
// during encoding, served as trace metadata without touching the
// blocks.
type Summary struct {
	Accesses int64  // total references
	Reads    int64  // references with kind Read
	Writes   int64  // references with kind Write
	MinAddr  uint64 // lowest byte address touched
	MaxAddr  uint64 // highest byte address touched
	// Lines counts distinct cache lines touched (the footprint):
	// exact up to maxTrackedLines, a floor beyond (the counter
	// saturates rather than growing without bound).
	Lines int64
}

// Footprint is the unique bytes touched, at cache-line granularity.
func (s Summary) Footprint() units.Bytes {
	return units.Bytes(s.Lines) * units.CacheLine
}

// encodeHeader lays the summary out in the fixed header form. The
// last four bytes are a CRC over the first 60, so a truncated or
// scribbled header is detected before any block is trusted.
func encodeHeader(sum Summary) [headerSize]byte {
	var h [headerSize]byte
	copy(h[0:8], magic)
	binary.LittleEndian.PutUint16(h[8:10], formatVersion)
	binary.LittleEndian.PutUint64(h[12:20], uint64(sum.Accesses))
	binary.LittleEndian.PutUint64(h[20:28], uint64(sum.Reads))
	binary.LittleEndian.PutUint64(h[28:36], uint64(sum.Writes))
	binary.LittleEndian.PutUint64(h[36:44], sum.MinAddr)
	binary.LittleEndian.PutUint64(h[44:52], sum.MaxAddr)
	binary.LittleEndian.PutUint64(h[52:60], uint64(sum.Lines))
	binary.LittleEndian.PutUint32(h[60:64], crc32.ChecksumIEEE(h[0:60]))
	return h
}

// decodeHeader validates and parses a header.
func decodeHeader(h []byte) (Summary, error) {
	if len(h) < headerSize {
		return Summary{}, fmt.Errorf("tracestore: short header (%d bytes)", len(h))
	}
	if string(h[0:8]) != magic {
		return Summary{}, fmt.Errorf("tracestore: bad magic %q", h[0:8])
	}
	if v := binary.LittleEndian.Uint16(h[8:10]); v != formatVersion {
		return Summary{}, fmt.Errorf("tracestore: unsupported format version %d (want %d)", v, formatVersion)
	}
	if got, want := crc32.ChecksumIEEE(h[0:60]), binary.LittleEndian.Uint32(h[60:64]); got != want {
		return Summary{}, fmt.Errorf("tracestore: header checksum mismatch (%#x != %#x)", got, want)
	}
	return Summary{
		Accesses: int64(binary.LittleEndian.Uint64(h[12:20])),
		Reads:    int64(binary.LittleEndian.Uint64(h[20:28])),
		Writes:   int64(binary.LittleEndian.Uint64(h[28:36])),
		MinAddr:  binary.LittleEndian.Uint64(h[36:44]),
		MaxAddr:  binary.LittleEndian.Uint64(h[44:52]),
		Lines:    int64(binary.LittleEndian.Uint64(h[52:60])),
	}, nil
}

// lineSet is an insert-only open-addressed hash set of cache-line
// numbers, used for the exact footprint count. It replaces a
// map[uint64]struct{} on the ingest hot path: Fibonacci hashing plus
// linear probing costs a fraction of a runtime map insert, and the
// encoder only ever needs Add and Len.
type lineSet struct {
	tab   []uint64 // stores line+1; 0 = empty slot
	n     int
	shift uint   // 64 - log2(len(tab))
	sink  uint64 // keeps AddBatch's slot pre-touches alive
}

func newLineSet() *lineSet {
	// 512 KiB up front: large traces skip several full-table rehashes,
	// and one ingest allocates exactly one of these.
	const initial = 1 << 16
	return &lineSet{tab: make([]uint64, initial), shift: 64 - 16}
}

func (s *lineSet) Len() int { return s.n }

// Add inserts line (idempotent).
func (s *lineSet) Add(line uint64) {
	k := line + 1
	i := (k * 0x9E3779B97F4A7C15) >> s.shift
	mask := uint64(len(s.tab) - 1)
	for {
		v := s.tab[i]
		if v == k {
			return
		}
		if v == 0 {
			s.tab[i] = k
			s.n++
			if s.n*4 >= len(s.tab)*3 {
				s.grow()
			}
			return
		}
		i = (i + 1) & mask
	}
}

// AddBatch inserts every line in batch, stopping once the set holds
// max entries (same saturation gate as per-line Add calls in stream
// order). Slots are touched eight at a time before the serial probes
// so the DRAM misses overlap; a lone Add is one dependent miss per
// line once the table outgrows the cache.
func (s *lineSet) AddBatch(batch []uint64, max int) {
	var sink uint64
	for len(batch) > 0 && s.n < max {
		g := batch
		if len(g) > 8 {
			g = g[:8]
		}
		for _, line := range g {
			sink ^= s.tab[((line+1)*0x9E3779B97F4A7C15)>>s.shift]
		}
		for _, line := range g {
			if s.n >= max {
				break
			}
			s.Add(line)
		}
		batch = batch[len(g):]
	}
	// Per-set sink keeps the touch loads alive without a global (a
	// shared global would race across concurrent ingests).
	s.sink ^= sink
}

func (s *lineSet) grow() {
	old := s.tab
	s.tab = make([]uint64, len(old)*2)
	s.shift--
	mask := uint64(len(s.tab) - 1)
	for _, k := range old {
		if k == 0 {
			continue
		}
		i := (k * 0x9E3779B97F4A7C15) >> s.shift
		for s.tab[i] != 0 {
			i = (i + 1) & mask
		}
		s.tab[i] = k
	}
}

// zigzag maps a signed delta to an unsigned varint-friendly form:
// small magnitudes of either sign encode short.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// blockBuf holds one block's accesses and everything derived from
// them. encode is pure given (accs, base), so blocks can be encoded
// serially or on worker goroutines with byte-identical results; the
// buffers are reused across blocks.
type blockBuf struct {
	accs    []tracesim.Access
	base    uint64 // delta base: last address of the preceding block
	wire    []byte // uvarint(len) + payload + CRC32, ready to write
	payload []byte
	shaBuf  []byte // canonical 9-byte records (content-address input)
	lineBuf []uint64
	done    chan struct{} // parallel encoder: signals encode completion
}

func newBlockBuf() *blockBuf {
	return &blockBuf{
		accs:   make([]tracesim.Access, 0, blockAccesses),
		shaBuf: make([]byte, 0, 9*blockAccesses),
		done:   make(chan struct{}, 1),
	}
}

// encode renders accs into wire (varint count, zigzag-varint address
// deltas off base, kind runs, CRC32 trailer), shaBuf and lineBuf.
//
//simd:hotpath — runs once per 4096-access block; every buffer is a reused field.
func (b *blockBuf) encode() {
	n := len(b.accs)
	p := binary.AppendUvarint(b.payload[:0], uint64(n))
	prev := b.base
	if cap(b.shaBuf) < 9*n {
		b.shaBuf = make([]byte, 9*n) //simd:alloc-ok amortized: grows once, then the field is reused every block
	}
	b.shaBuf = b.shaBuf[:9*n]
	b.lineBuf = b.lineBuf[:0]
	off := 0
	for _, a := range b.accs {
		p = binary.AppendUvarint(p, zigzag(int64(a.Addr-prev)))
		prev = a.Addr
		binary.LittleEndian.PutUint64(b.shaBuf[off:off+8], a.Addr)
		b.shaBuf[off+8] = kindByte(a.Kind)
		off += 9
		b.lineBuf = append(b.lineBuf, a.Addr/uint64(units.CacheLine))
	}
	for i := 0; i < n; {
		j := i + 1
		for j < n && b.accs[j].Kind == b.accs[i].Kind {
			j++
		}
		p = binary.AppendUvarint(p, uint64(j-i))
		p = append(p, kindByte(b.accs[i].Kind))
		i = j
	}
	b.payload = p
	w := binary.AppendUvarint(b.wire[:0], uint64(len(p)))
	w = append(w, p...)
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(p))
	b.wire = append(w, crcBuf[:]...)
}

// last returns the block's final address (delta base for the next
// block). Only valid on a non-empty block.
func (b *blockBuf) last() uint64 { return b.accs[len(b.accs)-1].Addr }

// Encoder streams accesses into the block format, accumulating the
// Summary and the content address as it goes. It writes only the
// block stream; callers own the header (they know the final Summary
// only after Finish).
type Encoder struct {
	w   *bufio.Writer
	sum Summary

	sha   hash.Hash
	prev  uint64 // last encoded address, carried across blocks
	cur   *blockBuf
	lines *lineSet
	err   error
}

// NewEncoder builds an encoder over w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{
		w:     bufio.NewWriterSize(w, 256<<10),
		sha:   sha256.New(),
		cur:   newBlockBuf(),
		lines: newLineSet(),
		sum:   Summary{MinAddr: ^uint64(0)},
	}
}

// Append adds one access to the stream.
func (e *Encoder) Append(a tracesim.Access) {
	if e.err != nil {
		return
	}
	e.sum.Accesses++
	if a.Kind == writeKind {
		e.sum.Writes++
	} else {
		e.sum.Reads++
	}
	if a.Addr < e.sum.MinAddr {
		e.sum.MinAddr = a.Addr
	}
	if a.Addr > e.sum.MaxAddr {
		e.sum.MaxAddr = a.Addr
	}
	e.cur.accs = append(e.cur.accs, a)
	if len(e.cur.accs) == blockAccesses {
		e.flushBlock()
	}
}

// flushBlock encodes and writes the pending block, then folds its
// canonical records into the content address and its lines into the
// footprint set.
func (e *Encoder) flushBlock() {
	if e.err != nil || len(e.cur.accs) == 0 {
		return
	}
	b := e.cur
	b.base = e.prev
	b.encode()
	e.prev = b.last()
	e.sha.Write(b.shaBuf)
	e.lines.AddBatch(b.lineBuf, maxTrackedLines)
	b.accs = b.accs[:0]
	if _, err := e.w.Write(b.wire); err != nil {
		e.err = err
	}
}

// Finish flushes the stream and returns the Summary plus the trace's
// content address (hex SHA-256 of the canonical access stream). An
// empty stream is an error: a trace with no accesses cannot be
// replayed.
func (e *Encoder) Finish() (Summary, string, error) {
	e.flushBlock()
	if e.err == nil {
		e.err = e.w.Flush()
	}
	if e.err != nil {
		return Summary{}, "", e.err
	}
	if e.sum.Accesses == 0 {
		return Summary{}, "", fmt.Errorf("tracestore: empty trace (no accesses)")
	}
	e.sum.Lines = int64(e.lines.Len())
	return e.sum, hex.EncodeToString(e.sha.Sum(nil)), nil
}

// Decoder streams accesses back out of the block format.
type Decoder struct {
	br   *bufio.Reader
	prev uint64
	buf  []tracesim.Access
	pos  int

	payload []byte
	done    bool
	err     error
}

// NewDecoder builds a decoder positioned at the first block (callers
// consume the header first).
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{br: bufio.NewReaderSize(r, 256<<10)}
}

// readBlock loads and validates the next block into d.buf. It returns
// false at clean end of stream or on error (see Err).
func (d *Decoder) readBlock() bool {
	if d.done || d.err != nil {
		return false
	}
	plen, err := binary.ReadUvarint(d.br)
	if err == io.EOF {
		d.done = true
		return false
	}
	if err != nil {
		d.err = fmt.Errorf("tracestore: block length: %w", err)
		return false
	}
	if plen == 0 || plen > 32<<20 {
		d.err = fmt.Errorf("tracestore: implausible block payload length %d", plen)
		return false
	}
	if cap(d.payload) < int(plen) {
		d.payload = make([]byte, plen)
	}
	d.payload = d.payload[:plen]
	if _, err := io.ReadFull(d.br, d.payload); err != nil {
		d.err = fmt.Errorf("tracestore: truncated block payload: %w", err)
		return false
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(d.br, crcBuf[:]); err != nil {
		d.err = fmt.Errorf("tracestore: truncated block checksum: %w", err)
		return false
	}
	if got, want := crc32.ChecksumIEEE(d.payload), binary.LittleEndian.Uint32(crcBuf[:]); got != want {
		d.err = fmt.Errorf("tracestore: block checksum mismatch (%#x != %#x)", got, want)
		return false
	}

	p := d.payload
	n, k := binary.Uvarint(p)
	if k <= 0 || n == 0 || n > maxBlockAccesses {
		d.err = fmt.Errorf("tracestore: bad block access count %d", n)
		return false
	}
	p = p[k:]
	if cap(d.buf) < int(n) {
		d.buf = make([]tracesim.Access, n)
	}
	d.buf = d.buf[:n]
	prev := d.prev
	for i := range d.buf {
		u, k := binary.Uvarint(p)
		if k <= 0 {
			d.err = fmt.Errorf("tracestore: truncated address delta at access %d", i)
			return false
		}
		p = p[k:]
		prev += uint64(unzigzag(u))
		d.buf[i].Addr = prev
	}
	d.prev = prev
	for covered := uint64(0); covered < n; {
		run, k := binary.Uvarint(p)
		if k <= 0 || run == 0 || covered+run > n || len(p) <= k {
			d.err = fmt.Errorf("tracestore: bad kind run at access %d", covered)
			return false
		}
		kind := kindFromByte(p[k])
		p = p[k+1:]
		for i := covered; i < covered+run; i++ {
			d.buf[i].Kind = kind
		}
		covered += run
	}
	if len(p) != 0 {
		d.err = fmt.Errorf("tracestore: %d trailing bytes in block payload", len(p))
		return false
	}
	d.pos = 0
	return true
}

// NextBatch fills buf with decoded accesses and returns the count (0
// at end of stream or on error; check Err).
func (d *Decoder) NextBatch(buf []tracesim.Access) int {
	n := 0
	for n < len(buf) {
		if d.pos >= len(d.buf) {
			if !d.readBlock() {
				break
			}
		}
		c := copy(buf[n:], d.buf[d.pos:])
		d.pos += c
		n += c
	}
	return n
}

// NextBlock returns the decoder's next decoded block as a view of its
// internal buffer — no copy — valid only until the next NextBlock or
// NextBatch call. It returns ok=false at end of stream or on error
// (check Err). Interleaving with NextBatch is safe: a partially
// consumed block is handed out as its remaining tail first.
//
//simd:hotpath — the replay feed; runs once per block on every simulated campaign point.
func (d *Decoder) NextBlock() ([]tracesim.Access, bool) {
	if d.pos < len(d.buf) {
		b := d.buf[d.pos:]
		d.pos = len(d.buf)
		return b, true
	}
	if !d.readBlock() {
		return nil, false
	}
	d.pos = len(d.buf)
	return d.buf, true
}

// Err reports the first decode error, if any.
func (d *Decoder) Err() error { return d.err }
