package tracestore

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/cache"
	"repro/internal/tracesim"
)

// This file pins the ingest fast path with differential fuzzing: the
// byte-slice scanners must accept only inputs they parse identically
// to the reference tier (encoding/json for NDJSON; the strconv-based
// line parser for CSV — encoding/csv is NOT the oracle because it
// interprets quote characters the trace dialect does not have), and
// the whole-stream text decoder must accept/reject exactly like a
// reference-tier-only replica. The block decoder must survive
// arbitrary bytes: corruption surfaces as Err, never as a panic.

// decodeTextAll runs the production text decoder (fast tier plus
// fallback) over data.
func decodeTextAll(data []byte) ([]tracesim.Access, error) {
	var out []tracesim.Access
	err := decodeTextInto(bufio.NewReaderSize(bytes.NewReader(data), 64<<10), func(a tracesim.Access) {
		out = append(out, a)
	})
	return out, err
}

// decodeTextReference is the oracle: the same dialect/comment/header
// logic, but every line goes through the reference parsers.
func decodeTextReference(data []byte) ([]tracesim.Access, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	var out []tracesim.Access
	lineNo := 0
	ndjson, decided := false, false
	format := "csv"
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		if !decided {
			ndjson = line[0] == '{'
			decided = true
			if ndjson {
				format = "ndjson"
			} else if isCSVHeader(string(line)) {
				continue
			}
		}
		var (
			a   tracesim.Access
			err error
		)
		if ndjson {
			a, err = parseNDJSONLine(string(line))
		} else {
			a, err = parseCSVLine(string(line))
		}
		if err != nil {
			return nil, fmt.Errorf("tracestore: %s line %d: %w", format, lineNo, err)
		}
		out = append(out, a)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// streamID encodes a stream and returns its content address.
func streamID(t *testing.T, accs []tracesim.Access) string {
	t.Helper()
	enc := NewEncoder(io.Discard)
	for _, a := range accs {
		enc.Append(a)
	}
	_, id, err := enc.Finish()
	if err != nil {
		t.Fatalf("encoding accepted stream: %v", err)
	}
	return id
}

// diffStreams is the shared whole-stream differential body.
func diffStreams(t *testing.T, data []byte) {
	got, errFast := decodeTextAll(data)
	want, errRef := decodeTextReference(data)
	if (errFast == nil) != (errRef == nil) {
		t.Fatalf("accept/reject divergence:\n production: %v\n reference:  %v", errFast, errRef)
	}
	if errFast != nil {
		return
	}
	if len(got) != len(want) {
		t.Fatalf("stream length divergence: production %d accesses, reference %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("access %d divergence: production %+v, reference %+v", i, got[i], want[i])
		}
	}
	if len(got) > 0 && len(got) <= 1<<14 {
		if a, b := streamID(t, got), streamID(t, want); a != b {
			t.Fatalf("trace id divergence: %s != %s", a, b)
		}
	}
}

// fuzzLines yields the trimmed data lines the decoders would parse.
func fuzzLines(data []byte) [][]byte {
	var out [][]byte
	for _, line := range bytes.Split(data, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		out = append(out, line)
	}
	return out
}

func FuzzIngestNDJSON(f *testing.F) {
	for _, s := range ndjsonSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		// Fast tier accepts only what it parses identically to
		// encoding/json.
		for _, line := range fuzzLines(data) {
			if a, ok := parseNDJSONFast(line); ok {
				ref, err := parseNDJSONLine(string(line))
				if err != nil {
					t.Fatalf("fast tier accepted %q but encoding/json rejects it: %v", line, err)
				}
				if a != ref {
					t.Fatalf("fast tier parsed %q as %+v, encoding/json says %+v", line, a, ref)
				}
			}
		}
		diffStreams(t, data)
	})
}

func FuzzIngestCSV(f *testing.F) {
	for _, s := range csvSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		for _, line := range fuzzLines(data) {
			if a, ok := parseCSVFast(line); ok {
				ref, err := parseCSVLine(string(line))
				if err != nil {
					t.Fatalf("fast tier accepted %q but the reference parser rejects it: %v", line, err)
				}
				if a != ref {
					t.Fatalf("fast tier parsed %q as %+v, reference says %+v", line, a, ref)
				}
			}
		}
		diffStreams(t, data)
	})
}

func FuzzDecodeBlock(f *testing.F) {
	for _, s := range decodeBlockSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		// Batch path: must terminate without panicking on any input.
		dec := NewDecoder(bytes.NewReader(data))
		buf := make([]tracesim.Access, 512)
		for dec.NextBatch(buf) != 0 {
		}
		_ = dec.Err()

		// Block-view path must agree with the batch path's verdict.
		dec2 := NewDecoder(bytes.NewReader(data))
		for {
			if _, ok := dec2.NextBlock(); !ok {
				break
			}
		}
		if (dec.Err() == nil) != (dec2.Err() == nil) {
			t.Fatalf("NextBatch err %v but NextBlock err %v", dec.Err(), dec2.Err())
		}
	})
}

// --- seeds -----------------------------------------------------------

var ndjsonSeeds = []string{
	"{\"addr\": 4096, \"kind\": \"R\"}\n{\"addr\": 4160, \"kind\": \"W\"}\n",
	"{\"addr\": \"0xff00\", \"kind\": \"w\"}\n",
	"{\"kind\": \"W\", \"addr\": 64}\n",
	"{\"addr\": 1}\n",
	"{\"addr\": 01}\n",  // leading zero: JSON rejects
	"{\"addr\": 1_0}\n", // underscore numeral
	"{\"addr\": 18446744073709551615}\n",
	"{\"addr\": 18446744073709551616}\n", // overflow
	"{\"addr\": 5, \"addr\": 9}\n",       // duplicate key: last wins
	"{\"addr\": 5, \"other\": 1}\n",      // unknown key
	"{\"addr\": \"\\u0035\"}\n",          // escape: fast tier must fall back
	"{\"addr\": 5} trailing\n",
	"{\"addr\": }\n",
	"# comment\n\n{\"addr\": 7, \"kind\": \"read\"}\n",
	"{\"addr\":\t5 ,\"kind\" : \"0\"}\n",
	"{\"addr\": 5, \"kind\": \"\\u00a0R\"}\n", // unicode space in kind
}

var csvSeeds = []string{
	"addr,kind\n4096,R\n4160,W\n",
	"0x1000,w\n",
	"64\n",
	"0755,R\n",  // leading zero: strconv base 0 reads octal
	"0b101,R\n", // binary numeral
	"1_024,W\n",
	" 123 , W \n",
	"1,2,3\n",
	"notanumber,R\n",
	"123,X\n",
	"# comment\naddr\n18446744073709551615,store\n",
	"123,\xc2\xa0R\n", // unicode space in kind
	"123,READ\n",
}

// decodeBlockSeeds builds binary seeds: a valid block stream, a
// truncated copy, and a CRC-corrupted copy.
func decodeBlockSeeds() [][]byte {
	accs := []tracesim.Access{
		{Addr: 4096, Kind: cache.Read},
		{Addr: 4160, Kind: cache.Write},
		{Addr: 1 << 30, Kind: cache.Read},
		{Addr: 64, Kind: cache.Read},
	}
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for _, a := range accs {
		enc.Append(a)
	}
	if _, _, err := enc.Finish(); err != nil {
		panic(err)
	}
	valid := buf.Bytes()
	truncated := valid[:len(valid)-3]
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] ^= 0xff // flip a CRC byte
	return [][]byte{valid, truncated, corrupt, {0x00}, {0xff, 0xff, 0xff}}
}

// TestWriteFuzzCorpus materializes the seeds as files under
// testdata/fuzz/<target>/ (the native corpus location, shared by `go
// test` and `go test -fuzz`) when run with -update.
func TestWriteFuzzCorpus(t *testing.T) {
	if !*updateGolden {
		t.Skip("run with -update to rewrite the seed corpora")
	}
	write := func(target string, seeds [][]byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, s := range seeds {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s)) + ")\n"
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	var nd, cs [][]byte
	for _, s := range ndjsonSeeds {
		nd = append(nd, []byte(s))
	}
	for _, s := range csvSeeds {
		cs = append(cs, []byte(s))
	}
	write("FuzzIngestNDJSON", nd)
	write("FuzzIngestCSV", cs)
	write("FuzzDecodeBlock", decodeBlockSeeds())
}

// TestFuzzSeedsDeterministic runs every seed through the fuzz bodies
// as plain tests, so the differential invariants hold even when no
// fuzzing engine is available.
func TestFuzzSeedsDeterministic(t *testing.T) {
	for _, s := range ndjsonSeeds {
		for _, line := range fuzzLines([]byte(s)) {
			if a, ok := parseNDJSONFast(line); ok {
				ref, err := parseNDJSONLine(string(line))
				if err != nil || a != ref {
					t.Fatalf("ndjson fast/reference divergence on %q: %+v vs %+v (%v)", line, a, ref, err)
				}
			}
		}
		diffStreams(t, []byte(s))
	}
	for _, s := range csvSeeds {
		for _, line := range fuzzLines([]byte(s)) {
			if a, ok := parseCSVFast(line); ok {
				ref, err := parseCSVLine(string(line))
				if err != nil || a != ref {
					t.Fatalf("csv fast/reference divergence on %q: %+v vs %+v (%v)", line, a, ref, err)
				}
			}
		}
		diffStreams(t, []byte(s))
	}
	for _, s := range decodeBlockSeeds() {
		dec := NewDecoder(bytes.NewReader(s))
		buf := make([]tracesim.Access, 64)
		for dec.NextBatch(buf) != 0 {
		}
		_ = dec.Err()
	}
}
