package tracestore

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/cache"
	"repro/internal/tracesim"
)

// This file is the ingest half of the codec: format sniffing and the
// streaming text parsers. All upload formats funnel into the same
// emit callback (the Encoder), so a trace's content address never
// depends on how it was spelled or compressed.

// writeKind is the wire value for stores (reads are the zero kind).
const writeKind = cache.Write

// kindByte maps an access kind to its on-disk byte.
func kindByte(k cache.AccessKind) byte {
	if k == cache.Write {
		return 1
	}
	return 0
}

// kindFromByte inverts kindByte. Unknown bytes decode as reads; the
// encoder only ever emits 0 or 1, and the CRC catches corruption.
func kindFromByte(b byte) cache.AccessKind {
	if b == 1 {
		return cache.Write
	}
	return cache.Read
}

// parseKind maps the text spellings to a kind: "R", "read" or "0" is
// a load, "W", "write" or "1" a store; empty defaults to a load.
func parseKind(s string) (cache.AccessKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "r", "read", "0", "load":
		return cache.Read, nil
	case "w", "write", "1", "store":
		return cache.Write, nil
	}
	return cache.Read, fmt.Errorf("bad access kind %q (want R|W)", s)
}

// parseAddr accepts decimal or 0x-prefixed hex addresses.
func parseAddr(s string) (uint64, error) {
	v, err := strconv.ParseUint(strings.TrimSpace(s), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad address %q", s)
	}
	return v, nil
}

// maxLineBytes bounds one text line; real trace lines are tens of
// bytes.
const maxLineBytes = 1 << 20

// ErrTooLarge reports a stream that exceeded the ingest byte limit.
// It fires on the DECODED stream, so a small gzip upload cannot
// expand past the limit ("gzip bomb"); the service maps it to 413.
var ErrTooLarge = errors.New("tracestore: trace stream exceeds the size limit")

// limitReader returns ErrTooLarge once more than its budget has been
// read (unlike io.LimitReader, whose silent EOF would be
// indistinguishable from a truncated upload). Callers hand it
// limit+1 so a stream of exactly the limit passes.
type limitReader struct {
	r io.Reader
	n int64 // remaining budget
}

func (l *limitReader) Read(p []byte) (int, error) {
	if l.n <= 0 {
		return 0, ErrTooLarge
	}
	if int64(len(p)) > l.n {
		p = p[:l.n]
	}
	n, err := l.r.Read(p)
	l.n -= int64(n)
	return n, err
}

// decodeInto sniffs the stream format and feeds every access to emit:
// gzip is unwrapped (and the inner stream re-sniffed), the binary
// format is decoded block by block, and anything else is treated as
// text (NDJSON when the first data line opens a JSON object, CSV
// otherwise). maxBytes > 0 bounds the stream — measured after
// decompression, so compression cannot smuggle an oversized trace
// past the cap.
func decodeInto(r io.Reader, maxBytes int64, emit func(tracesim.Access)) error {
	if maxBytes > 0 {
		r = &limitReader{r: r, n: maxBytes + 1}
	}
	br := bufio.NewReaderSize(r, 64<<10)
	if head, err := br.Peek(2); err == nil && head[0] == 0x1f && head[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return fmt.Errorf("tracestore: bad gzip stream: %w", err)
		}
		defer zr.Close()
		inner := io.Reader(zr)
		if maxBytes > 0 {
			inner = &limitReader{r: zr, n: maxBytes + 1}
		}
		br = bufio.NewReaderSize(inner, 64<<10)
	}
	if head, err := br.Peek(len(magic)); err == nil && bytes.Equal(head, []byte(magic)) {
		return decodeBinaryInto(br, emit)
	}
	return decodeTextInto(br, emit)
}

// decodeBinaryInto re-decodes a binary-format upload. The header's
// summary is ignored — the encoder recomputes it — so a tampered
// header cannot desynchronize metadata from content.
func decodeBinaryInto(br *bufio.Reader, emit func(tracesim.Access)) error {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("tracestore: truncated header: %w", err)
	}
	if _, err := decodeHeader(hdr[:]); err != nil {
		return err
	}
	dec := NewDecoder(br)
	buf := make([]tracesim.Access, blockAccesses)
	for {
		n := dec.NextBatch(buf)
		if n == 0 {
			break
		}
		for _, a := range buf[:n] {
			emit(a)
		}
	}
	return dec.Err()
}

// decodeTextInto parses NDJSON or CSV line streams. The dialect is
// decided by the first data line and held for the whole stream.
func decodeTextInto(br *bufio.Reader, emit func(tracesim.Access)) error {
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	lineNo := 0
	ndjson := false
	decided := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !decided {
			ndjson = strings.HasPrefix(line, "{")
			decided = true
			if !ndjson && isCSVHeader(line) {
				continue
			}
		}
		var (
			a   tracesim.Access
			err error
		)
		if ndjson {
			a, err = parseNDJSONLine(line)
		} else {
			a, err = parseCSVLine(line)
		}
		if err != nil {
			return fmt.Errorf("tracestore: line %d: %w", lineNo, err)
		}
		emit(a)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("tracestore: line %d: %w", lineNo+1, err)
	}
	return nil
}

// isCSVHeader recognizes a leading "addr,kind"-style header row.
func isCSVHeader(line string) bool {
	first := line
	if i := strings.IndexByte(line, ','); i >= 0 {
		first = line[:i]
	}
	_, err := parseAddr(first)
	return err != nil
}

// parseNDJSONLine parses {"addr": N|"0x..", "kind": "R"|"W"}.
func parseNDJSONLine(line string) (tracesim.Access, error) {
	var rec struct {
		Addr json.RawMessage `json:"addr"`
		Kind string          `json:"kind"`
	}
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		return tracesim.Access{}, fmt.Errorf("bad JSON: %w", err)
	}
	if len(rec.Addr) == 0 {
		return tracesim.Access{}, fmt.Errorf("missing addr field")
	}
	raw := strings.Trim(string(rec.Addr), `"`)
	addr, err := parseAddr(raw)
	if err != nil {
		return tracesim.Access{}, err
	}
	kind, err := parseKind(rec.Kind)
	if err != nil {
		return tracesim.Access{}, err
	}
	return tracesim.Access{Addr: addr, Kind: kind}, nil
}

// parseCSVLine parses "addr[,kind]".
func parseCSVLine(line string) (tracesim.Access, error) {
	addrField, kindField := line, ""
	if i := strings.IndexByte(line, ','); i >= 0 {
		addrField, kindField = line[:i], line[i+1:]
	}
	addr, err := parseAddr(addrField)
	if err != nil {
		return tracesim.Access{}, err
	}
	kind, err := parseKind(kindField)
	if err != nil {
		return tracesim.Access{}, err
	}
	return tracesim.Access{Addr: addr, Kind: kind}, nil
}
