package tracestore

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/cache"
	"repro/internal/tracesim"
)

// This file is the ingest half of the codec: format sniffing and the
// streaming text parsers. All upload formats funnel into the same
// emit callback (the Encoder), so a trace's content address never
// depends on how it was spelled or compressed.
//
// Text parsing is two-tier. The fast tier (parseNDJSONFast,
// parseCSVFast) works on the scanner's byte slices with no per-line
// allocation and handles the common spellings; it accepts an input
// only when its result is provably identical to what the reference
// tier would produce. Anything unusual — escapes, unknown JSON keys,
// octal/underscore numerals, non-ASCII whitespace — falls back, line
// by line, to the reference parsers (parseNDJSONLine via
// encoding/json, parseCSVLine via strconv), which also own all error
// reporting. Equivalence of the two tiers is enforced by the
// differential fuzz targets in fuzz_test.go.

// writeKind is the wire value for stores (reads are the zero kind).
const writeKind = cache.Write

// kindByte maps an access kind to its on-disk byte.
func kindByte(k cache.AccessKind) byte {
	if k == cache.Write {
		return 1
	}
	return 0
}

// kindFromByte inverts kindByte. Unknown bytes decode as reads; the
// encoder only ever emits 0 or 1, and the CRC catches corruption.
func kindFromByte(b byte) cache.AccessKind {
	if b == 1 {
		return cache.Write
	}
	return cache.Read
}

// parseKind maps the text spellings to a kind: "R", "read" or "0" is
// a load, "W", "write" or "1" a store; empty defaults to a load.
func parseKind(s string) (cache.AccessKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "r", "read", "0", "load":
		return cache.Read, nil
	case "w", "write", "1", "store":
		return cache.Write, nil
	}
	return cache.Read, fmt.Errorf("bad access kind %q (want R|W)", s)
}

// parseAddr accepts decimal or 0x-prefixed hex addresses.
func parseAddr(s string) (uint64, error) {
	v, err := strconv.ParseUint(strings.TrimSpace(s), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad address %q", s)
	}
	return v, nil
}

// maxLineBytes bounds one text line; real trace lines are tens of
// bytes.
const maxLineBytes = 1 << 20

// ErrTooLarge reports a stream that exceeded the ingest byte limit.
// It fires on the DECODED stream, so a small gzip upload cannot
// expand past the limit ("gzip bomb"); the service maps it to 413.
var ErrTooLarge = errors.New("tracestore: trace stream exceeds the size limit")

// limitReader returns ErrTooLarge once more than its budget has been
// read (unlike io.LimitReader, whose silent EOF would be
// indistinguishable from a truncated upload). Callers hand it
// limit+1 so a stream of exactly the limit passes.
type limitReader struct {
	r io.Reader
	n int64 // remaining budget
}

func (l *limitReader) Read(p []byte) (int, error) {
	if l.n <= 0 {
		return 0, ErrTooLarge
	}
	if int64(len(p)) > l.n {
		p = p[:l.n]
	}
	n, err := l.r.Read(p)
	l.n -= int64(n)
	return n, err
}

// decodeInto sniffs the stream format and feeds every access to emit:
// gzip is unwrapped (and the inner stream re-sniffed), the binary
// format is decoded block by block, and anything else is treated as
// text (NDJSON when the first data line opens a JSON object, CSV
// otherwise). maxBytes > 0 bounds the stream — measured after
// decompression, so compression cannot smuggle an oversized trace
// past the cap.
func decodeInto(r io.Reader, maxBytes int64, emit func(tracesim.Access)) error {
	if maxBytes > 0 {
		r = &limitReader{r: r, n: maxBytes + 1}
	}
	br := bufio.NewReaderSize(r, 64<<10)
	if head, err := br.Peek(2); err == nil && head[0] == 0x1f && head[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return fmt.Errorf("tracestore: bad gzip stream: %w", err)
		}
		defer zr.Close()
		inner := io.Reader(zr)
		if maxBytes > 0 {
			inner = &limitReader{r: zr, n: maxBytes + 1}
		}
		br = bufio.NewReaderSize(inner, 64<<10)
	}
	if head, err := br.Peek(len(magic)); err == nil && bytes.Equal(head, []byte(magic)) {
		return decodeBinaryInto(br, emit)
	}
	return decodeTextInto(br, emit)
}

// decodeBinaryInto re-decodes a binary-format upload. The header's
// summary is ignored — the encoder recomputes it — so a tampered
// header cannot desynchronize metadata from content.
func decodeBinaryInto(br *bufio.Reader, emit func(tracesim.Access)) error {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("tracestore: truncated header: %w", err)
	}
	if _, err := decodeHeader(hdr[:]); err != nil {
		return err
	}
	dec := NewDecoder(br)
	buf := make([]tracesim.Access, blockAccesses)
	for {
		n := dec.NextBatch(buf)
		if n == 0 {
			break
		}
		for _, a := range buf[:n] {
			emit(a)
		}
	}
	return dec.Err()
}

// decodeTextInto parses NDJSON or CSV line streams. The dialect is
// decided by the first data line and held for the whole stream. Lines
// are consumed as byte slices straight from the scanner (no per-line
// string), parsed by the fast tier when possible and by the reference
// tier otherwise; parse errors carry the dialect and the 1-based line
// number.
func decodeTextInto(br *bufio.Reader, emit func(tracesim.Access)) error {
	lineNo := 0
	ndjson := false
	decided := false
	format := "csv"
	var spill []byte // lines longer than the reader's buffer
	for {
		// ReadSlice returns a view into the reader's buffer — no
		// per-line copy, unlike bufio.Scanner's shift-and-refill.
		raw, rerr := br.ReadSlice('\n')
		if rerr == bufio.ErrBufferFull {
			spill = append(spill[:0], raw...)
			for rerr == bufio.ErrBufferFull && len(spill) <= maxLineBytes {
				raw, rerr = br.ReadSlice('\n')
				spill = append(spill, raw...)
			}
			if len(spill) > maxLineBytes {
				return fmt.Errorf("tracestore: %s line %d: line exceeds %d bytes", format, lineNo+1, maxLineBytes)
			}
			raw = spill
		}
		if rerr != nil && rerr != io.EOF {
			return fmt.Errorf("tracestore: %s line %d: %w", format, lineNo+1, rerr)
		}
		if len(raw) == 0 {
			if rerr == io.EOF {
				return nil
			}
			continue
		}
		atEOF := rerr == io.EOF
		lineNo++
		line := bytes.TrimSpace(raw)
		if len(line) == 0 || line[0] == '#' {
			if atEOF {
				return nil
			}
			continue
		}
		if !decided {
			ndjson = line[0] == '{'
			decided = true
			if ndjson {
				format = "ndjson"
			} else if isCSVHeader(string(line)) {
				if atEOF {
					return nil
				}
				continue
			}
		}
		var (
			a  tracesim.Access
			ok bool
		)
		if ndjson {
			a, ok = parseNDJSONFast(line)
		} else {
			a, ok = parseCSVFast(line)
		}
		if !ok {
			var err error
			if ndjson {
				a, err = parseNDJSONLine(string(line))
			} else {
				a, err = parseCSVLine(string(line))
			}
			if err != nil {
				return fmt.Errorf("tracestore: %s line %d: %w", format, lineNo, err)
			}
		}
		emit(a)
		if atEOF {
			return nil
		}
	}
}

// --- fast tier -------------------------------------------------------
//
// The fast parsers return ok=false for ANY input they cannot prove
// they parse identically to the reference tier — not just malformed
// input. Returning false is always safe (the line re-parses through
// the reference path); returning a wrong value never is. They
// therefore reject, conservatively: escape sequences, non-ASCII
// bytes, octal/binary/underscore numerals, leading-zero decimals
// (JSON rejects them; CSV's strconv base-0 reads them as octal), and
// any JSON shape beyond a flat addr/kind object.

// asciiSpace reports a byte the reference tier's TrimSpace would also
// trim. Multi-byte (Unicode) whitespace never reaches here: any byte
// >= 0x80 makes the fast tier bail instead.
func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f'
}

// parseDecFast parses a non-empty all-digit decimal with no leading
// zero (except "0" itself), rejecting overflow.
func parseDecFast(b []byte) (uint64, bool) {
	if len(b) == 0 || (len(b) > 1 && b[0] == '0') {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if v > (^uint64(0)-d)/10 {
			return 0, false
		}
		v = v*10 + d
	}
	return v, true
}

// parseAddrFast parses the common address spellings: plain decimal or
// 0x-prefixed hex. Octal, binary, underscores, and signs fall back.
func parseAddrFast(b []byte) (uint64, bool) {
	if len(b) > 2 && b[0] == '0' && (b[1] == 'x' || b[1] == 'X') {
		h := b[2:]
		if len(h) > 16 {
			return 0, false
		}
		var v uint64
		for _, c := range h {
			var d uint64
			switch {
			case c >= '0' && c <= '9':
				d = uint64(c - '0')
			case c >= 'a' && c <= 'f':
				d = uint64(c-'a') + 10
			case c >= 'A' && c <= 'F':
				d = uint64(c-'A') + 10
			default:
				return 0, false
			}
			v = v<<4 | d
		}
		return v, true
	}
	return parseDecFast(b)
}

// eqFoldASCII compares b to the all-lowercase token t ignoring ASCII
// case. Bytes >= 0x80 never match (Unicode case folding differs).
func eqFoldASCII(b []byte, t string) bool {
	if len(b) != len(t) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != t[i] {
			return false
		}
	}
	return true
}

// parseKindFast matches the exact kind spellings the reference tier
// accepts, after trimming ASCII whitespace. Anything else — including
// any non-ASCII byte — falls back.
func parseKindFast(b []byte) (cache.AccessKind, bool) {
	for len(b) > 0 && asciiSpace(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && asciiSpace(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	for _, c := range b {
		if c >= 0x80 {
			return cache.Read, false
		}
	}
	switch len(b) {
	case 0:
		return cache.Read, true
	case 1:
		switch b[0] {
		case 'r', 'R', '0':
			return cache.Read, true
		case 'w', 'W', '1':
			return cache.Write, true
		}
	default:
		switch {
		case eqFoldASCII(b, "read"), eqFoldASCII(b, "load"):
			return cache.Read, true
		case eqFoldASCII(b, "write"), eqFoldASCII(b, "store"):
			return cache.Write, true
		}
	}
	return cache.Read, false
}

// parseNDJSONFast parses a flat {"addr": ..., "kind": "..."} object:
// addr/kind keys in any order (duplicates: last wins, as
// encoding/json does), number or string addresses, no escapes, no
// other keys, nothing after the closing brace. Any deviation falls
// back to encoding/json.
//
//simd:hotpath — runs once per ingested NDJSON line.
func parseNDJSONFast(b []byte) (tracesim.Access, bool) {
	// Template fast path: the canonical emitter spelling
	// {"addr": N} / {"addr": N, "kind": "R"}. Anything else takes the
	// general scan below, which handles all key orders and spellings.
	if len(b) > 10 && b[0] == '{' && string(b[1:9]) == `"addr": ` {
		i := 9
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
		if v, ok := parseDecFast(b[9:i]); ok {
			rest := b[i:]
			if len(rest) == 1 && rest[0] == '}' {
				return tracesim.Access{Addr: v}, true
			}
			if len(rest) == 14 && string(rest[:11]) == `, "kind": "` && rest[12] == '"' && rest[13] == '}' {
				switch rest[11] {
				case 'R', 'r', '0':
					return tracesim.Access{Addr: v}, true
				case 'W', 'w', '1':
					return tracesim.Access{Addr: v, Kind: cache.Write}, true
				}
			}
		}
	}
	i, n := 0, len(b)
	skip := func() {
		for i < n && (b[i] == ' ' || b[i] == '\t' || b[i] == '\r' || b[i] == '\n') {
			i++
		}
	}
	skip()
	if i >= n || b[i] != '{' {
		return tracesim.Access{}, false
	}
	i++
	var a tracesim.Access
	seenAddr := false
	for {
		skip()
		if i >= n || b[i] != '"' {
			return tracesim.Access{}, false
		}
		i++
		ks := i
		for i < n && b[i] != '"' && b[i] != '\\' && b[i] < 0x80 {
			i++
		}
		if i >= n || b[i] != '"' {
			return tracesim.Access{}, false
		}
		key := b[ks:i]
		i++
		skip()
		if i >= n || b[i] != ':' {
			return tracesim.Access{}, false
		}
		i++
		skip()
		switch {
		case bytes.Equal(key, []byte("addr")):
			if i < n && b[i] == '"' {
				i++
				vs := i
				for i < n && b[i] != '"' && b[i] != '\\' && b[i] < 0x80 {
					i++
				}
				if i >= n || b[i] != '"' {
					return tracesim.Access{}, false
				}
				v, ok := parseAddrFast(b[vs:i])
				if !ok {
					return tracesim.Access{}, false
				}
				a.Addr = v
				i++
			} else {
				vs := i
				for i < n && b[i] >= '0' && b[i] <= '9' {
					i++
				}
				v, ok := parseDecFast(b[vs:i])
				if !ok {
					return tracesim.Access{}, false
				}
				a.Addr = v
			}
			seenAddr = true
		case bytes.Equal(key, []byte("kind")):
			if i >= n || b[i] != '"' {
				return tracesim.Access{}, false
			}
			i++
			vs := i
			for i < n && b[i] != '"' && b[i] != '\\' && b[i] < 0x80 {
				i++
			}
			if i >= n || b[i] != '"' {
				return tracesim.Access{}, false
			}
			k, ok := parseKindFast(b[vs:i])
			if !ok {
				return tracesim.Access{}, false
			}
			a.Kind = k
			i++
		default:
			return tracesim.Access{}, false
		}
		skip()
		if i < n && b[i] == ',' {
			i++
			continue
		}
		if i < n && b[i] == '}' {
			i++
			break
		}
		return tracesim.Access{}, false
	}
	skip()
	if i != n || !seenAddr {
		return tracesim.Access{}, false
	}
	return a, true
}

// parseCSVFast parses "addr[,kind]" with ASCII-only content. More
// than one comma, non-ASCII bytes, or unusual numerals fall back.
//
//simd:hotpath — runs once per ingested CSV line.
func parseCSVFast(line []byte) (tracesim.Access, bool) {
	addrF := line
	var kindF []byte
	if i := bytes.IndexByte(line, ','); i >= 0 {
		addrF, kindF = line[:i], line[i+1:]
	}
	for len(addrF) > 0 && asciiSpace(addrF[0]) {
		addrF = addrF[1:]
	}
	for len(addrF) > 0 && asciiSpace(addrF[len(addrF)-1]) {
		addrF = addrF[:len(addrF)-1]
	}
	for _, c := range addrF {
		if c >= 0x80 {
			return tracesim.Access{}, false
		}
	}
	addr, ok := parseAddrFast(addrF)
	if !ok {
		return tracesim.Access{}, false
	}
	kind, ok := parseKindFast(kindF)
	if !ok {
		return tracesim.Access{}, false
	}
	return tracesim.Access{Addr: addr, Kind: kind}, true
}

// isCSVHeader recognizes a leading "addr,kind"-style header row.
func isCSVHeader(line string) bool {
	first := line
	if i := strings.IndexByte(line, ','); i >= 0 {
		first = line[:i]
	}
	_, err := parseAddr(first)
	return err != nil
}

// parseNDJSONLine parses {"addr": N|"0x..", "kind": "R"|"W"}.
func parseNDJSONLine(line string) (tracesim.Access, error) {
	var rec struct {
		Addr json.RawMessage `json:"addr"`
		Kind string          `json:"kind"`
	}
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		return tracesim.Access{}, fmt.Errorf("bad JSON: %w", err)
	}
	if len(rec.Addr) == 0 {
		return tracesim.Access{}, fmt.Errorf("missing addr field")
	}
	raw := strings.Trim(string(rec.Addr), `"`)
	addr, err := parseAddr(raw)
	if err != nil {
		return tracesim.Access{}, err
	}
	kind, err := parseKind(rec.Kind)
	if err != nil {
		return tracesim.Access{}, err
	}
	return tracesim.Access{Addr: addr, Kind: kind}, nil
}

// parseCSVLine parses "addr[,kind]".
func parseCSVLine(line string) (tracesim.Access, error) {
	addrField, kindField := line, ""
	if i := strings.IndexByte(line, ','); i >= 0 {
		addrField, kindField = line[:i], line[i+1:]
	}
	addr, err := parseAddr(addrField)
	if err != nil {
		return tracesim.Access{}, err
	}
	kind, err := parseKind(kindField)
	if err != nil {
		return tracesim.Access{}, err
	}
	return tracesim.Access{Addr: addr, Kind: kind}, nil
}
