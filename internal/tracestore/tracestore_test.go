package tracestore

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/faultfs"
	"repro/internal/tracesim"
	"repro/internal/units"
)

// testAccesses builds a deterministic mixed read/write stream with
// some spatial structure (so delta encoding is exercised in both
// short and long forms).
func testAccesses(n int) []tracesim.Access {
	rng := rand.New(rand.NewSource(7))
	out := make([]tracesim.Access, n)
	addr := uint64(1 << 20)
	for i := range out {
		switch rng.Intn(4) {
		case 0:
			addr += 64 // sequential neighbour
		case 1:
			addr += uint64(rng.Intn(4096))
		default:
			addr = uint64(rng.Intn(1 << 24))
		}
		kind := cache.Read
		if rng.Intn(3) == 0 {
			kind = cache.Write
		}
		out[i] = tracesim.Access{Addr: addr, Kind: kind}
	}
	return out
}

func encodeAll(t *testing.T, accs []tracesim.Access) (*bytes.Buffer, Summary, string) {
	t.Helper()
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for _, a := range accs {
		enc.Append(a)
	}
	sum, id, err := enc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return &buf, sum, id
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	accs := testAccesses(3 * blockAccesses / 2) // spans a block boundary
	buf, sum, _ := encodeAll(t, accs)

	if sum.Accesses != int64(len(accs)) {
		t.Fatalf("summary accesses %d, want %d", sum.Accesses, len(accs))
	}
	if sum.Reads+sum.Writes != sum.Accesses {
		t.Fatalf("read/write mix %d+%d != %d", sum.Reads, sum.Writes, sum.Accesses)
	}
	lines := map[uint64]struct{}{}
	minA, maxA := ^uint64(0), uint64(0)
	for _, a := range accs {
		lines[a.Addr/uint64(units.CacheLine)] = struct{}{}
		if a.Addr < minA {
			minA = a.Addr
		}
		if a.Addr > maxA {
			maxA = a.Addr
		}
	}
	if sum.Lines != int64(len(lines)) || sum.MinAddr != minA || sum.MaxAddr != maxA {
		t.Fatalf("summary %+v disagrees with stream (lines %d, min %#x, max %#x)",
			sum, len(lines), minA, maxA)
	}

	dec := NewDecoder(bytes.NewReader(buf.Bytes()))
	got := make([]tracesim.Access, 0, len(accs))
	chunk := make([]tracesim.Access, 777) // deliberately off-boundary
	for {
		n := dec.NextBatch(chunk)
		if n == 0 {
			break
		}
		got = append(got, chunk[:n]...)
	}
	if err := dec.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(accs) {
		t.Fatalf("decoded %d accesses, want %d", len(got), len(accs))
	}
	for i := range accs {
		if got[i] != accs[i] {
			t.Fatalf("access %d: got %+v want %+v", i, got[i], accs[i])
		}
	}
}

// renderNDJSON and renderCSV spell the same stream in the two text
// dialects (mixed number/hex spellings to prove canonicalization).
func renderNDJSON(accs []tracesim.Access) []byte {
	var b bytes.Buffer
	for i, a := range accs {
		kind := "R"
		if a.Kind == cache.Write {
			kind = "W"
		}
		if i%2 == 0 {
			fmt.Fprintf(&b, "{\"addr\": %d, \"kind\": %q}\n", a.Addr, kind)
		} else {
			fmt.Fprintf(&b, "{\"addr\": \"0x%x\", \"kind\": %q}\n", a.Addr, kind)
		}
	}
	return b.Bytes()
}

func renderCSV(accs []tracesim.Access) []byte {
	var b bytes.Buffer
	b.WriteString("addr,kind\n# comment line\n")
	for _, a := range accs {
		kind := "R"
		if a.Kind == cache.Write {
			kind = "w" // case-insensitive
		}
		fmt.Fprintf(&b, "%d,%s\n", a.Addr, kind)
	}
	return b.Bytes()
}

func gzipped(t *testing.T, raw []byte) []byte {
	t.Helper()
	var b bytes.Buffer
	zw := gzip.NewWriter(&b)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestIngestFormatsDedupe is the content-address contract: every
// upload format and compression of the same access stream ingests to
// the same id, and only the first write creates a file.
func TestIngestFormatsDedupe(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	accs := testAccesses(5000)
	binBuf, _, wantID := encodeAll(t, accs)
	binFile := append(encodeHeaderFor(t, accs), binBuf.Bytes()...)

	uploads := []struct {
		name string
		body []byte
	}{
		{"ndjson", renderNDJSON(accs)},
		{"ndjson.gz", gzipped(t, renderNDJSON(accs))},
		{"csv", renderCSV(accs)},
		{"csv.gz", gzipped(t, renderCSV(accs))},
		{"binary", binFile},
		{"binary.gz", gzipped(t, binFile)},
	}
	for i, up := range uploads {
		meta, existed, err := st.Ingest(bytes.NewReader(up.body), 0)
		if err != nil {
			t.Fatalf("%s: %v", up.name, err)
		}
		if meta.ID != wantID {
			t.Fatalf("%s: id %s, want %s", up.name, meta.ID, wantID)
		}
		if existed != (i > 0) {
			t.Fatalf("%s: existed=%v, want %v", up.name, existed, i > 0)
		}
		if meta.Accesses != int64(len(accs)) {
			t.Fatalf("%s: %d accesses, want %d", up.name, meta.Accesses, len(accs))
		}
	}
	files, err := filepath.Glob(filepath.Join(st.Dir(), "*.trc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("store holds %d files after deduped uploads, want 1: %v", len(files), files)
	}
	if stray, _ := filepath.Glob(filepath.Join(st.Dir(), ".ingest-*")); len(stray) != 0 {
		t.Fatalf("temp files left behind: %v", stray)
	}
}

// encodeHeaderFor builds the header bytes matching a stream (test
// helper for synthesizing complete binary files).
func encodeHeaderFor(t *testing.T, accs []tracesim.Access) []byte {
	t.Helper()
	enc := NewEncoder(bytes.NewBuffer(nil))
	for _, a := range accs {
		enc.Append(a)
	}
	sum, _, err := enc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	h := encodeHeader(sum)
	return h[:]
}

// TestProviderMatchesGenerator replays the same stream once from the
// in-memory generator and once from the store, through both the
// scalar and the sharded simulator, and requires identical results —
// the pinned equivalence the replay service builds on.
func TestProviderMatchesGenerator(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	gen := func() tracesim.BatchGenerator {
		g, err := tracesim.NewUniformRandom(0, 8<<20, 120000, cache.Read, 42)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	func() {
		g := gen()
		chunk := make([]tracesim.Access, 1024)
		for {
			n := g.NextBatch(chunk)
			if n == 0 {
				return
			}
			for _, a := range chunk[:n] {
				enc.Append(a)
			}
		}
	}()
	sum, _, err := enc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	hdr := encodeHeader(sum)
	meta, _, err := st.Ingest(bytes.NewReader(append(hdr[:], buf.Bytes()...)), 0)
	if err != nil {
		t.Fatal(err)
	}

	cfg := tracesim.DefaultConfig(4 << 20)
	ref, err := tracesim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(gen())
	want := ref.Result()

	// Scalar replay from the store.
	prov, err := st.Open(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer prov.Close()
	scalar, err := tracesim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scalar.Run(prov)
	if err := prov.Err(); err != nil {
		t.Fatal(err)
	}
	if got := scalar.Result(); got != want {
		t.Fatalf("stored scalar replay diverges:\n got %+v\nwant %+v", got, want)
	}

	// Sharded replay from the store (multi-pass, exercising Reset).
	prov2, err := st.Open(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer prov2.Close()
	sh, err := tracesim.NewSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sh.RunPasses(prov2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := prov2.Err(); err != nil {
		t.Fatal(err)
	}
	refMulti, err := tracesim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantMulti, err := refMulti.RunPasses(gen(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Accesses != wantMulti.Accesses || got.L1 != wantMulti.L1 || got.L2 != wantMulti.L2 ||
		got.MemCache != wantMulti.MemCache || got.MemReads != wantMulti.MemReads ||
		got.MemWrites != wantMulti.MemWrites || got.Prefetches != wantMulti.Prefetches {
		t.Fatalf("stored sharded replay diverges:\n got %+v\nwant %+v", got, wantMulti)
	}
}

func TestReopenDurability(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	meta, _, err := st.Ingest(bytes.NewReader(renderCSV(testAccesses(2000))), 0)
	if err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := st2.Get(meta.ID)
	if !ok {
		t.Fatalf("trace %s lost across reopen", meta.ID)
	}
	if got != meta {
		t.Fatalf("reopened meta %+v != ingested %+v", got, meta)
	}
	if l := st2.List(); len(l) != 1 || l[0].ID != meta.ID {
		t.Fatalf("List after reopen: %+v", l)
	}
	count, bytesTotal := st2.Totals()
	if count != 1 || bytesTotal != meta.FileBytes {
		t.Fatalf("Totals = (%d, %d), want (1, %d)", count, bytesTotal, meta.FileBytes)
	}
}

func TestDelete(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta, _, err := st.Ingest(bytes.NewReader(renderCSV(testAccesses(100))), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(meta.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(meta.ID); ok {
		t.Fatal("deleted trace still indexed")
	}
	if _, err := st.Open(meta.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Open after delete: %v, want ErrNotFound", err)
	}
	if err := st.Delete(meta.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second delete: %v, want ErrNotFound", err)
	}
	if files, _ := filepath.Glob(filepath.Join(st.Dir(), "*.trc")); len(files) != 0 {
		t.Fatalf("file survives delete: %v", files)
	}
	// Re-ingesting after delete is a fresh write, not a dedupe.
	if _, existed, err := st.Ingest(bytes.NewReader(renderCSV(testAccesses(100))), 0); err != nil || existed {
		t.Fatalf("re-ingest after delete: existed=%v err=%v", existed, err)
	}
}

func TestCorruptedBlockDetected(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	meta, _, err := st.Ingest(bytes.NewReader(renderCSV(testAccesses(4000))), 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, meta.ID+".trc")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize+len(raw)/2] ^= 0xff // flip a byte mid-block
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	prov, err := st.Open(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer prov.Close()
	buf := make([]tracesim.Access, 1024)
	for prov.NextBatch(buf) > 0 {
	}
	if prov.Err() == nil {
		t.Fatal("corrupted block replayed without error")
	}
	if !strings.Contains(prov.Err().Error(), "checksum") {
		t.Fatalf("error %v does not name the checksum", prov.Err())
	}
}

func TestIngestErrors(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, body, want string
	}{
		{"empty", "", "empty trace"},
		{"comments-only", "# nothing here\n\n", "empty trace"},
		{"bad-addr", "addr,kind\nnotanumber,R\n", "line 2"},
		{"bad-kind", "123,X\n", "access kind"},
		{"bad-json", "{\"addr\": }\n", "line 1"},
		{"json-missing-addr", "{\"kind\": \"R\"}\n", "missing addr"},
	}
	for _, c := range cases {
		if _, _, err := st.Ingest(strings.NewReader(c.body), 0); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err %v, want substring %q", c.name, err, c.want)
		}
	}
	if stray, _ := filepath.Glob(filepath.Join(st.Dir(), ".ingest-*")); len(stray) != 0 {
		t.Fatalf("failed ingests left temp files: %v", stray)
	}
}

func TestExportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seq.trc")
	g, err := tracesim.NewSequential(0, 1<<20, 64, cache.Read)
	if err != nil {
		t.Fatal(err)
	}
	sum, id, err := Export(path, g)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Accesses != (1<<20)/64 {
		t.Fatalf("exported %d accesses, want %d", sum.Accesses, (1<<20)/64)
	}
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	meta, existed, err := st.Ingest(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if existed || meta.ID != id {
		t.Fatalf("ingest of export: id %s existed=%v, want %s false", meta.ID, existed, id)
	}
}

// TestIngestDecodedByteLimit pins the gzip-bomb defence: the limit
// applies to the DECODED stream, so a small compressed upload cannot
// expand past it, while streams within the limit still ingest.
func TestIngestDecodedByteLimit(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// ~600 KB of text compressing to a few KB.
	big := bytes.Repeat([]byte("4096,R\n"), 90000)
	bomb := gzipped(t, big)
	if int64(len(bomb)) >= 64<<10 {
		t.Fatalf("test bomb did not compress: %d bytes", len(bomb))
	}
	if _, _, err := st.Ingest(bytes.NewReader(bomb), 64<<10); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("gzip bomb ingested past the decoded limit: %v", err)
	}
	// The same limit admits a small gzipped trace.
	small := gzipped(t, renderCSV(testAccesses(500)))
	if _, _, err := st.Ingest(bytes.NewReader(small), 64<<10); err != nil {
		t.Fatalf("small gzipped trace rejected: %v", err)
	}
	// Uncompressed streams are bounded too.
	if _, _, err := st.Ingest(bytes.NewReader(big), 64<<10); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized plain stream ingested: %v", err)
	}
	if stray, _ := filepath.Glob(filepath.Join(st.Dir(), ".ingest-*")); len(stray) != 0 {
		t.Fatalf("limited ingests left temp files: %v", stray)
	}
}

// TestReopenQuarantinesTruncatedTail simulates a crash mid-ingest
// that somehow left a visible but truncated .trc file (e.g. a torn
// rename on a non-atomic filesystem): reopening must quarantine the
// damaged file and keep serving every intact trace.
func TestReopenQuarantinesTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	good, _, err := st.Ingest(bytes.NewReader(renderCSV(testAccesses(3000))), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Forge a second trace file whose header is cut mid-way — the
	// shape a torn write leaves.
	buf, err := os.ReadFile(filepath.Join(dir, good.ID+".trc"))
	if err != nil {
		t.Fatal(err)
	}
	fakeID := strings.Repeat("ab", 32)
	if err := os.WriteFile(filepath.Join(dir, fakeID+".trc"), buf[:headerSize/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// And a third with a valid-length but scribbled header (CRC fails).
	rot := append([]byte(nil), buf...)
	rot[10] ^= 0xff
	rotID := strings.Repeat("cd", 32)
	if err := os.WriteFile(filepath.Join(dir, rotID+".trc"), rot, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.Get(good.ID); !ok {
		t.Fatal("intact trace lost while quarantining a damaged neighbour")
	}
	if _, ok := st2.Get(fakeID); ok {
		t.Fatal("truncated trace served")
	}
	if _, ok := st2.Get(rotID); ok {
		t.Fatal("corrupt-header trace served")
	}
	if q := st2.Quarantined(); q != 2 {
		t.Fatalf("quarantined %d files, want 2", q)
	}
	for _, id := range []string{fakeID, rotID} {
		if _, err := os.Stat(filepath.Join(dir, "quarantine", id+".trc")); err != nil {
			t.Fatalf("quarantined file %s missing: %v", id, err)
		}
		if _, err := os.Stat(filepath.Join(dir, id+".trc")); !os.IsNotExist(err) {
			t.Fatalf("damaged file %s still in the live directory", id)
		}
	}
	// A re-upload of content whose file was quarantined under a fake
	// name is a fresh ingest, not a dedupe against damaged data.
	if l := st2.List(); len(l) != 1 || l[0].ID != good.ID {
		t.Fatalf("List after quarantine: %+v", l)
	}
}

// TestReopenSweepsStaleIngestTemp: a crash mid-ingest leaves only a
// temp file; reopening must remove it and index nothing.
func TestReopenSweepsStaleIngestTemp(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ".ingest-stale1"), []byte("half a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := st.Totals(); n != 0 {
		t.Fatalf("stale temp indexed as a trace (%d)", n)
	}
	if _, err := os.Stat(filepath.Join(dir, ".ingest-stale1")); !os.IsNotExist(err) {
		t.Fatalf("stale ingest temp survived reopen: %v", err)
	}
}

// TestIngestKilledMidWrite drives the faultfs kill-points through a
// live ingest — die on the Nth data write, die with ENOSPC, die on
// the commit rename — and proves the store invariant each time: the
// failed ingest surfaces an error, nothing damaged becomes visible,
// and a reopened store serves exactly the traces that were
// acknowledged.
func TestIngestKilledMidWrite(t *testing.T) {
	cases := map[string]func(*faultfs.Fault){
		"torn-data-write": func(f *faultfs.Fault) { f.FailAfterWrites(2, true) },
		"enospc":          func(f *faultfs.Fault) { f.SetErr(faultfs.ENOSPC); f.FailAfterWrites(1, false) },
		"rename-fault":    func(f *faultfs.Fault) { f.FailAfterRenames(0) },
		"sync-fault":      func(f *faultfs.Fault) { f.FailAfterSyncs(0) },
	}
	for name, arm := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			fault := faultfs.New(nil)
			st, err := OpenFS(fault, dir)
			if err != nil {
				t.Fatal(err)
			}
			good, _, err := st.Ingest(bytes.NewReader(renderCSV(testAccesses(1500))), 0)
			if err != nil {
				t.Fatal(err)
			}
			arm(fault)
			if _, _, err := st.Ingest(bytes.NewReader(renderCSV(testAccesses(9000))), 0); err == nil {
				t.Fatal("ingest through tripped failpoint reported success")
			}
			fault.Reset()

			// The live store must still serve the acknowledged trace
			// and nothing else.
			if _, ok := st.Get(good.ID); !ok {
				t.Fatal("acknowledged trace lost after failed ingest")
			}
			if n, _ := st.Totals(); n != 1 {
				t.Fatalf("store indexes %d traces after failed ingest, want 1", n)
			}

			// So must a cold reopen of the directory.
			st2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := st2.Get(good.ID); !ok {
				t.Fatal("acknowledged trace lost across reopen")
			}
			if n, _ := st2.Totals(); n != 1 {
				t.Fatalf("reopened store indexes %d traces, want 1", n)
			}
			// Whatever the fault left behind must not be a servable
			// .trc in the live directory.
			if files, _ := filepath.Glob(filepath.Join(dir, "*.trc")); len(files) != 1 {
				t.Fatalf("live directory holds %d .trc files, want 1: %v", len(files), files)
			}
		})
	}
}
