package tracestore

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/tracesim"
)

// replayConfigs spans the memory organizations the paper studies:
// flat DRAM, flat fast memory (HBM/MCDRAM latencies), MCDRAM as a
// memory-side cache, and a hybrid point with a smaller cache slice.
func replayConfigs() map[string]tracesim.Config {
	dram := tracesim.DefaultConfig(0)

	hbm := tracesim.DefaultConfig(0)
	hbm.MemLat = hbm.MemLat / 3 // all accesses land in the fast tier

	cacheMode := tracesim.DefaultConfig(4 << 20)

	hybrid := tracesim.DefaultConfig(2 << 20)
	hybrid.MemCacheLat *= 1.2 // a partitioned MCDRAM runs a bit slower

	return map[string]tracesim.Config{
		"dram": dram, "hbm": hbm, "cache": cacheMode, "hybrid": hybrid,
	}
}

// storeWith ingests one stream and returns the store and its id.
func storeWith(t *testing.T, accs []tracesim.Access) (*Store, string) {
	t.Helper()
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := st.Ingest(bytes.NewReader(renderCSV(accs)), 0)
	if err != nil {
		t.Fatal(err)
	}
	return st, m.ID
}

// requireSame demands two replay results agree exactly — counts and
// integer-picosecond time both.
func requireSame(t *testing.T, label string, want, got tracesim.Result) {
	t.Helper()
	if got != want {
		t.Errorf("%s: results diverge\n got %+v\nwant %+v", label, got, want)
	}
}

// TestBlockFedReplayEquivalence is the pinned guarantee behind the
// block-fed fast path: for every memory organization, replaying a
// stored trace (a) per access through the Provider into the scalar
// simulator, (b) block-fed into the scalar simulator, (c) per access
// into the sharded simulator, and (d) block-fed into the sharded
// simulator produces identical counts and identical replay time.
func TestBlockFedReplayEquivalence(t *testing.T) {
	accs := testAccesses(3*blockAccesses + 1234) // several blocks + tail
	st, id := storeWith(t, accs)
	const passes = 2

	open := func() *Provider {
		p, err := st.Open(id)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		return p
	}

	for cfgName, cfg := range replayConfigs() {
		t.Run(cfgName, func(t *testing.T) {
			scalar, err := tracesim.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			p := open()
			ref, err := scalar.RunPasses(p, passes)
			if err != nil {
				t.Fatal(err)
			}
			if p.Err() != nil {
				t.Fatal(p.Err())
			}

			scalarBlocks, err := tracesim.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			pb := open()
			got, err := scalarBlocks.RunBlockPasses(pb.Blocks(), passes)
			if err != nil {
				t.Fatal(err)
			}
			if pb.Err() != nil {
				t.Fatal(pb.Err())
			}
			requireSame(t, cfgName+"/scalar-blocks", ref, got)

			for _, shards := range []int{1, 4} {
				sh, err := tracesim.NewSharded(cfg, shards)
				if err != nil {
					t.Fatal(err)
				}
				ps := open()
				got, err := sh.RunPasses(ps, passes)
				if err != nil {
					t.Fatal(err)
				}
				if ps.Err() != nil {
					t.Fatal(ps.Err())
				}
				requireSame(t, cfgName+"/sharded-provider", ref, got)

				shb, err := tracesim.NewSharded(cfg, shards)
				if err != nil {
					t.Fatal(err)
				}
				pbb := open()
				got, err = shb.RunBlockPasses(pbb.Blocks(), passes)
				if err != nil {
					t.Fatal(err)
				}
				if pbb.Err() != nil {
					t.Fatal(pbb.Err())
				}
				requireSame(t, cfgName+"/sharded-blocks", ref, got)
			}
		})
	}
}

// damage rewrites a stored trace file in place: keep[0:n] bytes, then
// optionally flip the last byte (CRC corruption instead of
// truncation).
func damage(t *testing.T, st *Store, id string, truncateTo int64, flipLast bool) {
	t.Helper()
	path := st.path(id)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if truncateTo > 0 && truncateTo < int64(len(raw)) {
		raw = raw[:truncateTo]
	}
	if flipLast {
		raw[len(raw)-1] ^= 0xff
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestBlockReplayDamagedTail: a truncated or tail-corrupted stream
// must end block replay cleanly — fewer accesses, an error from Err,
// no panic — through both the per-access and block-fed paths.
func TestBlockReplayDamagedTail(t *testing.T) {
	accs := testAccesses(3 * blockAccesses)
	cases := map[string]func(t *testing.T, st *Store, id string, fileLen int64){
		"truncated": func(t *testing.T, st *Store, id string, fileLen int64) {
			damage(t, st, id, fileLen-101, false)
		},
		"corrupt-crc": func(t *testing.T, st *Store, id string, fileLen int64) {
			damage(t, st, id, 0, true)
		},
	}
	for name, breakIt := range cases {
		t.Run(name, func(t *testing.T) {
			st, id := storeWith(t, accs)
			m, _ := st.Get(id)
			breakIt(t, st, id, m.FileBytes)

			p, err := st.Open(id)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			br := p.Blocks()
			var n int
			for {
				b, ok := br.NextBlock()
				if !ok {
					break
				}
				n += len(b)
			}
			if br.Err() == nil {
				t.Fatal("damaged stream replayed without error")
			}
			if n >= len(accs) {
				t.Fatalf("damaged stream still yielded %d of %d accesses", n, len(accs))
			}

			// The per-access path must agree about the damage.
			p2, err := st.Open(id)
			if err != nil {
				t.Fatal(err)
			}
			defer p2.Close()
			var n2 int
			buf := make([]tracesim.Access, 777)
			for {
				k := p2.NextBatch(buf)
				if k == 0 {
					break
				}
				n2 += k
			}
			if p2.Err() == nil {
				t.Fatal("per-access path replayed damaged stream without error")
			}
		})
	}
}

// TestBlockReaderResetMidStream: Reset during a partially consumed
// block must restart cleanly from the first access.
func TestBlockReaderResetMidStream(t *testing.T) {
	accs := testAccesses(2*blockAccesses + 99)
	st, id := storeWith(t, accs)
	p, err := st.Open(id)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	br := p.Blocks()
	if _, ok := br.NextBlock(); !ok {
		t.Fatal(br.Err())
	}
	br.Reset()
	var total int
	for {
		b, ok := br.NextBlock()
		if !ok {
			break
		}
		total += len(b)
	}
	if br.Err() != nil {
		t.Fatal(br.Err())
	}
	if total != len(accs) {
		t.Fatalf("after reset: %d accesses, want %d", total, len(accs))
	}
}
