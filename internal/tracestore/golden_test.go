package tracestore

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cache"
	"repro/internal/tracesim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures under testdata/")

// goldenStreams are the fixed access streams behind the committed
// fixtures. They must never change: the fixtures pin the on-disk
// format and the content addresses, so any encoder change that
// alters either is caught byte-for-byte.
func goldenStreams() map[string][]tracesim.Access {
	single := []tracesim.Access{{Addr: 0x1000, Kind: cache.Read}}

	// Alternating kinds and mixed deltas across a block boundary.
	mixed := testAccesses(3*blockAccesses/2 + 17)

	// Long same-kind runs and monotone addresses: exercises the
	// run-length kind coding and small positive deltas.
	runs := make([]tracesim.Access, 2*blockAccesses)
	for i := range runs {
		k := cache.Read
		if i >= len(runs)/2 {
			k = cache.Write
		}
		runs[i] = tracesim.Access{Addr: uint64(i) * 64, Kind: k}
	}
	return map[string][]tracesim.Access{
		"single": single,
		"mixed":  mixed,
		"runs":   runs,
	}
}

// encodeFile renders a full .trc image (header + block stream) the
// way Store.Ingest lays it out, using the serial encoder.
func encodeFile(t *testing.T, accs []tracesim.Access) ([]byte, Summary, string) {
	t.Helper()
	var body bytes.Buffer
	enc := NewEncoder(&body)
	for _, a := range accs {
		enc.Append(a)
	}
	sum, id, err := enc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	hdr := encodeHeader(sum)
	return append(hdr[:], body.Bytes()...), sum, id
}

type goldenMeta struct {
	ID       string `json:"id"`
	Accesses int64  `json:"accesses"`
	Reads    int64  `json:"reads"`
	Writes   int64  `json:"writes"`
	Lines    int64  `json:"lines"`
	MinAddr  uint64 `json:"min_addr"`
	MaxAddr  uint64 `json:"max_addr"`
}

// TestGoldenFixtures pins the binary format: encoding the fixed
// streams must reproduce the committed files byte-for-byte, decoding
// the committed files must reproduce the streams, and the content
// addresses must never drift. Run with -update to regenerate after a
// deliberate, versioned format change.
func TestGoldenFixtures(t *testing.T) {
	dir := filepath.Join("testdata", "golden")
	for name, accs := range goldenStreams() {
		t.Run(name, func(t *testing.T) {
			file, sum, id := encodeFile(t, accs)
			meta := goldenMeta{
				ID:       id,
				Accesses: sum.Accesses,
				Reads:    sum.Reads,
				Writes:   sum.Writes,
				Lines:    sum.Lines,
				MinAddr:  sum.MinAddr,
				MaxAddr:  sum.MaxAddr,
			}
			trcPath := filepath.Join(dir, name+".trc")
			jsonPath := filepath.Join(dir, name+".json")
			if *updateGolden {
				if err := os.MkdirAll(dir, 0o755); err != nil {
					t.Fatal(err)
				}
				mj, err := json.MarshalIndent(meta, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(trcPath, file, 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(jsonPath, append(mj, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
			}

			want, err := os.ReadFile(trcPath)
			if err != nil {
				t.Fatalf("missing golden fixture (run with -update): %v", err)
			}
			if !bytes.Equal(file, want) {
				t.Fatalf("encoder output diverged from golden fixture %s (%d vs %d bytes)", trcPath, len(file), len(want))
			}
			mj, err := os.ReadFile(jsonPath)
			if err != nil {
				t.Fatal(err)
			}
			var wantMeta goldenMeta
			if err := json.Unmarshal(mj, &wantMeta); err != nil {
				t.Fatal(err)
			}
			if meta != wantMeta {
				t.Fatalf("summary/content address drifted:\n got %+v\nwant %+v", meta, wantMeta)
			}

			// And the committed bytes must decode back to the stream.
			dec := NewDecoder(bytes.NewReader(want[headerSize:]))
			var got []tracesim.Access
			buf := make([]tracesim.Access, 1000)
			for {
				n := dec.NextBatch(buf)
				if n == 0 {
					break
				}
				got = append(got, buf[:n]...)
			}
			if err := dec.Err(); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(accs) {
				t.Fatalf("decoded %d accesses, want %d", len(got), len(accs))
			}
			for i := range accs {
				if got[i] != accs[i] {
					t.Fatalf("access %d: got %+v want %+v", i, got[i], accs[i])
				}
			}
		})
	}
}

// TestParallelEncoderMatchesSerial is the parallel-encode pin: for
// every worker count and stream shape, the pipelined encoder must
// produce the same bytes, Summary, and content address as the serial
// one. It runs the parallel encoder explicitly so the path is
// exercised even when the host (or CI) has GOMAXPROCS=1 and
// Store.Ingest would pick the serial encoder.
func TestParallelEncoderMatchesSerial(t *testing.T) {
	streams := goldenStreams()
	streams["empty-block-boundary"] = testAccesses(blockAccesses)
	streams["tiny"] = testAccesses(3)
	for name, accs := range streams {
		for _, workers := range []int{1, 2, 4, 7} {
			t.Run(name, func(t *testing.T) {
				var want bytes.Buffer
				se := NewEncoder(&want)
				for _, a := range accs {
					se.Append(a)
				}
				wantSum, wantID, err := se.Finish()
				if err != nil {
					t.Fatal(err)
				}

				var got bytes.Buffer
				pe := newParallelEncoder(&got, workers)
				for _, a := range accs {
					pe.Append(a)
				}
				gotSum, gotID, err := pe.Finish()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got.Bytes(), want.Bytes()) {
					t.Fatalf("workers=%d: parallel encoder bytes differ (%d vs %d)", workers, got.Len(), want.Len())
				}
				if gotID != wantID {
					t.Fatalf("workers=%d: content address %s, want %s", workers, gotID, wantID)
				}
				if gotSum != wantSum {
					t.Fatalf("workers=%d: summary %+v, want %+v", workers, gotSum, wantSum)
				}
			})
		}
	}
}

// TestParallelEncoderAbort must quiesce the pipeline mid-stream
// without hanging or panicking, including a double shutdown.
func TestParallelEncoderAbort(t *testing.T) {
	var buf bytes.Buffer
	pe := newParallelEncoder(&buf, 4)
	for _, a := range testAccesses(3 * blockAccesses) {
		pe.Append(a)
	}
	pe.Abort()
	pe.Abort() // idempotent
}

// TestParallelEncoderEmpty mirrors the serial encoder's empty-trace
// error.
func TestParallelEncoderEmpty(t *testing.T) {
	var buf bytes.Buffer
	pe := newParallelEncoder(&buf, 2)
	if _, _, err := pe.Finish(); err == nil {
		t.Fatal("expected empty-trace error")
	}
}
