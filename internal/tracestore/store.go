package tracestore

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/faultfs"
	"repro/internal/units"
)

// ErrNotFound is returned for operations on a trace id the store does
// not hold; the service maps it to HTTP 404.
var ErrNotFound = errors.New("tracestore: unknown trace")

// Meta is the stored metadata of one trace: the stream summary plus
// the on-disk accounting. It is what GET /v1/traces serves.
type Meta struct {
	// ID is the content address: hex SHA-256 of the canonical access
	// stream.
	ID string `json:"id"`
	// Accesses, Reads and Writes describe the reference mix.
	Accesses int64 `json:"accesses"`
	Reads    int64 `json:"reads"`
	Writes   int64 `json:"writes"`
	// FootprintBytes is the unique bytes touched (distinct cache
	// lines x 64 B).
	FootprintBytes int64 `json:"footprint_bytes"`
	// MinAddr and MaxAddr bound the address range.
	MinAddr uint64 `json:"min_addr"`
	MaxAddr uint64 `json:"max_addr"`
	// FileBytes is the encoded size on disk.
	FileBytes int64 `json:"file_bytes"`
}

// Footprint returns the footprint in unit form.
func (m Meta) Footprint() units.Bytes { return units.Bytes(m.FootprintBytes) }

// Store is a durable, content-addressed trace store over one
// directory: each trace is a single <sha256>.trc file, and an
// in-memory index (rebuilt from the headers at Open) answers metadata
// queries without touching disk.
type Store struct {
	fs  faultfs.FS
	dir string

	mu          sync.Mutex
	metas       map[string]Meta // guarded by mu
	quarantined int64           // guarded by mu
}

// Open opens (creating if needed) a store rooted at dir and indexes
// the traces already present — the durability half of the contract:
// a restarted service re-serves every previously ingested trace.
func Open(dir string) (*Store, error) {
	return OpenFS(faultfs.OS{}, dir)
}

// OpenFS is Open over an injected filesystem (fault-injection tests
// substitute a faultfs.Fault to kill ingest mid-write).
//
// Recovery semantics: stale ingest temp files (a crash mid-ingest)
// are swept — they were never visible; a .trc file with a corrupt or
// truncated header, or whose name does not match its content address,
// is moved to a quarantine subdirectory rather than silently skipped,
// so it is never served and never mistaken for a live trace by a later
// ingest of the same content.
func OpenFS(fsys faultfs.FS, dir string) (*Store, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	s := &Store{fs: fsys, dir: dir, metas: make(map[string]Meta)}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasPrefix(name, ".ingest-") {
			// A crash mid-ingest left this temp file; it was never
			// indexed, so removing it loses nothing.
			fsys.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasSuffix(name, ".trc") {
			continue
		}
		meta, err := s.readMeta(filepath.Join(dir, name))
		if err != nil || meta.ID != strings.TrimSuffix(name, ".trc") {
			// Corrupt header or a name that lies about its content
			// address: quarantine the file so it can never be served.
			if qerr := s.quarantine(name); qerr != nil {
				return nil, qerr
			}
			continue
		}
		s.metas[meta.ID] = meta
	}
	return s, nil
}

// quarantine moves one damaged trace file into <dir>/quarantine.
//
//simd:locked — runs inside OpenFS's index scan, before the Store is published to any other goroutine.
func (s *Store) quarantine(name string) error {
	qdir := filepath.Join(s.dir, "quarantine")
	if err := s.fs.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("tracestore: quarantine: %w", err)
	}
	if err := s.fs.Rename(filepath.Join(s.dir, name), filepath.Join(qdir, name)); err != nil {
		return fmt.Errorf("tracestore: quarantine: %w", err)
	}
	s.quarantined++
	return nil
}

// Quarantined returns how many damaged files Open moved aside.
func (s *Store) Quarantined() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// readMeta loads one trace file's header. The ID is taken from the
// file name and verified against it by the caller.
func (s *Store) readMeta(path string) (Meta, error) {
	f, err := s.fs.Open(path)
	if err != nil {
		return Meta{}, err
	}
	defer f.Close()
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return Meta{}, fmt.Errorf("tracestore: %s: %w", path, err)
	}
	sum, err := decodeHeader(hdr[:])
	if err != nil {
		return Meta{}, fmt.Errorf("tracestore: %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		return Meta{}, err
	}
	return metaFrom(strings.TrimSuffix(filepath.Base(path), ".trc"), sum, st.Size()), nil
}

func metaFrom(id string, sum Summary, fileBytes int64) Meta {
	return Meta{
		ID:             id,
		Accesses:       sum.Accesses,
		Reads:          sum.Reads,
		Writes:         sum.Writes,
		FootprintBytes: int64(sum.Footprint()),
		MinAddr:        sum.MinAddr,
		MaxAddr:        sum.MaxAddr,
		FileBytes:      fileBytes,
	}
}

// path returns the on-disk location of a trace id.
func (s *Store) path(id string) string { return filepath.Join(s.dir, id+".trc") }

// Ingest consumes a trace stream in any accepted format (NDJSON, CSV,
// either gzipped, or the binary format itself), re-encodes it into
// the canonical binary form, and files it under its content address.
// The stream is processed block by block — whole traces are never
// buffered. maxBytes > 0 bounds the stream measured AFTER
// decompression (ErrTooLarge beyond it), so a gzip bomb cannot bypass
// a transport-level cap; 0 means unbounded. The second return reports
// deduplication: true means the store already held this exact access
// stream and no new file was written.
func (s *Store) Ingest(r io.Reader, maxBytes int64) (Meta, bool, error) {
	tmp, err := s.fs.CreateTemp(s.dir, ".ingest-*")
	if err != nil {
		return Meta{}, false, fmt.Errorf("tracestore: %w", err)
	}
	tmpPath := tmp.Name()
	// The temp file is removed on every path except the final rename.
	discard := func() {
		tmp.Close()
		s.fs.Remove(tmpPath)
	}

	if _, err := tmp.Write(make([]byte, headerSize)); err != nil {
		discard()
		return Meta{}, false, fmt.Errorf("tracestore: %w", err)
	}
	// With more than one CPU, block encoding is pipelined across
	// workers; the output bytes and content address are identical
	// either way (see parallelEncoder).
	var enc streamEncoder
	if n := runtime.GOMAXPROCS(0); n > 1 {
		enc = newParallelEncoder(tmp, n)
	} else {
		enc = NewEncoder(tmp)
	}
	if err := decodeInto(r, maxBytes, enc.Append); err != nil {
		enc.Abort()
		discard()
		return Meta{}, false, err
	}
	sum, id, err := enc.Finish()
	if err != nil {
		discard()
		return Meta{}, false, err
	}
	hdr := encodeHeader(sum)
	if _, err := tmp.WriteAt(hdr[:], 0); err != nil {
		discard()
		return Meta{}, false, fmt.Errorf("tracestore: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		discard()
		return Meta{}, false, fmt.Errorf("tracestore: %w", err)
	}
	st, err := tmp.Stat()
	if err != nil {
		discard()
		return Meta{}, false, fmt.Errorf("tracestore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		s.fs.Remove(tmpPath)
		return Meta{}, false, fmt.Errorf("tracestore: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.metas[id]; ok {
		// Same content address: the store already holds this stream.
		s.fs.Remove(tmpPath)
		return m, true, nil
	}
	if err := s.fs.Rename(tmpPath, s.path(id)); err != nil {
		s.fs.Remove(tmpPath)
		return Meta{}, false, fmt.Errorf("tracestore: %w", err)
	}
	m := metaFrom(id, sum, st.Size())
	s.metas[id] = m
	return m, false, nil
}

// List returns the stored traces' metadata, sorted by id for
// deterministic output.
func (s *Store) List() []Meta {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Meta, 0, len(s.metas))
	for _, m := range s.metas {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get returns one trace's metadata.
func (s *Store) Get(id string) (Meta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.metas[id]
	return m, ok
}

// Totals returns the stored trace count and their aggregate encoded
// bytes (the /metrics gauges).
func (s *Store) Totals() (count int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.metas {
		bytes += m.FileBytes
	}
	return len(s.metas), bytes
}

// Delete removes a trace from the index and from disk.
func (s *Store) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.metas[id]; !ok {
		return fmt.Errorf("%w %q", ErrNotFound, id)
	}
	if err := s.fs.Remove(s.path(id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("tracestore: %w", err)
	}
	delete(s.metas, id)
	return nil
}

// Open returns a Provider replaying the stored trace from its first
// access. Each Provider owns an independent file handle, so
// concurrent replays of the same trace do not interfere.
func (s *Store) Open(id string) (*Provider, error) {
	s.mu.Lock()
	meta, ok := s.metas[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrNotFound, id)
	}
	f, err := s.fs.Open(s.path(id))
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("tracestore: %s: %w", id, err)
	}
	if _, err := decodeHeader(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	return &Provider{meta: meta, f: f, dec: NewDecoder(f)}, nil
}
