package tracestore

import (
	"fmt"
	"io"
	"os"

	"repro/internal/faultfs"
	"repro/internal/tracesim"
)

// Provider replays a stored trace as a tracesim access stream. It
// implements tracesim.Generator and tracesim.BatchGenerator, so the
// scalar, batched and sharded replay gears all consume stored traces
// through the exact same interface as the synthetic generators —
// which is what keeps sharded and scalar replay of a stored trace
// exactly equivalent.
//
// The Generator interface carries no error channel, so decode
// failures (a truncated or corrupted block) end the stream early and
// are reported by Err; replay drivers must check it after a run.
type Provider struct {
	meta Meta
	f    faultfs.File
	dec  *Decoder
	err  error
}

// Meta returns the stored trace's metadata.
func (p *Provider) Meta() Meta { return p.meta }

// Next implements tracesim.Generator.
func (p *Provider) Next() (tracesim.Access, bool) {
	var one [1]tracesim.Access
	if p.NextBatch(one[:]) == 0 {
		return tracesim.Access{}, false
	}
	return one[0], true
}

// NextBatch implements tracesim.BatchGenerator.
func (p *Provider) NextBatch(buf []tracesim.Access) int {
	if p.err != nil {
		return 0
	}
	n := p.dec.NextBatch(buf)
	if err := p.dec.Err(); err != nil {
		p.err = err
	}
	return n
}

// Reset implements tracesim.Generator: rewind to the first access for
// another pass.
func (p *Provider) Reset() {
	if _, err := p.f.Seek(headerSize, io.SeekStart); err != nil {
		p.err = fmt.Errorf("tracestore: rewind %s: %w", p.meta.ID, err)
		return
	}
	p.dec = NewDecoder(p.f)
	p.err = nil
}

// Err reports the first decode error hit during replay, if any. A
// stream that ended because of an error is incomplete; replays must
// treat it as failed.
func (p *Provider) Err() error { return p.err }

// Close releases the underlying file.
func (p *Provider) Close() error { return p.f.Close() }

// BlockReader feeds a stored trace to replay one decoded varint-delta
// block at a time, as views of the decoder's reusable buffer: no
// per-access copy and no per-batch copy between disk and simulator.
// It implements tracesim.BlockSource.
//
// A BlockReader shares its Provider's decoder position; use a given
// Provider either through the Generator interface or through Blocks,
// not both interleaved (Reset on either rewinds both).
type BlockReader struct {
	p *Provider
}

// Blocks returns the block-granular view of the provider's stream.
func (p *Provider) Blocks() *BlockReader { return &BlockReader{p: p} }

// NextBlock implements tracesim.BlockSource. The returned slice is
// valid only until the next call. ok=false means end of stream or
// decode error; callers must check Err.
func (br *BlockReader) NextBlock() ([]tracesim.Access, bool) {
	if br.p.err != nil {
		return nil, false
	}
	b, ok := br.p.dec.NextBlock()
	if err := br.p.dec.Err(); err != nil {
		br.p.err = err
		return nil, false
	}
	return b, ok
}

// Reset implements tracesim.BlockSource: rewind for another pass.
func (br *BlockReader) Reset() { br.p.Reset() }

// Err reports the first decode error hit during block replay, if any.
func (br *BlockReader) Err() error { return br.p.Err() }

// Export writes a generator's access stream to path in the store's
// binary format and returns the stream summary plus the content
// address the file would ingest under. It is how cmd/trace turns the
// synthetic generators into seedable trace fixtures.
func Export(path string, g tracesim.Generator) (Summary, string, error) {
	f, err := os.Create(path)
	if err != nil {
		return Summary{}, "", fmt.Errorf("tracestore: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(make([]byte, headerSize)); err != nil {
		return Summary{}, "", fmt.Errorf("tracestore: %w", err)
	}
	enc := NewEncoder(f)
	if bg, ok := g.(tracesim.BatchGenerator); ok {
		buf := make([]tracesim.Access, blockAccesses)
		for {
			n := bg.NextBatch(buf)
			if n == 0 {
				break
			}
			for _, a := range buf[:n] {
				enc.Append(a)
			}
		}
	} else {
		for {
			a, ok := g.Next()
			if !ok {
				break
			}
			enc.Append(a)
		}
	}
	sum, id, err := enc.Finish()
	if err != nil {
		return Summary{}, "", err
	}
	hdr := encodeHeader(sum)
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		return Summary{}, "", fmt.Errorf("tracestore: %w", err)
	}
	return sum, id, nil
}
