package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// GuardedBy enforces `// guarded by <mu>` field annotations: a struct
// field carrying the comment may only be read or written by methods
// of that struct while <mu> is held. The walker tracks lock state
// statement by statement (Lock/RLock acquire, Unlock/RUnlock release,
// deferred unlocks hold to function end, branches merge
// conservatively). Methods named *Locked, and methods annotated
// //simd:locked, are assumed to run with the lock held by contract —
// the repo's existing evictLocked/pruneLocked convention.
var GuardedBy = &Analyzer{
	Name:      "guardedby",
	Doc:       "reports accesses to `// guarded by <mu>` fields outside the mutex's Lock/Unlock region",
	SkipTests: true,
	Run:       runGuardedBy,
}

var guardedRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// guardedStruct records one annotated struct type: guarded field name
// to mutex field name.
type guardedStruct map[string]string

func runGuardedBy(p *Pass) {
	// Pass 1: collect annotated fields per named struct type.
	structs := make(map[*types.TypeName]guardedStruct)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, _ := p.Info.Defs[ts.Name].(*types.TypeName)
			if tn == nil {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					gs := structs[tn]
					if gs == nil {
						gs = make(guardedStruct)
						structs[tn] = gs
					}
					gs[name.Name] = mu
				}
			}
			return true
		})
	}
	if len(structs) == 0 {
		return
	}

	// Pass 2: walk every method of an annotated struct.
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") || funcAnnotated(fd, tagLocked) {
				continue // runs under the caller's lock by contract
			}
			recv := recvObject(p.Info, fd)
			if recv == nil {
				continue
			}
			named := namedOf(recv.Type())
			if named == nil {
				continue
			}
			gs := structs[named.Obj()]
			if gs == nil {
				continue
			}
			w := &lockWalker{p: p, recv: recv, fields: gs, method: fd.Name.Name, held: make(map[string]int)}
			w.walkStmt(fd.Body)
		}
	}
}

// guardAnnotation extracts the mutex name from a field's doc or line
// comment, or "".
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// lockWalker tracks, per mutex field name, how many times the
// receiver's mutex is currently held along the walked path.
type lockWalker struct {
	p      *Pass
	recv   *types.Var
	fields guardedStruct
	method string
	held   map[string]int
}

func (w *lockWalker) snapshot() map[string]int {
	c := make(map[string]int, len(w.held))
	for k, v := range w.held {
		c[k] = v
	}
	return c
}

// mergeMin folds a branch exit state into the current state,
// conservatively keeping the minimum hold count per mutex.
func mergeMin(into, from map[string]int) {
	for k := range into {
		if from[k] < into[k] {
			into[k] = from[k]
		}
	}
	for k, v := range from {
		if _, ok := into[k]; !ok && v < 0 {
			into[k] = v
		}
	}
}

// lockOp matches recv.<mu>.Lock/RLock/Unlock/RUnlock calls on one of
// the mutexes guarding annotated fields; it returns the mutex field
// name and +1/-1, or "".
func (w *lockWalker) lockOp(call *ast.CallExpr) (mu string, delta int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		delta = 1
	case "Unlock", "RUnlock":
		delta = -1
	default:
		return "", 0
	}
	muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	base, ok := ast.Unparen(muSel.X).(*ast.Ident)
	if !ok || w.p.Info.Uses[base] != w.recv {
		return "", 0
	}
	return muSel.Sel.Name, delta
}

func (w *lockWalker) walkStmt(s ast.Stmt) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, inner := range st.List {
			w.walkStmt(inner)
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
			if mu, d := w.lockOp(call); mu != "" {
				w.held[mu] += d
				return
			}
		}
		w.checkExpr(st.X)
	case *ast.DeferStmt:
		if mu, d := w.lockOp(st.Call); mu != "" {
			if d > 0 {
				w.held[mu] += d // defer Lock is nonsense; count it anyway
			}
			// A deferred unlock releases at return — the lock stays
			// held for the rest of the body.
			return
		}
		w.checkExpr(st.Call)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.checkExpr(e)
		}
		for _, e := range st.Lhs {
			w.checkExpr(e)
		}
	case *ast.IfStmt:
		w.walkStmt(st.Init)
		w.checkExpr(st.Cond)
		entry := w.snapshot()
		w.walkStmt(st.Body)
		bodyExit, bodyEnds := w.held, blockTerminates(w.p.Info, st.Body)
		w.held = entry
		var elseExit map[string]int
		elseEnds := false
		if st.Else != nil {
			w.held = w.snapshot()
			w.walkStmt(st.Else)
			elseExit, elseEnds = w.held, stmtBlockTerminates(w.p.Info, st.Else)
			w.held = entry
		}
		// Merge the exit states of paths that fall through.
		merged := w.snapshot()
		first := true
		take := func(m map[string]int) {
			if first {
				merged, first = m, false
			} else {
				mergeMin(merged, m)
			}
		}
		if !bodyEnds {
			take(bodyExit)
		}
		if st.Else != nil {
			if !elseEnds {
				take(elseExit)
			}
		} else {
			take(entry)
		}
		if first {
			// Every branch terminates; anything after is unreachable
			// anyway — keep the entry state.
			merged = entry
		}
		w.held = merged
	case *ast.ForStmt:
		w.walkStmt(st.Init)
		w.checkExpr(st.Cond)
		entry := w.snapshot()
		w.walkStmt(st.Body)
		w.walkStmt(st.Post)
		w.held = entry // loops are assumed lock-balanced
	case *ast.RangeStmt:
		w.checkExpr(st.X)
		entry := w.snapshot()
		w.walkStmt(st.Body)
		w.held = entry
	case *ast.SwitchStmt:
		w.walkStmt(st.Init)
		w.checkExpr(st.Tag)
		w.walkCases(st.Body)
	case *ast.TypeSwitchStmt:
		w.walkStmt(st.Init)
		w.walkStmt(st.Assign)
		w.walkCases(st.Body)
	case *ast.SelectStmt:
		w.walkCases(st.Body)
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.checkExpr(e)
		}
	case *ast.GoStmt:
		w.checkExpr(st.Call)
	case *ast.SendStmt:
		w.checkExpr(st.Chan)
		w.checkExpr(st.Value)
	case *ast.IncDecStmt:
		w.checkExpr(st.X)
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v)
					}
				}
			}
		}
	}
}

// walkCases walks each clause of a switch/select body from the entry
// state and merges the fall-through exits conservatively.
func (w *lockWalker) walkCases(body *ast.BlockStmt) {
	entry := w.snapshot()
	merged := entry
	first := true
	for _, clause := range body.List {
		w.held = copyState(entry)
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.checkExpr(e)
			}
			stmts = c.Body
		case *ast.CommClause:
			w.walkStmt(c.Comm)
			stmts = c.Body
		}
		ends := false
		for _, s := range stmts {
			w.walkStmt(s)
		}
		if n := len(stmts); n > 0 && stmtTerminates(w.p.Info, stmts[n-1]) {
			ends = true
		}
		if !ends {
			if first {
				merged, first = w.held, false
			} else {
				mergeMin(merged, w.held)
			}
		}
	}
	if first {
		merged = entry
	}
	w.held = merged
}

func copyState(m map[string]int) map[string]int {
	c := make(map[string]int, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func blockTerminates(info *types.Info, b *ast.BlockStmt) bool {
	if n := len(b.List); n > 0 {
		return stmtTerminates(info, b.List[n-1])
	}
	return false
}

func stmtBlockTerminates(info *types.Info, s ast.Stmt) bool {
	if b, ok := s.(*ast.BlockStmt); ok {
		return blockTerminates(info, b)
	}
	return stmtTerminates(info, s)
}

// checkExpr reports unguarded accesses to annotated fields inside one
// expression. Function literals are separate execution contexts: they
// start unlocked and must acquire the mutex themselves.
func (w *lockWalker) checkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			inner := &lockWalker{p: w.p, recv: w.recv, fields: w.fields, method: w.method + " (closure)", held: make(map[string]int)}
			inner.walkStmt(x.Body)
			return false
		case *ast.CallExpr:
			// Lock operations appearing in expression position (rare)
			// are not accesses.
			if mu, _ := w.lockOp(x); mu != "" {
				return false
			}
		case *ast.SelectorExpr:
			base, ok := ast.Unparen(x.X).(*ast.Ident)
			if !ok || w.p.Info.Uses[base] != w.recv {
				return true
			}
			mu, guarded := w.fields[x.Sel.Name]
			if guarded && w.held[mu] <= 0 {
				w.p.Reportf(x.Pos(), "%s.%s is guarded by %s but %s accesses it without holding the lock",
					base.Name, x.Sel.Name, mu, w.method)
			}
		}
		return true
	})
}
