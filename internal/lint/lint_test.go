package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each fixture directory carries both the violations the analyzer
// must flag (pinned by `// want` comments) and false-positive
// regression cases that must stay silent.

func TestCanonicalKey(t *testing.T) {
	linttest.Run(t, lint.CanonicalKey, "testdata/canonicalkey", "repro/internal/ckfix")
}

func TestCanonicalKeyExemptsKeysPackage(t *testing.T) {
	// The same shapes inside internal/keys itself are the
	// implementation, not violations.
	pkg, err := lint.LoadDir("testdata/canonicalkey", "repro/internal/keys")
	if err != nil {
		t.Fatal(err)
	}
	if diags := lint.RunAnalyzers(pkg, []*lint.Analyzer{lint.CanonicalKey}); len(diags) != 0 {
		t.Fatalf("canonicalkey must not fire inside repro/internal/keys; got %v", diags)
	}
}

func TestGuardedBy(t *testing.T) {
	linttest.Run(t, lint.GuardedBy, "testdata/guardedby", "repro/internal/gbfix")
}

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, lint.CtxFlow, "testdata/ctxflow", "repro/internal/service")
}

func TestCtxFlowScopedToService(t *testing.T) {
	// Outside the request path the fresh-context rule is off; only the
	// dropped-ctx rule remains.
	pkg, err := lint.LoadDir("testdata/ctxflow", "repro/internal/tracestore")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range lint.RunAnalyzers(pkg, []*lint.Analyzer{lint.CtxFlow}) {
		if strings.Contains(d.Message, "mints a fresh context") {
			t.Errorf("fresh-context rule fired outside the service path: %v", d)
		}
	}
}

func TestHotPath(t *testing.T) {
	linttest.Run(t, lint.HotPath, "testdata/hotpath", "repro/internal/hpfix")
}

func TestErrEnvelope(t *testing.T) {
	linttest.Run(t, lint.ErrEnvelope, "testdata/errenvelope", "repro/internal/service")
}

func TestMetricReg(t *testing.T) {
	linttest.Run(t, lint.MetricReg, "testdata/metricreg", "repro/internal/mrfix")
}

// TestEscapeCheckCleanPackage pins the escape guard against the real
// tree: the annotated hot functions in internal/cache must stay
// allocation-free.
func TestEscapeCheckCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a package; skipped in -short")
	}
	diags, err := lint.EscapeCheck("../..", []string{"./internal/cache/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("internal/cache hot paths allocate:\n%v", diags)
	}
}

// TestEscapeCheckFlagsAllocation builds a throwaway module whose
// annotated function provably allocates and expects the guard to say
// so.
func TestEscapeCheckFlagsAllocation(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a package; skipped in -short")
	}
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module escfix\n\ngo 1.22\n",
		"esc.go": `package escfix

// leak forces x to the heap.
//
//simd:hotpath
func leak() *int {
	x := 42
	return &x
}

// amortized is the sanctioned opt-out.
//
//simd:hotpath
func amortized() []byte {
	return make([]byte, 64) //simd:alloc-ok warm-up growth
}
`,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	diags, err := lint.EscapeCheck(dir, []string{"."})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("want exactly the leak finding, got %v", diags)
	}
	if diags[0].Message == "" || diags[0].Pos.Filename != "esc.go" {
		t.Fatalf("unexpected diagnostic: %v", diags[0])
	}
}
