// Package linttest is the fixture harness for internal/lint — the
// analysistest contract reimplemented on the stdlib: load a fixture
// directory as a pretend package, run one analyzer, and diff its
// diagnostics against the fixture's `// want "regexp"` comments.
// It lives in its own package so the simdlint binary never links
// the testing machinery.
package linttest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantRe matches one quoted expectation inside a `// want "..."`
// comment. Multiple quoted patterns on one comment expect multiple
// diagnostics on that line.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads the fixture package at dir under importPath, runs the
// analyzer, and matches diagnostics against want comments: every
// diagnostic must be wanted on its line, every want must fire. A
// fixture with no want comments pins the analyzer to zero findings —
// the false-positive regression form.
func Run(t *testing.T, a *lint.Analyzer, dir, importPath string) {
	t.Helper()
	pkg, err := lint.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c.Text), "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text[len("want "):], -1) {
					pat := strings.ReplaceAll(m[1], `\"`, `"`)
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}

	diags := lint.RunAnalyzers(pkg, []*lint.Analyzer{a})
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
	if t.Failed() {
		var all []string
		for _, d := range diags {
			all = append(all, fmt.Sprint(d))
		}
		t.Logf("all diagnostics from %s:\n%s", dir, strings.Join(all, "\n"))
	}
}
