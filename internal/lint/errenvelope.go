package lint

import (
	"go/ast"
	"strings"
)

// ErrEnvelope keeps the service's error responses uniform: every
// handler must reply through the shared envelope writer (writeError,
// which stamps the JSON {error, request_id} body), never naked
// http.Error or http.NotFound — those emit text/plain bodies that
// clients and the retry middleware cannot parse. Only the envelope
// writer itself may touch the raw response plumbing.
var ErrEnvelope = &Analyzer{
	Name:      "errenvelope",
	Doc:       "service handlers must send errors via writeError's JSON envelope, not naked http.Error",
	SkipTests: true,
	Run:       runErrEnvelope,
}

func runErrEnvelope(p *Pass) {
	if p.Pkg.Path() != ctxScopePrefix && !strings.HasPrefix(p.Pkg.Path(), ctxScopePrefix+"/") {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// The envelope writers are the one sanctioned boundary to
			// the raw http response machinery.
			if fd.Recv == nil && (fd.Name.Name == "writeError" || fd.Name.Name == "writeJSON") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch {
				case isPkgFunc(p.Info, call, "net/http", "Error"):
					p.Reportf(call.Pos(), "http.Error sends a text/plain body outside the JSON envelope; use writeError")
				case isPkgFunc(p.Info, call, "net/http", "NotFound"):
					p.Reportf(call.Pos(), "http.NotFound sends a text/plain body outside the JSON envelope; use writeError with http.StatusNotFound")
				}
				return true
			})
		}
	}
}
