package lint

import (
	"go/ast"
	"go/types"
)

// CanonicalKey flags content-address preimages built with fmt
// formatting, string concatenation or strings.Join and hashed
// directly: every cache, journal and result key must go through
// internal/keys.Builder, whose encoding is injective (length-prefixed
// strings, bit-pattern floats). The analyzer reports any
// sha256.Sum256 argument that traces back to such a hand-rolled
// string — hashing raw data bytes (trace streams, file contents)
// never matches and stays unflagged.
var CanonicalKey = &Analyzer{
	Name:      "canonicalkey",
	Doc:       "flags cache/journal keys hashed from fmt/concat-built strings instead of internal/keys.Builder",
	SkipTests: true,
	Run:       runCanonicalKey,
}

func runCanonicalKey(p *Pass) {
	// internal/keys is the one place allowed to assemble preimages by
	// hand — it is the helper everything else must call.
	if p.Pkg.Path() == "repro/internal/keys" {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkKeyFunc(p, fd)
			return true
		})
	}
}

// checkKeyFunc scans one function for sha256.Sum256 calls over
// hand-rolled preimages.
func checkKeyFunc(p *Pass, fd *ast.FuncDecl) {
	// First pass: find strings.Builder / bytes.Buffer locals that
	// receive fmt.Fprintf writes — the "formatted then hashed" shape.
	fmtTargets := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPkgFunc(p.Info, call, "fmt", "Fprintf") || isPkgFunc(p.Info, call, "fmt", "Fprint") {
			if len(call.Args) == 0 {
				return true
			}
			arg := ast.Unparen(call.Args[0])
			if un, ok := arg.(*ast.UnaryExpr); ok { // &b
				arg = ast.Unparen(un.X)
			}
			if id, ok := arg.(*ast.Ident); ok {
				if obj := p.Info.Uses[id]; obj != nil {
					fmtTargets[obj] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPkgFunc(p.Info, call, "crypto/sha256", "Sum256") || len(call.Args) != 1 {
			return true
		}
		if reason := nonCanonicalPreimage(p, fd, ast.Unparen(call.Args[0]), fmtTargets); reason != "" {
			p.Reportf(call.Pos(), "key preimage built with %s; build it with internal/keys.Builder (injective length-prefixed encoding)", reason)
		}
		return true
	})
}

// nonCanonicalPreimage classifies the expression hashed by
// sha256.Sum256 and returns a description of the hand-rolled
// construction, or "" when the preimage is not recognizably built
// from formatted/concatenated strings.
func nonCanonicalPreimage(p *Pass, fd *ast.FuncDecl, e ast.Expr, fmtTargets map[types.Object]bool) string {
	// Unwrap the customary []byte(...) conversion.
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
			e = ast.Unparen(call.Args[0])
		}
	}
	switch x := e.(type) {
	case *ast.BinaryExpr:
		if tv, ok := p.Info.Types[x]; ok && types.Identical(tv.Type.Underlying(), types.Typ[types.String]) {
			return "string concatenation"
		}
	case *ast.CallExpr:
		switch {
		case isPkgFunc(p.Info, x, "fmt", "Sprintf") || isPkgFunc(p.Info, x, "fmt", "Sprint") || isPkgFunc(p.Info, x, "fmt", "Appendf"):
			return "fmt formatting"
		case isPkgFunc(p.Info, x, "strings", "Join"):
			return "strings.Join (delimiters are forgeable; fields need length prefixes)"
		}
		// b.String() / b.Bytes() on a builder that fmt.Fprintf wrote to.
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && (sel.Sel.Name == "String" || sel.Sel.Name == "Bytes") {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if obj := p.Info.Uses[id]; obj != nil && fmtTargets[obj] {
					return "fmt.Fprintf into a builder"
				}
			}
		}
	case *ast.Ident:
		// A local assigned from one of the recognized shapes anywhere
		// in this function (canon := fmt.Sprintf(...); Sum256([]byte(canon))).
		obj := p.Info.Uses[x]
		if obj == nil {
			return ""
		}
		var reason string
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || reason != "" {
				return reason == ""
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(as.Rhs) {
					continue
				}
				def := p.Info.Defs[id]
				if def == nil {
					def = p.Info.Uses[id]
				}
				if def != obj {
					continue
				}
				if r := nonCanonicalPreimage(p, fd, ast.Unparen(as.Rhs[i]), fmtTargets); r != "" {
					reason = r
				}
			}
			return reason == ""
		})
		return reason
	}
	return ""
}
