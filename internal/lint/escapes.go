package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// The static hotpath rules catch allocation by construction; this
// guard catches it by verdict. It asks the compiler for its escape
// analysis (`go build -gcflags=-m`) and reports any value that
// "escapes to heap" or is "moved to heap" inside a //simd:hotpath
// function. The two layers are complementary: the analyzer explains
// *what* to change, the compiler proves *whether* anything still
// allocates — including through inlining and interface devirtualization
// the static rules cannot see.

// escapeNoteRe matches one compiler diagnostic line:
// "internal/cache/cache.go:61:6: moved to heap: x".
var escapeNoteRe = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (.+)$`)

// hotRange is the line span of one annotated function.
type hotRange struct {
	file  string // path relative to the module root, slash-separated
	name  string
	start int
	end   int
}

// EscapeCheck scans dir for //simd:hotpath functions, compiles the
// given package patterns with -gcflags=-m, and returns a diagnostic
// for every heap escape the compiler reports inside an annotated
// function (lines annotated //simd:alloc-ok excepted). A nil, nil
// return means every hot path is allocation-free.
func EscapeCheck(dir string, patterns []string) ([]Diagnostic, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	ranges, allocOK, err := collectHotRanges(dir)
	if err != nil {
		return nil, err
	}
	if len(ranges) == 0 {
		return nil, nil
	}

	cmd := exec.Command("go", append([]string{"build", "-gcflags=-m"}, patterns...)...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		// -gcflags=-m chatter goes to stderr even on success; a real
		// failure surfaces through the exit code.
		return nil, fmt.Errorf("go build -gcflags=-m failed: %v\n%s", err, out)
	}

	var diags []Diagnostic
	for _, line := range strings.Split(string(out), "\n") {
		m := escapeNoteRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[3]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		file := strings.TrimPrefix(filepath.ToSlash(m[1]), "./")
		lineNo, _ := strconv.Atoi(m[2])
		if allocOK[file][lineNo] {
			continue
		}
		for _, r := range ranges {
			if r.file == file && r.start <= lineNo && lineNo <= r.end {
				diags = append(diags, Diagnostic{
					Analyzer: "escapes",
					Pos:      token.Position{Filename: file, Line: lineNo},
					Message:  fmt.Sprintf("%s is //simd:hotpath but the compiler reports: %s", r.name, msg),
				})
				break
			}
		}
	}
	return diags, nil
}

// collectHotRanges parses every production .go file under dir and
// returns the line spans of //simd:hotpath functions plus the set of
// //simd:alloc-ok lines.
func collectHotRanges(dir string) ([]hotRange, map[string]map[int]bool, error) {
	var ranges []hotRange
	allocOK := make(map[string]map[int]bool)
	fset := token.NewFileSet()

	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if text == tagAllocOK || strings.HasPrefix(text, tagAllocOK+" ") {
					if allocOK[rel] == nil {
						allocOK[rel] = make(map[int]bool)
					}
					allocOK[rel][fset.Position(c.Pos()).Line] = true
				}
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !funcAnnotated(fd, tagHotPath) {
				continue
			}
			ranges = append(ranges, hotRange{
				file:  rel,
				name:  fd.Name.Name,
				start: fset.Position(fd.Pos()).Line,
				end:   fset.Position(fd.End()).Line,
			})
		}
		return nil
	})
	return ranges, allocOK, err
}
