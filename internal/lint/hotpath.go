package lint

import (
	"go/ast"
	"go/types"
)

// HotPath polices functions annotated //simd:hotpath — the
// per-record/per-line loops whose zero-allocation status PR-8 bought
// with buffer reuse. It flags the constructs that silently
// reintroduce allocation:
//
//   - any fmt.* call (every fmt entry point allocates);
//   - append that grows an unsized local (nil `var s []T`, empty
//     literal, or 2-arg make) — growth reallocates every few
//     iterations, where a reused field buffer or sized make amortizes
//     to zero;
//   - interface boxing: passing a concrete value to an interface
//     parameter, or converting one to an interface type;
//   - closures, except `f := func(...){...}` locals that are only
//     ever called directly (the compiler keeps those on the stack).
//
// Cold error paths inside a hot function opt out per line with
// //simd:alloc-ok. The static rules are backed by the escape-analysis
// guard (escapes.go), which checks the compiler's verdict.
var HotPath = &Analyzer{
	Name:      "hotpath",
	Doc:       "forbids allocating constructs (fmt, unsized append growth, boxing, escaping closures) in //simd:hotpath functions",
	SkipTests: true,
	Run:       runHotPath,
}

func runHotPath(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcAnnotated(fd, tagHotPath) {
				continue
			}
			checkHotFunc(p, f, fd)
		}
	}
}

func checkHotFunc(p *Pass, f *ast.File, fd *ast.FuncDecl) {
	unsized := unsizedLocals(p, fd)
	allowedLits := localCallOnlyFuncLits(p, fd)

	report := func(pos ast.Node, format string, args ...any) {
		if lineAnnotated(p.Fset, f, pos.Pos(), tagAllocOK) {
			return
		}
		p.Reportf(pos.Pos(), format, args...)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if !allowedLits[x] {
				report(x, "closure in hot path allocates; hoist it or restructure (locals only called directly stay on the stack)")
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "append" && len(x.Args) > 0 {
					if root, ok := ast.Unparen(x.Args[0]).(*ast.Ident); ok {
						if obj := p.Info.Uses[root]; obj != nil && unsized[obj] {
							report(x, "append grows unsized local %s in hot path; preallocate with make(len, cap) or reuse a sized buffer", root.Name)
						}
					}
					return true
				}
			}
			if tv, ok := p.Info.Types[x.Fun]; ok && tv.IsType() {
				// Conversion: T(v) boxing a concrete v into interface T.
				if isInterface(tv.Type) && len(x.Args) == 1 && boxes(p, x.Args[0]) {
					report(x, "conversion to %s boxes a concrete value in hot path", types.TypeString(tv.Type, types.RelativeTo(p.Pkg)))
				}
				return true
			}
			checkCallBoxing(p, x, report)
		}
		return true
	})
}

// checkCallBoxing flags concrete arguments flowing into interface
// parameters. fmt calls are reported as a whole — every fmt entry
// point allocates regardless of its arguments.
func checkCallBoxing(p *Pass, call *ast.CallExpr, report func(ast.Node, string, ...any)) {
	obj := calleeObject(p.Info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		report(call, "fmt.%s allocates (format parsing and boxing); hot paths must format by hand or opt out with //simd:alloc-ok", fn.Name())
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... forwards the slice, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if isInterface(pt) && boxes(p, arg) {
			report(arg, "passing concrete %s to interface parameter of %s boxes it in hot path",
				types.TypeString(p.Info.Types[arg].Type, types.RelativeTo(p.Pkg)), fn.Name())
		}
	}
}

// boxes reports whether arg is a concrete (non-interface, non-nil)
// value whose assignment to an interface allocates.
func boxes(p *Pass, arg ast.Expr) bool {
	tv, ok := p.Info.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() || isInterface(tv.Type) {
		return false
	}
	b, isBasic := tv.Type.Underlying().(*types.Basic)
	if isBasic && b.Info()&types.IsUntyped != 0 {
		// Untyped constants box too, but small ones hit the runtime's
		// static boxes; the escape guard arbitrates. Keep the static
		// rule to typed values.
		return false
	}
	return true
}

// unsizedLocals collects slice locals whose append growth reallocates:
// nil `var s []T` declarations, empty composite literals, and 2-arg
// make (append past len grows immediately). Sized 3-arg make, field
// buffers, params and resliced ([:0]) values are allowed roots.
func unsizedLocals(p *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	unsized := make(map[types.Object]bool)
	mark := func(id *ast.Ident, rhs ast.Expr) {
		obj := p.Info.Defs[id]
		if obj == nil {
			return
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		if rhs == nil {
			unsized[obj] = true // var s []T
			return
		}
		switch r := ast.Unparen(rhs).(type) {
		case *ast.CompositeLit:
			if len(r.Elts) == 0 {
				unsized[obj] = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(r.Fun).(*ast.Ident); ok {
				if b, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "make" && len(r.Args) == 2 {
					unsized[obj] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ValueSpec:
			for i, name := range x.Names {
				if len(x.Values) == 0 {
					mark(name, nil)
				} else if i < len(x.Values) {
					mark(name, x.Values[i])
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(x.Rhs) {
					continue
				}
				mark(id, x.Rhs[i])
			}
		}
		return true
	})
	return unsized
}

// localCallOnlyFuncLits returns the FuncLit nodes bound as
// `name := func(...){...}` where name is only ever used in direct
// call position — the shape the inliner and escape analysis keep off
// the heap.
func localCallOnlyFuncLits(p *Pass, fd *ast.FuncDecl) map[*ast.FuncLit]bool {
	// Idents appearing as the callee of a direct call.
	calledIdents := make(map[*ast.Ident]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				calledIdents[id] = true
			}
		}
		return true
	})

	candidates := make(map[types.Object]*ast.FuncLit)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			lit, ok := ast.Unparen(as.Rhs[i]).(*ast.FuncLit)
			if !ok {
				continue
			}
			if obj := p.Info.Defs[id]; obj != nil {
				candidates[obj] = lit
			}
		}
		return true
	})

	allowed := make(map[*ast.FuncLit]bool)
	for obj, lit := range candidates {
		escapes := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || p.Info.Uses[id] != obj {
				return true
			}
			if !calledIdents[id] {
				escapes = true
			}
			return !escapes
		})
		if !escapes {
			allowed[lit] = true
		}
	}
	return allowed
}
