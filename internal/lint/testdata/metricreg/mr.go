// Fixture for the metricreg analyzer: duplicate registrations, torn
// HELP/TYPE pairs, and the single-registration shapes that must stay
// silent.
package mrfix

import (
	"fmt"
	"io"
)

type vec struct{}

// NewHistogramVec stands in for obs.NewHistogramVec — metricreg
// matches the callee by name so fixtures need not import the real
// package.
func NewHistogramVec(name, help string, labels []string, bounds []float64) *vec {
	return &vec{}
}

var (
	a = NewHistogramVec("fix_dup_seconds", "first", nil, nil)
	b = NewHistogramVec("fix_dup_seconds", "second", nil, nil) // want "registered 2 times"
	c = NewHistogramVec("fix_both_seconds", "fine", nil, nil)
)

func write(w io.Writer) {
	fmt.Fprintf(w, "# HELP fix_total Things counted.\n")
	fmt.Fprintf(w, "# TYPE fix_total counter\n")

	fmt.Fprintf(w, "# HELP fix_twice_total Counted twice.\n")
	fmt.Fprintf(w, "# TYPE fix_twice_total counter\n")
	fmt.Fprintf(w, "# HELP fix_twice_total Counted twice.\n") // want "emits # HELP 2 times"

	fmt.Fprintf(w, "# HELP fix_untyped_total No TYPE line.\n") // want "no # TYPE line"

	fmt.Fprintf(w, "# HELP fix_both_seconds Also registered by NewHistogramVec.\n") // want "both by NewHistogramVec and by hand-written"
	fmt.Fprintf(w, "# TYPE fix_both_seconds histogram\n")

	// False-positive regression: %s family names are not statically
	// known and must not be recorded.
	fmt.Fprintf(w, "# HELP %s dynamic family\n", "whatever")
}

// writeGauges mirrors the service's hand-rendered gauge families (queue
// depth, runtime telemetry): each declared once with a paired
// HELP/TYPE is silent; re-declaring one from a second render site is
// the duplicate the analyzer exists to catch.
func writeGauges(w io.Writer) {
	fmt.Fprintf(w, "# HELP fix_queue_depth Jobs waiting.\n")
	fmt.Fprintf(w, "# TYPE fix_queue_depth gauge\n")

	fmt.Fprintf(w, "# HELP fix_heap_bytes Live heap.\n")
	fmt.Fprintf(w, "# TYPE fix_heap_bytes gauge\n")

	fmt.Fprintf(w, "# HELP fix_gauge_twice Declared here and below.\n")
	fmt.Fprintf(w, "# TYPE fix_gauge_twice gauge\n")

	fmt.Fprintf(w, "# HELP fix_gauge_retyped One HELP, two TYPEs.\n")
	fmt.Fprintf(w, "# TYPE fix_gauge_retyped gauge\n")
}

func writeGaugesAgain(w io.Writer) {
	fmt.Fprintf(w, "# HELP fix_gauge_twice Declared here and above.\n") // want "emits # HELP 2 times"
	fmt.Fprintf(w, "# TYPE fix_gauge_twice gauge\n")

	fmt.Fprintf(w, "# TYPE fix_gauge_retyped gauge\n") // want "emits # TYPE 2 times"

	// A quantile-labelled gauge still has exactly one family
	// declaration; the sample lines themselves are not declarations.
	fmt.Fprintf(w, "# HELP fix_pause_seconds GC pause quantiles.\n")
	fmt.Fprintf(w, "# TYPE fix_pause_seconds gauge\n")
	fmt.Fprintf(w, "fix_pause_seconds{quantile=\"0.5\"} %g\n", 0.001)
	fmt.Fprintf(w, "fix_pause_seconds{quantile=\"0.99\"} %g\n", 0.002)
}
