// Fixture for the guardedby analyzer: lock-state tracking through
// straight-line code, branches, deferred unlocks, closures and the
// *Locked/simd:locked escape hatches.
package gbfix

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	m  int // not guarded
}

func (c *counter) bare() int {
	return c.n // want "c.n is guarded by mu but bare accesses it"
}

func (c *counter) locked() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) unlockTooEarly() int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	c.n++ // want "c.n is guarded by mu but unlockTooEarly accesses it"
	return v
}

func (c *counter) goroutineEscape() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want "guarded by mu but goroutineEscape \(closure\) accesses it"
	}()
}

func (c *counter) unguardedField() int {
	return c.m // m carries no annotation
}

// False-positive regressions: shapes the walker must accept.

func (c *counter) bumpLocked() { c.n++ } // *Locked contract: caller holds mu

//simd:locked — exercised before the counter is shared.
func (c *counter) bootInit() { c.n = 0 }

func (c *counter) bothBranchesLock(x bool) {
	if x {
		c.mu.Lock()
	} else {
		c.mu.Lock()
	}
	c.n++
	c.mu.Unlock()
}

func (c *counter) earlyReturn(bad bool) {
	c.mu.Lock()
	if bad {
		c.mu.Unlock()
		return
	}
	c.n++
	c.mu.Unlock()
}

func (c *counter) lockedClosure() {
	fn := func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.n++
	}
	fn()
}
