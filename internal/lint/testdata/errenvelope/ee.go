// Fixture for the errenvelope analyzer, loaded under the
// repro/internal/service import path.
package eefix

import "net/http"

func handler(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusBadRequest) // want "text/plain body outside the JSON envelope"
}

func notFoundHandler(w http.ResponseWriter, r *http.Request) {
	http.NotFound(w, r) // want "use writeError with http.StatusNotFound"
}

func goodHandler(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusBadRequest, "bad")
}

// False-positive regression: the envelope writer itself is the one
// sanctioned caller of the raw response machinery.
func writeError(w http.ResponseWriter, status int, msg string) {
	http.Error(w, msg, status)
}
