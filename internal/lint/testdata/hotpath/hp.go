// Fixture for the hotpath analyzer: the allocating constructs it must
// flag inside //simd:hotpath functions and the allocation-free shapes
// it must accept.
package hpfix

import "fmt"

type codec struct {
	buf []byte
}

func sinkAny(v any)      {}
func sinkErr(err error)  {}
func sinkFn(fn func())   {}
func variadic(vs ...any) {}

//simd:hotpath
func fmtInHot(n int) string {
	return fmt.Sprintf("%d", n) // want "fmt.Sprintf allocates"
}

//simd:hotpath
func unsizedAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want "append grows unsized local out"
	}
	return out
}

//simd:hotpath
func emptyLitAppend(xs []int) []int {
	out := []int{}
	return append(out, xs...) // want "append grows unsized local out"
}

//simd:hotpath
func twoArgMakeAppend(xs []int) []int {
	out := make([]int, 0)
	return append(out, xs...) // want "append grows unsized local out"
}

//simd:hotpath
func boxesArg(n int) {
	sinkAny(n) // want "passing concrete int to interface parameter"
}

//simd:hotpath
func boxesVariadic(n int) {
	variadic(n) // want "passing concrete int to interface parameter"
}

//simd:hotpath
func boxesConversion(n int) any {
	return any(n) // want "conversion to any boxes a concrete value"
}

//simd:hotpath
func escapingClosure(n int) {
	sinkFn(func() { _ = n }) // want "closure in hot path allocates"
}

//simd:hotpath
func optedOut(n int) string {
	return fmt.Sprintf("%d", n) //simd:alloc-ok cold error path
}

// False-positive regressions: shapes that stay on the stack or reuse
// storage.

//simd:hotpath
func sizedAppend(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

//simd:hotpath
func fieldBufferAppend(c *codec, b byte) {
	c.buf = append(c.buf, b)
}

//simd:hotpath
func resliceReuse(c *codec, xs []byte) {
	buf := c.buf[:0]
	for _, x := range xs {
		buf = append(buf, x)
	}
	c.buf = buf
}

//simd:hotpath
func paramAppend(dst []byte, b byte) []byte {
	return append(dst, b)
}

//simd:hotpath
func localCalledClosure(xs []int) int {
	sum := 0
	add := func(x int) { sum += x }
	for _, x := range xs {
		add(x)
	}
	return sum
}

//simd:hotpath
func interfaceForwarding(err error) {
	sinkErr(err) // already an interface; no boxing
}

// Not annotated: fmt and closures are fine in cold code.
func coldPath(n int) string {
	return fmt.Sprintf("%d", n)
}
