// Fixture for the canonicalkey analyzer: every hand-rolled preimage
// shape it must catch, plus the raw-content hashes it must leave
// alone.
package ckfix

import (
	"crypto/sha256"
	"fmt"
	"strings"
)

func sprintfKey(w string, k int) [32]byte {
	return sha256.Sum256([]byte(fmt.Sprintf("%s|%d", w, k))) // want "fmt formatting"
}

func concatKey(a, b string) [32]byte {
	return sha256.Sum256([]byte(a + "|" + b)) // want "string concatenation"
}

func joinKey(parts []string) [32]byte {
	return sha256.Sum256([]byte(strings.Join(parts, "|"))) // want "strings.Join"
}

func builderKey(w string, k int) [32]byte {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%d", w, k)
	return sha256.Sum256([]byte(b.String())) // want "fmt.Fprintf into a builder"
}

func localKey(w string, k int) [32]byte {
	canon := fmt.Sprintf("%s|%d", w, k)
	return sha256.Sum256([]byte(canon)) // want "fmt formatting"
}

// False-positive regressions: hashing raw content is the normal use
// of sha256 and must stay silent.

func contentHash(data []byte) [32]byte {
	return sha256.Sum256(data)
}

func opaqueStringHash(s string) [32]byte {
	// s is a caller-supplied preimage, not built here; nothing to flag.
	return sha256.Sum256([]byte(s))
}

func joinWithoutHash(parts []string) string {
	// strings.Join is fine when the result is not a hash preimage.
	return strings.Join(parts, ",")
}
