// Fixture for the ctxflow analyzer, loaded under the
// repro/internal/service import path so the request-path rule fires.
package cffix

import "context"

func freshInHandler() context.Context {
	return context.Background() // want "mints a fresh context in the request path"
}

func todoInHandler() context.Context {
	return context.TODO() // want "mints a fresh context in the request path"
}

// DropsCtx binds ctx and never touches it.
func DropsCtx(ctx context.Context, n int) int { // want "accepts ctx but never uses it"
	return n * 2
}

// False-positive regressions.

//simd:ctxroot — pretend process-lifetime root.
func processRoot() context.Context {
	return context.Background()
}

func lineOptOut() context.Context {
	return context.Background() //simd:ctxroot boot-time root
}

// ThreadsCtx uses its ctx; no finding.
func ThreadsCtx(ctx context.Context) error {
	return ctx.Err()
}

// IgnoresCtx documents the drop with the blank name.
func IgnoresCtx(_ context.Context, n int) int {
	return n
}

// unexported functions may drop ctx (interface plumbing does).
func dropsQuietly(ctx context.Context) int {
	return 1
}
