package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces context discipline: inside the request path
// (repro/internal/service and below) nothing may mint a fresh
// context.Background()/TODO() — deadlines and request IDs flow from
// the caller — and, everywhere, an exported function that accepts a
// ctx parameter must actually thread it somewhere. Legitimate roots
// (the process-lifetime queue worker, main) carry //simd:ctxroot.
var CtxFlow = &Analyzer{
	Name:      "ctxflow",
	Doc:       "reports fresh context.Background/TODO in the request path and exported funcs that drop incoming ctx",
	SkipTests: true,
	Run:       runCtxFlow,
}

// ctxScopePrefix limits the fresh-context rule to the service request
// path; library packages (tracestore, cache) legitimately build root
// contexts in their own tools.
const ctxScopePrefix = "repro/internal/service"

func runCtxFlow(p *Pass) {
	inService := p.Pkg.Path() == ctxScopePrefix || strings.HasPrefix(p.Pkg.Path(), ctxScopePrefix+"/")
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if inService && !funcAnnotated(fd, tagCtxRoot) {
				checkFreshContext(p, f, fd)
			}
			checkDroppedCtx(p, fd)
		}
	}
}

func checkFreshContext(p *Pass, f *ast.File, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch {
		case isPkgFunc(p.Info, call, "context", "Background"):
			name = "Background"
		case isPkgFunc(p.Info, call, "context", "TODO"):
			name = "TODO"
		default:
			return true
		}
		if lineAnnotated(p.Fset, f, call.Pos(), tagCtxRoot) {
			return true
		}
		p.Reportf(call.Pos(), "context.%s() mints a fresh context in the request path; thread the caller's ctx (or annotate //simd:ctxroot for a true root)", name)
		return true
	})
}

// checkDroppedCtx reports exported functions that bind an incoming
// context to a name and then never touch it. Intentionally ignoring
// ctx is spelled `_ context.Context`, which documents the drop.
func checkDroppedCtx(p *Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj, _ := p.Info.Defs[name].(*types.Var)
			if obj == nil || !isContextType(obj.Type()) {
				continue
			}
			used := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
					used = true
				}
				return !used
			})
			if !used {
				p.Reportf(name.Pos(), "exported %s accepts ctx but never uses it; thread it into callees or rename the parameter to _", fd.Name.Name)
			}
		}
	}
}

func isContextType(t types.Type) bool {
	n := namedOf(t)
	return n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}
