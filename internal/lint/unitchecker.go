package lint

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// vetConfig mirrors the JSON configuration cmd/go hands a vet tool
// for each package: the file set, how to resolve imports, and where
// to leave the (unused here) facts output. The field set tracks
// cmd/go/internal/work's vetConfig; unknown fields are ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of a vettool built on this framework: it
// implements the protocol `go vet -vettool=<tool>` drives — the
// -V=full build-cache handshake, the -flags capability query, and
// one <file>.cfg positional argument per analyzed package.
func Main(progname string, analyzers []*Analyzer) {
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] <file.cfg>\n\n", progname)
		fmt.Fprintf(os.Stderr, "Run as `go vet -vettool=$(which %s) ./...`, or directly on a\n", progname)
		fmt.Fprintf(os.Stderr, "vet configuration file. Analyzers:\n\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	versionF := fs.String("V", "", "print version and exit (the `go vet` tool-ID handshake)")
	flagsF := fs.Bool("flags", false, "print the tool's flags as JSON and exit")
	jsonF := fs.Bool("json", false, "emit diagnostics as JSON instead of text")
	fs.Parse(os.Args[1:])

	if *versionF != "" {
		// Replicates the minimal subset of cmd/compile's -V=full
		// output that cmd/go accepts as a tool ID: name, "version",
		// and a build-identifying suffix. Hash the executable so a
		// rebuilt tool invalidates go vet's result cache.
		if *versionF != "full" {
			log.Fatalf("unsupported flag -V=%s", *versionF)
		}
		name := filepath.Base(os.Args[0])
		exe, err := os.Executable()
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Open(exe)
		if err != nil {
			log.Fatal(err)
		}
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("%s version devel comments-go-here buildID=%02x\n", name, h.Sum(nil))
		os.Exit(0)
	}
	if *flagsF {
		// cmd/go interrogates the tool's flags so it can decide which
		// user-supplied vet flags to forward. Expose only -json.
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		out := []jsonFlag{{Name: "json", Bool: true, Usage: "emit JSON diagnostics"}}
		data, _ := json.Marshal(out)
		fmt.Println(string(data))
		os.Exit(0)
	}

	args := fs.Args()
	if len(args) == 1 && args[0] == "help" {
		fs.Usage()
		os.Exit(0)
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		log.Fatalf("this tool is run by `go vet -vettool=$(which %s)`; it expects one <file>.cfg argument (got %q)", progname, args)
	}
	diags, err := runConfig(args[0], analyzers)
	if err != nil {
		log.Fatal(err)
	}
	if len(diags) == 0 {
		os.Exit(0)
	}
	if *jsonF {
		data, _ := json.MarshalIndent(diags, "", "\t")
		fmt.Println(string(data))
	} else {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
		}
	}
	os.Exit(2)
}

// runConfig loads one vet package configuration, type-checks the
// package against the export data cmd/go supplied, and runs the
// analyzers.
func runConfig(cfgFile string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgFile, err)
	}

	// The facts output must exist even though this suite computes no
	// facts — cmd/go records it as the action's product.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("no facts\n"), 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		// The package is a dependency analyzed only for facts; there
		// are none, so there is nothing to do.
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	base := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return base.Import(path)
	})

	info := NewInfo()
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}

	return RunAnalyzers(&Package{Fset: fset, Files: files, Pkg: pkg, Info: info}, analyzers), nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
