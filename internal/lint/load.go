package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The fixture loader type-checks test packages from source, so it
// needs an importer that can resolve standard-library imports without
// compiled export data. One shared source importer amortizes the cost
// of type-checking std packages across every fixture in a test run —
// but it owns its FileSet, so fixtures must share it too.
var (
	srcOnce sync.Once
	srcFset *token.FileSet
	srcImp  types.Importer
)

func sourceImporter() (*token.FileSet, types.Importer) {
	srcOnce.Do(func() {
		srcFset = token.NewFileSet()
		srcImp = importer.ForCompiler(srcFset, "source", nil)
	})
	return srcFset, srcImp
}

// LoadDir parses and type-checks every non-test .go file in dir as a
// single package whose import path is importPath — fixtures use paths
// like "repro/internal/service" to exercise path-scoped analyzers
// without living in the real tree. Fixtures may import the standard
// library only.
func LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}

	fset, imp := sourceImporter()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := NewInfo()
	tc := &types.Config{Importer: imp}
	pkg, err := tc.Check(importPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}
