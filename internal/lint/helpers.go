package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// calleeObject resolves a call expression to the declared function or
// method object it invokes, or nil for calls through function values,
// conversions and builtins.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj() // method or field selection
		}
		return info.Uses[fun.Sel] // qualified identifier (pkg.Func)
	}
	return nil
}

// isPkgFunc reports whether call invokes the package-level function
// pkgPath.name.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := calleeObject(info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// callsPackage reports whether call invokes anything (function,
// method, or var) belonging to pkgPath.
func callsPackage(info *types.Info, call *ast.CallExpr, pkgPath string) bool {
	obj := calleeObject(info, call)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// annotation tags recognized in function doc comments and line
// comments. They deliberately use the //simd: prefix so gofmt leaves
// them attached and grep finds every use.
const (
	tagHotPath = "//simd:hotpath"
	tagAllocOK = "//simd:alloc-ok"
	tagLocked  = "//simd:locked"
	tagCtxRoot = "//simd:ctxroot"
)

// funcAnnotated reports whether the function's doc comment carries
// the given //simd: tag (alone or followed by prose).
func funcAnnotated(fd *ast.FuncDecl, tag string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == tag || strings.HasPrefix(text, tag+" ") {
			return true
		}
	}
	return false
}

// lineAnnotated reports whether any comment on the same line as pos
// carries the given tag — the per-finding opt-out spelling
// (`expr //simd:alloc-ok reason`).
func lineAnnotated(fset *token.FileSet, file *ast.File, pos token.Pos, tag string) bool {
	line := fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if fset.Position(c.Pos()).Line != line {
				continue
			}
			text := strings.TrimSpace(c.Text)
			if text == tag || strings.HasPrefix(text, tag+" ") {
				return true
			}
		}
	}
	return false
}

// enclosingFile returns the *ast.File of the pass that contains pos.
func enclosingFile(p *Pass, pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// isInterface reports whether t's underlying type is an interface.
func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// recvObject returns the receiver variable object of a method
// declaration, or nil for plain functions and anonymous receivers.
func recvObject(info *types.Info, fd *ast.FuncDecl) *types.Var {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	obj, _ := info.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	return obj
}

// namedOf unwraps pointers and returns the named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return nil
		}
	}
}

// stmtTerminates reports whether a statement unconditionally leaves
// the enclosing function (return, panic, os.Exit, log.Fatal*): the
// lock-state walker uses it to know a branch's exit state never
// merges back.
func stmtTerminates(info *types.Info, s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		call, ok := st.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" && info.Uses[id] == nil {
			return true
		}
		if isPkgFunc(info, call, "os", "Exit") {
			return true
		}
		if obj := calleeObject(info, call); obj != nil && obj.Pkg() != nil &&
			obj.Pkg().Path() == "log" && strings.HasPrefix(obj.Name(), "Fatal") {
			return true
		}
	}
	return false
}
