// Package lint is the repo's static-analysis suite: a small,
// dependency-free analysis framework (the repo rule is no new
// modules, so this is a stdlib-only reimplementation of the
// golang.org/x/tools/go/analysis shape) plus the six analyzers that
// machine-enforce invariants which previously lived only in reviewer
// memory:
//
//   - canonicalkey: cache/journal/result keys must be built with the
//     injective internal/keys.Builder, never fmt.Sprintf or string
//     concatenation hashed directly.
//   - guardedby: struct fields annotated `// guarded by <mu>` must
//     only be touched while <mu> is held.
//   - ctxflow: no context.Background()/TODO() inside the
//     internal/service request path, and exported functions must not
//     silently drop an incoming ctx.
//   - hotpath: functions annotated //simd:hotpath must avoid
//     allocating constructs (fmt, unsized append growth, interface
//     boxing, escaping closures).
//   - errenvelope: internal/service handlers must emit errors through
//     the shared envelope writer, never naked http.Error.
//   - metricreg: every metric family rendered at /metrics is
//     registered exactly once per package.
//
// cmd/simdlint packages the suite as a `go vet -vettool` multichecker
// and as the escape-analysis guard that pins //simd:hotpath functions
// to zero heap allocation (see escapes.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and flags.
	Name string
	// Doc is the one-line description shown by `simdlint help`.
	Doc string
	// Run performs the analysis over one package.
	Run func(*Pass)
	// SkipTests, when true (the default for every analyzer in this
	// suite), suppresses diagnostics positioned in _test.go files:
	// the invariants are about production code, and tests routinely
	// violate them on purpose (spelling keys by hand to pin hashes,
	// poking guarded fields directly, ...).
	SkipTests bool
}

// Pass carries one package's parsed and type-checked state into an
// analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos. Findings in _test.go files are
// dropped for SkipTests analyzers.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.Analyzer.SkipTests && strings.HasSuffix(position.Filename, "_test.go") {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Package bundles one loaded package for the drivers.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// RunAnalyzers applies every analyzer to the package and returns the
// findings in source order of discovery.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			diags:    &diags,
		}
		a.Run(pass)
	}
	return diags
}

// Analyzers is the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		CanonicalKey,
		GuardedBy,
		CtxFlow,
		HotPath,
		ErrEnvelope,
		MetricReg,
	}
}

// NewInfo builds a types.Info with every map analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
