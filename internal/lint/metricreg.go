package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// MetricReg guards the /metrics contract: every family is registered
// exactly once per package. A family is "registered" either by an
// obs.NewHistogramVec call (which renders its own # HELP/# TYPE) or
// by hand-written `# HELP <name>` / `# TYPE <name>` literals fed to
// fmt.Fprintf. Double registration makes Prometheus scrapes reject
// the whole exposition; a HELP without a TYPE (or vice versa)
// produces an untyped family that silently loses histogram semantics.
var MetricReg = &Analyzer{
	Name:      "metricreg",
	Doc:       "every /metrics family must be registered exactly once, with paired # HELP and # TYPE lines",
	SkipTests: true,
	Run:       runMetricReg,
}

// metricSite records one registration of a family.
type metricSite struct {
	pos  token.Pos
	kind string // "HELP", "TYPE", or "vec" (NewHistogramVec covers both)
}

func runMetricReg(p *Pass) {
	families := make(map[string][]metricSite)
	order := []string{}
	record := func(name, kind string, pos token.Pos) {
		if _, seen := families[name]; !seen {
			order = append(order, name)
		}
		families[name] = append(families[name], metricSite{pos: pos, kind: kind})
	}

	for _, f := range p.Files {
		// Test files register scratch families at will; only the
		// production exposition counts.
		if strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if obj := calleeObject(p.Info, call); obj != nil && obj.Name() == "NewHistogramVec" && len(call.Args) > 0 {
				if name, ok := stringLit(call.Args[0]); ok {
					record(name, "vec", call.Pos())
				}
				return true
			}
			// fmt.Fprintf(w, "# HELP simd_x ...\n") — the hand-rolled
			// exposition path. Only literal formats are checkable.
			if isPkgFunc(p.Info, call, "fmt", "Fprintf") || isPkgFunc(p.Info, call, "fmt", "Fprint") {
				for _, arg := range call.Args {
					lit, ok := stringLit(arg)
					if !ok {
						continue
					}
					for _, kind := range []string{"HELP", "TYPE"} {
						marker := "# " + kind + " "
						rest, found := strings.CutPrefix(lit, marker)
						if !found {
							continue
						}
						name, _, _ := strings.Cut(rest, " ")
						name = strings.TrimRight(name, "\n")
						// A %s family name is not statically known.
						if name != "" && !strings.Contains(name, "%") {
							record(name, kind, arg.Pos())
						}
					}
				}
			}
			return true
		})
	}

	for _, name := range order {
		sites := families[name]
		var help, typ, vec []metricSite
		for _, s := range sites {
			switch s.kind {
			case "HELP":
				help = append(help, s)
			case "TYPE":
				typ = append(typ, s)
			case "vec":
				vec = append(vec, s)
			}
		}
		switch {
		case len(vec) > 1:
			p.Reportf(vec[1].pos, "metric family %q is registered %d times in this package; register it exactly once", name, len(vec))
		case len(vec) == 1 && (len(help) > 0 || len(typ) > 0):
			hand := append(append([]metricSite{}, help...), typ...)
			p.Reportf(hand[0].pos, "metric family %q is registered both by NewHistogramVec and by hand-written # HELP/# TYPE lines", name)
		case len(help) > 1:
			p.Reportf(help[1].pos, "metric family %q emits # HELP %d times in this package; each family is registered exactly once", name, len(help))
		case len(typ) > 1:
			p.Reportf(typ[1].pos, "metric family %q emits # TYPE %d times in this package; each family is registered exactly once", name, len(typ))
		case len(help) == 1 && len(typ) == 0:
			p.Reportf(help[0].pos, "metric family %q has a # HELP line but no # TYPE line; scrapers treat it as untyped", name)
		case len(typ) == 1 && len(help) == 0:
			p.Reportf(typ[0].pos, "metric family %q has a # TYPE line but no # HELP line", name)
		}
	}
}

// stringLit unwraps a string literal (possibly parenthesized),
// returning its unquoted value.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
