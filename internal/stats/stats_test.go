package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Fatalf("expected ErrEmpty, got %v", err)
	}
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || m != 2.5 {
		t.Fatalf("Mean = %v, %v", m, err)
	}
}

func TestHarmonicMean(t *testing.T) {
	h, err := HarmonicMean([]float64{1, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-2) > 1e-12 {
		t.Fatalf("HarmonicMean = %v, want 2", h)
	}
	if _, err := HarmonicMean([]float64{1, 0}); err == nil {
		t.Fatal("expected error on nonpositive value")
	}
	if _, err := HarmonicMean(nil); err != ErrEmpty {
		t.Fatalf("expected ErrEmpty, got %v", err)
	}
}

func TestGeometricMean(t *testing.T) {
	g, err := GeometricMean([]float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-4) > 1e-9 {
		t.Fatalf("GeometricMean = %v, want 4", g)
	}
	if _, err := GeometricMean([]float64{-1}); err == nil {
		t.Fatal("expected error")
	}
}

func TestStdDev(t *testing.T) {
	s, err := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-2.13808993529939) > 1e-9 {
		t.Fatalf("StdDev = %v", s)
	}
	if _, err := StdDev([]float64{1}); err == nil {
		t.Fatal("expected error on single sample")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v %v %v", lo, hi, err)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Fatal("expected ErrEmpty")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, c := range []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	} {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatal("expected range error")
	}
	// Input must not be modified.
	orig := []float64{5, 1, 3}
	if _, err := Percentile(orig, 50); err != nil {
		t.Fatal(err)
	}
	if orig[0] != 5 || orig[1] != 1 || orig[2] != 3 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(110, 100) != 0.1 {
		t.Fatalf("RelErr = %v", RelErr(110, 100))
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Fatal("RelErr(1,0) should be +Inf")
	}
	if RelErr(0, 0) != 0 {
		t.Fatal("RelErr(0,0) should be 0")
	}
}

func TestWithinFactor(t *testing.T) {
	if !WithinFactor(2, 3, 2) {
		t.Fatal("2 should be within 2x of 3")
	}
	if WithinFactor(1, 3, 2) {
		t.Fatal("1 is not within 2x of 3")
	}
	if !WithinFactor(6, 3, 2) {
		t.Fatal("6 should be within 2x of 3")
	}
	if WithinFactor(-2, 3, 2) {
		t.Fatal("sign mismatch must fail")
	}
	// f below one is normalized.
	if !WithinFactor(2, 3, 0.5) {
		t.Fatal("f<1 should behave like 1/f")
	}
}

func TestHarmonicLEArithmeticProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) + 1 // strictly positive
		}
		h, err1 := HarmonicMean(xs)
		g, err3 := GeometricMean(xs)
		a, err2 := Mean(xs)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		// AM-GM-HM inequality with FP slack.
		return h <= a*(1+1e-9) && h <= g*(1+1e-9) && g <= a*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
