// Package stats provides the small statistical helpers the benchmark
// harness needs: arithmetic/harmonic/geometric means, standard
// deviation, min/max, and relative-error utilities. Graph500 reports
// the harmonic mean of TEPS across BFS roots, so that one matters for
// fidelity to the reference benchmark.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic of an empty sample is requested.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// HarmonicMean returns the harmonic mean. All values must be positive;
// Graph500 defines its headline TEPS metric this way.
func HarmonicMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: harmonic mean requires positive values")
		}
		s += 1 / x
	}
	return float64(len(xs)) / s, nil
}

// GeometricMean returns the geometric mean of positive values.
func GeometricMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geometric mean requires positive values")
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}

// StdDev returns the sample standard deviation (n-1 denominator).
func StdDev(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, errors.New("stats: stddev needs at least two samples")
	}
	m, _ := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1)), nil
}

// MinMax returns the smallest and largest values.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between closest ranks. The input is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// RelErr returns |got-want|/|want|. A zero want with nonzero got
// returns +Inf.
func RelErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// WithinFactor reports whether got is within [want/f, want*f] for f>=1.
// It is the primary comparison used by the shape tests: reproductions
// should match paper ratios within a small factor, not exactly.
func WithinFactor(got, want, f float64) bool {
	if f < 1 {
		f = 1 / f
	}
	if want == 0 {
		return got == 0
	}
	if (got > 0) != (want > 0) {
		return false
	}
	r := got / want
	if r < 0 {
		return false
	}
	return r >= 1/f && r <= f
}
