package workload_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/units"
	"repro/internal/workload"
)

// paperWorkloads is Table I plus the two micro-benchmarks.
var paperWorkloads = []string{
	"STREAM", "TinyMemBench", "DGEMM", "MiniFE", "GUPS", "Graph500", "XSBench",
}

func newSystem(t *testing.T) *core.System {
	t.Helper()
	sys, err := core.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestRegistryLookup(t *testing.T) {
	sys := newSystem(t)
	for _, name := range paperWorkloads {
		mdl, err := sys.Workload(name)
		if err != nil {
			t.Fatalf("lookup %s: %v", name, err)
		}
		if got := mdl.Info().Name; got != name {
			t.Errorf("lookup %s returned model named %s", name, got)
		}
	}
	if got := len(sys.Workloads()); got != len(paperWorkloads) {
		t.Fatalf("registry holds %d workloads, want %d", got, len(paperWorkloads))
	}
}

func TestUnknownNameError(t *testing.T) {
	sys := newSystem(t)
	_, err := sys.Workload("HPCG")
	if err == nil {
		t.Fatal("unknown workload lookup succeeded")
	}
	// The error must name the miss and list what exists.
	msg := err.Error()
	if !strings.Contains(msg, "HPCG") || !strings.Contains(msg, "STREAM") {
		t.Errorf("unhelpful unknown-workload error: %v", err)
	}
	if _, err := sys.Predict("HPCG", engine.DRAM, units.GB(1), 64); err == nil {
		t.Error("Predict with unknown workload succeeded")
	}
}

func TestMetadataCompleteness(t *testing.T) {
	sys := newSystem(t)
	validClasses := map[string]bool{workload.ClassScientific: true, workload.ClassDataAnalytics: true}
	validPatterns := map[string]bool{workload.PatternSequential: true, workload.PatternRandom: true}
	for _, mdl := range sys.Workloads() {
		info := mdl.Info()
		if info.Name == "" {
			t.Fatal("workload with empty name")
		}
		t.Run(info.Name, func(t *testing.T) {
			if !validClasses[info.Class] {
				t.Errorf("class %q is not a Table I type", info.Class)
			}
			if !validPatterns[info.Pattern] {
				t.Errorf("pattern %q is not a Table I access pattern", info.Pattern)
			}
			if info.MaxScale <= 0 {
				t.Errorf("max scale %v not positive", info.MaxScale)
			}
			if info.Metric == "" {
				t.Error("no reporting metric")
			}
			if len(mdl.PaperSizes()) == 0 {
				t.Error("no Fig. 4 problem sizes")
			}
			for _, s := range mdl.PaperSizes() {
				if s <= 0 {
					t.Errorf("non-positive paper size %v", s)
				}
			}
		})
	}
}

func TestFig6SizesBelongToPanels(t *testing.T) {
	sys := newSystem(t)
	// The paper's Fig. 6 has panels for exactly these four apps.
	panels := map[string]bool{"DGEMM": true, "MiniFE": true, "Graph500": true, "XSBench": true}
	for _, mdl := range sys.Workloads() {
		info := mdl.Info()
		if panels[info.Name] && mdl.Fig6Size() <= 0 {
			t.Errorf("%s has a Fig. 6 panel but no Fig6Size", info.Name)
		}
	}
}

func TestPaperThreads(t *testing.T) {
	want := []int{64, 128, 192, 256}
	got := workload.PaperThreads()
	if len(got) != len(want) {
		t.Fatalf("PaperThreads() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PaperThreads() = %v, want %v", got, want)
		}
	}
}

func TestDuplicateRegistrationRejected(t *testing.T) {
	sys := newSystem(t)
	mdl, err := sys.Workload("STREAM")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Register(mdl); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestErrNotMeasuredMatchesPaper(t *testing.T) {
	sys := newSystem(t)
	// "results relative to DGEMM with 256 hardware threads are not
	// available as the run can not complete successfully".
	_, err := sys.Predict("DGEMM", engine.HBM, units.GB(6), 256)
	if !errors.Is(err, workload.ErrNotMeasured) {
		t.Fatalf("DGEMM@256 err = %v, want ErrNotMeasured", err)
	}
}
