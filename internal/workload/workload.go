// Package workload defines the interface every benchmark in the
// evaluation implements: metadata for Table I, a performance model
// feeding the timing engine, and the standard problem-size and
// thread sweeps of the paper's figures.
package workload

import (
	"errors"

	"repro/internal/engine"
	"repro/internal/units"
)

// Class labels match Table I's "Type" column.
const (
	ClassScientific    = "Scientific"
	ClassDataAnalytics = "Data analytics"
)

// Pattern labels match Table I's "Access Pattern" column.
const (
	PatternSequential = "Sequential"
	PatternRandom     = "Random"
)

// Info is a workload's Table I row plus its reporting metric.
type Info struct {
	Name     string
	Class    string // ClassScientific or ClassDataAnalytics
	Pattern  string // PatternSequential or PatternRandom
	MaxScale units.Bytes
	Metric   string // e.g. "GFLOPS", "TEPS", "Lookups/s"
}

// Model is a workload performance model: it predicts the workload's
// reported metric for a problem size under a memory configuration and
// thread count, on a given machine.
type Model interface {
	Info() Info

	// Predict returns the metric value (higher is better). It returns
	// engine.ErrDoesNotFit when the problem cannot be allocated under
	// cfg, and ErrNotMeasured for configurations the paper could not
	// run (DGEMM at 256 threads).
	Predict(m *engine.Machine, cfg engine.MemoryConfig, size units.Bytes, threads int) (float64, error)

	// PaperSizes returns the problem sizes (x axis) of the workload's
	// Fig. 4 panel.
	PaperSizes() []units.Bytes

	// Fig6Size returns the fixed problem size used for the thread
	// sweep of Fig. 6 (0 if the workload has no Fig. 6 panel).
	Fig6Size() units.Bytes
}

// ErrNotMeasured marks configurations the paper reports as not
// runnable ("results relative to DGEMM with 256 hardware threads are
// not available as the run can not complete successfully").
var ErrNotMeasured = errors.New("workload: configuration not measurable (matches paper)")

// PaperThreads is the Fig. 6 x axis.
func PaperThreads() []int { return []int{64, 128, 192, 256} }
