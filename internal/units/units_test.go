package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstants(t *testing.T) {
	if KiB != 1024 || MiB != 1024*KiB || GiB != 1024*MiB || TiB != 1024*GiB {
		t.Fatalf("binary unit ladder broken: %d %d %d %d", KiB, MiB, GiB, TiB)
	}
	if CacheLine != 64 {
		t.Fatalf("KNL cache line must be 64 B, got %d", CacheLine)
	}
	if Page != 4096 {
		t.Fatalf("base page must be 4 KiB, got %d", Page)
	}
}

func TestGBRoundTrip(t *testing.T) {
	for _, g := range []float64{0.1, 0.5, 1, 1.5, 16, 96, 384} {
		b := GB(g)
		if math.Abs(b.GiBf()-g) > 1e-8 {
			t.Errorf("GB(%v).GiBf() = %v", g, b.GiBf())
		}
	}
}

func TestLinesAndPages(t *testing.T) {
	cases := []struct {
		b     Bytes
		lines int64
		pages int64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{64, 1, 1},
		{65, 2, 1},
		{4096, 64, 1},
		{4097, 65, 2},
	}
	for _, c := range cases {
		if got := c.b.Lines(); got != c.lines {
			t.Errorf("%d.Lines() = %d, want %d", c.b, got, c.lines)
		}
		if got := c.b.Pages(); got != c.pages {
			t.Errorf("%d.Pages() = %d, want %d", c.b, got, c.pages)
		}
	}
}

func TestBytesString(t *testing.T) {
	cases := []struct {
		b    Bytes
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{KiB, "1.0 KiB"},
		{16 * GiB, "16.0 GiB"},
		{-2 * MiB, "-2.0 MiB"},
	}
	for _, c := range cases {
		if got := c.b.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int64(c.b), got, c.want)
		}
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want Bytes
	}{
		{"64", 64},
		{"64B", 64},
		{"512K", 512 * KiB},
		{"512KB", 512 * KiB},
		{"512KiB", 512 * KiB},
		{"1M", MiB},
		{"16GB", 16 * GiB},
		{"1.5 GiB", GB(1.5)},
		{"0.5g", GB(0.5)},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil {
			t.Errorf("ParseBytes(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "x", "-3GB", "GB", "1.2.3M"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Errorf("ParseBytes(%q): expected error", bad)
		}
	}
}

func TestParseFormatRoundTripProperty(t *testing.T) {
	f := func(raw uint32) bool {
		b := Bytes(raw)
		got, err := ParseBytes(b.String())
		if err != nil {
			return false
		}
		// String() rounds to one decimal of the chosen unit, so allow
		// that much slack on the round trip.
		var unit Bytes = 1
		switch {
		case b >= TiB:
			unit = TiB
		case b >= GiB:
			unit = GiB
		case b >= MiB:
			unit = MiB
		case b >= KiB:
			unit = KiB
		}
		diff := got - b
		if diff < 0 {
			diff = -diff
		}
		return diff <= unit/10+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBandwidthAndDuration(t *testing.T) {
	bw := GBps(330)
	if bw.GBpsf() != 330 {
		t.Fatalf("GBpsf = %v", bw.GBpsf())
	}
	if bw.String() != "330.0 GB/s" {
		t.Fatalf("bw.String() = %q", bw.String())
	}
	d := Nanoseconds(1.5e9)
	if d.Seconds() != 1.5 {
		t.Fatalf("Seconds = %v", d.Seconds())
	}
	if d.String() != "1.500 s" {
		t.Fatalf("d.String() = %q", d.String())
	}
	if Nanoseconds(130.4).String() != "130.4 ns" {
		t.Fatalf("ns formatting: %q", Nanoseconds(130.4).String())
	}
	if Nanoseconds(2500).String() != "2.500 us" {
		t.Fatalf("us formatting: %q", Nanoseconds(2500).String())
	}
	if Nanoseconds(3.2e6).String() != "3.200 ms" {
		t.Fatalf("ms formatting: %q", Nanoseconds(3.2e6).String())
	}
}
