// Package units provides byte-size and rate units used throughout the
// hybrid-memory simulator, plus parsing and human-readable formatting.
//
// The simulator works in SI-ish hybrid conventions matching the paper:
// capacities use binary units (16 GB MCDRAM = 16 GiB), while bandwidths
// use decimal units (GB/s = 1e9 bytes per second), which is the
// convention STREAM and the KNL literature use.
package units

import (
	"fmt"
	"strconv"
	"strings"
)

// Bytes is a byte count. It is signed so that differences are easy to
// compute; negative values are invalid as capacities.
type Bytes int64

// Binary byte units, used for capacities and working-set sizes.
const (
	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
	TiB Bytes = 1 << 40
)

// CacheLine is the line size of every cache level on KNL.
const CacheLine Bytes = 64

// Page is the base page size used by the simulated OS (4 KiB).
const Page Bytes = 4 * KiB

// GB converts a (possibly fractional) GiB count to Bytes.
func GB(g float64) Bytes { return Bytes(g * float64(GiB)) }

// MB converts a (possibly fractional) MiB count to Bytes.
func MB(m float64) Bytes { return Bytes(m * float64(MiB)) }

// GiBf returns the size expressed in (fractional) GiB.
func (b Bytes) GiBf() float64 { return float64(b) / float64(GiB) }

// MiBf returns the size expressed in (fractional) MiB.
func (b Bytes) MiBf() float64 { return float64(b) / float64(MiB) }

// Lines returns the number of cache lines covering b, rounding up.
func (b Bytes) Lines() int64 { return int64((b + CacheLine - 1) / CacheLine) }

// Pages returns the number of base pages covering b, rounding up.
func (b Bytes) Pages() int64 { return int64((b + Page - 1) / Page) }

// String renders the size with a binary suffix, e.g. "16.0 GiB".
func (b Bytes) String() string {
	neg := ""
	v := b
	if v < 0 {
		neg = "-"
		v = -v
	}
	switch {
	case v >= TiB:
		return fmt.Sprintf("%s%.1f TiB", neg, float64(v)/float64(TiB))
	case v >= GiB:
		return fmt.Sprintf("%s%.1f GiB", neg, float64(v)/float64(GiB))
	case v >= MiB:
		return fmt.Sprintf("%s%.1f MiB", neg, float64(v)/float64(MiB))
	case v >= KiB:
		return fmt.Sprintf("%s%.1f KiB", neg, float64(v)/float64(KiB))
	}
	return fmt.Sprintf("%s%d B", neg, int64(v))
}

// ParseBytes parses strings like "16GB", "1.5 GiB", "512K", "64" (bytes).
// Both binary ("KiB") and short ("K", "KB") suffixes are accepted and
// all are interpreted as binary multiples, matching how the paper
// quotes capacities.
func ParseBytes(s string) (Bytes, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("units: empty size")
	}
	upper := strings.ToUpper(t)
	mult := Bytes(1)
	for _, suf := range []struct {
		names []string
		mult  Bytes
	}{
		{[]string{"TIB", "TB", "T"}, TiB},
		{[]string{"GIB", "GB", "G"}, GiB},
		{[]string{"MIB", "MB", "M"}, MiB},
		{[]string{"KIB", "KB", "K"}, KiB},
		{[]string{"B"}, 1},
	} {
		done := false
		for _, name := range suf.names {
			if strings.HasSuffix(upper, name) {
				upper = strings.TrimSpace(strings.TrimSuffix(upper, name))
				mult = suf.mult
				done = true
				break
			}
		}
		if done {
			break
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(upper), 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad size %q: %v", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("units: negative size %q", s)
	}
	total := v * float64(mult)
	if total > float64(1<<62) {
		return 0, fmt.Errorf("units: size %q overflows", s)
	}
	return Bytes(total), nil
}

// BytesPerNS is a bandwidth in bytes per nanosecond, which is
// numerically identical to GB/s (1e9 bytes / 1e9 ns).
type BytesPerNS float64

// GBps constructs a bandwidth from a GB/s value.
func GBps(v float64) BytesPerNS { return BytesPerNS(v) }

// GBpsf reports the bandwidth as a GB/s value.
func (bw BytesPerNS) GBpsf() float64 { return float64(bw) }

// String renders the bandwidth, e.g. "330.0 GB/s".
func (bw BytesPerNS) String() string { return fmt.Sprintf("%.1f GB/s", float64(bw)) }

// Nanoseconds is a duration in nanoseconds, kept as float64 so that
// sub-nanosecond model terms do not truncate.
type Nanoseconds float64

// Seconds reports the duration in seconds.
func (ns Nanoseconds) Seconds() float64 { return float64(ns) * 1e-9 }

// String renders the duration with an adaptive unit.
func (ns Nanoseconds) String() string {
	v := float64(ns)
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3f s", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3f ms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3f us", v/1e3)
	}
	return fmt.Sprintf("%.1f ns", v)
}
