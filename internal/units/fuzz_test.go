package units

import "testing"

// FuzzParseBytes checks that the size parser never panics and that
// accepted inputs round-trip through formatting sanely.
func FuzzParseBytes(f *testing.F) {
	for _, seed := range []string{"16GB", "1.5 GiB", "512K", "64", "0.5g", "", "x", "-3GB", "9999999999T"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		b, err := ParseBytes(s)
		if err != nil {
			return
		}
		if b < 0 {
			t.Fatalf("ParseBytes(%q) accepted negative size %d", s, b)
		}
		// Formatting an accepted value must itself parse.
		if _, err := ParseBytes(b.String()); err != nil {
			t.Fatalf("String() of accepted value %d does not re-parse: %v", b, err)
		}
	})
}
