package keys

import (
	"math"
	"strings"
	"testing"
)

func TestPreimageShape(t *testing.T) {
	b := New("point").Str("w", "stream").Int("k", 2).Float("f", 0.25).Bool("pf", true)
	got := b.String()
	want := "5:point|w=6:stream|k=2|f=3fd0000000000000|pf=t"
	if got != want {
		t.Fatalf("preimage = %q, want %q", got, want)
	}
	if len(b.Sum()) != 64 {
		t.Fatalf("sum length = %d, want 64 hex chars", len(b.Sum()))
	}
}

// TestInjective pins the collision classes the builder exists to
// close: delimiter forgery in adjacent strings, float spellings, and
// namespace aliasing.
func TestInjective(t *testing.T) {
	pairs := [][2]*Builder{
		// "a|b"+"c" must not collide with "a"+"b|c".
		{New("x").Str("a", "a|b").Str("b", "c"), New("x").Str("a", "a").Str("b", "b|c")},
		// Length-prefix boundary: "ab"+"" vs "a"+"b".
		{New("x").Str("a", "ab").Str("b", ""), New("x").Str("a", "a").Str("b", "b")},
		// Distinct floats that %.6f would collapse.
		{New("x").Float("f", 0.2500001), New("x").Float("f", 0.25000011)},
		// Same fields, different namespace.
		{New("advise").Str("w", "gups"), New("cluster").Str("w", "gups")},
		// Signed vs magnitude.
		{New("x").Int("n", -1), New("x").Uint("n", 1)},
	}
	for i, p := range pairs {
		if p[0].Sum() == p[1].Sum() {
			t.Errorf("pair %d: %q and %q collide", i, p[0].String(), p[1].String())
		}
	}
}

// TestSpellingInsensitive pins the other half of the contract: equal
// resolved values hash equal regardless of how callers reached them.
func TestSpellingInsensitive(t *testing.T) {
	a := New("advise").Str("w", "gups").Int("b", 8<<30).Float("f", 0.25)
	b := New("advise").Str("w", "gups").Int("b", 8192<<20).Float("f", 1.0/4.0)
	if a.Sum() != b.Sum() {
		t.Fatalf("equal resolved keys differ: %q vs %q", a.String(), b.String())
	}
}

func TestFloatBitPattern(t *testing.T) {
	got := New("x").Float("f", 1.0).String()
	if !strings.HasSuffix(got, "|f=3ff0000000000000") {
		t.Fatalf("Float(1.0) preimage = %q, want 3ff0000000000000 suffix", got)
	}
	neg := New("x").Float("f", math.Copysign(0, -1)).String()
	pos := New("x").Float("f", 0.0).String()
	if neg == pos {
		t.Fatalf("-0.0 and +0.0 must encode distinctly (bit pattern): %q", neg)
	}
}
