// Package keys builds the canonical content-address preimages every
// cache, journal and result key in the repo hashes. The encoding is
// injective by construction — strings are length-prefixed, floats are
// serialized by bit pattern, integers are decimal between delimiters —
// so two distinct resolved values can never collide, and two
// spellings of the same resolved value (8GB vs 8192MB, 0.25 vs
// 2.5e-1) hash equal exactly when their resolved forms are equal.
//
// Every key in the tree must be built through a Builder. Hand-rolling
// a preimage with fmt.Sprintf or string concatenation is flagged by
// the canonicalkey analyzer (internal/lint): %v/%.6f spellings are
// not injective, and delimiter-joined user strings can collide with
// each other ("a|b" + "c" vs "a" + "b|c").
//
// The builder never calls fmt and appends into one reusable buffer,
// so key construction costs one allocation plus the hash.
package keys

import (
	"crypto/sha256"
	"encoding/hex"
	"math"
	"strconv"
)

// Builder accumulates the canonical byte encoding of one compound
// key. Fields append as '|' tag '=' value, with self-delimiting value
// encodings; the namespace leads the preimage so key families
// (point, advise, cluster, replay, result, ...) can never alias one
// another even when their fields agree.
//
// Tags must be short literal names without '|', '=' or ':' — they are
// part of the canonical format, not data. Values may be anything.
type Builder struct {
	buf []byte
}

// New starts a key in the given namespace.
func New(namespace string) *Builder {
	b := &Builder{buf: make([]byte, 0, 160)}
	b.lpstr(namespace)
	return b
}

// lpstr appends a length-prefixed string: <len>:<bytes>. The prefix
// makes the value self-delimiting, so embedded delimiters in
// user-supplied strings cannot forge field boundaries.
func (b *Builder) lpstr(s string) {
	b.buf = strconv.AppendInt(b.buf, int64(len(s)), 10)
	b.buf = append(b.buf, ':')
	b.buf = append(b.buf, s...)
}

func (b *Builder) tag(tag string) {
	b.buf = append(b.buf, '|')
	b.buf = append(b.buf, tag...)
	b.buf = append(b.buf, '=')
}

// Str appends a length-prefixed string field.
func (b *Builder) Str(tag, v string) *Builder {
	b.tag(tag)
	b.lpstr(v)
	return b
}

// Int appends a decimal integer field.
func (b *Builder) Int(tag string, v int64) *Builder {
	b.tag(tag)
	b.buf = strconv.AppendInt(b.buf, v, 10)
	return b
}

// Uint appends a decimal unsigned integer field.
func (b *Builder) Uint(tag string, v uint64) *Builder {
	b.tag(tag)
	b.buf = strconv.AppendUint(b.buf, v, 10)
	return b
}

// Float appends a float64 by bit pattern — fixed-width 16-hex —
// injective for every distinct float64, unlike any %f/%g rendering.
func (b *Builder) Float(tag string, v float64) *Builder {
	b.tag(tag)
	bits := math.Float64bits(v)
	var hexBuf [16]byte
	for i := 15; i >= 0; i-- {
		hexBuf[i] = "0123456789abcdef"[bits&0xf]
		bits >>= 4
	}
	b.buf = append(b.buf, hexBuf[:]...)
	return b
}

// Bool appends a boolean field.
func (b *Builder) Bool(tag string, v bool) *Builder {
	b.tag(tag)
	if v {
		b.buf = append(b.buf, 't')
	} else {
		b.buf = append(b.buf, 'f')
	}
	return b
}

// String returns the canonical preimage accumulated so far — the
// debugging and test view of what will be hashed.
func (b *Builder) String() string { return string(b.buf) }

// Sum returns the key: lowercase hex SHA-256 of the preimage.
func (b *Builder) Sum() string {
	sum := sha256.Sum256(b.buf)
	return hex.EncodeToString(sum[:])
}
