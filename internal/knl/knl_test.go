package knl

import (
	"math"
	"testing"
)

func TestKNL7210Valid(t *testing.T) {
	c := KNL7210()
	if err := c.Validate(); err != nil {
		t.Fatalf("KNL7210 preset invalid: %v", err)
	}
}

func TestKNL7210ArchitecturalFacts(t *testing.T) {
	c := KNL7210()
	if c.Cores != 64 || c.ThreadsPerCore != 4 {
		t.Errorf("cores/threads = %d/%d, want 64/4", c.Cores, c.ThreadsPerCore)
	}
	if c.MaxThreads() != 256 {
		t.Errorf("MaxThreads = %d, want 256", c.MaxThreads())
	}
	if got := c.MCDRAM.Capacity.GiBf(); got != 16 {
		t.Errorf("MCDRAM capacity = %v GiB, want 16", got)
	}
	if got := c.DDR.Capacity.GiBf(); got != 96 {
		t.Errorf("DDR capacity = %v GiB, want 96", got)
	}
	if c.DDR.Channels != 6 {
		t.Errorf("DDR channels = %d, want 6 (six DDR4 channels)", c.DDR.Channels)
	}
	if c.MCDRAM.Channels != 8 {
		t.Errorf("MCDRAM channels = %d, want 8 (eight 2 GB modules)", c.MCDRAM.Channels)
	}
	// Paper-quoted latencies.
	if c.DDR.IdleLatency != 130.4 || c.MCDRAM.IdleLatency != 154.0 {
		t.Errorf("idle latencies = %v/%v, want 130.4/154.0", c.DDR.IdleLatency, c.MCDRAM.IdleLatency)
	}
	// HBM latency is ~18% above DRAM (§IV-A).
	gap := float64(c.MCDRAM.IdleLatency)/float64(c.DDR.IdleLatency) - 1
	if gap < 0.17 || gap > 0.19 {
		t.Errorf("latency gap = %.3f, want ~0.18", gap)
	}
	// Bandwidth ratio ~4x (§II).
	ratio := c.MCDRAM.PeakBW.GBpsf() / c.DDR.PeakBW.GBpsf()
	if ratio < 3.5 || ratio > 5.5 {
		t.Errorf("pin bandwidth ratio = %.2f, want ~4-5x", ratio)
	}
	if p := c.PeakGFLOPS(); math.Abs(p-2662.4) > 0.1 {
		t.Errorf("peak GFLOPS = %v, want 2662.4", p)
	}
}

func TestThreadsPerCoreFor(t *testing.T) {
	c := KNL7210()
	cases := []struct{ threads, want int }{
		{1, 1}, {32, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}, {192, 3}, {256, 4}, {512, 4},
	}
	for _, cse := range cases {
		if got := c.ThreadsPerCoreFor(cse.threads); got != cse.want {
			t.Errorf("ThreadsPerCoreFor(%d) = %d, want %d", cse.threads, got, cse.want)
		}
	}
}

func TestActiveCoresFor(t *testing.T) {
	c := KNL7210()
	cases := []struct{ threads, want int }{
		{0, 1}, {1, 1}, {32, 32}, {64, 64}, {128, 64}, {256, 64},
	}
	for _, cse := range cases {
		if got := c.ActiveCoresFor(cse.threads); got != cse.want {
			t.Errorf("ActiveCoresFor(%d) = %d, want %d", cse.threads, got, cse.want)
		}
	}
}

func TestSeqConcurrencyReproducesStreamCalibration(t *testing.T) {
	c := KNL7210()
	// ht=1 on all 64 cores: the concurrency must deliver ~330 GB/s on
	// MCDRAM via Little's law (Fig. 2).
	n1 := c.SeqConcurrency(64)
	bw1 := n1 * 64 / float64(c.MCDRAM.IdleLatency)
	if bw1 < 315 || bw1 > 345 {
		t.Errorf("ht=1 HBM stream = %.0f GB/s, want ~330", bw1)
	}
	// ht=2 must be ~1.27x ht=1 (Fig. 5).
	n2 := c.SeqConcurrency(128)
	r := n2 / n1
	if r < 1.2 || r > 1.35 {
		t.Errorf("ht2/ht1 concurrency ratio = %.3f, want ~1.27", r)
	}
	// ht=3 and ht=4 stay near but below ht=2.
	if n3 := c.SeqConcurrency(192); n3 >= n2 || n3 < 0.9*n2 {
		t.Errorf("ht=3 concurrency %v out of (0.9..1.0)x ht=2 %v", n3, n2)
	}
}

func TestRandomConcurrency(t *testing.T) {
	c := KNL7210()
	// Default MLP: 64 threads * 2 = 128 lines.
	if got := c.RandomConcurrency(64, 0); got != 128 {
		t.Errorf("RandomConcurrency(64, default) = %v, want 128", got)
	}
	// Per-core saturation: 4 threads * 8 MLP = 32 > cap.
	got := c.RandomConcurrency(256, 8)
	capPerCore := c.Cal.SeqLinesPerCore[4] * 1.25
	if got != 64*capPerCore {
		t.Errorf("saturated RandomConcurrency = %v, want %v", got, 64*capPerCore)
	}
	// More threads never reduce concurrency.
	prev := 0.0
	for _, threads := range []int{16, 32, 64, 128, 192, 256} {
		n := c.RandomConcurrency(threads, 0)
		if n < prev {
			t.Errorf("RandomConcurrency not monotone at %d threads", threads)
		}
		prev = n
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	c := KNL7210()
	c.Cores = 63 // no longer tiles*coresPerTile
	if err := c.Validate(); err == nil {
		t.Error("mismatched tile/core count accepted")
	}
	c = KNL7210()
	c.Cal.SeqLinesPerCore[2] = 0
	if err := c.Validate(); err == nil {
		t.Error("missing concurrency entry accepted")
	}
	c = KNL7210()
	c.Cal.CacheModeHitRatioAnchors[1].Ratio = -1
	if err := c.Validate(); err == nil {
		t.Error("non-increasing anchors accepted")
	}
	c = KNL7210()
	c.Cal.CacheModeHitRatioAnchors[0].Hit = 1.5
	if err := c.Validate(); err == nil {
		t.Error("hit ratio > 1 accepted")
	}
	c = KNL7210()
	c.Cal.DGEMMEff[1] = 0
	if err := c.Validate(); err == nil {
		t.Error("zero DGEMM efficiency accepted")
	}
	c = KNL7210()
	c.ActiveTiles = 64
	c.CoresPerTile = 1
	if err := c.Validate(); err == nil {
		t.Error("tiles exceeding mesh accepted")
	}
}
