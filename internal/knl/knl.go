// Package knl holds the machine description and every calibration
// constant of the simulated Intel Knights Landing node.
//
// The paper's testbed is a Cray Archer KNL 7210 node: 64 cores at
// 1.3 GHz, 4 hardware threads per core, 32 active tiles (two cores and
// a shared 1 MB L2 per tile) on a mesh interconnect in quadrant
// cluster mode, 16 GB of MCDRAM (eight 2 GB on-package modules) and
// 96 GB of DDR4 over six 2.1 GHz channels.
//
// Since the hardware is simulated, every performance constant in this
// package is either (a) an architectural fact of the 7210, or (b) a
// calibration fitted to a measurement reported in the paper. Each
// constant's comment names its source.
package knl

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/units"
)

// ChipSpec describes a KNL processor and its memory system.
type ChipSpec struct {
	Name           string
	Cores          int     // physical cores
	ThreadsPerCore int     // hardware threads per core (hyper-threads)
	ClockGHz       float64 // core clock

	// Mesh geometry. The 7210 die has a 6x6 grid of positions of
	// which some are memory/IO stops; 32 tiles carry cores.
	MeshCols, MeshRows int
	ActiveTiles        int
	CoresPerTile       int

	L1DPerCore units.Bytes // private L1 data cache
	L1Assoc    int
	L2PerTile  units.Bytes // shared per-tile L2
	L2Assoc    int

	// FlopsPerCycleDP is the theoretical per-core DP flops per cycle
	// (two 8-wide AVX-512 FMA units => 32).
	FlopsPerCycleDP int

	MCDRAM mem.DeviceSpec
	DDR    mem.DeviceSpec

	Cal Calibration
}

// Calibration gathers every fitted model constant. See the comments on
// each field for its provenance in the paper.
type Calibration struct {
	// SeqLinesPerCore[ht] is the number of in-flight cache lines one
	// core sustains on a sequential (prefetch-friendly) stream when
	// running ht hardware threads. Fitted so that Little's Law
	// reproduces the paper's STREAM results on MCDRAM:
	//   ht=1: 794 total lines * 64 B / 154 ns = 330 GB/s   (Fig. 2)
	//   ht=2: 1.27x the ht=1 bandwidth => ~419 GB/s        (Fig. 5)
	//   ht=3,4: slightly below ht=2 ("varying performance"), Fig. 5.
	// DDR needs only ~156 lines for 77 GB/s, so it is always
	// bandwidth-limited and insensitive to ht (all DRAM lines of
	// Fig. 5 overlap).
	SeqLinesPerCore [5]float64

	// RandomMLPPerThread is the demand memory-level parallelism a
	// single hardware thread sustains on independent random accesses
	// (GUPS-style). Limited by the modest out-of-order window of the
	// Silvermont-derived KNL core plus the address-generation work
	// between loads; 2.0 reproduces the paper's 64-thread ordering
	// (DRAM ahead of HBM on every random workload, Fig. 4c-e) while
	// letting 256 threads push HBM past DRAM (Fig. 6d).
	RandomMLPPerThread float64

	// ChaseMLPPerThread is the per-chain parallelism of a dependent
	// pointer chase: exactly 1 by construction (TinyMemBench's dual
	// random read runs 2 chains => MLP 2 per thread). §IV-A, Fig. 3.
	ChaseMLPPerThread float64

	// L2HitLatency is the random-read latency served from the local
	// tile L2: the ~10 ns plateau for <1 MB blocks in Fig. 3.
	L2HitLatency units.Nanoseconds

	// DualReadPlateauDRAM/HBM are the 2–64 MB plateau latencies of the
	// dual random read (Fig. 3, second tier ~200 ns, DRAM 15-20%
	// faster than HBM).
	DualReadPlateauDRAM units.Nanoseconds
	DualReadPlateauHBM  units.Nanoseconds

	// TLBFullReach is the footprint fully covered by the TLB hierarchy
	// with transparent huge pages; beyond it page walks add latency.
	// Fig. 3 shows latencies rising from ~128 MB.
	TLBFullReach units.Bytes
	// TLBMaxPenalty is the page-walk penalty added at >= 16x the TLB
	// reach (the rise to ~400+ ns at 1 GB in Fig. 3).
	TLBMaxPenalty units.Nanoseconds

	// L2RandomExponent steepens the L2 hit-probability falloff for
	// random accesses beyond the L2 capacity (Fig. 3's sharp 10 ns ->
	// 200 ns transition between 1 MB and 4 MB).
	L2RandomExponent float64

	// Cache-mode (MCDRAM as direct-mapped memory-side cache) stream
	// model, fitted to Fig. 2's Cache Mode curve:
	//   peak 260 GB/s at ~8 GB (half capacity), 125 GB/s at 11.4 GB,
	//   below DRAM (77 GB/s) at 22.8 GB.
	// CacheModeHitBW is the hit-path bandwidth (tag check + data in
	// MCDRAM); CacheModeMissDRAMFactor is the DRAM-traffic
	// amplification of a miss (read + fill + dirty writeback).
	CacheModeHitBW          units.BytesPerNS
	CacheModeMissDRAMFactor float64

	// CacheModeHitRatioAnchors maps working-set/capacity ratio r to
	// the hit ratio h of the direct-mapped MCDRAM cache under
	// streaming reuse, interpolated piecewise-linearly. Fitted to the
	// three Fig. 2 anchor bandwidths listed above.
	CacheModeHitRatioAnchors []HitAnchor

	// CacheModeHitLatency / CacheModeMissLatency: loaded random-read
	// latencies through the memory-side cache, on the same
	// plateau-equivalent scale as DualReadPlateau{DRAM,HBM} (mesh
	// included, TLB excluded). A hit costs roughly the HBM plateau
	// plus the in-MCDRAM tag check; a miss pays the tag check, the
	// DRAM access and the line fill. Together with the TLB ramp these
	// yield Graph500's ~1.3x DRAM-over-cache gap at 35 GB (Fig. 4d).
	CacheModeHitLatency  units.Nanoseconds
	CacheModeMissLatency units.Nanoseconds

	// DGEMM compute-efficiency by hardware threads per core: the
	// fraction of theoretical peak MKL-style blocked DGEMM attains.
	// Fitted to Fig. 4a (~600 GFLOPS at 64 threads) and Fig. 6a
	// (1.7x moving 64 -> 192 threads; 256-thread runs fail).
	DGEMMEff [5]float64

	// ParallelOverheadNS is the per-parallel-region fork/join+imbalance
	// cost (OpenMP-style). It damps performance at the small problem
	// sizes of Fig. 4 (improvement ratios start near 1x).
	ParallelOverheadNS units.Nanoseconds

	// ReductionLatencyNS is the cost of one global reduction (CG dot
	// products, BFS frontier swaps) across 64 cores.
	ReductionLatencyNS units.Nanoseconds
}

// HitAnchor is one point of the cache-mode hit-ratio interpolation.
type HitAnchor struct {
	Ratio float64 // working set / MCDRAM capacity
	Hit   float64 // hit ratio
}

// KNL7210 returns the simulated Archer testbed node used throughout
// the reproduction.
func KNL7210() ChipSpec {
	return ChipSpec{
		Name:           "Intel Xeon Phi 7210 (KNL)",
		Cores:          64,
		ThreadsPerCore: 4,
		ClockGHz:       1.3,
		MeshCols:       6,
		MeshRows:       6,
		ActiveTiles:    32,
		CoresPerTile:   2,
		L1DPerCore:     32 * units.KiB,
		L1Assoc:        8,
		L2PerTile:      1 * units.MiB,
		L2Assoc:        16,

		FlopsPerCycleDP: 32,

		MCDRAM: mem.DeviceSpec{
			Kind:     mem.MCDRAM,
			Capacity: 16 * units.GiB,
			Channels: 8,
			// §IV-A: "154.0 ns latency for HBM".
			IdleLatency: 154.0,
			// §II: "peak bandwidth of ~400 GB/s"; headroom to the
			// ~420-450 GB/s multi-HT STREAM results of Fig. 5.
			PeakBW: units.GBps(450),
			// Fig. 5: "HBM can reach as high as 420 GB/s using more
			// hardware threads"; effective ceiling ~430.
			EffSeqBW: units.GBps(430),
		},
		DDR: mem.DeviceSpec{
			Kind:     mem.DDR,
			Capacity: 96 * units.GiB,
			Channels: 6,
			// §IV-A: "130.4 ns for DRAM".
			IdleLatency: 130.4,
			// §II: "DDR can deliver ~90 GB/s".
			PeakBW: units.GBps(90),
			// Fig. 2: "DRAM achieves a maximum of 77 GB/s".
			EffSeqBW: units.GBps(77),
		},

		Cal: Calibration{
			// Index by threads/core; index 0 unused.
			// ht=1: 12.4 lines/core * 64 cores = 794 => 330 GB/s HBM.
			// ht=2: 15.8 => 1011 lines => ~419 GB/s (1.27x).     Fig. 5
			// ht=3: 15.2, ht=4: 14.6 (slight L1/scheduler contention).
			SeqLinesPerCore: [5]float64{0, 12.4, 15.8, 15.2, 14.6},

			RandomMLPPerThread: 2.0,
			ChaseMLPPerThread:  1.0,

			L2HitLatency:        10, // Fig. 3 first tier "~10 ns"
			DualReadPlateauDRAM: 220,
			DualReadPlateauHBM:  266, // ~21% over DRAM before TLB dilution
			TLBFullReach:        64 * units.MiB,
			TLBMaxPenalty:       170,
			L2RandomExponent:    2.0,

			CacheModeHitBW:          units.GBps(300),
			CacheModeMissDRAMFactor: 1.5,
			CacheModeHitRatioAnchors: []HitAnchor{
				{0.00, 0.99},
				{0.40, 0.97},
				{0.50, 0.85}, // => 260 GB/s at 8 GB    (Fig. 2)
				{0.7125, 0.55},
				{0.73, 0.50}, // => ~125 GB/s at 11.4 GB (Fig. 2)
				{1.00, 0.35},
				{1.425, 0.19}, // => ~70 GB/s < DRAM at 22.8 GB (Fig. 2)
				{2.00, 0.10},
				{3.00, 0.05},
			},
			CacheModeHitLatency:  250,
			CacheModeMissLatency: 340,

			// ht=1: 0.225 * 2662 GFLOPS peak = ~600 GFLOPS (Fig. 4a);
			// ht=3: 0.385 => 1.7x over ht=1 (Fig. 6a). ht=4 runs fail
			// in the paper; the value is kept for the simulator's
			// ablation mode but the harness reports ht=4 as N/A.
			DGEMMEff: [5]float64{0, 0.225, 0.33, 0.385, 0.36},

			ParallelOverheadNS: 20_000, // ~20 us per parallel region
			ReductionLatencyNS: 12_000, // ~12 us per 64-core reduction
		},
	}
}

// Validate checks spec consistency.
func (c ChipSpec) Validate() error {
	if c.Cores <= 0 || c.ThreadsPerCore <= 0 {
		return fmt.Errorf("knl: bad core/thread counts %d/%d", c.Cores, c.ThreadsPerCore)
	}
	if c.ActiveTiles*c.CoresPerTile != c.Cores {
		return fmt.Errorf("knl: tiles*coresPerTile = %d, want %d cores",
			c.ActiveTiles*c.CoresPerTile, c.Cores)
	}
	if c.ActiveTiles > c.MeshCols*c.MeshRows {
		return fmt.Errorf("knl: %d tiles exceed %dx%d mesh", c.ActiveTiles, c.MeshCols, c.MeshRows)
	}
	if err := c.MCDRAM.Validate(); err != nil {
		return err
	}
	if err := c.DDR.Validate(); err != nil {
		return err
	}
	for ht := 1; ht <= c.ThreadsPerCore; ht++ {
		if c.Cal.SeqLinesPerCore[ht] <= 0 {
			return fmt.Errorf("knl: missing sequential concurrency for ht=%d", ht)
		}
		if c.Cal.DGEMMEff[ht] <= 0 || c.Cal.DGEMMEff[ht] > 1 {
			return fmt.Errorf("knl: bad DGEMM efficiency for ht=%d", ht)
		}
	}
	prev := -1.0
	for _, a := range c.Cal.CacheModeHitRatioAnchors {
		if a.Ratio <= prev {
			return fmt.Errorf("knl: cache-mode anchors not strictly increasing at r=%v", a.Ratio)
		}
		if a.Hit < 0 || a.Hit > 1 {
			return fmt.Errorf("knl: cache-mode hit ratio out of range at r=%v", a.Ratio)
		}
		prev = a.Ratio
	}
	return nil
}

// PeakGFLOPS returns the theoretical double-precision peak of the chip
// (64 cores x 32 flops/cycle x 1.3 GHz = 2662.4 GFLOPS for the 7210).
func (c ChipSpec) PeakGFLOPS() float64 {
	return float64(c.Cores*c.FlopsPerCycleDP) * c.ClockGHz
}

// MaxThreads returns the hardware-thread capacity of the node (256).
func (c ChipSpec) MaxThreads() int { return c.Cores * c.ThreadsPerCore }

// ThreadsPerCoreFor returns the hardware threads per core implied by a
// total OpenMP-style thread count, mirroring compact affinity: 64
// threads -> 1 per core, 128 -> 2, 192 -> 3, 256 -> 4. Thread counts
// below the core count leave cores idle (ht=1 on the used cores).
func (c ChipSpec) ThreadsPerCoreFor(threads int) int {
	if threads <= c.Cores {
		return 1
	}
	ht := (threads + c.Cores - 1) / c.Cores
	if ht > c.ThreadsPerCore {
		ht = c.ThreadsPerCore
	}
	return ht
}

// ActiveCoresFor returns how many cores a thread count occupies.
func (c ChipSpec) ActiveCoresFor(threads int) int {
	if threads >= c.Cores {
		return c.Cores
	}
	if threads < 1 {
		return 1
	}
	return threads
}

// SeqConcurrency returns the total outstanding-line concurrency a
// sequential stream sustains at the given total thread count.
func (c ChipSpec) SeqConcurrency(threads int) float64 {
	ht := c.ThreadsPerCoreFor(threads)
	return float64(c.ActiveCoresFor(threads)) * c.Cal.SeqLinesPerCore[ht]
}

// RandomConcurrency returns the total outstanding-line concurrency of
// independent random accesses at the given thread count, with a
// per-thread MLP override (<=0 means the calibrated default).
func (c ChipSpec) RandomConcurrency(threads int, mlpPerThread float64) float64 {
	if mlpPerThread <= 0 {
		mlpPerThread = c.Cal.RandomMLPPerThread
	}
	// Per-core demand concurrency saturates: four threads of a core
	// share miss-handling resources.
	ht := c.ThreadsPerCoreFor(threads)
	cores := c.ActiveCoresFor(threads)
	perCore := float64(ht) * mlpPerThread
	if cap := c.Cal.SeqLinesPerCore[c.ThreadsPerCore] * 1.25; perCore > cap {
		perCore = cap
	}
	return float64(cores) * perCore
}
