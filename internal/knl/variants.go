package knl

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/units"
)

// This file provides the other second-generation Xeon Phi SKUs and a
// generic hybrid-memory preset. The paper argues (§VI) that its
// conclusions "can be generalized to other heterogeneous memory
// systems with similar characteristics"; these presets let the test
// suite check that the model's qualitative results are preserved when
// the machine changes, which is that claim made executable.

// variant derives a chip from the 7210 baseline.
func variant(name string, cores, tiles int, clock float64, mcdramBW, ddrBW float64) ChipSpec {
	c := KNL7210()
	c.Name = name
	c.Cores = cores
	c.ActiveTiles = tiles
	c.ClockGHz = clock
	c.MCDRAM.PeakBW = units.GBps(mcdramBW)
	c.MCDRAM.EffSeqBW = units.GBps(mcdramBW * 430 / 450)
	c.DDR.PeakBW = units.GBps(ddrBW)
	c.DDR.EffSeqBW = units.GBps(ddrBW * 77 / 90)
	return c
}

// KNL7230 returns the 64-core 1.3 GHz SKU with faster DDR4-2400.
func KNL7230() ChipSpec {
	return variant("Intel Xeon Phi 7230 (KNL)", 64, 32, 1.3, 450, 102)
}

// KNL7250 returns the 68-core 1.4 GHz SKU (the Cori/Trinity part).
func KNL7250() ChipSpec {
	return variant("Intel Xeon Phi 7250 (KNL)", 68, 34, 1.4, 450, 102)
}

// KNL7290 returns the 72-core 1.5 GHz flagship.
func KNL7290() ChipSpec {
	return variant("Intel Xeon Phi 7290 (KNL)", 72, 36, 1.5, 450, 102)
}

// GenericHybrid builds a machine with arbitrary fast/slow memory
// characteristics, keeping KNL-like cores. The latency ratio and
// bandwidth ratio are the two quantities the paper's analysis turns
// on; everything else is carried over from the calibrated baseline.
func GenericHybrid(name string, fastCap units.Bytes, fastBW, fastLatNS float64,
	slowCap units.Bytes, slowBW, slowLatNS float64) (ChipSpec, error) {
	if fastCap <= 0 || slowCap <= 0 || fastBW <= 0 || slowBW <= 0 || fastLatNS <= 0 || slowLatNS <= 0 {
		return ChipSpec{}, fmt.Errorf("knl: generic hybrid needs positive parameters")
	}
	if fastBW < slowBW {
		return ChipSpec{}, fmt.Errorf("knl: 'fast' memory (%v GB/s) slower than 'slow' (%v GB/s)", fastBW, slowBW)
	}
	c := KNL7210()
	c.Name = name
	c.MCDRAM = mem.DeviceSpec{
		Kind: mem.MCDRAM, Capacity: fastCap, Channels: 8,
		IdleLatency: units.Nanoseconds(fastLatNS),
		PeakBW:      units.GBps(fastBW), EffSeqBW: units.GBps(fastBW * 0.95),
	}
	c.DDR = mem.DeviceSpec{
		Kind: mem.DDR, Capacity: slowCap, Channels: 6,
		IdleLatency: units.Nanoseconds(slowLatNS),
		PeakBW:      units.GBps(slowBW), EffSeqBW: units.GBps(slowBW * 0.86),
	}
	// Scale the dual-read plateaus with the idle-latency change so the
	// random-access model follows the new devices.
	base := KNL7210()
	c.Cal.DualReadPlateauDRAM = units.Nanoseconds(float64(base.Cal.DualReadPlateauDRAM) * slowLatNS / float64(base.DDR.IdleLatency))
	c.Cal.DualReadPlateauHBM = units.Nanoseconds(float64(base.Cal.DualReadPlateauHBM) * fastLatNS / float64(base.MCDRAM.IdleLatency))
	c.Cal.CacheModeHitLatency = units.Nanoseconds(float64(base.Cal.CacheModeHitLatency) * fastLatNS / float64(base.MCDRAM.IdleLatency))
	c.Cal.CacheModeMissLatency = units.Nanoseconds(float64(base.Cal.CacheModeMissLatency) * slowLatNS / float64(base.DDR.IdleLatency))
	return c, c.Validate()
}

// Variants returns the named SKUs (used by tests and the ablation
// benches).
func Variants() []ChipSpec {
	return []ChipSpec{KNL7210(), KNL7230(), KNL7250(), KNL7290()}
}

// ChipForSKU selects a machine preset by marketing number. The empty
// string means the paper's 7210 testbed.
func ChipForSKU(sku string) (ChipSpec, error) {
	switch sku {
	case "7210", "":
		return KNL7210(), nil
	case "7230":
		return KNL7230(), nil
	case "7250":
		return KNL7250(), nil
	case "7290":
		return KNL7290(), nil
	}
	return ChipSpec{}, fmt.Errorf("knl: unknown SKU %q (7210|7230|7250|7290)", sku)
}
