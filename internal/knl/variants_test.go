package knl

import (
	"testing"

	"repro/internal/units"
)

func TestVariantsAreValid(t *testing.T) {
	for _, c := range Variants() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestVariantFacts(t *testing.T) {
	if c := KNL7250(); c.Cores != 68 || c.MaxThreads() != 272 {
		t.Errorf("7250: %d cores, %d threads", c.Cores, c.MaxThreads())
	}
	if c := KNL7290(); c.Cores != 72 || c.ClockGHz != 1.5 {
		t.Errorf("7290: %d cores at %.1f GHz", c.Cores, c.ClockGHz)
	}
	// The 7230's DDR4-2400 is faster than the 7210's 2133.
	if KNL7230().DDR.PeakBW <= KNL7210().DDR.PeakBW {
		t.Error("7230 DDR should be faster than 7210")
	}
	// Peak flops grow with cores x clock.
	if KNL7290().PeakGFLOPS() <= KNL7210().PeakGFLOPS() {
		t.Error("7290 peak should exceed 7210")
	}
}

func TestGenericHybrid(t *testing.T) {
	// An HBM2+DDR5-like machine: bigger fast memory, lower latencies.
	c, err := GenericHybrid("hbm2-node", 64*units.GiB, 800, 120, 512*units.GiB, 200, 90)
	if err != nil {
		t.Fatal(err)
	}
	if c.MCDRAM.Capacity != 64*units.GiB || c.DDR.Capacity != 512*units.GiB {
		t.Error("capacities not applied")
	}
	// Plateaus scale with the latency change.
	base := KNL7210()
	if c.Cal.DualReadPlateauDRAM >= base.Cal.DualReadPlateauDRAM {
		t.Error("lower slow-memory latency should lower the DRAM plateau")
	}
	if c.Cal.DualReadPlateauHBM >= base.Cal.DualReadPlateauHBM {
		t.Error("lower fast-memory latency should lower the HBM plateau")
	}
}

func TestGenericHybridValidation(t *testing.T) {
	if _, err := GenericHybrid("x", 0, 800, 120, 512*units.GiB, 200, 90); err == nil {
		t.Error("zero fast capacity accepted")
	}
	if _, err := GenericHybrid("x", units.GiB, 100, 120, units.GiB, 200, 90); err == nil {
		t.Error("fast memory slower than slow memory accepted")
	}
	if _, err := GenericHybrid("x", units.GiB, 800, -1, units.GiB, 200, 90); err == nil {
		t.Error("negative latency accepted")
	}
}
