// Package cluster models the multi-node dimension of the paper's
// testbed: "a cluster of 12 KNL-based compute nodes ... connected via
// Cray's proprietary Aries interconnect" (§III-A), and makes the
// §IV-C decomposition argument executable: with enough nodes, the
// optimal setup assigns each node a sub-problem close to the HBM
// capacity.
//
// The model is deliberately simple — bulk-synchronous iterations with
// per-iteration halo exchange and allreduce costs on an Aries-like
// interconnect — because the paper's multi-node content is a sizing
// argument, not a network study.
package cluster

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/units"
	"repro/internal/workload"
)

// Interconnect describes the network between nodes.
type Interconnect struct {
	Name string
	// LatencyNS is the one-way small-message latency.
	LatencyNS float64
	// BandwidthGBs is the per-node injection bandwidth.
	BandwidthGBs float64
}

// Aries returns a Cray Aries-like interconnect (the testbed's).
func Aries() Interconnect {
	return Interconnect{Name: "Cray Aries", LatencyNS: 1300, BandwidthGBs: 10}
}

// Validate checks the interconnect parameters.
func (ic Interconnect) Validate() error {
	if ic.LatencyNS <= 0 || ic.BandwidthGBs <= 0 {
		return fmt.Errorf("cluster: interconnect %q needs positive latency/bandwidth", ic.Name)
	}
	return nil
}

// Cluster is a set of identical KNL nodes.
type Cluster struct {
	Node    *engine.Machine
	Nodes   int
	Network Interconnect
}

// New builds a cluster.
func New(node *engine.Machine, nodes int, network Interconnect) (*Cluster, error) {
	if node == nil {
		return nil, fmt.Errorf("cluster: nil node machine")
	}
	if nodes <= 0 {
		return nil, fmt.Errorf("cluster: node count %d must be positive", nodes)
	}
	if err := network.Validate(); err != nil {
		return nil, err
	}
	return &Cluster{Node: node, Nodes: nodes, Network: network}, nil
}

// Decomposition describes how a global problem splits across nodes.
type Decomposition struct {
	GlobalSize  units.Bytes
	PerNodeSize units.Bytes
	Nodes       int
	// SurfaceFraction is the halo-to-volume ratio of the per-node
	// sub-domain (3D block decomposition: ~6/edge).
	SurfaceFraction float64
}

// Decompose splits a global problem over the cluster's nodes with a
// 3D block decomposition.
func (c *Cluster) Decompose(global units.Bytes) (Decomposition, error) {
	if global <= 0 {
		return Decomposition{}, fmt.Errorf("cluster: global size must be positive")
	}
	per := global / units.Bytes(c.Nodes)
	if per == 0 {
		return Decomposition{}, fmt.Errorf("cluster: %v over %d nodes leaves empty sub-problems", global, c.Nodes)
	}
	// Cubic sub-domain: halo bytes ~ 6 * volume^(2/3) * cell size^(1/3).
	edge := math.Cbrt(float64(per))
	surface := 6 * edge * edge
	return Decomposition{
		GlobalSize:      global,
		PerNodeSize:     per,
		Nodes:           c.Nodes,
		SurfaceFraction: math.Min(1, surface/float64(per)),
	}, nil
}

// IterationResult is the predicted per-iteration cost of a
// bulk-synchronous workload on the cluster.
type IterationResult struct {
	ComputeNS  float64
	HaloNS     float64
	ReduceNS   float64
	TotalNS    float64
	Config     engine.MemoryConfig
	Efficiency float64 // parallel efficiency vs single node with the global problem
}

// Iterate is the service-facing name of PredictIterations: one
// bulk-synchronous iteration of the global problem on this cluster.
// The HTTP /v1/cluster answer is pinned by test to match an
// in-process New(...).Iterate run exactly.
func (c *Cluster) Iterate(mdl workload.Model, global units.Bytes, threads int) (IterationResult, error) {
	return c.PredictIterations(mdl, global, threads)
}

// PredictIterations predicts the per-iteration time of a
// MiniFE-like bulk-synchronous workload (one model evaluation per
// iteration plus halo exchange and one allreduce), choosing the best
// per-node memory configuration automatically.
func (c *Cluster) PredictIterations(mdl workload.Model, global units.Bytes, threads int) (IterationResult, error) {
	dec, err := c.Decompose(global)
	if err != nil {
		return IterationResult{}, err
	}

	best := IterationResult{TotalNS: math.Inf(1)}
	for _, cfg := range engine.PaperConfigs() {
		rate, err := mdl.Predict(c.Node, cfg, dec.PerNodeSize, threads)
		if err != nil || rate <= 0 {
			continue
		}
		// The model's metric is work/second; per-iteration compute
		// time scales as sub-problem size / rate. Use a normalized
		// proxy: ns per byte of sub-problem per unit metric.
		computeNS := float64(dec.PerNodeSize) / rate * 1e3 // model-relative units
		haloBytes := dec.SurfaceFraction * float64(dec.PerNodeSize) * 0.05
		haloNS := c.Network.LatencyNS*6 + haloBytes/c.Network.BandwidthGBs
		reduceNS := c.Network.LatencyNS * 2 * math.Ceil(math.Log2(float64(c.Nodes)))
		total := computeNS + haloNS + reduceNS
		if total < best.TotalNS {
			best = IterationResult{
				ComputeNS: computeNS, HaloNS: haloNS, ReduceNS: reduceNS,
				TotalNS: total, Config: cfg,
			}
		}
	}
	if math.IsInf(best.TotalNS, 1) {
		return IterationResult{}, fmt.Errorf("cluster: no configuration can run %v per node", dec.PerNodeSize)
	}

	// Parallel efficiency vs the single-node run of the global
	// problem under ITS best configuration.
	single := math.Inf(1)
	for _, cfg := range engine.PaperConfigs() {
		rate, err := mdl.Predict(c.Node, cfg, global, threads)
		if err != nil || rate <= 0 {
			continue
		}
		t := float64(global) / rate * 1e3
		if t < single {
			single = t
		}
	}
	if !math.IsInf(single, 1) {
		ideal := single / float64(c.Nodes)
		best.Efficiency = ideal / best.TotalNS
	}
	return best, nil
}

// SweetSpot returns the smallest node count at which the per-node
// sub-problem (plus a working-set factor) fits the HBM capacity —
// the §IV-C decomposition rule.
func (c *Cluster) SweetSpot(global units.Bytes, workingSetFactor float64) (int, error) {
	if global <= 0 {
		return 0, fmt.Errorf("cluster: global size must be positive")
	}
	if workingSetFactor < 1 {
		workingSetFactor = 1
	}
	hbm := c.Node.Chip.MCDRAM.Capacity
	need := units.Bytes(float64(global) * workingSetFactor)
	nodes := int((need + hbm - 1) / hbm)
	if nodes < 1 {
		nodes = 1
	}
	return nodes, nil
}

// StrongScaling sweeps node counts for a workload and returns the
// per-node-count iteration predictions (the multi-node planning table
// of examples/capacity, with network effects included).
func StrongScaling(node *engine.Machine, network Interconnect, mdl workload.Model, global units.Bytes, threads int, nodeCounts []int) (map[int]IterationResult, error) {
	out := make(map[int]IterationResult, len(nodeCounts))
	for _, n := range nodeCounts {
		c, err := New(node, n, network)
		if err != nil {
			return nil, err
		}
		r, err := c.PredictIterations(mdl, global, threads)
		if err != nil {
			continue // some decompositions may not fit anywhere
		}
		out[n] = r
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: no node count could run the problem")
	}
	return out, nil
}
