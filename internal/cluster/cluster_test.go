package cluster

import (
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/units"
	"repro/internal/workloads/minife"
)

func testCluster(t *testing.T, nodes int) *Cluster {
	t.Helper()
	c, err := New(engine.Default(), nodes, Aries())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 4, Aries()); err == nil {
		t.Error("nil node accepted")
	}
	if _, err := New(engine.Default(), 0, Aries()); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := New(engine.Default(), 4, Interconnect{}); err == nil {
		t.Error("invalid interconnect accepted")
	}
	if Aries().Name != "Cray Aries" {
		t.Error("testbed interconnect name")
	}
}

func TestDecompose(t *testing.T) {
	c := testCluster(t, 12)
	dec, err := c.Decompose(units.GB(120))
	if err != nil {
		t.Fatal(err)
	}
	if dec.PerNodeSize != units.GB(10) {
		t.Errorf("per-node = %v, want 10 GB", dec.PerNodeSize)
	}
	if dec.SurfaceFraction <= 0 || dec.SurfaceFraction >= 1 {
		t.Errorf("surface fraction = %v", dec.SurfaceFraction)
	}
	// Smaller sub-domains have relatively more surface.
	c2 := testCluster(t, 96)
	dec2, _ := c2.Decompose(units.GB(120))
	if dec2.SurfaceFraction <= dec.SurfaceFraction {
		t.Error("surface-to-volume should grow as sub-domains shrink")
	}
	if _, err := c.Decompose(0); err == nil {
		t.Error("zero global size accepted")
	}
}

func TestSweetSpotMatchesPaperRule(t *testing.T) {
	c := testCluster(t, 12)
	// 120 GB problem, 1.1x working-set factor: need ceil(132/16) = 9.
	n, err := c.SweetSpot(units.GB(120), 1.1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Errorf("sweet spot = %d nodes, want 9", n)
	}
	// A problem fitting one node's HBM needs one node.
	if n, _ := c.SweetSpot(units.GB(10), 1); n != 1 {
		t.Errorf("small problem sweet spot = %d", n)
	}
	if _, err := c.SweetSpot(0, 1); err == nil {
		t.Error("zero size accepted")
	}
}

func TestPredictIterationsPrefersHBMWhenFits(t *testing.T) {
	mdl := minife.Model{}
	// 12 nodes x 10 GB/node: fits HBM; the chosen config must be HBM.
	c := testCluster(t, 12)
	r, err := c.PredictIterations(mdl, units.GB(120), 64)
	if err != nil {
		t.Fatal(err)
	}
	if r.Config.Kind != engine.BindHBM {
		t.Errorf("12 nodes: config = %v, want HBM", r.Config)
	}
	// 2 nodes x 60 GB/node: cannot be HBM.
	c2 := testCluster(t, 2)
	r2, err := c2.PredictIterations(mdl, units.GB(120), 64)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Config.Kind == engine.BindHBM {
		t.Error("60 GB per node cannot bind to HBM")
	}
	// The HBM decomposition runs faster per iteration.
	if r.TotalNS >= r2.TotalNS {
		t.Errorf("12-node iteration (%v ns) should beat 2-node (%v ns)", r.TotalNS, r2.TotalNS)
	}
}

func TestPredictIterationsEfficiency(t *testing.T) {
	mdl := minife.Model{}
	c := testCluster(t, 4)
	r, err := c.PredictIterations(mdl, units.GB(40), 64)
	if err != nil {
		t.Fatal(err)
	}
	if r.Efficiency <= 0 {
		t.Fatalf("efficiency = %v", r.Efficiency)
	}
	// Network costs are accounted.
	if r.HaloNS <= 0 || r.ReduceNS <= 0 {
		t.Error("network terms missing")
	}
	if math.Abs(r.TotalNS-(r.ComputeNS+r.HaloNS+r.ReduceNS)) > 1 {
		t.Error("total is not the sum of parts")
	}
}

func TestStrongScalingShowsHBMSweetSpot(t *testing.T) {
	mdl := minife.Model{}
	results, err := StrongScaling(engine.Default(), Aries(), mdl, units.GB(120), 64,
		[]int{2, 4, 8, 12, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 4 {
		t.Fatalf("only %d node counts ran", len(results))
	}
	// Once sub-problems fit HBM (>= 9 nodes with vectors), iteration
	// time keeps dropping and the config switches to HBM.
	if r, ok := results[12]; !ok || r.Config.Kind != engine.BindHBM {
		t.Errorf("12-node config = %+v, want HBM", results[12])
	}
	if r2, r12 := results[2], results[12]; r2.TotalNS <= r12.TotalNS {
		t.Error("scaling should reduce iteration time")
	}
}

// TestIterateIsPredictIterations pins the service-facing alias: the
// HTTP equivalence tests compare against Iterate, so it must be the
// same computation.
func TestIterateIsPredictIterations(t *testing.T) {
	mdl := minife.Model{}
	c := testCluster(t, 12)
	a, err := c.Iterate(mdl, units.GB(120), 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.PredictIterations(mdl, units.GB(120), 64)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("Iterate %+v != PredictIterations %+v", a, b)
	}
}

func TestStrongScalingErrors(t *testing.T) {
	mdl := minife.Model{}
	if _, err := StrongScaling(engine.Default(), Aries(), mdl, units.GB(120), 64, []int{0}); err == nil {
		t.Error("invalid node count list accepted")
	}
}
