// Package memkind reimplements the core of the memkind heap manager
// (Cantalupo et al., the library the paper cites for fine-grained data
// placement in flat mode) on top of the simulated physical memory.
//
// A Heap owns one arena per kind. Kinds map to numactl policies over
// the flat-mode topology:
//
//	Default       -> membind to the DDR node (node 0)
//	HBW           -> membind to the MCDRAM node (node 1); fails if full
//	HBWPreferred  -> prefer MCDRAM, spill to DDR
//	HBWInterleave -> interleave across MCDRAM only (matches memkind)
//	Interleave    -> interleave across all nodes
//
// Small allocations are served from power-of-two size classes inside
// 4 MiB arena chunks; big allocations get dedicated regions. The
// allocator never hands out overlapping blocks and tracks usable size,
// mirroring hbw_malloc_usable_size.
package memkind

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/alloc"
	"repro/internal/numa"
	"repro/internal/units"
)

// Kind selects the memory properties of an allocation.
type Kind int

// The supported kinds, matching memkind's MEMKIND_* constants.
const (
	Default Kind = iota
	HBW
	HBWPreferred
	HBWInterleave
	Interleave
	numKinds
)

// String names the kind like the C library's constants.
func (k Kind) String() string {
	switch k {
	case Default:
		return "MEMKIND_DEFAULT"
	case HBW:
		return "MEMKIND_HBW"
	case HBWPreferred:
		return "MEMKIND_HBW_PREFERRED"
	case HBWInterleave:
		return "MEMKIND_HBW_INTERLEAVE"
	case Interleave:
		return "MEMKIND_INTERLEAVE"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ErrHBWUnavailable is returned by HBW allocations when no MCDRAM node
// exists (cache mode) — the analogue of hbw_check_available() != 0.
var ErrHBWUnavailable = errors.New("memkind: no high-bandwidth memory node available")

const (
	chunkSize    = 4 * units.MiB
	minClass     = 64 // one cache line
	bigThreshold = chunkSize / 2
)

// block is one live allocation.
type block struct {
	addr   uint64      // address handed to the caller (aligned)
	slot   uint64      // carve base owned by the allocator
	size   units.Bytes // requested
	usable units.Bytes // size class or region size minus alignment skew
	class  int         // -1 for big blocks
	kind   Kind
	region *alloc.Region // dedicated region for big blocks, else nil
}

// arena serves one kind.
type arena struct {
	kind    Kind
	policy  numa.Policy
	chunks  []*alloc.Region
	cursor  units.Bytes // bump offset in the newest chunk
	freeLs  map[int][]uint64
	aspace  *alloc.AddressSpace
	hbwNode bool // requires node 1 to exist
}

// Heap is a memkind-style heap over a simulated address space.
type Heap struct {
	space  *alloc.AddressSpace
	arenas [numKinds]*arena
	live   map[uint64]*block
	stats  Stats
}

// Stats aggregates heap activity.
type Stats struct {
	Allocs, Frees  int64
	LiveBytes      units.Bytes
	PeakLiveBytes  units.Bytes
	BytesRequested units.Bytes
}

// NewHeap builds a heap over the address space. The topology decides
// which kinds are available: without a node 1, HBW kinds return
// ErrHBWUnavailable just like hbw_malloc on a cache-mode machine.
func NewHeap(space *alloc.AddressSpace) *Heap {
	h := &Heap{space: space, live: make(map[uint64]*block)}
	topo := space.Topology()
	hbwExists := false
	for _, n := range topo.Nodes {
		if n.ID == 1 {
			hbwExists = true
		}
	}
	mk := func(k Kind, p numa.Policy, needHBW bool) *arena {
		return &arena{kind: k, policy: p, freeLs: make(map[int][]uint64), aspace: space, hbwNode: needHBW && !hbwExists}
	}
	h.arenas[Default] = mk(Default, numa.Bind(0), false)
	h.arenas[HBW] = mk(HBW, numa.Bind(1), true)
	h.arenas[HBWPreferred] = mk(HBWPreferred, numa.Prefer(1), true)
	h.arenas[HBWInterleave] = mk(HBWInterleave, numa.InterleaveAll(1), true)
	allNodes := make([]numa.NodeID, 0, len(topo.Nodes))
	for _, n := range topo.Nodes {
		allNodes = append(allNodes, n.ID)
	}
	h.arenas[Interleave] = mk(Interleave, numa.InterleaveAll(allNodes...), false)
	return h
}

// HBWAvailable reports whether high-bandwidth memory is allocatable,
// the analogue of hbw_check_available() == 0.
func (h *Heap) HBWAvailable() bool { return !h.arenas[HBW].hbwNode }

// sizeClass returns the class index and rounded size for a request.
func sizeClass(size units.Bytes) (int, units.Bytes) {
	c := 0
	s := units.Bytes(minClass)
	for s < size {
		s *= 2
		c++
	}
	return c, s
}

// Malloc allocates size bytes of the given kind and returns the
// simulated virtual address.
func (h *Heap) Malloc(kind Kind, size units.Bytes) (uint64, error) {
	if kind < 0 || kind >= numKinds {
		return 0, fmt.Errorf("memkind: unknown kind %d", int(kind))
	}
	if size <= 0 {
		return 0, fmt.Errorf("memkind: non-positive size %v", size)
	}
	a := h.arenas[kind]
	if a.hbwNode {
		return 0, ErrHBWUnavailable
	}
	var b *block
	if size > bigThreshold {
		r, err := h.space.Alloc(size, a.policy, kind.String())
		if err != nil {
			return 0, err
		}
		b = &block{addr: r.Base, slot: r.Base, size: size, usable: units.Bytes(r.Size.Pages()) * units.Page, class: -1, kind: kind, region: r}
	} else {
		class, rounded := sizeClass(size)
		if fl := a.freeLs[class]; len(fl) > 0 {
			addr := fl[len(fl)-1]
			a.freeLs[class] = fl[:len(fl)-1]
			b = &block{addr: addr, slot: addr, size: size, usable: rounded, class: class, kind: kind}
		} else {
			addr, err := a.carve(rounded)
			if err != nil {
				return 0, err
			}
			b = &block{addr: addr, slot: addr, size: size, usable: rounded, class: class, kind: kind}
		}
	}
	h.live[b.addr] = b
	h.stats.Allocs++
	h.stats.BytesRequested += size
	h.stats.LiveBytes += b.usable
	if h.stats.LiveBytes > h.stats.PeakLiveBytes {
		h.stats.PeakLiveBytes = h.stats.LiveBytes
	}
	return b.addr, nil
}

// carve bump-allocates rounded bytes from the arena's newest chunk,
// growing the arena when needed.
func (a *arena) carve(rounded units.Bytes) (uint64, error) {
	if len(a.chunks) == 0 || a.cursor+rounded > chunkSize {
		r, err := a.aspace.Alloc(chunkSize, a.policy, a.kind.String()+"/chunk")
		if err != nil {
			return 0, err
		}
		a.chunks = append(a.chunks, r)
		a.cursor = 0
	}
	chunk := a.chunks[len(a.chunks)-1]
	addr := chunk.Base + uint64(a.cursor)
	a.cursor += rounded
	return addr, nil
}

// Calloc allocates n*size bytes (both must be positive).
func (h *Heap) Calloc(kind Kind, n, size units.Bytes) (uint64, error) {
	if n <= 0 || size <= 0 {
		return 0, fmt.Errorf("memkind: bad calloc %d x %d", n, size)
	}
	return h.Malloc(kind, n*size)
}

// Free releases an allocation.
func (h *Heap) Free(addr uint64) error {
	b, ok := h.live[addr]
	if !ok {
		return fmt.Errorf("memkind: free of unknown address %#x", addr)
	}
	delete(h.live, addr)
	h.stats.Frees++
	h.stats.LiveBytes -= b.usable
	if b.region != nil {
		return h.space.Free(b.region)
	}
	a := h.arenas[b.kind]
	a.freeLs[b.class] = append(a.freeLs[b.class], b.slot)
	return nil
}

// UsableSize reports the usable size of a live allocation, the
// analogue of hbw_malloc_usable_size.
func (h *Heap) UsableSize(addr uint64) (units.Bytes, error) {
	b, ok := h.live[addr]
	if !ok {
		return 0, fmt.Errorf("memkind: unknown address %#x", addr)
	}
	return b.usable, nil
}

// KindOf reports the kind of a live allocation.
func (h *Heap) KindOf(addr uint64) (Kind, error) {
	b, ok := h.live[addr]
	if !ok {
		return 0, fmt.Errorf("memkind: unknown address %#x", addr)
	}
	return b.kind, nil
}

// Stats returns a copy of the heap statistics.
func (h *Heap) Stats() Stats { return h.stats }

// LiveBlocks returns the number of live allocations.
func (h *Heap) LiveBlocks() int { return len(h.live) }

// NodeFootprint returns bytes resident per node for one big-block
// allocation, or an approximation via the arena policy for small
// blocks (small blocks share chunks).
func (h *Heap) NodeFootprint(addr uint64) (map[numa.NodeID]units.Bytes, error) {
	b, ok := h.live[addr]
	if !ok {
		return nil, fmt.Errorf("memkind: unknown address %#x", addr)
	}
	if b.region != nil {
		return h.space.NodeBytes(b.region), nil
	}
	// Small block: attribute its usable size to the chunk's placement
	// proportionally.
	a := h.arenas[b.kind]
	for _, chunk := range a.chunks {
		if addr >= chunk.Base && addr < chunk.End() {
			nb := h.space.NodeBytes(chunk)
			out := make(map[numa.NodeID]units.Bytes)
			total := units.Bytes(0)
			ids := make([]numa.NodeID, 0, len(nb))
			for id, v := range nb {
				total += v
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			for _, id := range ids {
				out[id] = units.Bytes(float64(b.usable) * float64(nb[id]) / float64(total))
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("memkind: block %#x not inside any chunk", addr)
}
