package memkind

import (
	"testing"

	"repro/internal/numa"
	"repro/internal/units"
)

func TestPosixMemalign(t *testing.T) {
	h := heapFor(t, numa.FlatMode)
	for _, align := range []units.Bytes{8, 64, 4096, 2 * units.MiB} {
		addr, err := h.PosixMemalign(HBW, align, 1000)
		if err != nil {
			t.Fatalf("align %d: %v", align, err)
		}
		if addr%uint64(align) != 0 {
			t.Errorf("address %#x not %d-aligned", addr, align)
		}
		if err := h.Free(addr); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.PosixMemalign(Default, 12, 100); err == nil {
		t.Error("non-power-of-two alignment accepted")
	}
	if _, err := h.PosixMemalign(Default, 4, 100); err == nil {
		t.Error("alignment < 8 accepted")
	}
	if _, err := h.PosixMemalign(Default, 64, 0); err == nil {
		t.Error("zero size accepted")
	}
}

func TestReallocInPlace(t *testing.T) {
	h := heapFor(t, numa.FlatMode)
	a, err := h.Malloc(Default, 100) // usable 128
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Realloc(a, 120) // still fits the class
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Errorf("in-place realloc moved %#x -> %#x", a, b)
	}
}

func TestReallocMoves(t *testing.T) {
	h := heapFor(t, numa.FlatMode)
	a, err := h.Malloc(HBWPreferred, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Realloc(a, units.MB(1))
	if err != nil {
		t.Fatal(err)
	}
	if b == a {
		t.Error("growing realloc should have moved")
	}
	// Kind preserved.
	k, err := h.KindOf(b)
	if err != nil || k != HBWPreferred {
		t.Errorf("kind after realloc = %v, %v", k, err)
	}
	// Old address is gone.
	if _, err := h.UsableSize(a); err == nil {
		t.Error("old address still live after moving realloc")
	}
}

func TestReallocErrors(t *testing.T) {
	h := heapFor(t, numa.FlatMode)
	if _, err := h.Realloc(0xbad, 100); err == nil {
		t.Error("realloc of unknown address accepted")
	}
	a, _ := h.Malloc(Default, 64)
	if _, err := h.Realloc(a, 0); err == nil {
		t.Error("zero-size realloc accepted")
	}
}

func TestAvailableHBW(t *testing.T) {
	h := heapFor(t, numa.FlatMode)
	before := h.AvailableHBW()
	if before != 16*units.GiB {
		t.Fatalf("initial HBW = %v", before)
	}
	a, err := h.Malloc(HBW, units.GB(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := h.AvailableHBW(); got != 12*units.GiB {
		t.Errorf("after 4 GiB alloc: %v", got)
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if h.AvailableHBW() != before {
		t.Error("free did not restore HBW capacity")
	}
	// Cache mode has none.
	if heapFor(t, numa.CacheMode).AvailableHBW() != 0 {
		t.Error("cache mode should report zero HBW")
	}
}
