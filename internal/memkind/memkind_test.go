package memkind

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/alloc"
	"repro/internal/knl"
	"repro/internal/numa"
	"repro/internal/units"
)

func heapFor(t *testing.T, mode numa.MemMode) *Heap {
	t.Helper()
	c := knl.KNL7210()
	topo, err := numa.NewTopology(c.DDR, c.MCDRAM, mode, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return NewHeap(alloc.NewAddressSpace(topo))
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		Default:       "MEMKIND_DEFAULT",
		HBW:           "MEMKIND_HBW",
		HBWPreferred:  "MEMKIND_HBW_PREFERRED",
		HBWInterleave: "MEMKIND_HBW_INTERLEAVE",
		Interleave:    "MEMKIND_INTERLEAVE",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if Kind(42).String() != "Kind(42)" {
		t.Error("unknown kind formatting")
	}
}

func TestHBWAvailability(t *testing.T) {
	flat := heapFor(t, numa.FlatMode)
	if !flat.HBWAvailable() {
		t.Fatal("flat mode should expose HBW")
	}
	cache := heapFor(t, numa.CacheMode)
	if cache.HBWAvailable() {
		t.Fatal("cache mode must not expose HBW")
	}
	if _, err := cache.Malloc(HBW, units.MB(1)); !errors.Is(err, ErrHBWUnavailable) {
		t.Fatalf("hbw malloc in cache mode: %v", err)
	}
	// Default still works in cache mode.
	if _, err := cache.Malloc(Default, units.MB(1)); err != nil {
		t.Fatalf("default malloc in cache mode: %v", err)
	}
}

func TestMallocPlacement(t *testing.T) {
	h := heapFor(t, numa.FlatMode)
	// Big HBW allocation lands entirely on node 1.
	addr, err := h.Malloc(HBW, units.GB(1))
	if err != nil {
		t.Fatal(err)
	}
	fp, err := h.NodeFootprint(addr)
	if err != nil {
		t.Fatal(err)
	}
	if fp[0] != 0 || fp[1] < units.GB(1) {
		t.Fatalf("HBW footprint = %v", fp)
	}
	// Default lands on node 0.
	addr2, err := h.Malloc(Default, units.GB(1))
	if err != nil {
		t.Fatal(err)
	}
	fp2, _ := h.NodeFootprint(addr2)
	if fp2[1] != 0 || fp2[0] < units.GB(1) {
		t.Fatalf("Default footprint = %v", fp2)
	}
	// Interleave splits about evenly.
	addr3, err := h.Malloc(Interleave, units.GB(1))
	if err != nil {
		t.Fatal(err)
	}
	fp3, _ := h.NodeFootprint(addr3)
	if fp3[0] != fp3[1] {
		t.Fatalf("Interleave footprint = %v", fp3)
	}
}

func TestHBWExhaustionAndPreferred(t *testing.T) {
	h := heapFor(t, numa.FlatMode)
	// Fill MCDRAM (16 GiB).
	if _, err := h.Malloc(HBW, 16*units.GiB); err != nil {
		t.Fatal(err)
	}
	// Strict HBW now fails.
	if _, err := h.Malloc(HBW, units.GB(1)); !errors.Is(err, alloc.ErrOutOfMemory) {
		t.Fatalf("expected OOM on exhausted HBW, got %v", err)
	}
	// Preferred falls back to DDR.
	addr, err := h.Malloc(HBWPreferred, units.GB(1))
	if err != nil {
		t.Fatal(err)
	}
	fp, _ := h.NodeFootprint(addr)
	if fp[0] < units.GB(1) {
		t.Fatalf("preferred fallback footprint = %v", fp)
	}
}

func TestSmallAllocationReuse(t *testing.T) {
	h := heapFor(t, numa.FlatMode)
	a, err := h.Malloc(Default, 100)
	if err != nil {
		t.Fatal(err)
	}
	us, err := h.UsableSize(a)
	if err != nil {
		t.Fatal(err)
	}
	if us != 128 {
		t.Fatalf("usable size of 100 B = %v, want 128 (size class)", us)
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	b, err := h.Malloc(Default, 128)
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Fatalf("free list not reused: %#x vs %#x", b, a)
	}
	if h.LiveBlocks() != 1 {
		t.Fatalf("LiveBlocks = %d", h.LiveBlocks())
	}
}

func TestFreeErrors(t *testing.T) {
	h := heapFor(t, numa.FlatMode)
	if err := h.Free(0xdead); err == nil {
		t.Error("free of unknown address accepted")
	}
	a, _ := h.Malloc(Default, 64)
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a); err == nil {
		t.Error("double free accepted")
	}
	if _, err := h.UsableSize(a); err == nil {
		t.Error("usable size of freed block accepted")
	}
	if _, err := h.KindOf(a); err == nil {
		t.Error("kind of freed block accepted")
	}
	if _, err := h.NodeFootprint(a); err == nil {
		t.Error("footprint of freed block accepted")
	}
}

func TestMallocRejectsBadArgs(t *testing.T) {
	h := heapFor(t, numa.FlatMode)
	if _, err := h.Malloc(Default, 0); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := h.Malloc(Kind(99), 64); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := h.Calloc(Default, 0, 8); err == nil {
		t.Error("zero count calloc accepted")
	}
	if _, err := h.Calloc(Default, 8, 8); err != nil {
		t.Error("valid calloc rejected")
	}
}

func TestKindOf(t *testing.T) {
	h := heapFor(t, numa.FlatMode)
	a, _ := h.Malloc(HBWPreferred, units.MB(1))
	k, err := h.KindOf(a)
	if err != nil || k != HBWPreferred {
		t.Fatalf("KindOf = %v, %v", k, err)
	}
}

func TestStats(t *testing.T) {
	h := heapFor(t, numa.FlatMode)
	a, _ := h.Malloc(Default, units.MB(1))
	b, _ := h.Malloc(Default, units.MB(2))
	st := h.Stats()
	if st.Allocs != 2 || st.Frees != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesRequested != units.MB(3) {
		t.Fatalf("requested = %v", st.BytesRequested)
	}
	if st.LiveBytes < units.MB(3) {
		t.Fatalf("live = %v", st.LiveBytes)
	}
	peak := st.LiveBytes
	_ = h.Free(a)
	_ = h.Free(b)
	st = h.Stats()
	if st.LiveBytes != 0 || st.PeakLiveBytes != peak || st.Frees != 2 {
		t.Fatalf("after frees: %+v", st)
	}
}

func TestNoOverlapProperty(t *testing.T) {
	h := heapFor(t, numa.FlatMode)
	type span struct{ lo, hi uint64 }
	var spans []span
	f := func(raw uint16) bool {
		size := units.Bytes(raw%8192 + 1)
		addr, err := h.Malloc(Default, size)
		if err != nil {
			return false
		}
		us, _ := h.UsableSize(addr)
		s := span{addr, addr + uint64(us)}
		for _, o := range spans {
			if s.lo < o.hi && o.lo < s.hi {
				return false // overlap
			}
		}
		spans = append(spans, s)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSizeClassProperty(t *testing.T) {
	f := func(raw uint32) bool {
		size := units.Bytes(raw%uint32(bigThreshold) + 1)
		_, rounded := sizeClass(size)
		return rounded >= size && rounded < 2*size+minClass && rounded%minClass == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
