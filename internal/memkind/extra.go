package memkind

import (
	"fmt"

	"repro/internal/units"
)

// PosixMemalign allocates size bytes aligned to `alignment` (a power
// of two >= 8), the analogue of hbw_posix_memalign. Alignment beyond
// the size-class granularity is implemented by over-allocating and
// returning the aligned offset; the returned address must still be
// freed with Free.
func (h *Heap) PosixMemalign(kind Kind, alignment, size units.Bytes) (uint64, error) {
	if alignment < 8 || alignment&(alignment-1) != 0 {
		return 0, fmt.Errorf("memkind: alignment %d must be a power of two >= 8", alignment)
	}
	if size <= 0 {
		return 0, fmt.Errorf("memkind: non-positive size %v", size)
	}
	// Over-allocate so an aligned address always exists inside the
	// block, then shift the caller-visible address. The allocator
	// keeps owning the original slot (block.slot) so Free and the
	// free lists stay consistent.
	addr, err := h.Malloc(kind, size+alignment)
	if err != nil {
		return 0, err
	}
	aligned := (addr + uint64(alignment) - 1) &^ (uint64(alignment) - 1)
	if aligned != addr {
		b := h.live[addr]
		delete(h.live, addr)
		skew := units.Bytes(aligned - addr)
		b.addr = aligned
		b.usable -= skew
		h.live[aligned] = b
	}
	return aligned, nil
}

// Realloc grows or shrinks a live allocation, preserving its kind.
// Like C realloc it may move the block; the (simulated) contents are
// not modelled, so only the size bookkeeping transfers.
func (h *Heap) Realloc(addr uint64, size units.Bytes) (uint64, error) {
	b, ok := h.live[addr]
	if !ok {
		return 0, fmt.Errorf("memkind: realloc of unknown address %#x", addr)
	}
	if size <= 0 {
		return 0, fmt.Errorf("memkind: non-positive realloc size %v", size)
	}
	if size <= b.usable {
		// Fits in place; update the requested size.
		h.stats.BytesRequested += size - b.size
		b.size = size
		return addr, nil
	}
	kind := b.kind
	if err := h.Free(addr); err != nil {
		return 0, err
	}
	return h.Malloc(kind, size)
}

// AvailableHBW reports the free bytes on the HBW node (0 in cache
// mode), the planning figure hbw users poll before large allocations.
func (h *Heap) AvailableHBW() units.Bytes {
	if !h.HBWAvailable() {
		return 0
	}
	return h.space.FreeBytes(1)
}
