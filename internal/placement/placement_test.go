package placement

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/units"
)

func opt(t *testing.T) *Optimizer {
	t.Helper()
	return &Optimizer{Machine: engine.Default(), Threads: 64}
}

// miniFEStructures is a MiniFE-like decomposition: the bandwidth-
// hungry matrix, the hot vectors, and cold bookkeeping.
func miniFEStructures() []Structure {
	return []Structure{
		{Name: "csr-matrix", Footprint: units.GB(10), SeqBytes: 100e9},
		{Name: "cg-vectors", Footprint: units.GB(2), SeqBytes: 40e9},
		{Name: "mesh-metadata", Footprint: units.GB(8), SeqBytes: 1e9},
		{Name: "io-buffers", Footprint: units.GB(20), SeqBytes: 0.5e9},
	}
}

func TestOptimizePicksBandwidthHungryStructures(t *testing.T) {
	plan, err := opt(t).Optimize(miniFEStructures())
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Assignment["csr-matrix"] || !plan.Assignment["cg-vectors"] {
		t.Errorf("hot structures not placed in HBM: %v", plan.Assignment)
	}
	if plan.Assignment["io-buffers"] {
		t.Error("cold 20 GB structure cannot be in 16 GB HBM")
	}
	if plan.HBMUsed > 16*units.GiB {
		t.Errorf("HBM overcommitted: %v", plan.HBMUsed)
	}
	if plan.SpeedupVsDRAM < 2 {
		t.Errorf("speedup = %.2f, expected >2x for a bandwidth-bound mix", plan.SpeedupVsDRAM)
	}
	if !strings.Contains(plan.String(), "MEMKIND_HBW") {
		t.Error("plan rendering missing kinds")
	}
}

func TestOptimizeLeavesLatencyBoundInDRAM(t *testing.T) {
	// A latency-bound structure (random access) is FASTER in DRAM at
	// one thread per core — the paper's central negative result. The
	// optimizer must leave it there.
	structs := []Structure{
		{Name: "hash-table", Footprint: units.GB(8), RandomAccesses: 2e9},
		{Name: "stream-buf", Footprint: units.GB(4), SeqBytes: 50e9},
	}
	plan, err := opt(t).Optimize(structs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Assignment["hash-table"] {
		t.Error("latency-bound structure placed in HBM at 64 threads")
	}
	if !plan.Assignment["stream-buf"] {
		t.Error("bandwidth-bound structure left in DRAM")
	}
}

func TestOptimizeLatencyBoundFlipsWithThreads(t *testing.T) {
	// With 256 threads the same hash table belongs in HBM (Fig. 6d).
	structs := []Structure{
		{Name: "hash-table", Footprint: units.GB(8), RandomAccesses: 2e9},
	}
	o := opt(t)
	o.Threads = 256
	plan, err := o.Optimize(structs)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Assignment["hash-table"] {
		t.Error("at 256 threads the random structure should move to HBM")
	}
}

func TestOptimizeRespectsCapacityExactly(t *testing.T) {
	// Two 10 GB hot structures cannot both fit in 16 GB.
	structs := []Structure{
		{Name: "a", Footprint: units.GB(10), SeqBytes: 100e9},
		{Name: "b", Footprint: units.GB(10), SeqBytes: 90e9},
	}
	plan, err := opt(t).Optimize(structs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Assignment["a"] && plan.Assignment["b"] {
		t.Fatal("20 GB placed in 16 GB HBM")
	}
	if !plan.Assignment["a"] {
		t.Error("the hotter structure should win the capacity")
	}
}

func TestOptimizeErrors(t *testing.T) {
	o := opt(t)
	if _, err := o.Optimize(nil); err == nil {
		t.Error("empty structure list accepted")
	}
	if _, err := o.Optimize([]Structure{{Name: "", Footprint: 1}}); err == nil {
		t.Error("unnamed structure accepted")
	}
	if _, err := o.Optimize([]Structure{{Name: "x", Footprint: 0}}); err == nil {
		t.Error("zero footprint accepted")
	}
	if _, err := o.Optimize([]Structure{
		{Name: "x", Footprint: 1, SeqBytes: 1},
		{Name: "x", Footprint: 1, SeqBytes: 1},
	}); err == nil {
		t.Error("duplicate names accepted")
	}
	o.Threads = 0
	if _, err := o.Optimize(miniFEStructures()); err == nil {
		t.Error("zero threads accepted")
	}
	bad := &Optimizer{Machine: nil, Threads: 64}
	if _, err := bad.Optimize(miniFEStructures()); err == nil {
		t.Error("nil machine accepted")
	}
}

func TestGreedyMatchesExhaustiveOnSmallCases(t *testing.T) {
	o := opt(t)
	structs := miniFEStructures()
	ex, err := o.exhaustive(structs)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := o.greedy(structs)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy is a heuristic; require it within 10% of the optimum.
	if float64(gr.Time) > float64(ex.Time)*1.10 {
		t.Errorf("greedy %v vs exhaustive %v (>10%% off)", gr.Time, ex.Time)
	}
}

func TestGreedyPathForManyStructures(t *testing.T) {
	var structs []Structure
	for i := 0; i < 20; i++ {
		structs = append(structs, Structure{
			Name:      string(rune('a'+i)) + "-arr",
			Footprint: units.GB(1.5),
			SeqBytes:  float64(i) * 5e9,
		})
	}
	plan, err := opt(t).Optimize(structs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.HBMUsed > 16*units.GiB {
		t.Fatalf("greedy overcommitted HBM: %v", plan.HBMUsed)
	}
	// The hottest structures (highest index) must be placed first.
	if !plan.Assignment["t-arr"] {
		t.Error("hottest structure not placed")
	}
	if plan.Assignment["a-arr"] && plan.Assignment["b-arr"] {
		t.Error("coldest structures placed while capacity is contended")
	}
}

func TestOptimizeNeverSlowerThanAllDRAMProperty(t *testing.T) {
	o := opt(t)
	f := func(fp1, fp2 uint8, seq1, seq2 uint16) bool {
		structs := []Structure{
			{Name: "s1", Footprint: units.GB(float64(fp1%20) + 0.5), SeqBytes: float64(seq1) * 1e7},
			{Name: "s2", Footprint: units.GB(float64(fp2%20) + 0.5), SeqBytes: float64(seq2) * 1e7},
		}
		plan, err := o.Optimize(structs)
		if err != nil {
			return false
		}
		// The all-DRAM assignment is always feasible, so the optimum
		// can never be slower.
		return plan.SpeedupVsDRAM >= 1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOptimizeHybrid(t *testing.T) {
	o := opt(t)
	// Working set larger than HBM: hybrid/cache should be considered.
	structs := []Structure{
		{Name: "hot", Footprint: units.GB(6), SeqBytes: 120e9},
		{Name: "warm", Footprint: units.GB(18), SeqBytes: 60e9},
	}
	hp, err := o.OptimizeHybrid(structs)
	if err != nil {
		t.Fatal(err)
	}
	if hp.Plan.Time <= 0 {
		t.Fatal("no hybrid plan produced")
	}
	// The pure-flat plan can only place "hot" (6 GB); the 18 GB
	// "warm" structure would stay in DRAM. A hybrid or cache plan
	// routes it through MCDRAM, so the best plan must beat pure flat
	// DRAM placement of warm.
	flatOnly, err := o.Optimize(structs)
	if err != nil {
		t.Fatal(err)
	}
	if hp.Plan.Time > flatOnly.Time {
		t.Errorf("hybrid search (%v) worse than flat-only (%v)", hp.Plan.Time, flatOnly.Time)
	}
}
