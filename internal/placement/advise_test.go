package placement

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/units"
)

func TestAdviseRanksAllModes(t *testing.T) {
	a, err := opt(t).Advise(miniFEStructures())
	if err != nil {
		t.Fatal(err)
	}
	// ddr + cache + flat + three hybrid partitions.
	if len(a.Options) != 6 {
		t.Fatalf("got %d options, want 6: %+v", len(a.Options), a.Options)
	}
	seen := map[string]int{}
	for _, o := range a.Options {
		seen[o.Mode]++
	}
	if seen[ModeDDR] != 1 || seen[ModeCache] != 1 || seen[ModeFlat] != 1 || seen[ModeHybrid] != 3 {
		t.Fatalf("mode census wrong: %v", seen)
	}
	// Ranked fastest first.
	for i := 1; i < len(a.Options); i++ {
		if a.Options[i].Time < a.Options[i-1].Time {
			t.Fatalf("options not sorted by time at %d: %v", i, a.Options)
		}
	}
	// Speedups are quoted against the right references.
	for _, o := range a.Options {
		switch o.Mode {
		case ModeDDR:
			if math.Abs(o.SpeedupVsDRAM-1) > 1e-12 {
				t.Errorf("ddr option vs DRAM = %v, want 1", o.SpeedupVsDRAM)
			}
		case ModeCache:
			if math.Abs(o.SpeedupVsCache-1) > 1e-12 {
				t.Errorf("cache option vs cache = %v, want 1", o.SpeedupVsCache)
			}
		}
	}
}

func TestAdviseBestMatchesOptimize(t *testing.T) {
	// The flat option inside the advice must be exactly the plan the
	// one-shot optimizer computes: same assignment, same time.
	o := opt(t)
	structs := miniFEStructures()
	a, err := o.Advise(structs)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := o.Optimize(structs)
	if err != nil {
		t.Fatal(err)
	}
	var flat Option
	for _, op := range a.Options {
		if op.Mode == ModeFlat {
			flat = op
		}
	}
	if flat.Time != plan.Time || flat.HBMUsed != plan.HBMUsed {
		t.Fatalf("flat option (%v, %v) != Optimize plan (%v, %v)",
			flat.Time, flat.HBMUsed, plan.Time, plan.HBMUsed)
	}
	// The advice completes the assignment with explicit DDR entries;
	// the HBM picks must agree exactly with the one-shot plan.
	if len(flat.Assignment) != len(structs) {
		t.Fatalf("advice assignment incomplete: %v", flat.Assignment)
	}
	for _, s := range structs {
		if flat.Assignment[s.Name] != plan.Assignment[s.Name] {
			t.Errorf("structure %s: advice says %v, optimizer says %v",
				s.Name, flat.Assignment[s.Name], plan.Assignment[s.Name])
		}
	}
	// Best can never be slower than all-DDR (all-DDR is an option).
	if a.Best().SpeedupVsDRAM < 1-1e-9 {
		t.Errorf("best option slower than DDR: %+v", a.Best())
	}
}

func TestAdviseHeadroom(t *testing.T) {
	a, err := opt(t).Advise([]Structure{
		{Name: "hot", Footprint: units.GB(6), SeqBytes: 120e9},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range a.Options {
		if o.Mode != ModeFlat {
			continue
		}
		if o.HBMUsed != units.GB(6) {
			t.Errorf("flat HBM used = %v, want 6GB", o.HBMUsed)
		}
		want := opt(t).Machine.Chip.MCDRAM.Capacity - units.GB(6)
		if o.HBMHeadroom != want {
			t.Errorf("flat headroom = %v, want %v", o.HBMHeadroom, want)
		}
	}
}

func TestAdviseOverCapacityErrors(t *testing.T) {
	o := opt(t)
	dram := o.Machine.Chip.DDR.Capacity
	_, err := o.Advise([]Structure{
		{Name: "huge", Footprint: dram + units.GB(1), SeqBytes: 1e9},
	})
	if err == nil {
		t.Fatal("structure set beyond DDR capacity accepted")
	}
	if !strings.Contains(err.Error(), "decompose") {
		t.Errorf("over-capacity error should point at multi-node decomposition: %v", err)
	}
}

func TestAdviseOverCapacityIsSentinel(t *testing.T) {
	o := opt(t)
	dram := o.Machine.Chip.DDR.Capacity
	_, err := o.Advise([]Structure{{Name: "huge", Footprint: dram + units.GB(1), SeqBytes: 1e9}})
	if !errors.Is(err, ErrOverCapacity) {
		t.Errorf("over-capacity error is not ErrOverCapacity: %v", err)
	}
}

func TestAdviseZeroTrafficErrors(t *testing.T) {
	// A structure set with no traffic has undefined speedups (0/0);
	// it must error instead of producing NaNs.
	_, err := opt(t).Advise([]Structure{{Name: "idle", Footprint: units.GB(1)}})
	if err == nil {
		t.Fatal("zero-traffic structure set accepted")
	}
	if !strings.Contains(err.Error(), "no traffic") {
		t.Errorf("unhelpful zero-traffic error: %v", err)
	}
}

func TestAdviseInputErrors(t *testing.T) {
	o := opt(t)
	if _, err := o.Advise(nil); err == nil {
		t.Error("empty structure list accepted")
	}
	if _, err := o.Advise([]Structure{{Name: "", Footprint: 1}}); err == nil {
		t.Error("unnamed structure accepted")
	}
	if _, err := o.Advise([]Structure{
		{Name: "x", Footprint: 1, SeqBytes: 1},
		{Name: "x", Footprint: 1, SeqBytes: 1},
	}); err == nil {
		t.Error("duplicate names accepted")
	}
	o.Threads = 0
	if _, err := o.Advise(miniFEStructures()); err == nil {
		t.Error("zero threads accepted")
	}
	bad := &Optimizer{Machine: nil, Threads: 64}
	if _, err := bad.Advise(miniFEStructures()); err == nil {
		t.Error("nil machine accepted")
	}
}

func TestAdviseRendering(t *testing.T) {
	a, err := opt(t).Advise(miniFEStructures())
	if err != nil {
		t.Fatal(err)
	}
	out := a.String()
	for _, want := range []string{"rank", "vs DDR", "vs cache", "flat", "cache"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestWorkloadStructures(t *testing.T) {
	for _, pattern := range []string{"Sequential", "Random", "sequential", "random"} {
		structs, err := WorkloadStructures(pattern, units.GB(8))
		if err != nil {
			t.Fatalf("%s: %v", pattern, err)
		}
		if len(structs) != 3 {
			t.Fatalf("%s: %d structures, want 3", pattern, len(structs))
		}
		var total units.Bytes
		for _, s := range structs {
			if err := s.Validate(); err != nil {
				t.Fatalf("%s: derived structure invalid: %v", pattern, err)
			}
			total += s.Footprint
		}
		// The decomposition must cover the footprint (within rounding).
		if float64(total) < 0.99*float64(units.GB(8)) || total > units.GB(8) {
			t.Errorf("%s: decomposition covers %v of 8GB", pattern, total)
		}
	}
	if _, err := WorkloadStructures("diagonal", units.GB(1)); err == nil {
		t.Error("unknown pattern accepted")
	}
	if _, err := WorkloadStructures("sequential", 0); err == nil {
		t.Error("zero footprint accepted")
	}
}

func TestAdviseIsDeterministic(t *testing.T) {
	o := opt(t)
	a1, err := o.Advise(miniFEStructures())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := o.Advise(miniFEStructures())
	if err != nil {
		t.Fatal(err)
	}
	if a1.String() != a2.String() {
		t.Errorf("advice not deterministic:\n%s\nvs\n%s", a1, a2)
	}
}
