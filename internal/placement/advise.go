package placement

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/units"
)

// This file generalizes the placement optimizer into a mode-exploration
// engine: instead of answering only "which structures go to HBM in flat
// mode?", Advise evaluates every BIOS-selectable memory mode — all-DDR,
// cache mode, flat mode with the optimal per-structure assignment, and
// the hybrid partitions — and returns them as a ranked report. This is
// the paper's §VI future work ("employ Intel KNL hybrid HBM mode
// whenever necessary") turned into the query the simulation service
// exposes as POST /v1/advise.

// Mode labels of an advice option. They name the BIOS/boot choice the
// operator would make, not a numactl policy.
const (
	// ModeDDR is flat mode with everything bound to DDR (the paper's
	// "DRAM" baseline).
	ModeDDR = "ddr"
	// ModeCache is MCDRAM configured as the direct-mapped memory-side
	// cache.
	ModeCache = "cache"
	// ModeFlat is flat mode with the optimizer's per-structure
	// HBM/DDR assignment (exhaustive up to 16 structures, greedy
	// beyond).
	ModeFlat = "flat"
	// ModeHybrid is a BIOS hybrid partition: part of MCDRAM flat
	// (placed explicitly), the rest serving as cache.
	ModeHybrid = "hybrid"
)

// HybridFractions are the BIOS-selectable flat fractions Advise
// evaluates for ModeHybrid.
var HybridFractions = []float64{0.25, 0.5, 0.75}

// ErrOverCapacity marks a structure set too large for the node: the
// paper's answer is multi-node decomposition (§IV-C), not a placement.
// The service maps it to an "unavailable" outcome in sweeps.
var ErrOverCapacity = errors.New("placement: over node capacity")

// Option is one evaluated memory mode in an Advice report.
type Option struct {
	// Mode is one of ModeDDR, ModeCache, ModeFlat, ModeHybrid.
	Mode string
	// Config is the engine configuration the evaluation used. For
	// ModeFlat the per-structure binding varies, so Config is the
	// flat-mode HBM configuration and Assignment carries the detail.
	Config engine.MemoryConfig
	// FlatFraction is the MCDRAM fraction exposed flat (1 for flat
	// mode, 0 for cache and DDR).
	FlatFraction float64
	// Time is the predicted phase time of the whole structure set.
	Time units.Nanoseconds
	// SpeedupVsDRAM compares against the all-DDR option (>1 is
	// faster).
	SpeedupVsDRAM float64
	// SpeedupVsCache compares against the cache-mode option, the
	// question operators actually ask ("is flat worth the port?").
	SpeedupVsCache float64
	// Assignment maps structure names to HBM (true) for flat and
	// hybrid options; nil for DDR and cache mode.
	Assignment Assignment
	// HBMUsed is the flat-placed HBM footprint of the option.
	HBMUsed units.Bytes
	// HBMHeadroom is the unplaced remainder of the flat-exposed
	// MCDRAM capacity: how much the working set can grow before the
	// assignment must change.
	HBMHeadroom units.Bytes
}

// Advice is a ranked mode-exploration report: Options sorted fastest
// first, with Best() as the recommendation.
type Advice struct {
	// Threads is the thread count the evaluation assumed.
	Threads int
	// TotalFootprint is the summed footprint of the structure set.
	TotalFootprint units.Bytes
	// Options holds every evaluated mode, fastest first.
	Options []Option
}

// Best returns the winning option (the first after ranking).
func (a Advice) Best() Option {
	if len(a.Options) == 0 {
		return Option{}
	}
	return a.Options[0]
}

// String renders the report as a ranked table plus the winning flat
// assignment, the shape cmd/advisor and simctl print.
func (a Advice) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "advice (%v total footprint, %d threads):\n", a.TotalFootprint, a.Threads)
	fmt.Fprintf(&b, "  %-4s %-16s %14s %10s %10s %10s\n", "rank", "mode", "time", "vs DDR", "vs cache", "HBM used")
	for i, o := range a.Options {
		fmt.Fprintf(&b, "  %-4d %-16s %14v %9.2fx %9.2fx %10v\n",
			i+1, o.Label(), o.Time, o.SpeedupVsDRAM, o.SpeedupVsCache, o.HBMUsed)
	}
	if best := a.Best(); len(best.Assignment) > 0 {
		b.WriteString(Plan{Assignment: best.Assignment, HBMUsed: best.HBMUsed, SpeedupVsDRAM: best.SpeedupVsDRAM}.String())
	}
	return b.String()
}

// Label renders the mode with its hybrid fraction ("hybrid:0.50").
func (o Option) Label() string {
	if o.Mode == ModeHybrid {
		return fmt.Sprintf("hybrid:%.2f", o.FlatFraction)
	}
	return o.Mode
}

// Advise evaluates every memory mode for the structure set and returns
// the ranked report. The all-DDR assignment must fit the DDR node: a
// set beyond it needs multi-node decomposition (§IV-C), which is out of
// a single-node advisor's scope and reported as an error.
func (o *Optimizer) Advise(structs []Structure) (Advice, error) {
	if o.Machine == nil {
		return Advice{}, fmt.Errorf("placement: nil machine")
	}
	if o.Threads <= 0 {
		return Advice{}, fmt.Errorf("placement: thread count %d must be positive", o.Threads)
	}
	if len(structs) == 0 {
		return Advice{}, fmt.Errorf("placement: no structures")
	}
	seen := map[string]bool{}
	var total units.Bytes
	for _, s := range structs {
		if err := s.Validate(); err != nil {
			return Advice{}, err
		}
		if seen[s.Name] {
			return Advice{}, fmt.Errorf("placement: duplicate structure %q", s.Name)
		}
		seen[s.Name] = true
		total += s.Footprint
	}
	chip := o.Machine.Chip
	if total > chip.DDR.Capacity {
		return Advice{}, fmt.Errorf("%w: structure set (%v) exceeds the %v DDR node; decompose across nodes (§IV-C)",
			ErrOverCapacity, total, chip.DDR.Capacity)
	}

	// The two reference points every speedup is quoted against.
	ddrTime, _, err := o.evaluate(structs, Assignment{})
	if err != nil {
		return Advice{}, err
	}
	if ddrTime <= 0 {
		// No traffic means every mode takes zero time and every
		// speedup is 0/0; there is nothing to rank.
		return Advice{}, fmt.Errorf("placement: structure set drives no traffic (set seq_bytes, random_accesses or chase_ops)")
	}
	cacheTime, err := o.evaluateUniform(structs, engine.Cache)
	if err != nil {
		return Advice{}, err
	}

	opts := []Option{
		{Mode: ModeDDR, Config: engine.DRAM, Time: ddrTime, HBMHeadroom: chip.MCDRAM.Capacity},
		{Mode: ModeCache, Config: engine.Cache, Time: cacheTime},
	}

	// Flat mode: the optimizer's per-structure assignment.
	var flat Plan
	if len(structs) <= 16 {
		flat, err = o.exhaustive(structs)
	} else {
		flat, err = o.greedy(structs)
	}
	if err != nil {
		return Advice{}, err
	}
	opts = append(opts, Option{
		Mode: ModeFlat, Config: engine.HBM, FlatFraction: 1,
		Time: flat.Time, Assignment: flat.Assignment, HBMUsed: flat.HBMUsed,
		HBMHeadroom: chip.MCDRAM.Capacity - flat.HBMUsed,
	})

	// Hybrid partitions: explicit placement into the flat slice, the
	// rest through the shrunken cache.
	for _, frac := range HybridFractions {
		t, asg, used, err := o.evaluateHybrid(structs, frac)
		if err != nil {
			continue // partition infeasible for this set
		}
		flatCap := units.Bytes(float64(chip.MCDRAM.Capacity) * frac)
		opts = append(opts, Option{
			Mode: ModeHybrid, Config: engine.MemoryConfig{Kind: engine.Hybrid, HybridFlatFraction: frac},
			FlatFraction: frac, Time: t, Assignment: asg, HBMUsed: used,
			HBMHeadroom: flatCap - used,
		})
	}

	sort.SliceStable(opts, func(i, j int) bool { return opts[i].Time < opts[j].Time })
	for i := range opts {
		opts[i].SpeedupVsDRAM = float64(ddrTime) / float64(opts[i].Time)
		opts[i].SpeedupVsCache = float64(cacheTime) / float64(opts[i].Time)
		// Complete the assignment so reports list DDR-bound structures
		// explicitly instead of by omission.
		if opts[i].Assignment != nil {
			for _, s := range structs {
				if !opts[i].Assignment[s.Name] {
					opts[i].Assignment[s.Name] = false
				}
			}
		}
	}
	return Advice{Threads: o.Threads, TotalFootprint: total, Options: opts}, nil
}

// evaluateUniform predicts the structure set with every structure under
// one configuration (the cache-mode and reference evaluations).
func (o *Optimizer) evaluateUniform(structs []Structure, cfg engine.MemoryConfig) (units.Nanoseconds, error) {
	var total units.Nanoseconds
	for _, s := range structs {
		p := engine.Phase{
			Name:            s.Name,
			SeqBytes:        s.SeqBytes,
			SeqFootprint:    s.Footprint,
			RandomAccesses:  s.RandomAccesses,
			RandomFootprint: s.Footprint,
			ChaseOps:        s.ChaseOps,
			ChaseLength:     s.ChaseLength,
			ChaseFootprint:  s.Footprint,
		}
		r, err := o.Machine.SolvePhase(cfg, o.Threads, p)
		if err != nil {
			return 0, fmt.Errorf("placement: %s: %w", s.Name, err)
		}
		total += r.Time
	}
	return total, nil
}

// WorkloadStructures maps a Table I workload profile (its access
// pattern and footprint) onto a canonical structure decomposition, so
// "advise me about GUPS at 8GB" resolves to the same structure set
// however the request spells the size. Sequential workloads decompose
// into two streamed arrays plus bookkeeping; random workloads into the
// randomly-probed table, a streamed index, and buffers. The pattern
// string matches workload.Info.Pattern ("Sequential"/"Random",
// case-insensitive).
func WorkloadStructures(pattern string, footprint units.Bytes) ([]Structure, error) {
	if footprint <= 0 {
		return nil, fmt.Errorf("placement: footprint %v must be positive", footprint)
	}
	frac := func(f float64) units.Bytes { return units.Bytes(float64(footprint) * f) }
	switch strings.ToLower(strings.TrimSpace(pattern)) {
	case "sequential":
		return []Structure{
			{Name: "stream-a", Footprint: frac(0.45), SeqBytes: 16 * float64(frac(0.45))},
			{Name: "stream-b", Footprint: frac(0.45), SeqBytes: 16 * float64(frac(0.45))},
			{Name: "metadata", Footprint: frac(0.10), RandomAccesses: float64(frac(0.10)) / 64},
		}, nil
	case "random":
		return []Structure{
			{Name: "table", Footprint: frac(0.70), RandomAccesses: 4 * float64(frac(0.70)) / 64},
			{Name: "index", Footprint: frac(0.20), SeqBytes: 8 * float64(frac(0.20))},
			{Name: "buffers", Footprint: frac(0.10), SeqBytes: 4 * float64(frac(0.10))},
		}, nil
	}
	return nil, fmt.Errorf("placement: unknown access pattern %q (sequential|random)", pattern)
}
