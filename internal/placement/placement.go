// Package placement implements the paper's stated future work (§VI):
// "In the future, we plan to investigate a finer-grained approach in
// which we can apply our conclusions to individual data structures and
// eventually employ Intel KNL hybrid HBM mode whenever necessary."
//
// A workload is described as a set of data structures, each with a
// footprint and a traffic profile. The optimizer chooses, for every
// structure, whether it lives in HBM or DRAM (flat mode), subject to
// the 16 GB HBM capacity, to minimize predicted phase time — the
// memkind-era question "which arrays do I hbw_malloc?" answered with
// the engine's model.
package placement

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/units"
)

// Structure is one application data structure.
type Structure struct {
	Name      string
	Footprint units.Bytes

	// Traffic per execution of the modelled phase.
	SeqBytes       float64 // streamed bytes
	RandomAccesses float64 // independent random line accesses
	ChaseOps       float64 // dependent chains...
	ChaseLength    float64 // ...of this many accesses each
}

// Validate checks the structure description.
func (s Structure) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("placement: structure needs a name")
	}
	if s.Footprint <= 0 {
		return fmt.Errorf("placement: %s: footprint must be positive", s.Name)
	}
	if s.SeqBytes < 0 || s.RandomAccesses < 0 || s.ChaseOps < 0 || s.ChaseLength < 0 {
		return fmt.Errorf("placement: %s: negative traffic", s.Name)
	}
	return nil
}

// Assignment maps structure names to memory bindings (true = HBM).
type Assignment map[string]bool

// Plan is an evaluated placement.
type Plan struct {
	Assignment Assignment
	Time       units.Nanoseconds
	HBMUsed    units.Bytes
	// SpeedupVsDRAM compares against the all-DRAM assignment.
	SpeedupVsDRAM float64
}

// String renders the plan like a memkind porting guide.
func (p Plan) String() string {
	var names []string
	for n := range p.Assignment {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "placement plan (%v of HBM used, %.2fx vs all-DRAM):\n", p.HBMUsed, p.SpeedupVsDRAM)
	for _, n := range names {
		kind := "MEMKIND_DEFAULT (DRAM)"
		if p.Assignment[n] {
			kind = "MEMKIND_HBW     (HBM)"
		}
		fmt.Fprintf(&b, "  %-20s -> %s\n", n, kind)
	}
	return b.String()
}

// Optimizer searches placements on a machine.
type Optimizer struct {
	Machine *engine.Machine
	Threads int
}

// evaluate predicts the phase time of an assignment: each structure's
// traffic runs against its bound device, and structure times compose
// additively (the phases interleave over the run).
func (o *Optimizer) evaluate(structs []Structure, asg Assignment) (units.Nanoseconds, units.Bytes, error) {
	var total units.Nanoseconds
	var hbmUsed units.Bytes
	for _, s := range structs {
		cfg := engine.DRAM
		if asg[s.Name] {
			cfg = engine.HBM
			hbmUsed += s.Footprint
		}
		p := engine.Phase{
			Name:            s.Name,
			SeqBytes:        s.SeqBytes,
			SeqFootprint:    s.Footprint,
			RandomAccesses:  s.RandomAccesses,
			RandomFootprint: s.Footprint,
			ChaseOps:        s.ChaseOps,
			ChaseLength:     s.ChaseLength,
			ChaseFootprint:  s.Footprint,
		}
		r, err := o.Machine.SolvePhase(cfg, o.Threads, p)
		if err != nil {
			return 0, 0, fmt.Errorf("placement: %s: %w", s.Name, err)
		}
		total += r.Time
	}
	if hbmUsed > o.Machine.Chip.MCDRAM.Capacity {
		return 0, hbmUsed, fmt.Errorf("placement: assignment exceeds HBM capacity (%v > %v)",
			hbmUsed, o.Machine.Chip.MCDRAM.Capacity)
	}
	return total, hbmUsed, nil
}

// Optimize picks the best assignment. Up to 16 structures it searches
// exhaustively (the exact optimum); beyond that it uses the greedy
// benefit-density heuristic (benefit per HBM byte), which is the
// classic knapsack relaxation.
func (o *Optimizer) Optimize(structs []Structure) (Plan, error) {
	if o.Machine == nil {
		return Plan{}, fmt.Errorf("placement: nil machine")
	}
	if o.Threads <= 0 {
		return Plan{}, fmt.Errorf("placement: thread count %d must be positive", o.Threads)
	}
	if len(structs) == 0 {
		return Plan{}, fmt.Errorf("placement: no structures")
	}
	seen := map[string]bool{}
	for _, s := range structs {
		if err := s.Validate(); err != nil {
			return Plan{}, err
		}
		if seen[s.Name] {
			return Plan{}, fmt.Errorf("placement: duplicate structure %q", s.Name)
		}
		seen[s.Name] = true
	}

	allDRAM := Assignment{}
	baseTime, _, err := o.evaluate(structs, allDRAM)
	if err != nil {
		return Plan{}, err
	}

	var best Plan
	if len(structs) <= 16 {
		best, err = o.exhaustive(structs)
	} else {
		best, err = o.greedy(structs)
	}
	if err != nil {
		return Plan{}, err
	}
	best.SpeedupVsDRAM = float64(baseTime) / float64(best.Time)
	return best, nil
}

// exhaustive enumerates all feasible subsets.
func (o *Optimizer) exhaustive(structs []Structure) (Plan, error) {
	n := len(structs)
	best := Plan{Time: units.Nanoseconds(1e30)}
	found := false
	for mask := 0; mask < 1<<n; mask++ {
		asg := Assignment{}
		var hbm units.Bytes
		feasible := true
		for i, s := range structs {
			if mask>>i&1 == 1 {
				asg[s.Name] = true
				hbm += s.Footprint
				if hbm > o.Machine.Chip.MCDRAM.Capacity {
					feasible = false
					break
				}
			}
		}
		if !feasible {
			continue
		}
		t, used, err := o.evaluate(structs, asg)
		if err != nil {
			continue
		}
		if t < best.Time {
			best = Plan{Assignment: asg, Time: t, HBMUsed: used}
			found = true
		}
	}
	if !found {
		return Plan{}, fmt.Errorf("placement: no feasible assignment")
	}
	return best, nil
}

// greedy sorts structures by HBM benefit per byte and packs.
func (o *Optimizer) greedy(structs []Structure) (Plan, error) {
	type cand struct {
		s       Structure
		density float64
	}
	var cands []cand
	for _, s := range structs {
		single := []Structure{s}
		d, _, err := o.evaluate(single, Assignment{})
		if err != nil {
			return Plan{}, err
		}
		h, _, err := o.evaluate(single, Assignment{s.Name: true})
		if err != nil {
			continue // does not fit alone
		}
		benefit := float64(d - h)
		if benefit <= 0 {
			continue // HBM would not help (or would hurt: latency-bound)
		}
		cands = append(cands, cand{s, benefit / float64(s.Footprint)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].density > cands[j].density })

	asg := Assignment{}
	var used units.Bytes
	for _, c := range cands {
		if used+c.s.Footprint <= o.Machine.Chip.MCDRAM.Capacity {
			asg[c.s.Name] = true
			used += c.s.Footprint
		}
	}
	t, usedB, err := o.evaluate(structs, asg)
	if err != nil {
		return Plan{}, err
	}
	return Plan{Assignment: asg, Time: t, HBMUsed: usedB}, nil
}

// HybridPlan additionally considers the hybrid BIOS partitions: the
// optimizer places what fits into the flat fraction and lets the cache
// fraction serve the rest, returning the best (partition, assignment)
// combination. This is the paper's "eventually employ Intel KNL hybrid
// HBM mode whenever necessary".
type HybridPlan struct {
	FlatFraction float64 // 0 = pure cache mode, 1 = pure flat
	Plan         Plan
}

// OptimizeHybrid compares the flat placements against hybrid
// partitions (25/50/75%) and full cache mode, evaluating the spill
// structures through the cache-mode model.
func (o *Optimizer) OptimizeHybrid(structs []Structure) (HybridPlan, error) {
	best := HybridPlan{FlatFraction: 1}
	flat, err := o.Optimize(structs)
	if err != nil {
		return HybridPlan{}, err
	}
	best.Plan = flat

	baseTime := float64(flat.Time) * flat.SpeedupVsDRAM // all-DRAM time

	for _, frac := range []float64{0, 0.25, 0.5, 0.75} {
		t, asg, used, err := o.evaluateHybrid(structs, frac)
		if err != nil {
			continue
		}
		if t < best.Plan.Time {
			best = HybridPlan{
				FlatFraction: frac,
				Plan: Plan{
					Assignment:    asg,
					Time:          t,
					HBMUsed:       used,
					SpeedupVsDRAM: baseTime / float64(t),
				},
			}
		}
	}
	return best, nil
}

// evaluateHybrid places greedily into the flat slice; the remainder
// runs under the cache-mode model with the shrunken cache.
func (o *Optimizer) evaluateHybrid(structs []Structure, frac float64) (units.Nanoseconds, Assignment, units.Bytes, error) {
	flatCap := units.Bytes(float64(o.Machine.Chip.MCDRAM.Capacity) * frac)
	cacheCfg := engine.Cache
	if frac > 0 && frac < 1 {
		cacheCfg = engine.MemoryConfig{Kind: engine.Hybrid, HybridFlatFraction: frac}
	}

	// Sort by single-structure HBM benefit density, pack into flat.
	ordered := append([]Structure(nil), structs...)
	sort.Slice(ordered, func(i, j int) bool {
		return ordered[i].SeqBytes/float64(ordered[i].Footprint) >
			ordered[j].SeqBytes/float64(ordered[j].Footprint)
	})
	asg := Assignment{}
	var used units.Bytes
	var total units.Nanoseconds
	for _, s := range ordered {
		p := engine.Phase{
			Name:            s.Name,
			SeqBytes:        s.SeqBytes,
			SeqFootprint:    s.Footprint,
			RandomAccesses:  s.RandomAccesses,
			RandomFootprint: s.Footprint,
			ChaseOps:        s.ChaseOps,
			ChaseLength:     s.ChaseLength,
			ChaseFootprint:  s.Footprint,
		}
		cfg := cacheCfg
		if frac > 0 && used+s.Footprint <= flatCap {
			cfg = engine.HBM
			asg[s.Name] = true
			used += s.Footprint
		}
		r, err := o.Machine.SolvePhase(cfg, o.Threads, p)
		if err != nil {
			return 0, nil, 0, err
		}
		total += r.Time
	}
	return total, asg, used, nil
}
