package obs

import (
	"context"
	"fmt"
	"math/rand/v2"
)

// ctxKey namespaces this package's context values.
type ctxKey int

const (
	requestIDKey ctxKey = iota
	routeKey
	traceKey
)

// RequestIDHeader is the header the service reads an inbound request
// ID from and echoes the effective ID back on.
const RequestIDHeader = "X-Request-Id"

// maxRequestIDLen caps accepted inbound IDs so a hostile client
// cannot inflate every log line and journal record.
const maxRequestIDLen = 64

// NewRequestID generates a fresh request ID: 16 hex characters from
// math/rand/v2 (uniqueness is what matters here, not secrecy — IDs
// exist to correlate logs, metrics and journal records, and the
// cheap generator keeps the middleware overhead measurable in
// nanoseconds).
func NewRequestID() string {
	return fmt.Sprintf("%016x", rand.Uint64())
}

// SanitizeRequestID validates an inbound request ID: printable ASCII
// from a safe alphabet, bounded length. Anything else returns ""
// (caller generates a fresh one) so client-supplied IDs can never
// inject log fields or control characters.
func SanitizeRequestID(id string) string {
	if id == "" || len(id) > maxRequestIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return ""
		}
	}
	return id
}

// WithRequestID attaches a request ID to the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the context's request ID, or "" when none was
// attached (work not started by an HTTP request).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// routeLabel is a mutable holder the outer middleware installs and
// the matched route handler fills in — by the time the middleware
// regains control after ServeMux dispatch, it can read which pattern
// (if any) matched. A pointer is required because context values are
// immutable and the mux match happens below the middleware.
type routeLabel struct{ pattern string }

// WithRouteTag installs an empty route holder; SetRoute fills it.
func WithRouteTag(ctx context.Context) context.Context {
	return context.WithValue(ctx, routeKey, &routeLabel{})
}

// SetRoute records the matched route pattern for the request, when a
// holder is installed. Handlers registered through the service's
// route helper call this; unmatched requests (404/405) never do.
func SetRoute(ctx context.Context, pattern string) {
	if l, ok := ctx.Value(routeKey).(*routeLabel); ok {
		l.pattern = pattern
	}
}

// Route returns the matched route pattern, or "" when no registered
// handler ran (a 404/405 straight from the mux).
func Route(ctx context.Context) string {
	if l, ok := ctx.Value(routeKey).(*routeLabel); ok {
		return l.pattern
	}
	return ""
}
