package obs

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// benchmarkStack builds the production middleware chain around a
// no-op handler: request-ID generation, route tagging, optionally
// execution tracing, access logging, latency observation into a
// histogram, and panic recovery.
func benchmarkStack(b *testing.B, logText, traced bool) {
	var h http.Handler
	logger := NopLogger()
	if logText {
		var err error
		logger, err = NewLogger(io.Discard, "info", "text")
		if err != nil {
			b.Fatal(err)
		}
	}
	var tracer *Tracer
	if traced {
		tracer = NewTracer(256, time.Second)
	}
	hist := NewHistogramVec("bench_request_seconds", "bench", []string{"route", "code"}, nil)
	h = Chain(
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			SetRoute(r.Context(), "GET /bench")
			w.WriteHeader(http.StatusOK)
		}),
		RequestIDs(),
		Tracing(tracer), // nil tracer: pass-through, excluded from the guard
		Logging(logger, time.Second),
		Timing(func(_ *http.Request, route string, status int, _ int64, elapsed time.Duration) {
			hist.Observe(elapsed.Seconds(), route, "200")
		}),
		Recover(func(w http.ResponseWriter, r *http.Request, v any) {}),
	)
	req := httptest.NewRequest(http.MethodGet, "/bench", nil)
	rec := httptest.NewRecorder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(rec, req)
	}
	if got := hist.Count("GET /bench", "200"); got != uint64(b.N) {
		b.Fatalf("histogram saw %d requests, want %d", got, b.N)
	}
}

// BenchmarkMiddlewareOverhead is the CI-guarded number (<2µs per
// request): the stack's own plumbing — ID generation, two context
// values, the response recorder, route resolution, histogram
// observation and recovery — with the log sink disabled, so the guard
// tracks middleware cost rather than slog's formatting throughput.
func BenchmarkMiddlewareOverhead(b *testing.B) {
	benchmarkStack(b, false, false)
}

// BenchmarkMiddlewareWithTracing adds the execution-tracing layer: a
// trace registered in the tracer's rings, the root span, the status
// attribute and tail-sampling classification per request. The delta
// against BenchmarkMiddlewareOverhead is the whole-request price of
// tracing (~0.6µs); the per-span marginal cost has its own guarded
// number in BenchmarkSpanOverhead.
func BenchmarkMiddlewareWithTracing(b *testing.B) {
	benchmarkStack(b, false, true)
}

// BenchmarkMiddlewareWithTextLog is the same chain with INFO text
// logging actually formatting every access-log line (to a discarded
// writer). The delta against BenchmarkMiddlewareOverhead is the price
// of the log line itself (~1.6µs on a 2.1GHz Xeon).
func BenchmarkMiddlewareWithTextLog(b *testing.B) {
	benchmarkStack(b, true, false)
}

// BenchmarkSpanOverhead is the CI-guarded cost of one instrumented
// operation inside a traced request: StartSpan (child context + span
// allocation), one attribute, and End filing the record on the trace.
// The trace is swapped out before the span cap so every iteration pays
// the full append, not the cheaper overflow path.
func BenchmarkSpanOverhead(b *testing.B) {
	tr, _ := NewTrace("bench")
	ctx := ContextWithTrace(context.Background(), tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%maxSpansPerTrace == 0 && i > 0 {
			b.StopTimer()
			tr, _ = NewTrace("bench")
			ctx = ContextWithTrace(context.Background(), tr)
			b.StartTimer()
		}
		_, sp := StartSpan(ctx, "op")
		sp.SetAttr("k", "v")
		sp.End()
	}
}
