package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// benchmarkStack builds the production middleware chain around a
// no-op handler: request-ID generation, route tagging, access logging,
// latency observation into a histogram, and panic recovery.
func benchmarkStack(b *testing.B, logText bool) {
	var h http.Handler
	logger := NopLogger()
	if logText {
		var err error
		logger, err = NewLogger(io.Discard, "info", "text")
		if err != nil {
			b.Fatal(err)
		}
	}
	hist := NewHistogramVec("bench_request_seconds", "bench", []string{"route", "code"}, nil)
	h = Chain(
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			SetRoute(r.Context(), "GET /bench")
			w.WriteHeader(http.StatusOK)
		}),
		RequestIDs(),
		Logging(logger, time.Second),
		Timing(func(_ *http.Request, route string, status int, _ int64, elapsed time.Duration) {
			hist.Observe(elapsed.Seconds(), route, "200")
		}),
		Recover(func(w http.ResponseWriter, r *http.Request, v any) {}),
	)
	req := httptest.NewRequest(http.MethodGet, "/bench", nil)
	rec := httptest.NewRecorder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(rec, req)
	}
	if got := hist.Count("GET /bench", "200"); got != uint64(b.N) {
		b.Fatalf("histogram saw %d requests, want %d", got, b.N)
	}
}

// BenchmarkMiddlewareOverhead is the CI-guarded number (<2µs per
// request): the stack's own plumbing — ID generation, two context
// values, the response recorder, route resolution, histogram
// observation and recovery — with the log sink disabled, so the guard
// tracks middleware cost rather than slog's formatting throughput.
func BenchmarkMiddlewareOverhead(b *testing.B) {
	benchmarkStack(b, false)
}

// BenchmarkMiddlewareWithTextLog is the same chain with INFO text
// logging actually formatting every access-log line (to a discarded
// writer). The delta against BenchmarkMiddlewareOverhead is the price
// of the log line itself (~1.6µs on a 2.1GHz Xeon).
func BenchmarkMiddlewareWithTextLog(b *testing.B) {
	benchmarkStack(b, true)
}
