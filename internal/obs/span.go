package obs

import (
	"context"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the execution-tracing half of the package: spans record
// where a request's time went (queue wait, cache probes, point compute,
// replay passes, persistence), a Trace collects the spans one request
// produced, and a Tracer retains completed traces in bounded rings with
// tail-based sampling so errors and slow requests are always queryable
// after the fact. The trace ID is the request ID — one correlation key
// links the access log, the job record, the journal, the metrics
// exemplars and the span tree.

// RootSpanID is the span ID of every trace's root span: span IDs are
// allocated from 1 and the root is always the first allocation.
const RootSpanID = 1

// maxSpansPerTrace bounds one trace's span count so a pathological
// campaign (thousands of points) cannot hold the whole request history
// in memory. Overflowing spans are counted, not stored; the root span
// is always kept.
const maxSpansPerTrace = 2048

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanData is the completed, immutable record of one span.
type SpanData struct {
	ID     int       `json:"id"`
	Parent int       `json:"parent,omitempty"`
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	MS     float64   `json:"ms"`
	Attrs  []Attr    `json:"attrs,omitempty"`
	Error  bool      `json:"error,omitempty"`
}

// Span is one live timed operation. It is owned by the goroutine that
// started it until End, which files the completed record on the trace;
// a nil *Span is a valid no-op (work running outside any trace), so
// instrumentation never needs nil checks.
type Span struct {
	tr     *Trace
	id     int
	parent int
	name   string
	start  time.Time
	attrs  []Attr
	err    bool

	// scratch backs the first attrs entries so the common one-or-two
	// attribute span costs no extra allocation (the middleware budget
	// is guarded in CI).
	scratch [2]Attr
}

// ID returns the span's ID within its trace (0 for a nil span).
func (s *Span) ID() int {
	if s == nil {
		return 0
	}
	return s.id
}

// SetName renames the span — the tracing middleware names the root
// span after the matched route, which is only known after dispatch.
func (s *Span) SetName(name string) {
	if s != nil {
		s.name = name
	}
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = s.scratch[:0]
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetError marks the span failed; a trace holding any failed span is
// pinned by tail sampling.
func (s *Span) SetError(failed bool) {
	if s != nil {
		s.err = failed
	}
}

// End completes the span now.
func (s *Span) End() { s.EndAt(time.Now()) }

// EndAt completes the span at an explicit instant, so a span mirroring
// an externally measured interval (the job timeline's execute stage)
// carries exactly the same duration.
func (s *Span) EndAt(t time.Time) {
	if s == nil {
		return
	}
	s.tr.append(SpanData{
		ID: s.id, Parent: s.parent, Name: s.name, Start: s.start,
		MS: float64(t.Sub(s.start).Microseconds()) / 1000, Attrs: s.attrs, Error: s.err,
	})
}

// Trace collects the spans of one request, keyed by its request ID.
// Spans may keep arriving after the root span ends (async jobs outlive
// the submitting request); snapshots are taken under the mutex so a
// reader always sees a consistent tree.
type Trace struct {
	id    string
	start time.Time
	root  Span // the request-level span, allocated with the trace

	nextID atomic.Int64
	hasErr atomic.Bool

	mu      sync.Mutex
	spans   []SpanData // completed spans; guarded by mu
	dropped int        // spans discarded past the cap; guarded by mu
	name    string     // root route, set at finish; guarded by mu
	doneMS  float64    // root duration, set at finish; guarded by mu
	pinned  bool       // kept by tail sampling; guarded by mu
}

// NewTrace builds a trace and its root span (ID RootSpanID).
func NewTrace(id string) (*Trace, *Span) {
	tr := &Trace{id: id, start: time.Now()}
	tr.nextID.Store(RootSpanID)
	tr.root = Span{tr: tr, id: RootSpanID, name: "request", start: tr.start}
	return tr, &tr.root
}

// ID returns the trace's identifier (the request ID).
func (t *Trace) ID() string { return t.id }

// NewSpan starts a span with an explicit parent and start time — the
// queue uses it to open the execute span at worker pickup. parent 0
// attaches to nothing; use RootSpanID for top-level job spans.
func (t *Trace) NewSpan(name string, parent int, start time.Time) *Span {
	return &Span{tr: t, id: int(t.nextID.Add(1)), parent: parent, name: name, start: start}
}

// AddSpan records an interval measured retrospectively (queue wait is
// only known at pickup) as a completed span.
func (t *Trace) AddSpan(parent int, name string, start time.Time, d time.Duration, attrs ...Attr) {
	t.append(SpanData{
		ID: int(t.nextID.Add(1)), Parent: parent, Name: name, Start: start,
		MS: float64(d.Microseconds()) / 1000, Attrs: attrs,
	})
}

// append files one completed span.
func (t *Trace) append(sd SpanData) {
	if sd.Error {
		t.hasErr.Store(true)
	}
	t.mu.Lock()
	if len(t.spans) >= maxSpansPerTrace && sd.ID != RootSpanID {
		t.dropped++
	} else {
		t.spans = append(t.spans, sd)
	}
	t.mu.Unlock()
}

// HasError reports whether any completed span failed.
func (t *Trace) HasError() bool { return t.hasErr.Load() }

// finish stamps the root route name and end-to-end duration.
func (t *Trace) finish(name string, elapsed time.Duration, pinned bool) {
	t.mu.Lock()
	t.name = name
	t.doneMS = float64(elapsed.Microseconds()) / 1000
	t.pinned = pinned
	t.mu.Unlock()
}

// TraceData is the queryable snapshot of one trace: the whole span
// tree, flattened (parents by ID).
type TraceData struct {
	ID      string     `json:"id"`
	Name    string     `json:"name,omitempty"`
	Start   time.Time  `json:"start"`
	MS      float64    `json:"ms,omitempty"`
	Error   bool       `json:"error,omitempty"`
	Pinned  bool       `json:"pinned,omitempty"`
	Dropped int        `json:"dropped_spans,omitempty"`
	Spans   []SpanData `json:"spans"`
}

// Snapshot copies the trace's current state. Spans are sorted by ID
// (allocation order), so parents precede children.
func (t *Trace) Snapshot() TraceData {
	t.mu.Lock()
	defer t.mu.Unlock()
	spans := append([]SpanData(nil), t.spans...)
	sort.Slice(spans, func(i, j int) bool { return spans[i].ID < spans[j].ID })
	return TraceData{
		ID: t.id, Name: t.name, Start: t.start, MS: t.doneMS,
		Error: t.hasErr.Load(), Pinned: t.pinned, Dropped: t.dropped, Spans: spans,
	}
}

// TraceSummary is one row of the trace listing.
type TraceSummary struct {
	ID     string    `json:"id"`
	Name   string    `json:"name,omitempty"`
	Start  time.Time `json:"start"`
	MS     float64   `json:"ms,omitempty"`
	Spans  int       `json:"spans"`
	Error  bool      `json:"error,omitempty"`
	Pinned bool      `json:"pinned,omitempty"`
}

// summary renders the trace's listing row.
func (t *Trace) summary() TraceSummary {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TraceSummary{
		ID: t.id, Name: t.name, Start: t.start, MS: t.doneMS,
		Spans: len(t.spans), Error: t.hasErr.Load(), Pinned: t.pinned,
	}
}

// Tracer retains completed traces with tail-based sampling: every
// trace enters a general FIFO ring; at finish, traces that erred or ran
// slower than the slow threshold are moved to a pinned ring so the
// interesting tail survives churn that would evict it from the general
// ring. Both rings are bounded by the same capacity.
type Tracer struct {
	capacity int
	slow     time.Duration

	mu      sync.Mutex
	general []*Trace          // FIFO of recent traces; guarded by mu
	pinset  []*Trace          // errors + slow requests; guarded by mu
	byID    map[string]*Trace // latest trace per ID; guarded by mu
}

// NewTracer builds a tracer retaining up to capacity recent traces
// plus up to capacity pinned (error/slow) traces (<=0: 256). Requests
// taking slow or longer are pinned; slow <= 0 disables pinning by
// latency.
func NewTracer(capacity int, slow time.Duration) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{capacity: capacity, slow: slow, byID: make(map[string]*Trace)}
}

// Begin opens a trace for one request and registers it immediately, so
// in-flight requests are already queryable. A duplicate ID (a client
// pinning its own X-Request-Id across requests) shadows the older
// trace in lookups; both age out of the rings normally.
func (t *Tracer) Begin(id string) (*Trace, *Span) {
	tr, root := NewTrace(id)
	t.mu.Lock()
	t.general = append(t.general, tr)
	if len(t.general) > t.capacity {
		t.evictLocked(&t.general)
	}
	t.byID[id] = tr
	t.mu.Unlock()
	return tr, root
}

// evictLocked drops the oldest trace of a ring, unmapping its ID only
// if the map still points at that exact trace.
func (t *Tracer) evictLocked(ring *[]*Trace) {
	old := (*ring)[0]
	*ring = (*ring)[1:]
	if t.byID[old.id] == old {
		delete(t.byID, old.id)
	}
}

// Finish classifies a completed request: an error status, a failed
// span, or latency past the slow threshold pins the trace.
func (t *Tracer) Finish(tr *Trace, route string, status int, elapsed time.Duration) {
	pin := status >= 500 || tr.HasError() || (t.slow > 0 && elapsed >= t.slow)
	tr.finish(route, elapsed, pin)
	if !pin {
		return
	}
	t.mu.Lock()
	for i, g := range t.general {
		if g == tr {
			t.general = append(t.general[:i], t.general[i+1:]...)
			break
		}
	}
	t.pinset = append(t.pinset, tr)
	if len(t.pinset) > t.capacity {
		t.evictLocked(&t.pinset)
	}
	// Moving rings may have been preceded by a general-ring eviction
	// racing in; restore the lookup entry.
	t.byID[tr.id] = tr
	t.mu.Unlock()
}

// Get returns the snapshot of the trace with the given ID.
func (t *Tracer) Get(id string) (TraceData, bool) {
	t.mu.Lock()
	tr := t.byID[id]
	t.mu.Unlock()
	if tr == nil {
		return TraceData{}, false
	}
	return tr.Snapshot(), true
}

// List summarizes every retained trace, newest first.
func (t *Tracer) List() []TraceSummary {
	t.mu.Lock()
	all := make([]*Trace, 0, len(t.general)+len(t.pinset))
	all = append(all, t.general...)
	all = append(all, t.pinset...)
	t.mu.Unlock()
	out := make([]TraceSummary, len(all))
	for i, tr := range all {
		out[i] = tr.summary()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}

// Stats returns (retained, pinned) trace counts for /metrics.
func (t *Tracer) Stats() (retained, pinned int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.general) + len(t.pinset), len(t.pinset)
}

// traceCtx is the context payload: the live trace and the current span
// ID new children attach under.
type traceCtx struct {
	tr   *Trace
	span int
}

// ContextWithTrace attaches a trace to the context with the root span
// as the current parent.
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	return ContextWithSpan(ctx, tr, RootSpanID)
}

// ContextWithSpan attaches a trace with an explicit current span — the
// queue installs the execute span as the parent of everything the job
// body does.
func ContextWithSpan(ctx context.Context, tr *Trace, spanID int) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey, traceCtx{tr: tr, span: spanID})
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	tc, _ := ctx.Value(traceKey).(traceCtx)
	return tc.tr
}

// SpanIDFrom returns the context's current span ID (the parent new
// spans would attach under), or 0 without a trace.
func SpanIDFrom(ctx context.Context) int {
	tc, _ := ctx.Value(traceKey).(traceCtx)
	if tc.tr == nil {
		return 0
	}
	return tc.span
}

// StartSpan opens a child of the context's current span and returns a
// context under which further spans nest inside it. Without a trace in
// the context it returns ctx unchanged and a nil (no-op) span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	tc, ok := ctx.Value(traceKey).(traceCtx)
	if !ok {
		return ctx, nil
	}
	sp := tc.tr.NewSpan(name, tc.span, time.Now())
	return context.WithValue(ctx, traceKey, traceCtx{tr: tc.tr, span: sp.id}), sp
}

// statusLabel renders a status code without allocating for the codes
// the service actually answers with (the middleware chain has a
// CI-guarded per-request budget).
func statusLabel(status int) string {
	switch status {
	case http.StatusOK:
		return "200"
	case http.StatusAccepted:
		return "202"
	case http.StatusBadRequest:
		return "400"
	case http.StatusNotFound:
		return "404"
	case http.StatusTooManyRequests:
		return "429"
	case http.StatusInternalServerError:
		return "500"
	}
	return strconv.Itoa(status)
}

// Tracing is the execution-tracing middleware: it opens a trace named
// by the request ID, roots a span over the whole request, and hands
// the finished trace to the tracer's tail sampler. It sits just inside
// RequestIDs so the trace ID and request ID always coincide.
func Tracing(tracer *Tracer) Middleware {
	return func(next http.Handler) http.Handler {
		if tracer == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rec := Wrap(w)
			tr, root := tracer.Begin(RequestID(r.Context()))
			ctx := ContextWithTrace(r.Context(), tr)
			next.ServeHTTP(rec, r.WithContext(ctx))

			route := Route(ctx)
			if route == "" {
				route = "unmatched"
			}
			status := rec.StatusOrDefault()
			root.SetName(route)
			root.SetAttr("status", statusLabel(status))
			if status >= 500 {
				root.SetError(true)
			}
			root.End()
			tracer.Finish(tr, route, status, time.Since(tr.start))
		})
	}
}
