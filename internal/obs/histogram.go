// Package obs is the service's observability substrate: fixed-bucket
// latency histograms rendered in Prometheus text exposition format,
// request-ID generation and propagation through context.Context, a
// structured-logging constructor on log/slog, and a composable
// http.Handler middleware stack (request IDs, access logging, latency
// metrics, panic recovery) that internal/service assembles into its
// request path. The package is dependency-free by design — the repo
// rule is no new modules, and the Prometheus text format is simple
// enough to emit (and parse, in tests) by hand.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DefBuckets are the default latency bucket upper bounds in seconds:
// 100µs to 10s, roughly logarithmic — wide enough for a cached hit
// (tens of microseconds land in the first bucket) and a multi-second
// campaign alike. +Inf is implicit.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is one fixed-bucket histogram: cumulative-on-render bucket
// counts, a running sum, and a total count. A mutex (not atomics)
// keeps Observe and Snapshot exactly consistent — the render must
// satisfy count == +Inf bucket even under concurrent observation, and
// at service request rates the lock is invisible.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, ascending, +Inf implicit; immutable
	counts []uint64  // len(bounds)+1; last is the +Inf overflow; guarded by mu
	sum    float64   // guarded by mu
	total  uint64    // guarded by mu
	// exemplars holds the most recent exemplar per bucket, allocated on
	// the first exemplared observation. guarded by mu.
	exemplars []Exemplar
}

// Exemplar links one observed value to the trace that produced it —
// the OpenMetrics affordance that lets a histogram outlier be chased
// to its span tree.
type Exemplar struct {
	TraceID string
	Value   float64
	Unix    float64 // observation time, seconds since the epoch
}

// NewHistogram builds a histogram over the given ascending upper
// bounds (nil means DefBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value (seconds, for latency histograms).
func (h *Histogram) Observe(v float64) { h.ObserveExemplar(v, "") }

// ObserveExemplar records one value and, when traceID is non-empty,
// remembers it as the bucket's latest exemplar.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	// Binary search for the first bound >= v; sort.SearchFloat64s
	// finds the insertion point for v, which is exactly that bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	if traceID != "" {
		if h.exemplars == nil {
			h.exemplars = make([]Exemplar, len(h.counts))
		}
		h.exemplars[i] = Exemplar{TraceID: traceID, Value: v, Unix: float64(time.Now().UnixMilli()) / 1000}
	}
	h.mu.Unlock()
}

// HistogramSnapshot is one consistent read of a histogram: cumulative
// bucket counts aligned with Bounds (the final entry is the +Inf
// bucket and equals Count).
type HistogramSnapshot struct {
	Bounds     []float64 // upper bounds; +Inf implicit as the last bucket
	Cumulative []uint64  // len(Bounds)+1, nondecreasing
	Sum        float64
	Count      uint64
	// Exemplars is nil until an exemplared observation lands; otherwise
	// len(Cumulative), with zero-value entries for buckets that never
	// saw one.
	Exemplars []Exemplar
}

// Snapshot returns a consistent cumulative view.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := make([]uint64, len(h.counts))
	var run uint64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	var ex []Exemplar
	if h.exemplars != nil {
		ex = append([]Exemplar(nil), h.exemplars...)
	}
	return HistogramSnapshot{Bounds: h.bounds, Cumulative: cum, Sum: h.sum, Count: h.total, Exemplars: ex}
}

// HistogramVec is a family of histograms keyed by label values —
// simd_http_request_seconds{route,code} and friends. Label sets are
// created on first observation and rendered in sorted order so
// scrapes are deterministic.
type HistogramVec struct {
	name   string
	help   string
	labels []string
	bounds []float64

	mu   sync.Mutex
	kids map[string]*Histogram // guarded by mu
}

// NewHistogramVec builds a histogram family. name is the metric
// family name (without _bucket/_sum/_count suffixes), labels the
// label names every observation must supply values for, bounds the
// shared bucket upper bounds (nil: DefBuckets).
func NewHistogramVec(name, help string, labels []string, bounds []float64) *HistogramVec {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return &HistogramVec{name: name, help: help, labels: labels, bounds: bounds, kids: make(map[string]*Histogram)}
}

// labelSep joins label values into map keys; label values containing
// it would collide, but ours are routes, status codes and stage names.
const labelSep = "\x1f"

// Observe records v against the histogram for the given label values.
// The value count must match the label names; a mismatch is a
// programming error and panics loudly rather than mislabeling data.
func (v *HistogramVec) Observe(val float64, labelValues ...string) {
	v.ObserveExemplar(val, "", labelValues...)
}

// ObserveExemplar is Observe plus an exemplar: when traceID is
// non-empty, the bucket the value lands in remembers it, and Render
// appends an OpenMetrics-style `# {trace_id="..."}` suffix to that
// bucket's row.
func (v *HistogramVec) ObserveExemplar(val float64, traceID string, labelValues ...string) {
	if len(labelValues) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s observed with %d label values, want %d", v.name, len(labelValues), len(v.labels)))
	}
	key := strings.Join(labelValues, labelSep)
	v.mu.Lock()
	h, ok := v.kids[key]
	if !ok {
		h = NewHistogram(v.bounds)
		v.kids[key] = h
	}
	v.mu.Unlock()
	h.ObserveExemplar(val, traceID)
}

// Count returns the observation count for one label set (0 when the
// set has never been observed) — a cheap test and assertion hook.
func (v *HistogramVec) Count(labelValues ...string) uint64 {
	v.mu.Lock()
	h, ok := v.kids[strings.Join(labelValues, labelSep)]
	v.mu.Unlock()
	if !ok {
		return 0
	}
	return h.Snapshot().Count
}

// formatBound renders a bucket upper bound the way Prometheus spells
// le values ("0.005", "1", "10").
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// exemplarSuffix renders a bucket row's exemplar annotation, or "".
// The syntax follows OpenMetrics: the row's value, then " # ", then
// the exemplar labels, the exemplared value and its timestamp.
func exemplarSuffix(ex []Exemplar, i int) string {
	if i >= len(ex) || ex[i].TraceID == "" {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=%q} %s %.3f",
		ex[i].TraceID, strconv.FormatFloat(ex[i].Value, 'g', -1, 64), ex[i].Unix)
}

// Render writes the family in Prometheus text exposition format:
// HELP and TYPE first, then for each label set (sorted) the
// cumulative _bucket rows ending in le="+Inf", then _sum and _count.
func (v *HistogramVec) Render(w io.Writer) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	hists := make([]*Histogram, len(keys))
	for i, k := range keys {
		hists[i] = v.kids[k]
	}
	v.mu.Unlock()

	fmt.Fprintf(w, "# HELP %s %s\n", v.name, v.help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", v.name)
	for i, key := range keys {
		snap := hists[i].Snapshot()
		var base strings.Builder
		if len(v.labels) > 0 {
			for j, val := range strings.Split(key, labelSep) {
				fmt.Fprintf(&base, "%s=%q,", v.labels[j], val)
			}
		}
		for j, b := range snap.Bounds {
			fmt.Fprintf(w, "%s_bucket{%sle=%q} %d%s\n", v.name, base.String(), formatBound(b), snap.Cumulative[j], exemplarSuffix(snap.Exemplars, j))
		}
		last := len(snap.Cumulative) - 1
		fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d%s\n", v.name, base.String(), snap.Cumulative[last], exemplarSuffix(snap.Exemplars, last))
		sumBase := strings.TrimSuffix(base.String(), ",")
		if sumBase == "" {
			fmt.Fprintf(w, "%s_sum %s\n", v.name, strconv.FormatFloat(snap.Sum, 'g', -1, 64))
			fmt.Fprintf(w, "%s_count %d\n", v.name, snap.Count)
			continue
		}
		fmt.Fprintf(w, "%s_sum{%s} %s\n", v.name, sumBase, strconv.FormatFloat(snap.Sum, 'g', -1, 64))
		fmt.Fprintf(w, "%s_count{%s} %d\n", v.name, sumBase, snap.Count)
	}
}
