package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	// 0.005 and 0.01 land in le=0.01 (upper bounds are inclusive),
	// 0.05 in le=0.1, 0.5 in le=1, 5 overflows to +Inf.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if snap.Cumulative[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d", i, snap.Cumulative[i], w)
		}
	}
	if snap.Count != 5 {
		t.Errorf("count = %d, want 5", snap.Count)
	}
	if diff := snap.Sum - (0.005 + 0.01 + 0.05 + 0.5 + 5); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("sum = %g", snap.Sum)
	}
}

func TestHistogramVecRendering(t *testing.T) {
	v := NewHistogramVec("test_seconds", "Test latency.", []string{"route", "code"}, []float64{0.1, 1})
	v.Observe(0.05, "GET /x", "200")
	v.Observe(0.5, "GET /x", "200")
	v.Observe(2, "GET /y", "500")

	var b bytes.Buffer
	v.Render(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP test_seconds Test latency.",
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{route="GET /x",code="200",le="0.1"} 1`,
		`test_seconds_bucket{route="GET /x",code="200",le="1"} 2`,
		`test_seconds_bucket{route="GET /x",code="200",le="+Inf"} 2`,
		`test_seconds_count{route="GET /x",code="200"} 2`,
		`test_seconds_sum{route="GET /x",code="200"} 0.55`,
		`test_seconds_bucket{route="GET /y",code="500",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q in:\n%s", want, out)
		}
	}
	if got := v.Count("GET /x", "200"); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
}

func TestHistogramVecLabelArityPanics(t *testing.T) {
	v := NewHistogramVec("x_seconds", "x", []string{"a", "b"}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("observing with wrong label arity did not panic")
		}
	}()
	v.Observe(1, "only-one")
}

func TestSanitizeRequestID(t *testing.T) {
	cases := map[string]string{
		"abc-123_X.y":           "abc-123_X.y",
		"":                      "",
		"has space":             "",
		"inject=\"x\"":          "",
		"line\nbreak":           "",
		strings.Repeat("a", 65): "",
		strings.Repeat("a", 64): strings.Repeat("a", 64),
	}
	for in, want := range cases {
		if got := SanitizeRequestID(in); got != want {
			t.Errorf("SanitizeRequestID(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNewRequestIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if len(id) != 16 {
			t.Fatalf("id %q not 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

// TestMiddlewareStack drives a request through the full chain and
// checks every layer: request ID honored and echoed, route tagged,
// access log structured, timing observed, panic recovered.
func TestMiddlewareStack(t *testing.T) {
	var logBuf bytes.Buffer
	logger, err := NewLogger(&logBuf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	type obsRec struct {
		route  string
		status int
		bytes  int64
	}
	var observed []obsRec

	mux := http.NewServeMux()
	mux.HandleFunc("GET /ok", func(w http.ResponseWriter, r *http.Request) {
		SetRoute(r.Context(), "GET /ok")
		fmt.Fprintf(w, "id=%s", RequestID(r.Context()))
	})
	mux.HandleFunc("GET /boom", func(w http.ResponseWriter, r *http.Request) {
		SetRoute(r.Context(), "GET /boom")
		panic("kaboom")
	})
	h := Chain(mux,
		RequestIDs(),
		Logging(logger, time.Hour),
		Timing(func(_ *http.Request, route string, status int, bytes int64, _ time.Duration) {
			observed = append(observed, obsRec{route, status, bytes})
		}),
		Recover(func(w http.ResponseWriter, r *http.Request, v any) {
			http.Error(w, fmt.Sprint(v), http.StatusInternalServerError)
		}),
	)

	// A request with a client-supplied ID keeps it end to end.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/ok", nil)
	req.Header.Set(RequestIDHeader, "client-id-7")
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); got != "client-id-7" {
		t.Errorf("echoed id = %q, want client-id-7", got)
	}
	if body := rec.Body.String(); body != "id=client-id-7" {
		t.Errorf("handler saw %q", body)
	}

	// A malformed inbound ID is replaced, never propagated.
	rec = httptest.NewRecorder()
	req = httptest.NewRequest("GET", "/ok", nil)
	req.Header.Set(RequestIDHeader, "evil id\nwith=injection")
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); got == "" || strings.Contains(got, "evil") {
		t.Errorf("malformed id not replaced: %q", got)
	}

	// A panic becomes the Recover handler's 500.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("panic status = %d, want 500", rec.Code)
	}

	// A 404 is observed under the unmatched route label.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown path status = %d, want 404", rec.Code)
	}

	if len(observed) != 4 {
		t.Fatalf("observed %d requests, want 4", len(observed))
	}
	if observed[0].route != "GET /ok" || observed[0].status != 200 || observed[0].bytes == 0 {
		t.Errorf("observation 0 = %+v", observed[0])
	}
	if observed[2].route != "GET /boom" || observed[2].status != 500 {
		t.Errorf("panic observation = %+v", observed[2])
	}
	if observed[3].route != "unmatched" || observed[3].status != 404 {
		t.Errorf("404 observation = %+v", observed[3])
	}

	// The access log is valid JSON with the structured fields.
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("access log has %d lines, want 4:\n%s", len(lines), logBuf.String())
	}
	var entry map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("access log line not JSON: %v", err)
	}
	for _, field := range []string{"method", "path", "route", "status", "bytes", "dur_ms", "request_id"} {
		if _, ok := entry[field]; !ok {
			t.Errorf("access log missing field %q: %v", field, entry)
		}
	}
	if entry["request_id"] != "client-id-7" {
		t.Errorf("access log request_id = %v", entry["request_id"])
	}
	// The 500 from the panic is promoted to WARN.
	var panicEntry map[string]any
	if err := json.Unmarshal([]byte(lines[2]), &panicEntry); err != nil {
		t.Fatal(err)
	}
	if panicEntry["level"] != "WARN" {
		t.Errorf("5xx log level = %v, want WARN", panicEntry["level"])
	}
}

// TestSlowRequestPromotion: requests beyond the slow threshold log at
// WARN.
func TestSlowRequestPromotion(t *testing.T) {
	var logBuf bytes.Buffer
	logger, err := NewLogger(&logBuf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	slowH := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(5 * time.Millisecond)
		w.WriteHeader(http.StatusOK)
	})
	h := Chain(slowH, RequestIDs(), Logging(logger, time.Millisecond))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/slow", nil))

	var entry map[string]any
	if err := json.Unmarshal(logBuf.Bytes(), &entry); err != nil {
		t.Fatalf("log not JSON: %v\n%s", err, logBuf.String())
	}
	if entry["level"] != "WARN" || entry["msg"] != "slow request" {
		t.Errorf("slow request logged as %v %v, want WARN \"slow request\"", entry["level"], entry["msg"])
	}
}

func TestLoggerFlagParsing(t *testing.T) {
	if _, err := NewLogger(&bytes.Buffer{}, "verbose", "text"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := NewLogger(&bytes.Buffer{}, "info", "xml"); err == nil {
		t.Error("bad format accepted")
	}
	var b bytes.Buffer
	l, err := NewLogger(&b, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("dropped")
	l.Warn("kept")
	if out := b.String(); strings.Contains(out, "dropped") || !strings.Contains(out, "kept") {
		t.Errorf("level filter wrong: %s", out)
	}
	NopLogger().Info("nothing happens")
}
