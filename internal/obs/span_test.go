package obs

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestSpanTreeNesting(t *testing.T) {
	tr, root := NewTrace("req-1")
	if root.ID() != RootSpanID {
		t.Fatalf("root span ID = %d, want %d", root.ID(), RootSpanID)
	}
	ctx := ContextWithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatalf("TraceFrom returned %v, want the installed trace", got)
	}
	if got := SpanIDFrom(ctx); got != RootSpanID {
		t.Fatalf("SpanIDFrom = %d, want %d", got, RootSpanID)
	}

	ctx2, child := StartSpan(ctx, "child")
	if child == nil {
		t.Fatal("StartSpan returned a nil span with a trace in context")
	}
	if got := SpanIDFrom(ctx2); got != child.ID() {
		t.Fatalf("child context SpanIDFrom = %d, want %d", got, child.ID())
	}
	_, grand := StartSpan(ctx2, "grandchild")
	grand.SetAttr("k", "v")
	grand.SetError(true)
	grand.End()
	child.End()
	root.End()

	snap := tr.Snapshot()
	if len(snap.Spans) != 3 {
		t.Fatalf("snapshot has %d spans, want 3", len(snap.Spans))
	}
	byName := map[string]SpanData{}
	for _, sp := range snap.Spans {
		byName[sp.Name] = sp
	}
	if byName["child"].Parent != RootSpanID {
		t.Errorf("child parent = %d, want root %d", byName["child"].Parent, RootSpanID)
	}
	if byName["grandchild"].Parent != byName["child"].ID {
		t.Errorf("grandchild parent = %d, want child %d", byName["grandchild"].Parent, byName["child"].ID)
	}
	if !byName["grandchild"].Error {
		t.Error("grandchild span lost its error mark")
	}
	if len(byName["grandchild"].Attrs) != 1 || byName["grandchild"].Attrs[0].Key != "k" {
		t.Errorf("grandchild attrs = %v, want [{k v}]", byName["grandchild"].Attrs)
	}
	if !snap.Error {
		t.Error("trace with a failed span should report Error")
	}
	if !tr.HasError() {
		t.Error("HasError should be true after a failed span")
	}
}

func TestSpanNilSafety(t *testing.T) {
	// Work running outside any trace gets a nil span; every method must
	// be a no-op rather than a panic.
	ctx, sp := StartSpan(context.Background(), "orphan")
	if sp != nil {
		t.Fatalf("StartSpan without a trace returned %v, want nil", sp)
	}
	if got := SpanIDFrom(ctx); got != 0 {
		t.Fatalf("SpanIDFrom without a trace = %d, want 0", got)
	}
	sp.SetName("x")
	sp.SetAttr("k", "v")
	sp.SetError(true)
	sp.End()
	if sp.ID() != 0 {
		t.Fatalf("nil span ID = %d, want 0", sp.ID())
	}
	if tr := TraceFrom(ctx); tr != nil {
		t.Fatalf("TraceFrom without a trace = %v, want nil", tr)
	}
}

func TestTraceRetrospectiveSpans(t *testing.T) {
	tr, root := NewTrace("req-2")
	start := time.Now().Add(-50 * time.Millisecond)
	tr.AddSpan(RootSpanID, "queue_wait", start, 40*time.Millisecond, Attr{Key: "depth", Value: "3"})
	root.End()

	snap := tr.Snapshot()
	if len(snap.Spans) != 2 {
		t.Fatalf("snapshot has %d spans, want 2", len(snap.Spans))
	}
	var qw SpanData
	for _, sp := range snap.Spans {
		if sp.Name == "queue_wait" {
			qw = sp
		}
	}
	if qw.ID == 0 {
		t.Fatal("queue_wait span missing from snapshot")
	}
	if qw.MS < 39.9 || qw.MS > 40.1 {
		t.Errorf("queue_wait MS = %g, want 40", qw.MS)
	}
	if !qw.Start.Equal(start) {
		t.Errorf("queue_wait start = %v, want %v", qw.Start, start)
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr, root := NewTrace("req-3")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		tr.AddSpan(RootSpanID, "leaf", time.Now(), time.Millisecond)
	}
	// The root span always files even over the cap — a trace without
	// its root renders as all orphans.
	root.End()

	snap := tr.Snapshot()
	if len(snap.Spans) != maxSpansPerTrace+1 {
		t.Fatalf("retained %d spans, want cap %d + root", len(snap.Spans), maxSpansPerTrace)
	}
	if snap.Dropped != 10 {
		t.Fatalf("dropped = %d, want 10", snap.Dropped)
	}
	if snap.Spans[0].ID != RootSpanID {
		t.Fatalf("first span by ID = %d, want root %d", snap.Spans[0].ID, RootSpanID)
	}
}

func TestTracerRingBounds(t *testing.T) {
	tracer := NewTracer(4, 0)
	for i := 0; i < 10; i++ {
		tr, root := tracer.Begin(fmt.Sprintf("req-%d", i))
		root.End()
		tracer.Finish(tr, "/v1/run", http.StatusOK, time.Millisecond)
	}
	retained, pinned := tracer.Stats()
	if retained != 4 || pinned != 0 {
		t.Fatalf("stats = (%d, %d), want (4, 0)", retained, pinned)
	}
	if _, ok := tracer.Get("req-0"); ok {
		t.Error("oldest trace should have been evicted")
	}
	if _, ok := tracer.Get("req-9"); !ok {
		t.Error("newest trace should be retained")
	}
	if got := len(tracer.List()); got != 4 {
		t.Fatalf("List returned %d traces, want 4", got)
	}
}

func TestTracerTailSamplingPinsErrorsAndSlow(t *testing.T) {
	tracer := NewTracer(2, 100*time.Millisecond)

	// An error trace survives arbitrary general-ring churn.
	errTr, errRoot := tracer.Begin("req-err")
	errRoot.SetError(true)
	errRoot.End()
	tracer.Finish(errTr, "/v1/run", http.StatusInternalServerError, time.Millisecond)

	// A slow-but-successful trace is pinned by the latency threshold.
	slowTr, slowRoot := tracer.Begin("req-slow")
	slowRoot.End()
	tracer.Finish(slowTr, "/v1/run", http.StatusOK, 150*time.Millisecond)

	for i := 0; i < 20; i++ {
		tr, root := tracer.Begin(fmt.Sprintf("churn-%d", i))
		root.End()
		tracer.Finish(tr, "/v1/run", http.StatusOK, time.Millisecond)
	}

	got, ok := tracer.Get("req-err")
	if !ok {
		t.Fatal("error trace was evicted; tail sampling should pin it")
	}
	if !got.Pinned || !got.Error {
		t.Errorf("error trace pinned=%v error=%v, want true/true", got.Pinned, got.Error)
	}
	slow, ok := tracer.Get("req-slow")
	if !ok {
		t.Fatal("slow trace was evicted; tail sampling should pin it")
	}
	if !slow.Pinned {
		t.Error("slow trace should be pinned")
	}
	_, pinned := tracer.Stats()
	if pinned != 2 {
		t.Fatalf("pinned = %d, want 2", pinned)
	}
	// The pinned ring is bounded too.
	for i := 0; i < 5; i++ {
		tr, root := tracer.Begin(fmt.Sprintf("slow-%d", i))
		root.End()
		tracer.Finish(tr, "/v1/run", http.StatusOK, time.Second)
	}
	retained, pinned := tracer.Stats()
	if pinned != 2 {
		t.Fatalf("pinned ring grew to %d, want capacity 2", pinned)
	}
	if retained > 4 {
		t.Fatalf("retained = %d, want <= 2x capacity", retained)
	}
}

func TestTracingMiddleware(t *testing.T) {
	tracer := NewTracer(8, 0)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		SetRoute(r.Context(), "GET /v1/thing")
		_, sp := StartSpan(r.Context(), "work")
		sp.End()
		w.WriteHeader(http.StatusOK)
	})
	h := Chain(inner, RequestIDs(), Tracing(tracer))

	req := httptest.NewRequest(http.MethodGet, "/v1/thing", nil)
	req.Header.Set("X-Request-Id", "trace-mw-1")
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)

	data, ok := tracer.Get("trace-mw-1")
	if !ok {
		t.Fatal("middleware did not register the trace under the request ID")
	}
	if data.Name != "GET /v1/thing" {
		t.Errorf("trace name = %q, want the matched route", data.Name)
	}
	if len(data.Spans) != 2 {
		t.Fatalf("trace has %d spans, want root + work", len(data.Spans))
	}
	root := data.Spans[0]
	if root.ID != RootSpanID || root.Name != "GET /v1/thing" {
		t.Errorf("root span = %+v, want ID 1 named after the route", root)
	}
	if data.Spans[1].Parent != RootSpanID {
		t.Errorf("work span parent = %d, want root", data.Spans[1].Parent)
	}
	if data.Error || data.Pinned {
		t.Errorf("successful fast request pinned=%v error=%v, want false/false", data.Pinned, data.Error)
	}
}

func TestTracingMiddlewarePinsServerError(t *testing.T) {
	tracer := NewTracer(8, 0)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	})
	h := Chain(inner, RequestIDs(), Tracing(tracer))

	req := httptest.NewRequest(http.MethodGet, "/boom", nil)
	req.Header.Set("X-Request-Id", "trace-mw-err")
	h.ServeHTTP(httptest.NewRecorder(), req)

	data, ok := tracer.Get("trace-mw-err")
	if !ok {
		t.Fatal("error trace missing")
	}
	if !data.Pinned || !data.Error {
		t.Errorf("500 trace pinned=%v error=%v, want true/true", data.Pinned, data.Error)
	}
	if data.Name != "unmatched" {
		t.Errorf("trace name = %q, want unmatched for a route-less request", data.Name)
	}
}
