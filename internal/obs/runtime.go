package obs

import (
	"math"
	"runtime/metrics"
)

// This file samples the Go runtime's own telemetry (runtime/metrics)
// into a small fixed set the service renders as simd_go_* gauges:
// heap size, goroutine count, GC cycles, and latency quantiles for GC
// pauses and scheduler delays. Sampling happens at scrape time — the
// runtime maintains these counters continuously, so reading them is
// cheap and a dedicated polling goroutine would only add staleness.

// runtimeSamples is the fixed set of runtime/metrics names we read.
var runtimeSamples = []string{
	"/memory/classes/heap/objects:bytes",
	"/sched/goroutines:goroutines",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// Quantiles summarizes a runtime latency distribution.
type Quantiles struct {
	P50 float64
	P99 float64
	Max float64
}

// RuntimeStats is one sample of the process's runtime health.
type RuntimeStats struct {
	HeapBytes    uint64
	Goroutines   uint64
	GCCycles     uint64
	GCPause      Quantiles
	SchedLatency Quantiles
}

// SampleRuntime reads the current runtime telemetry.
func SampleRuntime() RuntimeStats {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)

	var out RuntimeStats
	for _, s := range samples {
		switch s.Name {
		case "/memory/classes/heap/objects:bytes":
			if s.Value.Kind() == metrics.KindUint64 {
				out.HeapBytes = s.Value.Uint64()
			}
		case "/sched/goroutines:goroutines":
			if s.Value.Kind() == metrics.KindUint64 {
				out.Goroutines = s.Value.Uint64()
			}
		case "/gc/cycles/total:gc-cycles":
			if s.Value.Kind() == metrics.KindUint64 {
				out.GCCycles = s.Value.Uint64()
			}
		case "/gc/pauses:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				out.GCPause = histQuantiles(s.Value.Float64Histogram())
			}
		case "/sched/latencies:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				out.SchedLatency = histQuantiles(s.Value.Float64Histogram())
			}
		}
	}
	return out
}

// histQuantiles approximates p50/p99/max from a runtime
// Float64Histogram. Each quantile reports the upper boundary of the
// bucket where the cumulative count crosses it; an infinite boundary
// falls back to the bucket's finite lower edge so gauges stay plottable.
func histQuantiles(h *metrics.Float64Histogram) Quantiles {
	if h == nil || len(h.Counts) == 0 {
		return Quantiles{}
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return Quantiles{}
	}
	// Bucket i spans (Buckets[i], Buckets[i+1]].
	upper := func(i int) float64 {
		v := h.Buckets[i+1]
		if math.IsInf(v, 1) {
			return h.Buckets[i]
		}
		if math.IsInf(v, -1) {
			return 0
		}
		return v
	}
	at := func(q float64) float64 {
		target := uint64(math.Ceil(q * float64(total)))
		var run uint64
		for i, c := range h.Counts {
			run += c
			if run >= target {
				return upper(i)
			}
		}
		return upper(len(h.Counts) - 1)
	}
	var q Quantiles
	q.P50 = at(0.50)
	q.P99 = at(0.99)
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] > 0 {
			q.Max = upper(i)
			break
		}
	}
	return q
}
