package obs

import (
	"log/slog"
	"net/http"
	"time"
)

// Middleware is one composable layer of the HTTP request path.
type Middleware func(http.Handler) http.Handler

// Chain wraps h in the given middlewares so that mw[0] is the
// OUTERMOST layer — requests traverse the list in order. The service
// assembles its stack once at construction:
//
//	obs.Chain(mux,
//	    obs.RequestIDs(),    // id in ctx + echoed header
//	    obs.Logging(l, 1*time.Second),
//	    obs.Timing(observe), // latency histogram + route counter
//	    obs.Recover(on500),  // panics become 500 envelopes
//	)
func Chain(h http.Handler, mw ...Middleware) http.Handler {
	for i := len(mw) - 1; i >= 0; i-- {
		h = mw[i](h)
	}
	return h
}

// Recorder captures the status code and body byte count a handler
// writes, so post-serve middleware (access log, latency metrics) can
// label by outcome. Wrap reuses an existing Recorder, so stacked
// middlewares share one instead of nesting wrappers.
type Recorder struct {
	http.ResponseWriter
	Status int
	Bytes  int64
}

// Wrap returns w as a Recorder, reusing one that an outer middleware
// already installed.
func Wrap(w http.ResponseWriter) *Recorder {
	if rec, ok := w.(*Recorder); ok {
		return rec
	}
	return &Recorder{ResponseWriter: w}
}

// WriteHeader records the first status code written.
func (r *Recorder) WriteHeader(status int) {
	if r.Status == 0 {
		r.Status = status
	}
	r.ResponseWriter.WriteHeader(status)
}

// Write counts body bytes, defaulting the status to 200 exactly like
// net/http does for handlers that never call WriteHeader.
func (r *Recorder) Write(p []byte) (int, error) {
	if r.Status == 0 {
		r.Status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.Bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so streaming handlers (the
// NDJSON job progress feed) keep working behind the stack.
func (r *Recorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (r *Recorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// StatusOrDefault is the recorded status, 200 when the handler wrote
// neither header nor body (net/http sends 200 on return).
func (r *Recorder) StatusOrDefault() int {
	if r.Status == 0 {
		return http.StatusOK
	}
	return r.Status
}

// RequestIDs is the identity layer: honor a well-formed inbound
// X-Request-Id (so a client or upstream proxy can pin its own
// correlation key), generate one otherwise, attach it to the request
// context, echo it in the response header, and install the route-tag
// holder the metrics and logging layers read. It sits outermost so
// every later layer — and the error envelope — sees the ID.
func RequestIDs() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := SanitizeRequestID(r.Header.Get(RequestIDHeader))
			if id == "" {
				id = NewRequestID()
			}
			ctx := WithRouteTag(WithRequestID(r.Context(), id))
			w.Header().Set(RequestIDHeader, id)
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
}

// Logging is the structured access log: one line per request with
// method, path, matched route, status, response bytes, duration and
// request ID. Requests slower than slow (or answered 5xx) are
// promoted to WARN so an operator tailing at INFO sees trouble
// without grepping. slow <= 0 disables promotion by latency.
func Logging(logger *slog.Logger, slow time.Duration) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rec := Wrap(w)
			start := time.Now()
			next.ServeHTTP(rec, r)
			elapsed := time.Since(start)

			route := Route(r.Context())
			if route == "" {
				route = "unmatched"
			}
			level := slog.LevelInfo
			msg := "request"
			if rec.StatusOrDefault() >= 500 {
				level, msg = slog.LevelWarn, "request failed"
			} else if slow > 0 && elapsed >= slow {
				level, msg = slog.LevelWarn, "slow request"
			}
			logger.LogAttrs(r.Context(), level, msg,
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", rec.StatusOrDefault()),
				slog.Int64("bytes", rec.Bytes),
				slog.Float64("dur_ms", float64(elapsed.Microseconds())/1000),
				slog.String("request_id", RequestID(r.Context())),
			)
		})
	}
}

// Timing feeds the latency observer: matched route (or "unmatched"),
// final status code, response bytes and elapsed time. The service
// points it at the simd_http_request_seconds histogram and the
// per-route request counter.
func Timing(observe func(r *http.Request, route string, status int, bytes int64, elapsed time.Duration)) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rec := Wrap(w)
			start := time.Now()
			next.ServeHTTP(rec, r)
			route := Route(r.Context())
			if route == "" {
				route = "unmatched"
			}
			observe(r, route, rec.StatusOrDefault(), rec.Bytes, time.Since(start))
		})
	}
}

// Recover converts handler panics into a response written by handle
// (the service writes its JSON error envelope and counts the panic).
// net/http's abort sentinel is re-raised — it is the protocol for
// deliberately torn-down responses, not a crash.
func Recover(handle func(w http.ResponseWriter, r *http.Request, v any)) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				v := recover()
				if v == nil {
					return
				}
				if v == http.ErrAbortHandler {
					panic(v)
				}
				handle(w, r, v)
			}()
			next.ServeHTTP(w, r)
		})
	}
}
