package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a structured logger for the service: level is
// debug|info|warn|error, format is text|json. Both flags map straight
// from cmd/simd's -log-level and -log-format.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "", "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (text|json)", format)
}

// NopLogger returns a logger that discards everything — the default
// for servers constructed without one, so library users and tests pay
// nothing for logging they did not ask for.
func NopLogger() *slog.Logger {
	return slog.New(nopHandler{})
}

// nopHandler drops records at the Enabled check, before any
// formatting work happens.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }
