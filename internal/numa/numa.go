// Package numa models the NUMA view the operating system exposes for
// each KNL memory mode, together with numactl-style allocation
// policies.
//
// In flat mode the node has two NUMA domains: node 0 is the 96 GB DDR
// (where the cores are), node 1 is the 16 GB cpu-less MCDRAM. The
// distance matrix is the one the paper prints in Table II (10/31).
// In cache mode only node 0 exists. In hybrid mode node 1 shrinks to
// the flat fraction of MCDRAM.
package numa

import (
	"fmt"
	"strings"

	"repro/internal/mem"
	"repro/internal/units"
)

// NodeID identifies a NUMA domain.
type NodeID int

// Node is one NUMA domain.
type Node struct {
	ID       NodeID
	Kind     mem.Kind
	Capacity units.Bytes
	HasCPUs  bool
}

// Topology is the OS view of the memory system.
type Topology struct {
	Nodes    []Node
	Distance [][]int
}

// MemMode mirrors the BIOS MCDRAM configuration options (§II).
type MemMode int

const (
	// FlatMode exposes MCDRAM as a separate NUMA node.
	FlatMode MemMode = iota
	// CacheMode hides MCDRAM behind a hardware-managed direct-mapped
	// memory-side cache; only the DDR node is visible.
	CacheMode
	// HybridMode splits MCDRAM: part cache, part flat node.
	HybridMode
)

// String names the mode as the paper does.
func (m MemMode) String() string {
	switch m {
	case FlatMode:
		return "flat"
	case CacheMode:
		return "cache"
	case HybridMode:
		return "hybrid"
	}
	return fmt.Sprintf("MemMode(%d)", int(m))
}

const (
	// LocalDistance and RemoteDistance reproduce Table II: the ACPI
	// SLIT distances reported by `numactl --hardware` on the testbed.
	LocalDistance  = 10
	RemoteDistance = 31
)

// NewTopology builds the OS topology for the given devices and mode.
// flatFraction is only used in hybrid mode and gives the portion of
// MCDRAM exposed as the flat node (the rest becomes cache).
func NewTopology(ddr, mcdram mem.DeviceSpec, mode MemMode, flatFraction float64) (*Topology, error) {
	if err := ddr.Validate(); err != nil {
		return nil, err
	}
	if err := mcdram.Validate(); err != nil {
		return nil, err
	}
	switch mode {
	case CacheMode:
		return &Topology{
			Nodes:    []Node{{ID: 0, Kind: mem.DDR, Capacity: ddr.Capacity, HasCPUs: true}},
			Distance: [][]int{{LocalDistance}},
		}, nil
	case FlatMode:
		flatFraction = 1.0
	case HybridMode:
		if flatFraction <= 0 || flatFraction >= 1 {
			return nil, fmt.Errorf("numa: hybrid flat fraction %v out of (0,1)", flatFraction)
		}
	default:
		return nil, fmt.Errorf("numa: unknown memory mode %v", mode)
	}
	hbmCap := units.Bytes(float64(mcdram.Capacity) * flatFraction)
	return &Topology{
		Nodes: []Node{
			{ID: 0, Kind: mem.DDR, Capacity: ddr.Capacity, HasCPUs: true},
			{ID: 1, Kind: mem.MCDRAM, Capacity: hbmCap, HasCPUs: false},
		},
		Distance: [][]int{
			{LocalDistance, RemoteDistance},
			{RemoteDistance, LocalDistance},
		},
	}, nil
}

// NodeByID returns the node with the given id.
func (t *Topology) NodeByID(id NodeID) (Node, error) {
	for _, n := range t.Nodes {
		if n.ID == id {
			return n, nil
		}
	}
	return Node{}, fmt.Errorf("numa: no node %d", id)
}

// HardwareString renders the topology in `numactl --hardware` style,
// matching the layout of Table II.
func (t *Topology) HardwareString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "available: %d nodes (", len(t.Nodes))
	for i, n := range t.Nodes {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "%d", n.ID)
	}
	b.WriteString(")\n")
	for _, n := range t.Nodes {
		cpus := ""
		if n.HasCPUs {
			cpus = "0-255"
		}
		fmt.Fprintf(&b, "node %d cpus: %s\n", n.ID, cpus)
		fmt.Fprintf(&b, "node %d size: %d MB (%s)\n", n.ID, int64(n.Capacity)/int64(units.MiB), n.Kind)
	}
	b.WriteString("node distances:\nnode ")
	for _, n := range t.Nodes {
		fmt.Fprintf(&b, "%4d ", n.ID)
	}
	b.WriteString("\n")
	for i, n := range t.Nodes {
		fmt.Fprintf(&b, "%4d:", n.ID)
		for j := range t.Nodes {
			fmt.Fprintf(&b, "%4d ", t.Distance[i][j])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// PolicyKind enumerates the numactl placement policies the paper uses.
type PolicyKind int

const (
	// Default allocates from node 0 (first-touch on the CPU node).
	Default PolicyKind = iota
	// Membind forces every allocation onto a node set and fails when
	// the set is exhausted (numactl --membind).
	Membind
	// Preferred tries a node first and falls back to the others
	// (numactl --preferred).
	Preferred
	// Interleave round-robins pages across a node set
	// (numactl --interleave).
	Interleave
)

// String names the policy like numactl flags do.
func (p PolicyKind) String() string {
	switch p {
	case Default:
		return "default"
	case Membind:
		return "membind"
	case Preferred:
		return "preferred"
	case Interleave:
		return "interleave"
	}
	return fmt.Sprintf("PolicyKind(%d)", int(p))
}

// Policy is a placement policy over a node set.
type Policy struct {
	Kind  PolicyKind
	Nodes []NodeID
}

// DefaultPolicy allocates from node 0.
func DefaultPolicy() Policy { return Policy{Kind: Default, Nodes: []NodeID{0}} }

// Bind returns a --membind policy.
func Bind(nodes ...NodeID) Policy { return Policy{Kind: Membind, Nodes: nodes} }

// Prefer returns a --preferred policy.
func Prefer(node NodeID) Policy { return Policy{Kind: Preferred, Nodes: []NodeID{node}} }

// InterleaveAll returns a --interleave policy over the given nodes.
func InterleaveAll(nodes ...NodeID) Policy { return Policy{Kind: Interleave, Nodes: nodes} }

// Validate checks the policy against a topology.
func (p Policy) Validate(t *Topology) error {
	if len(p.Nodes) == 0 {
		return fmt.Errorf("numa: policy %v has empty node set", p.Kind)
	}
	for _, id := range p.Nodes {
		if _, err := t.NodeByID(id); err != nil {
			return fmt.Errorf("numa: policy %v: %v", p.Kind, err)
		}
	}
	return nil
}

// String renders the policy numactl-style, e.g. "membind=1".
func (p Policy) String() string {
	ids := make([]string, len(p.Nodes))
	for i, n := range p.Nodes {
		ids[i] = fmt.Sprintf("%d", n)
	}
	return fmt.Sprintf("%s=%s", p.Kind, strings.Join(ids, ","))
}

// PlacementSequence returns the node order to try for the i-th page of
// an allocation under this policy. Membind and Default return just the
// bound set (no fallback); Preferred returns the preferred node then
// every other topology node; Interleave rotates the set by page index.
func (p Policy) PlacementSequence(t *Topology, pageIndex int64) []NodeID {
	switch p.Kind {
	case Preferred:
		seq := append([]NodeID(nil), p.Nodes...)
		for _, n := range t.Nodes {
			found := false
			for _, s := range seq {
				if s == n.ID {
					found = true
					break
				}
			}
			if !found {
				seq = append(seq, n.ID)
			}
		}
		return seq
	case Interleave:
		k := len(p.Nodes)
		seq := make([]NodeID, 0, k)
		start := int(pageIndex % int64(k))
		for i := 0; i < k; i++ {
			seq = append(seq, p.Nodes[(start+i)%k])
		}
		return seq
	default:
		return append([]NodeID(nil), p.Nodes...)
	}
}
