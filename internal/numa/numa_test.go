package numa

import (
	"strings"
	"testing"

	"repro/internal/knl"
	"repro/internal/units"
)

func topoFlat(t *testing.T) *Topology {
	t.Helper()
	c := knl.KNL7210()
	topo, err := NewTopology(c.DDR, c.MCDRAM, FlatMode, 0)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestFlatTopologyMatchesTableII(t *testing.T) {
	topo := topoFlat(t)
	if len(topo.Nodes) != 2 {
		t.Fatalf("flat mode should expose 2 nodes, got %d", len(topo.Nodes))
	}
	n0, _ := topo.NodeByID(0)
	n1, _ := topo.NodeByID(1)
	if !n0.HasCPUs || n1.HasCPUs {
		t.Error("CPUs must be on node 0 only (MCDRAM is a cpu-less node)")
	}
	if n0.Capacity != 96*units.GiB || n1.Capacity != 16*units.GiB {
		t.Errorf("capacities %v/%v, want 96/16 GiB", n0.Capacity, n1.Capacity)
	}
	// Table II distances.
	want := [][]int{{10, 31}, {31, 10}}
	for i := range want {
		for j := range want[i] {
			if topo.Distance[i][j] != want[i][j] {
				t.Errorf("distance[%d][%d] = %d, want %d", i, j, topo.Distance[i][j], want[i][j])
			}
		}
	}
}

func TestCacheTopologyMatchesTableII(t *testing.T) {
	c := knl.KNL7210()
	topo, err := NewTopology(c.DDR, c.MCDRAM, CacheMode, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Nodes) != 1 {
		t.Fatalf("cache mode should expose 1 node, got %d", len(topo.Nodes))
	}
	if topo.Distance[0][0] != 10 {
		t.Errorf("self distance = %d, want 10", topo.Distance[0][0])
	}
}

func TestHybridTopology(t *testing.T) {
	c := knl.KNL7210()
	topo, err := NewTopology(c.DDR, c.MCDRAM, HybridMode, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	n1, _ := topo.NodeByID(1)
	if n1.Capacity != 8*units.GiB {
		t.Errorf("hybrid 50%% flat node = %v, want 8 GiB", n1.Capacity)
	}
	if _, err := NewTopology(c.DDR, c.MCDRAM, HybridMode, 0); err == nil {
		t.Error("hybrid fraction 0 accepted")
	}
	if _, err := NewTopology(c.DDR, c.MCDRAM, HybridMode, 1); err == nil {
		t.Error("hybrid fraction 1 accepted")
	}
	if _, err := NewTopology(c.DDR, c.MCDRAM, MemMode(99), 0); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestMemModeString(t *testing.T) {
	if FlatMode.String() != "flat" || CacheMode.String() != "cache" || HybridMode.String() != "hybrid" {
		t.Fatal("mode names wrong")
	}
	if MemMode(5).String() != "MemMode(5)" {
		t.Fatal("unknown mode formatting")
	}
}

func TestHardwareString(t *testing.T) {
	topo := topoFlat(t)
	s := topo.HardwareString()
	for _, want := range []string{
		"available: 2 nodes (0,1)",
		"node 0 size: 98304 MB (DRAM)",
		"node 1 size: 16384 MB (MCDRAM)",
		"node distances:",
		"  10   31",
		"  31   10",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("HardwareString missing %q:\n%s", want, s)
		}
	}
}

func TestNodeByIDMissing(t *testing.T) {
	topo := topoFlat(t)
	if _, err := topo.NodeByID(7); err == nil {
		t.Error("missing node accepted")
	}
}

func TestPolicyValidate(t *testing.T) {
	topo := topoFlat(t)
	if err := Bind(0).Validate(topo); err != nil {
		t.Errorf("membind=0 invalid: %v", err)
	}
	if err := Bind(1).Validate(topo); err != nil {
		t.Errorf("membind=1 invalid: %v", err)
	}
	if err := Bind(3).Validate(topo); err == nil {
		t.Error("membind to missing node accepted")
	}
	if err := (Policy{Kind: Membind}).Validate(topo); err == nil {
		t.Error("empty node set accepted")
	}
}

func TestPolicyStrings(t *testing.T) {
	if got := Bind(1).String(); got != "membind=1" {
		t.Errorf("Bind(1) = %q", got)
	}
	if got := InterleaveAll(0, 1).String(); got != "interleave=0,1" {
		t.Errorf("InterleaveAll = %q", got)
	}
	if got := Prefer(1).String(); got != "preferred=1" {
		t.Errorf("Prefer = %q", got)
	}
	if got := DefaultPolicy().String(); got != "default=0" {
		t.Errorf("DefaultPolicy = %q", got)
	}
	if PolicyKind(9).String() != "PolicyKind(9)" {
		t.Error("unknown policy formatting")
	}
}

func TestPlacementSequences(t *testing.T) {
	topo := topoFlat(t)

	// Membind never falls back.
	seq := Bind(1).PlacementSequence(topo, 0)
	if len(seq) != 1 || seq[0] != 1 {
		t.Errorf("membind sequence = %v", seq)
	}

	// Preferred tries its node then the rest.
	seq = Prefer(1).PlacementSequence(topo, 0)
	if len(seq) != 2 || seq[0] != 1 || seq[1] != 0 {
		t.Errorf("preferred sequence = %v", seq)
	}

	// Interleave rotates with the page index.
	p := InterleaveAll(0, 1)
	s0 := p.PlacementSequence(topo, 0)
	s1 := p.PlacementSequence(topo, 1)
	s2 := p.PlacementSequence(topo, 2)
	if s0[0] != 0 || s1[0] != 1 || s2[0] != 0 {
		t.Errorf("interleave rotation wrong: %v %v %v", s0, s1, s2)
	}
}
