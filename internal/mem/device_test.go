package mem

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func testDDR() DeviceSpec {
	return DeviceSpec{
		Kind:        DDR,
		Capacity:    96 * units.GiB,
		Channels:    6,
		IdleLatency: 130.4,
		PeakBW:      units.GBps(90),
		EffSeqBW:    units.GBps(77),
	}
}

func testMCDRAM() DeviceSpec {
	return DeviceSpec{
		Kind:        MCDRAM,
		Capacity:    16 * units.GiB,
		Channels:    8,
		IdleLatency: 154.0,
		PeakBW:      units.GBps(450),
		EffSeqBW:    units.GBps(430),
	}
}

func TestKindString(t *testing.T) {
	if DDR.String() != "DRAM" || MCDRAM.String() != "MCDRAM" {
		t.Fatalf("kind names: %q %q", DDR.String(), MCDRAM.String())
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatalf("unknown kind: %q", Kind(9).String())
	}
}

func TestValidate(t *testing.T) {
	if err := testDDR().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := testDDR()
	bad.Capacity = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero capacity accepted")
	}
	bad = testDDR()
	bad.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero channels accepted")
	}
	bad = testDDR()
	bad.IdleLatency = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative latency accepted")
	}
	bad = testDDR()
	bad.EffSeqBW = bad.PeakBW + 1
	if err := bad.Validate(); err == nil {
		t.Error("eff > pin bandwidth accepted")
	}
	bad = testDDR()
	bad.PeakBW = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestAchievedConcurrencyLimited(t *testing.T) {
	d := testMCDRAM()
	// 794 outstanding lines at 154 ns idle => ~330 GB/s, the paper's
	// 64-thread single-HT STREAM number for HBM.
	bw, lat := d.Achieved(794)
	if bw.GBpsf() < 315 || bw.GBpsf() > 340 {
		t.Fatalf("achieved bw = %v, want ~330 GB/s", bw)
	}
	if lat < d.IdleLatency {
		t.Fatalf("loaded latency %v below idle %v", lat, d.IdleLatency)
	}
	// Regime 1: the achieved bandwidth is the demand at idle latency.
	recon := 794 * 64 / float64(d.IdleLatency)
	if math.Abs(recon-float64(bw)) > 1e-6*recon {
		t.Fatalf("demand mismatch: %v vs %v", recon, bw)
	}
}

func TestAchievedBandwidthLimited(t *testing.T) {
	d := testDDR()
	// Way more concurrency than DDR needs: pins at effective peak.
	bw, lat := d.Achieved(2000)
	if math.Abs(bw.GBpsf()-77) > 1e-9 {
		t.Fatalf("bw = %v, want pinned 77 GB/s", bw)
	}
	// Latency inflates to balance Little's law.
	want := 2000.0 * 64 / 77
	if math.Abs(float64(lat)-want) > 1e-6*want {
		t.Fatalf("lat = %v, want %v", lat, want)
	}
}

func TestAchievedZeroConcurrency(t *testing.T) {
	d := testDDR()
	bw, lat := d.Achieved(0)
	if bw != 0 || lat != d.IdleLatency {
		t.Fatalf("zero concurrency: bw=%v lat=%v", bw, lat)
	}
}

func TestLoadedLatencyMonotone(t *testing.T) {
	d := testDDR()
	prev := units.Nanoseconds(0)
	for u := 0.0; u <= 1.2; u += 0.01 {
		l := d.LoadedLatency(u)
		if l < prev {
			t.Fatalf("loaded latency not monotone at u=%v: %v < %v", u, l, prev)
		}
		prev = l
	}
	if d.LoadedLatency(-1) != d.LoadedLatency(0) {
		t.Fatal("negative utilization should clamp to 0")
	}
	if d.LoadedLatency(0) != d.IdleLatency {
		t.Fatalf("idle load latency = %v, want %v", d.LoadedLatency(0), d.IdleLatency)
	}
	if max := d.LoadedLatency(5); max > 3*d.IdleLatency+1e-9 {
		t.Fatalf("latency cap exceeded: %v", max)
	}
}

func TestAchievedMonotoneInConcurrencyProperty(t *testing.T) {
	d := testMCDRAM()
	f := func(a, b uint16) bool {
		x, y := float64(a), float64(b)
		if x > y {
			x, y = y, x
		}
		bwx, _ := d.Achieved(x)
		bwy, _ := d.Achieved(y)
		return bwy >= bwx-1e-9 // more concurrency never reduces bandwidth
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAchievedNeverExceedsPeakProperty(t *testing.T) {
	for _, d := range []DeviceSpec{testDDR(), testMCDRAM()} {
		d := d
		f := func(n uint32) bool {
			bw, lat := d.Achieved(float64(n))
			return bw <= d.EffSeqBW+1e-9 && lat >= d.IdleLatency-1e-9
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", d.Kind, err)
		}
	}
}

func TestConcurrencyForBandwidth(t *testing.T) {
	d := testMCDRAM()
	n := d.ConcurrencyForBandwidth(units.GBps(330))
	// 330 GB/s * 154 ns / 64 B = ~794 lines.
	if math.Abs(n-794.0625) > 0.01 {
		t.Fatalf("ConcurrencyForBandwidth = %v", n)
	}
	// DDR needs far less concurrency: that asymmetry is the paper's
	// entire hardware-threading story.
	if dn := testDDR().ConcurrencyForBandwidth(units.GBps(77)); dn > 200 {
		t.Fatalf("DDR should saturate with <200 lines, got %v", dn)
	}
}

func TestFitsIn(t *testing.T) {
	d := testMCDRAM()
	if !d.FitsIn(16 * units.GiB) {
		t.Error("16 GiB should fit in MCDRAM")
	}
	if d.FitsIn(16*units.GiB + 1) {
		t.Error("16 GiB + 1 should not fit")
	}
}
