// Package mem models the two memory technologies of a hybrid memory
// node: conventional DDR DRAM and on-package 3D-stacked MCDRAM (HBM).
//
// Each device is described by a DeviceSpec holding capacity, channel
// count, idle latency, and peak/effective bandwidth. On top of the
// spec the package implements the bandwidth–latency–concurrency model
// the paper uses to explain its results (§IV-B, Little's Law):
//
//	throughput = outstanding requests / latency
//
// with a two-regime closure: below saturation the device serves the
// demanded bandwidth at (mildly loaded) latency; at saturation the
// bandwidth pins to the effective peak and latency inflates so that
// Little's Law still holds for the offered concurrency.
package mem

import (
	"fmt"

	"repro/internal/units"
)

// Kind identifies a memory technology.
type Kind int

const (
	// DDR is conventional off-package DRAM (six DDR4 channels on KNL).
	DDR Kind = iota
	// MCDRAM is the on-package 3D-stacked high-bandwidth memory.
	MCDRAM
)

// String returns the conventional name for the technology.
func (k Kind) String() string {
	switch k {
	case DDR:
		return "DRAM"
	case MCDRAM:
		return "MCDRAM"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// DeviceSpec describes one memory device.
type DeviceSpec struct {
	Kind     Kind
	Capacity units.Bytes
	Channels int

	// IdleLatency is the unloaded access latency measured by a
	// dependent-load pointer chase (130.4 ns DDR4, 154.0 ns MCDRAM on
	// the paper's testbed).
	IdleLatency units.Nanoseconds

	// PeakBW is the pin bandwidth (~90 GB/s DDR, ~400+ GB/s MCDRAM).
	PeakBW units.BytesPerNS

	// EffSeqBW is the maximum bandwidth achievable by a well-formed
	// sequential stream with unbounded concurrency (77 GB/s DDR,
	// ~430 GB/s MCDRAM per the paper's STREAM measurements).
	EffSeqBW units.BytesPerNS
}

// Validate reports an error if the spec is internally inconsistent.
func (d DeviceSpec) Validate() error {
	switch {
	case d.Capacity <= 0:
		return fmt.Errorf("mem: %s capacity must be positive, got %v", d.Kind, d.Capacity)
	case d.Channels <= 0:
		return fmt.Errorf("mem: %s channel count must be positive, got %d", d.Kind, d.Channels)
	case d.IdleLatency <= 0:
		return fmt.Errorf("mem: %s idle latency must be positive, got %v", d.Kind, d.IdleLatency)
	case d.PeakBW <= 0 || d.EffSeqBW <= 0:
		return fmt.Errorf("mem: %s bandwidths must be positive", d.Kind)
	case d.EffSeqBW > d.PeakBW:
		return fmt.Errorf("mem: %s effective bandwidth %v exceeds pin bandwidth %v", d.Kind, d.EffSeqBW, d.PeakBW)
	}
	return nil
}

// Achieved solves the two-regime Little's Law model for a workload
// offering outstandingLines concurrent cache-line requests.
//
// Regime 1 (concurrency-limited): demanded bandwidth N*S/L is below
// the device's effective peak; the workload achieves its demand. The
// returned latency is the (mildly) loaded latency at that utilization;
// the demand itself is computed against idle latency, which is how the
// calibration constants are fitted.
//
// Regime 2 (bandwidth-limited): the device pins at effective peak and
// the observed latency inflates to N*S/peak so Little's Law balances.
func (d DeviceSpec) Achieved(outstandingLines float64) (units.BytesPerNS, units.Nanoseconds) {
	if outstandingLines <= 0 {
		return 0, d.IdleLatency
	}
	line := float64(units.CacheLine)
	demand := outstandingLines * line / float64(d.IdleLatency)
	peak := float64(d.EffSeqBW)
	if demand <= peak {
		return units.BytesPerNS(demand), d.LoadedLatency(demand / peak)
	}
	lat := units.Nanoseconds(outstandingLines * line / peak)
	return units.BytesPerNS(peak), lat
}

// LoadedLatency returns the access latency at a given utilization in
// [0,1). The curve is a standard convex queueing shape: near-idle
// latency at low load, sharp inflation approaching saturation. It is
// clamped to remain finite at u >= 1.
func (d DeviceSpec) LoadedLatency(util float64) units.Nanoseconds {
	if util < 0 {
		util = 0
	}
	const (
		knee = 0.80 // utilization where queueing becomes visible
		cap  = 3.0  // maximum inflation factor
	)
	if util <= knee {
		// Gentle linear term below the knee (few % inflation).
		return d.IdleLatency * units.Nanoseconds(1+0.10*util/knee)
	}
	if util >= 0.999 {
		return d.IdleLatency * cap
	}
	// Convex blow-up above the knee, clamped.
	x := (util - knee) / (1 - knee)
	f := 1.10 + (cap-1.10)*x*x/(x*x+(1-x))
	if f > cap {
		f = cap
	}
	return d.IdleLatency * units.Nanoseconds(f)
}

// ConcurrencyForBandwidth returns the outstanding-line count needed to
// sustain bw at idle latency (the inverse of Little's Law). Used by
// tests and the advisor to reason about threading requirements.
func (d DeviceSpec) ConcurrencyForBandwidth(bw units.BytesPerNS) float64 {
	return float64(bw) * float64(d.IdleLatency) / float64(units.CacheLine)
}

// FitsIn reports whether a working set fits in the device.
func (d DeviceSpec) FitsIn(ws units.Bytes) bool { return ws <= d.Capacity }
