package mem

import (
	"fmt"
	"sort"
)

// This file contains a small discrete-event model of a multi-channel,
// multi-bank memory device. It exists to validate, from first
// principles, the shape of the closed-form LoadedLatency curve the
// analytic engine uses: requests arriving faster than the banks can
// serve them queue up, and the average latency rises convexly toward
// saturation.

// ChannelSpec describes the timing of one memory channel.
type ChannelSpec struct {
	Banks int
	// RowHitNS is the access time on a row-buffer hit (CAS).
	RowHitNS float64
	// RowMissNS is the access time on a row conflict (PRE+ACT+CAS).
	RowMissNS float64
	// RowHitRatio is the fraction of accesses that hit the open row
	// (near zero for random traffic, high for streams).
	RowHitRatio float64
	// TransferNS is the data-burst occupancy of the channel per
	// 64-byte line.
	TransferNS float64
}

// DDR4ChannelSpec models one of KNL's six 2133 MHz DDR4 channels.
func DDR4ChannelSpec() ChannelSpec {
	return ChannelSpec{
		Banks:       16,
		RowHitNS:    14.06, // CL 15 at 2133
		RowMissNS:   45.0,  // tRP+tRCD+CL
		RowHitRatio: 0.6,
		TransferNS:  3.75, // 64 B burst at 17 GB/s per channel
	}
}

// MCDRAMChannelSpec models one of the eight MCDRAM EDC channels.
func MCDRAMChannelSpec() ChannelSpec {
	return ChannelSpec{
		Banks:       16,
		RowHitNS:    18.0, // MCDRAM trades latency for bandwidth
		RowMissNS:   52.0,
		RowHitRatio: 0.6,
		TransferNS:  1.14, // 64 B at ~56 GB/s per EDC
	}
}

// Validate checks the spec.
func (c ChannelSpec) Validate() error {
	if c.Banks <= 0 || c.RowHitNS <= 0 || c.RowMissNS < c.RowHitNS ||
		c.RowHitRatio < 0 || c.RowHitRatio > 1 || c.TransferNS <= 0 {
		return fmt.Errorf("mem: invalid channel spec %+v", c)
	}
	return nil
}

// Request is one line access offered to the device.
type Request struct {
	ArrivalNS float64
	Bank      int // target bank (callers hash addresses)
}

// ChannelResult summarizes a simulation.
type ChannelResult struct {
	Served       int
	AvgLatencyNS float64
	MaxLatencyNS float64
	// AchievedGBs is the delivered bandwidth over the simulated span.
	AchievedGBs float64
}

// SimulateChannel services requests through banks plus a shared data
// bus and returns latency statistics. Requests are sorted by arrival.
func SimulateChannel(spec ChannelSpec, reqs []Request) (ChannelResult, error) {
	if err := spec.Validate(); err != nil {
		return ChannelResult{}, err
	}
	if len(reqs) == 0 {
		return ChannelResult{}, fmt.Errorf("mem: no requests")
	}
	sorted := append([]Request(nil), reqs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ArrivalNS < sorted[j].ArrivalNS })

	bankFree := make([]float64, spec.Banks)
	busFree := 0.0
	var sum, max, lastDone float64
	for i, r := range sorted {
		if r.Bank < 0 {
			return ChannelResult{}, fmt.Errorf("mem: negative bank in request %d", i)
		}
		b := r.Bank % spec.Banks
		// Deterministic alternation approximates the row-hit mix.
		service := spec.RowMissNS
		if float64(i%100) < spec.RowHitRatio*100 {
			service = spec.RowHitNS
		}
		start := r.ArrivalNS
		if bankFree[b] > start {
			start = bankFree[b]
		}
		ready := start + service
		// The data burst needs the shared bus.
		burst := ready
		if busFree > burst {
			burst = busFree
		}
		done := burst + spec.TransferNS
		bankFree[b] = done
		busFree = done
		lat := done - r.ArrivalNS
		sum += lat
		if lat > max {
			max = lat
		}
		if done > lastDone {
			lastDone = done
		}
	}
	span := lastDone - sorted[0].ArrivalNS
	res := ChannelResult{
		Served:       len(sorted),
		AvgLatencyNS: sum / float64(len(sorted)),
		MaxLatencyNS: max,
	}
	if span > 0 {
		res.AchievedGBs = float64(len(sorted)) * 64 / span
	}
	return res, nil
}

// UniformLoad builds a request stream at a given offered bandwidth
// (GB/s) spread uniformly over banks for `count` requests.
func UniformLoad(spec ChannelSpec, offeredGBs float64, count int) ([]Request, error) {
	if offeredGBs <= 0 || count <= 0 {
		return nil, fmt.Errorf("mem: offered load and count must be positive")
	}
	gapNS := 64 / offeredGBs
	reqs := make([]Request, count)
	for i := range reqs {
		reqs[i] = Request{
			ArrivalNS: float64(i) * gapNS,
			Bank:      int(uint64(i) * 2654435761 % uint64(spec.Banks)),
		}
	}
	return reqs, nil
}

// LatencyLoadCurve sweeps offered load and returns (utilization,
// avg latency) pairs; tests compare its shape against LoadedLatency.
func LatencyLoadCurve(spec ChannelSpec, peakGBs float64, points int) ([][2]float64, error) {
	if points <= 1 || peakGBs <= 0 {
		return nil, fmt.Errorf("mem: need >1 points and positive peak")
	}
	var out [][2]float64
	for p := 1; p <= points; p++ {
		util := float64(p) / float64(points+1)
		reqs, err := UniformLoad(spec, util*peakGBs, 4000)
		if err != nil {
			return nil, err
		}
		res, err := SimulateChannel(spec, reqs)
		if err != nil {
			return nil, err
		}
		out = append(out, [2]float64{util, res.AvgLatencyNS})
	}
	return out, nil
}
