package mem

import (
	"testing"

	"repro/internal/units"
)

func TestChannelSpecValidate(t *testing.T) {
	if err := DDR4ChannelSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := MCDRAMChannelSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DDR4ChannelSpec()
	bad.Banks = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero banks accepted")
	}
	bad = DDR4ChannelSpec()
	bad.RowMissNS = 1
	if err := bad.Validate(); err == nil {
		t.Error("miss faster than hit accepted")
	}
	bad = DDR4ChannelSpec()
	bad.RowHitRatio = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("hit ratio > 1 accepted")
	}
}

func TestSimulateChannelLightLoad(t *testing.T) {
	spec := DDR4ChannelSpec()
	reqs, err := UniformLoad(spec, 1.0, 500) // 1 GB/s: near idle
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateChannel(spec, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 500 {
		t.Fatalf("served %d", res.Served)
	}
	// Near-idle latency is between the hit and miss service times
	// plus the transfer.
	lo := spec.RowHitNS + spec.TransferNS
	hi := spec.RowMissNS + spec.TransferNS + 1
	if res.AvgLatencyNS < lo || res.AvgLatencyNS > hi {
		t.Fatalf("idle latency %.1f outside [%.1f, %.1f]", res.AvgLatencyNS, lo, hi)
	}
}

func TestSimulateChannelSaturation(t *testing.T) {
	spec := DDR4ChannelSpec()
	// Offered load far above the ~17 GB/s channel: queueing blows up
	// and the achieved bandwidth pins near the bus limit.
	reqs, _ := UniformLoad(spec, 60, 4000)
	res, err := SimulateChannel(spec, reqs)
	if err != nil {
		t.Fatal(err)
	}
	busLimit := 64 / spec.TransferNS
	if res.AchievedGBs > busLimit*1.02 {
		t.Fatalf("achieved %.1f GB/s exceeds bus limit %.1f", res.AchievedGBs, busLimit)
	}
	if res.AchievedGBs < busLimit*0.75 {
		t.Fatalf("achieved %.1f GB/s far below bus limit %.1f under saturation", res.AchievedGBs, busLimit)
	}
	light, _ := UniformLoad(spec, 2, 4000)
	lres, _ := SimulateChannel(spec, light)
	if res.AvgLatencyNS < 3*lres.AvgLatencyNS {
		t.Fatalf("saturated latency %.1f not >> idle %.1f", res.AvgLatencyNS, lres.AvgLatencyNS)
	}
}

func TestSimulateChannelErrors(t *testing.T) {
	spec := DDR4ChannelSpec()
	if _, err := SimulateChannel(spec, nil); err == nil {
		t.Error("empty request list accepted")
	}
	if _, err := SimulateChannel(spec, []Request{{Bank: -1}}); err == nil {
		t.Error("negative bank accepted")
	}
	if _, err := UniformLoad(spec, 0, 10); err == nil {
		t.Error("zero load accepted")
	}
	if _, err := UniformLoad(spec, 1, 0); err == nil {
		t.Error("zero count accepted")
	}
	bad := spec
	bad.Banks = 0
	if _, err := SimulateChannel(bad, []Request{{}}); err == nil {
		t.Error("invalid spec accepted")
	}
}

// The discrete-event curve must have the same qualitative shape as
// the closed-form LoadedLatency: monotone, gentle below the knee,
// steep near saturation.
func TestLatencyLoadCurveMatchesClosedFormShape(t *testing.T) {
	spec := DDR4ChannelSpec()
	const peak = 15 // GB/s achievable per channel with this mix
	curve, err := LatencyLoadCurve(spec, peak, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Monotone nondecreasing (allow 2% measurement noise).
	for i := 1; i < len(curve); i++ {
		if curve[i][1] < curve[i-1][1]*0.98 {
			t.Fatalf("latency fell with load at u=%.2f: %.1f -> %.1f",
				curve[i][0], curve[i-1][1], curve[i][1])
		}
	}
	// Convexity at the tail: the last step grows more than the first.
	first := curve[1][1] - curve[0][1]
	last := curve[len(curve)-1][1] - curve[len(curve)-2][1]
	if last <= first {
		t.Fatalf("curve not convex near saturation: first step %.2f, last %.2f", first, last)
	}
	// Compare against the closed form used by the engine.
	dev := DeviceSpec{
		Kind: DDR, Capacity: 1 << 30, Channels: 1,
		IdleLatency: units.Nanoseconds(curve[0][1]),
		PeakBW:      units.GBps(17), EffSeqBW: units.GBps(15),
	}
	for _, pt := range curve[:len(curve)-2] { // closed form is clamped at the top
		closed := float64(dev.LoadedLatency(pt[0]))
		if pt[1] > closed*3.2 {
			t.Errorf("u=%.2f: event-driven %.1f vs closed-form %.1f — shapes diverged", pt[0], pt[1], closed)
		}
	}
}
