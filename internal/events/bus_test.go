package events

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestPublishFansOutToEverySubscriber(t *testing.T) {
	b := NewBus()
	a := b.Subscribe("j1", 0)
	c := b.Subscribe("j1", 0)
	defer a.Close()
	defer c.Close()

	b.Publish(Event{Job: "j1", Type: TypeState, State: "running"})
	b.Publish(Event{Job: "j1", Type: TypePoint, Point: "k1"})

	for name, sub := range map[string]*Subscription{"a": a, "c": c} {
		ev1, ok := sub.Next()
		if !ok || ev1.Type != TypeState || ev1.State != "running" {
			t.Fatalf("%s: first event = %+v/%v, want the state event", name, ev1, ok)
		}
		if ev1.Seq != 1 {
			t.Errorf("%s: first seq = %d, want 1", name, ev1.Seq)
		}
		if ev1.Time.IsZero() {
			t.Errorf("%s: event time not stamped", name)
		}
		ev2, ok := sub.Next()
		if !ok || ev2.Type != TypePoint || ev2.Point != "k1" {
			t.Fatalf("%s: second event = %+v/%v, want the point event", name, ev2, ok)
		}
		if _, ok := sub.Next(); ok {
			t.Fatalf("%s: queue should be drained", name)
		}
	}
}

func TestPublishToUnwatchedJobDiscards(t *testing.T) {
	b := NewBus()
	b.Publish(Event{Job: "nobody", Type: TypeState, State: "done"})
	published, dropped, subs := b.Stats()
	if published != 1 || subs != 0 {
		t.Fatalf("stats = (%d, %d, %d), want 1 published, 0 subscribers", published, dropped, subs)
	}
	// Subscribing later must not resurrect the discarded event.
	s := b.Subscribe("nobody", 0)
	defer s.Close()
	if _, ok := s.Next(); ok {
		t.Fatal("late subscriber received an event published before it existed")
	}
}

func TestCloseFreesSubscriberSlot(t *testing.T) {
	b := NewBus()
	s1 := b.Subscribe("j1", 0)
	s2 := b.Subscribe("j1", 0)
	if got := b.SubscriberCount("j1"); got != 2 {
		t.Fatalf("subscriber count = %d, want 2", got)
	}
	s1.Close()
	if got := b.SubscriberCount("j1"); got != 1 {
		t.Fatalf("after one close count = %d, want 1", got)
	}
	s1.Close() // idempotent
	if got := b.SubscriberCount("j1"); got != 1 {
		t.Fatalf("double close changed the count to %d", got)
	}
	b.Publish(Event{Job: "j1", Type: TypeState, State: "running"})
	if _, ok := s1.Next(); ok {
		t.Fatal("closed subscription received an event")
	}
	if _, ok := s2.Next(); !ok {
		t.Fatal("surviving subscription missed the event")
	}
	s2.Close()
	if got := b.SubscriberCount("j1"); got != 0 {
		t.Fatalf("after both close count = %d, want 0", got)
	}
}

func TestSlowSubscriberCoalescesProgress(t *testing.T) {
	b := NewBus()
	s := b.Subscribe("j1", 4)
	defer s.Close()

	b.Publish(Event{Job: "j1", Type: TypeState, State: "running"})
	for i := 1; i <= 10; i++ {
		b.Publish(Event{Job: "j1", Type: TypeProgress, Done: i, Total: 10})
	}

	var got []Event
	for {
		ev, ok := s.Next()
		if !ok {
			break
		}
		got = append(got, ev)
	}
	if len(got) != 4 {
		t.Fatalf("drained %d events, want the queue bound 4", len(got))
	}
	if got[0].Type != TypeState {
		t.Fatalf("first drained event = %+v, want the state event to survive", got[0])
	}
	last := got[len(got)-1]
	if last.Type != TypeProgress || last.Done != 10 {
		t.Fatalf("newest progress = %+v, want the final done=10 tick (coalesced)", last)
	}
	if s.Dropped() != 7 {
		t.Errorf("dropped = %d, want 7 coalesced ticks", s.Dropped())
	}
}

func TestStateOutranksOldestWhenFull(t *testing.T) {
	b := NewBus()
	s := b.Subscribe("j1", 2)
	defer s.Close()

	b.Publish(Event{Job: "j1", Type: TypeState, State: "queued"})
	b.Publish(Event{Job: "j1", Type: TypeState, State: "running"})
	// Queue full of states: an incoming point is dropped outright...
	b.Publish(Event{Job: "j1", Type: TypePoint, Point: "k1"})
	// ...but a terminal state evicts the oldest entry.
	b.Publish(Event{Job: "j1", Type: TypeState, State: "done", Final: true})

	ev1, _ := s.Next()
	ev2, _ := s.Next()
	if ev1.State != "running" || ev2.State != "done" {
		t.Fatalf("drained %q then %q, want running then done", ev1.State, ev2.State)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("dropped point event reappeared")
	}
	if s.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2 (point + evicted queued state)", s.Dropped())
	}
}

// TestConcurrentSubscribersUnderRace exercises the bus the way the
// service does — one publisher goroutine per job event source, many
// subscribers attaching, draining and detaching concurrently — and is
// meaningful mainly under -race.
func TestConcurrentSubscribersUnderRace(t *testing.T) {
	b := NewBus()
	const subscribers = 8
	const events = 200

	var wg sync.WaitGroup
	for i := 0; i < subscribers; i++ {
		// Subscribe before publishing starts so every goroutine is
		// guaranteed to see the final event.
		s := b.Subscribe("j1", 16)
		wg.Add(1)
		go func(i int, s *Subscription) {
			defer wg.Done()
			defer s.Close()
			deadline := time.After(5 * time.Second)
			for {
				ev, ok := s.Next()
				if !ok {
					select {
					case <-s.Ready():
						continue
					case <-deadline:
						t.Errorf("subscriber %d: no final event within deadline", i)
						return
					}
				}
				if ev.Final {
					return
				}
			}
		}(i, s)
	}
	// A disconnecting subscriber churns the topic list mid-publish.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s := b.Subscribe("j1", 1)
			s.Next()
			s.Close()
		}
	}()

	for i := 0; i < events; i++ {
		b.Publish(Event{Job: "j1", Type: TypeProgress, Done: i, Total: events})
	}
	b.Publish(Event{Job: "j1", Type: TypeState, State: "done", Final: true})
	wg.Wait()

	if got := b.SubscriberCount("j1"); got != 0 {
		t.Fatalf("subscriber count after all closed = %d, want 0", got)
	}
}

// TestSlowSubscriberNeverBlocksPublisher pins the bus's core contract:
// publishing to a subscriber that never drains completes immediately.
func TestSlowSubscriberNeverBlocksPublisher(t *testing.T) {
	b := NewBus()
	s := b.Subscribe("j1", 2)
	defer s.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10_000; i++ {
			b.Publish(Event{Job: "j1", Type: TypeProgress, Done: i})
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("publisher blocked on a slow subscriber")
	}
	if s.Dropped() == 0 {
		t.Error("slow subscriber should have recorded drops")
	}
	published, dropped, _ := b.Stats()
	if published != 10_000 {
		t.Fatalf("published = %d, want 10000", published)
	}
	if dropped == 0 {
		t.Error("bus-level dropped counter should be non-zero")
	}
}

func TestSequencePerJob(t *testing.T) {
	b := NewBus()
	s1 := b.Subscribe("a", 0)
	s2 := b.Subscribe("b", 0)
	defer s1.Close()
	defer s2.Close()
	for i := 0; i < 3; i++ {
		b.Publish(Event{Job: "a", Type: TypeProgress, Done: i})
	}
	b.Publish(Event{Job: "b", Type: TypeState, State: "running"})

	for want := uint64(1); want <= 3; want++ {
		ev, ok := s1.Next()
		if !ok || ev.Seq != want {
			t.Fatalf("job a event = %+v/%v, want seq %d", ev, ok, want)
		}
	}
	ev, ok := s2.Next()
	if !ok || ev.Seq != 1 {
		t.Fatalf("job b event = %+v/%v, want its own seq 1", ev, ok)
	}
}

func TestDefaultQueueBound(t *testing.T) {
	b := NewBus()
	s := b.Subscribe("j1", 0)
	defer s.Close()
	for i := 0; i < DefaultQueue+50; i++ {
		b.Publish(Event{Job: "j1", Type: TypePoint, Point: fmt.Sprintf("k%d", i)})
	}
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != DefaultQueue {
		t.Fatalf("retained %d events, want the default bound %d", n, DefaultQueue)
	}
	if s.Dropped() != 50 {
		t.Fatalf("dropped = %d, want 50", s.Dropped())
	}
}
