// Package events is an in-process publish/subscribe bus for live job
// telemetry: the service publishes job state transitions and per-point
// campaign progress, and any number of SSE watchers subscribe to one
// job without re-running it. Delivery is best-effort by design — each
// subscriber owns a bounded queue, and a subscriber that cannot keep
// up has its progress events coalesced and its oldest droppable events
// discarded rather than ever blocking the publisher (a worker goroutine
// mid-campaign must never wait on a slow network reader).
package events

import (
	"sync"
	"sync/atomic"
	"time"
)

// Type classifies one event.
type Type string

// Event types.
const (
	// TypeState is a job lifecycle transition (queued, running, done,
	// failed). Terminal transitions carry Final=true.
	TypeState Type = "state"
	// TypePoint is one campaign point completed (or failed), keyed by
	// its content address.
	TypePoint Type = "point"
	// TypeProgress is a coarse done/total tick. Progress events are the
	// first to be coalesced under backpressure.
	TypeProgress Type = "progress"
)

// Event is one published occurrence on a job's feed.
type Event struct {
	Seq   uint64    `json:"seq"`
	Time  time.Time `json:"time"`
	Job   string    `json:"job"`
	Type  Type      `json:"type"`
	State string    `json:"state,omitempty"`
	Done  int       `json:"done,omitempty"`
	Total int       `json:"total,omitempty"`
	// Point is the completed point's content-address key.
	Point    string `json:"point,omitempty"`
	Workload string `json:"workload,omitempty"`
	Cached   bool   `json:"cached,omitempty"`
	Error    string `json:"error,omitempty"`
	// Final marks the last event a feed will ever carry: the job
	// reached a terminal state.
	Final bool `json:"final,omitempty"`
}

// DefaultQueue is the per-subscriber queue bound when Subscribe gets
// max <= 0.
const DefaultQueue = 256

// Bus fans events out to per-job subscriber lists.
type Bus struct {
	mu     sync.Mutex
	topics map[string]*topic // guarded by mu

	published atomic.Int64
	dropped   atomic.Int64
}

// topic is one job's subscriber list and sequence counter.
type topic struct {
	seq  uint64
	subs []*Subscription
}

// NewBus builds an empty bus.
func NewBus() *Bus {
	return &Bus{topics: make(map[string]*topic)}
}

// Subscribe opens a feed on one job with a bounded queue (max <= 0:
// DefaultQueue). Close the subscription to free its slot.
func (b *Bus) Subscribe(job string, max int) *Subscription {
	if max <= 0 {
		max = DefaultQueue
	}
	s := &Subscription{bus: b, job: job, max: max, notify: make(chan struct{}, 1)}
	b.mu.Lock()
	t := b.topics[job]
	if t == nil {
		t = &topic{}
		b.topics[job] = t
	}
	t.subs = append(t.subs, s)
	b.mu.Unlock()
	return s
}

// Publish delivers an event to every subscriber of its job. It never
// blocks: full subscriber queues coalesce or drop instead. Events
// published to a job nobody watches are counted and discarded.
func (b *Bus) Publish(ev Event) {
	b.published.Add(1)
	ev.Time = time.Now()
	b.mu.Lock()
	t := b.topics[ev.Job]
	if t == nil {
		b.mu.Unlock()
		return
	}
	t.seq++
	ev.Seq = t.seq
	subs := append([]*Subscription(nil), t.subs...)
	b.mu.Unlock()
	for _, s := range subs {
		s.push(ev)
	}
}

// SubscriberCount reports how many subscriptions a job currently has.
func (b *Bus) SubscriberCount(job string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.topics[job]
	if t == nil {
		return 0
	}
	return len(t.subs)
}

// Stats returns (published, dropped, subscribers) for /metrics.
func (b *Bus) Stats() (published, dropped int64, subscribers int) {
	b.mu.Lock()
	for _, t := range b.topics {
		subscribers += len(t.subs)
	}
	b.mu.Unlock()
	return b.published.Load(), b.dropped.Load(), subscribers
}

// unsubscribe removes one subscription, dropping the topic when it was
// the last watcher.
func (b *Bus) unsubscribe(s *Subscription) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.topics[s.job]
	if t == nil {
		return
	}
	for i, cand := range t.subs {
		if cand == s {
			t.subs = append(t.subs[:i], t.subs[i+1:]...)
			break
		}
	}
	if len(t.subs) == 0 {
		delete(b.topics, s.job)
	}
}

// Subscription is one subscriber's bounded feed. Consume with Next;
// block on Ready between drains.
type Subscription struct {
	bus    *Bus
	job    string
	max    int
	notify chan struct{}

	mu      sync.Mutex
	queue   []Event // pending events, oldest first; guarded by mu
	dropped int     // events this subscriber lost; guarded by mu
	closed  bool    // guarded by mu
}

// push enqueues one event, applying the slow-subscriber policy when
// the queue is full: an incoming progress event coalesces into the
// newest pending progress event; otherwise the oldest progress (then
// point) event is evicted. If only state events remain queued, an
// incoming progress/point event is dropped outright — lifecycle
// transitions always survive and always find room.
func (s *Subscription) push(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if len(s.queue) >= s.max {
		if ev.Type == TypeProgress {
			for i := len(s.queue) - 1; i >= 0; i-- {
				if s.queue[i].Type == TypeProgress {
					s.queue[i] = ev
					s.dropped++
					s.bus.dropped.Add(1)
					s.notifyLocked()
					return
				}
			}
		}
		if !s.evictLocked(TypeProgress) && !s.evictLocked(TypePoint) {
			if ev.Type != TypeState {
				s.dropped++
				s.bus.dropped.Add(1)
				return
			}
			// A state event outranks whatever is oldest.
			s.queue = s.queue[1:]
			s.dropped++
			s.bus.dropped.Add(1)
		}
	}
	s.queue = append(s.queue, ev)
	s.notifyLocked()
}

// evictLocked drops the oldest queued event of one type, reporting
// whether it made room. Callers hold s.mu.
func (s *Subscription) evictLocked(t Type) bool {
	for i, q := range s.queue {
		if q.Type == t {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.dropped++
			s.bus.dropped.Add(1)
			return true
		}
	}
	return false
}

// notifyLocked pulses the readiness channel. Callers hold s.mu.
func (s *Subscription) notifyLocked() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Next pops the oldest pending event, reporting false when the queue
// is empty.
func (s *Subscription) Next() (Event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 {
		return Event{}, false
	}
	ev := s.queue[0]
	s.queue = s.queue[1:]
	return ev, true
}

// Ready pulses when new events may be pending; drain with Next until
// it reports false, then block on Ready again.
func (s *Subscription) Ready() <-chan struct{} { return s.notify }

// Dropped reports how many events this subscriber lost to the
// slow-subscriber policy (coalesced or evicted).
func (s *Subscription) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close frees the subscriber slot. Pending events are discarded;
// further pushes are no-ops.
func (s *Subscription) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.queue = nil
	s.mu.Unlock()
	s.bus.unsubscribe(s)
}
