package journal

import (
	"fmt"
	"sync"
	"testing"
)

// TestJournalConcurrentAppendStats is the guardedby audit's
// regression pin for the journal: workers finishing jobs append
// terminal states while the metrics scrape reads Stats and a
// compaction rewrites the file — every access to the `guarded by mu`
// fields (f, entries, quarantined) at once. Run under -race -count=2
// it pins the locking the analyzer now enforces statically.
func TestJournalConcurrentAppendStats(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				e := Entry{State: StateAccepted, Job: fmt.Sprintf("j%02d%04d", g, i), Kind: "campaign"}
				if err := j.Append(e); err != nil {
					t.Errorf("append: %v", err)
					return
				}
				j.Stats()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := j.Compact([]Entry{{State: StateAccepted, Job: "keep", Kind: "campaign"}}); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	entries, quarantined := j.Stats()
	if entries < 1 {
		t.Fatalf("journal lost every entry: entries=%d", entries)
	}
	if quarantined != 0 {
		t.Fatalf("clean run quarantined %d bytes", quarantined)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// The file must replay cleanly after the concurrent interleaving:
	// frames were never torn by racing writers.
	j2, replayed, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(replayed) == 0 {
		t.Fatal("nothing replayed after concurrent appends")
	}
	if _, q := j2.Stats(); q != 0 {
		t.Fatalf("reopen quarantined %d bytes — a frame was torn", q)
	}
}
