// Package journal is the crash-safety layer of the simulation
// service: an append-only, CRC-framed job journal plus a
// content-addressed durable result store, both written through the
// faultfs filesystem interface so fault-injection tests can kill them
// mid-write and prove the recovery invariants — a reopened journal
// serves no corrupt entry, loses no fully appended record, and
// quarantines (never silently drops) whatever a crash tore.
//
// The on-disk grammar extends the tracestore pattern (temp file +
// atomic rename, checksummed payloads). The journal file is a
// sequence of frames:
//
//	[4B little-endian payload length][4B CRC32(payload)][payload JSON]
//
// Appends write one whole frame with a single Write call followed by
// fsync, so 202 Accepted is never returned before the acceptance
// record is durable. A crash can only tear the final frame; Open
// detects the torn tail by length/CRC, copies it to a quarantine
// file, and truncates the journal back to the last intact frame.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	// frameHeaderSize is the fixed per-frame prefix: payload length +
	// payload CRC32.
	frameHeaderSize = 8
	// maxFramePayload bounds what a reader will allocate for one
	// frame, so a scribbled length field cannot demand gigabytes.
	// Campaign results can run to thousands of points; 64 MiB is far
	// above any real entry.
	maxFramePayload = 64 << 20
)

// appendFrame encodes one payload as a frame. The whole frame is
// returned as a single buffer so callers can issue it as one write —
// the property that keeps torn appends confined to the final frame.
func appendFrame(payload []byte) []byte {
	buf := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeaderSize:], payload)
	return buf
}

// readFrame reads and validates one frame from r. It returns io.EOF
// at a clean end of stream; any other error means the remaining bytes
// are torn or corrupt and must not be served.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("journal: torn frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n == 0 || n > maxFramePayload {
		return nil, fmt.Errorf("journal: implausible frame length %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("journal: torn frame payload: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(hdr[4:8]); got != want {
		return nil, fmt.Errorf("journal: frame checksum mismatch (%#x != %#x)", got, want)
	}
	return payload, nil
}
