package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/faultfs"
)

// Entry states: the job lifecycle as the journal records it.
const (
	// StateAccepted is appended before the HTTP 202: the job is
	// durably owed an execution.
	StateAccepted = "accepted"
	// StateDone and StateFailed are terminal.
	StateDone   = "done"
	StateFailed = "failed"
	// StateInterrupted marks jobs a shutdown abandoned mid-run; a
	// reopened journal re-enqueues them exactly like accepted entries
	// with no terminal record.
	StateInterrupted = "interrupted"
)

// Entry is one journal record. Accepted entries carry the job's spec
// (so a restart can re-enqueue it) and its content-addressed key (so
// the result store can answer it); terminal entries carry the final
// counters.
type Entry struct {
	// State is one of the State* constants.
	State string `json:"state"`
	// Job is the queue job ID ("j000042").
	Job string `json:"job"`
	// Kind is the job kind ("campaign").
	Kind string `json:"kind,omitempty"`
	// Key is the job's content address (campaign key).
	Key string `json:"key,omitempty"`
	// Req is the X-Request-Id of the HTTP request that created the
	// job, so a journal record links back to the access log line and
	// job timeline of its originating request.
	Req string `json:"req,omitempty"`
	// Spec is the raw JSON request body that created the job.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Error carries the failure reason on StateFailed.
	Error string `json:"error,omitempty"`
	// Done/Total are the final progress counters on terminal entries.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Time stamps the transition.
	Time time.Time `json:"time"`
}

// Journal is the append-only job journal over one file,
// <dir>/journal.log. All appends are CRC-framed, single-write,
// fsync-before-return. Append, Compact, Stats and Close are safe for
// concurrent use (jobs finishing on worker goroutines all append).
type Journal struct {
	fs  faultfs.FS
	dir string

	mu          sync.Mutex
	f           faultfs.File // guarded by mu
	entries     int64        // guarded by mu
	quarantined int64        // torn/corrupt tail bytes moved aside at Open; guarded by mu
}

// journalName and the quarantine naming scheme.
const journalName = "journal.log"

// Open opens (creating if needed) the journal under dir with the real
// OS filesystem and replays its entries.
func Open(dir string) (*Journal, []Entry, error) {
	return OpenFS(faultfs.OS{}, dir)
}

// OpenFS is Open over an injected filesystem (fault-injection tests
// substitute a faultfs.Fault). The returned entries are every intact
// record in append order; a torn or corrupt tail is copied to a
// quarantine file and truncated away, never served.
func OpenFS(fsys faultfs.FS, dir string) (*Journal, []Entry, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	path := filepath.Join(dir, journalName)
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{fs: fsys, dir: dir, f: f}

	entries, goodBytes, readErr := j.replay()
	if readErr != nil {
		// The tail past goodBytes is torn or corrupt: quarantine the
		// bytes for post-mortem, truncate the journal back to the last
		// intact frame, and keep serving everything before it.
		if qerr := j.quarantineTail(goodBytes, readErr); qerr != nil {
			f.Close()
			return nil, nil, qerr
		}
	}
	if _, err := f.Seek(goodBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j.entries = int64(len(entries))
	return j, entries, nil
}

// replay scans the journal, returning the intact entries, the byte
// offset of the last intact frame's end, and the error that stopped
// the scan (nil at clean EOF).
//
//simd:locked — runs inside Open, before the Journal is published to any other goroutine.
func (j *Journal) replay() ([]Entry, int64, error) {
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	var (
		entries []Entry
		good    int64
	)
	cr := &countingReader{r: bufio.NewReaderSize(j.f, 256<<10)}
	for {
		payload, err := readFrame(cr)
		if err == io.EOF {
			return entries, good, nil
		}
		if err != nil {
			return entries, good, err
		}
		var e Entry
		if jerr := json.Unmarshal(payload, &e); jerr != nil {
			// The frame passed its CRC but is not a journal entry —
			// foreign or corrupted-at-write data. Stop here and
			// quarantine the rest like a torn tail.
			return entries, good, fmt.Errorf("journal: undecodable entry: %w", jerr)
		}
		entries = append(entries, e)
		good = cr.n
	}
}

// quarantineTail copies every byte past good into a quarantine file
// and truncates the journal. The quarantine file name carries the
// offset so repeated crashes never overwrite earlier evidence.
//
//simd:locked — runs inside Open, before the Journal is published to any other goroutine.
func (j *Journal) quarantineTail(good int64, cause error) error {
	st, err := j.f.Stat()
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	torn := st.Size() - good
	if torn > 0 {
		if err := j.fs.MkdirAll(filepath.Join(j.dir, "quarantine"), 0o755); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		qpath := filepath.Join(j.dir, "quarantine", fmt.Sprintf("journal-tail-%d.bin", good))
		q, err := j.fs.Create(qpath)
		if err != nil {
			return fmt.Errorf("journal: quarantine: %w", err)
		}
		if _, err := j.f.Seek(good, io.SeekStart); err != nil {
			q.Close()
			return fmt.Errorf("journal: %w", err)
		}
		if _, err := io.Copy(q, io.LimitReader(j.f, torn)); err != nil {
			q.Close()
			return fmt.Errorf("journal: quarantine: %w", err)
		}
		if err := q.Close(); err != nil {
			return fmt.Errorf("journal: quarantine: %w", err)
		}
		j.quarantined = torn
	}
	if err := j.f.Truncate(good); err != nil {
		return fmt.Errorf("journal: truncate torn tail (%v): %w", cause, err)
	}
	return nil
}

// countingReader tracks consumed bytes so replay knows the exact
// offset of the last intact frame.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Append durably records one entry: marshal, frame, one write, fsync.
// It returns only after the entry is on disk — the "journaled before
// 202" half of the service contract.
func (j *Journal) Append(e Entry) error {
	if e.Time.IsZero() {
		e.Time = time.Now().UTC()
	}
	payload, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	frame := appendFrame(payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	j.entries++
	return nil
}

// Compact atomically rewrites the journal to exactly the given
// entries (temp file + fsync + rename), bounding growth across
// restarts: boot replays, prunes dead history, compacts, then appends
// fresh records to the compacted file.
func (j *Journal) Compact(entries []Entry) error {
	tmp, err := j.fs.CreateTemp(j.dir, ".journal-*")
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	tmpPath := tmp.Name()
	discard := func() {
		tmp.Close()
		j.fs.Remove(tmpPath)
	}
	for _, e := range entries {
		payload, err := json.Marshal(e)
		if err != nil {
			discard()
			return fmt.Errorf("journal: compact: %w", err)
		}
		if _, err := tmp.Write(appendFrame(payload)); err != nil {
			discard()
			return fmt.Errorf("journal: compact: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		discard()
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		j.fs.Remove(tmpPath)
		return fmt.Errorf("journal: compact: %w", err)
	}
	path := filepath.Join(j.dir, journalName)
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.fs.Rename(tmpPath, path); err != nil {
		j.fs.Remove(tmpPath)
		return fmt.Errorf("journal: compact: %w", err)
	}
	// Swap the append handle onto the compacted file.
	j.f.Close()
	f, err := j.fs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("journal: compact: %w", err)
	}
	j.f = f
	j.entries = int64(len(entries))
	return nil
}

// Stats returns the live entry count and the torn bytes quarantined
// at Open (the /metrics rows).
func (j *Journal) Stats() (entries, quarantinedBytes int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.entries, j.quarantined
}

// Close releases the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
