package journal

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"

	"repro/internal/faultfs"
	"repro/internal/keys"
)

// Results is the durable result store: one CRC-framed file per
// terminal result, named by the SHA-256 of (kind, key) so every cache
// family (point, campaign, advice, cluster, replay, experiment)
// shares one directory without filename collisions. Writes follow the
// tracestore discipline — temp file, fsync, atomic rename — so a
// crash mid-persist leaves either the old file or nothing, never a
// half-written result.
type Results struct {
	fs  faultfs.FS
	dir string

	count       atomic.Int64
	quarantined atomic.Int64
}

// resultRecord is the on-disk envelope inside each frame. Kind and
// key are stored (not only hashed into the name) so Load can verify a
// file answers the query its name claims.
type resultRecord struct {
	Kind  string          `json:"kind"`
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// OpenResults opens (creating if needed) the result store under dir.
func OpenResults(dir string) (*Results, error) {
	return OpenResultsFS(faultfs.OS{}, dir)
}

// OpenResultsFS is OpenResults over an injected filesystem.
func OpenResultsFS(fsys faultfs.FS, dir string) (*Results, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: results: %w", err)
	}
	r := &Results{fs: fsys, dir: dir}
	// Sweep temp files a crash left behind; they were never visible.
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: results: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), ".res-") {
			fsys.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return r, nil
}

// path returns the on-disk location of a (kind, key) result. The
// name is a canonical keys.Builder address so no (kind, key) pair can
// alias another, whatever characters they contain.
func (r *Results) path(kind, key string) string {
	name := keys.New("result").Str("kind", kind).Str("key", key).Sum()
	return filepath.Join(r.dir, name+".res")
}

// Put durably persists one result. Concurrent Puts of the same
// (kind, key) race benignly: both rename identical content onto the
// same name.
func (r *Results) Put(kind, key string, v any) error {
	value, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal: results: %w", err)
	}
	payload, err := json.Marshal(resultRecord{Kind: kind, Key: key, Value: value})
	if err != nil {
		return fmt.Errorf("journal: results: %w", err)
	}
	tmp, err := r.fs.CreateTemp(r.dir, ".res-*")
	if err != nil {
		return fmt.Errorf("journal: results: %w", err)
	}
	tmpPath := tmp.Name()
	discard := func() {
		tmp.Close()
		r.fs.Remove(tmpPath)
	}
	if _, err := tmp.Write(appendFrame(payload)); err != nil {
		discard()
		return fmt.Errorf("journal: results: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		discard()
		return fmt.Errorf("journal: results: %w", err)
	}
	if err := tmp.Close(); err != nil {
		r.fs.Remove(tmpPath)
		return fmt.Errorf("journal: results: %w", err)
	}
	if err := r.fs.Rename(tmpPath, r.path(kind, key)); err != nil {
		r.fs.Remove(tmpPath)
		return fmt.Errorf("journal: results: %w", err)
	}
	r.count.Add(1)
	return nil
}

// Load walks the store and hands every intact result to fn. Corrupt
// files — torn frame, CRC mismatch, undecodable envelope, name not
// matching the stored (kind, key) — are moved to a quarantine
// directory, never served. It returns the number of intact results.
func (r *Results) Load(fn func(kind, key string, value json.RawMessage)) (int, error) {
	entries, err := r.fs.ReadDir(r.dir)
	if err != nil {
		return 0, fmt.Errorf("journal: results: %w", err)
	}
	loaded := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".res") {
			continue
		}
		path := filepath.Join(r.dir, name)
		rec, err := r.readRecord(path)
		if err != nil || r.path(rec.Kind, rec.Key) != path {
			if qerr := r.quarantine(name); qerr != nil {
				return loaded, qerr
			}
			continue
		}
		fn(rec.Kind, rec.Key, rec.Value)
		loaded++
	}
	r.count.Store(int64(loaded))
	return loaded, nil
}

// readRecord reads and validates one result file.
func (r *Results) readRecord(path string) (resultRecord, error) {
	f, err := r.fs.Open(path)
	if err != nil {
		return resultRecord{}, err
	}
	defer f.Close()
	payload, err := readFrame(f)
	if err != nil {
		return resultRecord{}, err
	}
	var rec resultRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return resultRecord{}, err
	}
	return rec, nil
}

// quarantine moves one corrupt result file aside.
func (r *Results) quarantine(name string) error {
	qdir := filepath.Join(r.dir, "quarantine")
	if err := r.fs.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("journal: results quarantine: %w", err)
	}
	if err := r.fs.Rename(filepath.Join(r.dir, name), filepath.Join(qdir, name)); err != nil {
		return fmt.Errorf("journal: results quarantine: %w", err)
	}
	r.quarantined.Add(1)
	return nil
}

// Stats returns the resident result count and how many corrupt files
// Load quarantined (the /metrics rows).
func (r *Results) Stats() (count, quarantined int64) {
	return r.count.Load(), r.quarantined.Load()
}
