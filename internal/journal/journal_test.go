package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultfs"
)

func entry(i int, state string) Entry {
	return Entry{
		State: state,
		Job:   fmt.Sprintf("j%06d", i),
		Kind:  "campaign",
		Key:   fmt.Sprintf("key-%d", i),
		Spec:  json.RawMessage(fmt.Sprintf(`{"i":%d}`, i)),
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, got, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("fresh journal replayed %d entries", len(got))
	}
	for i := 0; i < 10; i++ {
		if err := j.Append(entry(i, StateAccepted)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	_, got, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("replayed %d entries, want 10", len(got))
	}
	for i, e := range got {
		if e.Job != fmt.Sprintf("j%06d", i) || e.State != StateAccepted {
			t.Fatalf("entry %d = %+v", i, e)
		}
		if e.Time.IsZero() {
			t.Fatalf("entry %d has no timestamp", i)
		}
	}
}

// TestTornTailQuarantined is the crash-mid-append shape: the fault
// filesystem tears the final frame in half. Reopening must serve
// every intact entry, quarantine the torn bytes, and leave the
// journal appendable.
func TestTornTailQuarantined(t *testing.T) {
	dir := t.TempDir()
	fault := faultfs.New(nil)
	j, _, err := OpenFS(fault, dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append(entry(i, StateAccepted)); err != nil {
			t.Fatal(err)
		}
	}
	// The 6th append dies mid-write, leaving half a frame on disk.
	fault.FailAfterWrites(0, true)
	if err := j.Append(entry(5, StateAccepted)); err == nil {
		t.Fatal("append through tripped failpoint reported success")
	}
	j.Close()

	j2, got, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(got) != 5 {
		t.Fatalf("replayed %d entries after torn tail, want 5", len(got))
	}
	if _, q := j2.Stats(); q == 0 {
		t.Fatal("torn tail was not quarantined")
	}
	qdir := filepath.Join(dir, "quarantine")
	names, err := os.ReadDir(qdir)
	if err != nil || len(names) == 0 {
		t.Fatalf("no quarantine file written: %v", err)
	}
	// The journal must accept appends again after recovery.
	if err := j2.Append(entry(6, StateDone)); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, got, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("post-recovery journal replayed %d entries, want 6", len(got))
	}
}

// TestCorruptMidFileStopsReplay: corruption in the middle (bit rot,
// not a crash) must stop replay at the last intact frame — nothing
// after a corrupt frame can be trusted because framing is lost.
func TestCorruptMidFileStopsReplay(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := j.Append(entry(i, StateAccepted)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	path := filepath.Join(dir, journalName)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the 3rd frame's payload.
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	_, got, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= 4 {
		t.Fatalf("corrupt journal still replayed %d entries", len(got))
	}
	for _, e := range got {
		if !strings.HasPrefix(e.Job, "j0000") {
			t.Fatalf("served corrupt entry %+v", e)
		}
	}
}

// TestAppendFailsClosed: when the disk dies (ENOSPC) the append must
// report the error — the caller must NOT 202 — and reopening must
// never surface a partial record.
func TestAppendFailsClosed(t *testing.T) {
	dir := t.TempDir()
	fault := faultfs.New(nil)
	fault.SetErr(faultfs.ENOSPC)
	j, _, err := OpenFS(fault, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(entry(0, StateAccepted)); err != nil {
		t.Fatal(err)
	}
	fault.FailAfterWrites(0, false)
	if err := j.Append(entry(1, StateAccepted)); err == nil {
		t.Fatal("ENOSPC append reported success")
	}
	j.Close()

	_, got, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("replayed %d entries, want exactly the one acknowledged append", len(got))
	}
}

// TestSyncFailureSurfaces: a write that lands in the page cache but
// cannot fsync must fail the append — durability is the contract.
func TestSyncFailureSurfaces(t *testing.T) {
	dir := t.TempDir()
	fault := faultfs.New(nil)
	j, _, err := OpenFS(fault, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	fault.FailAfterSyncs(0)
	if err := j.Append(entry(0, StateAccepted)); err == nil {
		t.Fatal("append with failing fsync reported success")
	}
}

func TestCompactBoundsGrowth(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := j.Append(entry(i, StateAccepted)); err != nil {
			t.Fatal(err)
		}
	}
	keep := []Entry{entry(48, StateAccepted), entry(49, StateAccepted)}
	if err := j.Compact(keep); err != nil {
		t.Fatal(err)
	}
	// Appends after compaction land in the compacted file.
	if err := j.Append(entry(50, StateDone)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, got, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("compacted journal replayed %d entries, want 3", len(got))
	}
	if got[0].Job != "j000048" || got[2].Job != "j000050" {
		t.Fatalf("compacted entries = %v", got)
	}
}

// TestCompactRenameFaultLeavesOldJournal: if the atomic rename of the
// compacted file fails, the original journal must survive untouched.
func TestCompactRenameFaultLeavesOldJournal(t *testing.T) {
	dir := t.TempDir()
	fault := faultfs.New(nil)
	j, _, err := OpenFS(fault, dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append(entry(i, StateAccepted)); err != nil {
			t.Fatal(err)
		}
	}
	fault.FailAfterRenames(0)
	if err := j.Compact([]Entry{entry(0, StateAccepted)}); err == nil {
		t.Fatal("compact through failing rename reported success")
	}
	j.Close()

	_, got, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("failed compaction damaged the journal: %d entries, want 5", len(got))
	}
}

func TestResultsPutLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenResults(dir)
	if err != nil {
		t.Fatal(err)
	}
	type val struct {
		N int `json:"n"`
	}
	for i := 0; i < 8; i++ {
		if err := r.Put("point", fmt.Sprintf("k%d", i), val{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Put("campaign", "k0", val{N: 100}); err != nil {
		t.Fatal(err)
	}

	r2, err := OpenResults(dir)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	n, err := r2.Load(func(kind, key string, value json.RawMessage) {
		var v val
		if err := json.Unmarshal(value, &v); err != nil {
			t.Fatalf("bad stored value for %s/%s: %v", kind, key, err)
		}
		seen[kind+"/"+key] = v.N
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 || len(seen) != 9 {
		t.Fatalf("loaded %d results, want 9", n)
	}
	if seen["point/k3"] != 3 || seen["campaign/k0"] != 100 {
		t.Fatalf("wrong values: %v", seen)
	}
}

// TestResultsCrashMidPersist drives every kill-point of the persist
// path — fail on the data write, on the fsync, on the rename — and
// proves the invariant each time: the store reopens with only fully
// persisted results, and nothing corrupt is ever served.
func TestResultsCrashMidPersist(t *testing.T) {
	type val struct {
		N int `json:"n"`
	}
	arm := map[string]func(*faultfs.Fault){
		"torn-write":  func(f *faultfs.Fault) { f.FailAfterWrites(0, true) },
		"enospc":      func(f *faultfs.Fault) { f.SetErr(faultfs.ENOSPC); f.FailAfterWrites(0, false) },
		"sync-fault":  func(f *faultfs.Fault) { f.FailAfterSyncs(0) },
		"rename-lost": func(f *faultfs.Fault) { f.FailAfterRenames(0) },
	}
	for name, armFault := range arm {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			fault := faultfs.New(nil)
			r, err := OpenResultsFS(fault, dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Put("point", "good", val{N: 1}); err != nil {
				t.Fatal(err)
			}
			armFault(fault)
			if err := r.Put("point", "doomed", val{N: 2}); err == nil {
				t.Fatal("persist through tripped failpoint reported success")
			}

			r2, err := OpenResults(dir)
			if err != nil {
				t.Fatal(err)
			}
			var keys []string
			n, err := r2.Load(func(kind, key string, _ json.RawMessage) {
				keys = append(keys, key)
			})
			if err != nil {
				t.Fatal(err)
			}
			if n != 1 || len(keys) != 1 || keys[0] != "good" {
				t.Fatalf("after %s: loaded %v, want only [good]", name, keys)
			}
		})
	}
}

// TestResultsCorruptFileQuarantined: a bit-rotted result file must be
// quarantined at Load, never handed to the cache warmer.
func TestResultsCorruptFileQuarantined(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenResults(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Put("replay", "alpha", map[string]int{"v": 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Put("replay", "beta", map[string]int{"v": 2}); err != nil {
		t.Fatal(err)
	}
	// Rot one of the two files.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	rotted := false
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".res") && !rotted {
			path := filepath.Join(dir, e.Name())
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			buf[len(buf)-1] ^= 0xff
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				t.Fatal(err)
			}
			rotted = true
		}
	}

	r2, err := OpenResults(dir)
	if err != nil {
		t.Fatal(err)
	}
	n, err := r2.Load(func(string, string, json.RawMessage) {})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("loaded %d results from a store with one rotted file, want 1", n)
	}
	if _, q := r2.Stats(); q != 1 {
		t.Fatalf("quarantined %d files, want 1", q)
	}
	if qs, err := os.ReadDir(filepath.Join(dir, "quarantine")); err != nil || len(qs) != 1 {
		t.Fatalf("quarantine dir: %v entries, err %v", len(qs), err)
	}
}

// TestResultsStaleTempSwept: temp files a crash left behind must be
// removed at open, not accumulate forever.
func TestResultsStaleTempSwept(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ".res-stale123"), []byte("half a result"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenResults(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, ".res-stale123")); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived open: %v", err)
	}
}
