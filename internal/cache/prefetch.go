package cache

import (
	"repro/internal/units"
)

// StreamPrefetcher models the KNL L2 hardware prefetcher: it tracks up
// to Streams concurrent sequential streams and, once a stream is
// confirmed (two consecutive line addresses), keeps Depth lines of
// lookahead resident ahead of the demand pointer.
//
// Its effect in the analytic model is to raise sequential per-core
// memory-level parallelism far above what demand misses alone provide;
// the trace simulator uses this functional version.
type StreamPrefetcher struct {
	Streams int
	Depth   int

	lineSize units.Bytes
	entries  []pfStream
	issued   int64
	useful   int64
}

type pfStream struct {
	lastLine uint64
	hits     int
	valid    bool
	lru      uint64
}

// NewStreamPrefetcher builds a prefetcher with the given stream table
// size and lookahead depth.
func NewStreamPrefetcher(streams, depth int, lineSize units.Bytes) *StreamPrefetcher {
	return &StreamPrefetcher{
		Streams:  streams,
		Depth:    depth,
		lineSize: lineSize,
		entries:  make([]pfStream, streams),
	}
}

// Issued returns how many prefetches were issued.
func (p *StreamPrefetcher) Issued() int64 { return p.issued }

// Observe feeds a demand access to the prefetcher and returns the
// addresses to prefetch (possibly none).
func (p *StreamPrefetcher) Observe(addr uint64, tick uint64) []uint64 {
	lineAddr := addr / uint64(p.lineSize)
	// Find a stream this access continues.
	for i := range p.entries {
		e := &p.entries[i]
		if e.valid && lineAddr == e.lastLine+1 {
			e.lastLine = lineAddr
			e.hits++
			e.lru = tick
			if e.hits >= 2 {
				out := make([]uint64, 0, p.Depth)
				for d := 1; d <= p.Depth; d++ {
					out = append(out, (lineAddr+uint64(d))*uint64(p.lineSize))
				}
				p.issued += int64(len(out))
				return out
			}
			return nil
		}
	}
	// Allocate (replace LRU) a new tracking entry.
	victim := 0
	for i := range p.entries {
		if !p.entries[i].valid {
			victim = i
			break
		}
		if p.entries[i].lru < p.entries[victim].lru {
			victim = i
		}
	}
	p.entries[victim] = pfStream{lastLine: lineAddr, hits: 1, valid: true, lru: tick}
	return nil
}
