package cache

import (
	"repro/internal/units"
)

// StreamPrefetcher models the KNL L2 hardware prefetcher: it tracks up
// to Streams concurrent sequential streams and, once a stream is
// confirmed (two consecutive line addresses), keeps Depth lines of
// lookahead resident ahead of the demand pointer.
//
// Its effect in the analytic model is to raise sequential per-core
// memory-level parallelism far above what demand misses alone provide;
// the trace simulator uses this functional version.
type StreamPrefetcher struct {
	Streams int
	Depth   int

	lineSize units.Bytes
	entries  []pfStream
	buf      []uint64 // reused result buffer (ObserveLines/Observe)
	issued   int64
	useful   int64
}

type pfStream struct {
	lastLine uint64
	frontier uint64 // highest line already issued for this stream (0 = none)
	hits     int
	valid    bool
	lru      uint64
}

// NewStreamPrefetcher builds a prefetcher with the given stream table
// size and lookahead depth.
func NewStreamPrefetcher(streams, depth int, lineSize units.Bytes) *StreamPrefetcher {
	return &StreamPrefetcher{
		Streams:  streams,
		Depth:    depth,
		lineSize: lineSize,
		entries:  make([]pfStream, streams),
		buf:      make([]uint64, depth),
	}
}

// Issued returns how many prefetches were issued.
func (p *StreamPrefetcher) Issued() int64 { return p.issued }

// ObserveLines feeds a demand line address to the prefetcher and
// returns the line addresses to prefetch (possibly none). The returned
// slice aliases an internal buffer and is only valid until the next
// call — the hot replay loop consumes it immediately, so no per-access
// allocation occurs.
func (p *StreamPrefetcher) ObserveLines(lineAddr uint64, tick uint64) []uint64 {
	// Find a stream this access continues.
	for i := range p.entries {
		e := &p.entries[i]
		if e.valid && lineAddr == e.lastLine+1 {
			e.lastLine = lineAddr
			e.hits++
			e.lru = tick
			if e.hits >= 2 {
				// Keep Depth lines of lookahead ahead of the demand
				// pointer, but issue each line only once per stream:
				// the frontier watermark turns steady-state coverage
				// into one new prefetch per demand line instead of
				// re-issuing the whole window.
				start := lineAddr + 1
				if e.frontier+1 > start {
					start = e.frontier + 1
				}
				end := lineAddr + uint64(p.Depth)
				if start > end {
					return nil
				}
				out := p.buf[:0]
				for l := start; l <= end; l++ {
					out = append(out, l)
				}
				e.frontier = end
				p.issued += int64(len(out))
				return out
			}
			return nil
		}
	}
	// Allocate (replace LRU) a new tracking entry.
	victim := 0
	for i := range p.entries {
		if !p.entries[i].valid {
			victim = i
			break
		}
		if p.entries[i].lru < p.entries[victim].lru {
			victim = i
		}
	}
	p.entries[victim] = pfStream{lastLine: lineAddr, hits: 1, valid: true, lru: tick}
	return nil
}

// Observe feeds a demand byte address to the prefetcher and returns
// the byte addresses to prefetch (possibly none). Like ObserveLines,
// the returned slice is only valid until the next call.
func (p *StreamPrefetcher) Observe(addr uint64, tick uint64) []uint64 {
	out := p.ObserveLines(addr/uint64(p.lineSize), tick)
	for i, line := range out {
		out[i] = line * uint64(p.lineSize)
	}
	return out
}
