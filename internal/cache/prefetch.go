package cache

import (
	"repro/internal/units"
)

// StreamPrefetcher models the KNL L2 hardware prefetcher: it tracks up
// to Streams concurrent sequential streams and, once a stream is
// confirmed (two consecutive line addresses), keeps Depth lines of
// lookahead resident ahead of the demand pointer.
//
// Its effect in the analytic model is to raise sequential per-core
// memory-level parallelism far above what demand misses alone provide;
// the trace simulator uses this functional version.
//
// The stream table is stored column-wise: the match scan — run once
// per L1-missing access, one of the hottest loops in trace replay —
// touches only the compact next[] array (one cache line covers 8
// streams) instead of striding through an array of structs. Entries
// are allocated in index order and never invalidated, so "first free
// slot" victim selection is just a fill counter.
type StreamPrefetcher struct {
	Streams int
	Depth   int

	lineSize units.Bytes
	next     []uint64 // per stream: the line address that continues it (lastLine+1)
	lru      []uint64 // per stream: tick of last touch
	frontier []uint64 // per stream: highest line already issued (0 = none)
	hits     []uint32 // per stream: consecutive-line confirmations
	n        int      // streams allocated so far (valid entries are [0, n))
	buf      []uint64 // reused result buffer (ObserveLines/Observe)
	issued   int64
}

// NewStreamPrefetcher builds a prefetcher with the given stream table
// size and lookahead depth.
func NewStreamPrefetcher(streams, depth int, lineSize units.Bytes) *StreamPrefetcher {
	return &StreamPrefetcher{
		Streams:  streams,
		Depth:    depth,
		lineSize: lineSize,
		next:     make([]uint64, streams),
		lru:      make([]uint64, streams),
		frontier: make([]uint64, streams),
		hits:     make([]uint32, streams),
		buf:      make([]uint64, depth),
	}
}

// Issued returns how many prefetches were issued.
func (p *StreamPrefetcher) Issued() int64 { return p.issued }

// ObserveLines feeds a demand line address to the prefetcher and
// returns the line addresses to prefetch (possibly none). The returned
// slice aliases an internal buffer and is only valid until the next
// call — the hot replay loop consumes it immediately, so no per-access
// allocation occurs.
//
//simd:hotpath — runs once per simulated access when prefetch is on.
func (p *StreamPrefetcher) ObserveLines(lineAddr uint64, tick uint64) []uint64 {
	// Find a stream this access continues.
	for i, nx := range p.next[:p.n] {
		if nx != lineAddr {
			continue
		}
		p.next[i] = lineAddr + 1
		p.hits[i]++
		p.lru[i] = tick
		if p.hits[i] < 2 {
			return nil
		}
		// Keep Depth lines of lookahead ahead of the demand
		// pointer, but issue each line only once per stream:
		// the frontier watermark turns steady-state coverage
		// into one new prefetch per demand line instead of
		// re-issuing the whole window.
		start := lineAddr + 1
		if f := p.frontier[i] + 1; f > start {
			start = f
		}
		end := lineAddr + uint64(p.Depth)
		if start > end {
			return nil
		}
		out := p.buf[:0]
		for l := start; l <= end; l++ {
			out = append(out, l)
		}
		p.frontier[i] = end
		p.issued += int64(len(out))
		return out
	}
	// Allocate a new tracking entry: fill the table first, then
	// replace the least-recently-touched stream.
	v := p.n
	if v < len(p.next) {
		p.n++
	} else {
		v = 0
		for i, tk := range p.lru {
			if tk < p.lru[v] {
				v = i
			}
		}
	}
	p.next[v] = lineAddr + 1
	p.lru[v] = tick
	p.frontier[v] = 0
	p.hits[v] = 1
	return nil
}

// Observe feeds a demand byte address to the prefetcher and returns
// the byte addresses to prefetch (possibly none). Like ObserveLines,
// the returned slice is only valid until the next call.
func (p *StreamPrefetcher) Observe(addr uint64, tick uint64) []uint64 {
	out := p.ObserveLines(addr/uint64(p.lineSize), tick)
	for i, line := range out {
		out[i] = line * uint64(p.lineSize)
	}
	return out
}
