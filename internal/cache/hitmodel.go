package cache

import (
	"math"

	"repro/internal/knl"
	"repro/internal/units"
)

// This file is the analytic counterpart of the functional caches: hit
// ratios as closed-form functions of working set and capacity, used by
// the timing engine at paper-scale problem sizes.

// RandomHitRatio is the steady-state hit probability of uniform random
// accesses over a working set ws in a cache of the given capacity:
// the resident fraction, min(1, capacity/ws).
func RandomHitRatio(ws, capacity units.Bytes) float64 {
	if ws <= 0 {
		return 1
	}
	r := float64(capacity) / float64(ws)
	if r > 1 {
		return 1
	}
	return r
}

// RandomHitRatioSteep is RandomHitRatio sharpened by an exponent: the
// measured L2 hit probability of a loaded dual pointer chase falls
// faster than the resident fraction (pollution from the page walker
// and the second chase). Fig. 3's sharp 10 ns -> 200 ns transition
// between 1 MB and 4 MB calibrates the exponent (knl.Calibration.
// L2RandomExponent).
func RandomHitRatioSteep(ws, capacity units.Bytes, exponent float64) float64 {
	return math.Pow(RandomHitRatio(ws, capacity), exponent)
}

// DirectMappedStreamHitRatio is the analytic hit ratio of the MCDRAM
// direct-mapped memory-side cache for a streaming workload that reuses
// its working set across passes (STREAM, CG sweeps), as a function of
// r = workingSet/capacity.
//
// It interpolates the calibration anchors fitted to Fig. 2 (see
// knl.Calibration.CacheModeHitRatioAnchors). Below the first anchor it
// is flat; past the last it decays toward zero.
func DirectMappedStreamHitRatio(ws, capacity units.Bytes, anchors []knl.HitAnchor) float64 {
	if capacity <= 0 || len(anchors) == 0 {
		return 0
	}
	r := float64(ws) / float64(capacity)
	if r <= anchors[0].Ratio {
		return anchors[0].Hit
	}
	for i := 1; i < len(anchors); i++ {
		if r <= anchors[i].Ratio {
			a, b := anchors[i-1], anchors[i]
			t := (r - a.Ratio) / (b.Ratio - a.Ratio)
			return a.Hit + t*(b.Hit-a.Hit)
		}
	}
	// Beyond the last anchor: exponential decay of the residual.
	last := anchors[len(anchors)-1]
	return last.Hit * math.Exp(-(r - last.Ratio))
}

// DirectMappedConflictHitRatio is the first-principles counterpart of
// DirectMappedStreamHitRatio for randomly-placed pages: with a working
// set of W bytes whose pages land uniformly over the physical address
// space, the probability that a given line is the sole occupant of its
// direct-mapped set is (1-1/S)^(L-1) ~ exp(-W/C). Lines that share a
// set thrash under streaming reuse and contribute no hits.
//
// The measured curve (the anchors) falls more steeply than this ideal
// because the real mapping is not perfectly uniform and the fill
// traffic itself evicts; the trace simulator sits between the two.
// Exposed for the cache-associativity ablation.
func DirectMappedConflictHitRatio(ws, capacity units.Bytes) float64 {
	if ws <= 0 {
		return 1
	}
	if capacity <= 0 {
		return 0
	}
	return math.Exp(-float64(ws) / float64(capacity))
}

// SetAssocStreamHitRatio is the idealized streaming-reuse hit ratio of
// a cache with enough associativity to avoid conflicts: 1 while the
// working set fits, capacity/ws after (LRU keeps a resident subset hot
// only under favourable reuse; for cyclic streaming LRU actually
// thrashes, so this is the optimistic bound used by the ablation).
func SetAssocStreamHitRatio(ws, capacity units.Bytes) float64 {
	return RandomHitRatio(ws, capacity)
}
