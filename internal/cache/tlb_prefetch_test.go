package cache

import (
	"testing"

	"repro/internal/units"
)

func TestTLBValidation(t *testing.T) {
	if _, err := NewTLB(0, 64, 512); err == nil {
		t.Error("zero page size accepted")
	}
	if _, err := NewTLB(units.Page, 0, 512); err == nil {
		t.Error("zero l1 entries accepted")
	}
	if _, err := NewTLB(units.Page, 64, 32); err == nil {
		t.Error("l2 < l1 accepted")
	}
}

func TestTLBHitPath(t *testing.T) {
	tlb, err := NewTLB(units.Page, 64, 512)
	if err != nil {
		t.Fatal(err)
	}
	if tlb.PageSize() != units.Page {
		t.Fatalf("page size %v", tlb.PageSize())
	}
	if tlb.Reach() != 512*units.Page {
		t.Fatalf("reach = %v", tlb.Reach())
	}
	// First touch walks; second hits L1.
	if w := tlb.Translate(0); w != 4 {
		t.Fatalf("cold translate walked %d refs, want 4", w)
	}
	if w := tlb.Translate(100); w != 0 {
		t.Fatalf("warm same-page translate walked %d", w)
	}
	st := tlb.Stats()
	if st.Walks != 1 || st.L1Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTLBL2Backstop(t *testing.T) {
	tlb, _ := NewTLB(units.Page, 4, 64)
	// Touch 16 pages: evicts all of tiny L1 but fits L2.
	for p := uint64(0); p < 16; p++ {
		tlb.Translate(p * uint64(units.Page))
	}
	// Revisit page 0: L1 evicted it, L2 still has it.
	if w := tlb.Translate(0); w != 0 {
		t.Fatalf("expected L2 hit, walked %d", w)
	}
	if tlb.Stats().L2Hits == 0 {
		t.Fatal("no L2 hits recorded")
	}
}

func TestTLBWalksGrowBeyondReach(t *testing.T) {
	tlb, _ := NewTLB(units.Page, 4, 16)
	// Working set of 64 pages >> 16-entry reach: a cyclic sweep
	// should walk on (nearly) every access after warmup.
	for round := 0; round < 3; round++ {
		for p := uint64(0); p < 64; p++ {
			tlb.Translate(p * uint64(units.Page))
		}
	}
	st := tlb.Stats()
	if st.Walks < 150 {
		t.Fatalf("expected pervasive walks, got %d of 192", st.Walks)
	}
}

func TestPrefetcherConfirmsStream(t *testing.T) {
	p := NewStreamPrefetcher(4, 4, 64)
	if got := p.Observe(0, 1); got != nil {
		t.Fatal("first access should not prefetch")
	}
	got := p.Observe(64, 2)
	if len(got) != 4 {
		t.Fatalf("confirmed stream issued %d prefetches, want 4", len(got))
	}
	if got[0] != 2*64 || got[3] != 5*64 {
		t.Fatalf("prefetch window = %v", got)
	}
	if p.Issued() != 4 {
		t.Fatalf("Issued = %d", p.Issued())
	}
}

func TestPrefetcherIgnoresRandom(t *testing.T) {
	p := NewStreamPrefetcher(4, 4, 64)
	addrs := []uint64{0, 640, 128000, 42 * 64, 7 * 64, 99 * 64}
	for i, a := range addrs {
		if got := p.Observe(a, uint64(i)); got != nil {
			t.Fatalf("random access %#x triggered prefetch", a)
		}
	}
}

func TestPrefetcherTracksMultipleStreams(t *testing.T) {
	p := NewStreamPrefetcher(2, 2, 64)
	base1, base2 := uint64(0), uint64(1<<20)
	p.Observe(base1, 1)
	p.Observe(base2, 2)
	if got := p.Observe(base1+64, 3); len(got) != 2 {
		t.Fatal("stream 1 not tracked")
	}
	if got := p.Observe(base2+64, 4); len(got) != 2 {
		t.Fatal("stream 2 not tracked")
	}
}

func TestPrefetcherLRUReplacement(t *testing.T) {
	p := NewStreamPrefetcher(1, 2, 64)
	p.Observe(0, 1)     // tracked
	p.Observe(1<<20, 2) // replaces (single entry)
	if got := p.Observe(64, 3); got != nil {
		t.Fatal("evicted stream continued")
	}
}
