package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func mustCache(t *testing.T, cap units.Bytes, ways int) *SetAssoc {
	t.Helper()
	c, err := NewSetAssoc("test", cap, ways, 64)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewSetAssocValidation(t *testing.T) {
	if _, err := NewSetAssoc("x", 0, 8, 64); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewSetAssoc("x", 32*units.KiB, 0, 64); err == nil {
		t.Error("zero ways accepted")
	}
	if _, err := NewSetAssoc("x", 100, 1, 64); err == nil {
		t.Error("non-multiple capacity accepted")
	}
	if _, err := NewSetAssoc("x", 3*64*4, 4, 64); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	c := mustCache(t, 32*units.KiB, 8)
	if c.Name() != "test" || c.Sets() != 64 || c.Ways() != 8 {
		t.Fatalf("geometry: %s %d sets %d ways", c.Name(), c.Sets(), c.Ways())
	}
	if c.Capacity() != 32*units.KiB {
		t.Fatalf("capacity = %v", c.Capacity())
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := mustCache(t, 4*64*2, 2) // 4 sets x 2 ways
	if hit, _, _ := c.Access(0, Read); hit {
		t.Fatal("cold access hit")
	}
	if hit, _, _ := c.Access(0, Read); !hit {
		t.Fatal("warm access missed")
	}
	if hit, _, _ := c.Access(63, Read); !hit {
		t.Fatal("same-line access missed")
	}
	if hit, _, _ := c.Access(64, Read); hit {
		t.Fatal("next line should miss")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := mustCache(t, 1*64*2, 2) // 1 set x 2 ways
	c.Access(0*64, Read)
	c.Access(1*64, Read)
	c.Access(0*64, Read) // line 0 is now MRU
	c.Access(2*64, Read) // evicts line 1 (LRU)
	if !c.Contains(0) {
		t.Fatal("MRU line evicted")
	}
	if c.Contains(64) {
		t.Fatal("LRU line survived")
	}
	if !c.Contains(128) {
		t.Fatal("new line not resident")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := mustCache(t, 1*64*1, 1) // direct-mapped single set
	c.Access(0, Write)
	hit, wbAddr, wb := c.Access(64, Read)
	if hit {
		t.Fatal("conflicting access hit")
	}
	if !wb || wbAddr != 0 {
		t.Fatalf("expected writeback of line 0, got wb=%v addr=%#x", wb, wbAddr)
	}
	// Clean eviction: no writeback.
	_, _, wb = c.Access(128, Read)
	if wb {
		t.Fatal("clean line triggered writeback")
	}
	if c.Stats().DirtyWritebacks != 1 {
		t.Fatalf("writeback count = %d", c.Stats().DirtyWritebacks)
	}
}

func TestInstallDoesNotCountMiss(t *testing.T) {
	c := mustCache(t, 2*64*2, 2)
	c.Install(0)
	if c.Stats().Misses != 0 {
		t.Fatal("install counted as miss")
	}
	if hit, _, _ := c.Access(0, Read); !hit {
		t.Fatal("installed line not resident")
	}
	// Re-install of resident line is a no-op.
	c.Install(0)
	if c.Stats().Evictions != 0 {
		t.Fatal("re-install evicted something")
	}
}

func TestFlush(t *testing.T) {
	c := mustCache(t, 4*64*2, 2)
	c.Access(0, Write)
	c.Access(64, Read)
	if wb := c.Flush(); wb != 1 {
		t.Fatalf("flush writebacks = %d, want 1", wb)
	}
	if c.Contains(0) || c.Contains(64) {
		t.Fatal("flush left lines resident")
	}
}

func TestResetStats(t *testing.T) {
	c := mustCache(t, 4*64*2, 2)
	c.Access(0, Read)
	c.ResetStats()
	if st := c.Stats(); st.Hits+st.Misses != 0 {
		t.Fatal("ResetStats did not clear")
	}
	if !c.Contains(0) {
		t.Fatal("ResetStats dropped contents")
	}
}

func TestHitRatio(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 {
		t.Fatal("empty stats ratio nonzero")
	}
	s = Stats{Hits: 3, Misses: 1}
	if s.HitRatio() != 0.75 {
		t.Fatalf("ratio = %v", s.HitRatio())
	}
}

// Working set within capacity must produce 100% hits after warmup,
// regardless of the access sequence: the LRU residency invariant.
func TestFitWorkingSetAlwaysHitsProperty(t *testing.T) {
	f := func(seq []uint8) bool {
		c, err := NewSetAssoc("p", 16*64, 16, 64) // fully assoc, 16 lines
		if err != nil {
			return false
		}
		// Warm all 16 lines.
		for i := uint64(0); i < 16; i++ {
			c.Access(i*64, Read)
		}
		c.ResetStats()
		for _, s := range seq {
			addr := uint64(s%16) * 64
			if hit, _, _ := c.Access(addr, Read); !hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// naiveLRU is a deliberately simple reference model: per-set slices in
// recency order. The fast SetAssoc implementation (shift/mask
// indexing, SoA tags, MRU memo, unrolled scans) must agree with it
// event-for-event.
type naiveLRU struct {
	sets, ways                          int
	lineSize                            uint64
	order                               [][]naiveLine // per set, index 0 = LRU, last = MRU
	hits, misses, evictions, writebacks int64
}

type naiveLine struct {
	tag   uint64
	dirty bool
}

func newNaiveLRU(sets, ways int, lineSize uint64) *naiveLRU {
	return &naiveLRU{sets: sets, ways: ways, lineSize: lineSize, order: make([][]naiveLine, sets)}
}

func (n *naiveLRU) access(addr uint64, kind AccessKind) (hit bool, wbAddr uint64, wb bool) {
	lineAddr := addr / n.lineSize
	set := int(lineAddr % uint64(n.sets))
	tag := lineAddr / uint64(n.sets)
	q := n.order[set]
	for i := range q {
		if q[i].tag == tag {
			l := q[i]
			if kind == Write {
				l.dirty = true
			}
			n.order[set] = append(append(q[:i:i], q[i+1:]...), l)
			n.hits++
			return true, 0, false
		}
	}
	n.misses++
	if len(q) == n.ways {
		v := q[0]
		n.evictions++
		if v.dirty {
			n.writebacks++
			wbAddr = (v.tag*uint64(n.sets) + uint64(set)) * n.lineSize
			wb = true
		}
		q = q[1:]
	}
	n.order[set] = append(append([]naiveLine{}, q...), naiveLine{tag: tag, dirty: kind == Write})
	return false, wbAddr, wb
}

// TestSetAssocMatchesNaiveModel replays a mixed random/sequential
// stream through SetAssoc and the reference model and requires
// identical per-access outcomes and aggregate counters.
func TestSetAssocMatchesNaiveModel(t *testing.T) {
	// 1..16 exercise the packed nibble-stack LRU; 20 and 64 the
	// generic tick path (fully-associative TLB geometries).
	for _, ways := range []int{1, 2, 4, 8, 16, 3, 20, 64} {
		sets := 8
		c, err := NewSetAssoc("ref", units.Bytes(sets*ways*64), ways, 64)
		if err != nil {
			t.Fatal(err)
		}
		ref := newNaiveLRU(sets, ways, 64)
		// Deterministic pseudo-random stream with heavy set reuse and
		// same-line repeats (exercises the MRU memo).
		state := uint64(12345)
		var last uint64
		for i := 0; i < 20000; i++ {
			state = state*6364136223846793005 + 1442695040888963407
			addr := (state >> 33) % uint64(sets*ways*64*3)
			if state&7 == 0 {
				addr = last // repeated same-line reference
			}
			last = addr
			kind := Read
			if state&16 != 0 {
				kind = Write
			}
			h1, a1, w1 := c.Access(addr, kind)
			h2, a2, w2 := ref.access(addr, kind)
			if h1 != h2 || w1 != w2 || a1 != a2 {
				t.Fatalf("ways=%d access %d addr=%#x: fast (%v,%#x,%v) vs naive (%v,%#x,%v)",
					ways, i, addr, h1, a1, w1, h2, a2, w2)
			}
		}
		st := c.Stats()
		if st.Hits != ref.hits || st.Misses != ref.misses ||
			st.Evictions != ref.evictions || st.DirtyWritebacks != ref.writebacks {
			t.Fatalf("ways=%d counters: fast %+v vs naive hits=%d misses=%d ev=%d wb=%d",
				ways, st, ref.hits, ref.misses, ref.evictions, ref.writebacks)
		}
	}
}
