package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/units"
)

// MemSideCache models MCDRAM in cache mode: a direct-mapped,
// write-back memory-side cache in front of DDR. The real hardware
// keeps tags in MCDRAM itself; every access therefore pays a tag
// check in MCDRAM, and a miss additionally pays the DDR access plus
// the line fill (and a writeback when the victim is dirty). The
// direct mapping is what produces the bandwidth cliff of Fig. 2 and
// the paper's repeated "higher conflict misses" remarks.
type MemSideCache struct {
	lineSize  units.Bytes
	lineShift uint
	sets      int64
	pow2      bool
	setMask   uint64 // sets-1, valid when pow2
	setShift  uint   // log2(sets), valid when pow2
	// fold means the dirty flag lives in bit 63 of the tag word, so
	// hit, miss and eviction all touch exactly one cache line of host
	// memory per access. Safe whenever sets >= 4: the stored tag+1 is
	// then at most 2^62, leaving the top bit free. The degenerate
	// sets < 4 geometries keep a separate bitset.
	fold  bool
	tags  []uint64 // tag+1, 0 = invalid; bit 63 = dirty when fold
	dirty []uint64 // bitset, used only when !fold
	stats Stats
}

// mcDirty flags a dirty line in the tag word when fold is enabled.
const mcDirty = uint64(1) << 63

// NewMemSideCache builds a direct-mapped memory-side cache. On the
// real 7210 capacity is 16 GiB; the trace simulator uses scaled-down
// capacities with identical geometry rules.
func NewMemSideCache(capacity units.Bytes, lineSize units.Bytes) (*MemSideCache, error) {
	if capacity <= 0 || lineSize <= 0 || capacity%lineSize != 0 {
		return nil, fmt.Errorf("cache: bad memory-side cache geometry cap=%v line=%v", capacity, lineSize)
	}
	if lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("cache: line size %v must be a power of two", lineSize)
	}
	sets := int64(capacity / lineSize)
	m := &MemSideCache{
		lineSize:  lineSize,
		lineShift: uint(bits.TrailingZeros64(uint64(lineSize))),
		sets:      sets,
		fold:      sets >= 4,
		tags:      make([]uint64, sets),
	}
	if !m.fold {
		m.dirty = make([]uint64, (sets+63)/64)
	}
	if sets&(sets-1) == 0 {
		m.pow2 = true
		m.setMask = uint64(sets - 1)
		m.setShift = uint(bits.TrailingZeros64(uint64(sets)))
	}
	return m, nil
}

// Capacity returns the cache capacity.
func (m *MemSideCache) Capacity() units.Bytes { return units.Bytes(m.sets) * m.lineSize }

// Stats returns the event counters.
func (m *MemSideCache) Stats() Stats { return m.stats }

// ResetStats clears the counters but keeps contents.
func (m *MemSideCache) ResetStats() { m.stats = Stats{} }

// TouchTagSet pre-reads the tag word for lineAddr's set without
// changing any state — same contract as SetAssoc.TouchTagSet. With
// realistic capacities the tag array far exceeds the host's caches,
// so overlapping these misses is worth more here than anywhere else.
func (m *MemSideCache) TouchTagSet(lineAddr uint64) uint64 {
	if m.pow2 {
		return m.tags[lineAddr&m.setMask]
	}
	return m.tags[lineAddr%uint64(m.sets)]
}

func (m *MemSideCache) isDirty(set int64) bool {
	return m.dirty[set/64]&(1<<(uint(set)%64)) != 0
}

func (m *MemSideCache) setDirty(set int64, d bool) {
	if d {
		m.dirty[set/64] |= 1 << (uint(set) % 64)
	} else {
		m.dirty[set/64] &^= 1 << (uint(set) % 64)
	}
}

// AccessLine performs one access by line address. It reports whether
// it hit in MCDRAM and whether the (direct-mapped) victim required a
// DDR writeback. Power-of-two set counts (the common case) index by
// mask; others fall back to modulo.
func (m *MemSideCache) AccessLine(lineAddr uint64, kind AccessKind) (hit bool, wb bool) {
	var set int64
	var tag uint64
	if m.pow2 {
		set = int64(lineAddr & m.setMask)
		tag = lineAddr>>m.setShift + 1
	} else {
		set = int64(lineAddr % uint64(m.sets))
		tag = lineAddr/uint64(m.sets) + 1
	}
	if m.fold {
		t := m.tags[set]
		if t&^mcDirty == tag {
			m.stats.Hits++
			if kind == Write {
				m.tags[set] = t | mcDirty
			}
			return true, false
		}
		m.stats.Misses++
		if t != 0 {
			m.stats.Evictions++
			if t&mcDirty != 0 {
				m.stats.DirtyWritebacks++
				wb = true
			}
		}
		if kind == Write {
			tag |= mcDirty
		}
		m.tags[set] = tag
		return false, wb
	}
	if m.tags[set] == tag {
		m.stats.Hits++
		if kind == Write {
			m.setDirty(set, true)
		}
		return true, false
	}
	m.stats.Misses++
	if m.tags[set] != 0 {
		m.stats.Evictions++
		if m.isDirty(set) {
			m.stats.DirtyWritebacks++
			wb = true
		}
	}
	m.tags[set] = tag
	m.setDirty(set, kind == Write)
	return false, wb
}

// Access performs one access by physical byte address.
func (m *MemSideCache) Access(addr uint64, kind AccessKind) (hit bool, wb bool) {
	return m.AccessLine(addr>>m.lineShift, kind)
}

// Resident returns the number of valid lines (for occupancy tests).
func (m *MemSideCache) Resident() int64 {
	var n int64
	for _, t := range m.tags {
		if t != 0 {
			n++
		}
	}
	return n
}
