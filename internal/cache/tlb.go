package cache

import (
	"fmt"

	"repro/internal/units"
)

// TLB models a two-level translation hierarchy with a fixed page size.
// KNL with transparent huge pages walks rarely until the footprint
// exceeds the L2 TLB reach; after that, page walks add the latency
// growth seen past ~128 MB in Fig. 3.
type TLB struct {
	pageSize  units.Bytes
	l1Entries int
	l2Entries int
	l1        *SetAssoc
	l2        *SetAssoc
	stats     TLBStats
}

// TLBStats counts translation events.
type TLBStats struct {
	L1Hits, L2Hits, Walks int64
}

// NewTLB builds a TLB hierarchy. Entry counts must be powers of two.
func NewTLB(pageSize units.Bytes, l1Entries, l2Entries int) (*TLB, error) {
	if pageSize <= 0 || l1Entries <= 0 || l2Entries < l1Entries {
		return nil, fmt.Errorf("cache: bad TLB geometry page=%v l1=%d l2=%d", pageSize, l1Entries, l2Entries)
	}
	// Model each level as a fully-associative cache of "lines" whose
	// line size is one page-table entry; reuse SetAssoc with 1 set.
	l1, err := NewSetAssoc("dtlb-l1", units.Bytes(l1Entries)*8, l1Entries, 8)
	if err != nil {
		return nil, err
	}
	l2, err := NewSetAssoc("dtlb-l2", units.Bytes(l2Entries)*8, l2Entries, 8)
	if err != nil {
		return nil, err
	}
	return &TLB{pageSize: pageSize, l1Entries: l1Entries, l2Entries: l2Entries, l1: l1, l2: l2}, nil
}

// PageSize returns the translation granule.
func (t *TLB) PageSize() units.Bytes { return t.pageSize }

// Reach returns the footprint fully covered by the L2 TLB.
func (t *TLB) Reach() units.Bytes { return units.Bytes(t.l2Entries) * t.pageSize }

// Stats returns the translation counters.
func (t *TLB) Stats() TLBStats { return t.stats }

// Translate looks up the page of addr. It returns the number of
// page-walk memory references incurred (0 on TLB hit; 4 for a full
// 4-level radix walk on a miss, the dominant cost component).
func (t *TLB) Translate(addr uint64) int {
	vpn := addr / uint64(t.pageSize) * 8 // fake PTE address, 8 B apart
	if hit, _, _ := t.l1.Access(vpn, Read); hit {
		t.stats.L1Hits++
		return 0
	}
	if hit, _, _ := t.l2.Access(vpn, Read); hit {
		t.stats.L2Hits++
		t.l1.Install(vpn)
		return 0
	}
	t.stats.Walks++
	t.l1.Install(vpn)
	return 4
}
