package cache

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/knl"
	"repro/internal/units"
)

func TestMemSideCacheValidation(t *testing.T) {
	if _, err := NewMemSideCache(0, 64); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewMemSideCache(100, 64); err == nil {
		t.Error("non-multiple capacity accepted")
	}
	m, err := NewMemSideCache(1*units.MiB, 64)
	if err != nil {
		t.Fatal(err)
	}
	if m.Capacity() != units.MiB {
		t.Fatalf("capacity = %v", m.Capacity())
	}
}

func TestMemSideCacheDirectMappedConflict(t *testing.T) {
	m, _ := NewMemSideCache(4*64, 64) // 4 sets
	// Two addresses 4 lines apart conflict in a direct-mapped cache.
	if hit, _ := m.Access(0, Read); hit {
		t.Fatal("cold hit")
	}
	if hit, _ := m.Access(0, Read); !hit {
		t.Fatal("warm miss")
	}
	if hit, _ := m.Access(4*64, Read); hit {
		t.Fatal("conflicting address hit")
	}
	// Original line was evicted by the conflict.
	if hit, _ := m.Access(0, Read); hit {
		t.Fatal("evicted line still resident")
	}
	if ev := m.Stats().Evictions; ev != 2 {
		t.Fatalf("evictions = %d, want 2", ev)
	}
}

func TestMemSideCacheWriteback(t *testing.T) {
	m, _ := NewMemSideCache(4*64, 64)
	m.Access(0, Write)
	if _, wb := m.Access(4*64, Read); !wb {
		t.Fatal("dirty victim not written back")
	}
	if _, wb := m.Access(8*64, Read); wb {
		t.Fatal("clean victim written back")
	}
	if m.Stats().DirtyWritebacks != 1 {
		t.Fatalf("writebacks = %d", m.Stats().DirtyWritebacks)
	}
}

func TestMemSideCacheResident(t *testing.T) {
	m, _ := NewMemSideCache(8*64, 64)
	for i := uint64(0); i < 5; i++ {
		m.Access(i*64, Read)
	}
	if m.Resident() != 5 {
		t.Fatalf("resident = %d, want 5", m.Resident())
	}
	m.ResetStats()
	if m.Stats().Hits != 0 {
		t.Fatal("ResetStats failed")
	}
}

// Cross-validation: streaming over a working set with randomly-placed
// pages through the functional direct-mapped cache should land near
// the first-principles exp(-W/C) conflict model.
func TestDirectMappedTraceMatchesConflictModel(t *testing.T) {
	const line = 64
	capacity := units.Bytes(1 * units.MiB)
	m, _ := NewMemSideCache(capacity, line)
	rng := rand.New(rand.NewSource(7))

	for _, ratio := range []float64{0.5, 1.0, 1.5} {
		ws := units.Bytes(ratio * float64(capacity))
		// Random page placement over a 64x larger physical space.
		pages := ws.Pages()
		pagePhys := make([]uint64, pages)
		span := uint64(64 * float64(capacity))
		for i := range pagePhys {
			pagePhys[i] = (rng.Uint64() % (span / uint64(units.Page))) * uint64(units.Page)
		}
		// Two warm passes, then measure a pass.
		pass := func(count bool) float64 {
			if count {
				m.ResetStats()
			}
			for p := int64(0); p < pages; p++ {
				base := pagePhys[p]
				for off := uint64(0); off < uint64(units.Page); off += line {
					m.Access(base+off, Read)
				}
			}
			st := m.Stats()
			return st.HitRatio()
		}
		pass(false)
		pass(false)
		got := pass(true)
		want := DirectMappedConflictHitRatio(ws, capacity)
		if math.Abs(got-want) > 0.12 {
			t.Errorf("ratio %.2f: trace hit %.3f vs model %.3f", ratio, got, want)
		}
	}
}

func TestHitModelFunctions(t *testing.T) {
	if RandomHitRatio(0, units.MiB) != 1 {
		t.Error("empty ws should hit")
	}
	if RandomHitRatio(2*units.MiB, units.MiB) != 0.5 {
		t.Error("half-resident ws should hit 50%")
	}
	if RandomHitRatio(units.KiB, units.MiB) != 1 {
		t.Error("fitting ws should hit 100%")
	}
	if got := RandomHitRatioSteep(2*units.MiB, units.MiB, 2); got != 0.25 {
		t.Errorf("steep ratio = %v, want 0.25", got)
	}
	if DirectMappedConflictHitRatio(0, units.MiB) != 1 {
		t.Error("empty ws conflict ratio")
	}
	if DirectMappedConflictHitRatio(units.MiB, 0) != 0 {
		t.Error("zero capacity conflict ratio")
	}
	got := DirectMappedConflictHitRatio(units.MiB, units.MiB)
	if math.Abs(got-math.Exp(-1)) > 1e-12 {
		t.Errorf("conflict ratio at r=1: %v", got)
	}
	if SetAssocStreamHitRatio(2*units.MiB, units.MiB) != 0.5 {
		t.Error("set-assoc stream ratio")
	}
}

func TestDirectMappedStreamHitRatioAnchors(t *testing.T) {
	cal := knl.KNL7210().Cal
	cap16 := 16 * units.GiB

	// At the calibrated anchors the interpolation returns the anchor.
	if got := DirectMappedStreamHitRatio(8*units.GiB, cap16, cal.CacheModeHitRatioAnchors); math.Abs(got-0.85) > 1e-9 {
		t.Errorf("h(0.5) = %v, want 0.85", got)
	}
	// Monotone nonincreasing in working set.
	prev := 2.0
	for ws := units.Bytes(0); ws <= 48*units.GiB; ws += units.GiB / 2 {
		h := DirectMappedStreamHitRatio(ws, cap16, cal.CacheModeHitRatioAnchors)
		if h > prev+1e-12 {
			t.Fatalf("hit ratio increased at ws=%v: %v > %v", ws, h, prev)
		}
		if h < 0 || h > 1 {
			t.Fatalf("hit ratio out of range at ws=%v: %v", ws, h)
		}
		prev = h
	}
	// Degenerate inputs.
	if DirectMappedStreamHitRatio(units.GiB, 0, cal.CacheModeHitRatioAnchors) != 0 {
		t.Error("zero capacity should yield 0")
	}
	if DirectMappedStreamHitRatio(units.GiB, cap16, nil) != 0 {
		t.Error("no anchors should yield 0")
	}
}
