// Package cache implements the cache hierarchy of the simulated KNL:
// generic set-associative SRAM caches (L1D, per-tile L2), a stream
// prefetcher, a two-level TLB with page-walk costs, and the MCDRAM
// direct-mapped memory-side cache that backs the paper's "cache mode".
//
// Two layers coexist deliberately:
//
//   - a functional, trace-driven layer (this file and mcdram.go) that
//     counts real hits and misses for replayed access streams, and
//   - an analytic layer (hitmodel.go) used by the timing engine at
//     paper-scale problem sizes where replaying every access would be
//     infeasible.
//
// Tests cross-validate the two layers on overlapping configurations.
//
// The functional layer is the hot path of trace replay, so SetAssoc is
// organised for speed: geometry is restricted to power-of-two line and
// set counts so set/tag extraction is shift/mask (no div or mod), tags
// are stored line-granular in a contiguous slice separate from
// replacement state (a tag probe touches one or two cache lines of
// host memory), the tag scan is unrolled for the common 4/8/16-way
// geometries, and an MRU memo short-circuits repeated references to
// the line touched by the immediately preceding operation.
//
// For associativities up to 16 the LRU order of a whole set is packed
// into one uint64 — a stack of 4-bit way indices, most-recent in the
// low nibble — so picking a victim is a single shift instead of a
// per-way recency scan, a hit's recency update is a handful of
// branch-free bit operations, and the replacement state of a 16-way
// 1024-set L2 is 8 KB of host memory instead of 128 KB of per-way
// ticks. Dirty state is one bitmask per set for the same reason.
// Wider geometries (the fully-associative TLB arrays) fall back to a
// per-way tick scan.
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/units"
)

// AccessKind distinguishes reads from writes for dirty tracking.
type AccessKind int

const (
	// Read is a demand load.
	Read AccessKind = iota
	// Write is a store (write-allocate, write-back policy).
	Write
)

// Stats counts cache events.
type Stats struct {
	Hits, Misses    int64
	Evictions       int64
	DirtyWritebacks int64
}

// HitRatio returns hits/(hits+misses), or 0 for an untouched cache.
func (s Stats) HitRatio() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// Add accumulates other into s (used when merging sharded replays).
func (s *Stats) Add(other Stats) {
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Evictions += other.Evictions
	s.DirtyWritebacks += other.DirtyWritebacks
}

// packedMaxWays is the widest associativity whose LRU order fits the
// packed nibble-stack representation (16 four-bit way indices).
const packedMaxWays = 16

// nibLo has the low bit of every nibble set; multiplying by it
// broadcasts a way index into all 16 nibble lanes.
const nibLo = 0x1111111111111111

// SetAssoc is a set-associative write-back, write-allocate cache with
// LRU replacement.
//
// State is kept struct-of-arrays: tags (stored as tag+1 with 0 marking
// an invalid way) in one slice so the hit scan is a contiguous
// eight-byte compare loop. Replacement state is the packed per-set
// LRU stack and dirty mask for ways <= 16, or parallel per-way
// tick/dirty slices beyond that.
type SetAssoc struct {
	name     string
	lineSize units.Bytes
	sets     int
	ways     int

	lineShift uint   // log2(lineSize)
	setMask   uint64 // sets-1
	setShift  uint   // log2(sets)

	tags []uint64 // sets*ways; stored tag+1, 0 = invalid
	vcnt []int32  // per set: number of valid ways

	// Packed replacement state (ways <= packedMaxWays). stack holds
	// the set's way indices in recency order, MRU in the low nibble;
	// dmask holds one dirty bit per way. Valid ways always occupy the
	// low way indices [0, vcnt) — installs fill way vcnt first — so
	// the stack's high nibbles stay zero until the set is full.
	packed    bool
	stack     []uint64
	dmask     []uint16
	lruShift  uint   // 4*(ways-1): shift that exposes the LRU nibble
	stackMask uint64 // low 4*ways bits

	// Generic replacement state (ways > packedMaxWays).
	lru   []uint64 // sets*ways; last-touch tick
	dirty []bool   // sets*ways
	tick  uint64

	// MRU memo: the set/way of the line touched by the immediately
	// preceding hit/install, or mruSet < 0. Lets consecutive
	// references to one line skip the set scan entirely.
	mruSet  int
	mruWay  int
	mruLine uint64

	stats Stats
}

// NewSetAssoc builds a cache of the given capacity, associativity and
// line size. Capacity must be an exact multiple of ways*lineSize, the
// line size a power of two, and the resulting set count a power of two.
func NewSetAssoc(name string, capacity units.Bytes, ways int, lineSize units.Bytes) (*SetAssoc, error) {
	if capacity <= 0 || ways <= 0 || lineSize <= 0 || capacity%lineSize != 0 {
		return nil, fmt.Errorf("cache: bad geometry cap=%v ways=%d line=%v", capacity, ways, lineSize)
	}
	if lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("cache: line size %v must be a power of two", lineSize)
	}
	lines := int64(capacity / lineSize)
	if lines%int64(ways) != 0 || lines == 0 {
		return nil, fmt.Errorf("cache: capacity %v not divisible into %d ways of %v lines", capacity, ways, lineSize)
	}
	sets := int(lines) / ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d must be a power of two", sets)
	}
	c := &SetAssoc{
		name:      name,
		lineSize:  lineSize,
		sets:      sets,
		ways:      ways,
		lineShift: uint(bits.TrailingZeros64(uint64(lineSize))),
		setMask:   uint64(sets - 1),
		setShift:  uint(bits.TrailingZeros64(uint64(sets))),
		tags:      make([]uint64, int(lines)),
		vcnt:      make([]int32, sets),
		mruSet:    -1,
	}
	if ways <= packedMaxWays {
		c.packed = true
		c.stack = make([]uint64, sets)
		c.dmask = make([]uint16, sets)
		c.lruShift = uint(4 * (ways - 1))
		c.stackMask = ^uint64(0) >> (64 - 4*uint(ways))
	} else {
		c.lru = make([]uint64, int(lines))
		c.dirty = make([]bool, int(lines))
	}
	return c, nil
}

// Name returns the cache's label.
func (c *SetAssoc) Name() string { return c.name }

// Sets returns the number of sets.
func (c *SetAssoc) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *SetAssoc) Ways() int { return c.ways }

// Capacity returns the data capacity.
func (c *SetAssoc) Capacity() units.Bytes {
	return units.Bytes(c.sets*c.ways) * c.lineSize
}

// Stats returns a copy of the event counters.
func (c *SetAssoc) Stats() Stats { return c.stats }

// ResetStats clears the event counters but keeps contents.
func (c *SetAssoc) ResetStats() { c.stats = Stats{} }

// findWay returns the way offset of stored tag stag in the set at
// base, or -1. Unrolled for the common associativities: the slice is
// contiguous, so each probe is a handful of compares in one or two
// host cache lines.
func (c *SetAssoc) findWay(base int, stag uint64) int {
	switch c.ways {
	case 4:
		t := (*[4]uint64)(c.tags[base : base+4])
		if t[0] == stag {
			return 0
		}
		if t[1] == stag {
			return 1
		}
		if t[2] == stag {
			return 2
		}
		if t[3] == stag {
			return 3
		}
		return -1
	case 8:
		t := (*[8]uint64)(c.tags[base : base+8])
		if t[0] == stag {
			return 0
		}
		if t[1] == stag {
			return 1
		}
		if t[2] == stag {
			return 2
		}
		if t[3] == stag {
			return 3
		}
		if t[4] == stag {
			return 4
		}
		if t[5] == stag {
			return 5
		}
		if t[6] == stag {
			return 6
		}
		if t[7] == stag {
			return 7
		}
		return -1
	case 16:
		t := (*[16]uint64)(c.tags[base : base+16])
		for i := 0; i < 16; i += 4 {
			if t[i] == stag {
				return i
			}
			if t[i+1] == stag {
				return i + 1
			}
			if t[i+2] == stag {
				return i + 2
			}
			if t[i+3] == stag {
				return i + 3
			}
		}
		return -1
	}
	for i, t := range c.tags[base : base+c.ways] {
		if t == stag {
			return i
		}
	}
	return -1
}

// TouchTagSet pre-reads the tag words of lineAddr's set without
// changing any state. Batch replay calls it a few accesses ahead of
// the demand pointer so the host's own cache misses on the tag array
// overlap instead of serializing: 8 ways of tags share one host line,
// so one load per 8 ways covers the whole set. Callers must consume
// the returned word (xor into a sink) so the loads cannot be elided.
func (c *SetAssoc) TouchTagSet(lineAddr uint64) uint64 {
	base := int(lineAddr&c.setMask) * c.ways
	t := c.tags[base]
	if c.ways > 8 {
		t ^= c.tags[base+8]
	}
	return t
}

// findWayMRU is findWay with a one-compare fast path: it probes the
// set's MRU way (the bottom nibble of the packed LRU stack) before
// scanning. Prefetch installs and repeat touches leave the interesting
// way at MRU, so sequential replay resolves most hits in one compare
// instead of a scan across the whole set. Tags are unique within a
// set, so the probe and the scan can never disagree. Packed sets only.
//
//simd:hotpath — runs once per simulated access.
func (c *SetAssoc) findWayMRU(set, base int, stag uint64) int {
	if w := int(c.stack[set] & 15); c.tags[base+w] == stag {
		return w
	}
	return c.findWay(base, stag)
}

// stackTouch moves resident way w to the top (MRU nibble) of set's
// packed LRU stack, branch-free. The xor broadcast makes w's nibble
// the lowest zero nibble of x, the borrow trick flags it, and the
// shifted recombination closes the gap.
func (c *SetAssoc) stackTouch(set, w int) {
	s := c.stack[set]
	x := s ^ (uint64(w) * nibLo)
	y := (x - nibLo) &^ x & 0x8888888888888888
	p := uint(bits.TrailingZeros64(y)) &^ 3 // bit offset of w's nibble
	below := s & (uint64(1)<<p - 1)
	above := s &^ (uint64(1)<<(p+4) - 1)
	c.stack[set] = above | below<<4 | uint64(w)
}

// victimInstall picks the replacement way of a packed set and pushes
// it to the top of the stack: the next unused way index while the set
// is filling (valid ways always occupy [0, vcnt)), else the LRU
// nibble. O(1) either way — no per-way scan.
func (c *SetAssoc) victimInstall(set int) int {
	if n := c.vcnt[set]; int(n) < c.ways {
		c.vcnt[set] = n + 1
		c.stack[set] = c.stack[set]<<4 | uint64(n)
		return int(n)
	}
	s := c.stack[set]
	w := int(s >> c.lruShift & 15)
	c.stack[set] = (s<<4 | uint64(w)) & c.stackMask
	return w
}

// victimWay picks the replacement way on the generic (tick) path: an
// invalid way while the set is not yet full (every invalid way is
// observationally equivalent, so the choice among them is free), else
// the least-recently-used way (earliest index on ties).
func (c *SetAssoc) victimWay(set int, base int) int {
	if int(c.vcnt[set]) < c.ways {
		c.vcnt[set]++
		return c.findWay(base, 0)
	}
	lru := c.lru[base : base+c.ways]
	victim := 0
	min := lru[0]
	for i := 1; i < len(lru); i++ {
		if lru[i] < min {
			min = lru[i]
			victim = i
		}
	}
	return victim
}

// AccessLine performs one access by line address (byte address divided
// by the line size). It reports whether it hit and, when a dirty
// victim had to be written back, the victim's line address with
// wb=true. This is the trace-replay fast path: no byte/line
// conversion, shift/mask indexing, MRU short-circuit, one tag scan
// per operation.
func (c *SetAssoc) AccessLine(lineAddr uint64, kind AccessKind) (hit bool, wbLine uint64, wb bool) {
	if c.packed {
		if c.mruSet >= 0 && lineAddr == c.mruLine {
			// Coalesced repeat: the line is already the MRU of its set,
			// so the stack needs no update.
			if kind == Write {
				c.dmask[c.mruSet] |= 1 << uint(c.mruWay)
			}
			c.stats.Hits++
			return true, 0, false
		}
		set := int(lineAddr & c.setMask)
		stag := (lineAddr >> c.setShift) + 1
		base := set * c.ways
		if way := c.findWayMRU(set, base, stag); way >= 0 {
			c.stackTouch(set, way)
			if kind == Write {
				c.dmask[set] |= 1 << uint(way)
			}
			c.stats.Hits++
			c.mruSet, c.mruWay, c.mruLine = set, way, lineAddr
			return true, 0, false
		}
		c.stats.Misses++
		way := c.victimInstall(set)
		idx := base + way
		bit := uint16(1) << uint(way)
		if c.tags[idx] != 0 {
			c.stats.Evictions++
			if c.dmask[set]&bit != 0 {
				c.stats.DirtyWritebacks++
				wbLine = (c.tags[idx]-1)<<c.setShift | uint64(set)
				wb = true
			}
		}
		c.tags[idx] = stag
		if kind == Write {
			c.dmask[set] |= bit
		} else {
			c.dmask[set] &^= bit
		}
		c.mruSet, c.mruWay, c.mruLine = set, way, lineAddr
		return false, wbLine, wb
	}

	c.tick++
	if c.mruSet >= 0 && lineAddr == c.mruLine {
		idx := c.mruSet*c.ways + c.mruWay
		c.lru[idx] = c.tick
		if kind == Write {
			c.dirty[idx] = true
		}
		c.stats.Hits++
		return true, 0, false
	}
	set := int(lineAddr & c.setMask)
	stag := (lineAddr >> c.setShift) + 1
	base := set * c.ways
	if way := c.findWay(base, stag); way >= 0 {
		idx := base + way
		c.lru[idx] = c.tick
		if kind == Write {
			c.dirty[idx] = true
		}
		c.stats.Hits++
		c.mruSet, c.mruWay, c.mruLine = set, way, lineAddr
		return true, 0, false
	}
	c.stats.Misses++
	way := c.victimWay(set, base)
	idx := base + way
	if c.tags[idx] != 0 {
		c.stats.Evictions++
		if c.dirty[idx] {
			c.stats.DirtyWritebacks++
			wbLine = (c.tags[idx]-1)<<c.setShift | uint64(set)
			wb = true
		}
	}
	c.tags[idx] = stag
	c.dirty[idx] = kind == Write
	c.lru[idx] = c.tick
	c.mruSet, c.mruWay, c.mruLine = set, way, lineAddr
	return false, wbLine, wb
}

// TouchMRU re-touches the line affected by the immediately preceding
// Access/AccessLine/Install on this cache, exactly as a repeated hit
// on that line would (recency, dirty, hit count). Callers must
// guarantee no other operation intervened; the trace simulator uses it
// to coalesce consecutive references to one line. On the packed path
// the line is by definition already its set's MRU, so only dirty
// state and the hit counter move.
func (c *SetAssoc) TouchMRU(kind AccessKind) {
	if c.packed {
		if kind == Write {
			c.dmask[c.mruSet] |= 1 << uint(c.mruWay)
		}
		c.stats.Hits++
		return
	}
	c.tick++
	idx := c.mruSet*c.ways + c.mruWay
	c.lru[idx] = c.tick
	if kind == Write {
		c.dirty[idx] = true
	}
	c.stats.Hits++
}

// Access performs one access by byte address. It returns whether it
// hit, and if a dirty line had to be written back, its byte address
// (else 0) with wb=true.
func (c *SetAssoc) Access(addr uint64, kind AccessKind) (hit bool, wbAddr uint64, wb bool) {
	hit, wbLine, wb := c.AccessLine(addr>>c.lineShift, kind)
	if wb {
		wbAddr = wbLine << c.lineShift
	}
	return hit, wbAddr, wb
}

// ContainsLine reports whether the given line is resident (without
// updating recency or stats); used by tests and the prefetcher.
func (c *SetAssoc) ContainsLine(lineAddr uint64) bool {
	if c.mruSet >= 0 && lineAddr == c.mruLine {
		return true
	}
	set := lineAddr & c.setMask
	stag := (lineAddr >> c.setShift) + 1
	return c.findWay(int(set)*c.ways, stag) >= 0
}

// Contains reports whether the line holding addr is resident.
func (c *SetAssoc) Contains(addr uint64) bool {
	return c.ContainsLine(addr >> c.lineShift)
}

// InstallLine inserts a line (by line address) without counting a
// demand miss (prefetch fill). It returns writeback info like
// AccessLine. An already-resident line is left untouched — residency
// check and install share one tag scan.
func (c *SetAssoc) InstallLine(lineAddr uint64) (wbLine uint64, wb bool) {
	_, wbLine, wb = c.InstallLineIfAbsent(lineAddr)
	return wbLine, wb
}

// InstallLineIfAbsent is InstallLine plus an installed report: true
// when the line was absent and has been installed, false when it was
// already resident (left untouched). The combined check-and-install
// costs one tag scan, where a ContainsLine+InstallLine pair costs two.
func (c *SetAssoc) InstallLineIfAbsent(lineAddr uint64) (installed bool, wbLine uint64, wb bool) {
	if c.mruSet >= 0 && lineAddr == c.mruLine {
		return false, 0, false
	}
	set := int(lineAddr & c.setMask)
	stag := (lineAddr >> c.setShift) + 1
	base := set * c.ways
	if c.packed {
		if c.findWayMRU(set, base, stag) >= 0 {
			return false, 0, false
		}
		way := c.victimInstall(set)
		idx := base + way
		bit := uint16(1) << uint(way)
		if c.tags[idx] != 0 {
			c.stats.Evictions++
			if c.dmask[set]&bit != 0 {
				c.stats.DirtyWritebacks++
				wbLine = (c.tags[idx]-1)<<c.setShift | uint64(set)
				wb = true
			}
		}
		c.tags[idx] = stag
		c.dmask[set] &^= bit
		c.mruSet, c.mruWay, c.mruLine = set, way, lineAddr
		return true, wbLine, wb
	}
	if c.findWay(base, stag) >= 0 {
		return false, 0, false
	}
	c.tick++
	way := c.victimWay(set, base)
	idx := base + way
	if c.tags[idx] != 0 {
		c.stats.Evictions++
		if c.dirty[idx] {
			c.stats.DirtyWritebacks++
			wbLine = (c.tags[idx]-1)<<c.setShift | uint64(set)
			wb = true
		}
	}
	c.tags[idx] = stag
	c.dirty[idx] = false
	c.lru[idx] = c.tick
	c.mruSet, c.mruWay, c.mruLine = set, way, lineAddr
	return true, wbLine, wb
}

// Install inserts a line by byte address without counting a demand
// miss (prefetch fill). It returns writeback info like Access.
func (c *SetAssoc) Install(addr uint64) (wbAddr uint64, wb bool) {
	wbLine, wb := c.InstallLine(addr >> c.lineShift)
	if wb {
		wbAddr = wbLine << c.lineShift
	}
	return wbAddr, wb
}

// Flush invalidates everything, returning how many dirty lines were
// written back.
func (c *SetAssoc) Flush() int64 {
	var wb int64
	if c.packed {
		for s := range c.stack {
			wb += int64(bits.OnesCount16(c.dmask[s]))
			c.stack[s] = 0
			c.dmask[s] = 0
		}
		for i := range c.tags {
			c.tags[i] = 0
		}
	} else {
		for i := range c.tags {
			if c.tags[i] != 0 && c.dirty[i] {
				wb++
			}
			c.tags[i] = 0
			c.dirty[i] = false
			c.lru[i] = 0
		}
	}
	for i := range c.vcnt {
		c.vcnt[i] = 0
	}
	c.mruSet = -1
	c.stats.DirtyWritebacks += wb
	return wb
}
