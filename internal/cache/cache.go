// Package cache implements the cache hierarchy of the simulated KNL:
// generic set-associative SRAM caches (L1D, per-tile L2), a stream
// prefetcher, a two-level TLB with page-walk costs, and the MCDRAM
// direct-mapped memory-side cache that backs the paper's "cache mode".
//
// Two layers coexist deliberately:
//
//   - a functional, trace-driven layer (this file and mcdram.go) that
//     counts real hits and misses for replayed access streams, and
//   - an analytic layer (hitmodel.go) used by the timing engine at
//     paper-scale problem sizes where replaying every access would be
//     infeasible.
//
// Tests cross-validate the two layers on overlapping configurations.
//
// The functional layer is the hot path of trace replay, so SetAssoc is
// organised for speed: geometry is restricted to power-of-two line and
// set counts so set/tag extraction is shift/mask (no div or mod), tags
// are stored line-granular in a contiguous slice separate from LRU and
// dirty state (a tag probe touches one or two cache lines of host
// memory), the tag scan is unrolled for the common 4/8/16-way
// geometries, and an MRU memo short-circuits repeated references to
// the line touched by the immediately preceding operation.
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/units"
)

// AccessKind distinguishes reads from writes for dirty tracking.
type AccessKind int

const (
	// Read is a demand load.
	Read AccessKind = iota
	// Write is a store (write-allocate, write-back policy).
	Write
)

// Stats counts cache events.
type Stats struct {
	Hits, Misses    int64
	Evictions       int64
	DirtyWritebacks int64
}

// HitRatio returns hits/(hits+misses), or 0 for an untouched cache.
func (s Stats) HitRatio() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// Add accumulates other into s (used when merging sharded replays).
func (s *Stats) Add(other Stats) {
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Evictions += other.Evictions
	s.DirtyWritebacks += other.DirtyWritebacks
}

// SetAssoc is a set-associative write-back, write-allocate cache with
// LRU replacement.
//
// State is kept struct-of-arrays: tags (stored as tag+1 with 0 marking
// an invalid way) in one slice so the hit scan is a contiguous
// eight-byte compare loop, last-touch ticks and dirty flags in
// parallel slices touched only on hits and evictions.
type SetAssoc struct {
	name     string
	lineSize units.Bytes
	sets     int
	ways     int

	lineShift uint   // log2(lineSize)
	setMask   uint64 // sets-1
	setShift  uint   // log2(sets)

	tags  []uint64 // sets*ways; stored tag+1, 0 = invalid
	lru   []uint64 // sets*ways; last-touch tick
	dirty []bool   // sets*ways
	vcnt  []int32  // per set: number of valid ways (skips the invalid-way scan once full)

	// MRU memo: index of the line touched by the immediately
	// preceding hit/install, or -1. Lets consecutive references to
	// one line skip the set scan entirely.
	mru     int
	mruLine uint64

	tick  uint64
	stats Stats
}

// NewSetAssoc builds a cache of the given capacity, associativity and
// line size. Capacity must be an exact multiple of ways*lineSize, the
// line size a power of two, and the resulting set count a power of two.
func NewSetAssoc(name string, capacity units.Bytes, ways int, lineSize units.Bytes) (*SetAssoc, error) {
	if capacity <= 0 || ways <= 0 || lineSize <= 0 || capacity%lineSize != 0 {
		return nil, fmt.Errorf("cache: bad geometry cap=%v ways=%d line=%v", capacity, ways, lineSize)
	}
	if lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("cache: line size %v must be a power of two", lineSize)
	}
	lines := int64(capacity / lineSize)
	if lines%int64(ways) != 0 || lines == 0 {
		return nil, fmt.Errorf("cache: capacity %v not divisible into %d ways of %v lines", capacity, ways, lineSize)
	}
	sets := int(lines) / ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d must be a power of two", sets)
	}
	return &SetAssoc{
		name:      name,
		lineSize:  lineSize,
		sets:      sets,
		ways:      ways,
		lineShift: uint(bits.TrailingZeros64(uint64(lineSize))),
		setMask:   uint64(sets - 1),
		setShift:  uint(bits.TrailingZeros64(uint64(sets))),
		tags:      make([]uint64, int(lines)),
		lru:       make([]uint64, int(lines)),
		dirty:     make([]bool, int(lines)),
		vcnt:      make([]int32, sets),
		mru:       -1,
	}, nil
}

// Name returns the cache's label.
func (c *SetAssoc) Name() string { return c.name }

// Sets returns the number of sets.
func (c *SetAssoc) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *SetAssoc) Ways() int { return c.ways }

// Capacity returns the data capacity.
func (c *SetAssoc) Capacity() units.Bytes {
	return units.Bytes(c.sets*c.ways) * c.lineSize
}

// Stats returns a copy of the event counters.
func (c *SetAssoc) Stats() Stats { return c.stats }

// ResetStats clears the event counters but keeps contents.
func (c *SetAssoc) ResetStats() { c.stats = Stats{} }

// findWay returns the way offset of stored tag stag in the set at
// base, or -1. Unrolled for the common associativities: the slice is
// contiguous, so each probe is a handful of compares in one or two
// host cache lines.
func (c *SetAssoc) findWay(base int, stag uint64) int {
	switch c.ways {
	case 4:
		t := (*[4]uint64)(c.tags[base : base+4])
		if t[0] == stag {
			return 0
		}
		if t[1] == stag {
			return 1
		}
		if t[2] == stag {
			return 2
		}
		if t[3] == stag {
			return 3
		}
		return -1
	case 8:
		t := (*[8]uint64)(c.tags[base : base+8])
		if t[0] == stag {
			return 0
		}
		if t[1] == stag {
			return 1
		}
		if t[2] == stag {
			return 2
		}
		if t[3] == stag {
			return 3
		}
		if t[4] == stag {
			return 4
		}
		if t[5] == stag {
			return 5
		}
		if t[6] == stag {
			return 6
		}
		if t[7] == stag {
			return 7
		}
		return -1
	case 16:
		t := (*[16]uint64)(c.tags[base : base+16])
		for i := 0; i < 16; i += 4 {
			if t[i] == stag {
				return i
			}
			if t[i+1] == stag {
				return i + 1
			}
			if t[i+2] == stag {
				return i + 2
			}
			if t[i+3] == stag {
				return i + 3
			}
		}
		return -1
	}
	for i, t := range c.tags[base : base+c.ways] {
		if t == stag {
			return i
		}
	}
	return -1
}

// victimWay picks the replacement way: an invalid way while the set
// is not yet full (every invalid way is observationally equivalent, so
// the choice among them is free), else the least-recently-used way
// (earliest index on ties). The per-set valid count makes the common
// steady-state case a single LRU scan with no invalid-way probe.
func (c *SetAssoc) victimWay(set int, base int) int {
	if int(c.vcnt[set]) < c.ways {
		c.vcnt[set]++
		return c.findWay(base, 0)
	}
	lru := c.lru[base : base+c.ways]
	victim := 0
	min := lru[0]
	for i := 1; i < len(lru); i++ {
		if lru[i] < min {
			min = lru[i]
			victim = i
		}
	}
	return victim
}

// AccessLine performs one access by line address (byte address divided
// by the line size). It reports whether it hit and, when a dirty
// victim had to be written back, the victim's line address with
// wb=true. This is the trace-replay fast path: no byte/line
// conversion, shift/mask indexing, MRU short-circuit.
func (c *SetAssoc) AccessLine(lineAddr uint64, kind AccessKind) (hit bool, wbLine uint64, wb bool) {
	c.tick++
	if c.mru >= 0 && lineAddr == c.mruLine {
		c.lru[c.mru] = c.tick
		if kind == Write {
			c.dirty[c.mru] = true
		}
		c.stats.Hits++
		return true, 0, false
	}
	set := lineAddr & c.setMask
	stag := (lineAddr >> c.setShift) + 1
	base := int(set) * c.ways
	if way := c.findWay(base, stag); way >= 0 {
		idx := base + way
		c.lru[idx] = c.tick
		if kind == Write {
			c.dirty[idx] = true
		}
		c.stats.Hits++
		c.mru, c.mruLine = idx, lineAddr
		return true, 0, false
	}
	c.stats.Misses++
	idx := base + c.victimWay(int(set), base)
	if c.tags[idx] != 0 {
		c.stats.Evictions++
		if c.dirty[idx] {
			c.stats.DirtyWritebacks++
			wbLine = (c.tags[idx]-1)<<c.setShift | set
			wb = true
		}
	}
	c.tags[idx] = stag
	c.dirty[idx] = kind == Write
	c.lru[idx] = c.tick
	c.mru, c.mruLine = idx, lineAddr
	return false, wbLine, wb
}

// TouchMRU re-touches the line affected by the immediately preceding
// Access/AccessLine/Install on this cache, exactly as a repeated hit
// on that line would (tick, LRU, dirty, hit count). Callers must
// guarantee no other operation intervened; the trace simulator uses it
// to coalesce consecutive references to one line.
func (c *SetAssoc) TouchMRU(kind AccessKind) {
	c.tick++
	c.lru[c.mru] = c.tick
	if kind == Write {
		c.dirty[c.mru] = true
	}
	c.stats.Hits++
}

// Access performs one access by byte address. It returns whether it
// hit, and if a dirty line had to be written back, its byte address
// (else 0) with wb=true.
func (c *SetAssoc) Access(addr uint64, kind AccessKind) (hit bool, wbAddr uint64, wb bool) {
	hit, wbLine, wb := c.AccessLine(addr>>c.lineShift, kind)
	if wb {
		wbAddr = wbLine << c.lineShift
	}
	return hit, wbAddr, wb
}

// ContainsLine reports whether the given line is resident (without
// updating LRU or stats); used by tests and the prefetcher.
func (c *SetAssoc) ContainsLine(lineAddr uint64) bool {
	if c.mru >= 0 && lineAddr == c.mruLine {
		return true
	}
	set := lineAddr & c.setMask
	stag := (lineAddr >> c.setShift) + 1
	return c.findWay(int(set)*c.ways, stag) >= 0
}

// Contains reports whether the line holding addr is resident.
func (c *SetAssoc) Contains(addr uint64) bool {
	return c.ContainsLine(addr >> c.lineShift)
}

// InstallLine inserts a line (by line address) without counting a
// demand miss (prefetch fill). It returns writeback info like
// AccessLine.
func (c *SetAssoc) InstallLine(lineAddr uint64) (wbLine uint64, wb bool) {
	if c.ContainsLine(lineAddr) {
		return 0, false
	}
	c.tick++
	set := lineAddr & c.setMask
	stag := (lineAddr >> c.setShift) + 1
	base := int(set) * c.ways
	idx := base + c.victimWay(int(set), base)
	if c.tags[idx] != 0 {
		c.stats.Evictions++
		if c.dirty[idx] {
			c.stats.DirtyWritebacks++
			wbLine = (c.tags[idx]-1)<<c.setShift | set
			wb = true
		}
	}
	c.tags[idx] = stag
	c.dirty[idx] = false
	c.lru[idx] = c.tick
	c.mru, c.mruLine = idx, lineAddr
	return wbLine, wb
}

// Install inserts a line by byte address without counting a demand
// miss (prefetch fill). It returns writeback info like Access.
func (c *SetAssoc) Install(addr uint64) (wbAddr uint64, wb bool) {
	wbLine, wb := c.InstallLine(addr >> c.lineShift)
	if wb {
		wbAddr = wbLine << c.lineShift
	}
	return wbAddr, wb
}

// Flush invalidates everything, returning how many dirty lines were
// written back.
func (c *SetAssoc) Flush() int64 {
	var wb int64
	for i := range c.tags {
		if c.tags[i] != 0 && c.dirty[i] {
			wb++
		}
		c.tags[i] = 0
		c.dirty[i] = false
		c.lru[i] = 0
	}
	for i := range c.vcnt {
		c.vcnt[i] = 0
	}
	c.mru = -1
	c.stats.DirtyWritebacks += wb
	return wb
}
