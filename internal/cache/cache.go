// Package cache implements the cache hierarchy of the simulated KNL:
// generic set-associative SRAM caches (L1D, per-tile L2), a stream
// prefetcher, a two-level TLB with page-walk costs, and the MCDRAM
// direct-mapped memory-side cache that backs the paper's "cache mode".
//
// Two layers coexist deliberately:
//
//   - a functional, trace-driven layer (this file and mcdram.go) that
//     counts real hits and misses for replayed access streams, and
//   - an analytic layer (hitmodel.go) used by the timing engine at
//     paper-scale problem sizes where replaying every access would be
//     infeasible.
//
// Tests cross-validate the two layers on overlapping configurations.
package cache

import (
	"fmt"

	"repro/internal/units"
)

// AccessKind distinguishes reads from writes for dirty tracking.
type AccessKind int

const (
	// Read is a demand load.
	Read AccessKind = iota
	// Write is a store (write-allocate, write-back policy).
	Write
)

// Stats counts cache events.
type Stats struct {
	Hits, Misses   int64
	Evictions      int64
	DirtyWritebaks int64
}

// HitRatio returns hits/(hits+misses), or 0 for an untouched cache.
func (s Stats) HitRatio() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// line is one resident cache line.
type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // last-touch tick
}

// SetAssoc is a set-associative write-back, write-allocate cache with
// LRU replacement.
type SetAssoc struct {
	name     string
	lineSize units.Bytes
	sets     int
	ways     int
	data     []line // sets*ways
	tick     uint64
	stats    Stats
}

// NewSetAssoc builds a cache of the given capacity, associativity and
// line size. Capacity must be an exact multiple of ways*lineSize.
func NewSetAssoc(name string, capacity units.Bytes, ways int, lineSize units.Bytes) (*SetAssoc, error) {
	if capacity <= 0 || ways <= 0 || lineSize <= 0 || capacity%lineSize != 0 {
		return nil, fmt.Errorf("cache: bad geometry cap=%v ways=%d line=%v", capacity, ways, lineSize)
	}
	lines := int64(capacity / lineSize)
	if lines%int64(ways) != 0 || lines == 0 {
		return nil, fmt.Errorf("cache: capacity %v not divisible into %d ways of %v lines", capacity, ways, lineSize)
	}
	sets := int(lines) / ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d must be a power of two", sets)
	}
	return &SetAssoc{
		name:     name,
		lineSize: lineSize,
		sets:     sets,
		ways:     ways,
		data:     make([]line, int(lines)),
	}, nil
}

// Name returns the cache's label.
func (c *SetAssoc) Name() string { return c.name }

// Sets returns the number of sets.
func (c *SetAssoc) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *SetAssoc) Ways() int { return c.ways }

// Capacity returns the data capacity.
func (c *SetAssoc) Capacity() units.Bytes {
	return units.Bytes(c.sets*c.ways) * c.lineSize
}

// Stats returns a copy of the event counters.
func (c *SetAssoc) Stats() Stats { return c.stats }

// ResetStats clears the event counters but keeps contents.
func (c *SetAssoc) ResetStats() { c.stats = Stats{} }

func (c *SetAssoc) index(addr uint64) (set int, tag uint64) {
	lineAddr := addr / uint64(c.lineSize)
	return int(lineAddr % uint64(c.sets)), lineAddr / uint64(c.sets)
}

// Access performs one access. It returns whether it hit, and if a
// dirty line had to be written back, its line address (else 0) with
// wb=true.
func (c *SetAssoc) Access(addr uint64, kind AccessKind) (hit bool, wbAddr uint64, wb bool) {
	c.tick++
	set, tag := c.index(addr)
	base := set * c.ways
	victim := base
	for i := base; i < base+c.ways; i++ {
		l := &c.data[i]
		if l.valid && l.tag == tag {
			l.lru = c.tick
			if kind == Write {
				l.dirty = true
			}
			c.stats.Hits++
			return true, 0, false
		}
		if !c.data[i].valid {
			victim = i
		} else if c.data[victim].valid && c.data[i].lru < c.data[victim].lru {
			victim = i
		}
	}
	c.stats.Misses++
	v := &c.data[victim]
	if v.valid {
		c.stats.Evictions++
		if v.dirty {
			c.stats.DirtyWritebaks++
			wbAddr = (v.tag*uint64(c.sets) + uint64(set)) * uint64(c.lineSize)
			wb = true
		}
	}
	v.valid = true
	v.tag = tag
	v.dirty = kind == Write
	v.lru = c.tick
	return false, wbAddr, wb
}

// Contains reports whether the line holding addr is resident (without
// updating LRU or stats); used by tests and the prefetcher.
func (c *SetAssoc) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.data[i].valid && c.data[i].tag == tag {
			return true
		}
	}
	return false
}

// Install inserts a line without counting a demand miss (prefetch
// fill). It returns writeback info like Access.
func (c *SetAssoc) Install(addr uint64) (wbAddr uint64, wb bool) {
	if c.Contains(addr) {
		return 0, false
	}
	c.tick++
	set, tag := c.index(addr)
	base := set * c.ways
	victim := base
	for i := base; i < base+c.ways; i++ {
		if !c.data[i].valid {
			victim = i
			break
		}
		if c.data[i].lru < c.data[victim].lru {
			victim = i
		}
	}
	v := &c.data[victim]
	if v.valid {
		c.stats.Evictions++
		if v.dirty {
			c.stats.DirtyWritebaks++
			wbAddr = (v.tag*uint64(c.sets) + uint64(set)) * uint64(c.lineSize)
			wb = true
		}
	}
	v.valid = true
	v.tag = tag
	v.dirty = false
	v.lru = c.tick
	return wbAddr, wb
}

// Flush invalidates everything, returning how many dirty lines were
// written back.
func (c *SetAssoc) Flush() int64 {
	var wb int64
	for i := range c.data {
		if c.data[i].valid && c.data[i].dirty {
			wb++
		}
		c.data[i] = line{}
	}
	c.stats.DirtyWritebaks += wb
	return wb
}
