package tracesim

import (
	"testing"

	"repro/internal/cache"
)

// scalarOnly hides a generator's batch method so Run takes the
// one-access-at-a-time path.
type scalarOnly struct{ g Generator }

func (s scalarOnly) Next() (Access, bool) { return s.g.Next() }
func (s scalarOnly) Reset()               { s.g.Reset() }

// generators returns fresh fixed-seed instances of every built-in
// generator, keyed by name.
func generators(t *testing.T) map[string]func() BatchGenerator {
	t.Helper()
	return map[string]func() BatchGenerator{
		"sequential": func() BatchGenerator {
			g, err := NewSequential(0, 4<<20, 64, cache.Read)
			if err != nil {
				t.Fatal(err)
			}
			return g
		},
		"sequential-writes": func() BatchGenerator {
			g, err := NewSequential(1<<12, 2<<20, 32, cache.Write)
			if err != nil {
				t.Fatal(err)
			}
			return g
		},
		"random": func() BatchGenerator {
			g, err := NewUniformRandom(0, 8<<20, 200000, cache.Read, 42)
			if err != nil {
				t.Fatal(err)
			}
			return g
		},
		"random-writes": func() BatchGenerator {
			g, err := NewUniformRandom(0, 4<<20, 120000, cache.Write, 7)
			if err != nil {
				t.Fatal(err)
			}
			return g
		},
		"chase": func() BatchGenerator {
			g, err := NewPointerChase(0, 2<<20, 150000, cache.Read, 99)
			if err != nil {
				t.Fatal(err)
			}
			return g
		},
	}
}

func configs() map[string]Config {
	flat := DefaultConfig(0)
	cacheMode := DefaultConfig(4 << 20)
	noPF := DefaultConfig(4 << 20)
	noPF.Prefetcher = false
	return map[string]Config{"flat": flat, "cache-mode": cacheMode, "no-prefetch": noPF}
}

// requireEqualResults demands identical event counts AND identical
// replay time: time is accumulated in integer picoseconds, so every
// replay gear must agree byte-for-byte regardless of summation order.
func requireEqualResults(t *testing.T, label string, want, got Result) {
	t.Helper()
	if got.Accesses != want.Accesses {
		t.Errorf("%s: accesses %d != %d", label, got.Accesses, want.Accesses)
	}
	for _, lvl := range []struct {
		name      string
		want, got cache.Stats
	}{
		{"L1", want.L1, got.L1},
		{"L2", want.L2, got.L2},
		{"MemCache", want.MemCache, got.MemCache},
	} {
		if lvl.want != lvl.got {
			t.Errorf("%s: %s stats %+v != %+v", label, lvl.name, lvl.got, lvl.want)
		}
	}
	if got.MemReads != want.MemReads || got.MemWrites != want.MemWrites {
		t.Errorf("%s: traffic reads/writes %d/%d != %d/%d",
			label, got.MemReads, got.MemWrites, want.MemReads, want.MemWrites)
	}
	if got.Prefetches != want.Prefetches {
		t.Errorf("%s: prefetches %d != %d", label, got.Prefetches, want.Prefetches)
	}
	if got.TotalTimePS != want.TotalTimePS {
		t.Errorf("%s: time %d ps != %d ps", label, got.TotalTimePS, want.TotalTimePS)
	}
	if got.TotalTimeNS != want.TotalTimeNS {
		t.Errorf("%s: derived time %.3f != %.3f", label, got.TotalTimeNS, want.TotalTimeNS)
	}
}

// TestBatchedMatchesScalar proves the chunked replay path is
// bit-identical to one-access-at-a-time replay for every generator and
// hierarchy configuration.
func TestBatchedMatchesScalar(t *testing.T) {
	for cfgName, cfg := range configs() {
		for genName, mk := range generators(t) {
			scalarSim, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			batchSim, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			scalarSim.Run(scalarOnly{mk()})
			batchSim.Run(mk())
			requireEqualResults(t, cfgName+"/"+genName, scalarSim.Result(), batchSim.Result())
		}
	}
}

// TestShardedMatchesScalar proves the concurrent sharded replay merges
// to exactly the scalar aggregate counts for every generator,
// configuration, and shard count.
func TestShardedMatchesScalar(t *testing.T) {
	for cfgName, cfg := range configs() {
		for genName, mk := range generators(t) {
			ref, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref.Run(mk())
			want := ref.Result()
			for _, shards := range []int{1, 2, 4, 8} {
				sh, err := NewSharded(cfg, shards)
				if err != nil {
					t.Fatal(err)
				}
				sh.Run(mk())
				requireEqualResults(t, cfgName+"/"+genName+"/shards="+string(rune('0'+shards)), want, sh.Result())
			}
		}
	}
}

// TestShardedRunPassesMatchesScalar covers the steady-state
// (multi-pass, reset-in-between) path.
func TestShardedRunPassesMatchesScalar(t *testing.T) {
	cfg := DefaultConfig(4 << 20)
	g1, _ := NewUniformRandom(0, 8<<20, 100000, cache.Read, 3)
	g2, _ := NewUniformRandom(0, 8<<20, 100000, cache.Read, 3)
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.RunPasses(g1, 3)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sh.RunPasses(g2, 3)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, "run-passes", want, got)
}

// TestShardedValidation exercises the geometry preconditions.
func TestShardedValidation(t *testing.T) {
	cfg := DefaultConfig(0)
	if _, err := NewSharded(cfg, 0); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := NewSharded(cfg, 3); err == nil {
		t.Error("non-power-of-two shards accepted")
	}
	if _, err := NewSharded(cfg, 4); err != nil {
		t.Errorf("4 shards rejected: %v", err)
	}
	bad := DefaultConfig(3 * 64) // 3 lines: not divisible by 2 shards
	if _, err := NewSharded(bad, 2); err == nil {
		t.Error("indivisible memory-side cache accepted")
	}
}

// TestPointerChaseGenerator checks the permutation walk: every line of
// the region is visited exactly once per cycle and the walk is
// reproducible after Reset.
func TestPointerChaseGenerator(t *testing.T) {
	const lines = 64
	g, err := NewPointerChase(0, lines*64, lines, cache.Read, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	first := make([]uint64, 0, lines)
	for {
		a, ok := g.Next()
		if !ok {
			break
		}
		seen[a.Addr]++
		first = append(first, a.Addr)
	}
	if len(seen) != lines {
		t.Fatalf("cycle visited %d distinct lines, want %d", len(seen), lines)
	}
	for addr, n := range seen {
		if n != 1 {
			t.Fatalf("line %#x visited %d times", addr, n)
		}
		if addr%64 != 0 || addr >= lines*64 {
			t.Fatalf("address %#x outside region or misaligned", addr)
		}
	}
	g.Reset()
	for i := range first {
		a, ok := g.Next()
		if !ok || a.Addr != first[i] {
			t.Fatalf("reset walk diverges at step %d", i)
		}
	}
	if _, err := NewPointerChase(0, 32, 10, cache.Read, 1); err == nil {
		t.Error("sub-line region accepted")
	}
	if _, err := NewPointerChase(0, 640, 0, cache.Read, 1); err == nil {
		t.Error("zero steps accepted")
	}
}

// TestSequentialNextBatchMatchesNext checks chunk boundaries.
func TestSequentialNextBatchMatchesNext(t *testing.T) {
	a, _ := NewSequential(100, 1000, 64, cache.Read)
	b, _ := NewSequential(100, 1000, 64, cache.Read)
	buf := make([]Access, 7) // deliberately odd chunk size
	var batched []Access
	for {
		n := b.NextBatch(buf)
		if n == 0 {
			break
		}
		batched = append(batched, buf[:n]...)
	}
	var scalar []Access
	for {
		acc, ok := a.Next()
		if !ok {
			break
		}
		scalar = append(scalar, acc)
	}
	if len(batched) != len(scalar) {
		t.Fatalf("batched %d accesses, scalar %d", len(batched), len(scalar))
	}
	for i := range scalar {
		if batched[i] != scalar[i] {
			t.Fatalf("access %d: %+v != %+v", i, batched[i], scalar[i])
		}
	}
}
