// Package tracesim is the functional counterpart of the analytic
// engine: it replays real access streams through the simulated cache
// hierarchy (L1 -> L2 -> optional MCDRAM memory-side cache -> memory)
// and reports hit ratios, traffic, and a simple timing estimate.
//
// It exists to validate, at scaled-down sizes, the closed-form hit
// models the engine uses at paper scale: tests drive the same
// generators through both layers and require agreement.
//
// # Performance architecture
//
// Replay is the hot path of the whole repository, so it is built in
// four gears:
//
//   - Scalar: Simulator.Access replays one reference. All cache
//     indexing is shift/mask (internal/cache stores line-granular
//     tags), and consecutive references to the same 64 B line are
//     coalesced into an L1 MRU touch that skips the set scan.
//   - Batched: generators that implement BatchGenerator deliver
//     accesses in ~4k chunks (NextBatch), amortising interface
//     dispatch; Run uses this automatically. Batched replay produces
//     bit-identical Results to scalar replay.
//   - Block-fed: sources that implement BlockSource (stored traces
//     via tracestore.Provider.Blocks) hand the simulator decoded
//     blocks as views of a reusable buffer; RunBlocks/RunBlockPasses
//     consume them in place, so no access is ever staged twice.
//     Results are bit-identical to scalar replay.
//   - Sharded: ShardedSimulator (sharded.go) partitions the stream
//     across N workers by cache-set interleaving and replays them
//     concurrently with per-tile-L2 semantics, merging Results.
//     Aggregate hit/miss/writeback counts match scalar replay exactly.
//
// See the repository doc.go for how to benchmark the three gears.
package tracesim

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"repro/internal/cache"
	"repro/internal/knl"
	"repro/internal/units"
)

// Access is one memory reference.
type Access struct {
	Addr uint64
	Kind cache.AccessKind
}

// Generator produces a finite access stream.
type Generator interface {
	// Next returns the next access, or ok=false at end of stream.
	Next() (Access, bool)
	// Reset rewinds the generator for another pass.
	Reset()
}

// BatchGenerator is implemented by generators that can deliver many
// accesses per call. Replay uses it to amortise interface dispatch
// over large chunks; NextBatch fills buf and returns how many entries
// were written (0 at end of stream).
type BatchGenerator interface {
	Generator
	NextBatch(buf []Access) int
}

// BlockSource yields an access stream in source-native blocks (for
// stored traces, one decoded varint-delta block per call) as views of
// the source's reusable buffer: the returned slice is valid only
// until the next call, so block-fed replay moves no access twice.
// Sources signal end of stream or error with ok=false; error-capable
// sources (tracestore.BlockReader) expose Err for the distinction.
type BlockSource interface {
	// NextBlock returns the next block, or ok=false at end of stream.
	NextBlock() ([]Access, bool)
	// Reset rewinds the source for another pass.
	Reset()
}

// batchSize is the replay chunk: large enough to amortise dispatch,
// small enough to stay resident in the host L1/L2.
const batchSize = 4096

// Sequential streams a region front to back with the given request size.
type Sequential struct {
	Base, Size uint64
	Stride     uint64
	Kind       cache.AccessKind
	pos        uint64
}

// NewSequential builds a sequential generator over [base, base+size).
func NewSequential(base, size, stride uint64, kind cache.AccessKind) (*Sequential, error) {
	if size == 0 || stride == 0 {
		return nil, fmt.Errorf("tracesim: size and stride must be positive")
	}
	return &Sequential{Base: base, Size: size, Stride: stride, Kind: kind}, nil
}

// Next implements Generator.
func (s *Sequential) Next() (Access, bool) {
	if s.pos >= s.Size {
		return Access{}, false
	}
	a := Access{Addr: s.Base + s.pos, Kind: s.Kind}
	s.pos += s.Stride
	return a, true
}

// NextBatch implements BatchGenerator.
func (s *Sequential) NextBatch(buf []Access) int {
	n := 0
	pos, kind := s.pos, s.Kind
	for n < len(buf) && pos < s.Size {
		buf[n] = Access{Addr: s.Base + pos, Kind: kind}
		pos += s.Stride
		n++
	}
	s.pos = pos
	return n
}

// Reset implements Generator.
func (s *Sequential) Reset() { s.pos = 0 }

// UniformRandom generates count random accesses over a region.
type UniformRandom struct {
	Base, Size uint64
	Count      int64
	Kind       cache.AccessKind
	seed       int64
	rng        *rand.Rand
	emitted    int64
}

// NewUniformRandom builds a random generator.
func NewUniformRandom(base, size uint64, count int64, kind cache.AccessKind, seed int64) (*UniformRandom, error) {
	if size == 0 || count <= 0 {
		return nil, fmt.Errorf("tracesim: size and count must be positive")
	}
	return &UniformRandom{Base: base, Size: size, Count: count, Kind: kind, seed: seed, rng: rand.New(rand.NewSource(seed))}, nil
}

// Next implements Generator.
func (u *UniformRandom) Next() (Access, bool) {
	if u.emitted >= u.Count {
		return Access{}, false
	}
	u.emitted++
	off := (u.rng.Uint64() % (u.Size / 8)) * 8
	return Access{Addr: u.Base + off, Kind: u.Kind}, true
}

// NextBatch implements BatchGenerator. The draw sequence is identical
// to repeated Next calls, so batched and scalar replay see the same
// stream.
func (u *UniformRandom) NextBatch(buf []Access) int {
	n := 0
	words := u.Size / 8
	for n < len(buf) && u.emitted < u.Count {
		u.emitted++
		off := (u.rng.Uint64() % words) * 8
		buf[n] = Access{Addr: u.Base + off, Kind: u.Kind}
		n++
	}
	return n
}

// Reset implements Generator.
func (u *UniformRandom) Reset() {
	u.rng = rand.New(rand.NewSource(u.seed))
	u.emitted = 0
}

// PointerChase walks a seeded single-cycle random permutation of the
// cache lines in a region: every access depends on the previous one,
// the line sequence has no spatial locality, and a full cycle touches
// every line exactly once. It is the trace-level analogue of the
// latency benchmark's pointer chase (Fig. 3).
type PointerChase struct {
	Base  uint64
	Steps int64
	Kind  cache.AccessKind

	next    []uint32 // permutation: next[i] is the line after line i
	cur     uint32
	emitted int64
}

// NewPointerChase builds a chase over size bytes (at least one cache
// line) issuing the given number of dependent accesses.
func NewPointerChase(base, size uint64, steps int64, kind cache.AccessKind, seed int64) (*PointerChase, error) {
	lines := size / uint64(units.CacheLine)
	if lines == 0 || steps <= 0 {
		return nil, fmt.Errorf("tracesim: chase needs at least one line and positive steps")
	}
	if lines > 1<<31 {
		return nil, fmt.Errorf("tracesim: chase region %d lines too large", lines)
	}
	next := make([]uint32, lines)
	for i := range next {
		next[i] = uint32(i)
	}
	// Sattolo's algorithm: a uniform random single-cycle permutation,
	// so the walk visits every line before repeating.
	rng := rand.New(rand.NewSource(seed))
	for i := len(next) - 1; i > 0; i-- {
		j := rng.Intn(i)
		next[i], next[j] = next[j], next[i]
	}
	return &PointerChase{Base: base, Steps: steps, Kind: kind, next: next}, nil
}

// Next implements Generator.
func (p *PointerChase) Next() (Access, bool) {
	if p.emitted >= p.Steps {
		return Access{}, false
	}
	p.emitted++
	a := Access{Addr: p.Base + uint64(p.cur)*uint64(units.CacheLine), Kind: p.Kind}
	p.cur = p.next[p.cur]
	return a, true
}

// NextBatch implements BatchGenerator.
func (p *PointerChase) NextBatch(buf []Access) int {
	n := 0
	cur := p.cur
	for n < len(buf) && p.emitted < p.Steps {
		p.emitted++
		buf[n] = Access{Addr: p.Base + uint64(cur)*uint64(units.CacheLine), Kind: p.Kind}
		cur = p.next[cur]
		n++
	}
	p.cur = cur
	return n
}

// Reset implements Generator.
func (p *PointerChase) Reset() {
	p.cur = 0
	p.emitted = 0
}

// Config selects the simulated hierarchy.
type Config struct {
	L1Size     units.Bytes
	L1Ways     int
	L2Size     units.Bytes
	L2Ways     int
	MemCache   units.Bytes // 0 disables the memory-side cache (flat mode)
	Prefetcher bool
	// Latencies for the timing estimate (ns).
	L1Lat, L2Lat, MemCacheLat, MemLat float64
}

// DefaultConfig returns a scaled-down KNL-like hierarchy suitable for
// trace experiments (full-size MCDRAM would need gigabyte traces).
func DefaultConfig(memCache units.Bytes) Config {
	chip := knl.KNL7210()
	return Config{
		L1Size: chip.L1DPerCore, L1Ways: chip.L1Assoc,
		L2Size: chip.L2PerTile, L2Ways: chip.L2Assoc,
		MemCache:   memCache,
		Prefetcher: true,
		L1Lat:      2, L2Lat: float64(chip.Cal.L2HitLatency),
		MemCacheLat: float64(chip.MCDRAM.IdleLatency),
		MemLat:      float64(chip.DDR.IdleLatency),
	}
}

// Result aggregates a replay.
//
// Replay time is accumulated in integer picoseconds (TotalTimePS):
// the configured float latencies are quantized to ps once, up front,
// and every accumulation is a uint64 add. Integer addition is
// associative, so scalar, batched, sharded, and block-fed replay
// produce byte-identical times regardless of summation order — the
// equivalence suite requires exact equality, not a tolerance.
// TotalTimeNS is derived from TotalTimePS when a Result is
// materialized and is kept for reporting compatibility.
type Result struct {
	Accesses    int64
	L1          cache.Stats
	L2          cache.Stats
	MemCache    cache.Stats
	MemReads    int64 // lines fetched from backing memory
	MemWrites   int64 // lines written back to backing memory
	Prefetches  int64
	TotalTimePS uint64
	TotalTimeNS float64
}

// AvgLatencyNS returns the mean access latency of the replay.
func (r Result) AvgLatencyNS() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return r.TotalTimeNS / float64(r.Accesses)
}

// psFromNS quantizes a configured float latency (ns) to integer
// picoseconds. Done once per latency class at construction; replay
// then only adds uint64s.
func psFromNS(ns float64) uint64 {
	if ns <= 0 || math.IsNaN(ns) {
		return 0
	}
	return uint64(math.Round(ns * 1000))
}

// memSys is the memory system below the L2: the optional memory-side
// cache plus traffic counters. The scalar simulator owns one; each
// shard worker owns one shard of it — sharing the implementation is
// what keeps the two replay paths' latency/traffic models in
// lock-step, which the exact-equivalence guarantee depends on.
type memSys struct {
	mc        *cache.MemSideCache
	mcPS      uint64 // memory-side cache hit latency
	memPS     uint64 // backing-memory access latency
	mcMissPS  uint64 // tag check in MCDRAM + DRAM access, quantized once
	memReads  int64
	memWrites int64
}

func newMemSys(cfg Config, capacity units.Bytes) (memSys, error) {
	m := memSys{
		mcPS:     psFromNS(cfg.MemCacheLat),
		memPS:    psFromNS(cfg.MemLat),
		mcMissPS: psFromNS(cfg.MemCacheLat*0.3 + cfg.MemLat),
	}
	if capacity > 0 {
		mc, err := cache.NewMemSideCache(capacity, units.CacheLine)
		if err != nil {
			return memSys{}, err
		}
		m.mc = mc
	}
	return m, nil
}

// fillLine fetches a line from the memory system, returning its
// latency in picoseconds.
func (m *memSys) fillLine(line uint64) uint64 {
	if m.mc == nil {
		m.memReads++
		return m.memPS
	}
	hit, wb := m.mc.AccessLine(line, cache.Read)
	if wb {
		m.memWrites++
	}
	if hit {
		return m.mcPS
	}
	m.memReads++
	return m.mcMissPS
}

// writebackLine sends a dirty line toward memory.
func (m *memSys) writebackLine(line uint64) {
	if m.mc == nil {
		m.memWrites++
		return
	}
	if _, wb := m.mc.AccessLine(line, cache.Write); wb {
		m.memWrites++
	}
}

// touchTags pre-reads the memory-side cache's tag word for line (zero
// when no cache is configured). See SetAssoc.TouchTagSet.
func (m *memSys) touchTags(line uint64) uint64 {
	if m.mc == nil {
		return 0
	}
	return m.mc.TouchTagSet(line)
}

// resetStats clears the traffic counters but keeps contents.
func (m *memSys) resetStats() {
	m.memReads, m.memWrites = 0, 0
	if m.mc != nil {
		m.mc.ResetStats()
	}
}

// Simulator replays access streams.
type Simulator struct {
	cfg       Config
	lineShift uint
	l1PS      uint64 // quantized L1 hit latency
	l2PS      uint64 // quantized L2 hit latency
	l1        *cache.SetAssoc
	l2        *cache.SetAssoc
	mem       memSys
	pf        *cache.StreamPrefetcher
	res       Result
	tick      uint64

	// Same-line coalescing: the line touched by the previous access
	// is guaranteed resident in L1, so a repeat reference is an L1
	// MRU touch with no set scan.
	lastLine uint64
	haveLast bool

	batch []Access // reused chunk buffer for batched Run

	touchSink uint64 // keeps AccessBatch's pre-touch loads alive
}

// New builds a simulator.
func New(cfg Config) (*Simulator, error) {
	l1, err := cache.NewSetAssoc("L1D", cfg.L1Size, cfg.L1Ways, units.CacheLine)
	if err != nil {
		return nil, err
	}
	l2, err := cache.NewSetAssoc("L2", cfg.L2Size, cfg.L2Ways, units.CacheLine)
	if err != nil {
		return nil, err
	}
	mem, err := newMemSys(cfg, cfg.MemCache)
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg:       cfg,
		lineShift: uint(bits.TrailingZeros64(uint64(units.CacheLine))),
		l1PS:      psFromNS(cfg.L1Lat),
		l2PS:      psFromNS(cfg.L2Lat),
		l1:        l1,
		l2:        l2,
		mem:       mem,
	}
	if cfg.Prefetcher {
		s.pf = cache.NewStreamPrefetcher(16, 8, units.CacheLine)
	}
	return s, nil
}

// Access performs one reference through the hierarchy and returns its
// latency in nanoseconds.
func (s *Simulator) Access(a Access) float64 {
	return float64(s.accessLine(a.Addr>>s.lineShift, a.Kind)) * 1e-3
}

// accessLine is the replay fast path, operating on line addresses. It
// returns the access latency in picoseconds.
func (s *Simulator) accessLine(line uint64, kind cache.AccessKind) uint64 {
	s.tick++
	s.res.Accesses++

	if s.haveLast && line == s.lastLine {
		// Coalesced: the previous access left this line in L1 as the
		// MRU way; touch it without a set scan.
		s.l1.TouchMRU(kind)
		s.res.TotalTimePS += s.l1PS
		return s.l1PS
	}
	s.lastLine, s.haveLast = line, true

	if hit, _, _ := s.l1.AccessLine(line, kind); hit {
		s.res.TotalTimePS += s.l1PS
		return s.l1PS
	}
	// Miss in L1 (the line is now installed there, write-allocate):
	// consult the prefetcher on the L2 stream.
	if s.pf != nil {
		for _, pl := range s.pf.ObserveLines(line, s.tick) {
			// Fused residency check + install: one tag scan per
			// candidate instead of a ContainsLine/InstallLine pair.
			if installed, _, wb := s.l2.InstallLineIfAbsent(pl); installed {
				s.res.Prefetches++
				s.mem.fillLine(pl) // prefetch fills do not add replay time
				if wb {
					s.mem.memWrites++
				}
			}
		}
	}
	// One L2 access decides hit/miss; on a miss the line is installed
	// (write-allocate) and a dirty victim may need writing back.
	hit, wbLine, wb := s.l2.AccessLine(line, kind)
	if wb {
		s.mem.writebackLine(wbLine)
	}
	if hit {
		s.res.TotalTimePS += s.l2PS
		return s.l2PS
	}
	// L2 miss: fetch from memory (possibly via the memory-side cache).
	lat := s.mem.fillLine(line)
	s.res.TotalTimePS += lat
	return lat
}

// touchAhead is how many accesses ahead of the demand pointer
// AccessBatch pre-reads L2 and memory-side tag sets. The simulator's
// tag arrays exceed the host's caches, so replay is bound by a
// serial chain of host memory misses; touching the sets a few
// accesses early overlaps those misses. Reads only — replay results
// are untouched.
const touchAhead = 8

// AccessBatch replays a chunk of accesses.
func (s *Simulator) AccessBatch(batch []Access) {
	shift := s.lineShift
	var sink uint64
	for i, a := range batch {
		if j := i + touchAhead; j < len(batch) {
			nl := batch[j].Addr >> shift
			sink ^= s.l2.TouchTagSet(nl) ^ s.mem.touchTags(nl)
		}
		s.accessLine(a.Addr>>shift, a.Kind)
	}
	// Per-instance sink keeps the touch loads alive without a global
	// (a shared global would race across concurrent simulators).
	s.touchSink ^= sink
}

// Run replays a generator to exhaustion. Generators implementing
// BatchGenerator are replayed in chunks, which produces bit-identical
// results while amortising per-access interface dispatch.
func (s *Simulator) Run(g Generator) {
	if bg, ok := g.(BatchGenerator); ok {
		if s.batch == nil {
			s.batch = make([]Access, batchSize)
		}
		for {
			n := bg.NextBatch(s.batch)
			if n == 0 {
				return
			}
			s.AccessBatch(s.batch[:n])
		}
	}
	for {
		a, ok := g.Next()
		if !ok {
			return
		}
		s.Access(a)
	}
}

// RunPasses replays a generator `passes` times, resetting in between,
// and returns stats for the final pass only (steady state).
func (s *Simulator) RunPasses(g Generator, passes int) (Result, error) {
	if passes <= 0 {
		return Result{}, fmt.Errorf("tracesim: passes must be positive")
	}
	for p := 0; p < passes-1; p++ {
		g.Reset()
		s.Run(g)
	}
	s.ResetStats()
	g.Reset()
	s.Run(g)
	return s.Result(), nil
}

// RunBlocks replays a block source to exhaustion. Each block is
// consumed in place (no copy into a staging buffer); results are
// byte-identical to Run over the same stream.
func (s *Simulator) RunBlocks(src BlockSource) {
	for {
		b, ok := src.NextBlock()
		if !ok {
			return
		}
		s.AccessBatch(b)
	}
}

// RunBlockPasses replays a block source `passes` times, resetting in
// between, and returns stats for the final pass only (steady state).
func (s *Simulator) RunBlockPasses(src BlockSource, passes int) (Result, error) {
	if passes <= 0 {
		return Result{}, fmt.Errorf("tracesim: passes must be positive")
	}
	for p := 0; p < passes-1; p++ {
		src.Reset()
		s.RunBlocks(src)
	}
	s.ResetStats()
	src.Reset()
	s.RunBlocks(src)
	return s.Result(), nil
}

// Result returns the accumulated statistics.
func (s *Simulator) Result() Result {
	r := s.res
	r.L1 = s.l1.Stats()
	r.L2 = s.l2.Stats()
	r.MemReads = s.mem.memReads
	r.MemWrites = s.mem.memWrites
	if s.mem.mc != nil {
		r.MemCache = s.mem.mc.Stats()
	}
	r.TotalTimeNS = float64(r.TotalTimePS) * 1e-3
	return r
}

// ResetStats clears counters but keeps cache contents (for steady-
// state measurement).
func (s *Simulator) ResetStats() {
	s.res = Result{}
	s.l1.ResetStats()
	s.l2.ResetStats()
	s.mem.resetStats()
}
