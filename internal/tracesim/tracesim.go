// Package tracesim is the functional counterpart of the analytic
// engine: it replays real access streams through the simulated cache
// hierarchy (L1 -> L2 -> optional MCDRAM memory-side cache -> memory)
// and reports hit ratios, traffic, and a simple timing estimate.
//
// It exists to validate, at scaled-down sizes, the closed-form hit
// models the engine uses at paper scale: tests drive the same
// generators through both layers and require agreement.
package tracesim

import (
	"fmt"
	"math/rand"

	"repro/internal/cache"
	"repro/internal/knl"
	"repro/internal/units"
)

// Access is one memory reference.
type Access struct {
	Addr uint64
	Kind cache.AccessKind
}

// Generator produces a finite access stream.
type Generator interface {
	// Next returns the next access, or ok=false at end of stream.
	Next() (Access, bool)
	// Reset rewinds the generator for another pass.
	Reset()
}

// Sequential streams a region front to back with the given request size.
type Sequential struct {
	Base, Size uint64
	Stride     uint64
	Kind       cache.AccessKind
	pos        uint64
}

// NewSequential builds a sequential generator over [base, base+size).
func NewSequential(base, size, stride uint64, kind cache.AccessKind) (*Sequential, error) {
	if size == 0 || stride == 0 {
		return nil, fmt.Errorf("tracesim: size and stride must be positive")
	}
	return &Sequential{Base: base, Size: size, Stride: stride, Kind: kind}, nil
}

// Next implements Generator.
func (s *Sequential) Next() (Access, bool) {
	if s.pos >= s.Size {
		return Access{}, false
	}
	a := Access{Addr: s.Base + s.pos, Kind: s.Kind}
	s.pos += s.Stride
	return a, true
}

// Reset implements Generator.
func (s *Sequential) Reset() { s.pos = 0 }

// UniformRandom generates count random accesses over a region.
type UniformRandom struct {
	Base, Size uint64
	Count      int64
	Kind       cache.AccessKind
	seed       int64
	rng        *rand.Rand
	emitted    int64
}

// NewUniformRandom builds a random generator.
func NewUniformRandom(base, size uint64, count int64, kind cache.AccessKind, seed int64) (*UniformRandom, error) {
	if size == 0 || count <= 0 {
		return nil, fmt.Errorf("tracesim: size and count must be positive")
	}
	return &UniformRandom{Base: base, Size: size, Count: count, Kind: kind, seed: seed, rng: rand.New(rand.NewSource(seed))}, nil
}

// Next implements Generator.
func (u *UniformRandom) Next() (Access, bool) {
	if u.emitted >= u.Count {
		return Access{}, false
	}
	u.emitted++
	off := (u.rng.Uint64() % (u.Size / 8)) * 8
	return Access{Addr: u.Base + off, Kind: u.Kind}, true
}

// Reset implements Generator.
func (u *UniformRandom) Reset() {
	u.rng = rand.New(rand.NewSource(u.seed))
	u.emitted = 0
}

// Config selects the simulated hierarchy.
type Config struct {
	L1Size     units.Bytes
	L1Ways     int
	L2Size     units.Bytes
	L2Ways     int
	MemCache   units.Bytes // 0 disables the memory-side cache (flat mode)
	Prefetcher bool
	// Latencies for the timing estimate (ns).
	L1Lat, L2Lat, MemCacheLat, MemLat float64
}

// DefaultConfig returns a scaled-down KNL-like hierarchy suitable for
// trace experiments (full-size MCDRAM would need gigabyte traces).
func DefaultConfig(memCache units.Bytes) Config {
	chip := knl.KNL7210()
	return Config{
		L1Size: chip.L1DPerCore, L1Ways: chip.L1Assoc,
		L2Size: chip.L2PerTile, L2Ways: chip.L2Assoc,
		MemCache:   memCache,
		Prefetcher: true,
		L1Lat:      2, L2Lat: float64(chip.Cal.L2HitLatency),
		MemCacheLat: float64(chip.MCDRAM.IdleLatency),
		MemLat:      float64(chip.DDR.IdleLatency),
	}
}

// Result aggregates a replay.
type Result struct {
	Accesses    int64
	L1          cache.Stats
	L2          cache.Stats
	MemCache    cache.Stats
	MemReads    int64 // lines fetched from backing memory
	MemWrites   int64 // lines written back to backing memory
	Prefetches  int64
	TotalTimeNS float64
}

// AvgLatencyNS returns the mean access latency of the replay.
func (r Result) AvgLatencyNS() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return r.TotalTimeNS / float64(r.Accesses)
}

// Simulator replays access streams.
type Simulator struct {
	cfg  Config
	l1   *cache.SetAssoc
	l2   *cache.SetAssoc
	mc   *cache.MemSideCache
	pf   *cache.StreamPrefetcher
	res  Result
	tick uint64
}

// New builds a simulator.
func New(cfg Config) (*Simulator, error) {
	l1, err := cache.NewSetAssoc("L1D", cfg.L1Size, cfg.L1Ways, units.CacheLine)
	if err != nil {
		return nil, err
	}
	l2, err := cache.NewSetAssoc("L2", cfg.L2Size, cfg.L2Ways, units.CacheLine)
	if err != nil {
		return nil, err
	}
	s := &Simulator{cfg: cfg, l1: l1, l2: l2}
	if cfg.MemCache > 0 {
		mc, err := cache.NewMemSideCache(cfg.MemCache, units.CacheLine)
		if err != nil {
			return nil, err
		}
		s.mc = mc
	}
	if cfg.Prefetcher {
		s.pf = cache.NewStreamPrefetcher(16, 8, units.CacheLine)
	}
	return s, nil
}

// Access performs one reference through the hierarchy and returns its
// latency in nanoseconds.
func (s *Simulator) Access(a Access) float64 {
	s.tick++
	s.res.Accesses++

	if hit, _, _ := s.l1.Access(a.Addr, a.Kind); hit {
		s.res.TotalTimeNS += s.cfg.L1Lat
		return s.cfg.L1Lat
	}
	// Miss in L1: consult prefetcher on the L2 stream.
	if s.pf != nil {
		for _, pa := range s.pf.Observe(a.Addr, s.tick) {
			if !s.l2.Contains(pa) {
				s.res.Prefetches++
				s.fill(pa)
				if _, wb := s.l2.Install(pa); wb {
					s.res.MemWrites++
				}
			}
		}
	}
	// One L2 access decides hit/miss; on a miss the line is installed
	// (write-allocate) and a dirty victim may need writing back.
	hit, wbAddr, wb := s.l2.Access(a.Addr, a.Kind)
	if wb {
		s.writeback(wbAddr)
	}
	if hit {
		s.l1.Install(a.Addr)
		lat := s.cfg.L2Lat
		s.res.TotalTimeNS += lat
		return lat
	}
	// L2 miss: fetch from memory (possibly via the memory-side cache).
	lat := s.fill(a.Addr)
	s.l1.Install(a.Addr)
	s.res.TotalTimeNS += lat
	return lat
}

// fill fetches a line from the memory system, returning its latency.
func (s *Simulator) fill(addr uint64) float64 {
	if s.mc == nil {
		s.res.MemReads++
		return s.cfg.MemLat
	}
	hit, wb := s.mc.Access(addr, cache.Read)
	if wb {
		s.res.MemWrites++
	}
	if hit {
		return s.cfg.MemCacheLat
	}
	s.res.MemReads++
	// Tag check in MCDRAM + DRAM access.
	return s.cfg.MemCacheLat*0.3 + s.cfg.MemLat
}

// writeback sends a dirty line toward memory.
func (s *Simulator) writeback(addr uint64) {
	if s.mc == nil {
		s.res.MemWrites++
		return
	}
	if _, wb := s.mc.Access(addr, cache.Write); wb {
		s.res.MemWrites++
	}
}

// Run replays a generator to exhaustion.
func (s *Simulator) Run(g Generator) {
	for {
		a, ok := g.Next()
		if !ok {
			return
		}
		s.Access(a)
	}
}

// RunPasses replays a generator `passes` times, resetting in between,
// and returns stats for the final pass only (steady state).
func (s *Simulator) RunPasses(g Generator, passes int) (Result, error) {
	if passes <= 0 {
		return Result{}, fmt.Errorf("tracesim: passes must be positive")
	}
	for p := 0; p < passes-1; p++ {
		g.Reset()
		s.Run(g)
	}
	s.ResetStats()
	g.Reset()
	s.Run(g)
	return s.Result(), nil
}

// Result returns the accumulated statistics.
func (s *Simulator) Result() Result {
	r := s.res
	r.L1 = s.l1.Stats()
	r.L2 = s.l2.Stats()
	if s.mc != nil {
		r.MemCache = s.mc.Stats()
	}
	return r
}

// ResetStats clears counters but keeps cache contents (for steady-
// state measurement).
func (s *Simulator) ResetStats() {
	s.res = Result{}
	s.l1.ResetStats()
	s.l2.ResetStats()
	if s.mc != nil {
		s.mc.ResetStats()
	}
}
