package tracesim

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/knl"
	"repro/internal/units"
)

func TestSequentialGenerator(t *testing.T) {
	g, err := NewSequential(1000, 256, 64, cache.Read)
	if err != nil {
		t.Fatal(err)
	}
	var addrs []uint64
	for {
		a, ok := g.Next()
		if !ok {
			break
		}
		addrs = append(addrs, a.Addr)
	}
	if len(addrs) != 4 || addrs[0] != 1000 || addrs[3] != 1000+3*64 {
		t.Fatalf("sequential stream wrong: %v", addrs)
	}
	g.Reset()
	if a, ok := g.Next(); !ok || a.Addr != 1000 {
		t.Fatal("reset failed")
	}
	if _, err := NewSequential(0, 0, 64, cache.Read); err == nil {
		t.Error("zero size accepted")
	}
}

func TestUniformRandomGenerator(t *testing.T) {
	g, err := NewUniformRandom(0, 1<<20, 1000, cache.Read, 5)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		a, ok := g.Next()
		if !ok {
			break
		}
		if a.Addr >= 1<<20 {
			t.Fatalf("address %#x out of region", a.Addr)
		}
		count++
	}
	if count != 1000 {
		t.Fatalf("emitted %d, want 1000", count)
	}
	// Reset reproduces the same stream.
	g.Reset()
	first, _ := g.Next()
	g.Reset()
	again, _ := g.Next()
	if first != again {
		t.Fatal("reset not reproducible")
	}
	if _, err := NewUniformRandom(0, 0, 10, cache.Read, 1); err == nil {
		t.Error("zero region accepted")
	}
}

func TestSequentialStreamMostlyHitsWithPrefetcher(t *testing.T) {
	cfg := DefaultConfig(0)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Stream 8 MiB (far beyond L2) sequentially.
	g, _ := NewSequential(0, 8<<20, 64, cache.Read)
	sim.Run(g)
	r := sim.Result()
	// The prefetcher should cover most of the stream: L2 demand
	// misses well below the no-prefetch line count.
	lines := int64(8 << 20 / 64)
	if r.L2.Misses > lines/4 {
		t.Fatalf("L2 demand misses %d of %d lines; prefetcher ineffective", r.L2.Misses, lines)
	}
	if r.Prefetches == 0 {
		t.Fatal("no prefetches issued")
	}
	// Average latency must be far below memory latency.
	if r.AvgLatencyNS() > cfg.MemLat/2 {
		t.Fatalf("avg latency %.1f ns; stream should be covered", r.AvgLatencyNS())
	}
}

func TestRandomOverL2Misses(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.Prefetcher = false
	sim, _ := New(cfg)
	// 500k draws over 32 MiB touch ~63% of its lines (~20 MiB), a
	// genuine 20x oversubscription of the 1 MiB L2.
	g, _ := NewUniformRandom(0, 32<<20, 500000, cache.Read, 3)
	if _, err := sim.RunPasses(g, 2); err != nil {
		t.Fatal(err)
	}
	r := sim.Result()
	hit := r.L2.HitRatio()
	if hit > 0.15 {
		t.Fatalf("L2 hit ratio %.3f for ~20x oversubscription, want <0.15", hit)
	}
	if r.AvgLatencyNS() < cfg.MemLat/2 {
		t.Fatalf("avg latency %.1f ns too low for random misses", r.AvgLatencyNS())
	}
}

func TestMemSideCacheReducesMemReads(t *testing.T) {
	// Working set fits the memory-side cache: steady-state passes
	// should serve from MCDRAM, not memory.
	cfg := DefaultConfig(8 << 20)
	cfg.Prefetcher = false
	sim, _ := New(cfg)
	g, _ := NewUniformRandom(0, 4<<20, 30000, cache.Read, 11)
	res, err := sim.RunPasses(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.MemCache.HitRatio() < 0.9 {
		t.Fatalf("memory-side hit ratio %.3f, want >0.9 for resident set", res.MemCache.HitRatio())
	}
	if res.MemReads > res.Accesses/10 {
		t.Fatalf("memory reads %d of %d accesses; cache ineffective", res.MemReads, res.Accesses)
	}
}

func TestMemSideCacheThrashesWhenOversubscribed(t *testing.T) {
	// Effective working set ~3.5x the memory-side cache: hit ratio
	// collapses toward the residency/conflict bound.
	cfg := DefaultConfig(2 << 20)
	cfg.Prefetcher = false
	sim, _ := New(cfg)
	// 300k draws over 8 MiB touch ~118k of 131k lines (~7.2 MiB).
	g, _ := NewUniformRandom(0, 8<<20, 300000, cache.Read, 13)
	res, err := sim.RunPasses(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.MemCache.HitRatio() > 0.35 {
		t.Fatalf("memory-side hit ratio %.3f for ~3.5x oversubscription", res.MemCache.HitRatio())
	}
}

// Cross-validation: the trace simulator's steady-state streaming hit
// ratio through the memory-side cache should agree with the engine's
// anchored analytic curve within coarse tolerance in the thrashing
// region it was fitted for.
func TestStreamingHitRatioNearAnalyticAnchors(t *testing.T) {
	cal := knl.KNL7210().Cal
	const mcCap = 4 << 20
	for _, r := range []struct {
		ratio float64
		tol   float64
	}{
		{0.5, 0.30}, // trace has no page scatter: contiguous streams hit more
		{1.5, 0.25},
		{2.5, 0.20},
	} {
		cfg := DefaultConfig(mcCap)
		sim, _ := New(cfg)
		ws := uint64(r.ratio * mcCap)
		g, _ := NewSequential(0, ws, 64, cache.Read)
		res, err := sim.RunPasses(g, 3)
		if err != nil {
			t.Fatal(err)
		}
		analytic := cache.DirectMappedStreamHitRatio(units.Bytes(ws), mcCap, cal.CacheModeHitRatioAnchors)
		got := res.MemCache.HitRatio()
		if math.Abs(got-analytic) > r.tol {
			t.Errorf("ratio %.1f: trace %.3f vs analytic %.3f (tol %.2f)", r.ratio, got, analytic, r.tol)
		}
	}
}

func TestWritebackAccounting(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.Prefetcher = false
	sim, _ := New(cfg)
	// Write a region larger than L2 twice: evictions must write back.
	g, _ := NewSequential(0, 4<<20, 64, cache.Write)
	sim.Run(g)
	g.Reset()
	sim.Run(g)
	r := sim.Result()
	if r.MemWrites == 0 {
		t.Fatal("dirty evictions produced no memory writes")
	}
	if r.MemReads == 0 {
		t.Fatal("write-allocate produced no reads")
	}
}

func TestRunPassesValidation(t *testing.T) {
	sim, _ := New(DefaultConfig(0))
	g, _ := NewSequential(0, 1024, 64, cache.Read)
	if _, err := sim.RunPasses(g, 0); err == nil {
		t.Error("zero passes accepted")
	}
}

func TestNewValidation(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.L1Size = 100 // not a valid geometry
	if _, err := New(cfg); err == nil {
		t.Error("bad L1 geometry accepted")
	}
	cfg = DefaultConfig(100) // bad memory-side size
	if _, err := New(cfg); err == nil {
		t.Error("bad memory-side geometry accepted")
	}
	cfg = DefaultConfig(0)
	cfg.L2Size = 100
	if _, err := New(cfg); err == nil {
		t.Error("bad L2 geometry accepted")
	}
}
