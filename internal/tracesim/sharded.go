package tracesim

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/cache"
	"repro/internal/units"
)

// ShardedSimulator replays an access stream through the same hierarchy
// as Simulator, but partitions the L2 and memory-side cache across N
// concurrent workers ("tiles"). The split is address-interleaved at
// line granularity: shard = lineAddr mod N. Because N divides the set
// count of every sharded level, each cache set maps wholly to one
// worker, and the dispatcher enqueues operations in stream order, so
// every set observes exactly the operation sequence scalar replay
// would apply to it. Aggregate hit/miss/eviction/writeback counts and
// memory traffic are therefore identical to Simulator's — the
// equivalence tests enforce this — while independent sets are
// simulated concurrently.
//
// The L1 and the stream prefetcher stay in the dispatcher (they are
// core-private in the modelled machine and their decisions depend on
// the serial access order); workers own per-tile L2 and MCDRAM shards.
type ShardedSimulator struct {
	cfg        Config
	shards     int
	shardMask  uint64
	shardShift uint
	lineShift  uint

	l1PS uint64 // quantized L1 hit latency
	l1   *cache.SetAssoc
	pf   *cache.StreamPrefetcher

	workers []*shardWorker
	wg      sync.WaitGroup

	res      Result // dispatcher-side: accesses + L1-hit time
	tick     uint64
	lastLine uint64
	haveLast bool

	fill  [][]shardOp // per-worker chunk being filled
	batch []Access
}

// shardOp encodes one worker operation: the shard-local line address
// shifted left by two, with the opcode in the low bits.
type shardOp uint64

const (
	opRead     = 0
	opWrite    = 1
	opPrefetch = 2

	opChunk    = 512 // ops per channel send
	chunkQuota = 8   // in-flight chunks per worker
)

type shardWorker struct {
	l2PS uint64 // quantized L2 hit latency
	l2   *cache.SetAssoc
	mem  memSys // one set-interleaved shard of the memory system

	in   chan []shardOp
	free chan []shardOp

	timePS     uint64
	prefetches int64
}

// NewSharded builds a sharded simulator with the given worker count.
// Shards must be a power of two and divide the set counts of the L2
// and (when enabled) the memory-side cache; shards=1 degenerates to a
// scalar-equivalent single worker.
func NewSharded(cfg Config, shards int) (*ShardedSimulator, error) {
	if shards <= 0 || shards&(shards-1) != 0 {
		return nil, fmt.Errorf("tracesim: shard count %d must be a positive power of two", shards)
	}
	if int64(cfg.L2Size)%int64(shards) != 0 {
		return nil, fmt.Errorf("tracesim: %d shards do not divide L2 size %v", shards, cfg.L2Size)
	}
	if cfg.MemCache > 0 && int64(cfg.MemCache)%int64(shards) != 0 {
		return nil, fmt.Errorf("tracesim: %d shards do not divide memory-side cache %v", shards, cfg.MemCache)
	}
	l1, err := cache.NewSetAssoc("L1D", cfg.L1Size, cfg.L1Ways, units.CacheLine)
	if err != nil {
		return nil, err
	}
	sh := &ShardedSimulator{
		cfg:        cfg,
		shards:     shards,
		shardMask:  uint64(shards - 1),
		shardShift: uint(bits.TrailingZeros64(uint64(shards))),
		lineShift:  uint(bits.TrailingZeros64(uint64(units.CacheLine))),
		l1PS:       psFromNS(cfg.L1Lat),
		l1:         l1,
		fill:       make([][]shardOp, shards),
	}
	if cfg.Prefetcher {
		sh.pf = cache.NewStreamPrefetcher(16, 8, units.CacheLine)
	}
	for i := 0; i < shards; i++ {
		l2, err := cache.NewSetAssoc(fmt.Sprintf("L2.%d", i), cfg.L2Size/units.Bytes(shards), cfg.L2Ways, units.CacheLine)
		if err != nil {
			return nil, fmt.Errorf("tracesim: shard L2 geometry: %w", err)
		}
		mem, err := newMemSys(cfg, cfg.MemCache/units.Bytes(shards))
		if err != nil {
			return nil, fmt.Errorf("tracesim: shard memory-side geometry: %w", err)
		}
		w := &shardWorker{
			l2PS: psFromNS(cfg.L2Lat),
			l2:   l2,
			mem:  mem,
			in:   make(chan []shardOp, chunkQuota),
			free: make(chan []shardOp, chunkQuota),
		}
		for c := 0; c < chunkQuota; c++ {
			w.free <- make([]shardOp, 0, opChunk)
		}
		sh.workers = append(sh.workers, w)
	}
	return sh, nil
}

// Shards returns the worker count.
func (sh *ShardedSimulator) Shards() int { return sh.shards }

// start launches one goroutine per worker for the duration of a run.
func (sh *ShardedSimulator) start() {
	for _, w := range sh.workers {
		sh.wg.Add(1)
		go func(w *shardWorker) {
			defer sh.wg.Done()
			for chunk := range w.in {
				for _, op := range chunk {
					w.apply(op)
				}
				w.free <- chunk[:0]
			}
		}(w)
	}
}

// stop flushes partial chunks, closes the queues and waits for the
// workers to drain; afterwards all worker state is quiesced and safe
// to read.
func (sh *ShardedSimulator) stop() {
	for i, w := range sh.workers {
		if len(sh.fill[i]) > 0 {
			w.in <- sh.fill[i]
			sh.fill[i] = nil
		}
		close(w.in)
	}
	sh.wg.Wait()
	for _, w := range sh.workers {
		// Rebuild the queues for the next run.
		w.in = make(chan []shardOp, chunkQuota)
	}
}

// enqueue appends one operation to the owning worker's current chunk.
func (sh *ShardedSimulator) enqueue(line uint64, code shardOp) {
	shard := int(line & sh.shardMask)
	w := sh.workers[shard]
	buf := sh.fill[shard]
	if buf == nil {
		buf = <-w.free
	}
	buf = append(buf, shardOp(line>>sh.shardShift)<<2|code)
	if len(buf) == opChunk {
		w.in <- buf
		buf = nil
	}
	sh.fill[shard] = buf
}

// accessLine mirrors Simulator.accessLine up to the L1/prefetch
// boundary, then defers L2-and-beyond work to the owning shard.
func (sh *ShardedSimulator) accessLine(line uint64, kind cache.AccessKind) {
	sh.tick++
	sh.res.Accesses++

	if sh.haveLast && line == sh.lastLine {
		sh.l1.TouchMRU(kind)
		sh.res.TotalTimePS += sh.l1PS
		return
	}
	sh.lastLine, sh.haveLast = line, true

	if hit, _, _ := sh.l1.AccessLine(line, kind); hit {
		sh.res.TotalTimePS += sh.l1PS
		return
	}
	if sh.pf != nil {
		for _, pl := range sh.pf.ObserveLines(line, sh.tick) {
			sh.enqueue(pl, opPrefetch)
		}
	}
	code := shardOp(opRead)
	if kind == cache.Write {
		code = opWrite
	}
	sh.enqueue(line, code)
}

// apply executes one operation against the worker's L2/MCDRAM shard,
// replicating Simulator's scalar semantics op-for-op.
func (w *shardWorker) apply(op shardOp) {
	line := uint64(op >> 2)
	switch op & 3 {
	case opPrefetch:
		if installed, _, wb := w.l2.InstallLineIfAbsent(line); installed {
			w.prefetches++
			w.mem.fillLine(line) // prefetch fills do not add replay time
			if wb {
				w.mem.memWrites++
			}
		}
	default:
		kind := cache.Read
		if op&3 == opWrite {
			kind = cache.Write
		}
		hit, wbLine, wb := w.l2.AccessLine(line, kind)
		if wb {
			w.mem.writebackLine(wbLine)
		}
		if hit {
			w.timePS += w.l2PS
		} else {
			w.timePS += w.mem.fillLine(line)
		}
	}
}

// Run replays a generator to exhaustion across the shards.
func (sh *ShardedSimulator) Run(g Generator) {
	sh.start()
	if bg, ok := g.(BatchGenerator); ok {
		if sh.batch == nil {
			sh.batch = make([]Access, batchSize)
		}
		for {
			n := bg.NextBatch(sh.batch)
			if n == 0 {
				break
			}
			for _, a := range sh.batch[:n] {
				sh.accessLine(a.Addr>>sh.lineShift, a.Kind)
			}
		}
	} else {
		for {
			a, ok := g.Next()
			if !ok {
				break
			}
			sh.accessLine(a.Addr>>sh.lineShift, a.Kind)
		}
	}
	sh.stop()
}

// RunBlocks replays a block source to exhaustion across the shards.
// Blocks are consumed in place — the dispatcher walks each decoded
// block directly, with no staging copy — and aggregate results are
// identical to scalar replay of the same stream.
func (sh *ShardedSimulator) RunBlocks(src BlockSource) {
	sh.start()
	for {
		b, ok := src.NextBlock()
		if !ok {
			break
		}
		for _, a := range b {
			sh.accessLine(a.Addr>>sh.lineShift, a.Kind)
		}
	}
	sh.stop()
}

// RunBlockPasses replays a block source `passes` times, resetting in
// between, and returns stats for the final pass only (steady state).
func (sh *ShardedSimulator) RunBlockPasses(src BlockSource, passes int) (Result, error) {
	if passes <= 0 {
		return Result{}, fmt.Errorf("tracesim: passes must be positive")
	}
	for p := 0; p < passes-1; p++ {
		src.Reset()
		sh.RunBlocks(src)
	}
	sh.ResetStats()
	src.Reset()
	sh.RunBlocks(src)
	return sh.Result(), nil
}

// RunPasses replays a generator `passes` times, resetting in between,
// and returns stats for the final pass only (steady state).
func (sh *ShardedSimulator) RunPasses(g Generator, passes int) (Result, error) {
	if passes <= 0 {
		return Result{}, fmt.Errorf("tracesim: passes must be positive")
	}
	for p := 0; p < passes-1; p++ {
		g.Reset()
		sh.Run(g)
	}
	sh.ResetStats()
	g.Reset()
	sh.Run(g)
	return sh.Result(), nil
}

// Result merges the dispatcher and worker statistics. Only call
// between runs (Run waits for the workers before returning).
func (sh *ShardedSimulator) Result() Result {
	r := sh.res
	r.L1 = sh.l1.Stats()
	for _, w := range sh.workers {
		r.L2.Add(w.l2.Stats())
		if w.mem.mc != nil {
			r.MemCache.Add(w.mem.mc.Stats())
		}
		r.MemReads += w.mem.memReads
		r.MemWrites += w.mem.memWrites
		r.Prefetches += w.prefetches
		r.TotalTimePS += w.timePS
	}
	// Integer merge order is irrelevant: the summed picoseconds are
	// byte-identical to scalar replay's.
	r.TotalTimeNS = float64(r.TotalTimePS) * 1e-3
	return r
}

// ResetStats clears counters but keeps cache contents.
func (sh *ShardedSimulator) ResetStats() {
	sh.res = Result{}
	sh.l1.ResetStats()
	for _, w := range sh.workers {
		w.l2.ResetStats()
		w.mem.resetStats()
		w.timePS = 0
		w.prefetches = 0
	}
}
