// Package latbench reimplements the TinyMemBench dual random read
// experiment of Fig. 3: dependent pointer chases over a block of
// configurable size, measuring average access latency.
//
// The functional layer builds a full-cycle random permutation
// (Sattolo's algorithm) and walks it — exactly what latency
// micro-benchmarks do to defeat prefetching — and is used by the
// trace-driven simulator. The model layer queries the engine's
// latency model.
package latbench

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/units"
	"repro/internal/workload"
)

// BuildChase builds a pointer-chase permutation over n slots using
// Sattolo's algorithm, which guarantees a single cycle visiting every
// slot (so a walk of n steps touches the whole buffer).
func BuildChase(n int, seed int64) ([]int32, error) {
	if n < 2 {
		return nil, fmt.Errorf("latbench: chase needs at least 2 slots, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	// Sattolo: like Fisher-Yates but j < i strictly.
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i)
		p[i], p[j] = p[j], p[i]
	}
	return p, nil
}

// Walk performs `steps` dependent loads starting at index 0 and
// returns the final index (forcing the chain to be computed).
func Walk(chase []int32, steps int) int32 {
	idx := int32(0)
	for s := 0; s < steps; s++ {
		idx = chase[idx]
	}
	return idx
}

// WalkDual performs two interleaved chases (the "dual random read")
// and returns both final indices.
func WalkDual(chase []int32, steps int) (int32, int32) {
	n := int32(len(chase))
	a, b := int32(0), n/2
	for s := 0; s < steps; s++ {
		a = chase[a]
		b = chase[b]
	}
	return a, b
}

// Model is the dual-random-read latency model (Fig. 3).
type Model struct{}

var _ workload.Model = Model{}

// Info describes the micro-benchmark.
func (Model) Info() workload.Info {
	return workload.Info{
		Name:     "TinyMemBench",
		Class:    workload.ClassScientific,
		Pattern:  workload.PatternRandom,
		MaxScale: units.GB(1),
		Metric:   "ns",
	}
}

// Predict returns the average dual random read latency in ns for a
// block of `size` bytes. Lower is better for this metric; the thread
// count is fixed at 1 by the experiment's design and ignored.
func (Model) Predict(m *engine.Machine, cfg engine.MemoryConfig, size units.Bytes, _ int) (float64, error) {
	if err := m.CheckFit(cfg, size); err != nil {
		return 0, err
	}
	return float64(m.DualRandomReadLatency(cfg, size)), nil
}

// PaperSizes is Fig. 3's x axis: 128 KB to 1 GB, doubling.
func (Model) PaperSizes() []units.Bytes {
	out := []units.Bytes{}
	for b := 128 * units.KiB; b <= units.GiB; b *= 2 {
		out = append(out, b)
	}
	return out
}

// Fig6Size: no thread sweep for the latency probe.
func (Model) Fig6Size() units.Bytes { return 0 }
