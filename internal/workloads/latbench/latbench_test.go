package latbench

import (
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/units"
)

func TestBuildChaseIsFullCycle(t *testing.T) {
	for _, n := range []int{2, 3, 16, 1000} {
		p, err := BuildChase(n, 42)
		if err != nil {
			t.Fatal(err)
		}
		// Sattolo guarantees one cycle: walking n steps from 0 visits
		// every slot exactly once and returns to 0.
		seen := make([]bool, n)
		idx := int32(0)
		for s := 0; s < n; s++ {
			if seen[idx] {
				t.Fatalf("n=%d: revisited %d after %d steps", n, idx, s)
			}
			seen[idx] = true
			idx = p[idx]
		}
		if idx != 0 {
			t.Fatalf("n=%d: cycle did not close (ended at %d)", n, idx)
		}
	}
}

func TestBuildChaseErrors(t *testing.T) {
	if _, err := BuildChase(1, 0); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := BuildChase(0, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestBuildChaseDeterministic(t *testing.T) {
	a, _ := BuildChase(64, 7)
	b, _ := BuildChase(64, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different chases")
		}
	}
	c, _ := BuildChase(64, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical chases")
	}
}

func TestWalkProperty(t *testing.T) {
	f := func(seed int64, stepsRaw uint16) bool {
		p, err := BuildChase(128, seed)
		if err != nil {
			return false
		}
		steps := int(stepsRaw % 1024)
		// Walking n steps returns to start (full cycle), so walking
		// steps and steps+128 must agree.
		return Walk(p, steps) == Walk(p, steps+128)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWalkDual(t *testing.T) {
	p, _ := BuildChase(128, 3)
	a, b := WalkDual(p, 128)
	if a != 0 {
		t.Fatalf("chain A did not close: %d", a)
	}
	if b != 64 {
		t.Fatalf("chain B did not close: %d", b)
	}
}

func TestModelReproducesFig3(t *testing.T) {
	m := engine.Default()
	mdl := Model{}

	// Tier 1: ~10 ns under 1 MB.
	v, err := mdl.Predict(m, engine.DRAM, 256*units.KiB, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v > 15 {
		t.Errorf("256 KiB latency = %.1f, want ~10 ns", v)
	}
	// Tier 2: ~200 ns at 16 MB, DRAM 15-20%+ faster than HBM.
	d, _ := mdl.Predict(m, engine.DRAM, units.MB(16), 1)
	h, _ := mdl.Predict(m, engine.HBM, units.MB(16), 1)
	if d < 150 || d > 260 {
		t.Errorf("DRAM 16 MB latency = %.1f, want ~200 ns", d)
	}
	if gap := (h - d) / d; gap < 0.1 || gap > 0.25 {
		t.Errorf("gap = %.1f%%, want 15-20%%", gap*100)
	}
	// Tier 3: rising to ~400 ns at 1 GB.
	g, _ := mdl.Predict(m, engine.DRAM, units.GB(1), 1)
	if g < 330 || g > 480 {
		t.Errorf("1 GB latency = %.1f, want ~400 ns", g)
	}
	if len(mdl.PaperSizes()) != 14 {
		t.Errorf("Fig. 3 sweep has %d points, want 14 (128K..1G)", len(mdl.PaperSizes()))
	}
	if mdl.Fig6Size() != 0 || mdl.Info().Metric != "ns" {
		t.Error("metadata wrong")
	}
}
