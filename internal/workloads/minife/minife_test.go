package minife

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestAssemble27PointStructure(t *testing.T) {
	mtx, err := Assemble27Point(4, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if mtx.N != 60 {
		t.Fatalf("N = %d, want 60", mtx.N)
	}
	if err := mtx.Validate(); err != nil {
		t.Fatalf("invalid CSR: %v", err)
	}
	// Interior nodes have 27 neighbours, corners 8.
	interior := false
	corners := 0
	for z := 0; z < 3; z++ {
		for y := 0; y < 5; y++ {
			for x := 0; x < 4; x++ {
				row := int64((z*5+y)*4 + x)
				deg := mtx.RowPtr[row+1] - mtx.RowPtr[row]
				switch {
				case x >= 1 && x <= 2 && y >= 1 && y <= 3 && z == 1:
					if deg != 27 {
						t.Fatalf("interior node (%d,%d,%d) has %d entries", x, y, z, deg)
					}
					interior = true
				case (x == 0 || x == 3) && (y == 0 || y == 4) && (z == 0 || z == 2):
					if deg != 8 {
						t.Fatalf("corner node has %d entries, want 8", deg)
					}
					corners++
				}
			}
		}
	}
	if !interior || corners != 8 {
		t.Fatalf("mesh classification wrong: interior=%v corners=%d", interior, corners)
	}
}

func TestAssembleErrors(t *testing.T) {
	if _, err := Assemble27Point(0, 1, 1); err == nil {
		t.Error("zero mesh accepted")
	}
}

func TestMatrixIsSymmetricProperty(t *testing.T) {
	// Symmetry of the operator: entry (i,j) exists iff (j,i) exists
	// with the same value (both are -1 off-diagonal).
	mtx, err := Assemble27Point(3, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	get := func(i, j int32) (float64, bool) {
		for k := mtx.RowPtr[i]; k < mtx.RowPtr[i+1]; k++ {
			if mtx.ColIdx[k] == j {
				return mtx.Values[k], true
			}
		}
		return 0, false
	}
	for i := int32(0); i < int32(mtx.N); i++ {
		for k := mtx.RowPtr[i]; k < mtx.RowPtr[i+1]; k++ {
			j := mtx.ColIdx[k]
			v, ok := get(j, i)
			if !ok || v != mtx.Values[k] {
				t.Fatalf("asymmetry at (%d,%d)", i, j)
			}
		}
	}
}

func TestSpMVIdentityProperty(t *testing.T) {
	mtx, _ := Assemble27Point(4, 4, 4)
	f := func(seed int64) bool {
		// A*0 = 0 and linearity: A(2x) = 2Ax.
		n := mtx.N
		x := make([]float64, n)
		r := seed
		for i := range x {
			r = r*6364136223846793005 + 1442695040888963407
			x[i] = float64(r%1000) / 1000
		}
		y1 := make([]float64, n)
		if err := mtx.SpMV(x, y1); err != nil {
			return false
		}
		x2 := make([]float64, n)
		for i := range x2 {
			x2[i] = 2 * x[i]
		}
		y2 := make([]float64, n)
		if err := mtx.SpMV(x2, y2); err != nil {
			return false
		}
		for i := range y1 {
			if math.Abs(y2[i]-2*y1[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCGSolves(t *testing.T) {
	mtx, err := Assemble27Point(6, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	n := mtx.N
	// Manufactured solution.
	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i%7) - 3
	}
	b := make([]float64, n)
	if err := mtx.SpMV(want, b); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	res, err := CG(mtx, b, x, 1e-10, 500)
	if err != nil {
		t.Fatalf("CG failed after %d iters (res %g): %v", res.Iterations, res.Residual, err)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	if res.Flops <= 0 {
		t.Error("flops not counted")
	}
}

func TestCGResidualDecreasesProperty(t *testing.T) {
	mtx, _ := Assemble27Point(4, 4, 4)
	n := mtx.N
	f := func(seed int64) bool {
		b := make([]float64, n)
		r := seed
		for i := range b {
			r = r*2862933555777941757 + 3037000493
			b[i] = float64(r % 100)
		}
		// Run CG for k and 2k iterations: residual must not grow.
		x1 := make([]float64, n)
		res1, err1 := CG(mtx, b, x1, 0, 5)
		x2 := make([]float64, n)
		res2, err2 := CG(mtx, b, x2, 0, 10)
		if err1 != nil && !errors.Is(err1, ErrNoConvergence) {
			return false
		}
		if err2 != nil && !errors.Is(err2, ErrNoConvergence) {
			return false
		}
		return res2.Residual <= res1.Residual*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestCGErrors(t *testing.T) {
	mtx, _ := Assemble27Point(2, 2, 2)
	if _, err := CG(mtx, make([]float64, 3), make([]float64, 8), 1e-6, 10); err == nil {
		t.Error("short b accepted")
	}
	if _, err := CG(mtx, make([]float64, 8), make([]float64, 8), 1e-6, 0); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestModelFig4bShape(t *testing.T) {
	m := engine.Default()
	mdl := Model{}

	// HBM ~3x DRAM at a mid size.
	d, err := mdl.Predict(m, engine.DRAM, units.GB(7.2), 64)
	if err != nil {
		t.Fatal(err)
	}
	h, err := mdl.Predict(m, engine.HBM, units.GB(7.2), 64)
	if err != nil {
		t.Fatal(err)
	}
	if r := h / d; r < 2.4 || r > 3.5 {
		t.Errorf("HBM/DRAM = %.2f, want ~3x", r)
	}
	// Absolutes in the paper's 0.5-1.5e4 MFLOPS band.
	if d < 3500 || d > 7500 {
		t.Errorf("DRAM CG MFLOPS = %.0f, want ~5000", d)
	}
	if h < 11000 || h > 19000 {
		t.Errorf("HBM CG MFLOPS = %.0f, want ~15000", h)
	}

	// Cache-mode improvement decays to ~1.05x at ~2x HBM capacity
	// (the paper's marquee cache-mode result).
	c288, err := mdl.Predict(m, engine.Cache, units.GB(28.8), 64)
	if err != nil {
		t.Fatal(err)
	}
	d288, _ := mdl.Predict(m, engine.DRAM, units.GB(28.8), 64)
	if r := c288 / d288; r < 0.9 || r > 1.25 {
		t.Errorf("cache speedup at 28.8 GB = %.3f, want ~1.05", r)
	}
	// And is much larger while the matrix is comparable to capacity.
	c144, _ := mdl.Predict(m, engine.Cache, units.GB(14.4), 64)
	d144, _ := mdl.Predict(m, engine.DRAM, units.GB(14.4), 64)
	if r := c144 / d144; r < 1.2 {
		t.Errorf("cache speedup at 14.4 GB = %.3f, want >1.2", r)
	}
	// HBM bar disappears beyond capacity.
	if _, err := mdl.Predict(m, engine.HBM, units.GB(28.8), 64); err == nil {
		t.Error("28.8 GB should not fit HBM")
	}
}

func TestModelFig6bThreads(t *testing.T) {
	m := engine.Default()
	mdl := Model{}
	size := mdl.Fig6Size()

	h64, _ := mdl.Predict(m, engine.HBM, size, 64)
	h192, _ := mdl.Predict(m, engine.HBM, size, 192)
	if r := h192 / h64; r < 1.4 || r > 1.9 {
		t.Errorf("HBM 192/64 = %.2f, want ~1.7", r)
	}
	// The paper's 3.8x: HBM with hyper-threading vs DRAM.
	h256, _ := mdl.Predict(m, engine.HBM, size, 256)
	d64, _ := mdl.Predict(m, engine.DRAM, size, 64)
	if r := h256 / d64; r < 3.2 || r > 5.2 {
		t.Errorf("HBM@256 / DRAM@64 = %.2f, want ~3.8-4.8", r)
	}
	// DRAM stays flat.
	d256, _ := mdl.Predict(m, engine.DRAM, size, 256)
	if r := d256 / d64; r > 1.2 {
		t.Errorf("DRAM 256/64 = %.2f, should be ~1", r)
	}
}

func TestRowsAndMatrixBytes(t *testing.T) {
	if Rows(units.Bytes(bytesPerRowTest())) != 1 {
		t.Error("Rows arithmetic")
	}
	n := 64
	if got := MatrixBytes(n); got != units.Bytes(int64(n*n*n)*332) {
		t.Errorf("MatrixBytes = %v", got)
	}
}

func bytesPerRowTest() int64 { return matrixBytesPerRow }

func TestModelInfo(t *testing.T) {
	info := Model{}.Info()
	if info.Name != "MiniFE" || info.MaxScale != units.GB(30) ||
		info.Pattern != workload.PatternSequential {
		t.Errorf("Table I row wrong: %+v", info)
	}
	if len(Model{}.PaperSizes()) != 7 {
		t.Error("Fig. 4b has 7 sizes")
	}
}
