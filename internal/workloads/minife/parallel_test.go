package minife

import (
	"math"
	"testing"
)

func TestParSpMVMatchesSerial(t *testing.T) {
	mtx, err := Assemble27Point(7, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	n := mtx.N
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%11) - 5
	}
	ySer := make([]float64, n)
	if err := mtx.SpMV(x, ySer); err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 3, 8, 64} {
		yPar := make([]float64, n)
		if err := mtx.ParSpMV(x, yPar, threads); err != nil {
			t.Fatal(err)
		}
		for i := range ySer {
			if ySer[i] != yPar[i] {
				t.Fatalf("threads=%d: y[%d] = %v vs serial %v", threads, i, yPar[i], ySer[i])
			}
		}
	}
	if err := mtx.ParSpMV(x, make([]float64, 3), 2); err == nil {
		t.Error("short y accepted")
	}
	if err := mtx.ParSpMV(x, make([]float64, n), 0); err == nil {
		t.Error("zero threads accepted")
	}
}

func TestParDot(t *testing.T) {
	a := make([]float64, 1001)
	b := make([]float64, 1001)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(1001 - i)
	}
	want := dot(a, b)
	for _, threads := range []int{1, 2, 7, 16} {
		got := parDot(a, b, threads)
		if math.Abs(got-want) > 1e-6*math.Abs(want) {
			t.Errorf("threads=%d: parDot = %v, want %v", threads, got, want)
		}
	}
}

func TestParCGSolves(t *testing.T) {
	mtx, err := Assemble27Point(8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	n := mtx.N
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Sin(float64(i))
	}
	b := make([]float64, n)
	if err := mtx.SpMV(want, b); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	res, err := ParCG(mtx, b, x, 1e-10, 800, 8)
	if err != nil {
		t.Fatalf("ParCG failed after %d iters (res %g): %v", res.Iterations, res.Residual, err)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-5 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestParCGMatchesSerialIterations(t *testing.T) {
	mtx, _ := Assemble27Point(5, 5, 5)
	n := mtx.N
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i % 9)
	}
	x1 := make([]float64, n)
	r1, err1 := CG(mtx, b, x1, 1e-8, 400)
	x2 := make([]float64, n)
	r2, err2 := ParCG(mtx, b, x2, 1e-8, 400, 4)
	if err1 != nil || err2 != nil {
		t.Fatalf("solvers failed: %v / %v", err1, err2)
	}
	// Iteration counts agree within a couple of steps (parallel
	// reductions round differently).
	diff := r1.Iterations - r2.Iterations
	if diff < -3 || diff > 3 {
		t.Errorf("iterations: serial %d vs parallel %d", r1.Iterations, r2.Iterations)
	}
}

func TestParCGErrors(t *testing.T) {
	mtx, _ := Assemble27Point(2, 2, 2)
	if _, err := ParCG(mtx, make([]float64, 1), make([]float64, 8), 1e-6, 10, 2); err == nil {
		t.Error("short b accepted")
	}
	if _, err := ParCG(mtx, make([]float64, 8), make([]float64, 8), 1e-6, 10, 0); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := ParCG(mtx, make([]float64, 8), make([]float64, 8), 1e-6, 0, 2); err == nil {
		t.Error("zero iterations accepted")
	}
}
