package minife

import (
	"fmt"
	"math"
	"sync"
)

// ParSpMV computes y = A*x with row-parallel goroutines (the
// OpenMP-style parallelization MiniFE uses).
func (m *CSR) ParSpMV(x, y []float64, threads int) error {
	if len(x) != m.N || len(y) != m.N {
		return fmt.Errorf("minife: spmv vector lengths %d/%d for n=%d", len(x), len(y), m.N)
	}
	if threads <= 0 {
		return fmt.Errorf("minife: thread count %d must be positive", threads)
	}
	if threads > m.N && m.N > 0 {
		threads = m.N
	}
	var wg sync.WaitGroup
	chunk := (m.N + threads - 1) / threads
	for t := 0; t < threads; t++ {
		lo := t * chunk
		hi := lo + chunk
		if hi > m.N {
			hi = m.N
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				sum := 0.0
				for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
					sum += m.Values[k] * x[m.ColIdx[k]]
				}
				y[i] = sum
			}
		}(lo, hi)
	}
	wg.Wait()
	return nil
}

// parDot computes an inner product with a parallel reduction.
func parDot(a, b []float64, threads int) float64 {
	n := len(a)
	if threads > n {
		threads = n
	}
	if threads <= 1 {
		return dot(a, b)
	}
	partial := make([]float64, threads)
	var wg sync.WaitGroup
	chunk := (n + threads - 1) / threads
	for t := 0; t < threads; t++ {
		lo := t * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(t, lo, hi int) {
			defer wg.Done()
			s := 0.0
			for i := lo; i < hi; i++ {
				s += a[i] * b[i]
			}
			partial[t] = s
		}(t, lo, hi)
	}
	wg.Wait()
	s := 0.0
	for _, p := range partial {
		s += p
	}
	return s
}

// ParCG is the thread-parallel conjugate gradient used by the larger
// functional runs. Numerically it performs the same iteration as CG;
// the parallel dot reduction may round differently, so results agree
// to solver tolerance rather than bitwise.
func ParCG(a *CSR, b, x []float64, tol float64, maxIter, threads int) (CGResult, error) {
	n := a.N
	if len(b) != n || len(x) != n {
		return CGResult{}, fmt.Errorf("minife: cg vector lengths %d/%d for n=%d", len(b), len(x), n)
	}
	if maxIter <= 0 || threads <= 0 {
		return CGResult{}, fmt.Errorf("minife: maxIter %d and threads %d must be positive", maxIter, threads)
	}
	r := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	if err := a.ParSpMV(x, ap, threads); err != nil {
		return CGResult{}, err
	}
	for i := range r {
		r[i] = b[i] - ap[i]
		p[i] = r[i]
	}
	rr := parDot(r, r, threads)
	bnorm := sqrt(parDot(b, b, threads))
	if bnorm == 0 {
		bnorm = 1
	}
	var flops float64
	res := CGResult{}
	for k := 0; k < maxIter; k++ {
		if sqrt(rr)/bnorm <= tol {
			res.Iterations = k
			res.Residual = sqrt(rr) / bnorm
			res.Flops = flops
			return res, nil
		}
		if err := a.ParSpMV(p, ap, threads); err != nil {
			return CGResult{}, err
		}
		pap := parDot(p, ap, threads)
		if pap <= 0 {
			return CGResult{}, fmt.Errorf("minife: matrix not positive definite (pAp=%v)", pap)
		}
		alpha := rr / pap
		axpy(alpha, p, x)
		axpy(-alpha, ap, r)
		rrNew := parDot(r, r, threads)
		beta := rrNew / rr
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rr = rrNew
		flops += 2*float64(a.NNZ()) + 10*float64(n)
	}
	res.Iterations = maxIter
	res.Residual = sqrt(rr) / bnorm
	res.Flops = flops
	return res, ErrNoConvergence
}

func sqrt(x float64) float64 {
	if x < 0 {
		return 0
	}
	return math.Sqrt(x)
}
