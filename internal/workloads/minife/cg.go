package minife

import (
	"errors"
	"fmt"
	"math"
)

// CGResult reports a conjugate-gradient solve.
type CGResult struct {
	Iterations int
	Residual   float64
	Flops      float64
}

// ErrNoConvergence is returned when CG hits the iteration cap.
var ErrNoConvergence = errors.New("minife: CG did not converge")

// dot computes the inner product.
func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// axpy computes y += alpha*x.
func axpy(alpha float64, x, y []float64) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// CG solves A x = b to relative residual tol with at most maxIter
// iterations, overwriting x (x may start at zero). This mirrors
// MiniFE's unpreconditioned CG.
func CG(a *CSR, b, x []float64, tol float64, maxIter int) (CGResult, error) {
	n := a.N
	if len(b) != n || len(x) != n {
		return CGResult{}, fmt.Errorf("minife: cg vector lengths %d/%d for n=%d", len(b), len(x), n)
	}
	if maxIter <= 0 {
		return CGResult{}, fmt.Errorf("minife: maxIter %d must be positive", maxIter)
	}
	r := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	// r = b - A x.
	if err := a.SpMV(x, ap); err != nil {
		return CGResult{}, err
	}
	for i := range r {
		r[i] = b[i] - ap[i]
		p[i] = r[i]
	}
	rr := dot(r, r)
	bnorm := math.Sqrt(dot(b, b))
	if bnorm == 0 {
		bnorm = 1
	}
	var flops float64
	res := CGResult{}
	for k := 0; k < maxIter; k++ {
		if math.Sqrt(rr)/bnorm <= tol {
			res.Iterations = k
			res.Residual = math.Sqrt(rr) / bnorm
			res.Flops = flops
			return res, nil
		}
		if err := a.SpMV(p, ap); err != nil {
			return CGResult{}, err
		}
		pap := dot(p, ap)
		if pap <= 0 {
			return CGResult{}, fmt.Errorf("minife: matrix not positive definite (pAp=%v)", pap)
		}
		alpha := rr / pap
		axpy(alpha, p, x)
		axpy(-alpha, ap, r)
		rrNew := dot(r, r)
		beta := rrNew / rr
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rr = rrNew
		flops += 2*float64(a.NNZ()) + 10*float64(n)
	}
	res.Iterations = maxIter
	res.Residual = math.Sqrt(rr) / bnorm
	res.Flops = flops
	return res, ErrNoConvergence
}
