// Package minife reimplements the MiniFE proxy application: assembly
// of a 27-point hexahedral finite-element operator on a 3D structured
// mesh into CSR format, and a Conjugate-Gradient solver over it (the
// paper: "the most performance critical part of the application solves
// the linear-system using a Conjugate-Gradient algorithm").
//
// The functional layer really assembles and really solves; the model
// layer regenerates Fig. 4b and Fig. 6b.
package minife

import (
	"fmt"
)

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	N      int
	RowPtr []int64
	ColIdx []int32
	Values []float64
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int64 {
	if len(m.RowPtr) == 0 {
		return 0
	}
	return m.RowPtr[m.N]
}

// Validate checks CSR structural invariants: monotone row pointers,
// in-range sorted column indices.
func (m *CSR) Validate() error {
	if m.N < 0 || len(m.RowPtr) != m.N+1 {
		return fmt.Errorf("minife: rowptr length %d for %d rows", len(m.RowPtr), m.N)
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("minife: rowptr[0] = %d", m.RowPtr[0])
	}
	for i := 0; i < m.N; i++ {
		if m.RowPtr[i+1] < m.RowPtr[i] {
			return fmt.Errorf("minife: rowptr not monotone at row %d", i)
		}
		prev := int32(-1)
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			c := m.ColIdx[k]
			if c < 0 || int(c) >= m.N {
				return fmt.Errorf("minife: column %d out of range at row %d", c, i)
			}
			if c <= prev {
				return fmt.Errorf("minife: columns not strictly increasing at row %d", i)
			}
			prev = c
		}
	}
	if int64(len(m.ColIdx)) != m.NNZ() || int64(len(m.Values)) != m.NNZ() {
		return fmt.Errorf("minife: nnz arrays %d/%d vs rowptr %d", len(m.ColIdx), len(m.Values), m.NNZ())
	}
	return nil
}

// SpMV computes y = A*x.
func (m *CSR) SpMV(x, y []float64) error {
	if len(x) != m.N || len(y) != m.N {
		return fmt.Errorf("minife: spmv vector lengths %d/%d for n=%d", len(x), len(y), m.N)
	}
	for i := 0; i < m.N; i++ {
		sum := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			sum += m.Values[k] * x[m.ColIdx[k]]
		}
		y[i] = sum
	}
	return nil
}

// Assemble27Point builds the 27-point operator for an nx x ny x nz
// structured hexahedral mesh: each node couples to its 3x3x3
// neighbourhood. Off-diagonal entries are -1 and the diagonal equals
// the neighbour count, making the operator symmetric positive
// definite (diagonally dominant Laplacian-like), as MiniFE's is.
func Assemble27Point(nx, ny, nz int) (*CSR, error) {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return nil, fmt.Errorf("minife: bad mesh %dx%dx%d", nx, ny, nz)
	}
	n := nx * ny * nz
	m := &CSR{N: n, RowPtr: make([]int64, n+1)}
	id := func(x, y, z int) int32 { return int32((z*ny+y)*nx + x) }

	// First pass: count row lengths.
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				count := 0
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							xx, yy, zz := x+dx, y+dy, z+dz
							if xx >= 0 && xx < nx && yy >= 0 && yy < ny && zz >= 0 && zz < nz {
								count++
							}
						}
					}
				}
				m.RowPtr[int(id(x, y, z))+1] = int64(count)
			}
		}
	}
	for i := 0; i < n; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	nnz := m.RowPtr[n]
	m.ColIdx = make([]int32, nnz)
	m.Values = make([]float64, nnz)

	// Second pass: fill (neighbourhood loops emit sorted columns).
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				row := int(id(x, y, z))
				k := m.RowPtr[row]
				deg := float64(m.RowPtr[row+1]-m.RowPtr[row]) - 1
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							xx, yy, zz := x+dx, y+dy, z+dz
							if xx < 0 || xx >= nx || yy < 0 || yy >= ny || zz < 0 || zz >= nz {
								continue
							}
							col := id(xx, yy, zz)
							m.ColIdx[k] = col
							if int(col) == row {
								m.Values[k] = deg + 1 // diagonal dominance
							} else {
								m.Values[k] = -1
							}
							k++
						}
					}
				}
			}
		}
	}
	return m, nil
}
