package minife

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/units"
	"repro/internal/workload"
)

// Bytes-per-row accounting for the 27-point CSR operator (interior
// rows dominate at scale):
//
//	matrix values 27 x 8 B + columns 27 x 4 B + rowptr 8 B = 332 B
//
// which is what Fig. 4b's "Matrix Size" axis measures.
const bytesPerRow = 332

// Per-CG-iteration traffic per row. The matrix streams once per SpMV
// (332 B); the vector traffic comprises the SpMV x-gather feed and y
// write, two dots reading two vectors each, and three axpys at
// 2 reads + 1 write. The two are modelled as separate phases because
// they behave differently under the MCDRAM cache: the matrix never
// fits (pure streaming), while the five CG vectors are re-touched
// densely within each iteration and stay effectively resident.
const (
	matrixBytesPerRow = 332
	vectorBytesPerRow = 8 + 8 + 4*8 + 9*8
	flopsPerRow       = 2*27 + 10
	randomPerRow      = 1.1  // calibrated: x-vector gathers missing L2
	streamEfficiency  = 0.55 // CG multi-stream+gather vs pure STREAM triad
	reductionsPerIt   = 4
)

// Rows returns the row count for a matrix of `size` bytes.
func Rows(size units.Bytes) int64 { return int64(size) / bytesPerRow }

// MatrixBytes returns the matrix size for a cubic mesh of edge n.
func MatrixBytes(n int) units.Bytes {
	return units.Bytes(int64(n) * int64(n) * int64(n) * bytesPerRow)
}

// Model regenerates Fig. 4b (CG MFLOPS vs. matrix size) and Fig. 6b
// (vs. threads).
type Model struct{}

var _ workload.Model = Model{}

// Info is MiniFE's Table I row.
func (Model) Info() workload.Info {
	return workload.Info{
		Name:     "MiniFE",
		Class:    workload.ClassScientific,
		Pattern:  workload.PatternSequential,
		MaxScale: units.GB(30),
		Metric:   "CG MFLOPS",
	}
}

// Predict returns the CG-phase MFLOPS for a matrix of `size` bytes.
func (Model) Predict(m *engine.Machine, cfg engine.MemoryConfig, size units.Bytes, threads int) (float64, error) {
	rows := Rows(size)
	if rows < 1 {
		return 0, fmt.Errorf("minife: size %v too small", size)
	}
	// The paper scales the problem and reports the CG-phase rate; the
	// rate is iteration-count independent, so model one iteration.
	fRows := float64(rows)

	// Out-of-plane gathers touch the x vector one plane (n^2 rows)
	// away: that plane is the random-access footprint.
	edge := math.Cbrt(fRows)
	planeBytes := units.Bytes(edge * edge * 8)
	vecBytes := units.Bytes(rows * 5 * 8)

	// Total working set must be resident (flat modes).
	if err := m.CheckFit(cfg, size+vecBytes); err != nil {
		return 0, err
	}

	phases := []engine.Phase{
		{
			Name:            "spmv-matrix",
			Flops:           fRows * 2 * 27,
			SeqBytes:        fRows * matrixBytesPerRow,
			SeqFootprint:    size,
			SeqEfficiency:   streamEfficiency,
			RandomAccesses:  fRows * randomPerRow,
			RandomFootprint: maxBytes(planeBytes, 2*units.MiB),
			ParallelRegions: 1,
		},
		{
			Name:  "vector-updates",
			Flops: fRows * 10,
			// Dense intra-iteration reuse keeps the CG vectors
			// effectively resident in the memory-side cache, so their
			// footprint — not the matrix's — governs their hit ratio.
			SeqBytes:        fRows * vectorBytesPerRow,
			SeqFootprint:    vecBytes,
			SeqEfficiency:   streamEfficiency,
			Syncs:           reductionsPerIt,
			ParallelRegions: 3,
		},
	}
	total, _, err := m.SolvePhases(cfg, threads, phases)
	if err != nil {
		return 0, err
	}
	flops := fRows * flopsPerRow
	// flops/ns = GFLOPS; the paper reports MFLOPS.
	return flops / float64(total) * 1000, nil
}

func maxBytes(a, b units.Bytes) units.Bytes {
	if a > b {
		return a
	}
	return b
}

// PaperSizes is Fig. 4b's x axis: 0.1 to 28.8 GB (doubling).
func (Model) PaperSizes() []units.Bytes {
	return []units.Bytes{
		units.GB(0.1), units.GB(0.9), units.GB(1.8), units.GB(3.6),
		units.GB(7.2), units.GB(14.4), units.GB(28.8),
	}
}

// Fig6Size is the fixed size of the Fig. 6b thread sweep.
func (Model) Fig6Size() units.Bytes { return units.GB(7.2) }
