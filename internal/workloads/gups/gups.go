// Package gups reimplements the HPCC RandomAccess (GUPS) benchmark:
// XOR-updates to uniformly random locations of a large table. The
// functional layer runs the exact HPCC update sequence (the x =
// x<<1 ^ (x<0 ? POLY : 0) LCG) including the self-verification pass;
// the model layer regenerates Fig. 4c.
package gups

import (
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/units"
	"repro/internal/workload"
)

// poly is the primitive polynomial of the HPCC random stream.
const poly = 0x0000000000000007

// NextRandom advances the HPCC random sequence.
func NextRandom(x uint64) uint64 {
	hi := x >> 63
	x <<= 1
	if hi != 0 {
		x ^= poly
	}
	return x
}

// StartingSeed returns the n-th value of the HPCC sequence, matching
// the reference HPCC_starts routine semantics for modest n (used to
// give each thread a distinct stream offset).
func StartingSeed(n int64) uint64 {
	x := uint64(1)
	for i := int64(0); i < n; i++ {
		x = NextRandom(x)
	}
	return x
}

// Run performs updates random XOR updates on a table of 2^logSize
// words split across `threads` goroutines and returns the final table.
// Each thread owns a disjoint stream; updates race benignly in real
// GUPS (up to 1% errors allowed) — here each thread locks a stripe to
// keep the functional layer deterministic enough for verification.
func Run(logSize int, updates int64, threads int) ([]uint64, error) {
	if logSize < 4 || logSize > 34 {
		return nil, fmt.Errorf("gups: logSize %d out of [4,34]", logSize)
	}
	if updates <= 0 || threads <= 0 {
		return nil, fmt.Errorf("gups: updates %d and threads %d must be positive", updates, threads)
	}
	size := int64(1) << logSize
	table := make([]uint64, size)
	for i := range table {
		table[i] = uint64(i)
	}
	mask := uint64(size - 1)

	const stripes = 64
	var locks [stripes]sync.Mutex

	var wg sync.WaitGroup
	per := updates / int64(threads)
	for t := 0; t < threads; t++ {
		n := per
		if t == threads-1 {
			n = updates - per*int64(threads-1)
		}
		wg.Add(1)
		go func(id int, n int64) {
			defer wg.Done()
			x := StartingSeed(int64(id)*97 + 1)
			for i := int64(0); i < n; i++ {
				x = NextRandom(x)
				idx := x & mask
				s := &locks[idx%stripes]
				s.Lock()
				table[idx] ^= x
				s.Unlock()
			}
		}(t, n)
	}
	wg.Wait()
	return table, nil
}

// Verify re-applies the same update streams (XOR is an involution per
// value) and counts cells that fail to return to their initial value.
// The reference benchmark allows up to 1% errors; a single-threaded
// re-application must yield zero here because updates were locked.
func Verify(table []uint64, updates int64, threads int) (int64, error) {
	size := int64(len(table))
	if size == 0 || size&(size-1) != 0 {
		return 0, fmt.Errorf("gups: table size %d not a power of two", size)
	}
	mask := uint64(size - 1)
	per := updates / int64(threads)
	for t := 0; t < threads; t++ {
		n := per
		if t == threads-1 {
			n = updates - per*int64(threads-1)
		}
		x := StartingSeed(int64(t)*97 + 1)
		for i := int64(0); i < n; i++ {
			x = NextRandom(x)
			table[x&mask] ^= x
		}
	}
	var errs int64
	for i, v := range table {
		if v != uint64(i) {
			errs++
		}
	}
	return errs, nil
}

// Model regenerates Fig. 4c (GUPS vs. table size).
//
// Calibration note: the paper's absolute GUPS (~1.07e-2) is orders of
// magnitude below the node's latency-concurrency limit, implying the
// measured runs were dominated by per-update software overhead (the
// reference implementation's update loop and error accounting). The
// model therefore carries a large calibrated serial cost per update
// and a memory term that produces the paper's ordering: DRAM best,
// cache mode close, HBM last, roughly flat in table size.
type Model struct{}

var _ workload.Model = Model{}

// serialNSPerUpdate is the calibrated software cost per update.
const serialNSPerUpdate = 5500.0

// UpdatesPerWord is the HPCC rule: 4 updates per table word.
const UpdatesPerWord = 4

// Info is GUPS's Table I row.
func (Model) Info() workload.Info {
	return workload.Info{
		Name:     "GUPS",
		Class:    workload.ClassDataAnalytics,
		Pattern:  workload.PatternRandom,
		MaxScale: units.GB(32),
		Metric:   "GUPS",
	}
}

// Predict returns GUPS for a table of `size` bytes.
func (Model) Predict(m *engine.Machine, cfg engine.MemoryConfig, size units.Bytes, threads int) (float64, error) {
	words := float64(size) / 8
	if words < 1 {
		return 0, fmt.Errorf("gups: size %v too small", size)
	}
	updates := words * UpdatesPerWord
	p := engine.Phase{
		Name:            "updates",
		RandomAccesses:  updates * 2, // read + write of the target line
		RandomFootprint: size,
		RandomMLP:       2,
		SerialNS:        updates * serialNSPerUpdate / float64(threads),
		ParallelRegions: 1,
	}
	r, err := m.SolvePhase(cfg, threads, p)
	if err != nil {
		return 0, err
	}
	return updates / float64(r.Time), nil // updates per ns == G-updates/s
}

// PaperSizes is Fig. 4c's x axis: 1-32 GB (doubling).
func (Model) PaperSizes() []units.Bytes {
	return []units.Bytes{
		units.GB(1), units.GB(2), units.GB(4), units.GB(8), units.GB(16), units.GB(32),
	}
}

// Fig6Size: GUPS has no Fig. 6 panel.
func (Model) Fig6Size() units.Bytes { return 0 }
