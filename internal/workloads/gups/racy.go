package gups

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// RunRacy performs the update loop the way the reference HPCC
// benchmark actually runs it in its multithreaded variants: without
// synchronization, so that concurrent read-modify-write updates to
// the same word can race and lose XOR contributions. The spec
// tolerates up to 1% incorrect table entries; this implementation
// exists so the error-tolerance behaviour is reproducible too.
//
// Implementation note: Go forbids genuinely racy plain accesses, so
// the lost-update window is modelled faithfully with atomics — each
// update performs an atomic load followed by an atomic store (NOT a
// compare-and-swap), which is exactly the non-atomic read-modify-write
// structure of the C reference and loses updates under contention the
// same way, without being undefined behaviour in Go.
func RunRacy(logSize int, updates int64, threads int) ([]uint64, error) {
	if logSize < 4 || logSize > 34 {
		return nil, fmt.Errorf("gups: logSize %d out of [4,34]", logSize)
	}
	if updates <= 0 || threads <= 0 {
		return nil, fmt.Errorf("gups: updates %d and threads %d must be positive", updates, threads)
	}
	size := int64(1) << logSize
	table := make([]uint64, size)
	for i := range table {
		table[i] = uint64(i)
	}
	mask := uint64(size - 1)

	var wg sync.WaitGroup
	per := updates / int64(threads)
	for t := 0; t < threads; t++ {
		n := per
		if t == threads-1 {
			n = updates - per*int64(threads-1)
		}
		wg.Add(1)
		go func(id int, n int64) {
			defer wg.Done()
			x := StartingSeed(int64(id)*97 + 1)
			for i := int64(0); i < n; i++ {
				x = NextRandom(x)
				idx := x & mask
				// Load-XOR-store without atomicity of the pair: the
				// reference's racy update.
				old := atomic.LoadUint64(&table[idx])
				atomic.StoreUint64(&table[idx], old^x)
			}
		}(t, n)
	}
	wg.Wait()
	return table, nil
}

// ErrorRate re-applies the update streams serially and reports the
// fraction of table entries that did not return to their initial
// value — the quantity the HPCC verification bounds at 1%.
func ErrorRate(table []uint64, updates int64, threads int) (float64, error) {
	errs, err := Verify(table, updates, threads)
	if err != nil {
		return 0, err
	}
	return float64(errs) / float64(len(table)), nil
}
