package gups

import (
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestNextRandomSequence(t *testing.T) {
	// The HPCC LCG from seed 1 must be deterministic and non-trivial.
	x := uint64(1)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		x = NextRandom(x)
		if seen[x] {
			t.Fatalf("short cycle after %d steps", i)
		}
		seen[x] = true
	}
	if StartingSeed(0) != 1 {
		t.Error("StartingSeed(0) should be the initial seed")
	}
	if StartingSeed(5) == StartingSeed(6) {
		t.Error("consecutive starting seeds equal")
	}
}

func TestRunAndVerify(t *testing.T) {
	table, err := Run(10, 4096, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 1024 {
		t.Fatalf("table size %d", len(table))
	}
	errs, err := Verify(table, 4096, 4)
	if err != nil {
		t.Fatal(err)
	}
	if errs != 0 {
		t.Fatalf("%d cells failed verification (locked updates must be exact)", errs)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(3, 10, 1); err == nil {
		t.Error("tiny logSize accepted")
	}
	if _, err := Run(40, 10, 1); err == nil {
		t.Error("huge logSize accepted")
	}
	if _, err := Run(10, 0, 1); err == nil {
		t.Error("zero updates accepted")
	}
	if _, err := Run(10, 10, 0); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := Verify(make([]uint64, 3), 1, 1); err == nil {
		t.Error("non-power-of-two table accepted")
	}
}

func TestRunVerifyProperty(t *testing.T) {
	f := func(updatesRaw uint16, threadsRaw uint8) bool {
		updates := int64(updatesRaw%2000) + 1
		threads := int(threadsRaw%8) + 1
		table, err := Run(8, updates, threads)
		if err != nil {
			return false
		}
		errs, err := Verify(table, updates, threads)
		return err == nil && errs == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestModelFig4cShape(t *testing.T) {
	m := engine.Default()
	mdl := Model{}

	// Absolute value near the paper's ~1.07e-2 GUPS.
	d, err := mdl.Predict(m, engine.DRAM, units.GB(8), 64)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.009 || d < 0.0095 && d > 0.013 {
		t.Errorf("GUPS = %v, want ~0.0107", d)
	}

	// Ordering at every size that fits: DRAM >= Cache >= HBM (the
	// paper's latency-bound ordering).
	for _, s := range mdl.PaperSizes() {
		dv, err := mdl.Predict(m, engine.DRAM, s, 64)
		if err != nil {
			t.Fatal(err)
		}
		cv, err := mdl.Predict(m, engine.Cache, s, 64)
		if err != nil {
			t.Fatal(err)
		}
		if dv < cv {
			t.Errorf("size %v: DRAM (%v) below cache (%v)", s, dv, cv)
		}
		hv, err := mdl.Predict(m, engine.HBM, s, 64)
		if err != nil {
			continue // larger than HBM
		}
		if cv < hv {
			t.Errorf("size %v: cache (%v) below HBM (%v)", s, cv, hv)
		}
	}

	// Near-flat with table size: max/min within a few percent.
	v1, _ := mdl.Predict(m, engine.DRAM, units.GB(1), 64)
	v32, _ := mdl.Predict(m, engine.DRAM, units.GB(32), 64)
	if r := v1 / v32; r < 0.95 || r > 1.1 {
		t.Errorf("GUPS size sensitivity = %.3f, want ~1 (flat panels in Fig. 4c)", r)
	}
}

func TestModelInfo(t *testing.T) {
	info := Model{}.Info()
	if info.Name != "GUPS" || info.Class != workload.ClassDataAnalytics ||
		info.Pattern != workload.PatternRandom || info.MaxScale != units.GB(32) {
		t.Errorf("Table I row wrong: %+v", info)
	}
	if (Model{}).Fig6Size() != 0 {
		t.Error("GUPS has no Fig. 6 panel")
	}
	if len(Model{}.PaperSizes()) != 6 {
		t.Error("Fig. 4c has 6 sizes")
	}
}
