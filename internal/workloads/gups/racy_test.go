package gups

import (
	"testing"
)

func TestRunRacySingleThreadIsExact(t *testing.T) {
	// With one thread there are no races: verification must be exact.
	table, err := RunRacy(10, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	rate, err := ErrorRate(table, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 0 {
		t.Fatalf("single-threaded racy run has error rate %v", rate)
	}
}

func TestRunRacyErrorRateWithinHPCCTolerance(t *testing.T) {
	// Heavy contention: small table, many threads. HPCC tolerates up
	// to 1% of entries wrong; with a small table, contention is far
	// above realistic, so allow a looser bound while still requiring
	// that most updates land.
	const logSize, updates, threads = 12, 1 << 16, 8
	table, err := RunRacy(logSize, updates, threads)
	if err != nil {
		t.Fatal(err)
	}
	rate, err := ErrorRate(table, updates, threads)
	if err != nil {
		t.Fatal(err)
	}
	if rate > 0.25 {
		t.Fatalf("error rate %v: more than a quarter of entries lost", rate)
	}
}

func TestRunRacyValidation(t *testing.T) {
	if _, err := RunRacy(2, 10, 1); err == nil {
		t.Error("tiny table accepted")
	}
	if _, err := RunRacy(10, 0, 1); err == nil {
		t.Error("zero updates accepted")
	}
	if _, err := RunRacy(10, 10, 0); err == nil {
		t.Error("zero threads accepted")
	}
}
