//go:build amd64

package dgemm

// Implemented in kernel_amd64.s.
func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// Implemented in kernel_amd64.s.
func xgetbvAsm() (eax, edx uint32)

// Implemented in kernel_amd64.s.
//
//go:noescape
func axpy4FMA(c, b0, b1, b2, b3 *float64, n int, a0, a1, a2, a3 float64)

// useFMA reports whether the CPU and OS support the AVX2+FMA
// microkernel (AVX2 and FMA CPUID flags plus OS-enabled YMM state).
var useFMA = detectFMA()

func detectFMA() bool {
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&fmaBit == 0 || ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	// The OS must save/restore XMM and YMM state across context
	// switches before AVX may be used.
	xeax, _ := xgetbvAsm()
	if xeax&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuidAsm(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}

// axpy4 computes c[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j],
// dispatching to the FMA microkernel when available. The b slices must
// be at least len(c) long.
func axpy4(c, b0, b1, b2, b3 []float64, a0, a1, a2, a3 float64) {
	if useFMA && len(c) >= 4 {
		m := len(c) &^ 3
		axpy4FMA(&c[0], &b0[0], &b1[0], &b2[0], &b3[0], m, a0, a1, a2, a3)
		for j := m; j < len(c); j++ {
			c[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
		}
		return
	}
	axpy4Go(c, b0, b1, b2, b3, a0, a1, a2, a3)
}
