// Package dgemm implements the DGEMM benchmark: a real blocked,
// parallel double-precision matrix multiply (the functional layer) and
// the performance model regenerating Fig. 4a (GFLOPS vs. size) and
// Fig. 6a (GFLOPS vs. threads).
package dgemm

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/engine"
	"repro/internal/units"
	"repro/internal/workload"
)

// blockDim is the register/cache blocking factor of the functional
// kernel (also the model's nominal L2 block edge).
const blockDim = 64

// Multiply computes C = A*B for n x n row-major matrices using a
// blocked algorithm parallelized over block rows.
func Multiply(a, b, c []float64, n, threads int) error {
	if n <= 0 {
		return fmt.Errorf("dgemm: dimension %d must be positive", n)
	}
	if len(a) != n*n || len(b) != n*n || len(c) != n*n {
		return fmt.Errorf("dgemm: matrices must be %d elements, got %d/%d/%d", n*n, len(a), len(b), len(c))
	}
	if threads <= 0 {
		return fmt.Errorf("dgemm: thread count %d must be positive", threads)
	}
	for i := range c {
		c[i] = 0
	}
	// Parallel grain: row bands sized so every worker gets several
	// tasks even when n/blockDim < threads (the old one-band-per-block
	// split left most workers idle for small matrices). Each C row is
	// owned by exactly one band, so results are independent of the
	// thread count.
	band := blockDim
	if g := n / (4 * threads); g < band {
		band = g
	}
	if band < 8 {
		band = 8
	}
	bands := (n + band - 1) / band
	workers := threads
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	if workers > bands {
		workers = bands
	}
	var wg sync.WaitGroup
	work := make(chan int, bands)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for bi := range work {
				multiplyBand(a, b, c, n, bi*band, min((bi+1)*band, n))
			}
		}()
	}
	for bi := 0; bi < bands; bi++ {
		work <- bi
	}
	close(work)
	wg.Wait()
	return nil
}

// multiplyBand computes rows [i0, i1) of C using the blocked
// algorithm. The inner kernel is register-blocked over four
// consecutive k values — four rows of B stream against one row of C,
// quartering the store traffic per flop — and dispatches to the FMA
// microkernel on CPUs that have it.
func multiplyBand(a, b, c []float64, n, i0, i1 int) {
	blocks := (n + blockDim - 1) / blockDim
	for bk := 0; bk < blocks; bk++ {
		k0, k1 := bk*blockDim, min((bk+1)*blockDim, n)
		for bj := 0; bj < blocks; bj++ {
			j0, j1 := bj*blockDim, min((bj+1)*blockDim, n)
			for i := i0; i < i1; i++ {
				ci := c[i*n+j0 : i*n+j1]
				ar := a[i*n : i*n+n]
				k := k0
				for ; k+3 < k1; k += 4 {
					b0 := b[k*n+j0 : k*n+j1]
					b1 := b[(k+1)*n+j0 : (k+1)*n+j1]
					b2 := b[(k+2)*n+j0 : (k+2)*n+j1]
					b3 := b[(k+3)*n+j0 : (k+3)*n+j1]
					axpy4(ci, b0, b1, b2, b3, ar[k], ar[k+1], ar[k+2], ar[k+3])
				}
				for ; k < k1; k++ {
					aik := ar[k]
					bkr := b[k*n+j0 : k*n+j1][:len(ci)]
					for j := range bkr {
						ci[j] += aik * bkr[j]
					}
				}
			}
		}
	}
}

// axpy4Go is the portable register-blocked kernel.
func axpy4Go(c, b0, b1, b2, b3 []float64, a0, a1, a2, a3 float64) {
	b0 = b0[:len(c)]
	b1 = b1[:len(c)]
	b2 = b2[:len(c)]
	b3 = b3[:len(c)]
	for j := range c {
		c[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// MatrixDim returns the matrix dimension n for a total problem size
// covering three n x n float64 matrices (the "Array Size" of Fig. 4a).
func MatrixDim(size units.Bytes) int {
	return int(math.Sqrt(float64(size) / 24.0))
}

// ProblemSize is the inverse of MatrixDim.
func ProblemSize(n int) units.Bytes { return units.Bytes(int64(n) * int64(n) * 24) }

// Model is the DGEMM performance model.
//
// Calibration: the paper's MKL DGEMM reaches ~600 GFLOPS at 64 threads
// (Fig. 4a) — far below the 2662 GFLOPS peak — and HBM outperforms
// DRAM by 1.4-2.2x, meaning the run was partially memory-bound. The
// model therefore uses the calibrated compute efficiency table
// (knl.Calibration.DGEMMEff) and an effective arithmetic intensity of
// ~3.5 flops/byte (an effective blocking of ~28 elements, far below
// ideal — consistent with the observed memory sensitivity).
type Model struct{}

var _ workload.Model = Model{}

// effectiveAI is the calibrated effective arithmetic intensity
// (flops per byte of DRAM traffic) of the paper's DGEMM runs.
const effectiveAI = 3.5

// Info is DGEMM's Table I row.
func (Model) Info() workload.Info {
	return workload.Info{
		Name:     "DGEMM",
		Class:    workload.ClassScientific,
		Pattern:  workload.PatternSequential,
		MaxScale: units.GB(24),
		Metric:   "GFLOPS",
	}
}

// Predict returns GFLOPS for a problem of `size` bytes (three square
// matrices) at the given thread count.
func (Model) Predict(m *engine.Machine, cfg engine.MemoryConfig, size units.Bytes, threads int) (float64, error) {
	if threads >= 256 {
		// The paper: "results relative to DGEMM with 256 hardware
		// threads are not available as the run can not complete
		// successfully."
		return 0, workload.ErrNotMeasured
	}
	n := float64(MatrixDim(size))
	if n < 1 {
		return 0, fmt.Errorf("dgemm: size %v too small", size)
	}
	flops := 2 * n * n * n
	ht := m.Chip.ThreadsPerCoreFor(threads)
	eff := m.Chip.Cal.DGEMMEff[ht]
	// Surface-to-volume law: small matrices cannot fill the pipelines
	// (panel edges, threading grain). Half-efficiency point at
	// n=2048, matching the rising left edge of Fig. 4a.
	eff *= n / (n + 2048)
	// Sub-node thread counts scale efficiency down proportionally.
	if threads < m.Chip.Cores {
		eff *= float64(threads) / float64(m.Chip.Cores)
	}

	p := engine.Phase{
		Name:       "dgemm",
		Flops:      flops,
		ComputeEff: eff,
		SeqBytes:   flops / effectiveAI,
		// The blocked algorithm's reuse window is one matrix (the B
		// panel sweep), not all three: between consecutive reuses of a
		// B element only ~n^2 other bytes stream by, so the memory-
		// side cache in cache mode retains a one-matrix working set.
		SeqFootprint:          size / 3,
		ParallelRegions:       n / blockDim,
		OverlapSerialFraction: 0.15,
	}
	// Flat-HBM still requires all three matrices to be resident.
	if err := m.CheckFit(cfg, size); err != nil {
		return 0, err
	}
	r, err := m.SolvePhase(cfg, threads, p)
	if err != nil {
		return 0, err
	}
	return flops / float64(r.Time), nil // flops/ns == GFLOPS
}

// PaperSizes is Fig. 4a's x axis: 0.1, 0.4, 1.5, 6, 24 GB.
func (Model) PaperSizes() []units.Bytes {
	return []units.Bytes{
		units.GB(0.1), units.GB(0.4), units.GB(1.5), units.GB(6), units.GB(24),
	}
}

// Fig6Size is the fixed size of the Fig. 6a thread sweep.
func (Model) Fig6Size() units.Bytes { return units.GB(6) }
