//go:build !amd64

package dgemm

// axpy4 computes c[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j].
// Non-amd64 builds always take the portable kernel.
func axpy4(c, b0, b1, b2, b3 []float64, a0, a1, a2, a3 float64) {
	axpy4Go(c, b0, b1, b2, b3, a0, a1, a2, a3)
}
