package dgemm

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/units"
	"repro/internal/workload"
)

func naive(a, b []float64, n int) []float64 {
	c := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a[i*n+k]
			for j := 0; j < n; j++ {
				c[i*n+j] += aik * b[k*n+j]
			}
		}
	}
	return c
}

func TestMultiplyMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 7, 64, 100, 130} {
		a := make([]float64, n*n)
		b := make([]float64, n*n)
		for i := range a {
			a[i] = rng.Float64()
			b[i] = rng.Float64()
		}
		c := make([]float64, n*n)
		if err := Multiply(a, b, c, n, 4); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := naive(a, b, n)
		for i := range c {
			if math.Abs(c[i]-want[i]) > 1e-9*math.Abs(want[i])+1e-12 {
				t.Fatalf("n=%d: c[%d] = %v, want %v", n, i, c[i], want[i])
			}
		}
	}
}

func TestMultiplyErrors(t *testing.T) {
	if err := Multiply(nil, nil, nil, 0, 1); err == nil {
		t.Error("zero dimension accepted")
	}
	if err := Multiply(make([]float64, 4), make([]float64, 4), make([]float64, 3), 2, 1); err == nil {
		t.Error("short C accepted")
	}
	if err := Multiply(make([]float64, 4), make([]float64, 4), make([]float64, 4), 2, 0); err == nil {
		t.Error("zero threads accepted")
	}
}

func TestMultiplyThreadInvariance(t *testing.T) {
	n := 65
	rng := rand.New(rand.NewSource(2))
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := range a {
		a[i] = rng.Float64()
		b[i] = rng.Float64()
	}
	c1 := make([]float64, n*n)
	c8 := make([]float64, n*n)
	if err := Multiply(a, b, c1, n, 1); err != nil {
		t.Fatal(err)
	}
	if err := Multiply(a, b, c8, n, 8); err != nil {
		t.Fatal(err)
	}
	for i := range c1 {
		if c1[i] != c8[i] {
			t.Fatalf("thread count changed result at %d", i)
		}
	}
}

func TestMatrixDimRoundTripProperty(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw%4096) + 64
		size := ProblemSize(n)
		got := MatrixDim(size)
		return got == n || got == n-1 // sqrt truncation slack
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if MatrixDim(units.GB(24)) < 32000 || MatrixDim(units.GB(24)) > 33500 {
		t.Errorf("24 GB => n = %d, want ~32768", MatrixDim(units.GB(24)))
	}
}

func TestModelFig4aShape(t *testing.T) {
	m := engine.Default()
	mdl := Model{}

	// HBM beats DRAM ~2x at the 6 GB point.
	d, err := mdl.Predict(m, engine.DRAM, units.GB(6), 64)
	if err != nil {
		t.Fatal(err)
	}
	h, err := mdl.Predict(m, engine.HBM, units.GB(6), 64)
	if err != nil {
		t.Fatal(err)
	}
	if r := h / d; r < 1.6 || r > 2.6 {
		t.Errorf("HBM/DRAM at 6 GB = %.2f, want ~2x", r)
	}
	// Absolute: ~600 GFLOPS territory on HBM at scale.
	if h < 400 || h > 700 {
		t.Errorf("HBM GFLOPS = %.0f, want ~500-600", h)
	}
	// GFLOPS grows with size (both configs).
	sizes := mdl.PaperSizes()
	prevD := 0.0
	for _, s := range sizes {
		v, err := mdl.Predict(m, engine.DRAM, s, 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < prevD {
			t.Errorf("DRAM GFLOPS fell at %v: %v < %v", s, v, prevD)
		}
		prevD = v
	}
	// No HBM bar at 24 GB.
	if _, err := mdl.Predict(m, engine.HBM, units.GB(24), 64); err == nil {
		t.Error("24 GB should not fit HBM")
	}
	// Cache mode keeps a large-size advantage (blocked reuse window).
	c, err := mdl.Predict(m, engine.Cache, units.GB(24), 64)
	if err != nil {
		t.Fatal(err)
	}
	d24, _ := mdl.Predict(m, engine.DRAM, units.GB(24), 64)
	if r := c / d24; r < 1.5 || r > 2.6 {
		t.Errorf("cache speedup at 24 GB = %.2f, want ~2x", r)
	}
}

func TestModelFig6aThreads(t *testing.T) {
	m := engine.Default()
	mdl := Model{}
	size := mdl.Fig6Size()

	h64, _ := mdl.Predict(m, engine.HBM, size, 64)
	h192, _ := mdl.Predict(m, engine.HBM, size, 192)
	if r := h192 / h64; r < 1.5 || r > 1.9 {
		t.Errorf("HBM 192/64 = %.2f, want ~1.7 (paper)", r)
	}
	// DRAM does not benefit from hyper-threading.
	d64, _ := mdl.Predict(m, engine.DRAM, size, 64)
	d192, _ := mdl.Predict(m, engine.DRAM, size, 192)
	if r := d192 / d64; r > 1.15 {
		t.Errorf("DRAM 192/64 = %.2f, should be ~1", r)
	}
	// 256 threads: the run fails, as in the paper.
	if _, err := mdl.Predict(m, engine.HBM, size, 256); !errors.Is(err, workload.ErrNotMeasured) {
		t.Errorf("256 threads should be ErrNotMeasured, got %v", err)
	}
}

func TestModelInfo(t *testing.T) {
	info := Model{}.Info()
	if info.Name != "DGEMM" || info.Pattern != workload.PatternSequential ||
		info.Class != workload.ClassScientific || info.MaxScale != units.GB(24) {
		t.Errorf("Table I row wrong: %+v", info)
	}
	if len(Model{}.PaperSizes()) != 5 {
		t.Error("Fig. 4a has 5 sizes")
	}
}

// TestAxpy4MatchesScalar pins the dispatching kernel (FMA assembly on
// CPUs that have it, portable Go elsewhere) against a plain scalar
// reference across lengths that exercise the 8-wide loop, the 4-wide
// step, and the scalar tail.
func TestAxpy4MatchesScalar(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 12, 15, 16, 17, 31, 64, 100} {
		c := make([]float64, n)
		want := make([]float64, n)
		b0 := make([]float64, n)
		b1 := make([]float64, n)
		b2 := make([]float64, n)
		b3 := make([]float64, n)
		for j := 0; j < n; j++ {
			c[j] = float64(j%11) - 5
			want[j] = c[j]
			b0[j] = float64(j%7) * 0.5
			b1[j] = float64(j%13) * -0.25
			b2[j] = float64(j % 3)
			b3[j] = float64(j%17) * 1.5
		}
		a0, a1, a2, a3 := 1.25, -2.5, 0.75, 3.0
		axpy4(c, b0, b1, b2, b3, a0, a1, a2, a3)
		for j := 0; j < n; j++ {
			want[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			if math.Abs(c[j]-want[j]) > 1e-12*math.Abs(want[j])+1e-15 {
				t.Fatalf("n=%d j=%d: got %v want %v", n, j, c[j], want[j])
			}
		}
	}
}
