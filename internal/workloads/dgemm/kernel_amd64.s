#include "textflag.h"

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func axpy4FMA(c, b0, b1, b2, b3 *float64, n int, a0, a1, a2, a3 float64)
//
// c[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j] for j in [0, n).
// n must be a non-negative multiple of 4. The main loop retires 16
// flops per iteration on two independent YMM accumulators.
TEXT ·axpy4FMA(SB), NOSPLIT, $0-80
	MOVQ c+0(FP), DI
	MOVQ b0+8(FP), SI
	MOVQ b1+16(FP), R8
	MOVQ b2+24(FP), R9
	MOVQ b3+32(FP), R10
	MOVQ n+40(FP), CX
	VBROADCASTSD a0+48(FP), Y0
	VBROADCASTSD a1+56(FP), Y1
	VBROADCASTSD a2+64(FP), Y2
	VBROADCASTSD a3+72(FP), Y3
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX
	CMPQ AX, DX
	JGE  tail4

loop8:
	VMOVUPD     (DI)(AX*8), Y4
	VMOVUPD     32(DI)(AX*8), Y5
	VFMADD231PD (SI)(AX*8), Y0, Y4
	VFMADD231PD 32(SI)(AX*8), Y0, Y5
	VFMADD231PD (R8)(AX*8), Y1, Y4
	VFMADD231PD 32(R8)(AX*8), Y1, Y5
	VFMADD231PD (R9)(AX*8), Y2, Y4
	VFMADD231PD 32(R9)(AX*8), Y2, Y5
	VFMADD231PD (R10)(AX*8), Y3, Y4
	VFMADD231PD 32(R10)(AX*8), Y3, Y5
	VMOVUPD     Y4, (DI)(AX*8)
	VMOVUPD     Y5, 32(DI)(AX*8)
	ADDQ        $8, AX
	CMPQ        AX, DX
	JLT         loop8

tail4:
	CMPQ AX, CX
	JGE  done
	VMOVUPD     (DI)(AX*8), Y4
	VFMADD231PD (SI)(AX*8), Y0, Y4
	VFMADD231PD (R8)(AX*8), Y1, Y4
	VFMADD231PD (R9)(AX*8), Y2, Y4
	VFMADD231PD (R10)(AX*8), Y3, Y4
	VMOVUPD     Y4, (DI)(AX*8)
	ADDQ        $4, AX
	JMP         tail4

done:
	VZEROUPPER
	RET
