// Package xsbench reimplements the XSBench proxy: the macroscopic
// cross-section lookup kernel of OpenMC. A lookup binary-searches the
// unionized energy grid, then gathers and interpolates the bounding
// cross-section pairs of every nuclide. The functional layer builds a
// real unionized grid and performs real lookups with verification;
// the model layer regenerates Fig. 4e and Fig. 6d.
package xsbench

import (
	"fmt"
	"math/rand"
	"sort"
)

// Standard "large" problem shape of the reference benchmark.
const (
	Isotopes = 355
	// XSKinds is the number of cross-section channels interpolated
	// per nuclide (total, elastic, absorption, fission, nu-fission).
	XSKinds = 5
)

// Grid is the unionized energy grid.
type Grid struct {
	Energies []float64 // sorted unionized energies, length G
	// Index[g*Isotopes+i] is the index into nuclide i's private grid
	// bounding Energies[g] from below.
	Index []int32
	// NuclideEnergies[i] is nuclide i's private sorted energy grid.
	NuclideEnergies [][]float64
	// XS[i][j*XSKinds+k] is channel k at private grid point j.
	XS [][]float64
}

// Build constructs a unionized grid with pointsPerIso private points
// per nuclide, deterministically from a seed.
func Build(isotopes, pointsPerIso int, seed int64) (*Grid, error) {
	if isotopes < 1 || pointsPerIso < 2 {
		return nil, fmt.Errorf("xsbench: bad shape %d isotopes x %d points", isotopes, pointsPerIso)
	}
	rng := rand.New(rand.NewSource(seed))
	g := &Grid{
		NuclideEnergies: make([][]float64, isotopes),
		XS:              make([][]float64, isotopes),
	}
	total := isotopes * pointsPerIso
	g.Energies = make([]float64, 0, total)
	for i := 0; i < isotopes; i++ {
		e := make([]float64, pointsPerIso)
		for j := range e {
			e[j] = rng.Float64()
		}
		sort.Float64s(e)
		g.NuclideEnergies[i] = e
		xs := make([]float64, pointsPerIso*XSKinds)
		for j := range xs {
			xs[j] = rng.Float64()
		}
		g.XS[i] = xs
		g.Energies = append(g.Energies, e...)
	}
	sort.Float64s(g.Energies)
	// Build the unionized index: for each unionized point and
	// isotope, the bounding private index.
	g.Index = make([]int32, len(g.Energies)*isotopes)
	for i := 0; i < isotopes; i++ {
		e := g.NuclideEnergies[i]
		k := 0
		for gi, ue := range g.Energies {
			for k+1 < len(e) && e[k+1] <= ue {
				k++
			}
			g.Index[gi*isotopes+i] = int32(k)
		}
	}
	return g, nil
}

// Points returns the unionized grid size.
func (g *Grid) Points() int { return len(g.Energies) }

// searchUnionized binary-searches the unionized grid for energy e and
// returns the bounding index and the number of probes performed (the
// dependent-load chain the model charges).
func (g *Grid) searchUnionized(e float64) (int, int) {
	lo, hi := 0, len(g.Energies)-1
	probes := 0
	for lo < hi {
		mid := (lo + hi + 1) / 2
		probes++
		if g.Energies[mid] <= e {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, probes
}

// Lookup computes the macroscopic cross section for energy e in (0,1)
// with uniform number densities: for every isotope, interpolate each
// XS channel between the bounding private grid points and accumulate.
// It returns the XSKinds accumulated channels and the probe count.
func (g *Grid) Lookup(e float64) ([XSKinds]float64, int, error) {
	var macro [XSKinds]float64
	if e < 0 || e >= 1 {
		return macro, 0, fmt.Errorf("xsbench: energy %v out of [0,1)", e)
	}
	gi, probes := g.searchUnionized(e)
	iso := len(g.NuclideEnergies)
	for i := 0; i < iso; i++ {
		idx := int(g.Index[gi*iso+i])
		eGrid := g.NuclideEnergies[i]
		hiIdx := idx + 1
		if hiIdx >= len(eGrid) {
			hiIdx = idx
		}
		e0, e1 := eGrid[idx], eGrid[hiIdx]
		f := 0.0
		if e1 > e0 {
			f = (e - e0) / (e1 - e0)
			if f < 0 {
				f = 0
			}
			if f > 1 {
				f = 1
			}
		}
		lo := g.XS[i][idx*XSKinds : idx*XSKinds+XSKinds]
		hi := g.XS[i][hiIdx*XSKinds : hiIdx*XSKinds+XSKinds]
		for k := 0; k < XSKinds; k++ {
			macro[k] += lo[k] + f*(hi[k]-lo[k])
		}
	}
	return macro, probes, nil
}

// VerificationHash reduces a sequence of lookups to a stable checksum,
// mirroring the reference benchmark's verification mode.
func (g *Grid) VerificationHash(lookups int, seed int64) (float64, error) {
	if lookups <= 0 {
		return 0, fmt.Errorf("xsbench: lookup count %d must be positive", lookups)
	}
	rng := rand.New(rand.NewSource(seed))
	sum := 0.0
	for l := 0; l < lookups; l++ {
		macro, _, err := g.Lookup(rng.Float64())
		if err != nil {
			return 0, err
		}
		for _, v := range macro {
			sum += v
		}
	}
	return sum / float64(lookups), nil
}
