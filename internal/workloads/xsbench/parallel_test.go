package xsbench

import (
	"math"
	"testing"
)

func TestRunParallelMatchesExpectedRange(t *testing.T) {
	g, err := Build(10, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	avg, probes, err := g.RunParallel(2000, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Each lookup sums 10 isotopes x 5 channels of [0,1) values: the
	// per-lookup average lies in (0, 50).
	if avg <= 0 || avg >= 50 {
		t.Fatalf("verification average = %v", avg)
	}
	if probes <= 0 {
		t.Fatal("no search probes recorded")
	}
	// Binary search depth is bounded by log2(640) ~ 10 per lookup.
	if probes > 2000*11 {
		t.Fatalf("probe count %d exceeds search-depth bound", probes)
	}
}

func TestRunParallelDeterministicPerConfig(t *testing.T) {
	g, _ := Build(5, 32, 9)
	a1, p1, err := g.RunParallel(1000, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	a2, p2, err := g.RunParallel(1000, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 || p1 != p2 {
		t.Fatal("same seed and thread count must reproduce")
	}
}

func TestRunParallelThreadCountStableStatistic(t *testing.T) {
	// Different thread counts draw different random streams, but the
	// average converges to the same statistic.
	g, _ := Build(8, 64, 11)
	a1, _, err := g.RunParallel(20000, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	a8, _, err := g.RunParallel(20000, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a1-a8)/a1 > 0.05 {
		t.Fatalf("thread-count changed the statistic: %v vs %v", a1, a8)
	}
}

func TestRunParallelErrors(t *testing.T) {
	g, _ := Build(3, 8, 1)
	if _, _, err := g.RunParallel(0, 1, 1); err == nil {
		t.Error("zero lookups accepted")
	}
	if _, _, err := g.RunParallel(10, 0, 1); err == nil {
		t.Error("zero threads accepted")
	}
	// More threads than lookups is clamped, not an error.
	if _, _, err := g.RunParallel(2, 8, 1); err != nil {
		t.Errorf("thread clamping failed: %v", err)
	}
}
